// JoinService concurrency tests: the correctness bar is that any
// interleaving of concurrent clients is bit-identical to running the
// same requests serially on a cold engine. CI runs this suite under
// ThreadSanitizer (twice) in the service-stress job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <latch>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sj/engine.hpp"
#include "sj/selfjoin.hpp"
#include "sj/service.hpp"

namespace gsj {
namespace {

/// One run's observable outcome: pairs, stats and the logical trace —
/// the byte-level identity witness.
struct RunRecord {
  SelfJoinOutput out;
  std::string trace_json;
};

RunRecord record_run(JoinService& svc, SharedDataset& sd, SelfJoinConfig cfg) {
  obs::Tracer tracer(obs::TimeMode::Logical);
  cfg.tracer = &tracer;
  RunRecord r;
  r.out = svc.run(sd, cfg);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  r.trace_json = os.str();
  return r;
}

/// The serial oracle: the same request on a fresh, cold JoinEngine.
RunRecord record_cold_engine_run(const Dataset& ds, SelfJoinConfig cfg) {
  obs::Tracer tracer(obs::TimeMode::Logical);
  cfg.tracer = &tracer;
  JoinEngine engine;
  RunRecord r;
  r.out = engine.self_join(ds, cfg);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  r.trace_json = os.str();
  return r;
}

void expect_bit_identical(const RunRecord& got, const RunRecord& want,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.out.results.pairs(), want.out.results.pairs());
  const auto& a = got.out.stats;
  const auto& b = want.out.stats;
  EXPECT_EQ(a.result_pairs, b.result_pairs);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.estimated_total_pairs, b.estimated_total_pairs);
  EXPECT_EQ(a.kernel.busy_cycles, b.kernel.busy_cycles);
  EXPECT_EQ(a.kernel.makespan_cycles, b.kernel.makespan_cycles);
  EXPECT_EQ(a.kernel.warps_launched, b.kernel.warps_launched);
  EXPECT_EQ(a.kernel.results_emitted, b.kernel.results_emitted);
  EXPECT_EQ(a.max_batch_pairs, b.max_batch_pairs);
  EXPECT_EQ(a.overflow_retries, b.overflow_retries);
  EXPECT_EQ(got.trace_json, want.trace_json);
}

/// The request mix one stress client issues: every variant, two radii,
/// sequential and host-parallel execution, multi-batch plans.
std::vector<SelfJoinConfig> client_mix() {
  std::vector<SelfJoinConfig> cfgs;
  for (const double eps : {0.03, 0.06}) {
    cfgs.push_back(SelfJoinConfig::gpu_calc_global(eps));
    cfgs.push_back(SelfJoinConfig::unicomp(eps));
    cfgs.push_back(SelfJoinConfig::lid_unicomp(eps));
    cfgs.push_back(SelfJoinConfig::sort_by_wl(eps));
    cfgs.push_back(SelfJoinConfig::work_queue_cfg(eps));
    cfgs.push_back(SelfJoinConfig::combined(eps));
  }
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].store_pairs = true;
    // Small buffer -> several batches, so concurrent runs exercise the
    // multi-batch execution loop, not just one launch each.
    cfgs[i].batching.buffer_pairs = 20000;
    // Alternate sequential and host-parallel simulation so the pool
    // depot is exercised alongside the shared caches.
    cfgs[i].device.host.num_threads = (i % 2 == 0) ? 0 : 2;
  }
  return cfgs;
}

// ---------------------------------------------------------------------------
// The acceptance-bar stress: 4 client threads with mixed variants and
// epsilons against one service, plus a mid-flight cancellation riding
// the worker pool, all bit-identical to a serial cold-engine replay.

TEST(Service, ConcurrentClientsBitIdenticalToSerialColdReplay) {
  const Dataset ds = gen_uniform(1200, 2, /*seed=*/2025, 0.0, 1.0);
  JoinService svc;
  const auto sd = svc.attach(ds);

  constexpr int kClients = 4;
  const std::vector<SelfJoinConfig> mix = client_mix();
  std::vector<std::vector<RunRecord>> results(kClients);
  std::latch start(kClients);

  // One queued request cancelled genuinely mid-flight while the client
  // threads hammer the shared caches.
  JoinRequest victim;
  victim.config = SelfJoinConfig::combined(0.3);
  victim.config.store_pairs = false;
  JoinService::Ticket victim_ticket = svc.submit(sd, victim);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      start.arrive_and_wait();
      // Each client walks the mix at a different phase so distinct
      // (epsilon, variant) cells are in flight simultaneously.
      for (std::size_t i = 0; i < mix.size(); ++i) {
        const std::size_t j = (i + static_cast<std::size_t>(t) * 3) % mix.size();
        results[t].push_back(record_run(svc, *sd, mix[j]));
      }
    });
  }
  while (!victim_ticket.started()) std::this_thread::yield();
  victim_ticket.cancel();
  for (auto& c : clients) c.join();

  const JoinResponse victim_response = victim_ticket.get();
  EXPECT_EQ(victim_response.status, JoinStatus::Cancelled);

  // Serial replay: every request on its own cold engine.
  for (int t = 0; t < kClients; ++t) {
    for (std::size_t i = 0; i < mix.size(); ++i) {
      const std::size_t j = (i + static_cast<std::size_t>(t) * 3) % mix.size();
      const RunRecord want = record_cold_engine_run(ds, mix[j]);
      expect_bit_identical(results[t][i], want,
                           "client " + std::to_string(t) + " req " +
                               std::to_string(i) + " (" + mix[j].name() +
                               " eps=" + std::to_string(mix[j].epsilon) + ")");
    }
  }
}

// ---------------------------------------------------------------------------
// Single-flight: N clients racing on a cold cache build each artifact
// exactly once — the misses counter IS the build counter.

TEST(Service, SingleFlightBuildsEachArtifactOnce) {
  const Dataset ds = gen_uniform(3000, 2, 7, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  constexpr int kClients = 8;
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  std::latch start(kClients);
  std::vector<std::thread> clients;
  std::vector<std::uint64_t> pair_counts(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      start.arrive_and_wait();
      pair_counts[static_cast<std::size_t>(t)] =
          svc.run(*sd, cfg).stats.result_pairs;
    });
  }
  for (auto& c : clients) c.join();

  for (int t = 1; t < kClients; ++t) {
    EXPECT_EQ(pair_counts[static_cast<std::size_t>(t)], pair_counts[0]);
  }
  // Exactly one build per artifact; every other client was served from
  // the cache (including waiters that arrived while it was building).
  EXPECT_EQ(metrics.counter("sj.cache.grid.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.grid.hits").value(), kClients - 1u);
  EXPECT_EQ(metrics.counter("sj.cache.workload.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.order.misses").value(), 1u);
  EXPECT_EQ(sd->cached_grid_count(), 1u);
  EXPECT_EQ(sd->cached_plan_count(), 1u);
}

// ---------------------------------------------------------------------------
// Admission-queue semantics. A long-running "blocker" pins the single
// worker so queue behaviour is deterministic; it is cancelled once the
// interesting part is over.

JoinRequest make_request(const Dataset&, double eps, int priority) {
  JoinRequest r;
  r.config = SelfJoinConfig::combined(eps);
  r.config.store_pairs = false;
  r.priority = priority;
  return r;
}

TEST(Service, PriorityOrdersQueuedRequests) {
  const Dataset ds = gen_uniform(1500, 2, 11, 0.0, 1.0);
  ServiceConfig scfg;
  scfg.workers = 1;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  // Occupy the only worker, then queue low/mid/high priority requests
  // in worst-case submission order.
  JoinService::Ticket blocker =
      svc.submit(sd, make_request(ds, /*eps=*/0.4, /*priority=*/0));
  while (!blocker.started()) std::this_thread::yield();
  JoinService::Ticket low = svc.submit(sd, make_request(ds, 0.02, 0));
  JoinService::Ticket mid = svc.submit(sd, make_request(ds, 0.02, 5));
  JoinService::Ticket high = svc.submit(sd, make_request(ds, 0.02, 10));
  EXPECT_EQ(svc.queue_depth(), 3u);
  blocker.cancel();

  const JoinResponse rb = blocker.get();
  EXPECT_EQ(rb.status, JoinStatus::Cancelled);
  const JoinResponse rl = low.get();
  const JoinResponse rm = mid.get();
  const JoinResponse rh = high.get();
  ASSERT_EQ(rl.status, JoinStatus::Ok);
  ASSERT_EQ(rm.status, JoinStatus::Ok);
  ASSERT_EQ(rh.status, JoinStatus::Ok);
  // A single worker dequeues strictly by priority, and wait time is
  // measured at dequeue — so the waits order inversely to priority
  // regardless of scheduling jitter.
  EXPECT_LT(rh.wait_seconds, rm.wait_seconds);
  EXPECT_LT(rm.wait_seconds, rl.wait_seconds);
}

TEST(Service, DeadlineExpiresInQueue) {
  const Dataset ds = gen_uniform(1500, 2, 12, 0.0, 1.0);
  ServiceConfig scfg;
  scfg.workers = 1;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinService::Ticket blocker = svc.submit(sd, make_request(ds, 0.4, 0));
  while (!blocker.started()) std::this_thread::yield();
  JoinRequest doomed = make_request(ds, 0.02, 0);
  doomed.deadline_seconds = 0.0;  // any queue wait at all exceeds this
  JoinService::Ticket t = svc.submit(sd, doomed);
  blocker.cancel();
  (void)blocker.get();

  const JoinResponse r = t.get();
  EXPECT_EQ(r.status, JoinStatus::Expired);
  EXPECT_FALSE(t.started());
}

TEST(Service, CancelledWhileQueuedNeverRuns) {
  const Dataset ds = gen_uniform(1500, 2, 13, 0.0, 1.0);
  ServiceConfig scfg;
  scfg.workers = 1;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinService::Ticket blocker = svc.submit(sd, make_request(ds, 0.4, 0));
  while (!blocker.started()) std::this_thread::yield();
  JoinService::Ticket t = svc.submit(sd, make_request(ds, 0.02, 0));
  t.cancel();  // still queued: the worker is pinned by the blocker
  blocker.cancel();
  (void)blocker.get();

  const JoinResponse r = t.get();
  EXPECT_EQ(r.status, JoinStatus::Cancelled);
  EXPECT_FALSE(t.started());
}

TEST(Service, MidFlightCancellationAbortsTheRun) {
  const Dataset ds = gen_uniform(2000, 2, 14, 0.0, 1.0);
  JoinService svc;
  const auto sd = svc.attach(ds);

  // Large radius -> a run long enough that the cancel lands while the
  // launch loop is executing (the token is polled at every warp-block
  // and batch boundary).
  JoinService::Ticket t = svc.submit(sd, make_request(ds, 0.5, 0));
  while (!t.started()) std::this_thread::yield();
  t.cancel();
  const JoinResponse r = t.get();
  EXPECT_EQ(r.status, JoinStatus::Cancelled);
  EXPECT_TRUE(t.started());
}

TEST(Service, FullQueueRejectsImmediately) {
  const Dataset ds = gen_uniform(1500, 2, 15, 0.0, 1.0);
  ServiceConfig scfg;
  scfg.workers = 1;
  scfg.max_queue_depth = 1;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinService::Ticket blocker = svc.submit(sd, make_request(ds, 0.4, 0));
  while (!blocker.started()) std::this_thread::yield();
  JoinService::Ticket queued = svc.submit(sd, make_request(ds, 0.02, 0));
  JoinService::Ticket overflow = svc.submit(sd, make_request(ds, 0.02, 0));
  const JoinResponse r = overflow.get();  // ready immediately
  EXPECT_EQ(r.status, JoinStatus::Rejected);

  queued.cancel();
  blocker.cancel();
  (void)blocker.get();
  (void)queued.get();
}

// ---------------------------------------------------------------------------
// The thread_local-engine regression (PR 5): resident working memory is
// bounded by the service depots, not by how many threads ever joined.

TEST(Service, ShortLivedThreadsDoNotGrowResidentState) {
  const Dataset ds = gen_uniform(400, 2, 16, 0.0, 1.0);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.device.host.num_threads = 2;  // exercise the pool depot too

  const auto spin_threads = [&](int n) {
    for (int i = 0; i < n; ++i) {
      std::thread([&] { (void)self_join(ds, cfg); }).join();
    }
  };

  JoinService& svc = JoinService::shared();
  spin_threads(4);
  const std::size_t arenas_after_4 = svc.resident_arenas();
  const std::size_t pools_after_4 = svc.resident_thread_pools();
  spin_threads(28);
  // With one thread_local engine per caller this grew linearly in the
  // number of threads; through the shared service it stays flat.
  EXPECT_EQ(svc.resident_arenas(), arenas_after_4);
  EXPECT_EQ(svc.resident_thread_pools(), pools_after_4);
  EXPECT_LE(svc.resident_arenas(), svc.config().max_pooled_arenas);
  EXPECT_LE(svc.resident_thread_pools(),
            svc.config().max_pooled_thread_pools);
}

// ---------------------------------------------------------------------------
// Sequential API semantics of the service layer.

TEST(Service, OneShotSelfJoinMatchesSharedRun) {
  const Dataset ds = gen_uniform(900, 2, 18, 0.0, 1.0);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  JoinService svc;
  const auto sd = svc.attach(ds);
  const SelfJoinOutput via_run = svc.run(*sd, cfg);
  const SelfJoinOutput one_shot = svc.self_join(ds, cfg);
  EXPECT_EQ(one_shot.results.pairs(), via_run.results.pairs());
  EXPECT_EQ(one_shot.stats.kernel.busy_cycles,
            via_run.stats.kernel.busy_cycles);
  // The ephemeral one-shot shell leaves no artifacts behind; the shared
  // handle keeps its single grid/plan.
  EXPECT_EQ(sd->cached_grid_count(), 1u);
  EXPECT_EQ(sd->cached_plan_count(), 1u);
}

TEST(Service, ConcurrentDistinctEpsilonsBuildEachGridOnce) {
  const Dataset ds = gen_uniform(2000, 2, 19, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  // Two racing clients per epsilon: single-flight must still build
  // each of the three grids exactly once.
  const double epsilons[] = {0.02, 0.04, 0.08};
  constexpr int kClients = 6;
  std::latch start(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      SelfJoinConfig cfg = SelfJoinConfig::unicomp(epsilons[t % 3]);
      start.arrive_and_wait();
      (void)svc.run(*sd, cfg);
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(metrics.counter("sj.cache.grid.misses").value(), 3u);
  EXPECT_EQ(metrics.counter("sj.cache.grid.hits").value(), 3u);
  EXPECT_EQ(sd->cached_grid_count(), 3u);
}

TEST(Service, CacheEvictionRespectsBounds) {
  const Dataset ds = gen_uniform(1000, 2, 20, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.max_cached_grids = 2;
  scfg.max_cached_plans = 2;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);
  for (const double eps : {0.01, 0.02, 0.03, 0.04, 0.05}) {
    (void)svc.run(*sd, SelfJoinConfig::sort_by_wl(eps));
  }
  EXPECT_LE(sd->cached_grid_count(), 2u);
  EXPECT_LE(sd->cached_plan_count(), 2u);
  EXPECT_GE(metrics.counter("sj.cache.evictions").value(), 3u);
}

TEST(Service, MutationRepairsSharedCachesInPlace) {
  Dataset ds = gen_uniform(800, 2, 21, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  const SelfJoinOutput before = svc.run(*sd, cfg);
  ds.set_coord(0, 0, ds.coord(0, 0));  // a self-move still bumps the generation
  const SelfJoinOutput after = svc.run(*sd, cfg);
  // The logged move repairs the shared grid in place: the second run is
  // a cache hit on the repaired artifact, nothing is dropped.
  EXPECT_EQ(metrics.counter("sj.cache.invalidations").value(), 0u);
  EXPECT_GE(metrics.counter("sj.incr.repairs").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.grid.misses").value(), 1u);
  EXPECT_GE(metrics.counter("sj.cache.grid.hits").value(), 1u);
  EXPECT_EQ(before.results.pairs(), after.results.pairs());

  // A bulk load loses the mutation window: the shared grid rebuilds and
  // dependent plans drop — full invalidation is now the fallback.
  { auto col = ds.fill_dim(0); (void)col; }
  const SelfJoinOutput rebuilt = svc.run(*sd, cfg);
  EXPECT_GE(metrics.counter("sj.incr.rebuild_fallbacks").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.invalidations").value(), 1u);
  EXPECT_EQ(after.results.pairs(), rebuilt.results.pairs());
}

TEST(Service, AttachedDatasetsHaveIndependentCaches) {
  const Dataset a = gen_uniform(600, 2, 22, 0.0, 1.0);
  const Dataset b = gen_uniform(700, 3, 23, 0.0, 1.0);
  JoinService svc;
  const auto sa = svc.attach(a);
  const auto sb = svc.attach(b);
  SelfJoinConfig cfg = SelfJoinConfig::unicomp(0.06);
  cfg.store_pairs = true;
  const SelfJoinOutput ra = svc.run(*sa, cfg);
  const SelfJoinOutput rb = svc.run(*sb, cfg);
  EXPECT_EQ(sa->cached_grid_count(), 1u);
  EXPECT_EQ(sb->cached_grid_count(), 1u);
  // Same config, different datasets: results must come from the right
  // cache shell.
  JoinEngine engine;
  EXPECT_EQ(ra.results.pairs(), engine.self_join(a, cfg).results.pairs());
  EXPECT_EQ(rb.results.pairs(), engine.self_join(b, cfg).results.pairs());
}

TEST(Service, RecycleKeepsSubsequentRunsCorrect) {
  const Dataset ds = gen_uniform(800, 2, 24, 0.0, 1.0);
  JoinService svc;
  const auto sd = svc.attach(ds);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  SelfJoinOutput first = svc.run(*sd, cfg);
  const auto want = first.results.pairs();
  svc.recycle(std::move(first));
  const SelfJoinOutput second = svc.run(*sd, cfg);
  EXPECT_EQ(second.results.pairs(), want);
}

TEST(Service, GenerousDeadlineCompletes) {
  const Dataset ds = gen_uniform(600, 2, 25, 0.0, 1.0);
  JoinService svc;
  const auto sd = svc.attach(ds);
  JoinRequest req = make_request(ds, 0.05, 0);
  req.deadline_seconds = 3600.0;
  JoinService::Ticket t = svc.submit(sd, req);
  const JoinResponse r = t.get();
  EXPECT_EQ(r.status, JoinStatus::Ok);
}

TEST(Service, CancelAfterCompletionIsBenign) {
  const Dataset ds = gen_uniform(600, 2, 26, 0.0, 1.0);
  JoinService svc;
  const auto sd = svc.attach(ds);
  JoinService::Ticket t = svc.submit(sd, make_request(ds, 0.05, 0));
  const JoinResponse r = t.get();
  EXPECT_EQ(r.status, JoinStatus::Ok);
  t.cancel();  // the race with completion is documented as benign
}

TEST(Service, DestructorDrainsOutstandingQueue) {
  const Dataset ds = gen_uniform(600, 2, 27, 0.0, 1.0);
  std::vector<JoinService::Ticket> tickets;
  {
    ServiceConfig scfg;
    scfg.workers = 1;
    JoinService svc(scfg);
    const auto sd = svc.attach(ds);
    for (int i = 0; i < 4; ++i) {
      tickets.push_back(svc.submit(sd, make_request(ds, 0.03, i)));
    }
    // Service destroyed with requests still queued: the shutdown
    // contract is drain-then-join, so every ticket gets an answer.
  }
  for (auto& t : tickets) {
    EXPECT_EQ(t.get().status, JoinStatus::Ok);
  }
}

TEST(Service, MixedPrioritySubmitStormAllReachTerminalStates) {
  const Dataset ds = gen_uniform(700, 2, 28, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.workers = 4;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  constexpr int kRequests = 32;
  std::vector<JoinService::Ticket> tickets;
  for (int i = 0; i < kRequests; ++i) {
    tickets.push_back(svc.submit(sd, make_request(ds, 0.02 + (i % 3) * 0.02,
                                                  /*priority=*/i % 4)));
    if (i % 5 == 0) tickets.back().cancel();
  }
  std::uint64_t ok = 0, cancelled = 0;
  for (auto& t : tickets) {
    const JoinResponse r = t.get();
    ASSERT_TRUE(r.status == JoinStatus::Ok ||
                r.status == JoinStatus::Cancelled)
        << to_string(r.status) << " " << r.error;
    (r.status == JoinStatus::Ok ? ok : cancelled) += 1;
  }
  EXPECT_EQ(ok + cancelled, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(metrics.counter("svc.submitted").value(),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(metrics.counter("svc.completed").value(), ok);
  EXPECT_EQ(metrics.counter("svc.cancelled").value(), cancelled);
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(Service, QueueDepthReturnsToZeroAfterDraining) {
  const Dataset ds = gen_uniform(600, 2, 29, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.workers = 2;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);
  std::vector<JoinService::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(svc.submit(sd, make_request(ds, 0.04, 0)));
  }
  for (auto& t : tickets) (void)t.get();
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_EQ(metrics.gauge("svc.queue_depth").value(), 0.0);
}

// ---------------------------------------------------------------------------
// Service metrics: the svc.* instruments reflect the request stream.

TEST(Service, MetricsCountTerminalStates) {
  const Dataset ds = gen_uniform(800, 2, 17, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.workers = 2;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  std::vector<JoinService::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(svc.submit(sd, make_request(ds, 0.05, 0)));
  }
  for (auto& t : tickets) {
    const JoinResponse r = t.get();
    EXPECT_EQ(r.status, JoinStatus::Ok);
    EXPECT_GE(r.service_seconds, 0.0);
  }
  EXPECT_EQ(metrics.counter("svc.submitted").value(), 4u);
  EXPECT_EQ(metrics.counter("svc.completed").value(), 4u);
  EXPECT_EQ(metrics.counter("svc.cancelled").value(), 0u);
  EXPECT_EQ(metrics.time_histogram("svc.queue_wait_seconds").total(), 4u);
  EXPECT_EQ(metrics.time_histogram("svc.service_seconds").total(), 4u);
  EXPECT_TRUE(metrics.gauge("svc.queue_depth").is_set());
}

// ---------------------------------------------------------------------------
// Result-serving layer (docs/SERVICE.md): request coalescing, the
// exact-hit result cache, byte-budget eviction and generation
// invalidation. Differential subsumption coverage lives in
// test_differential.cpp.

TEST(Service, ResultCoalescingExecutesOnce) {
  const Dataset ds = gen_uniform(2500, 2, 31, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.workers = 4;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  constexpr int kRequests = 8;
  std::vector<JoinService::Ticket> tickets;
  for (int i = 0; i < kRequests; ++i) {
    JoinRequest req;
    req.config = cfg;
    tickets.push_back(svc.submit(sd, req));
  }
  JoinEngine engine;
  const SelfJoinOutput want = engine.self_join(ds, cfg);

  int executed = 0;
  for (auto& t : tickets) {
    const JoinResponse r = t.get();
    ASSERT_EQ(r.status, JoinStatus::Ok) << r.error;
    EXPECT_EQ(r.output.results.pairs(), want.results.pairs());
    EXPECT_EQ(r.output.stats.result_pairs, want.stats.result_pairs);
    if (r.breakdown.served_from == obs::ServedFrom::Execution) ++executed;
  }
  // The result gate decides exact-hit / attach / primary inside one
  // critical section, and publish swaps flight -> cache entry
  // atomically: however the 4 workers interleave, exactly one request
  // executes and the other seven attach to its flight or hit the
  // published entry.
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(metrics.counter("svc.result_cache.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("svc.result_cache.hits").value() +
                metrics.counter("svc.result_cache.coalesced").value(),
            static_cast<std::uint64_t>(kRequests - 1));
  // Served responses still count as completed requests.
  EXPECT_EQ(metrics.counter("svc.completed").value(),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(metrics.time_histogram("svc.service_seconds").total(),
            static_cast<std::uint64_t>(kRequests));
}

TEST(Service, ResultCacheServesExactRepeatVariantAgnostic) {
  const Dataset ds = gen_uniform(1000, 2, 32, 0.0, 1.0);
  JoinService svc;
  const auto sd = svc.attach(ds);

  JoinRequest req;
  req.config = SelfJoinConfig::unicomp(0.05);
  req.config.store_pairs = true;
  const JoinResponse cold = svc.submit(sd, req).get();
  ASSERT_EQ(cold.status, JoinStatus::Ok) << cold.error;
  EXPECT_EQ(cold.breakdown.served_from, obs::ServedFrom::Execution);

  const JoinResponse warm = svc.submit(sd, req).get();
  ASSERT_EQ(warm.status, JoinStatus::Ok) << warm.error;
  EXPECT_EQ(warm.breakdown.served_from, obs::ServedFrom::ResultCache);
  EXPECT_EQ(warm.output.results.pairs(), cold.output.results.pairs());

  // The key is variant-agnostic: a different kernel variant at the same
  // epsilon is the same answer, so it is served, not executed.
  JoinRequest other_variant;
  other_variant.config = SelfJoinConfig::work_queue_cfg(0.05);
  other_variant.config.store_pairs = true;
  const JoinResponse across = svc.submit(sd, other_variant).get();
  ASSERT_EQ(across.status, JoinStatus::Ok) << across.error;
  EXPECT_EQ(across.breakdown.served_from, obs::ServedFrom::ResultCache);
  EXPECT_EQ(across.output.results.pairs(), cold.output.results.pairs());

  // A count-only request is servable from a pairs-bearing entry.
  JoinRequest count_only;
  count_only.config = SelfJoinConfig::combined(0.05);
  count_only.config.store_pairs = false;
  const JoinResponse counted = svc.submit(sd, count_only).get();
  ASSERT_EQ(counted.status, JoinStatus::Ok) << counted.error;
  EXPECT_EQ(counted.breakdown.served_from, obs::ServedFrom::ResultCache);
  EXPECT_FALSE(counted.output.results.stores_pairs());
  EXPECT_EQ(counted.output.results.count(), cold.output.results.count());

  // Occupancy surfaces through both the handle and the snapshot.
  EXPECT_EQ(sd->result_cache_entries(), 1u);
  EXPECT_GT(sd->result_cache_bytes(), 0u);
  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.result_entries, 1u);
  EXPECT_EQ(snap.result_bytes, sd->result_cache_bytes());
  EXPECT_EQ(snap.result_budget_bytes, svc.config().max_result_cache_bytes);
}

TEST(Service, ResultCacheEvictionUnderLoadStaysCorrect) {
  const Dataset ds = gen_uniform(1200, 2, 33, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.workers = 4;
  // A budget that holds only a couple of the five answers below, so
  // concurrent serving and LRU eviction constantly interleave. Entries
  // being served are pinned by shared_ptr: eviction only drops the
  // cache's reference, never the bytes under an in-flight response.
  scfg.max_result_cache_bytes = std::size_t{96} * 1024;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  const std::vector<double> epsilons = {0.01, 0.02, 0.03, 0.04, 0.05};
  JoinEngine engine;
  std::vector<std::vector<ResultPair>> want;
  for (const double eps : epsilons) {
    SelfJoinConfig cfg = SelfJoinConfig::combined(eps);
    cfg.store_pairs = true;
    want.push_back(engine.self_join(ds, cfg).results.pairs());
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::vector<JoinResponse>> responses(kThreads);
  std::vector<std::vector<std::size_t>> eps_index(kThreads);
  std::latch start(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int r = 0; r < kRounds; ++r) {
        // Phase-shifted walk: distinct epsilons are in flight at once,
        // so inserts evict entries other threads are serving from.
        const std::size_t j =
            (static_cast<std::size_t>(r) + static_cast<std::size_t>(t) * 2) %
            epsilons.size();
        JoinRequest req;
        req.config = SelfJoinConfig::combined(epsilons[j]);
        req.config.store_pairs = true;
        responses[t].push_back(svc.submit(sd, req).get());
        eps_index[t].push_back(j);
      }
    });
  }
  for (auto& c : clients) c.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      const JoinResponse& resp = responses[t][static_cast<std::size_t>(r)];
      ASSERT_EQ(resp.status, JoinStatus::Ok)
          << "client " << t << " round " << r << ": " << resp.error;
      EXPECT_EQ(resp.output.results.pairs(),
                want[eps_index[t][static_cast<std::size_t>(r)]])
          << "client " << t << " round " << r;
    }
  }
  EXPECT_GT(metrics.counter("svc.result_cache.evictions").value(), 0u);
  // The byte budget held throughout: whatever survived fits under it.
  EXPECT_LE(sd->result_cache_bytes(), scfg.max_result_cache_bytes);
  EXPECT_EQ(svc.snapshot().result_bytes, sd->result_cache_bytes());
}

TEST(Service, ZeroResultBudgetDisablesRetentionNotCoalescing) {
  const Dataset ds = gen_uniform(2500, 2, 34, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.workers = 4;
  scfg.max_result_cache_bytes = 0;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  SelfJoinConfig cfg = SelfJoinConfig::sort_by_wl(0.05);
  cfg.store_pairs = true;
  constexpr int kRequests = 8;
  std::vector<JoinService::Ticket> tickets;
  for (int i = 0; i < kRequests; ++i) {
    JoinRequest req;
    req.config = cfg;
    tickets.push_back(svc.submit(sd, req));
  }
  std::vector<JoinResponse> responses;
  for (auto& t : tickets) responses.push_back(t.get());
  for (const JoinResponse& r : responses) {
    ASSERT_EQ(r.status, JoinStatus::Ok) << r.error;
    EXPECT_EQ(r.output.results.pairs(), responses[0].output.results.pairs());
  }
  // No retention: nothing is ever an exact hit, and nothing is kept.
  EXPECT_EQ(metrics.counter("svc.result_cache.hits").value(), 0u);
  // Single-flight attachment still works — every request either misses
  // (and executes) or rides an in-flight duplicate.
  EXPECT_EQ(metrics.counter("svc.result_cache.misses").value() +
                metrics.counter("svc.result_cache.coalesced").value(),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(sd->result_cache_entries(), 0u);
  EXPECT_EQ(sd->result_cache_bytes(), 0u);

  // A serial repeat with no duplicate in flight executes again.
  JoinRequest again;
  again.config = cfg;
  const JoinResponse repeat = svc.submit(sd, again).get();
  ASSERT_EQ(repeat.status, JoinStatus::Ok) << repeat.error;
  EXPECT_EQ(repeat.breakdown.served_from, obs::ServedFrom::Execution);
}

TEST(Service, MutationInvalidatesResultCache) {
  Dataset ds = gen_uniform(900, 2, 35, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinRequest req;
  req.config = SelfJoinConfig::combined(0.05);
  req.config.store_pairs = true;
  const JoinResponse first = svc.submit(sd, req).get();
  ASSERT_EQ(first.status, JoinStatus::Ok) << first.error;
  EXPECT_EQ(first.breakdown.served_from, obs::ServedFrom::Execution);
  const JoinResponse cached = svc.submit(sd, req).get();
  ASSERT_EQ(cached.status, JoinStatus::Ok) << cached.error;
  EXPECT_EQ(cached.breakdown.served_from, obs::ServedFrom::ResultCache);

  ds.set_coord(0, 0, ds.coord(0, 0));  // a self-move still bumps the generation

  // The stale-generation entry must never serve the new dataset state.
  const JoinResponse fresh = svc.submit(sd, req).get();
  ASSERT_EQ(fresh.status, JoinStatus::Ok) << fresh.error;
  EXPECT_EQ(fresh.breakdown.served_from, obs::ServedFrom::Execution);
  // The value-preserving write keeps the answer itself unchanged.
  EXPECT_EQ(fresh.output.results.pairs(), first.output.results.pairs());
  EXPECT_GE(metrics.counter("svc.result_cache.invalidations").value(), 1u);
  // The fresh execution repopulated the cache under the new generation.
  EXPECT_EQ(sd->result_cache_entries(), 1u);
}

TEST(Service, ResultSetMemoryBytesTracksCapacity) {
  ResultSet rs(true);
  EXPECT_EQ(rs.memory_bytes(), 0u);
  rs.reserve(100);
  EXPECT_GE(rs.memory_bytes(), 100u * sizeof(ResultPair));
  rs.emit(1, 2);
  EXPECT_EQ(rs.memory_bytes(), rs.pairs().capacity() * sizeof(ResultPair));
  // Count-only mode holds no pair storage, whatever is reserved.
  ResultSet counts(false);
  counts.add_count(5);
  counts.reserve(1000);
  EXPECT_EQ(counts.memory_bytes(), 0u);
}

}  // namespace
}  // namespace gsj
