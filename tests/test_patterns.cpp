// Property tests: cell access patterns (§II-C4, §III-B).
//
// Core invariant: for every unordered pair of adjacent cells, the
// unidirectional patterns (UNICOMP, LID-UNICOMP) accept exactly one
// direction; FULL accepts both. This is what guarantees the patterns
// produce the complete, duplicate-free result.
#include <gtest/gtest.h>

#include <vector>

#include "data/dataset.hpp"
#include "grid/cell_access.hpp"
#include "grid/grid_index.hpp"

namespace gsj {
namespace {

/// Dense grid fixture: one point per cell center of a `side^dims` box,
/// epsilon 1, so every cell is non-empty and coordinates == indices.
Dataset dense_grid(int dims, int side) {
  Dataset ds(dims);
  std::vector<double> p(static_cast<std::size_t>(dims), 0.0);
  std::vector<int> idx(static_cast<std::size_t>(dims), 0);
  for (;;) {
    for (int d = 0; d < dims; ++d) {
      p[static_cast<std::size_t>(d)] = idx[static_cast<std::size_t>(d)] + 0.5;
    }
    ds.push_back(p);
    int d = dims - 1;
    while (d >= 0 && ++idx[static_cast<std::size_t>(d)] == side) {
      idx[static_cast<std::size_t>(d)] = 0;
      --d;
    }
    if (d < 0) break;
  }
  return ds;
}

/// Identifier-safe pattern name for parameterized test labels.
std::string pattern_ident(CellPattern p) {
  switch (p) {
    case CellPattern::Full: return "Full";
    case CellPattern::Unicomp: return "Unicomp";
    case CellPattern::LidUnicomp: return "LidUnicomp";
  }
  return "Unknown";
}

class PatternCoverage : public ::testing::TestWithParam<std::tuple<CellPattern, int>> {};

TEST_P(PatternCoverage, EachAdjacentPairCoveredExactlyOnce) {
  const auto [pattern, dims] = GetParam();
  const int side = dims <= 2 ? 6 : (dims == 3 ? 5 : 4);
  const Dataset ds = dense_grid(dims, side);
  const GridIndex g(ds, 1.0);
  ASSERT_EQ(g.cells().size(), ds.size());  // all cells non-empty

  const int expected_per_pair = pattern == CellPattern::Full ? 2 : 1;
  for (std::size_t ci = 0; ci < g.cells().size(); ++ci) {
    const CellCoords oc = g.decode(g.cells()[ci].linear_id);
    const std::uint64_t oid = g.cells()[ci].linear_id;
    g.for_each_adjacent(
        ci, /*include_origin=*/false,
        [&](std::size_t nidx, const CellCoords& nc, std::uint64_t nid) {
          const bool fwd = pattern_accepts(pattern, dims, oc, nc, oid, nid);
          const CellCoords oc2 = g.decode(g.cells()[nidx].linear_id);
          const bool bwd = pattern_accepts(pattern, dims, oc2, oc, nid, oid);
          EXPECT_EQ(static_cast<int>(fwd) + static_cast<int>(bwd),
                    expected_per_pair)
              << to_string(pattern) << " dims=" << dims << " oid=" << oid
              << " nid=" << nid;
        });
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatternsAllDims, PatternCoverage,
    ::testing::Combine(::testing::Values(CellPattern::Full,
                                         CellPattern::Unicomp,
                                         CellPattern::LidUnicomp),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return pattern_ident(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "D";
    });

TEST(PatternFanout, Unicomp2DMatchesPaperFigure2) {
  // Figure 2: cells compare to 0 (even,even), 2 (odd x), 6 (odd y) or
  // 8 (odd,odd) neighbors.
  auto fan = [](int x, int y) {
    CellCoords c;
    c[0] = x;
    c[1] = y;
    return pattern_fanout(CellPattern::Unicomp, 2, c);
  };
  EXPECT_EQ(fan(0, 0), 0u);
  EXPECT_EQ(fan(1, 0), 2u);
  EXPECT_EQ(fan(0, 1), 6u);
  EXPECT_EQ(fan(1, 1), 8u);
}

TEST(PatternFanout, LidUnicompIsUniformHalf) {
  // Figure 5: every inner cell compares to (3^n - 1)/2 neighbors.
  for (int dims = 1; dims <= 6; ++dims) {
    std::uint64_t pow3 = 1;
    for (int d = 0; d < dims; ++d) pow3 *= 3;
    for (int parity = 0; parity < 2; ++parity) {
      CellCoords c;
      for (int d = 0; d < dims; ++d) c[d] = 4 + parity;
      EXPECT_EQ(pattern_fanout(CellPattern::LidUnicomp, dims, c),
                (pow3 - 1) / 2);
    }
  }
}

TEST(PatternFanout, FullIsAllNeighbors) {
  CellCoords c;
  EXPECT_EQ(pattern_fanout(CellPattern::Full, 2, c), 8u);
  EXPECT_EQ(pattern_fanout(CellPattern::Full, 6, c), 728u);
}

TEST(PatternFanout, UnicompAveragesHalfOfFull) {
  // Across the 2^n parity classes, UNICOMP's mean fanout equals
  // LID-UNICOMP's uniform fanout — same total work, different balance.
  for (int dims = 1; dims <= 5; ++dims) {
    std::uint64_t sum = 0;
    const int classes = 1 << dims;
    for (int mask = 0; mask < classes; ++mask) {
      CellCoords c;
      for (int d = 0; d < dims; ++d) c[d] = (mask >> d) & 1;
      sum += pattern_fanout(CellPattern::Unicomp, dims, c);
    }
    std::uint64_t pow3 = 1;
    for (int d = 0; d < dims; ++d) pow3 *= 3;
    EXPECT_EQ(sum, static_cast<std::uint64_t>(classes) * (pow3 - 1) / 2);
  }
}

TEST(PatternFanout, UnicompVarianceExceedsLidUnicomp) {
  // The motivation for LID-UNICOMP (§III-B): UNICOMP's per-cell fanout
  // varies with coordinate parity while LID-UNICOMP's does not.
  const int dims = 2;
  std::uint64_t mn = ~0ull, mx = 0;
  for (int mask = 0; mask < 4; ++mask) {
    CellCoords c;
    for (int d = 0; d < dims; ++d) c[d] = (mask >> d) & 1;
    const auto f = pattern_fanout(CellPattern::Unicomp, dims, c);
    mn = std::min(mn, f);
    mx = std::max(mx, f);
  }
  EXPECT_EQ(mn, 0u);
  EXPECT_EQ(mx, 8u);
}

TEST(Pattern, ToString) {
  EXPECT_EQ(to_string(CellPattern::Full), "FULL");
  EXPECT_EQ(to_string(CellPattern::Unicomp), "UNICOMP");
  EXPECT_EQ(to_string(CellPattern::LidUnicomp), "LID-UNICOMP");
  EXPECT_FALSE(is_unidirectional(CellPattern::Full));
  EXPECT_TRUE(is_unidirectional(CellPattern::Unicomp));
  EXPECT_TRUE(is_unidirectional(CellPattern::LidUnicomp));
}

}  // namespace
}  // namespace gsj
