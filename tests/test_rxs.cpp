// Directed R×S ε-join tests (docs/JOINS.md): degenerate shapes, the
// canonical (r_id, s_id) orientation contract, overflow recovery,
// result-cache / coalescing key isolation across join modes, and the
// pinned ResultKey regression (a Self hit must never serve an R×S
// request, and a probe mutation must rotate the key).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "grid/grain.hpp"
#include "sj/engine.hpp"
#include "sj/pipeline.hpp"
#include "sj/selfjoin.hpp"
#include "sj/service.hpp"
#include "support/oracle.hpp"

namespace gsj {
namespace {

using testsupport::brute_force_rxs;
using testsupport::make_rxs_case;
using testsupport::RxsCase;

Dataset line_dataset(int n, double x0, double step) {
  Dataset ds(2);
  for (int i = 0; i < n; ++i) {
    const double p[] = {x0 + i * step, 0.0};
    ds.push_back(p);
  }
  return ds;
}

TEST(RxsJoin, EmptyEitherSideReturnsEmpty) {
  const Dataset empty(2);
  const Dataset one = line_dataset(1, 0.0, 1.0);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.5);
  cfg.store_pairs = true;
  for (const auto& [r, s] : {std::pair{&empty, &one}, std::pair{&one, &empty},
                             std::pair{&empty, &empty}}) {
    const SelfJoinOutput out = rxs_join(*r, *s, cfg);
    EXPECT_TRUE(out.results.pairs().empty());
    EXPECT_EQ(out.stats.result_pairs, 0u);
  }
}

TEST(RxsJoin, ZeroEpsilonThrows) {
  const Dataset r = line_dataset(3, 0.0, 1.0);
  const Dataset s = line_dataset(3, 0.5, 1.0);
  SelfJoinConfig cfg;
  cfg.epsilon = 0.0;
  EXPECT_THROW((void)rxs_join(r, s, cfg), CheckError);
  cfg.epsilon = -1.0;
  EXPECT_THROW((void)rxs_join(r, s, cfg), CheckError);
}

TEST(RxsJoin, MismatchedDimsThrows) {
  const Dataset r = line_dataset(3, 0.0, 1.0);
  Dataset s(3);
  const double p[] = {0.0, 0.0, 0.0};
  s.push_back(p);
  EXPECT_THROW((void)rxs_join(r, s, SelfJoinConfig::combined(0.5)),
               CheckError);
}

TEST(RxsJoin, SinglePointEachSide) {
  const Dataset r = line_dataset(1, 0.0, 1.0);
  const Dataset near = line_dataset(1, 0.3, 1.0);
  const Dataset far = line_dataset(1, 5.0, 1.0);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.5);
  cfg.store_pairs = true;
  const SelfJoinOutput hit = rxs_join(r, near, cfg);
  ASSERT_EQ(hit.results.pairs().size(), 1u);
  EXPECT_EQ(hit.results.pairs()[0], ResultPair(0, 0));
  const SelfJoinOutput miss = rxs_join(r, far, cfg);
  EXPECT_TRUE(miss.results.pairs().empty());
}

TEST(RxsJoin, OrientationIsAlwaysRThenS) {
  // |R| >> |S| grids S; |R| << |S| grids R and flips the emitted pairs.
  // Both orientations must produce identical (r_id, s_id) pairs.
  const Dataset big = line_dataset(40, 0.0, 0.1);
  const Dataset small = line_dataset(3, 0.05, 0.1);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.2);
  cfg.store_pairs = true;
  const ResultSet want_big_r = brute_force_rxs(big, small, 0.2);
  const SelfJoinOutput a = rxs_join(big, small, cfg);
  EXPECT_EQ(a.results.pairs(), want_big_r.pairs());
  const ResultSet want_small_r = brute_force_rxs(small, big, 0.2);
  const SelfJoinOutput b = rxs_join(small, big, cfg);
  EXPECT_EQ(b.results.pairs(), want_small_r.pairs());
}

TEST(RxsJoin, OverflowRecoveryIsBitIdentical) {
  // A buffer far below the result size forces rollback + split
  // recovery; the recovered run must be bit-identical to an unbounded
  // one — in both join modes. Strided variant: WORKQUEUE's hard
  // per-point bound can never overflow by construction.
  const RxsCase c = make_rxs_case(5);  // seed % 6 == 5: duplicates family
  SelfJoinConfig roomy = SelfJoinConfig::lid_unicomp(c.epsilon);
  roomy.store_pairs = true;
  const SelfJoinOutput want = rxs_join(c.r, c.s, roomy);
  ASSERT_GT(want.results.pairs().size(), 64u);

  SelfJoinConfig tight = roomy;
  tight.batching.buffer_pairs = 64;
  tight.batching.inject_estimator_skew = 0.02;  // plan far too few batches
  const SelfJoinOutput got = rxs_join(c.r, c.s, tight);
  EXPECT_TRUE(got.stats.buffer_overflowed);
  EXPECT_GT(got.stats.overflow_retries, 0u);
  EXPECT_EQ(got.results.pairs(), want.results.pairs());

  // Self mode on the same gridded side, same tight buffer: the shared
  // recovery path must stay bit-identical there too.
  SelfJoinConfig self_tight = SelfJoinConfig::lid_unicomp(c.epsilon);
  self_tight.store_pairs = true;
  self_tight.batching.buffer_pairs = 64;
  self_tight.batching.inject_estimator_skew = 0.02;
  SelfJoinConfig self_roomy = SelfJoinConfig::lid_unicomp(c.epsilon);
  self_roomy.store_pairs = true;
  const SelfJoinOutput self_want = self_join(c.s, self_roomy);
  const SelfJoinOutput self_got = self_join(c.s, self_tight);
  EXPECT_EQ(self_got.results.pairs(), self_want.results.pairs());
}

TEST(RxsJoin, ResultCacheNeverCrossesModes) {
  // The ISSUE's latent-collision regression, behavioral form: a cached
  // Self answer at ε must never serve an R×S request at the same ε on
  // the same dataset, and vice versa.
  const RxsCase c = make_rxs_case(13);  // overlapping family
  JoinService svc;
  const auto sd = svc.attach(c.s);

  JoinRequest self_req;
  self_req.config = SelfJoinConfig::combined(c.epsilon);
  self_req.config.store_pairs = true;
  const JoinResponse self1 = svc.submit(sd, self_req).get();
  ASSERT_EQ(self1.status, JoinStatus::Ok) << self1.error;
  ASSERT_EQ(self1.breakdown.served_from, obs::ServedFrom::Execution);

  // Same ε, R×S mode: must execute, not hit the Self entry.
  JoinRequest rxs_req;
  rxs_req.config = SelfJoinConfig::combined(c.epsilon);
  rxs_req.config.store_pairs = true;
  rxs_req.config.mode = JoinMode::RxS;
  rxs_req.config.probe = &c.r;
  const JoinResponse rxs1 = svc.submit(sd, rxs_req).get();
  ASSERT_EQ(rxs1.status, JoinStatus::Ok) << rxs1.error;
  EXPECT_EQ(rxs1.breakdown.served_from, obs::ServedFrom::Execution);
  const ResultSet truth = brute_force_rxs(c.r, c.s, c.epsilon);
  EXPECT_EQ(rxs1.output.results.pairs(), truth.pairs());

  // Repeats hit their own entries, each serving its own pair set.
  const JoinResponse rxs2 = svc.submit(sd, rxs_req).get();
  ASSERT_EQ(rxs2.status, JoinStatus::Ok);
  EXPECT_EQ(rxs2.breakdown.served_from, obs::ServedFrom::ResultCache);
  EXPECT_EQ(rxs2.output.results.pairs(), truth.pairs());
  const JoinResponse self2 = svc.submit(sd, self_req).get();
  ASSERT_EQ(self2.status, JoinStatus::Ok);
  EXPECT_EQ(self2.breakdown.served_from, obs::ServedFrom::ResultCache);
  EXPECT_EQ(self2.output.results.pairs(), self1.output.results.pairs());
}

TEST(RxsJoin, ProbeMutationRotatesCacheKey) {
  RxsCase c = make_rxs_case(19);  // overlapping family
  JoinService svc;
  const auto sd = svc.attach(c.s);
  JoinRequest req;
  req.config = SelfJoinConfig::combined(c.epsilon);
  req.config.store_pairs = true;
  req.config.mode = JoinMode::RxS;
  req.config.probe = &c.r;
  const JoinResponse r1 = svc.submit(sd, req).get();
  ASSERT_EQ(r1.status, JoinStatus::Ok) << r1.error;

  // Move a probe point: its generation advances, so the cached entry
  // must not serve the new request — and the re-executed answer must
  // match the post-mutation oracle.
  std::vector<double> p(static_cast<std::size_t>(c.r.dims()));
  for (int d = 0; d < c.r.dims(); ++d) {
    p[static_cast<std::size_t>(d)] = c.r.coord(0, d);
  }
  p[0] += 3.0 * c.epsilon;
  c.r.move_point(0, p);
  const JoinResponse r2 = svc.submit(sd, req).get();
  ASSERT_EQ(r2.status, JoinStatus::Ok) << r2.error;
  EXPECT_EQ(r2.breakdown.served_from, obs::ServedFrom::Execution);
  EXPECT_EQ(r2.output.results.pairs(),
            brute_force_rxs(c.r, c.s, c.epsilon).pairs());
}

TEST(RxsJoin, SelfSubsumptionDoesNotServeRxs) {
  // A wide-ε Self entry with pairs is a subsumption candidate for
  // narrower Self requests — but never for an R×S request at a
  // narrower ε.
  const RxsCase c = make_rxs_case(25);  // overlapping family
  JoinService svc;
  const auto sd = svc.attach(c.s);
  JoinRequest wide;
  wide.config = SelfJoinConfig::combined(c.epsilon);
  wide.config.store_pairs = true;
  ASSERT_EQ(svc.submit(sd, wide).get().status, JoinStatus::Ok);

  JoinRequest narrow_rxs;
  narrow_rxs.config = SelfJoinConfig::combined(0.5 * c.epsilon);
  narrow_rxs.config.store_pairs = true;
  narrow_rxs.config.mode = JoinMode::RxS;
  narrow_rxs.config.probe = &c.r;
  const JoinResponse r = svc.submit(sd, narrow_rxs).get();
  ASSERT_EQ(r.status, JoinStatus::Ok) << r.error;
  EXPECT_EQ(r.breakdown.served_from, obs::ServedFrom::Execution);
  EXPECT_EQ(r.output.results.pairs(),
            brute_force_rxs(c.r, c.s, 0.5 * c.epsilon).pairs());
}

TEST(RxsJoin, ResultKeyPinnedRegression) {
  // The latent collision this PR fixes: ResultKey ignored the join
  // mode and the probe's identity, so a Self answer could be handed to
  // an R×S request (or a stale probe generation's answer to a fresh
  // one). Pin the digest separation directly.
  const Dataset gridded = line_dataset(4, 0.0, 1.0);
  Dataset probe = line_dataset(4, 0.5, 1.0);

  SelfJoinConfig self_cfg = SelfJoinConfig::combined(0.5);
  SelfJoinConfig rxs_cfg = self_cfg;
  rxs_cfg.mode = JoinMode::RxS;
  rxs_cfg.probe = &probe;
  SelfJoinConfig knn_cfg = self_cfg;
  knn_cfg.mode = JoinMode::Knn;
  knn_cfg.probe = &probe;
  knn_cfg.knn_k = 3;

  const auto self_key = detail::make_result_key(1, self_cfg);
  const auto rxs_key = detail::make_result_key(1, rxs_cfg);
  const auto knn_key = detail::make_result_key(1, knn_cfg);
  EXPECT_NE(self_key.config_digest, rxs_key.config_digest);
  EXPECT_NE(self_key.config_digest, knn_key.config_digest);
  EXPECT_NE(rxs_key.config_digest, knn_key.config_digest);

  // Probe identity: a different dataset (fresh uid) and a mutated
  // probe (same uid, new generation) both rotate the digest.
  const Dataset other_probe = line_dataset(4, 0.5, 1.0);
  SelfJoinConfig other_cfg = rxs_cfg;
  other_cfg.probe = &other_probe;
  EXPECT_NE(detail::make_result_key(1, other_cfg).config_digest,
            rxs_key.config_digest);
  const std::uint64_t before = detail::make_result_key(1, rxs_cfg).config_digest;
  probe.set_coord(0, 0, 9.0);
  EXPECT_NE(detail::make_result_key(1, rxs_cfg).config_digest, before);

  // KNN knobs are part of the key: k, growth, and the initial ε.
  SelfJoinConfig knn_k5 = knn_cfg;
  knn_k5.knn_k = 5;
  EXPECT_NE(detail::make_result_key(1, knn_k5).config_digest,
            detail::make_result_key(1, knn_cfg).config_digest);
  SelfJoinConfig knn_g3 = knn_cfg;
  knn_g3.knn_growth = 3.0;
  EXPECT_NE(detail::make_result_key(1, knn_g3).config_digest,
            detail::make_result_key(1, knn_cfg).config_digest);

  // Variant knobs stay out of the digest: the key is variant-agnostic
  // (the existing Self behaviour, preserved).
  SelfJoinConfig other_variant = SelfJoinConfig::unicomp(0.5);
  EXPECT_EQ(detail::make_result_key(1, other_variant).config_digest,
            self_key.config_digest);

  // And the digest is byte-sensitive, not low-byte-truncated: two
  // probe generations that share a low byte must not collide. (The
  // full-64-bit FNV fold guarantees it; pin one concrete instance.)
  EXPECT_NE(self_key.config_digest, 0u);
}

TEST(RxsJoin, FleetProbeGrainsCoverEveryProbePoint) {
  // Direct unit check of the R×S grain partitioner: grains are
  // contiguous, cover [0, n), and respect max_grains.
  const std::vector<std::uint64_t> w = {9, 1, 1, 1, 9, 1, 1, 1};
  const auto grains = partition_probe_grains(w.size(), w, 4);
  ASSERT_FALSE(grains.empty());
  ASSERT_LE(grains.size(), 4u);
  EXPECT_EQ(grains.front().point_begin, 0u);
  EXPECT_EQ(grains.back().point_end, w.size());
  for (std::size_t i = 1; i < grains.size(); ++i) {
    EXPECT_EQ(grains[i].point_begin, grains[i - 1].point_end);
  }
  std::uint64_t total = 0;
  for (const auto& g : grains) total += g.workload;
  std::uint64_t want = 0;
  for (const auto x : w) want += x + 1;
  EXPECT_EQ(total, want);

  // Uniform weights when no workload vector is supplied.
  const auto uniform = partition_probe_grains(10, {}, 3);
  ASSERT_EQ(uniform.size(), 3u);
  EXPECT_EQ(uniform.back().point_end, 10u);

  // Degenerate inputs.
  EXPECT_TRUE(partition_probe_grains(0, {}, 4).empty());
  EXPECT_EQ(partition_probe_grains(2, {}, 8).size(), 2u);
}

}  // namespace
}  // namespace gsj
