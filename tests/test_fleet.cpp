// Multi-device fleet tests (docs/SIMULATOR.md §fleet): grain
// partitioning invariants, the KernelStats merge compositions, the
// config validators, fleet-vs-single-device bit-identity, the
// adaptive-vs-static rebalancer comparison and the fleet observability
// surfaces (stats, sj.fleet.* / svc.fleet.* metrics, snapshot rows).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "grid/grain.hpp"
#include "grid/grid_index.hpp"
#include "grid/workload.hpp"
#include "obs/metrics.hpp"
#include "simt/fleet.hpp"
#include "sj/selfjoin.hpp"
#include "sj/service.hpp"
#include "support/oracle.hpp"

namespace gsj {
namespace {

using testsupport::all_variants;
using testsupport::make_adversarial_case;

/// A skewed-cluster dataset: a few dense piles on a sparse background —
/// the load shape §IV's variants (and the fleet's rebalancer) target.
Dataset make_skewed_clusters(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Dataset ds(2);
  const double centers[][2] = {{0.1, 0.1}, {0.12, 0.11}, {0.85, 0.2}};
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.7) {
      const auto& c = centers[rng.uniform_index(3)];
      p[0] = c[0] + rng.uniform(-0.02, 0.02);
      p[1] = c[1] + rng.uniform(-0.02, 0.02);
    } else {
      p[0] = rng.uniform(0.0, 1.0);
      p[1] = rng.uniform(0.0, 1.0);
    }
    ds.push_back(p);
  }
  return ds;
}

SelfJoinConfig fleet_cfg(const SelfJoinConfig& base, int devices,
                         bool adaptive = true) {
  SelfJoinConfig cfg = base;
  cfg.fleet.num_devices = devices;
  cfg.fleet.adaptive = adaptive;
  return cfg;
}

/// A heterogeneous 4-device fleet: a big/fast device down to a small/
/// slow one (SM count and clock both vary).
void make_hetero4(SelfJoinConfig& cfg) {
  cfg.fleet.num_devices = 4;
  cfg.fleet.devices.assign(4, cfg.device);
  const int sms[] = {56, 28, 14, 7};
  const double ghz[] = {1.3, 1.0, 0.8, 0.6};
  for (int d = 0; d < 4; ++d) {
    cfg.fleet.devices[static_cast<std::size_t>(d)].num_sms = sms[d];
    cfg.fleet.devices[static_cast<std::size_t>(d)].clock_ghz = ghz[d];
  }
}

// ---------------------------------------------------------------------------
// Grain partitioning (grid/grain.hpp).

TEST(Grain, PartitionCoversEveryCellExactlyOnce) {
  const Dataset ds = make_skewed_clusters(1500, 11);
  const GridIndex grid(ds, 0.03, nullptr);
  const std::vector<std::uint64_t> pw =
      point_workloads(grid, CellPattern::Full, nullptr);
  const std::vector<std::uint64_t> weights = grain_cell_weights(grid, pw);
  for (const std::size_t max_grains : {1u, 2u, 3u, 5u, 8u, 64u, 100000u}) {
    for (const bool weighted : {false, true}) {
      const auto grains = partition_grains(
          grid, weighted ? std::span<const std::uint64_t>(weights)
                         : std::span<const std::uint64_t>{},
          max_grains);
      ASSERT_FALSE(grains.empty());
      EXPECT_LE(grains.size(), std::min(max_grains, grid.cells().size()));
      // Contiguous cover of the cell array, grain point ranges matching
      // the underlying cell ranges, workloads summing to the total.
      std::size_t cell_cursor = 0;
      std::uint64_t total_weight = 0;
      for (const WorkGrain& g : grains) {
        EXPECT_EQ(g.cell_begin, cell_cursor);
        ASSERT_GT(g.cell_end, g.cell_begin);  // never an empty grain
        EXPECT_EQ(g.point_begin, grid.cells()[g.cell_begin].begin);
        EXPECT_EQ(g.point_end, grid.cells()[g.cell_end - 1].end);
        cell_cursor = g.cell_end;
        total_weight += g.workload;
      }
      EXPECT_EQ(cell_cursor, grid.cells().size());
      const std::uint64_t want =
          weighted ? std::accumulate(weights.begin(), weights.end(),
                                     std::uint64_t{0})
                   : grid.point_ids().size();
      EXPECT_EQ(total_weight, want);
    }
  }
}

TEST(Grain, CellWeightsAreWorkloadPlusOnePerPoint) {
  const Dataset ds = make_skewed_clusters(400, 3);
  const GridIndex grid(ds, 0.05, nullptr);
  const std::vector<std::uint64_t> pw =
      point_workloads(grid, CellPattern::Full, nullptr);
  const std::vector<std::uint64_t> weights = grain_cell_weights(grid, pw);
  ASSERT_EQ(weights.size(), grid.cells().size());
  for (std::size_t c = 0; c < grid.cells().size(); ++c) {
    std::uint64_t want = 0;
    for (const PointId p : grid.cell_points(c)) want += pw[p] + 1;
    EXPECT_EQ(weights[c], want) << "cell " << c;
  }
}

TEST(Grain, SingleHugeCellBecomesItsOwnGrain) {
  // One pile of duplicates (one cell with ~all the weight) plus a few
  // scattered points: the pile must not drag neighbours into its grain.
  Dataset ds(2);
  const double pile[] = {0.5, 0.5};
  for (int i = 0; i < 200; ++i) ds.push_back(pile);
  std::vector<double> p(2);
  for (int i = 0; i < 8; ++i) {
    p[0] = 10.0 + i;
    p[1] = 10.0;
    ds.push_back(p);
  }
  const GridIndex grid(ds, 0.1, nullptr);
  const std::vector<std::uint64_t> pw =
      point_workloads(grid, CellPattern::Full, nullptr);
  const std::vector<std::uint64_t> weights = grain_cell_weights(grid, pw);
  const auto grains = partition_grains(grid, weights, 4);
  // The pile's cell is the heaviest grain; it holds exactly one cell.
  const auto heaviest = std::max_element(
      grains.begin(), grains.end(),
      [](const WorkGrain& a, const WorkGrain& b) {
        return a.workload < b.workload;
      });
  EXPECT_EQ(heaviest->cells(), 1u);
  EXPECT_EQ(heaviest->points(), 200u);
}

// ---------------------------------------------------------------------------
// KernelStats composition: sequential merge sums makespans (batches on
// one device queue behind each other); merge_concurrent takes the max
// (devices overlap in time) while summing every throughput counter.

TEST(Fleet, MergeVsMergeConcurrentPinned) {
  simt::KernelStats a;
  a.launches = 2;
  a.warps_launched = 10;
  a.warp_steps = 100;
  a.active_lane_steps = 3100;
  a.busy_cycles = 900;
  a.makespan_cycles = 120;
  a.tail_idle_cycles = 30;
  a.atomics_executed = 7;
  a.results_emitted = 40;
  simt::KernelStats b;
  b.launches = 1;
  b.warps_launched = 4;
  b.warp_steps = 50;
  b.active_lane_steps = 1500;
  b.busy_cycles = 500;
  b.makespan_cycles = 200;
  b.tail_idle_cycles = 10;
  b.atomics_executed = 3;
  b.results_emitted = 25;

  simt::KernelStats seq = a;
  seq.merge(b);
  EXPECT_EQ(seq.makespan_cycles, 320u);  // queued: 120 + 200

  simt::KernelStats con = a;
  con.merge_concurrent(b);
  EXPECT_EQ(con.makespan_cycles, 200u);  // overlapped: max(120, 200)

  // Every other field sums identically under both compositions.
  EXPECT_EQ(con.launches, seq.launches);
  EXPECT_EQ(con.warps_launched, seq.warps_launched);
  EXPECT_EQ(con.warp_steps, seq.warp_steps);
  EXPECT_EQ(con.active_lane_steps, seq.active_lane_steps);
  EXPECT_EQ(con.busy_cycles, seq.busy_cycles);
  EXPECT_EQ(con.tail_idle_cycles, seq.tail_idle_cycles);
  EXPECT_EQ(con.atomics_executed, seq.atomics_executed);
  EXPECT_EQ(con.results_emitted, seq.results_emitted);
  EXPECT_EQ(seq.busy_cycles, 1400u);
  EXPECT_EQ(seq.launches, 3u);
}

// ---------------------------------------------------------------------------
// Config validators.

TEST(Fleet, DeviceConfigValidateRejectsEdgeCases) {
  simt::DeviceConfig ok;
  EXPECT_NO_THROW(ok.validate());

  simt::DeviceConfig d = ok;
  d.warp_size = 0;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.warp_size = 33;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.num_sms = 0;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.resident_warps_per_sm = 0;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.issue_width = 0;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.dispatch_window = 0;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.clock_ghz = 0.0;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.clock_ghz = -1.0;
  EXPECT_THROW(d.validate(), CheckError);
  d = ok;
  d.clock_ghz = std::numeric_limits<double>::infinity();
  EXPECT_THROW(d.validate(), CheckError);
}

TEST(Fleet, LaunchEntryValidatesDeviceConfig) {
  // The validator runs at launch entry, so a malformed device config
  // fails any join up front — not deep inside the simulator.
  Dataset ds(2);
  const double p[] = {0.0, 0.0};
  ds.push_back(p);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(0.1);
  cfg.device.clock_ghz = 0.0;
  EXPECT_THROW((void)self_join(ds, cfg), CheckError);
}

TEST(Fleet, FleetConfigValidateRejectsEdgeCases) {
  const simt::DeviceConfig base;
  simt::FleetConfig fc;
  EXPECT_NO_THROW(fc.validate(base));
  EXPECT_FALSE(fc.active());

  fc.num_devices = 0;
  EXPECT_THROW(fc.validate(base), CheckError);
  fc.num_devices = 2;
  fc.grains_per_device = 0;
  EXPECT_THROW(fc.validate(base), CheckError);
  fc.grains_per_device = 8;
  EXPECT_NO_THROW(fc.validate(base));
  EXPECT_TRUE(fc.active());

  // Override count must match num_devices.
  fc.devices.assign(3, base);
  EXPECT_THROW(fc.validate(base), CheckError);
  fc.devices.assign(2, base);
  EXPECT_NO_THROW(fc.validate(base));

  // Heterogeneity never extends to warp shape.
  fc.devices[1].warp_size = 16;
  EXPECT_THROW(fc.validate(base), CheckError);
  fc.devices[1].warp_size = base.warp_size;
  fc.devices[1].num_sms = 0;  // overrides are validated too
  EXPECT_THROW(fc.validate(base), CheckError);
}

TEST(Fleet, ResolveCopiesHostKnobsFromBase) {
  simt::DeviceConfig base;
  base.host.num_threads = 3;
  simt::FleetConfig fc;
  fc.num_devices = 2;
  fc.devices.assign(2, simt::DeviceConfig{});
  fc.devices[1].num_sms = 7;
  fc.devices[0].host.num_threads = 99;  // must be ignored
  const auto resolved = fc.resolve(base);
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0].host.num_threads, 3);
  EXPECT_EQ(resolved[1].host.num_threads, 3);
  EXPECT_EQ(resolved[1].num_sms, 7);

  fc.devices.clear();  // homogeneous: copies of base
  const auto homo = fc.resolve(base);
  ASSERT_EQ(homo.size(), 2u);
  EXPECT_EQ(homo[0].num_sms, base.num_sms);
}

// ---------------------------------------------------------------------------
// Bit-identity: every variant, homogeneous and heterogeneous fleets,
// against the single-device run and the brute-force oracle.

void fleet_matches_single(int devices, bool hetero, bool adaptive) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto c = make_adversarial_case(seed);
    for (auto& [name, base] : all_variants(c.epsilon)) {
      base.store_pairs = true;
      const SelfJoinOutput single = self_join(c.dataset, base);
      SelfJoinConfig cfg = fleet_cfg(base, devices, adaptive);
      if (hetero) make_hetero4(cfg);
      const SelfJoinOutput out = self_join(c.dataset, cfg);
      ASSERT_EQ(out.results.pairs(), single.results.pairs())
          << name << " devices=" << devices << " " << c.describe();
      EXPECT_EQ(out.stats.result_pairs, single.stats.result_pairs)
          << name << " " << c.describe();
      EXPECT_TRUE(out.stats.fleet.ran()) << name;
      EXPECT_EQ(out.stats.fleet.devices.size(),
                static_cast<std::size_t>(devices))
          << name;
    }
  }
}

TEST(Fleet, TwoDevicesBitIdenticalToSingle) {
  fleet_matches_single(2, /*hetero=*/false, /*adaptive=*/true);
}

TEST(Fleet, FourDevicesBitIdenticalToSingle) {
  fleet_matches_single(4, /*hetero=*/false, /*adaptive=*/true);
}

TEST(Fleet, HeterogeneousFourDevicesBitIdenticalToSingle) {
  fleet_matches_single(4, /*hetero=*/true, /*adaptive=*/true);
}

TEST(Fleet, StaticShardingBitIdenticalToSingle) {
  fleet_matches_single(4, /*hetero=*/false, /*adaptive=*/false);
}

TEST(Fleet, CountOnlyModeMatchesStoredPairs) {
  const auto c = make_adversarial_case(9);
  SelfJoinConfig cfg = fleet_cfg(SelfJoinConfig::combined(c.epsilon), 4);
  cfg.store_pairs = true;
  const std::uint64_t want = self_join(c.dataset, cfg).stats.result_pairs;
  cfg.store_pairs = false;
  const SelfJoinOutput counted = self_join(c.dataset, cfg);
  EXPECT_EQ(counted.stats.result_pairs, want);
  EXPECT_EQ(counted.results.count(), want);
  EXPECT_FALSE(counted.results.stores_pairs());
}

TEST(Fleet, DeterministicAcrossRuns) {
  const Dataset ds = make_skewed_clusters(800, 5);
  SelfJoinConfig cfg = fleet_cfg(SelfJoinConfig::combined(0.04), 4);
  make_hetero4(cfg);
  cfg.store_pairs = true;
  const SelfJoinOutput a = self_join(ds, cfg);
  const SelfJoinOutput b = self_join(ds, cfg);
  EXPECT_EQ(a.results.pairs(), b.results.pairs());
  EXPECT_EQ(a.stats.fleet.makespan_seconds, b.stats.fleet.makespan_seconds);
  EXPECT_EQ(a.stats.fleet.rebalances, b.stats.fleet.rebalances);
  EXPECT_EQ(a.stats.kernel.busy_cycles, b.stats.kernel.busy_cycles);
}

// ---------------------------------------------------------------------------
// Fleet stats coherence and the adaptive-vs-static comparison.

TEST(Fleet, StatsAreInternallyConsistent) {
  const Dataset ds = make_skewed_clusters(2000, 7);
  SelfJoinConfig cfg = fleet_cfg(SelfJoinConfig::combined(0.03), 4);
  const SelfJoinOutput out = self_join(ds, cfg);
  const simt::FleetStats& fs = out.stats.fleet;
  ASSERT_TRUE(fs.ran());
  ASSERT_EQ(fs.devices.size(), 4u);

  double max_busy = 0.0, sum_busy = 0.0, sum_tail = 0.0;
  std::uint64_t grains = 0;
  for (const simt::DeviceLoad& d : fs.devices) {
    max_busy = std::max(max_busy, d.busy_seconds);
    sum_busy += d.busy_seconds;
    sum_tail += d.tail_idle_seconds;
    grains += d.grains;
    EXPECT_NEAR(d.tail_idle_seconds, fs.makespan_seconds - d.busy_seconds,
                1e-12);
  }
  EXPECT_DOUBLE_EQ(fs.makespan_seconds, max_busy);
  EXPECT_NEAR(fs.tail_idle_seconds, sum_tail, 1e-12);
  EXPECT_EQ(grains, fs.num_grains);
  EXPECT_GT(fs.num_grains, 4u);  // adaptive: grains_per_device * devices
  const double mean = sum_busy / 4.0;
  EXPECT_NEAR(fs.imbalance, fs.makespan_seconds / mean, 1e-9);
  EXPECT_GE(fs.imbalance, 1.0);
  // The fleet's kernel seconds are the makespan, not the busy sum.
  EXPECT_DOUBLE_EQ(out.stats.kernel_seconds, fs.makespan_seconds);
  EXPECT_LE(out.stats.kernel_seconds, sum_busy);
  // Slot vectors are device-level now; empty by design on fleet runs.
  EXPECT_TRUE(out.stats.slots.empty());
}

TEST(Fleet, AdaptiveBeatsStaticOnHeterogeneousSkew) {
  // The acceptance benchmark: a skewed-cluster dataset on a
  // heterogeneous 4-device fleet. Static uniform sharding ignores both
  // the data skew and the device speeds; the LPT + measured-rate
  // rebalancer must win on makespan imbalance (and not lose makespan —
  // true once the dataset is large enough that per-launch overheads
  // stop dominating, ~6k points on this shape).
  const Dataset ds = make_skewed_clusters(10000, 13);
  SelfJoinConfig base = SelfJoinConfig::combined(0.03);

  SelfJoinConfig adaptive = base;
  make_hetero4(adaptive);
  SelfJoinConfig static_cfg = adaptive;
  static_cfg.fleet.adaptive = false;

  const SelfJoinOutput a = self_join(ds, adaptive);
  const SelfJoinOutput s = self_join(ds, static_cfg);
  ASSERT_TRUE(a.stats.fleet.ran());
  ASSERT_TRUE(s.stats.fleet.ran());
  EXPECT_EQ(a.stats.result_pairs, s.stats.result_pairs);
  EXPECT_GT(a.stats.fleet.rebalances, 0u);
  EXPECT_EQ(s.stats.fleet.rebalances, 0u);
  EXPECT_LT(a.stats.fleet.imbalance, s.stats.fleet.imbalance);
  EXPECT_LE(a.stats.fleet.makespan_seconds, s.stats.fleet.makespan_seconds);
}

// ---------------------------------------------------------------------------
// Observability: sj.fleet.* metrics, service accounting and snapshot.

TEST(Fleet, MetricsExported) {
  const Dataset ds = make_skewed_clusters(600, 17);
  obs::Registry reg;
  SelfJoinConfig cfg = fleet_cfg(SelfJoinConfig::work_queue_cfg(0.05), 2);
  cfg.metrics = &reg;
  const SelfJoinOutput out = self_join(ds, cfg);
  EXPECT_EQ(reg.gauge("sj.fleet.devices").value(), 2.0);
  EXPECT_EQ(reg.counter("sj.fleet.grains").value(),
            out.stats.fleet.num_grains);
  EXPECT_EQ(reg.counter("sj.fleet.rebalances").value(),
            out.stats.fleet.rebalances);
  EXPECT_DOUBLE_EQ(reg.gauge("sj.fleet.makespan_seconds").value(),
                   out.stats.fleet.makespan_seconds);
  EXPECT_DOUBLE_EQ(reg.gauge("sj.fleet.device_cov").value(),
                   out.stats.fleet.device_cov);
  EXPECT_DOUBLE_EQ(reg.gauge("sj.fleet.imbalance").value(),
                   out.stats.fleet.imbalance);
  // Single-device runs leave the family untouched.
  obs::Registry reg2;
  SelfJoinConfig single = SelfJoinConfig::work_queue_cfg(0.05);
  single.metrics = &reg2;
  (void)self_join(ds, single);
  EXPECT_FALSE(reg2.gauge("sj.fleet.devices").is_set());
}

TEST(Fleet, ServiceAccountsFleetRuns) {
  const Dataset ds = make_skewed_clusters(600, 19);
  obs::Registry reg;
  ServiceConfig scfg;
  scfg.obs.metrics = &reg;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  SelfJoinConfig cfg = fleet_cfg(SelfJoinConfig::combined(0.05), 2);
  const SelfJoinOutput out = svc.run(*sd, cfg);
  ASSERT_TRUE(out.stats.fleet.ran());

  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.fleet_runs, 1u);
  EXPECT_EQ(snap.fleet_rebalances, out.stats.fleet.rebalances);
  EXPECT_DOUBLE_EQ(snap.fleet_device_cov, out.stats.fleet.device_cov);
  EXPECT_DOUBLE_EQ(snap.fleet_imbalance, out.stats.fleet.imbalance);
  ASSERT_EQ(snap.fleet_devices.size(), 2u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(snap.fleet_devices[d].device, static_cast<int>(d));
    EXPECT_EQ(snap.fleet_devices[d].grains,
              out.stats.fleet.devices[d].grains);
    EXPECT_DOUBLE_EQ(snap.fleet_devices[d].busy_seconds,
                     out.stats.fleet.devices[d].busy_seconds);
  }
  EXPECT_EQ(reg.counter("svc.fleet.runs").value(), 1u);
  EXPECT_EQ(reg.counter("svc.fleet.rebalances").value(),
            out.stats.fleet.rebalances);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.fleet.device_cov").value(),
                   out.stats.fleet.device_cov);
  EXPECT_TRUE(
      reg.gauge(obs::labeled("svc.fleet.device_busy_seconds", {{"device", "0"}}))
          .is_set());

  // A second run accumulates; single-device runs do not.
  (void)svc.run(*sd, cfg);
  (void)svc.run(*sd, SelfJoinConfig::combined(0.05));
  EXPECT_EQ(svc.snapshot().fleet_runs, 2u);
  EXPECT_EQ(reg.counter("svc.fleet.runs").value(), 2u);
}

TEST(Fleet, WeePercentUsesConfiguredWarpSize) {
  // The satellite bugfix pinned: wee_percent must divide by the run's
  // configured warp size. A warp_size=8 run with every lane active has
  // WEE 100%; the old hardcoded-32 computation reported 25%.
  Dataset ds(2);
  const double p[] = {0.0, 0.0};
  for (int i = 0; i < 64; ++i) ds.push_back(p);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(0.1);
  cfg.device.warp_size = 8;
  cfg.k = 1;
  const SelfJoinOutput out = self_join(ds, cfg);
  EXPECT_EQ(out.stats.warp_size, 8);
  EXPECT_GT(out.stats.wee_percent(), 99.0);
  EXPECT_LE(out.stats.wee_percent(), 100.0);
}

}  // namespace
}  // namespace gsj
