// Additional coverage: exactness on hotspot (SW-like) data across
// variant combinations, sparse-grid edge cases, simulator corner
// behaviours, and small utility edges not covered elsewhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "data/generators.hpp"
#include "grid/grid_index.hpp"
#include "simt/launch.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"
#include "superego/super_ego.hpp"

namespace gsj {
namespace {

// ---------------------------------------------------------------------------
// Hotspot-data exactness across combinations not in the main sweep.

using ComboCase = std::tuple<int, int, bool>;  // pattern idx, k, work_queue

class HotspotExactness : public ::testing::TestWithParam<ComboCase> {};

TEST_P(HotspotExactness, MatchesBruteForce) {
  const auto& [pat, k, wq] = GetParam();
  const Dataset ds = gen_sw_like(800, /*with_tec=*/true, 123);
  const double eps = 3.0;
  SelfJoinConfig cfg;
  cfg.epsilon = eps;
  cfg.pattern = static_cast<CellPattern>(pat);
  cfg.k = k;
  cfg.work_queue = wq;
  cfg.sort_by_workload = !wq;
  cfg.store_pairs = true;
  cfg.batching.buffer_pairs = 4'000;  // force several batches
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, eps);
  EXPECT_EQ(out.results.pairs(), truth.pairs()) << cfg.name();
}

// Name generator lives outside the macro: brace-enclosed initializers
// inside macro arguments are split at their commas by the preprocessor.
std::string combo_case_name(const ::testing::TestParamInfo<ComboCase>& info) {
  static constexpr const char* kPats[] = {"Full", "Unicomp", "LidUnicomp"};
  return std::string(kPats[std::get<0>(info.param)]) + "_k" +
         std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) ? "_wq" : "_sorted");
}

INSTANTIATE_TEST_SUITE_P(
    Combos, HotspotExactness,
    ::testing::Combine(::testing::Values(0, 1, 2),        // Full/Uni/Lid
                       ::testing::Values(1, 2, 16),       // k
                       ::testing::Values(false, true)),   // queue
    combo_case_name);

// ---------------------------------------------------------------------------
// Sparse/extreme grids.

TEST(SparseGrid, TwoDistantClusters) {
  // Linear-id space is huge and almost entirely empty; only two small
  // groups of non-empty cells exist.
  Dataset ds(2);
  Xoshiro256 rng(77);
  for (int i = 0; i < 200; ++i) {
    ds.push_back({{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
  }
  for (int i = 0; i < 200; ++i) {
    ds.push_back({{rng.uniform(9000.0, 9001.0), rng.uniform(9000.0, 9001.0)}});
  }
  const double eps = 0.2;
  const GridIndex g(ds, eps);
  EXPECT_LT(g.cells().size(), 100u);  // only non-empty cells materialized
  SelfJoinConfig cfg = SelfJoinConfig::combined(eps);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, eps);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
  // No cross-cluster pairs.
  for (const auto& [a, b] : out.results.pairs()) {
    EXPECT_EQ(a < 200, b < 200);
  }
}

TEST(SparseGrid, SevenAndEightDims) {
  for (const int dims : {7, 8}) {
    const Dataset ds = gen_uniform(250, dims, 130 + dims, 0.0, 4.0);
    const double eps = 1.5;
    SelfJoinConfig cfg = SelfJoinConfig::lid_unicomp(eps);
    cfg.store_pairs = true;
    const auto out = self_join(ds, cfg);
    const ResultSet truth = brute_force_join(ds, eps);
    EXPECT_EQ(out.results.pairs(), truth.pairs()) << "dims=" << dims;
  }
}

// ---------------------------------------------------------------------------
// Simulator corners.

struct NoWorkKernel {
  struct LaneState {};
  simt::InitResult init_lane(LaneState&, const simt::LaneCtx&,
                             simt::WarpScratch&) {
    return {false, 1};  // every lane inactive at init
  }
  simt::StepResult step(LaneState&) { return {false, 1}; }
};

TEST(SimtCorners, AllLanesInactiveAtInit) {
  NoWorkKernel k;
  simt::DeviceConfig d;
  d.num_sms = 1;
  d.resident_warps_per_sm = 2;
  const auto st = simt::launch(d, 100, k);
  EXPECT_EQ(st.warp_steps, 0u);
  EXPECT_EQ(st.active_lane_steps, 0u);
  EXPECT_EQ(st.warps_launched, 4u);
  // Init cost (warp launch overhead + per-lane init) still accrues.
  EXPECT_GT(st.makespan_cycles, 0u);
}

struct SingleStepKernel {
  struct LaneState {};
  simt::InitResult init_lane(LaneState&, const simt::LaneCtx&,
                             simt::WarpScratch&) {
    return {true, 0};
  }
  simt::StepResult step(LaneState&) { return {false, 5}; }
};

TEST(SimtCorners, FinalStepCostCounted) {
  SingleStepKernel k;
  simt::DeviceConfig d;
  d.num_sms = 1;
  d.resident_warps_per_sm = 1;
  d.cost_warp_launch = 0;
  const auto st = simt::launch(d, 32, k);
  // One step of cost 5 executed by the whole warp.
  EXPECT_EQ(st.warp_steps, 1u);
  EXPECT_EQ(st.active_lane_steps, 32u);
  EXPECT_EQ(st.makespan_cycles, 5u);
  EXPECT_DOUBLE_EQ(st.warp_execution_efficiency(32), 1.0);
}

// ---------------------------------------------------------------------------
// Utility edges.

TEST(UtilityEdges, CliEmptyEqualsValue) {
  const char* argv[] = {"prog", "--name="};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get("name", "default"), "");
}

TEST(UtilityEdges, CliNegativeNumbers) {
  const char* argv[] = {"prog", "--x", "-3.5"};
  Cli cli(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), -3.5);
}

TEST(UtilityEdges, HistogramAsciiRenders) {
  Histogram h(0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 1.6, 2.5}) h.add(x);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(UtilityEdges, SummarySinglePoint) {
  const std::vector<double> xs{42.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(UtilityEdges, SuperEgoWithoutReorderOn6D) {
  const Dataset ds = gen_exponential(400, 6, 140);
  SuperEgoConfig cfg;
  cfg.epsilon = 0.06;
  cfg.reorder_dims = false;
  cfg.store_pairs = true;
  const auto out = super_ego_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 0.06);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

}  // namespace
}  // namespace gsj
