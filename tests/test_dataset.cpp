// Unit tests: Dataset container, generators (distribution properties,
// determinism, Table I registry), binary/CSV IO round-trips.
#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <filesystem>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"

namespace gsj {
namespace {

TEST(Dataset, PushBackAndAccess) {
  Dataset ds(3);
  const double p0[] = {1.0, 2.0, 3.0};
  const double p1[] = {4.0, 5.0, 6.0};
  ds.push_back(p0);
  ds.push_back(p1);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.coord(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.coord(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(ds.dist2(0, 1), 27.0);
}

TEST(Dataset, MinMaxCorners) {
  Dataset ds(2);
  const double a[] = {1.0, 9.0};
  const double b[] = {5.0, -2.0};
  ds.push_back(a);
  ds.push_back(b);
  EXPECT_EQ(ds.min_corner(), (std::vector<double>{1.0, -2.0}));
  EXPECT_EQ(ds.max_corner(), (std::vector<double>{5.0, 9.0}));
}

TEST(Dataset, PermutedReordersPoints) {
  Dataset ds(1);
  for (double v : {10.0, 20.0, 30.0}) ds.push_back({&v, 1});
  const std::vector<PointId> perm{2, 0, 1};
  const Dataset p = ds.permuted(perm);
  EXPECT_DOUBLE_EQ(p.coord(0, 0), 30.0);
  EXPECT_DOUBLE_EQ(p.coord(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(p.coord(2, 0), 20.0);
}

TEST(Dataset, DimsValidated) {
  EXPECT_THROW(Dataset(0), CheckError);
  EXPECT_THROW(Dataset(17), CheckError);
}

TEST(Generators, UniformBoundsAndMean) {
  const Dataset ds = gen_uniform(20000, 3, 11);
  ASSERT_EQ(ds.size(), 20000u);
  for (int d = 0; d < 3; ++d) {
    const Summary s = summarize(ds.dim(d));
    EXPECT_GE(s.min, 0.0);
    EXPECT_LT(s.max, 100.0);
    EXPECT_NEAR(s.mean, 50.0, 1.5);
  }
}

TEST(Generators, ExponentialIsSkewedTowardOrigin) {
  const Dataset ds = gen_exponential(20000, 2, 12);
  for (int d = 0; d < 2; ++d) {
    const Summary s = summarize(ds.dim(d));
    EXPECT_GE(s.min, 0.0);
    // Exp(40): mean 1/40, median ln(2)/40.
    EXPECT_NEAR(s.mean, 0.025, 0.002);
    EXPECT_NEAR(s.median, std::log(2.0) / 40.0, 0.002);
  }
}

TEST(Generators, DeterministicPerSeed) {
  const Dataset a = gen_exponential(100, 4, 99);
  const Dataset b = gen_exponential(100, 4, 99);
  const Dataset c = gen_exponential(100, 4, 100);
  EXPECT_DOUBLE_EQ(a.coord(50, 2), b.coord(50, 2));
  EXPECT_NE(a.coord(50, 2), c.coord(50, 2));
}

TEST(Generators, SwLikeShapes) {
  const Dataset d2 = gen_sw_like(5000, /*with_tec=*/false, 5);
  EXPECT_EQ(d2.dims(), 2);
  const Dataset d3 = gen_sw_like(5000, /*with_tec=*/true, 5);
  EXPECT_EQ(d3.dims(), 3);
  const Summary lon = summarize(d3.dim(0));
  EXPECT_GE(lon.min, -180.0);
  EXPECT_LE(lon.max, 180.0);
  const Summary tec = summarize(d3.dim(2));
  EXPECT_GE(tec.min, 0.0);
  EXPECT_LE(tec.max, 100.0);
}

TEST(Generators, SwLikeIsSpatiallySkewed) {
  // Hotspot mixture must produce a much heavier-tailed local density
  // than uniform: compare cell-occupancy dispersion on a coarse grid.
  const Dataset sw = gen_sw_like(20000, false, 3);
  const Dataset un = gen_uniform(20000, 2, 3, -180.0, 180.0);
  auto occupancy_cv = [](const Dataset& ds) {
    constexpr int kG = 32;
    std::vector<std::uint64_t> cnt(kG * kG, 0);
    const auto lo = ds.min_corner();
    const auto hi = ds.max_corner();
    for (std::size_t i = 0; i < ds.size(); ++i) {
      int cx = static_cast<int>((ds.coord(i, 0) - lo[0]) / (hi[0] - lo[0] + 1e-9) * kG);
      int cy = static_cast<int>((ds.coord(i, 1) - lo[1]) / (hi[1] - lo[1] + 1e-9) * kG);
      cnt[static_cast<std::size_t>(cy * kG + cx)]++;
    }
    return summarize(std::span<const std::uint64_t>(cnt)).cv();
  };
  EXPECT_GT(occupancy_cv(sw), 3.0 * occupancy_cv(un));
}

TEST(Generators, GaiaLikeConcentratedOnPlane) {
  const Dataset g = gen_gaia_like(20000, 8);
  ASSERT_EQ(g.dims(), 2);
  std::size_t near_plane = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    ASSERT_GE(g.coord(i, 1), -90.0);
    ASSERT_LE(g.coord(i, 1), 90.0);
    if (std::abs(g.coord(i, 1)) < 15.0) ++near_plane;
  }
  // Laplace(15): P(|b|<15) ~ 0.63 vs 0.167 for uniform latitude.
  EXPECT_GT(static_cast<double>(near_plane) / g.size(), 0.5);
}

TEST(Generators, SpecRegistryMatchesTable1) {
  EXPECT_EQ(dataset_specs().size(), 15u);  // 10 synthetic + 4 SW + Gaia
  const DatasetSpec* unif = find_spec("Unif4D2M");
  ASSERT_NE(unif, nullptr);
  EXPECT_EQ(unif->dims, 4);
  EXPECT_EQ(unif->paper_n, 2'000'000u);
  const DatasetSpec* gaia = find_spec("Gaia");
  ASSERT_NE(gaia, nullptr);
  EXPECT_EQ(gaia->dims, 2);
  EXPECT_EQ(find_spec("nope"), nullptr);
}

TEST(Generators, MakeDatasetByName) {
  const Dataset ds = make_dataset("Expo3D2M", 500, 7);
  EXPECT_EQ(ds.dims(), 3);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_THROW(make_dataset("Unknown", 10, 1), CheckError);
}

class IoTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
  void TearDown() override {
    std::filesystem::remove(path("gsj_io_test.bin"));
    std::filesystem::remove(path("gsj_io_test.csv"));
  }
};

TEST_F(IoTest, BinaryRoundTrip) {
  const Dataset ds = gen_uniform(1234, 5, 21);
  save_binary(ds, path("gsj_io_test.bin"));
  const Dataset back = load_binary(path("gsj_io_test.bin"));
  ASSERT_EQ(back.size(), ds.size());
  ASSERT_EQ(back.dims(), ds.dims());
  for (std::size_t i = 0; i < ds.size(); i += 97) {
    for (int d = 0; d < ds.dims(); ++d) {
      EXPECT_DOUBLE_EQ(back.coord(i, d), ds.coord(i, d));
    }
  }
}

TEST_F(IoTest, CsvRoundTrip) {
  const Dataset ds = gen_exponential(200, 2, 33);
  save_csv(ds, path("gsj_io_test.csv"));
  const Dataset back = load_csv(path("gsj_io_test.csv"), 2);
  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); i += 13) {
    EXPECT_NEAR(back.coord(i, 0), ds.coord(i, 0), 1e-5);
  }
}

TEST_F(IoTest, LoadRejectsGarbage) {
  const std::string p = path("gsj_io_test.bin");
  std::FILE* f = std::fopen(p.c_str(), "wb");
  std::fputs("not a dataset", f);
  std::fclose(f);
  EXPECT_THROW(load_binary(p), CheckError);
}

}  // namespace
}  // namespace gsj
