// Determinism and device-variation tests: identical configurations must
// produce bit-identical results AND stats; exactness must hold across
// exotic device shapes (narrow warps, tiny windows, different issue
// widths).
#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {
namespace {

TEST(Determinism, RepeatedRunsIdenticalStats) {
  const Dataset ds = gen_exponential(4000, 2, 90);
  const SelfJoinConfig cfg = SelfJoinConfig::combined(0.02);
  const auto a = self_join(ds, cfg);
  const auto b = self_join(ds, cfg);
  EXPECT_EQ(a.stats.result_pairs, b.stats.result_pairs);
  EXPECT_EQ(a.stats.kernel.makespan_cycles, b.stats.kernel.makespan_cycles);
  EXPECT_EQ(a.stats.kernel.warp_steps, b.stats.kernel.warp_steps);
  EXPECT_EQ(a.stats.kernel.busy_cycles, b.stats.kernel.busy_cycles);
  EXPECT_EQ(a.stats.num_batches, b.stats.num_batches);
  EXPECT_DOUBLE_EQ(a.stats.kernel_seconds, b.stats.kernel_seconds);
}

TEST(Determinism, SchedulerSeedChangesTimingNotResults) {
  const Dataset ds = gen_exponential(4000, 2, 91);
  SelfJoinConfig a = SelfJoinConfig::sort_by_wl(0.02);
  a.device.dispatch_window = 64;
  SelfJoinConfig b = a;
  b.device.scheduler_seed = 0x1234;
  const auto ra = self_join(ds, a);
  const auto rb = self_join(ds, b);
  EXPECT_EQ(ra.stats.result_pairs, rb.stats.result_pairs);
  // Busy work identical; only the dispatch interleaving may differ.
  EXPECT_EQ(ra.stats.kernel.active_lane_steps,
            rb.stats.kernel.active_lane_steps);
}

class DeviceShapes : public ::testing::TestWithParam<int> {};

TEST_P(DeviceShapes, ExactAcrossWarpSizes) {
  const int warp_size = GetParam();
  const Dataset ds = gen_uniform(800, 2, 92, 0.0, 10.0);
  SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(0.6, /*k=*/1,
                                                      CellPattern::LidUnicomp);
  cfg.device.warp_size = warp_size;
  cfg.k = warp_size >= 8 ? 8 : warp_size;  // k must divide warp size
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 0.6);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
  EXPECT_GT(out.stats.wee_percent(), 0.0);
  EXPECT_LE(out.stats.wee_percent(), 100.0);
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, DeviceShapes,
                         ::testing::Values(1, 2, 8, 16, 32));

TEST(DeviceShapes, NarrowerWarpsRaiseWee) {
  // Divergence penalty shrinks with warp width: WEE(warp=4) >= WEE(32)
  // on skewed data (fewer lanes share one critical path).
  const Dataset ds = gen_exponential(8000, 2, 93);
  SelfJoinConfig wide = SelfJoinConfig::gpu_calc_global(0.02);
  SelfJoinConfig narrow = wide;
  narrow.device.warp_size = 4;
  const auto rw = self_join(ds, wide);
  const auto rn = self_join(ds, narrow);
  EXPECT_GT(rn.stats.kernel.warp_execution_efficiency(4),
            rw.stats.kernel.warp_execution_efficiency(32));
}

TEST(DeviceShapes, MoreSmsNeverSlower) {
  const Dataset ds = gen_exponential(8000, 2, 94);
  double prev = 1e100;
  for (const int sms : {1, 4, 16, 64}) {
    SelfJoinConfig cfg = SelfJoinConfig::combined(0.02);
    cfg.device.num_sms = sms;
    const auto out = self_join(ds, cfg);
    EXPECT_LE(out.stats.kernel_seconds, prev * 1.001) << "sms=" << sms;
    prev = out.stats.kernel_seconds;
  }
}

TEST(DeviceShapes, IssueWidthScalesModeledTime) {
  const Dataset ds = gen_uniform(3000, 2, 95, 0.0, 10.0);
  SelfJoinConfig one = SelfJoinConfig::gpu_calc_global(0.5);
  SelfJoinConfig two = one;
  two.device.issue_width = 2;
  const auto r1 = self_join(ds, one);
  const auto r2 = self_join(ds, two);
  // Same cycle counts, half the contention -> half the modeled time.
  EXPECT_EQ(r1.stats.kernel.makespan_cycles, r2.stats.kernel.makespan_cycles);
  EXPECT_NEAR(r1.stats.kernel_seconds / r2.stats.kernel_seconds, 2.0, 1e-9);
}

}  // namespace
}  // namespace gsj
