// Request-scoped observability: flight-recorder semantics (ordering,
// wraparound, filtered dumps, byte-identical determinism), per-request
// span trees under concurrent serving, RequestBreakdown attribution,
// failure auto-dumps and the ObsContext single-registry guarantee
// (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "data/generators.hpp"
#include "obs/context.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sj/selfjoin.hpp"
#include "sj/service.hpp"

namespace gsj {
namespace {

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, RecordsInSequenceOrder) {
  obs::FlightRecorder rec(/*capacity_per_shard=*/16, /*shards=*/2);
  rec.record("submit", 1, 0);
  rec.record("dequeue", 1, 7);
  rec.record("done", 2, 42);
  ASSERT_EQ(rec.recorded(), 3u);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first, by the global sequence counter.
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_STREQ(events[0].name, "submit");
  EXPECT_EQ(events[1].request_id, 1u);
  EXPECT_EQ(events[1].value, 7u);
  EXPECT_EQ(events[2].request_id, 2u);
  EXPECT_EQ(events[2].value, 42u);
}

TEST(FlightRecorder, RingOverwritesOldest) {
  obs::FlightRecorder rec(/*capacity_per_shard=*/4, /*shards=*/1);
  for (std::uint64_t i = 1; i <= 10; ++i) rec.record("tick", 1, i);
  EXPECT_EQ(rec.recorded(), 10u);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);  // a flight recorder, not a log
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 7u + i);
    EXPECT_EQ(events[i].value, 7u + i);
  }
}

TEST(FlightRecorder, DumpFormatAndRequestFilter) {
  obs::FlightRecorder rec(16, 1);
  rec.record("submit", 1, 0);
  rec.record("submit", 2, 0);
  rec.record("done", 1, 5);

  std::ostringstream all;
  rec.dump(all);
  EXPECT_EQ(all.str(),
            "req=1 submit value=0\n"
            "req=2 submit value=0\n"
            "req=1 done value=5\n");

  std::ostringstream only2;
  rec.dump(only2, /*request_id=*/2);
  EXPECT_EQ(only2.str(), "req=2 submit value=0\n");
}

/// Serially drives the same request list through a fresh single-worker
/// service and returns the full recorder dump — the determinism
/// witness: no event carries a timestamp, so identical executions must
/// serialize to byte-identical text.
std::string serial_replay_dump(const Dataset& ds) {
  obs::Tracer tracer(obs::TimeMode::Logical);
  ServiceConfig scfg;
  scfg.workers = 1;
  scfg.obs.tracer = &tracer;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  for (const double eps : {0.03, 0.06}) {
    for (int variant = 0; variant < 2; ++variant) {
      JoinRequest req;
      req.config = variant == 0 ? SelfJoinConfig::sort_by_wl(eps)
                                : SelfJoinConfig::combined(eps);
      req.config.store_pairs = false;
      req.config.batching.buffer_pairs = 20000;
      // get() before the next submit: a serial schedule, so sequence
      // numbers, request ids and queue seqs are all reproducible.
      const JoinResponse r = svc.submit(sd, req).get();
      EXPECT_EQ(r.status, JoinStatus::Ok);
    }
  }
  std::ostringstream os;
  svc.recorder().dump(os);
  return os.str();
}

TEST(FlightRecorder, DeterministicDumpsUnderLogicalTime) {
  const Dataset ds = gen_exponential(1500, 2, /*seed=*/13);
  const std::string first = serial_replay_dump(ds);
  const std::string second = serial_replay_dump(ds);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical, not just equivalent
  // The breadcrumb trail covers the request lifecycle.
  EXPECT_NE(first.find("req=1 submit value=0"), std::string::npos);
  EXPECT_NE(first.find("dequeue"), std::string::npos);
  EXPECT_NE(first.find("plan_done"), std::string::npos);
  EXPECT_NE(first.find("batch_commit"), std::string::npos);
  EXPECT_NE(first.find("done"), std::string::npos);
}

// ------------------------------------------------------ request spans

/// Submits `rounds` mixed-variant requests against a 4-worker service
/// with the given obs channel and returns the Ok responses.
std::vector<JoinResponse> stress_requests(JoinService& svc,
                                          std::shared_ptr<SharedDataset> sd,
                                          int rounds) {
  std::vector<JoinService::Ticket> tickets;
  for (int round = 0; round < rounds; ++round) {
    for (const double eps : {0.03, 0.06}) {
      for (int v = 0; v < 4; ++v) {
        JoinRequest req;
        switch (v) {
          case 0: req.config = SelfJoinConfig::gpu_calc_global(eps); break;
          case 1: req.config = SelfJoinConfig::unicomp(eps); break;
          case 2: req.config = SelfJoinConfig::sort_by_wl(eps); break;
          default: req.config = SelfJoinConfig::combined(eps); break;
        }
        req.config.store_pairs = false;
        req.config.batching.buffer_pairs = 20000;
        req.priority = v % 2;
        tickets.push_back(svc.submit(sd, req));
      }
    }
  }
  std::vector<JoinResponse> responses;
  responses.reserve(tickets.size());
  for (auto& t : tickets) responses.push_back(t.get());
  return responses;
}

TEST(RequestSpans, FourWorkerStressYieldsOneTreePerRequest) {
  const Dataset ds = gen_uniform(1200, 2, /*seed=*/2026, 0.0, 1.0);
  obs::Tracer tracer;
  ServiceConfig scfg;
  scfg.workers = 4;
  scfg.obs.tracer = &tracer;

  std::vector<JoinResponse> responses;
  {
    JoinService svc(scfg);
    const auto sd = svc.attach(ds);
    responses = stress_requests(svc, sd, /*rounds=*/2);
  }  // destructor joins the workers: the tracer has quiesced

  // Group request-attributed spans by owning request id.
  std::map<std::uint64_t, std::vector<obs::HostSpan>> by_request;
  for (const auto& s : tracer.host_spans()) {
    if (s.request != 0) by_request[s.request].push_back(s);
  }

  std::size_t executed = 0;
  std::size_t served = 0;
  for (const JoinResponse& r : responses) {
    ASSERT_EQ(r.status, JoinStatus::Ok);
    ASSERT_GE(r.request_id, 1u);
    EXPECT_EQ(r.breakdown.request_id, r.request_id);
    SCOPED_TRACE("request " + std::to_string(r.request_id));

    const auto it = by_request.find(r.request_id);
    ASSERT_NE(it, by_request.end());
    const std::vector<obs::HostSpan>& spans = it->second;

    // Exactly one root, named "request"; every other span parents to a
    // span of the same request — one tree per request, no strays.
    std::set<std::uint64_t> ids;
    for (const auto& s : spans) ids.insert(s.id);
    std::size_t roots = 0;
    std::map<std::string, std::size_t> names;
    for (const auto& s : spans) {
      ++names[s.name];
      if (s.parent == 0) {
        ++roots;
        EXPECT_EQ(s.name, "request");
      } else {
        EXPECT_TRUE(ids.count(s.parent))
            << s.name << " parents to a span outside its request";
      }
    }
    EXPECT_EQ(roots, 1u);
    EXPECT_EQ(names["queue_wait"], 1u);
    // The stress mix is duplicate-heavy (same ε across variants, and
    // results are variant-agnostic), so most requests are served by the
    // result layer instead of executing — each serving path has its own
    // child span in place of plan/execute.
    switch (r.breakdown.served_from) {
      case obs::ServedFrom::Execution:
        EXPECT_EQ(names["plan"], 1u);
        EXPECT_EQ(names["execute"], 1u);
        break;
      case obs::ServedFrom::ResultCache:
        EXPECT_EQ(names["result_hit"], 1u);
        EXPECT_EQ(names["plan"], 0u);
        EXPECT_EQ(names["execute"], 0u);
        break;
      case obs::ServedFrom::Coalesced:
        EXPECT_EQ(names["result_coalesce"], 1u);
        EXPECT_EQ(names["execute"], 0u);
        break;
      case obs::ServedFrom::Subsumed:
        EXPECT_EQ(names["subsume_filter"], 1u);
        EXPECT_EQ(names["execute"], 0u);
        break;
    }
    if (r.breakdown.served_from == obs::ServedFrom::Execution) {
      ++executed;
    } else {
      ++served;
    }
    // One "batch N" span per committed batch plus one per overflow
    // retry (a failed attempt re-runs as smaller batches); served
    // requests launch no batches, so both sides are zero for them.
    std::size_t batch_spans = 0;
    for (const auto& [name, n] : names) {
      if (name.rfind("batch ", 0) == 0) batch_spans += n;
    }
    EXPECT_EQ(batch_spans,
              r.breakdown.batches + r.breakdown.overflow_retries);
  }
  // Each ε executes at least once; with two rounds of four variants per
  // ε the duplicates must have been served.
  EXPECT_GE(executed, 2u);
  EXPECT_GT(served, 0u);
}

TEST(RequestSpans, ChildSpansNestInsideRootAndExportWithArgs) {
  const Dataset ds = gen_exponential(2000, 2, /*seed=*/9);
  obs::Tracer tracer(obs::TimeMode::Logical);
  ServiceConfig scfg;
  scfg.workers = 1;
  scfg.obs.tracer = &tracer;
  JoinResponse r;
  {
    JoinService svc(scfg);
    const auto sd = svc.attach(ds);
    JoinRequest req;
    req.config = SelfJoinConfig::sort_by_wl(0.03);
    req.config.store_pairs = false;
    r = svc.submit(sd, req).get();
  }
  ASSERT_EQ(r.status, JoinStatus::Ok);

  // The sjtool-explain reassembly invariant: direct children tile the
  // root without escaping its [ts, ts+dur] window (logical ticks).
  obs::HostSpan root;
  std::vector<obs::HostSpan> children;
  std::uint64_t root_count = 0;
  for (const auto& s : tracer.host_spans()) {
    if (s.request != r.request_id) continue;
    if (s.parent == 0) {
      root = s;
      ++root_count;
    }
  }
  ASSERT_EQ(root_count, 1u);
  std::uint64_t child_dur = 0;
  for (const auto& s : tracer.host_spans()) {
    if (s.request != r.request_id || s.parent != root.id) continue;
    EXPECT_GE(s.ts, root.ts) << s.name;
    EXPECT_LE(s.ts + s.dur, root.ts + root.dur) << s.name;
    child_dur += s.dur;
    children.push_back(s);
  }
  ASSERT_GE(children.size(), 3u);  // queue_wait, plan, execute
  EXPECT_LE(child_dur, root.dur);

  // Chrome export carries the linkage: request-attributed events gain
  // an args{request,id,parent} object, plain per-stage spans don't.
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const json::JsonValue doc = json::json_parse(os.str());
  bool saw_request_args = false;
  for (const json::JsonValue& ev : doc.find("traceEvents")->as_array()) {
    if (ev.find("ph")->as_string() != "X") continue;
    const json::JsonValue* args = ev.find("args");
    if (ev.find("name")->as_string() == "request") {
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->find("request")->as_number(),
                       static_cast<double>(r.request_id));
      saw_request_args = true;
    }
  }
  EXPECT_TRUE(saw_request_args);
}

// -------------------------------------------------- request breakdown

TEST(RequestBreakdown, CacheAttributionColdThenWarm) {
  const Dataset ds = gen_exponential(2000, 2, /*seed=*/21);
  ServiceConfig scfg;
  scfg.workers = 1;
  // This test pins *artifact*-cache attribution, so result retention is
  // off — otherwise the warm submit would be served from the result
  // cache and never touch the plan caches (that path has its own tests
  // in test_service.cpp).
  scfg.max_result_cache_bytes = 0;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinRequest req;
  req.config = SelfJoinConfig::combined(0.04);
  req.config.store_pairs = false;

  const JoinResponse cold = svc.submit(sd, req).get();
  ASSERT_EQ(cold.status, JoinStatus::Ok);
  EXPECT_EQ(cold.breakdown.served_from, obs::ServedFrom::Execution);
  EXPECT_EQ(cold.breakdown.grid_misses, 1u);
  EXPECT_EQ(cold.breakdown.grid_hits, 0u);
  EXPECT_EQ(cold.breakdown.workload_misses, 1u);
  EXPECT_EQ(cold.breakdown.order_misses, 1u);
  EXPECT_EQ(cold.breakdown.estimate_misses, 1u);
  EXPECT_GE(cold.breakdown.plan_seconds, 0.0);
  EXPECT_GT(cold.breakdown.execute_seconds, 0.0);
  EXPECT_GT(cold.breakdown.batches, 0u);
  EXPECT_EQ(cold.breakdown.result_pairs, cold.output.stats.result_pairs);
  EXPECT_EQ(cold.breakdown.batches, cold.output.stats.num_batches);

  const JoinResponse warm = svc.submit(sd, req).get();
  ASSERT_EQ(warm.status, JoinStatus::Ok);
  EXPECT_EQ(warm.breakdown.served_from, obs::ServedFrom::Execution);
  EXPECT_EQ(warm.breakdown.grid_hits, 1u);
  EXPECT_EQ(warm.breakdown.grid_misses, 0u);
  EXPECT_EQ(warm.breakdown.workload_hits, 1u);
  EXPECT_EQ(warm.breakdown.order_hits, 1u);
  EXPECT_EQ(warm.breakdown.estimate_hits, 1u);
  EXPECT_EQ(warm.breakdown.cache_misses(), 0u);
  EXPECT_EQ(warm.breakdown.result_pairs, cold.breakdown.result_pairs);
  EXPECT_GT(warm.request_id, cold.request_id);

  // run()/self_join() are not requests: no id, no breakdown.
  const SelfJoinOutput direct = svc.run(*sd, req.config);
  EXPECT_EQ(direct.stats.result_pairs, cold.breakdown.result_pairs);
}

// ------------------------------------------------------- failure dump

TEST(RequestDump, FailedRequestAutoDumpsItsBreadcrumbs) {
  const Dataset ds = gen_exponential(2000, 2, /*seed=*/5);
  std::ostringstream dump;
  ServiceConfig scfg;
  scfg.workers = 1;
  scfg.recorder_dump = &dump;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinRequest req;
  req.config = SelfJoinConfig::combined(0.04);
  req.config.store_pairs = false;
  // Guaranteed overflow with no retry budget: the run must fail, and
  // the always-on recorder must explain why without any opt-in.
  req.config.batching.inject_capacity = 10;
  req.config.batching.max_overflow_retries = 1;

  const JoinResponse r = svc.submit(sd, req).get();
  EXPECT_EQ(r.status, JoinStatus::Failed);
  EXPECT_FALSE(r.error.empty());

  const std::string text = dump.str();
  ASSERT_FALSE(text.empty());
  const std::string tag = "req=" + std::to_string(r.request_id);
  EXPECT_NE(text.find("flight-recorder dump (request " +
                      std::to_string(r.request_id) + ", failed)"),
            std::string::npos);
  EXPECT_NE(text.find(tag + " submit value=0"), std::string::npos);
  EXPECT_NE(text.find(tag + " batch_overflow"), std::string::npos);
  EXPECT_NE(text.find(tag + " overflow_exhausted"), std::string::npos);
  EXPECT_NE(text.find(tag + " failed"), std::string::npos);
  // The dump is filtered: no other request's breadcrumbs leak in.
  EXPECT_EQ(text.find("req=" + std::to_string(r.request_id + 1)),
            std::string::npos);
}

// ---------------------------------------------------------- snapshot

TEST(ServiceSnapshot, ReportsCachesDepotsAndQuiescence) {
  const Dataset ds = gen_exponential(2000, 2, /*seed=*/3);
  ServiceConfig scfg;
  scfg.workers = 2;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinRequest req;
  req.config = SelfJoinConfig::sort_by_wl(0.04);
  req.config.store_pairs = false;
  ASSERT_EQ(svc.submit(sd, req).get().status, JoinStatus::Ok);
  req.config = SelfJoinConfig::combined(0.06);
  ASSERT_EQ(svc.submit(sd, req).get().status, JoinStatus::Ok);

  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_TRUE(snap.queued_by_priority.empty());
  EXPECT_TRUE(snap.in_flight.empty());
  EXPECT_GE(snap.idle_arenas, 1u);
  EXPECT_EQ(snap.attached_datasets, 1u);
  EXPECT_EQ(snap.cached_grids, sd->cached_grid_count());
  EXPECT_GE(snap.cached_grids, 2u);  // two epsilons
  EXPECT_EQ(snap.cached_plans, sd->cached_plan_count());
  EXPECT_EQ(snap.cached_bytes, sd->cached_artifact_bytes());
  EXPECT_GT(snap.cached_bytes, 0u);

  // Dropping the handle retires it from the snapshot.
  const auto sd2 = svc.attach(ds);
  EXPECT_EQ(svc.snapshot().attached_datasets, 2u);
}

// --------------------------------------------------------- obs context

TEST(ObsContext, SingleRegistryReceivesEveryFamilyAfterStress) {
  // The regression this pins: before ObsContext, a tool wiring the
  // service and engine separately could leave part of the telemetry in
  // an orphan registry nobody exports. One ObsContext handed to the
  // config must route svc.*, sj.cache.* and the time histograms into
  // the same registry by construction.
  const Dataset ds = gen_uniform(1200, 2, /*seed=*/77, 0.0, 1.0);
  obs::Registry reg;
  obs::Tracer tracer;
  ServiceConfig scfg;
  scfg.workers = 4;
  scfg.obs = obs::ObsContext{&tracer, &reg, nullptr};

  std::size_t total = 0;
  {
    JoinService svc(scfg);
    const auto sd = svc.attach(ds);
    // Two synchronous runs of the same config: run() bypasses the
    // result-serving gate, so the second run is guaranteed to hit the
    // shared *artifact* caches and exercise the sj.cache.* family.
    SelfJoinConfig warm_cfg = SelfJoinConfig::combined(0.03);
    warm_cfg.store_pairs = false;
    (void)svc.run(*sd, warm_cfg);
    (void)svc.run(*sd, warm_cfg);
    const auto responses = stress_requests(svc, sd, /*rounds=*/1);
    total = responses.size();
    for (const auto& r : responses) EXPECT_EQ(r.status, JoinStatus::Ok);
  }

  EXPECT_EQ(reg.counter("svc.submitted").value(), total);
  EXPECT_EQ(reg.counter("svc.completed").value(), total);
  EXPECT_EQ(reg.time_histogram("svc.queue_wait_seconds").total(), total);
  EXPECT_EQ(reg.time_histogram("svc.service_seconds").total(), total);
  EXPECT_GT(reg.counter("sj.cache.hits").value(), 0u);
  EXPECT_GT(reg.counter("sj.cache.misses").value(), 0u);
  // The duplicate-heavy stress mix must have been served by the result
  // layer: one execution per ε, the rest exact hits or coalesced.
  EXPECT_GT(reg.counter("svc.result_cache.misses").value(), 0u);
  EXPECT_GT(reg.counter("svc.result_cache.hits").value() +
                reg.counter("svc.result_cache.coalesced").value(),
            0u);

  // And the whole story is exportable from that one registry.
  std::ostringstream om;
  reg.write_openmetrics(om);
  EXPECT_NE(om.str().find("svc_completed_total"), std::string::npos);
  EXPECT_NE(om.str().find("sj_cache_hits_total"), std::string::npos);
  EXPECT_NE(om.str().find("svc_result_cache_misses_total"), std::string::npos);
  EXPECT_NE(om.str().find("svc_result_cache_bytes"), std::string::npos);
  EXPECT_NE(om.str().find("svc_service_seconds"), std::string::npos);
  EXPECT_NE(om.str().find("# EOF"), std::string::npos);
}

}  // namespace
}  // namespace gsj
