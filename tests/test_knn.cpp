// Directed KNN-join tests (docs/JOINS.md): the k clamp, degenerate
// shapes, the (distance², id) tie-break, byte-identical widening
// determinism under logical-time tracing, grid-cache reuse across the
// widening rounds, and mode isolation on the service result cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "sj/selfjoin.hpp"
#include "sj/service.hpp"
#include "support/oracle.hpp"

namespace gsj {
namespace {

using testsupport::brute_force_knn;
using testsupport::make_rxs_case;
using testsupport::RxsCase;

Dataset line_dataset(int n, double x0, double step) {
  Dataset ds(2);
  for (int i = 0; i < n; ++i) {
    const double p[] = {x0 + i * step, 0.0};
    ds.push_back(p);
  }
  return ds;
}

TEST(KnnJoin, KGreaterThanNReturnsAllNeighbors) {
  const Dataset ds = line_dataset(5, 0.0, 1.0);
  const Dataset queries = line_dataset(3, 0.25, 1.0);
  SelfJoinConfig cfg;
  cfg.store_pairs = true;
  const SelfJoinOutput out = knn_join(ds, queries, 100, cfg);
  EXPECT_EQ(out.results.pairs().size(), 3u * 5u);
  EXPECT_EQ(out.results.pairs(), brute_force_knn(ds, queries, 100).pairs());
}

TEST(KnnJoin, KEqualsOneFindsTheNearest) {
  const Dataset ds = line_dataset(10, 0.0, 1.0);
  Dataset queries(2);
  const double q[] = {3.4, 0.0};  // nearest is id 3
  queries.push_back(q);
  SelfJoinConfig cfg;
  cfg.store_pairs = true;
  const SelfJoinOutput out = knn_join(ds, queries, 1, cfg);
  ASSERT_EQ(out.results.pairs().size(), 1u);
  EXPECT_EQ(out.results.pairs()[0], ResultPair(0, 3));
}

TEST(KnnJoin, EmptyQueriesReturnsEmpty) {
  const Dataset ds = line_dataset(5, 0.0, 1.0);
  const Dataset queries(2);
  SelfJoinConfig cfg;
  cfg.store_pairs = true;
  const SelfJoinOutput out = knn_join(ds, queries, 2, cfg);
  EXPECT_TRUE(out.results.pairs().empty());
  EXPECT_EQ(out.stats.result_pairs, 0u);
}

TEST(KnnJoin, InvalidConfigThrows) {
  const Dataset ds = line_dataset(5, 0.0, 1.0);
  const Dataset queries = line_dataset(2, 0.0, 1.0);
  SelfJoinConfig cfg;
  EXPECT_THROW((void)knn_join(Dataset(2), queries, 1, cfg), CheckError);
  EXPECT_THROW((void)knn_join(ds, queries, 0, cfg), CheckError);
  SelfJoinConfig bad_growth;
  bad_growth.knn_growth = 1.0;
  EXPECT_THROW((void)knn_join(ds, queries, 1, bad_growth), CheckError);
  Dataset wrong_dims(3);
  const double p[] = {0.0, 0.0, 0.0};
  wrong_dims.push_back(p);
  EXPECT_THROW((void)knn_join(ds, wrong_dims, 1, cfg), CheckError);
}

TEST(KnnJoin, SelfQueryCountsItself) {
  // A query bit-identical to a data point has that point as its
  // nearest neighbor (distance 0): documented self-match semantics.
  const Dataset ds = line_dataset(4, 0.0, 1.0);
  Dataset queries(2);
  const double q[] = {2.0, 0.0};  // == ds point id 2
  queries.push_back(q);
  SelfJoinConfig cfg;
  cfg.store_pairs = true;
  const SelfJoinOutput out = knn_join(ds, queries, 1, cfg);
  ASSERT_EQ(out.results.pairs().size(), 1u);
  EXPECT_EQ(out.results.pairs()[0], ResultPair(0, 2));
}

TEST(KnnJoin, WideningIsDeterministicByteIdenticalSpans) {
  // Two identical runs under logical-time tracers must produce
  // byte-identical Chrome traces: same rounds, same span sequence,
  // same tick arithmetic — the widening schedule has no wall-clock or
  // iteration-order freedom.
  const RxsCase c = make_rxs_case(31);  // overlapping family
  const auto run_traced = [&](std::string* json) {
    obs::Tracer tracer(obs::TimeMode::Logical);
    SelfJoinConfig cfg;
    cfg.store_pairs = true;
    cfg.tracer = &tracer;
    const SelfJoinOutput out = knn_join(c.s, c.r, 4, cfg);
    std::ostringstream os;
    tracer.write_chrome_json(os);
    *json = os.str();
    return out;
  };
  std::string json_a;
  std::string json_b;
  const SelfJoinOutput a = run_traced(&json_a);
  const SelfJoinOutput b = run_traced(&json_b);
  EXPECT_EQ(a.results.pairs(), b.results.pairs());
  EXPECT_EQ(a.stats.knn_rounds, b.stats.knn_rounds);
  EXPECT_EQ(a.stats.knn_final_epsilon, b.stats.knn_final_epsilon);
  EXPECT_EQ(json_a, json_b);
  EXPECT_FALSE(json_a.empty());
}

TEST(KnnJoin, WideningStatsAreReported) {
  const RxsCase c = make_rxs_case(37);  // overlapping family
  SelfJoinConfig cfg;
  cfg.store_pairs = true;
  const SelfJoinOutput out = knn_join(c.s, c.r, 3, cfg);
  EXPECT_GE(out.stats.knn_rounds, 1u);
  EXPECT_GT(out.stats.knn_final_epsilon, 0.0);

  // A generous explicit ε₀ resolves every query in round one.
  SelfJoinConfig wide;
  wide.store_pairs = true;
  wide.knn_initial_epsilon = 1e6;
  const SelfJoinOutput one = knn_join(c.s, c.r, 3, wide);
  EXPECT_EQ(one.stats.knn_rounds, 1u);
  EXPECT_EQ(one.results.pairs(), out.results.pairs());
}

TEST(KnnJoin, GridCacheServesRepeatWideningRounds) {
  // The per-ε LRU grid cache is what makes the widening schedule
  // affordable: a second KNN run over the same schedule must resolve
  // its grids from cache. Pin the schedule with an explicit ε₀ and
  // force a re-execution (count-only first, pairs second — the result
  // key matches but the cached entry lacks pairs).
  const RxsCase c = make_rxs_case(43);  // overlapping family
  ServiceConfig scfg;
  // Generous grid LRU: the whole widening schedule must stay resident,
  // or the second run's in-order re-resolution thrashes the cache.
  scfg.max_cached_grids = 64;
  JoinService svc(scfg);
  const auto sd = svc.attach(c.s);
  JoinRequest first;
  first.config.mode = JoinMode::Knn;
  first.config.probe = &c.r;
  first.config.knn_k = 4;
  first.config.knn_initial_epsilon = 0.05 * c.epsilon;
  first.config.store_pairs = false;
  const JoinResponse r1 = svc.submit(sd, first).get();
  ASSERT_EQ(r1.status, JoinStatus::Ok) << r1.error;
  ASSERT_GE(r1.output.stats.knn_rounds, 2u);
  EXPECT_GT(r1.breakdown.grid_misses, 0u);

  JoinRequest second = first;
  second.config.store_pairs = true;
  const JoinResponse r2 = svc.submit(sd, second).get();
  ASSERT_EQ(r2.status, JoinStatus::Ok) << r2.error;
  EXPECT_EQ(r2.breakdown.served_from, obs::ServedFrom::Execution);
  // Every round's grid was already resident (up to LRU capacity).
  EXPECT_GT(r2.breakdown.grid_hits, 0u);
  EXPECT_EQ(r2.output.results.pairs(),
            brute_force_knn(c.s, c.r, 4).pairs());
}

TEST(KnnJoin, ZeroEpsilonRequestIsValidOnService) {
  // KNN ignores cfg.epsilon (the widening schedule replaces it); the
  // service admission/result gate must not bounce epsilon == 0 for
  // Knn the way it would for Self — the sjtool convention sends 0.
  const RxsCase c = make_rxs_case(49);  // overlapping family
  JoinService svc;
  const auto sd = svc.attach(c.s);
  JoinRequest req;
  req.config.mode = JoinMode::Knn;
  req.config.probe = &c.r;
  req.config.knn_k = 2;
  req.config.epsilon = 0.0;
  req.config.store_pairs = true;
  const JoinResponse r = svc.submit(sd, req).get();
  ASSERT_EQ(r.status, JoinStatus::Ok) << r.error;
  EXPECT_EQ(r.output.results.pairs(), brute_force_knn(c.s, c.r, 2).pairs());
  // And the repeat is an exact cache hit under the same zero-ε key.
  const JoinResponse r2 = svc.submit(sd, req).get();
  ASSERT_EQ(r2.status, JoinStatus::Ok);
  EXPECT_EQ(r2.breakdown.served_from, obs::ServedFrom::ResultCache);
}

TEST(KnnJoin, SelfCacheNeverServesKnn) {
  const RxsCase c = make_rxs_case(55);  // overlapping family
  JoinService svc;
  const auto sd = svc.attach(c.s);
  JoinRequest self_req;
  self_req.config = SelfJoinConfig::combined(c.epsilon);
  self_req.config.store_pairs = true;
  ASSERT_EQ(svc.submit(sd, self_req).get().status, JoinStatus::Ok);

  JoinRequest knn_req;
  knn_req.config.mode = JoinMode::Knn;
  knn_req.config.probe = &c.r;
  knn_req.config.knn_k = 3;
  knn_req.config.epsilon = c.epsilon;  // same ε as the Self entry
  knn_req.config.store_pairs = true;
  const JoinResponse r = svc.submit(sd, knn_req).get();
  ASSERT_EQ(r.status, JoinStatus::Ok) << r.error;
  EXPECT_EQ(r.breakdown.served_from, obs::ServedFrom::Execution);
  EXPECT_EQ(r.output.results.pairs(), brute_force_knn(c.s, c.r, 3).pairs());
}

}  // namespace
}  // namespace gsj
