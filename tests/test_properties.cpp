// Randomized property sweeps (parameterized gtest): invariants that
// must hold for arbitrary seeds, sizes, dimensionalities and devices.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "data/generators.hpp"
#include "grid/workload.hpp"
#include "simt/launch.hpp"
#include "sj/batching.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {
namespace {

// ---------------------------------------------------------------------------
// Join algebra properties over random instances.

class JoinAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JoinAlgebra, ResultIsSymmetricAndReflexive) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const int dims = 1 + static_cast<int>(rng.uniform_index(5));
  const auto n = 100 + rng.uniform_index(400);
  const Dataset ds = rng.uniform() < 0.5
                         ? gen_uniform(n, dims, seed, 0.0, 8.0)
                         : gen_exponential(n, dims, seed);
  const double eps = 0.02 + rng.uniform() * 0.5;
  SelfJoinConfig cfg = SelfJoinConfig::combined(eps);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  // Reflexive: (p,p) for every p. Symmetric: (a,b) <=> (b,a).
  std::set<ResultPair> pairs(out.results.pairs().begin(),
                             out.results.pairs().end());
  EXPECT_EQ(pairs.size(), out.results.pairs().size());  // no duplicates
  for (PointId p = 0; p < n; ++p) {
    EXPECT_TRUE(pairs.contains({p, p}));
  }
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(pairs.contains({b, a}));
  }
}

TEST_P(JoinAlgebra, MonotoneInEpsilon) {
  const std::uint64_t seed = GetParam();
  const Dataset ds = gen_exponential(500, 2, seed);
  std::uint64_t prev = 0;
  for (const double eps : {0.005, 0.01, 0.02, 0.04}) {
    const auto out = self_join(ds, SelfJoinConfig::lid_unicomp(eps));
    EXPECT_GE(out.results.count(), prev);
    prev = out.results.count();
  }
}

TEST_P(JoinAlgebra, AllVariantsAgreeOnCount) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed ^ 0x55);
  const int dims = 2 + static_cast<int>(rng.uniform_index(3));
  const Dataset ds = gen_exponential(400 + rng.uniform_index(300), dims, seed);
  const double eps = 0.01 * dims;
  std::uint64_t expected = 0;
  bool first = true;
  for (auto mk :
       {&SelfJoinConfig::gpu_calc_global, &SelfJoinConfig::unicomp,
        &SelfJoinConfig::lid_unicomp, &SelfJoinConfig::sort_by_wl,
        &SelfJoinConfig::combined}) {
    const auto out = self_join(ds, mk(eps));
    if (first) {
      expected = out.results.count();
      first = false;
    } else {
      EXPECT_EQ(out.results.count(), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAlgebra,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Scheduler properties over random workloads.

struct SeededWorkKernel {
  std::vector<std::uint32_t> work;

  struct LaneState {
    std::uint32_t remaining = 0;
  };
  simt::InitResult init_lane(LaneState& s, const simt::LaneCtx& ctx,
                             simt::WarpScratch&) {
    s.remaining = work[ctx.global_thread_id];
    return {s.remaining > 0, 0};
  }
  simt::StepResult step(LaneState& s) {
    --s.remaining;
    return {s.remaining > 0, 1};
  }
};

class SchedulerProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProps, SortedLaunchNeverSlowerThanRandom) {
  // LPT-style property behind SORTBYWL/WORKQUEUE: launching warps in
  // non-increasing work order never increases makespan vs the same
  // warps launched in random order (greedy list scheduling, window 1).
  Xoshiro256 rng(GetParam());
  const int warps = 40;
  std::vector<std::uint32_t> warp_cost(warps);
  for (auto& c : warp_cost) {
    c = 1 + static_cast<std::uint32_t>(rng.uniform_index(1000));
  }
  auto expand = [](const std::vector<std::uint32_t>& per_warp) {
    std::vector<std::uint32_t> lanes;
    for (auto c : per_warp) {
      for (int l = 0; l < 32; ++l) lanes.push_back(c);
    }
    return lanes;
  };
  simt::DeviceConfig d;
  d.num_sms = 2;
  d.resident_warps_per_sm = 2;
  d.dispatch_window = 1;
  d.cost_warp_launch = 0;

  std::vector<std::uint32_t> sorted = warp_cost;
  std::sort(sorted.rbegin(), sorted.rend());
  SeededWorkKernel ks{expand(sorted)};
  const auto ms_sorted =
      simt::launch(d, static_cast<std::uint64_t>(warps) * 32, ks).makespan_cycles;

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint32_t> shuffled = warp_cost;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.uniform_index(i)]);
    }
    SeededWorkKernel kr{expand(shuffled)};
    const auto ms_rand =
        simt::launch(d, static_cast<std::uint64_t>(warps) * 32, kr).makespan_cycles;
    // Greedy with LPT order is within 4/3 of optimal; random order can
    // only be >= optimal, and empirically >= LPT. Allow equality.
    EXPECT_GE(ms_rand + ms_rand / 3, ms_sorted);
    EXPECT_GE(ms_rand, ms_sorted * 3 / 4);
  }
}

TEST_P(SchedulerProps, WeeMatchesManualAccounting) {
  Xoshiro256 rng(GetParam() ^ 0x77);
  std::vector<std::uint32_t> work(64);
  for (auto& w : work) {
    w = static_cast<std::uint32_t>(rng.uniform_index(20));
  }
  SeededWorkKernel k{work};
  simt::DeviceConfig d;
  d.num_sms = 1;
  d.resident_warps_per_sm = 4;
  const auto st = simt::launch(d, 64, k);
  // Manual: per warp, steps = max lane work; active = sum lane work.
  std::uint64_t steps = 0, active = 0;
  for (int w = 0; w < 2; ++w) {
    std::uint32_t mx = 0;
    for (int l = 0; l < 32; ++l) {
      const auto v = work[static_cast<std::size_t>(w) * 32 + l];
      mx = std::max(mx, v);
      active += v;
    }
    steps += mx;
  }
  EXPECT_EQ(st.warp_steps, steps);
  EXPECT_EQ(st.active_lane_steps, active);
  EXPECT_NEAR(st.warp_execution_efficiency(32),
              steps == 0 ? 0.0
                         : static_cast<double>(active) /
                               (static_cast<double>(steps) * 32.0),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProps,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Pipeline model properties.

class PipelineProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProps, BoundsHold) {
  Xoshiro256 rng(GetParam() ^ 0x99);
  const std::size_t nb = 1 + rng.uniform_index(20);
  std::vector<double> ker(nb), xfer(nb);
  double ker_sum = 0.0, xfer_sum = 0.0;
  for (std::size_t i = 0; i < nb; ++i) {
    ker[i] = rng.uniform() * 2.0;
    xfer[i] = rng.uniform();
    ker_sum += ker[i];
    xfer_sum += xfer[i];
  }
  for (const int streams : {1, 2, 3, 8}) {
    const double total = pipeline_seconds(ker, xfer, streams);
    // Lower bounds: the device and the link are each serial resources.
    EXPECT_GE(total, ker_sum - 1e-12);
    EXPECT_GE(total, xfer_sum - 1e-12);
    // Upper bound: fully serialized execution.
    EXPECT_LE(total, ker_sum + xfer_sum + 1e-12);
  }
  // More streams never hurt.
  EXPECT_LE(pipeline_seconds(ker, xfer, 3),
            pipeline_seconds(ker, xfer, 1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProps,
                         ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------------
// Workload quantification properties.

TEST(WorkloadProps, PatternWorkloadsAverageToHalfOfFull) {
  const Dataset ds = gen_uniform(10000, 3, 50);
  const GridIndex g(ds, 1.5);
  const auto full = cell_workloads(g, CellPattern::Full);
  const auto uni = cell_workloads(g, CellPattern::Unicomp);
  const auto lid = cell_workloads(g, CellPattern::LidUnicomp);
  auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  // Own-cell candidates are counted by all three, adjacent candidates
  // halve under the unidirectional patterns (up to boundary effects).
  EXPECT_LT(sum(uni), sum(full));
  EXPECT_LT(sum(lid), sum(full));
  EXPECT_NEAR(static_cast<double>(sum(uni)) / static_cast<double>(sum(lid)),
              1.0, 0.15);
}

}  // namespace
}  // namespace gsj
