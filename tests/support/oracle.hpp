// Shared support for the randomized differential tests: seed-driven
// adversarial dataset generation plus the brute-force oracle interface.
//
// Every dataset here is derived deterministically from one 64-bit seed,
// so a failing case is fully reproducible from the printed
// (seed, family, n, dims, eps) tuple — re-run with that seed and the
// same case comes back. The families are chosen to stress exactly the
// machinery the load-balancing variants disagree on when buggy:
//
//   uniform        even occupancy — the baseline case
//   clusters       a few dense piles on a sparse background: heavy
//                  cells, the workload skew the paper's variants target
//   duplicates     exact-duplicate piles: zero-distance pairs, maximal
//                  per-cell density, duplicate-handling in every index
//   boundaries     coordinates snapped to multiples of eps (plus a few
//                  half-cell offsets): points exactly on grid-cell
//                  edges and pair distances exactly == eps, the classic
//                  off-by-one-cell / <-vs-<= mistakes
//   tiny           n in {1, 2, 3}: degenerate shapes, single-point
//                  cells, result sets dominated by self-pairs
//
// The oracle is the O(n^2) brute_force_join (sj/reference.hpp): all
// ordered pairs (a, b) with dist <= eps, self-pairs included,
// canonicalized — the pair semantics every join in this repo shares.
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"

namespace gsj::testsupport {

struct AdversarialCase {
  std::uint64_t seed = 0;
  std::string family;
  Dataset dataset;
  double epsilon = 0.0;

  /// The tuple to paste into a regression test when this case fails.
  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os.precision(17);
    os << "(seed=" << seed << ", family=" << family
       << ", n=" << dataset.size() << ", dims=" << dataset.dims()
       << ", eps=" << epsilon << ")";
    return os.str();
  }
};

/// Derives one adversarial dataset + epsilon from `seed`. Sizes stay
/// <= ~400 points so the O(n^2) oracle is cheap.
inline AdversarialCase make_adversarial_case(std::uint64_t seed) {
  AdversarialCase c;
  c.seed = seed;
  Xoshiro256 rng(seed);
  const int dims = 2 + static_cast<int>(rng.uniform_index(3));  // 2..4
  const double extent = 1.0 + rng.uniform() * 9.0;              // [1, 10)
  c.epsilon = extent * (0.02 + rng.uniform() * 0.10);

  Dataset ds(dims);
  std::vector<double> p(static_cast<std::size_t>(dims));
  const auto push_jittered = [&](double scale) {
    for (auto& x : p) x += rng.uniform(-scale, scale);
    ds.push_back(p);
  };

  switch (rng.uniform_index(5)) {
    case 0: {
      c.family = "uniform";
      const std::size_t n = 50 + rng.uniform_index(351);
      for (std::size_t i = 0; i < n; ++i) {
        for (auto& x : p) x = rng.uniform(0.0, extent);
        ds.push_back(p);
      }
      break;
    }
    case 1: {
      c.family = "clusters";
      const std::size_t clusters = 2 + rng.uniform_index(5);
      const std::size_t n = 80 + rng.uniform_index(271);
      std::vector<std::vector<double>> centers(clusters);
      for (auto& center : centers) {
        center.resize(static_cast<std::size_t>(dims));
        for (auto& x : center) x = rng.uniform(0.0, extent);
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.uniform() < 0.85) {
          // Dense pile within ~one epsilon of a center.
          p = centers[rng.uniform_index(clusters)];
          push_jittered(c.epsilon);
        } else {
          for (auto& x : p) x = rng.uniform(0.0, extent);
          ds.push_back(p);
        }
      }
      break;
    }
    case 2: {
      c.family = "duplicates";
      const std::size_t sites = 3 + rng.uniform_index(10);
      const std::size_t n = 60 + rng.uniform_index(241);
      std::vector<std::vector<double>> locations(sites);
      for (auto& loc : locations) {
        loc.resize(static_cast<std::size_t>(dims));
        for (auto& x : loc) x = rng.uniform(0.0, extent);
      }
      // Exact duplicates: every point *is* one of the sites, bit-equal.
      for (std::size_t i = 0; i < n; ++i) {
        ds.push_back(locations[rng.uniform_index(sites)]);
      }
      break;
    }
    case 3: {
      c.family = "boundaries";
      // Coordinates snapped to k*eps (grid-cell edges) with occasional
      // half-cell offsets: inter-point distances hit eps exactly.
      const std::size_t n = 50 + rng.uniform_index(201);
      const std::uint64_t cells = 1 + rng.uniform_index(8);
      for (std::size_t i = 0; i < n; ++i) {
        for (auto& x : p) {
          x = c.epsilon * static_cast<double>(rng.uniform_index(cells + 1));
          if (rng.uniform() < 0.25) x += c.epsilon * 0.5;
        }
        ds.push_back(p);
      }
      break;
    }
    default: {
      c.family = "tiny";
      const std::size_t n = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < n; ++i) {
        for (auto& x : p) x = rng.uniform(0.0, extent);
        ds.push_back(p);
      }
      break;
    }
  }
  c.dataset = std::move(ds);
  return c;
}

// ---------------------------------------------------------------------------
// R×S and KNN oracles (docs/JOINS.md). Both share the repo's canonical
// ordering contract: pairs sorted ascending by (first, second). For KNN
// the *selection* tie-break is (distance², then id) — the canonical
// order the pipeline documents — and the selected pairs are then
// canonicalized like every other ResultSet.

/// Brute-force R×S ε-join oracle: all ordered pairs (r_id, s_id) with
/// dist(r, s) <= eps, canonicalized. Either side empty => empty.
inline ResultSet brute_force_rxs(const Dataset& r, const Dataset& s,
                                 double eps) {
  ResultSet out(/*store_pairs=*/true);
  const double eps2 = eps * eps;
  const int dims = r.dims();
  for (PointId a = 0; a < static_cast<PointId>(r.size()); ++a) {
    for (PointId b = 0; b < static_cast<PointId>(s.size()); ++b) {
      double sum = 0.0;
      for (int d = 0; d < dims; ++d) {
        const double diff = r.coord(a, d) - s.coord(b, d);
        sum += diff * diff;
      }
      if (sum <= eps2) out.emit(a, b);
    }
  }
  out.canonicalize();
  return out;
}

/// Exact brute-force KNN oracle: for each query q the k nearest points
/// of `ds`, ties broken by (distance², then id); k > |ds| returns all
/// |ds| neighbors. Pairs are (query_id, neighbor_id), canonicalized.
inline ResultSet brute_force_knn(const Dataset& ds, const Dataset& queries,
                                 int k) {
  ResultSet out(/*store_pairs=*/true);
  const int dims = ds.dims();
  const auto n = static_cast<std::size_t>(ds.size());
  const auto k_eff = std::min(static_cast<std::size_t>(k), n);
  std::vector<std::pair<double, PointId>> cand;
  for (PointId q = 0; q < static_cast<PointId>(queries.size()); ++q) {
    cand.clear();
    cand.reserve(n);
    for (PointId c = 0; c < static_cast<PointId>(n); ++c) {
      double sum = 0.0;
      for (int d = 0; d < dims; ++d) {
        const double diff = queries.coord(q, d) - ds.coord(c, d);
        sum += diff * diff;
      }
      cand.emplace_back(sum, c);
    }
    std::sort(cand.begin(), cand.end());  // (distance², id) — pair order
    for (std::size_t i = 0; i < k_eff; ++i) out.emit(q, cand[i].second);
  }
  out.canonicalize();
  return out;
}

struct RxsCase {
  std::uint64_t seed = 0;
  std::string family;
  Dataset r;
  Dataset s;
  double epsilon = 0.0;

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os.precision(17);
    os << "(seed=" << seed << ", family=" << family << ", |R|=" << r.size()
       << ", |S|=" << s.size() << ", dims=" << r.dims() << ", eps=" << epsilon
       << ")";
    return os.str();
  }
};

/// Derives one two-dataset case from `seed`, cycling through the
/// bbox-relationship and size-ratio families the R×S seam is most
/// sensitive to:
///
///   disjoint      R and S bounding boxes separated by > eps: the
///                 result is (near-)empty, probing entirely off-grid
///   overlapping   boxes shifted by ~half an extent: pairs concentrate
///                 on the overlap band
///   nested        S inside a corner of R's box: heavy probe skew
///   r-heavy       |R| >> |S| (grids S, probes with R)
///   s-heavy       |R| << |S| (grids R, probes with S)
///   duplicates    both sides sample the same few sites bit-exactly:
///                 zero-distance cross pairs, maximal cell density
inline RxsCase make_rxs_case(std::uint64_t seed) {
  RxsCase c;
  c.seed = seed;
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  const int dims = 2 + static_cast<int>(rng.uniform_index(3));  // 2..4
  const double extent = 1.0 + rng.uniform() * 9.0;
  c.epsilon = extent * (0.03 + rng.uniform() * 0.12);

  Dataset r(dims);
  Dataset s(dims);
  std::vector<double> p(static_cast<std::size_t>(dims));
  const auto fill_uniform = [&](Dataset& ds, std::size_t n, double lo,
                                double hi) {
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& x : p) x = rng.uniform(lo, hi);
      ds.push_back(p);
    }
  };

  switch (seed % 6) {
    case 0: {
      c.family = "disjoint";
      fill_uniform(r, 40 + rng.uniform_index(120), 0.0, extent);
      // Separated by 2·extent: no cross pair can reach eps < extent.
      fill_uniform(s, 40 + rng.uniform_index(120), 3.0 * extent,
                   4.0 * extent);
      break;
    }
    case 1: {
      c.family = "overlapping";
      fill_uniform(r, 40 + rng.uniform_index(160), 0.0, extent);
      fill_uniform(s, 40 + rng.uniform_index(160), 0.5 * extent,
                   1.5 * extent);
      break;
    }
    case 2: {
      c.family = "nested";
      fill_uniform(r, 60 + rng.uniform_index(140), 0.0, extent);
      fill_uniform(s, 30 + rng.uniform_index(80), 0.0, 0.25 * extent);
      break;
    }
    case 3: {
      c.family = "r-heavy";
      fill_uniform(r, 250 + rng.uniform_index(150), 0.0, extent);
      fill_uniform(s, 5 + rng.uniform_index(15), 0.0, extent);
      break;
    }
    case 4: {
      c.family = "s-heavy";
      fill_uniform(r, 5 + rng.uniform_index(15), 0.0, extent);
      fill_uniform(s, 250 + rng.uniform_index(150), 0.0, extent);
      break;
    }
    default: {
      c.family = "duplicates";
      const std::size_t sites = 3 + rng.uniform_index(8);
      std::vector<std::vector<double>> locations(sites);
      for (auto& loc : locations) {
        loc.resize(static_cast<std::size_t>(dims));
        for (auto& x : loc) x = rng.uniform(0.0, extent);
      }
      const std::size_t nr = 40 + rng.uniform_index(120);
      const std::size_t ns = 40 + rng.uniform_index(120);
      for (std::size_t i = 0; i < nr; ++i) {
        r.push_back(locations[rng.uniform_index(sites)]);
      }
      for (std::size_t i = 0; i < ns; ++i) {
        s.push_back(locations[rng.uniform_index(sites)]);
      }
      break;
    }
  }
  c.r = std::move(r);
  c.s = std::move(s);
  return c;
}

/// The paper's six GPU variants at radius `eps`, named as in Table IV.
inline std::vector<std::pair<std::string, SelfJoinConfig>> all_variants(
    double eps) {
  return {
      {"GPUCALCGLOBAL", SelfJoinConfig::gpu_calc_global(eps)},
      {"UNICOMP", SelfJoinConfig::unicomp(eps)},
      {"LID-UNICOMP", SelfJoinConfig::lid_unicomp(eps)},
      {"SORTBYWL", SelfJoinConfig::sort_by_wl(eps)},
      {"WORKQUEUE", SelfJoinConfig::work_queue_cfg(eps)},
      {"COMBINED", SelfJoinConfig::combined(eps)},
  };
}

}  // namespace gsj::testsupport
