// Shared support for the randomized differential tests: seed-driven
// adversarial dataset generation plus the brute-force oracle interface.
//
// Every dataset here is derived deterministically from one 64-bit seed,
// so a failing case is fully reproducible from the printed
// (seed, family, n, dims, eps) tuple — re-run with that seed and the
// same case comes back. The families are chosen to stress exactly the
// machinery the load-balancing variants disagree on when buggy:
//
//   uniform        even occupancy — the baseline case
//   clusters       a few dense piles on a sparse background: heavy
//                  cells, the workload skew the paper's variants target
//   duplicates     exact-duplicate piles: zero-distance pairs, maximal
//                  per-cell density, duplicate-handling in every index
//   boundaries     coordinates snapped to multiples of eps (plus a few
//                  half-cell offsets): points exactly on grid-cell
//                  edges and pair distances exactly == eps, the classic
//                  off-by-one-cell / <-vs-<= mistakes
//   tiny           n in {1, 2, 3}: degenerate shapes, single-point
//                  cells, result sets dominated by self-pairs
//
// The oracle is the O(n^2) brute_force_join (sj/reference.hpp): all
// ordered pairs (a, b) with dist <= eps, self-pairs included,
// canonicalized — the pair semantics every join in this repo shares.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"

namespace gsj::testsupport {

struct AdversarialCase {
  std::uint64_t seed = 0;
  std::string family;
  Dataset dataset;
  double epsilon = 0.0;

  /// The tuple to paste into a regression test when this case fails.
  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os.precision(17);
    os << "(seed=" << seed << ", family=" << family
       << ", n=" << dataset.size() << ", dims=" << dataset.dims()
       << ", eps=" << epsilon << ")";
    return os.str();
  }
};

/// Derives one adversarial dataset + epsilon from `seed`. Sizes stay
/// <= ~400 points so the O(n^2) oracle is cheap.
inline AdversarialCase make_adversarial_case(std::uint64_t seed) {
  AdversarialCase c;
  c.seed = seed;
  Xoshiro256 rng(seed);
  const int dims = 2 + static_cast<int>(rng.uniform_index(3));  // 2..4
  const double extent = 1.0 + rng.uniform() * 9.0;              // [1, 10)
  c.epsilon = extent * (0.02 + rng.uniform() * 0.10);

  Dataset ds(dims);
  std::vector<double> p(static_cast<std::size_t>(dims));
  const auto push_jittered = [&](double scale) {
    for (auto& x : p) x += rng.uniform(-scale, scale);
    ds.push_back(p);
  };

  switch (rng.uniform_index(5)) {
    case 0: {
      c.family = "uniform";
      const std::size_t n = 50 + rng.uniform_index(351);
      for (std::size_t i = 0; i < n; ++i) {
        for (auto& x : p) x = rng.uniform(0.0, extent);
        ds.push_back(p);
      }
      break;
    }
    case 1: {
      c.family = "clusters";
      const std::size_t clusters = 2 + rng.uniform_index(5);
      const std::size_t n = 80 + rng.uniform_index(271);
      std::vector<std::vector<double>> centers(clusters);
      for (auto& center : centers) {
        center.resize(static_cast<std::size_t>(dims));
        for (auto& x : center) x = rng.uniform(0.0, extent);
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.uniform() < 0.85) {
          // Dense pile within ~one epsilon of a center.
          p = centers[rng.uniform_index(clusters)];
          push_jittered(c.epsilon);
        } else {
          for (auto& x : p) x = rng.uniform(0.0, extent);
          ds.push_back(p);
        }
      }
      break;
    }
    case 2: {
      c.family = "duplicates";
      const std::size_t sites = 3 + rng.uniform_index(10);
      const std::size_t n = 60 + rng.uniform_index(241);
      std::vector<std::vector<double>> locations(sites);
      for (auto& loc : locations) {
        loc.resize(static_cast<std::size_t>(dims));
        for (auto& x : loc) x = rng.uniform(0.0, extent);
      }
      // Exact duplicates: every point *is* one of the sites, bit-equal.
      for (std::size_t i = 0; i < n; ++i) {
        ds.push_back(locations[rng.uniform_index(sites)]);
      }
      break;
    }
    case 3: {
      c.family = "boundaries";
      // Coordinates snapped to k*eps (grid-cell edges) with occasional
      // half-cell offsets: inter-point distances hit eps exactly.
      const std::size_t n = 50 + rng.uniform_index(201);
      const std::uint64_t cells = 1 + rng.uniform_index(8);
      for (std::size_t i = 0; i < n; ++i) {
        for (auto& x : p) {
          x = c.epsilon * static_cast<double>(rng.uniform_index(cells + 1));
          if (rng.uniform() < 0.25) x += c.epsilon * 0.5;
        }
        ds.push_back(p);
      }
      break;
    }
    default: {
      c.family = "tiny";
      const std::size_t n = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < n; ++i) {
        for (auto& x : p) x = rng.uniform(0.0, extent);
        ds.push_back(p);
      }
      break;
    }
  }
  c.dataset = std::move(ds);
  return c;
}

/// The paper's six GPU variants at radius `eps`, named as in Table IV.
inline std::vector<std::pair<std::string, SelfJoinConfig>> all_variants(
    double eps) {
  return {
      {"GPUCALCGLOBAL", SelfJoinConfig::gpu_calc_global(eps)},
      {"UNICOMP", SelfJoinConfig::unicomp(eps)},
      {"LID-UNICOMP", SelfJoinConfig::lid_unicomp(eps)},
      {"SORTBYWL", SelfJoinConfig::sort_by_wl(eps)},
      {"WORKQUEUE", SelfJoinConfig::work_queue_cfg(eps)},
      {"COMBINED", SelfJoinConfig::combined(eps)},
  };
}

}  // namespace gsj::testsupport
