// Randomized differential harness: every execution path in the repo
// against the brute-force oracle, over seed-driven adversarial
// datasets (tests/support/oracle.hpp).
//
// A failure prints the full (seed, family, n, dims, eps) tuple plus the
// variant/path name — paste the seed into make_adversarial_case to
// reproduce the exact dataset. ctest runs these under the
// `differential` label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baselines/kdtree.hpp"
#include "baselines/morton.hpp"
#include "baselines/rtree.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/churn.hpp"
#include "grid/grid_index.hpp"
#include "obs/context.hpp"
#include "sj/delta.hpp"
#include "sj/engine.hpp"
#include "sj/selfjoin.hpp"
#include "sj/service.hpp"
#include "superego/super_ego.hpp"
#include "support/oracle.hpp"

namespace gsj {
namespace {

using testsupport::AdversarialCase;
using testsupport::all_variants;
using testsupport::make_adversarial_case;

void expect_pairs_match(const ResultSet& got, const ResultSet& want,
                        const AdversarialCase& c, const std::string& path) {
  ASSERT_EQ(got.pairs().size(), want.pairs().size())
      << path << " " << c.describe();
  EXPECT_EQ(got.pairs(), want.pairs()) << path << " " << c.describe();
}

// ---------------------------------------------------------------------------
// All six GPU variants through the public one-shot path (which rides
// the shared JoinService): 40 seeds x 6 variants = 240 differential
// cases, one test per variant so a failure names its variant in the
// ctest output too.

void variant_vs_oracle(std::size_t variant_index) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    auto variants = all_variants(c.epsilon);
    auto& [name, cfg] = variants[variant_index];
    cfg.store_pairs = true;
    const SelfJoinOutput out = self_join(c.dataset, cfg);
    expect_pairs_match(out.results, truth, c, name);
    EXPECT_EQ(out.stats.result_pairs, truth.pairs().size())
        << name << " " << c.describe();
  }
}

TEST(Differential, GpuCalcGlobalMatchesBruteForce) { variant_vs_oracle(0); }
TEST(Differential, UnicompMatchesBruteForce) { variant_vs_oracle(1); }
TEST(Differential, LidUnicompMatchesBruteForce) { variant_vs_oracle(2); }
TEST(Differential, SortByWlMatchesBruteForce) { variant_vs_oracle(3); }
TEST(Differential, WorkQueueMatchesBruteForce) { variant_vs_oracle(4); }
TEST(Differential, CombinedMatchesBruteForce) { variant_vs_oracle(5); }

TEST(Differential, WorkQueueHigherKMatchesBruteForce) {
  // k in {2, 4, 8}: every thread-per-point fan-out against the oracle.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    for (const int k : {2, 4, 8}) {
      SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(c.epsilon, k);
      cfg.store_pairs = true;
      const SelfJoinOutput out = self_join(c.dataset, cfg);
      expect_pairs_match(out.results, truth, c,
                         "WORKQUEUE k=" + std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Engine path: cold and cache-warm runs against the same oracle (a
// warm-cache divergence is a plan-cache bug, not a kernel bug).

TEST(Differential, EngineColdAndWarmRunsMatchOracle) {
  for (std::uint64_t seed = 41; seed <= 48; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    JoinEngine engine;
    PreparedDataset prep = engine.prepare(c.dataset);
    for (auto& [name, cfg] : all_variants(c.epsilon)) {
      cfg.store_pairs = true;
      const SelfJoinOutput cold = engine.run(prep, cfg);
      expect_pairs_match(cold.results, truth, c, name + "/cold");
      const SelfJoinOutput warm = engine.run(prep, cfg);
      expect_pairs_match(warm.results, truth, c, name + "/warm");
    }
  }
}

// ---------------------------------------------------------------------------
// Service paths: synchronous run() against a shared dataset and the
// queued submit() path, same oracle.

TEST(Differential, ServiceRunMatchesOracle) {
  for (std::uint64_t seed = 49; seed <= 56; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    JoinService svc;
    const auto sd = svc.attach(c.dataset);
    for (auto& [name, cfg] : all_variants(c.epsilon)) {
      cfg.store_pairs = true;
      const SelfJoinOutput out = svc.run(*sd, cfg);
      expect_pairs_match(out.results, truth, c, name + "/service");
    }
  }
}

TEST(Differential, ServiceSubmitMatchesOracle) {
  for (std::uint64_t seed = 57; seed <= 60; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    ServiceConfig scfg;
    scfg.workers = 2;
    JoinService svc(scfg);
    const auto sd = svc.attach(c.dataset);
    std::vector<JoinService::Ticket> tickets;
    auto variants = all_variants(c.epsilon);
    for (auto& [name, cfg] : variants) {
      cfg.store_pairs = true;
      JoinRequest req;
      req.config = cfg;
      tickets.push_back(svc.submit(sd, req));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      JoinResponse r = tickets[i].get();
      ASSERT_EQ(r.status, JoinStatus::Ok)
          << variants[i].first << " " << c.describe() << ": " << r.error;
      expect_pairs_match(r.output.results, truth, c,
                         variants[i].first + "/submit");
    }
  }
}

// ---------------------------------------------------------------------------
// Host-parallel execution over adversarial datasets (the simulator on
// worker threads must not change results).

TEST(Differential, HostParallelMatchesOracle) {
  for (std::uint64_t seed = 61; seed <= 64; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    for (auto& [name, cfg] : all_variants(c.epsilon)) {
      cfg.store_pairs = true;
      cfg.device.host.num_threads = 4;
      const SelfJoinOutput out = self_join(c.dataset, cfg);
      expect_pairs_match(out.results, truth, c, name + "/mt4");
    }
  }
}

// ---------------------------------------------------------------------------
// Related-work baselines (src/baselines/) against the same oracle.

TEST(Differential, KdTreeJoinMatchesOracle) {
  for (std::uint64_t seed = 65; seed <= 76; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    const auto out = kdtree_self_join(c.dataset, c.epsilon, /*nthreads=*/2,
                                      /*store_pairs=*/true);
    expect_pairs_match(out.results, truth, c, "kdtree");
    EXPECT_EQ(out.stats.result_pairs, truth.pairs().size()) << c.describe();
  }
}

TEST(Differential, RTreeJoinMatchesOracle) {
  for (std::uint64_t seed = 77; seed <= 88; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    const auto out = rtree_self_join(c.dataset, c.epsilon, /*nthreads=*/2,
                                     /*store_pairs=*/true);
    expect_pairs_match(out.results, truth, c, "rtree");
    EXPECT_EQ(out.stats.result_pairs, truth.pairs().size()) << c.describe();
  }
}

TEST(Differential, MortonJoinMatchesOracle) {
  for (std::uint64_t seed = 89; seed <= 100; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    const auto out = morton_self_join(c.dataset, c.epsilon, /*nthreads=*/2,
                                      /*store_pairs=*/true);
    expect_pairs_match(out.results, truth, c, "morton");
    EXPECT_EQ(out.stats.result_pairs, truth.pairs().size()) << c.describe();
  }
}

// ---------------------------------------------------------------------------
// CPU baselines: SUPER-EGO and the parallel CPU grid join share the
// same ordered-pair semantics, so the same oracle applies.

TEST(Differential, SuperEgoMatchesOracle) {
  for (std::uint64_t seed = 101; seed <= 110; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    SuperEgoConfig cfg;
    cfg.epsilon = c.epsilon;
    cfg.nthreads = 2;
    cfg.store_pairs = true;
    const auto out = super_ego_join(c.dataset, cfg);
    expect_pairs_match(out.results, truth, c, "superego");
  }
}

TEST(Differential, CpuGridJoinParallelMatchesOracle) {
  for (std::uint64_t seed = 111; seed <= 120; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    const GridIndex grid(c.dataset, c.epsilon, /*pool=*/nullptr);
    const ResultSet out = cpu_grid_join_parallel(grid, /*nthreads=*/3,
                                                 /*store_pairs=*/true);
    expect_pairs_match(out, truth, c, "cpu_grid_parallel");
  }
}

// ---------------------------------------------------------------------------
// Cross-path agreement: the one-shot wrapper, an explicit engine and a
// service must be indistinguishable on the same request.

TEST(Differential, OneShotEngineAndServiceAgree) {
  for (std::uint64_t seed = 121; seed <= 126; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    SelfJoinConfig cfg = SelfJoinConfig::combined(c.epsilon);
    cfg.store_pairs = true;
    const SelfJoinOutput one_shot = self_join(c.dataset, cfg);
    JoinEngine engine;
    const SelfJoinOutput via_engine = engine.self_join(c.dataset, cfg);
    JoinService svc;
    const auto sd = svc.attach(c.dataset);
    const SelfJoinOutput via_service = svc.run(*sd, cfg);
    EXPECT_EQ(one_shot.results.pairs(), via_engine.results.pairs())
        << c.describe();
    EXPECT_EQ(one_shot.results.pairs(), via_service.results.pairs())
        << c.describe();
    EXPECT_EQ(one_shot.stats.kernel.busy_cycles,
              via_service.stats.kernel.busy_cycles)
        << c.describe();
  }
}

// ---------------------------------------------------------------------------
// Directed edge cases the seed-driven families can't hit by
// construction.

TEST(Differential, DuplicatePilesCountExactly) {
  // 5 piles of 20 exact duplicates, far apart: every pile contributes
  // 20*20 ordered pairs (self included), nothing crosses piles.
  Dataset ds(2);
  const double eps = 0.1;
  for (int site = 0; site < 5; ++site) {
    const double p[] = {static_cast<double>(site) * 10.0, 0.0};
    for (int i = 0; i < 20; ++i) ds.push_back(p);
  }
  const ResultSet truth = brute_force_join(ds, eps);
  ASSERT_EQ(truth.pairs().size(), 5u * 20u * 20u);
  for (auto& [name, cfg] : all_variants(eps)) {
    cfg.store_pairs = true;
    const SelfJoinOutput out = self_join(ds, cfg);
    ASSERT_EQ(out.results.pairs().size(), truth.pairs().size()) << name;
    EXPECT_EQ(out.results.pairs(), truth.pairs()) << name;
  }
}

TEST(Differential, EpsilonLatticeMatchesBruteForce) {
  // A 6x6 lattice with spacing exactly eps: every lateral neighbor sits
  // at distance == eps and every point on a cell corner — the maximal
  // boundary-condition stress for the grid.
  Dataset ds(2);
  const double eps = 0.25;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      const double p[] = {i * eps, j * eps};
      ds.push_back(p);
    }
  }
  const ResultSet truth = brute_force_join(ds, eps);
  for (auto& [name, cfg] : all_variants(eps)) {
    cfg.store_pairs = true;
    const SelfJoinOutput out = self_join(ds, cfg);
    ASSERT_EQ(out.results.pairs().size(), truth.pairs().size()) << name;
    EXPECT_EQ(out.results.pairs(), truth.pairs()) << name;
  }
}

TEST(Differential, EmptyDatasetThrowsEverywhere) {
  const Dataset empty(2);
  for (auto& [name, cfg] : all_variants(0.1)) {
    EXPECT_THROW((void)self_join(empty, cfg), CheckError) << name;
  }
  JoinService svc;
  const auto sd = svc.attach(empty);
  EXPECT_THROW((void)svc.run(*sd, SelfJoinConfig::combined(0.1)), CheckError);
}

TEST(Differential, SinglePointYieldsOnlySelfPair) {
  Dataset ds(3);
  const double p[] = {1.0, 2.0, 3.0};
  ds.push_back(p);
  for (auto& [name, cfg] : all_variants(0.5)) {
    cfg.store_pairs = true;
    const SelfJoinOutput out = self_join(ds, cfg);
    ASSERT_EQ(out.results.pairs().size(), 1u) << name;
    EXPECT_EQ(out.results.pairs()[0], ResultPair(0, 0)) << name;
  }
}

// ---------------------------------------------------------------------------
// Result-cache ε-subsumption (docs/SERVICE.md): a cached ε answer with
// stored pairs serves any ε' <= ε through the dist² <= ε'² filter. The
// served pairs must match the cold brute-force oracle at ε' exactly —
// across every adversarial dataset family, including the boundary
// family whose points sit at exact ε distances.

TEST(Differential, SubsumptionServesSmallerEpsilonAcrossFamilies) {
  for (std::uint64_t seed = 127; seed <= 134; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    JoinService svc;
    const auto sd = svc.attach(c.dataset);

    // Warm the result cache with the full-ε answer (pairs stored).
    JoinRequest warm;
    warm.config = SelfJoinConfig::combined(c.epsilon);
    warm.config.store_pairs = true;
    const JoinResponse full = svc.submit(sd, warm).get();
    ASSERT_EQ(full.status, JoinStatus::Ok) << c.describe() << " " << full.error;
    ASSERT_EQ(full.breakdown.served_from, obs::ServedFrom::Execution)
        << c.describe();

    // A *different* variant at a smaller radius: the variant-agnostic
    // key finds the ε entry and filters it instead of executing.
    const double eps_lo = 0.6 * c.epsilon;
    JoinRequest narrow;
    narrow.config = SelfJoinConfig::unicomp(eps_lo);
    narrow.config.store_pairs = true;
    const JoinResponse sub = svc.submit(sd, narrow).get();
    ASSERT_EQ(sub.status, JoinStatus::Ok) << c.describe() << " " << sub.error;
    EXPECT_EQ(sub.breakdown.served_from, obs::ServedFrom::Subsumed)
        << c.describe();
    const ResultSet truth = brute_force_join(c.dataset, eps_lo);
    expect_pairs_match(sub.output.results, truth, c, "subsume/pairs");
    EXPECT_EQ(sub.output.stats.result_pairs, truth.pairs().size())
        << c.describe();

    // Count-only at a yet smaller radius rides a pairs-bearing entry
    // (the retained ε' derivation or the original ε answer).
    const double eps_tiny = 0.35 * c.epsilon;
    JoinRequest count_only;
    count_only.config = SelfJoinConfig::work_queue_cfg(eps_tiny);
    count_only.config.store_pairs = false;
    const JoinResponse cnt = svc.submit(sd, count_only).get();
    ASSERT_EQ(cnt.status, JoinStatus::Ok) << c.describe() << " " << cnt.error;
    EXPECT_EQ(cnt.breakdown.served_from, obs::ServedFrom::Subsumed)
        << c.describe();
    EXPECT_EQ(cnt.output.results.count(),
              brute_force_join(c.dataset, eps_tiny).pairs().size())
        << c.describe();
    EXPECT_FALSE(cnt.output.results.stores_pairs()) << c.describe();
  }
}

// ---------------------------------------------------------------------------
// Shard-seam family (docs/SIMULATOR.md §fleet): multi-device runs shard
// the grid into work grains, so every grain boundary is a potential
// duplicate-or-drop seam. Fleet results must be bit-identical to the
// single-device canonical result — and to the oracle — for every
// variant, device count and fleet shape, on datasets whose dense
// clusters straddle cell (hence grain) boundaries by construction.

void fleet_vs_oracle(int devices, bool hetero, bool adaptive,
                     std::uint64_t seed_lo, std::uint64_t seed_hi) {
  for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    for (auto& [name, cfg] : all_variants(c.epsilon)) {
      cfg.store_pairs = true;
      cfg.fleet.num_devices = devices;
      cfg.fleet.adaptive = adaptive;
      if (hetero) {
        cfg.fleet.devices.assign(static_cast<std::size_t>(devices),
                                 cfg.device);
        for (int d = 0; d < devices; ++d) {
          cfg.fleet.devices[static_cast<std::size_t>(d)].num_sms =
              std::max(1, 56 >> d);
          cfg.fleet.devices[static_cast<std::size_t>(d)].clock_ghz =
              1.3 - 0.2 * d;
        }
      }
      const SelfJoinOutput out = self_join(c.dataset, cfg);
      expect_pairs_match(out.results, truth, c,
                         name + "/fleet" + std::to_string(devices) +
                             (hetero ? "h" : "") + (adaptive ? "" : "s"));
    }
  }
}

TEST(Differential, FleetTwoDevicesMatchesOracle) {
  fleet_vs_oracle(2, /*hetero=*/false, /*adaptive=*/true, 135, 144);
}

TEST(Differential, FleetFourDevicesMatchesOracle) {
  fleet_vs_oracle(4, /*hetero=*/false, /*adaptive=*/true, 145, 154);
}

TEST(Differential, FleetHeterogeneousMatchesOracle) {
  fleet_vs_oracle(4, /*hetero=*/true, /*adaptive=*/true, 155, 164);
}

TEST(Differential, FleetStaticShardingMatchesOracle) {
  fleet_vs_oracle(4, /*hetero=*/false, /*adaptive=*/false, 165, 174);
}

TEST(Differential, DenseClusterStraddlingGrainBoundary) {
  // Directed seam stress: dense piles placed exactly on cell corners
  // (epsilon-multiples), so each pile's neighborhood spans up to four
  // cells — and, for every device count, some pile straddles a grain
  // boundary. The fleet must neither duplicate nor drop the seam pairs.
  Dataset ds(2);
  const double eps = 0.25;
  std::vector<double> p(2);
  for (int site = 0; site < 6; ++site) {
    const double cx = eps * (1 + 2 * site);  // on a cell-corner lattice
    for (int i = 0; i < 25; ++i) {
      p[0] = cx + (i % 5 - 2) * (eps * 0.49);
      p[1] = eps + (i / 5 - 2) * (eps * 0.49);
      ds.push_back(p);
    }
  }
  const ResultSet truth = brute_force_join(ds, eps);
  for (const int devices : {2, 3, 4, 8}) {
    for (auto& [name, cfg] : all_variants(eps)) {
      cfg.store_pairs = true;
      cfg.fleet.num_devices = devices;
      const SelfJoinOutput out = self_join(ds, cfg);
      ASSERT_EQ(out.results.pairs().size(), truth.pairs().size())
          << name << " devices=" << devices;
      EXPECT_EQ(out.results.pairs(), truth.pairs())
          << name << " devices=" << devices;
    }
  }
}

TEST(Differential, FleetServiceSubmitMatchesOracle) {
  // Fleet requests through the queued service path: the result cache,
  // coalescing and verification layers must be fleet-transparent.
  for (std::uint64_t seed = 175; seed <= 178; ++seed) {
    const AdversarialCase c = make_adversarial_case(seed);
    const ResultSet truth = brute_force_join(c.dataset, c.epsilon);
    ServiceConfig scfg;
    scfg.workers = 2;
    JoinService svc(scfg);
    const auto sd = svc.attach(c.dataset);
    JoinRequest req;
    req.config = SelfJoinConfig::combined(c.epsilon);
    req.config.store_pairs = true;
    req.config.fleet.num_devices = 4;
    const JoinResponse r = svc.submit(sd, req).get();
    ASSERT_EQ(r.status, JoinStatus::Ok) << c.describe() << ": " << r.error;
    expect_pairs_match(r.output.results, truth, c, "fleet/submit");
  }
}

// ---------------------------------------------------------------------------
// Churn families (docs/STREAMING.md): seeded streams of insert / erase
// / move batches applied to adversarial datasets. After every batch,
// three invariants must hold simultaneously: (a) an incrementally
// repaired grid is digest-identical to a from-scratch rebuild, (b) the
// engine's delta join equals the literal set difference of brute-force
// joins across the batch, and (c) warm cache-served runs match the
// oracle on every kernel variant. A failure prints the (seed, family,
// batch) tuple.

/// One seeded mutation batch. Inserts and teleports land inside the
/// dataset's initial bounding box most of the time (the repairable
/// case); boundary erases and out-of-box moves occur naturally and
/// exercise the rebuild fallback.
void apply_churn_batch(Dataset& ds, Xoshiro256& rng, const std::string& family,
                       const std::vector<double>& lo,
                       const std::vector<double>& hi) {
  const int dims = ds.dims();
  std::vector<double> p(static_cast<std::size_t>(dims));
  const std::size_t batch = 1 + rng.uniform_index(10);
  static const char* const kMixed[] = {"insert", "erase", "move"};
  for (std::size_t m = 0; m < batch; ++m) {
    std::string op = family;
    if (op == "mixed") op = kMixed[rng.uniform_index(3)];
    if (op == "erase" && ds.size() <= 1) op = "insert";
    if (op == "insert") {
      for (int d = 0; d < dims; ++d) {
        const auto s = static_cast<std::size_t>(d);
        p[s] = rng.uniform(lo[s], hi[s]);
      }
      (void)ds.insert(p);
    } else if (op == "erase") {
      ds.erase(static_cast<PointId>(rng.uniform_index(ds.size())));
    } else {
      const auto i = static_cast<PointId>(rng.uniform_index(ds.size()));
      if (rng.uniform() < 0.5) {
        // Nudge: usually stays within the point's own cell or a direct
        // neighbor, the cheapest repair.
        for (int d = 0; d < dims; ++d) {
          const auto s = static_cast<std::size_t>(d);
          const double span = std::max(hi[s] - lo[s], 1e-6);
          p[s] = ds.coord(i, d) + rng.uniform(-0.02, 0.02) * span;
        }
      } else {
        for (int d = 0; d < dims; ++d) {
          const auto s = static_cast<std::size_t>(d);
          p[s] = rng.uniform(lo[s], hi[s]);
        }
      }
      ds.move_point(i, p);
    }
  }
}

void churn_vs_oracle(const std::string& family, std::uint64_t seed_lo,
                     std::uint64_t seed_hi) {
  for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
    AdversarialCase c = make_adversarial_case(seed);
    Dataset& ds = c.dataset;
    if (ds.empty()) continue;
    const std::vector<double> lo = ds.min_corner();
    const std::vector<double> hi = ds.max_corner();
    Xoshiro256 rng(seed * 7919 + 13);

    JoinEngine engine;
    PreparedDataset prep = engine.prepare(ds);
    SelfJoinConfig seeded = SelfJoinConfig::combined(c.epsilon);
    seeded.store_pairs = true;
    (void)engine.run(prep, seeded);  // caches warm at the base generation
    GridIndex grid(ds, c.epsilon);

    ResultSet before = brute_force_join(ds, c.epsilon);
    for (int batch = 0; batch < 4; ++batch) {
      const std::string tag =
          family + "/batch" + std::to_string(batch) + " " + c.describe();
      const std::uint64_t base = ds.generation();
      apply_churn_batch(ds, rng, family, lo, hi);
      ResultSet after = brute_force_join(ds, c.epsilon);

      // (a) Repaired grid is digest-identical to a from-scratch build.
      (void)grid.repair();
      EXPECT_EQ(grid.content_key(), GridIndex(ds, c.epsilon).content_key())
          << tag;

      // (b) Delta join equals the oracle set difference.
      const std::optional<PairDelta> delta =
          engine.delta_join(prep, c.epsilon, base);
      ASSERT_TRUE(delta.has_value()) << tag;
      std::vector<ResultPair> want_gained;
      std::set_difference(after.pairs().begin(), after.pairs().end(),
                          before.pairs().begin(), before.pairs().end(),
                          std::back_inserter(want_gained));
      std::vector<ResultPair> want_lost;
      std::set_difference(before.pairs().begin(), before.pairs().end(),
                          after.pairs().begin(), after.pairs().end(),
                          std::back_inserter(want_lost));
      EXPECT_EQ(delta->gained, want_gained) << tag;
      EXPECT_EQ(delta->lost, want_lost) << tag;

      // (c) Warm runs across every kernel variant match the oracle.
      for (auto& [name, cfg] : all_variants(c.epsilon)) {
        cfg.store_pairs = true;
        const SelfJoinOutput warm = engine.run(prep, cfg);
        expect_pairs_match(warm.results, after, c, name + "/" + tag);
      }
      before = std::move(after);
    }
  }
}

TEST(Differential, ChurnInsertStreamStaysConsistent) {
  churn_vs_oracle("insert", 179, 182);
}
TEST(Differential, ChurnEraseStreamStaysConsistent) {
  churn_vs_oracle("erase", 183, 186);
}
TEST(Differential, ChurnMoveStreamStaysConsistent) {
  churn_vs_oracle("move", 187, 190);
}
TEST(Differential, ChurnMixedStreamStaysConsistent) {
  churn_vs_oracle("mixed", 191, 196);
}

TEST(Differential, ChurnedFleetSubmitMatchesOracle) {
  // The same churn stream through the service's queued submit path on a
  // 4-device fleet: warm sharded runs over a repaired data plane.
  for (std::uint64_t seed = 197; seed <= 199; ++seed) {
    AdversarialCase c = make_adversarial_case(seed);
    Dataset& ds = c.dataset;
    if (ds.empty()) continue;
    const std::vector<double> lo = ds.min_corner();
    const std::vector<double> hi = ds.max_corner();
    Xoshiro256 rng(seed * 104729 + 7);

    ServiceConfig scfg;
    scfg.workers = 2;
    JoinService svc(scfg);
    const auto sd = svc.attach(ds);
    JoinRequest req;
    req.config = SelfJoinConfig::combined(c.epsilon);
    req.config.store_pairs = true;
    req.config.fleet.num_devices = 4;
    const JoinResponse warmup = svc.submit(sd, req).get();
    ASSERT_EQ(warmup.status, JoinStatus::Ok) << c.describe();

    for (int batch = 0; batch < 3; ++batch) {
      apply_churn_batch(ds, rng, "mixed", lo, hi);
      const ResultSet truth = brute_force_join(ds, c.epsilon);
      const JoinResponse r = svc.submit(sd, req).get();
      ASSERT_EQ(r.status, JoinStatus::Ok) << c.describe() << ": " << r.error;
      expect_pairs_match(r.output.results, truth, c,
                         "fleet/churn batch" + std::to_string(batch));
    }
  }
}

// ---------------------------------------------------------------------------
// R×S families (docs/JOINS.md): two-dataset ε-joins over seeded
// bbox-relationship / size-ratio / duplicate cases, against the
// brute_force_rxs oracle. Seeds >= 200 (1–199 belong to the self-join
// families above); seed % 6 selects the family, so each range below
// covers all six.

using testsupport::brute_force_knn;
using testsupport::brute_force_rxs;
using testsupport::make_rxs_case;
using testsupport::RxsCase;

void expect_rxs_match(const ResultSet& got, const ResultSet& want,
                      const RxsCase& c, const std::string& path) {
  ASSERT_EQ(got.pairs().size(), want.pairs().size())
      << path << " " << c.describe();
  EXPECT_EQ(got.pairs(), want.pairs()) << path << " " << c.describe();
}

void rxs_variant_vs_oracle(std::size_t variant_index, std::uint64_t seed_lo,
                           std::uint64_t seed_hi) {
  for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
    const RxsCase c = make_rxs_case(seed);
    const ResultSet truth = brute_force_rxs(c.r, c.s, c.epsilon);
    auto variants = all_variants(c.epsilon);
    auto& [name, cfg] = variants[variant_index];
    cfg.store_pairs = true;
    const SelfJoinOutput out = rxs_join(c.r, c.s, cfg);
    expect_rxs_match(out.results, truth, c, name + "/rxs");
    EXPECT_EQ(out.stats.result_pairs, truth.pairs().size())
        << name << " " << c.describe();
  }
}

TEST(Differential, RxsGpuCalcGlobalMatchesBruteForce) {
  rxs_variant_vs_oracle(0, 200, 211);
}
TEST(Differential, RxsUnicompMatchesBruteForce) {
  rxs_variant_vs_oracle(1, 200, 211);
}
TEST(Differential, RxsLidUnicompMatchesBruteForce) {
  rxs_variant_vs_oracle(2, 200, 211);
}
TEST(Differential, RxsSortByWlMatchesBruteForce) {
  rxs_variant_vs_oracle(3, 200, 211);
}
TEST(Differential, RxsWorkQueueMatchesBruteForce) {
  rxs_variant_vs_oracle(4, 200, 211);
}
TEST(Differential, RxsCombinedMatchesBruteForce) {
  rxs_variant_vs_oracle(5, 200, 211);
}

TEST(Differential, RxsEngineColdAndWarmRunsMatchOracle) {
  // Engine path: the gridded side is prepared once; cold then warm
  // (plan-cache-served) R×S runs must both match the oracle — a warm
  // divergence is a probe-plan keying bug.
  for (std::uint64_t seed = 212; seed <= 217; ++seed) {
    const RxsCase c = make_rxs_case(seed);
    const ResultSet truth = brute_force_rxs(c.r, c.s, c.epsilon);
    // Run against the engine directly: grid `s`, probe with `r` (pairs
    // come back (probe, gridded) = (r, s), matching the oracle).
    JoinEngine engine;
    PreparedDataset prep = engine.prepare(c.s);
    if (c.s.empty() || c.r.empty()) continue;
    for (auto& [name, cfg] : all_variants(c.epsilon)) {
      cfg.store_pairs = true;
      cfg.mode = JoinMode::RxS;
      cfg.probe = &c.r;
      const SelfJoinOutput cold = engine.run(prep, cfg);
      expect_rxs_match(cold.results, truth, c, name + "/rxs-cold");
      const SelfJoinOutput warm = engine.run(prep, cfg);
      expect_rxs_match(warm.results, truth, c, name + "/rxs-warm");
    }
  }
}

TEST(Differential, RxsServiceSubmitMatchesOracle) {
  for (std::uint64_t seed = 218; seed <= 223; ++seed) {
    const RxsCase c = make_rxs_case(seed);
    const ResultSet truth = brute_force_rxs(c.r, c.s, c.epsilon);
    if (c.s.empty() || c.r.empty()) continue;
    ServiceConfig scfg;
    scfg.workers = 2;
    JoinService svc(scfg);
    const auto sd = svc.attach(c.s);
    JoinRequest req;
    req.config = SelfJoinConfig::combined(c.epsilon);
    req.config.store_pairs = true;
    req.config.mode = JoinMode::RxS;
    req.config.probe = &c.r;
    const JoinResponse r = svc.submit(sd, req).get();
    ASSERT_EQ(r.status, JoinStatus::Ok) << c.describe() << ": " << r.error;
    expect_rxs_match(r.output.results, truth, c, "rxs/submit");
    // Repeat request: exact result-cache hit, same pairs.
    const JoinResponse r2 = svc.submit(sd, req).get();
    ASSERT_EQ(r2.status, JoinStatus::Ok) << c.describe();
    EXPECT_EQ(r2.breakdown.served_from, obs::ServedFrom::ResultCache)
        << c.describe();
    expect_rxs_match(r2.output.results, truth, c, "rxs/submit-hit");
  }
}

TEST(Differential, RxsHostParallelMatchesOracle) {
  for (std::uint64_t seed = 224; seed <= 229; ++seed) {
    const RxsCase c = make_rxs_case(seed);
    const ResultSet truth = brute_force_rxs(c.r, c.s, c.epsilon);
    for (auto& [name, cfg] : all_variants(c.epsilon)) {
      cfg.store_pairs = true;
      cfg.device.host.num_threads = 4;
      const SelfJoinOutput out = rxs_join(c.r, c.s, cfg);
      expect_rxs_match(out.results, truth, c, name + "/rxs-mt4");
    }
  }
}

TEST(Differential, RxsFleetMatchesOracle) {
  // Fleet sharding partitions contiguous probe-id ranges for R×S; every
  // grain boundary is a potential duplicate-or-drop seam, for every
  // device count.
  for (std::uint64_t seed = 230; seed <= 235; ++seed) {
    const RxsCase c = make_rxs_case(seed);
    const ResultSet truth = brute_force_rxs(c.r, c.s, c.epsilon);
    for (const int devices : {1, 2, 4}) {
      for (auto& [name, cfg] : all_variants(c.epsilon)) {
        cfg.store_pairs = true;
        cfg.fleet.num_devices = devices;
        const SelfJoinOutput out = rxs_join(c.r, c.s, cfg);
        expect_rxs_match(out.results, truth, c,
                         name + "/rxs-fleet" + std::to_string(devices));
      }
    }
  }
}

TEST(Differential, RxsPairAtExactlyEpsilonIsIncluded) {
  // Cross-pair at dist == eps must be inside (<=, not <) in both
  // orientations (R gridded and S gridded).
  Dataset r(2);
  Dataset s(2);
  const double a[] = {0.0, 0.0};
  const double b[] = {0.25, 0.0};
  r.push_back(a);
  s.push_back(b);
  for (auto& [name, cfg] : all_variants(0.25)) {
    cfg.store_pairs = true;
    const SelfJoinOutput out = rxs_join(r, s, cfg);
    ASSERT_EQ(out.results.pairs().size(), 1u) << name;
    EXPECT_EQ(out.results.pairs()[0], ResultPair(0, 0)) << name;
    // Flip the sides: same single pair, ids still (r_id, s_id).
    const SelfJoinOutput flipped = rxs_join(s, r, cfg);
    ASSERT_EQ(flipped.results.pairs().size(), 1u) << name;
    EXPECT_EQ(flipped.results.pairs()[0], ResultPair(0, 0)) << name;
  }
}

// ---------------------------------------------------------------------------
// KNN families: exact k-NN join against the brute-force oracle, with
// the documented (distance², then id) selection tie-break. k spans
// {1, 5, n} plus k > n (all-neighbors clamp).

TEST(Differential, KnnMatchesBruteForceAcrossK) {
  for (std::uint64_t seed = 236; seed <= 243; ++seed) {
    const RxsCase c = make_rxs_case(seed);
    if (c.s.empty() || c.r.empty()) continue;
    const auto n = static_cast<int>(c.s.size());
    for (const int k : {1, 5, n, n + 7}) {
      if (k < 1) continue;
      const ResultSet truth = brute_force_knn(c.s, c.r, k);
      SelfJoinConfig cfg = SelfJoinConfig::combined(c.epsilon);
      cfg.store_pairs = true;
      const SelfJoinOutput out = knn_join(c.s, c.r, k, cfg);
      expect_rxs_match(out.results, truth, c, "knn k=" + std::to_string(k));
      EXPECT_EQ(out.stats.result_pairs, truth.pairs().size())
          << "k=" << k << " " << c.describe();
      EXPECT_GE(out.stats.knn_rounds, 1u) << c.describe();
    }
  }
}

TEST(Differential, KnnServiceSubmitMatchesOracle) {
  for (std::uint64_t seed = 244; seed <= 247; ++seed) {
    const RxsCase c = make_rxs_case(seed);
    if (c.s.empty() || c.r.empty()) continue;
    const ResultSet truth = brute_force_knn(c.s, c.r, 3);
    ServiceConfig scfg;
    scfg.workers = 2;
    JoinService svc(scfg);
    const auto sd = svc.attach(c.s);
    JoinRequest req;
    req.config.mode = JoinMode::Knn;
    req.config.probe = &c.r;
    req.config.knn_k = 3;
    req.config.store_pairs = true;
    const JoinResponse r = svc.submit(sd, req).get();
    ASSERT_EQ(r.status, JoinStatus::Ok) << c.describe() << ": " << r.error;
    expect_rxs_match(r.output.results, truth, c, "knn/submit");
    // Repeat: exact result-cache hit keyed by (mode, probe identity, k).
    const JoinResponse r2 = svc.submit(sd, req).get();
    ASSERT_EQ(r2.status, JoinStatus::Ok) << c.describe();
    EXPECT_EQ(r2.breakdown.served_from, obs::ServedFrom::ResultCache)
        << c.describe();
    expect_rxs_match(r2.output.results, truth, c, "knn/submit-hit");
  }
}

TEST(Differential, KnnTiesAtExactlyEpsilonResolveById) {
  // Four data points equidistant from the query (a cross at distance
  // 0.5): k=2 must select ids {0, 1} by the (distance², id) tie-break,
  // for any variant config riding the request.
  Dataset ds(2);
  const double pts[][2] = {{0.5, 0.0}, {-0.5, 0.0}, {0.0, 0.5}, {0.0, -0.5}};
  for (const auto& q : pts) ds.push_back(q);
  Dataset queries(2);
  const double origin[] = {0.0, 0.0};
  queries.push_back(origin);
  const ResultSet truth = brute_force_knn(ds, queries, 2);
  ASSERT_EQ(truth.pairs().size(), 2u);
  EXPECT_EQ(truth.pairs()[0], ResultPair(0, 0));
  EXPECT_EQ(truth.pairs()[1], ResultPair(0, 1));
  SelfJoinConfig cfg;
  cfg.store_pairs = true;
  const SelfJoinOutput out = knn_join(ds, queries, 2, cfg);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(Differential, PairAtExactlyEpsilonIsIncluded) {
  // dist == eps must be inside (<=, not <) for every variant.
  Dataset ds(2);
  const double a[] = {0.0, 0.0};
  const double b[] = {0.25, 0.0};
  ds.push_back(a);
  ds.push_back(b);
  for (auto& [name, cfg] : all_variants(0.25)) {
    cfg.store_pairs = true;
    const SelfJoinOutput out = self_join(ds, cfg);
    EXPECT_EQ(out.results.pairs().size(), 4u) << name;  // 2 self + (0,1)+(1,0)
  }
}

}  // namespace
}  // namespace gsj
