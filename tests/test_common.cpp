// Unit tests: RNG determinism and distribution sanity, statistics,
// tables, CLI parsing, thread pool semantics.
#include <gtest/gtest.h>

#include <cmath>

#include <atomic>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace gsj {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, SplitMixExpandsDistinctStreams) {
  SplitMix64 sm(123);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 100.0), 10.0);
}

TEST(Stats, HistogramBucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Stats, ImbalanceFactor) {
  const std::vector<std::uint64_t> balanced{4, 4, 4, 4};
  EXPECT_DOUBLE_EQ(imbalance_factor(balanced), 1.0);
  const std::vector<std::uint64_t> skewed{0, 0, 0, 8};
  EXPECT_DOUBLE_EQ(imbalance_factor(skewed), 4.0);
  EXPECT_DOUBLE_EQ(imbalance_factor(std::span<const std::uint64_t>{}), 0.0);
}

TEST(Table, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.set_precision(2);
  t.add_row({std::string("a"), 1.5});
  t.add_row({std::string("b,c"), std::int64_t{7}});
  std::ostringstream ascii;
  t.print(ascii);
  EXPECT_NE(ascii.str().find("| a"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\na,1.50\n\"b,c\",7\n");
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), CheckError);
}

TEST(Cli, ParsesFormsAndDefaults) {
  // A bare trailing flag is boolean; positionals go before flags (a
  // bare flag would otherwise consume the following token as its value).
  const char* argv[] = {"prog", "pos", "--alpha", "3", "--beta=x", "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("beta", ""), "x");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_double("gamma", 2.5), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
  EXPECT_FALSE(cli.help_requested());
}

TEST(Cli, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.help_requested());
  (void)cli.get_int("n", 5, "sample size");
  EXPECT_NE(cli.help_text().find("--n"), std::string::npos);
  EXPECT_NE(cli.help_text().find("sample size"), std::string::npos);
}

TEST(Cli, RejectsMalformedNumericValues) {
  // Silent strtoll/strtod prefix parsing once turned "--n 10x" into 10
  // and "--epsilon abc" into 0.0; malformed values must instead fail
  // loudly, naming the flag.
  const char* argv[] = {"prog",      "--n",     "10x",  "--epsilon", "abc",
                        "--empty=",  "--huge",  "99999999999999999999",
                        "--bigexp",  "1e999999"};
  Cli cli(10, argv);
  EXPECT_THROW((void)cli.get_int("n", 0), CheckError);
  EXPECT_THROW((void)cli.get_double("epsilon", 0.0), CheckError);
  EXPECT_THROW((void)cli.get_int("empty", 0), CheckError);
  EXPECT_THROW((void)cli.get_double("empty", 0.0), CheckError);
  EXPECT_THROW((void)cli.get_int("huge", 0), CheckError);     // ERANGE
  EXPECT_THROW((void)cli.get_double("bigexp", 0.0), CheckError);
  try {
    (void)cli.get_int("n", 0);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("10x"), std::string::npos);
  }
}

TEST(Cli, AcceptsWellFormedNumericValues) {
  const char* argv[] = {"prog", "--a", "-42", "--b", "3.5e-2", "--c", "0"};
  Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("a", 0), -42);
  EXPECT_DOUBLE_EQ(cli.get_double("b", 0.0), 3.5e-2);
  EXPECT_EQ(cli.get_int("c", 9), 0);
  // Defaults still pass through the strict parser unharmed.
  EXPECT_EQ(cli.get_int("absent", -7), -7);
  EXPECT_DOUBLE_EQ(cli.get_double("absent2", 0.25), 0.25);
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 999u * 1000 / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ChunkedCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for_chunks(257, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Check, MacrosThrow) {
  EXPECT_THROW(GSJ_CHECK(false), CheckError);
  EXPECT_NO_THROW(GSJ_CHECK(true));
  EXPECT_THROW(GSJ_CHECK_MSG(1 == 2, "context " << 42), CheckError);
}

}  // namespace
}  // namespace gsj
