// JoinEngine suite: cache-served runs must be bit-identical to cold
// runs — result pairs, every SelfJoinStats field, and byte-identical
// logical-time traces — for all six paper variants at any host thread
// count; plus generation-counter invalidation, LRU eviction bounds,
// scratch-arena reuse (including under overflow recovery), engine-owned
// pools, and the sj.cache.* accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "data/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sj/engine.hpp"

namespace gsj {
namespace {

struct Variant {
  const char* name;
  SelfJoinConfig (*make)(double);
};

SelfJoinConfig make_full(double eps) {
  return SelfJoinConfig::gpu_calc_global(eps);
}
SelfJoinConfig make_unicomp(double eps) { return SelfJoinConfig::unicomp(eps); }
SelfJoinConfig make_lid(double eps) { return SelfJoinConfig::lid_unicomp(eps); }
SelfJoinConfig make_sortbywl(double eps) {
  return SelfJoinConfig::sort_by_wl(eps);
}
SelfJoinConfig make_workqueue(double eps) {
  return SelfJoinConfig::work_queue_cfg(eps);
}
SelfJoinConfig make_combined(double eps) {
  return SelfJoinConfig::combined(eps);
}

constexpr Variant kVariants[] = {
    {"FULL", &make_full},           {"UNICOMP", &make_unicomp},
    {"LID-UNICOMP", &make_lid},     {"SORTBYWL", &make_sortbywl},
    {"WORKQUEUE", &make_workqueue}, {"COMBINED", &make_combined},
};

/// One run with a per-run logical-time tracer attached; the trace JSON
/// is the byte-level witness that a cache hit replays the cold path's
/// exact span/event history.
struct JoinRun {
  SelfJoinOutput out;
  std::string trace_json;
};

SelfJoinConfig variant_config(const Variant& v, int host_threads) {
  SelfJoinConfig cfg = v.make(0.04);
  // Small buffer forces several batches, so cached plans cover the
  // multi-batch splitting logic, not just the single-batch case.
  cfg.batching.buffer_pairs = 5000;
  cfg.store_pairs = true;
  cfg.device.host.num_threads = host_threads;
  return cfg;
}

JoinRun run_once(JoinEngine& engine, PreparedDataset& prep,
                 SelfJoinConfig cfg) {
  obs::Tracer tracer(obs::TimeMode::Logical);
  cfg.tracer = &tracer;
  JoinRun r;
  r.out = engine.run(prep, cfg);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  r.trace_json = os.str();
  return r;
}

void expect_identical(const JoinRun& cold, const JoinRun& warm,
                      const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(cold.out.results.pairs(), warm.out.results.pairs());
  EXPECT_EQ(cold.out.results.count(), warm.out.results.count());

  const auto& a = cold.out.stats;
  const auto& b = warm.out.stats;
  EXPECT_EQ(a.kernel.launches, b.kernel.launches);
  EXPECT_EQ(a.kernel.warps_launched, b.kernel.warps_launched);
  EXPECT_EQ(a.kernel.warp_steps, b.kernel.warp_steps);
  EXPECT_EQ(a.kernel.active_lane_steps, b.kernel.active_lane_steps);
  EXPECT_EQ(a.kernel.busy_cycles, b.kernel.busy_cycles);
  EXPECT_EQ(a.kernel.makespan_cycles, b.kernel.makespan_cycles);
  EXPECT_EQ(a.kernel.tail_idle_cycles, b.kernel.tail_idle_cycles);
  EXPECT_EQ(a.kernel.atomics_executed, b.kernel.atomics_executed);
  EXPECT_EQ(a.kernel.results_emitted, b.kernel.results_emitted);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.estimated_total_pairs, b.estimated_total_pairs);
  EXPECT_EQ(a.result_pairs, b.result_pairs);
  EXPECT_EQ(a.max_batch_pairs, b.max_batch_pairs);
  EXPECT_EQ(a.overflow_retries, b.overflow_retries);
  EXPECT_DOUBLE_EQ(a.wee_percent(), b.wee_percent());
  EXPECT_DOUBLE_EQ(a.warp_cycle_cov(), b.warp_cycle_cov());
  EXPECT_DOUBLE_EQ(a.warp_cycle_gini(), b.warp_cycle_gini());
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.batches[i].query_points, b.batches[i].query_points);
    EXPECT_EQ(a.batches[i].result_pairs, b.batches[i].result_pairs);
    EXPECT_EQ(a.batches[i].warps, b.batches[i].warps);
    EXPECT_EQ(a.batches[i].makespan_cycles, b.batches[i].makespan_cycles);
    EXPECT_DOUBLE_EQ(a.batches[i].wee_percent, b.batches[i].wee_percent);
    EXPECT_DOUBLE_EQ(a.batches[i].warp_cycle_cov, b.batches[i].warp_cycle_cov);
  }
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t s = 0; s < a.slots.size(); ++s) {
    EXPECT_EQ(a.slots[s].warps, b.slots[s].warps) << "slot " << s;
    EXPECT_EQ(a.slots[s].busy_cycles, b.slots[s].busy_cycles) << "slot " << s;
  }
  EXPECT_EQ(cold.trace_json, warm.trace_json);
}

class EngineCacheEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineCacheEquivalence, WarmRunBitIdenticalToCold) {
  const auto [variant_idx, threads] = GetParam();
  const Variant& v = kVariants[static_cast<std::size_t>(variant_idx)];
  const Dataset ds = gen_exponential(3000, 2, 117);

  obs::Registry metrics;
  EngineConfig ecfg;
  ecfg.obs.metrics = &metrics;
  JoinEngine engine(ecfg);
  PreparedDataset prep = engine.prepare(ds);

  const SelfJoinConfig cfg = variant_config(v, threads);
  const JoinRun cold = run_once(engine, prep, cfg);
  EXPECT_EQ(metrics.counter("sj.cache.hits").value(), 0u);
  const std::uint64_t misses = metrics.counter("sj.cache.misses").value();
  EXPECT_GE(misses, 1u);

  const JoinRun warm = run_once(engine, prep, cfg);
  expect_identical(cold, warm, v.name);
  // Every artifact the warm run needed was served from cache.
  EXPECT_GE(metrics.counter("sj.cache.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.misses").value(), misses);

  // And both match a completely fresh engine end to end.
  JoinEngine fresh_engine;
  PreparedDataset fresh_prep = fresh_engine.prepare(ds);
  const JoinRun fresh = run_once(fresh_engine, fresh_prep, cfg);
  expect_identical(fresh, warm, v.name);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, EngineCacheEquivalence,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(0, 1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& param_info) {
      std::string name = kVariants[static_cast<std::size_t>(
                             std::get<0>(param_info.param))].name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_t" + std::to_string(std::get<1>(param_info.param));
    });

TEST(JoinEngineTest, FreeWrapperMatchesEngine) {
  const Dataset ds = gen_exponential(2000, 2, 21);
  const SelfJoinConfig cfg = variant_config(kVariants[5], 0);
  const SelfJoinOutput via_wrapper = self_join(ds, cfg);

  JoinEngine engine;
  PreparedDataset prep = engine.prepare(ds);
  const SelfJoinOutput via_engine = engine.run(prep, cfg);
  EXPECT_EQ(via_wrapper.results.pairs(), via_engine.results.pairs());
  EXPECT_EQ(via_wrapper.stats.kernel.makespan_cycles,
            via_engine.stats.kernel.makespan_cycles);
  EXPECT_EQ(via_wrapper.stats.num_batches, via_engine.stats.num_batches);
}

TEST(JoinEngineTest, MutationRepairsCachesInPlace) {
  Dataset ds = gen_exponential(2000, 2, 33);
  obs::Registry metrics;
  EngineConfig ecfg;
  ecfg.obs.metrics = &metrics;
  JoinEngine engine(ecfg);
  PreparedDataset prep = engine.prepare(ds);

  const SelfJoinConfig cfg = variant_config(kVariants[4], 0);  // WORKQUEUE
  const JoinRun before = run_once(engine, prep, cfg);
  EXPECT_GE(prep.cached_grid_count(), 1u);
  EXPECT_GE(prep.cached_plan_count(), 1u);

  // A logged mutation no longer drops the caches: the next run repairs
  // the cached grid cell-granularly, patches the dependent plan, and
  // still produces the fresh-dataset answer bit-identically.
  ds.push_back(std::vector<double>{0.01, 0.01});
  EXPECT_NE(prep.generation(), ds.generation());

  const JoinRun after = run_once(engine, prep, cfg);
  EXPECT_EQ(metrics.counter("sj.cache.invalidations").value(), 0u);
  EXPECT_GE(metrics.counter("sj.incr.repairs").value(), 1u);
  EXPECT_GE(metrics.counter("sj.incr.plan_patches").value(), 1u);
  // The repaired grid is served as a hit — no second build.
  EXPECT_EQ(metrics.counter("sj.cache.grid.misses").value(), 1u);
  EXPECT_EQ(prep.generation(), ds.generation());

  JoinEngine fresh_engine;
  PreparedDataset fresh_prep = fresh_engine.prepare(ds);
  const JoinRun fresh = run_once(fresh_engine, fresh_prep, cfg);
  expect_identical(fresh, after, "post-mutation");
  // The mutated dataset genuinely differs from the original run.
  EXPECT_NE(before.out.stats.result_pairs, after.out.stats.result_pairs);

  // A bulk load invalidates the mutation window: the grid rebuilds from
  // scratch and unpatched plans are dropped — the old all-or-nothing
  // invalidation, now the fallback instead of the rule.
  { auto col = ds.fill_dim(0); (void)col; }
  const JoinRun rebuilt = run_once(engine, prep, cfg);
  EXPECT_GE(metrics.counter("sj.incr.rebuild_fallbacks").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.invalidations").value(), 1u);
  expect_identical(after, rebuilt, "post-bulk-load");
}

TEST(JoinEngineTest, EvictionBoundsRespected) {
  const Dataset ds = gen_exponential(2000, 2, 55);
  obs::Registry metrics;
  EngineConfig ecfg;
  ecfg.max_cached_grids = 2;
  ecfg.max_cached_plans = 2;
  ecfg.obs.metrics = &metrics;
  JoinEngine engine(ecfg);
  PreparedDataset prep = engine.prepare(ds);

  const double epsilons[] = {0.02, 0.03, 0.04, 0.05, 0.06};
  for (const double eps : epsilons) {
    SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(eps);
    cfg.store_pairs = false;
    engine.recycle(engine.run(prep, cfg));
    EXPECT_LE(prep.cached_grid_count(), 2u);
    EXPECT_LE(prep.cached_plan_count(), 2u);
  }
  EXPECT_GE(metrics.counter("sj.cache.evictions").value(), 1u);

  // An evicted epsilon still runs correctly (it is simply a miss again).
  SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(epsilons[0]);
  cfg.store_pairs = true;
  const SelfJoinOutput again = engine.run(prep, cfg);
  const SelfJoinOutput fresh = self_join(ds, cfg);
  EXPECT_EQ(again.results.pairs(), fresh.results.pairs());
}

TEST(JoinEngineTest, OverflowRecoveryUnaffectedByReusedScratch) {
  // Forced estimator undershoot overflows the buffer and triggers
  // rollback-and-split; a warm run that reuses both the cached plan and
  // the recycled scratch buffers must take the exact same recovery
  // decisions as the cold run.
  const Dataset ds = gen_exponential(3000, 2, 117);
  JoinEngine engine;
  PreparedDataset prep = engine.prepare(ds);

  auto overflow_cfg = [](std::size_t vi) {
    SelfJoinConfig cfg = kVariants[vi].make(0.04);
    cfg.batching.buffer_pairs = vi == 5 ? 20'000 : 5000;
    cfg.batching.inject_estimator_skew = 0.2;
    cfg.batching.inject_capacity = vi == 5 ? 5000 : 0;
    cfg.batching.max_overflow_retries = 1'000'000;
    cfg.store_pairs = true;
    return cfg;
  };
  for (const std::size_t vi : {std::size_t{0}, std::size_t{5}}) {
    const SelfJoinConfig cfg = overflow_cfg(vi);
    JoinRun cold = run_once(engine, prep, cfg);
    ASSERT_GE(cold.out.stats.overflow_retries, 1u) << kVariants[vi].name;
    // Recycle the cold run's buffers so the warm run demonstrably
    // executes on reused scratch.
    const std::uint64_t cold_pairs = cold.out.stats.result_pairs;
    const std::uint64_t cold_retries = cold.out.stats.overflow_retries;
    const std::string cold_trace = cold.trace_json;
    auto cold_stats = cold.out.stats;
    engine.recycle(std::move(cold.out));

    JoinRun warm = run_once(engine, prep, cfg);
    EXPECT_EQ(warm.out.stats.result_pairs, cold_pairs);
    EXPECT_EQ(warm.out.stats.overflow_retries, cold_retries);
    EXPECT_EQ(warm.out.stats.wasted.warps_launched,
              cold_stats.wasted.warps_launched);
    EXPECT_EQ(warm.out.stats.wasted.busy_cycles,
              cold_stats.wasted.busy_cycles);
    EXPECT_EQ(warm.out.stats.wasted.aborted_launches,
              cold_stats.wasted.aborted_launches);
    EXPECT_EQ(warm.trace_json, cold_trace) << kVariants[vi].name;
  }
}

TEST(JoinEngineTest, RecycledScratchKeepsResultsIdentical) {
  const Dataset ds = gen_exponential(2500, 2, 77);
  JoinEngine engine;
  PreparedDataset prep = engine.prepare(ds);
  const SelfJoinConfig cfg = variant_config(kVariants[3], 0);  // SORTBYWL

  JoinRun first = run_once(engine, prep, cfg);
  const auto pairs = first.out.results.pairs();
  const std::string trace = first.trace_json;
  engine.recycle(std::move(first.out));

  const JoinRun second = run_once(engine, prep, cfg);
  EXPECT_EQ(second.out.results.pairs(), pairs);
  EXPECT_EQ(second.trace_json, trace);
}

TEST(JoinEngineTest, EngineOwnsPoolsAcrossRuns) {
  JoinEngine engine;
  // The engine-owned pool is created once per thread count and cached
  // for the engine's lifetime — the per-call churn fix.
  ThreadPool* p2 = engine.pool(2);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(engine.pool(2), p2);
  ThreadPool* p3 = engine.pool(3);
  EXPECT_NE(p3, p2);
  EXPECT_EQ(engine.pool(3), p3);

  // Threaded runs through the engine (no external pool supplied) match
  // the sequential answer.
  const Dataset ds = gen_exponential(2000, 2, 91);
  PreparedDataset prep = engine.prepare(ds);
  SelfJoinConfig cfg = variant_config(kVariants[5], 2);
  const SelfJoinOutput par = engine.run(prep, cfg);
  cfg.device.host.num_threads = 0;
  const SelfJoinOutput seq = engine.run(prep, cfg);
  EXPECT_EQ(par.results.pairs(), seq.results.pairs());
  EXPECT_EQ(par.stats.kernel.makespan_cycles,
            seq.stats.kernel.makespan_cycles);
}

TEST(JoinEngineTest, CacheCountersTellTheReuseStory) {
  const Dataset ds = gen_exponential(2000, 2, 13);
  obs::Registry metrics;
  EngineConfig ecfg;
  ecfg.obs.metrics = &metrics;
  JoinEngine engine(ecfg);
  PreparedDataset prep = engine.prepare(ds);

  // Two variants sharing (epsilon, pattern): FULL-pattern WORKQUEUE and
  // SORTBYWL share the grid, the workloads, and the D' order.
  SelfJoinConfig wq = SelfJoinConfig::work_queue_cfg(0.04);
  wq.store_pairs = false;
  engine.recycle(engine.run(prep, wq));
  EXPECT_EQ(metrics.counter("sj.cache.grid.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.workload.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.order.misses").value(), 1u);

  SelfJoinConfig sb = SelfJoinConfig::sort_by_wl(0.04);
  sb.store_pairs = false;
  engine.recycle(engine.run(prep, sb));
  EXPECT_EQ(metrics.counter("sj.cache.grid.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.workload.hits").value(), 1u);

  // A different epsilon shares nothing.
  SelfJoinConfig other = SelfJoinConfig::work_queue_cfg(0.05);
  other.store_pairs = false;
  engine.recycle(engine.run(prep, other));
  EXPECT_EQ(metrics.counter("sj.cache.grid.misses").value(), 2u);
  EXPECT_GE(metrics.counter("sj.cache.misses").value(),
            metrics.counter("sj.cache.grid.misses").value());
}

TEST(JoinEngineTest, EngineTracerSeesPrepareAndReuseSpans) {
  const Dataset ds = gen_exponential(1500, 2, 8);
  obs::Tracer engine_tracer(obs::TimeMode::Logical);
  EngineConfig ecfg;
  ecfg.obs.tracer = &engine_tracer;
  JoinEngine engine(ecfg);
  PreparedDataset prep = engine.prepare(ds);

  SelfJoinConfig cfg = SelfJoinConfig::combined(0.04);
  cfg.store_pairs = false;
  engine.recycle(engine.run(prep, cfg));  // cold: no plan_reuse span
  engine.recycle(engine.run(prep, cfg));  // warm: plan_reuse span
  std::ostringstream os;
  engine_tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"prepare\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_reuse\""), std::string::npos);
}

TEST(JoinEngineTest, RunValidatesLikeTheFreeFunction) {
  const Dataset ds = gen_exponential(500, 2, 3);
  JoinEngine engine;
  PreparedDataset prep = engine.prepare(ds);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.0);  // invalid epsilon
  EXPECT_THROW((void)engine.run(prep, cfg), CheckError);

  const Dataset empty(2);
  PreparedDataset eprep = engine.prepare(empty);
  const SelfJoinConfig ok = SelfJoinConfig::combined(0.04);
  EXPECT_THROW((void)engine.run(eprep, ok), CheckError);
}

}  // namespace
}  // namespace gsj
