// Equivalence suite for deterministic multi-threaded warp execution:
// the parallel host path (device.host.num_threads > 0) must be
// *bit-identical* to the sequential path — result pairs (canonical and
// raw emission order), every KernelStats field, per-batch stats, WEE,
// imbalance diagnostics, and byte-identical logical-time trace JSON —
// for every paper variant and any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "data/generators.hpp"
#include "obs/trace.hpp"
#include "simt/launch.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {
namespace {

int max_threads() {
  return std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
}

struct Variant {
  const char* name;
  SelfJoinConfig (*make)(double);
};

SelfJoinConfig make_full(double eps) {
  return SelfJoinConfig::gpu_calc_global(eps);
}
SelfJoinConfig make_unicomp(double eps) { return SelfJoinConfig::unicomp(eps); }
SelfJoinConfig make_lid(double eps) { return SelfJoinConfig::lid_unicomp(eps); }
SelfJoinConfig make_sortbywl(double eps) {
  return SelfJoinConfig::sort_by_wl(eps);
}
SelfJoinConfig make_workqueue(double eps) {
  return SelfJoinConfig::work_queue_cfg(eps);
}
SelfJoinConfig make_combined(double eps) {
  return SelfJoinConfig::combined(eps);
}

constexpr Variant kVariants[] = {
    {"FULL", &make_full},           {"UNICOMP", &make_unicomp},
    {"LID-UNICOMP", &make_lid},     {"SORTBYWL", &make_sortbywl},
    {"WORKQUEUE", &make_workqueue}, {"COMBINED", &make_combined},
};

/// One run with a logical-time tracer; returns output + trace JSON.
struct JoinRun {
  SelfJoinOutput out;
  std::string trace_json;
};

JoinRun run_variant(const Dataset& ds, const Variant& v, int host_threads) {
  SelfJoinConfig cfg = v.make(0.04);
  // Small buffer forces several batches, exercising pool reuse and the
  // work-queue counter handoff between launches.
  cfg.batching.buffer_pairs = 5000;
  cfg.store_pairs = true;
  cfg.device.host.num_threads = host_threads;
  obs::Tracer tracer(obs::TimeMode::Logical);
  cfg.tracer = &tracer;
  JoinRun r;
  r.out = self_join(ds, cfg);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  r.trace_json = os.str();
  return r;
}

void expect_identical(const JoinRun& seq, const JoinRun& par, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(seq.out.results.pairs(), par.out.results.pairs());
  EXPECT_EQ(seq.out.results.count(), par.out.results.count());

  const auto& a = seq.out.stats;
  const auto& b = par.out.stats;
  EXPECT_EQ(a.kernel.launches, b.kernel.launches);
  EXPECT_EQ(a.kernel.warps_launched, b.kernel.warps_launched);
  EXPECT_EQ(a.kernel.warp_steps, b.kernel.warp_steps);
  EXPECT_EQ(a.kernel.active_lane_steps, b.kernel.active_lane_steps);
  EXPECT_EQ(a.kernel.busy_cycles, b.kernel.busy_cycles);
  EXPECT_EQ(a.kernel.makespan_cycles, b.kernel.makespan_cycles);
  EXPECT_EQ(a.kernel.tail_idle_cycles, b.kernel.tail_idle_cycles);
  EXPECT_EQ(a.kernel.atomics_executed, b.kernel.atomics_executed);
  EXPECT_EQ(a.kernel.results_emitted, b.kernel.results_emitted);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.estimated_total_pairs, b.estimated_total_pairs);
  EXPECT_EQ(a.result_pairs, b.result_pairs);
  EXPECT_EQ(a.max_batch_pairs, b.max_batch_pairs);
  EXPECT_DOUBLE_EQ(a.wee_percent(), b.wee_percent());
  EXPECT_DOUBLE_EQ(a.warp_cycle_cov(), b.warp_cycle_cov());
  EXPECT_DOUBLE_EQ(a.warp_cycle_gini(), b.warp_cycle_gini());
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.batches[i].query_points, b.batches[i].query_points);
    EXPECT_EQ(a.batches[i].result_pairs, b.batches[i].result_pairs);
    EXPECT_EQ(a.batches[i].warps, b.batches[i].warps);
    EXPECT_EQ(a.batches[i].makespan_cycles, b.batches[i].makespan_cycles);
    EXPECT_DOUBLE_EQ(a.batches[i].wee_percent, b.batches[i].wee_percent);
    EXPECT_DOUBLE_EQ(a.batches[i].warp_cycle_cov, b.batches[i].warp_cycle_cov);
  }
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t s = 0; s < a.slots.size(); ++s) {
    EXPECT_EQ(a.slots[s].warps, b.slots[s].warps) << "slot " << s;
    EXPECT_EQ(a.slots[s].busy_cycles, b.slots[s].busy_cycles) << "slot " << s;
    EXPECT_EQ(a.slots[s].tail_idle_cycles, b.slots[s].tail_idle_cycles)
        << "slot " << s;
  }

  // Logical-time traces are a full event-by-event transcript (warp
  // records in observer order, batch events, host spans) — byte
  // equality means the parallel path replayed the exact sequential
  // history.
  EXPECT_EQ(seq.trace_json, par.trace_json);
}

class HostParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HostParallelEquivalence, BitIdenticalToSequential) {
  const auto [variant_idx, threads] = GetParam();
  const Variant& v = kVariants[static_cast<std::size_t>(variant_idx)];
  const Dataset ds = gen_exponential(3000, 2, 117);
  const JoinRun seq = run_variant(ds, v, /*host_threads=*/0);
  const JoinRun par = run_variant(ds, v, threads);
  expect_identical(seq, par, v.name);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, HostParallelEquivalence,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1, 2, max_threads())),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      std::string name = kVariants[static_cast<std::size_t>(
                             std::get<0>(info.param))].name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(HostParallel, OverflowRecoveryBitIdenticalToSequential) {
  // Forced estimator undershoot: the join overflows its buffer, aborts
  // launches mid-flight, rolls back and splits. The parallel path must
  // take the *same* recovery decisions — abort polling sits on the
  // block boundaries both paths share — so results, committed stats,
  // wasted-work accounting and the logical trace all stay bit-identical.
  const Dataset ds = gen_exponential(3000, 2, 117);
  for (std::size_t vi : {std::size_t{0}, std::size_t{5}}) {  // FULL, COMBINED
    const Variant& v = kVariants[vi];
    auto run = [&](int threads) {
      SelfJoinConfig cfg = v.make(0.04);
      cfg.batching.buffer_pairs = vi == 5 ? 20'000 : 5000;
      cfg.batching.inject_estimator_skew = 0.2;
      // The queue planner's hard bound never overflows on its own;
      // shrink its detection capacity (kept above the densest single
      // point) so its recovery path runs too.
      cfg.batching.inject_capacity = vi == 5 ? 5000 : 0;
      cfg.batching.max_overflow_retries = 1'000'000;
      cfg.store_pairs = true;
      cfg.device.host.num_threads = threads;
      obs::Tracer tracer(obs::TimeMode::Logical);
      cfg.tracer = &tracer;
      JoinRun r;
      r.out = self_join(ds, cfg);
      std::ostringstream os;
      tracer.write_chrome_json(os);
      r.trace_json = os.str();
      return r;
    };
    const JoinRun seq = run(0);
    const JoinRun par = run(3);
    ASSERT_GE(seq.out.stats.overflow_retries, 1u) << v.name;
    expect_identical(seq, par, v.name);
    EXPECT_EQ(seq.out.stats.overflow_retries, par.out.stats.overflow_retries);
    EXPECT_EQ(seq.out.stats.wasted.warps_launched,
              par.out.stats.wasted.warps_launched);
    EXPECT_EQ(seq.out.stats.wasted.busy_cycles,
              par.out.stats.wasted.busy_cycles);
    EXPECT_EQ(seq.out.stats.wasted.makespan_cycles,
              par.out.stats.wasted.makespan_cycles);
    EXPECT_EQ(seq.out.stats.wasted.aborted_launches,
              par.out.stats.wasted.aborted_launches);
    EXPECT_EQ(seq.out.stats.wasted.results_emitted,
              par.out.stats.wasted.results_emitted);
  }
}

TEST(HostParallel, ExternalPoolIsReusedAcrossJoins) {
  ThreadPool pool(2);
  const Dataset ds = gen_exponential(2000, 2, 118);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.04);
  cfg.store_pairs = true;
  cfg.device.host.num_threads = 2;
  cfg.device.host.pool = &pool;
  const auto a = self_join(ds, cfg);
  const auto b = self_join(ds, cfg);  // same pool, second run
  cfg.device.host.num_threads = 0;
  cfg.device.host.pool = nullptr;
  const auto c = self_join(ds, cfg);
  EXPECT_EQ(a.results.pairs(), c.results.pairs());
  EXPECT_EQ(b.results.pairs(), c.results.pairs());
  EXPECT_EQ(a.stats.kernel.makespan_cycles, c.stats.kernel.makespan_cycles);
}

TEST(HostParallel, SixDimEarlyExitUnchangedResultsAndCost) {
  // dist2 short-circuit (dims > 2) must change neither the result set
  // nor any modeled cycle count.
  const Dataset ds = gen_exponential(1200, 6, 119);
  SelfJoinConfig cfg = SelfJoinConfig::lid_unicomp(0.8);
  cfg.store_pairs = true;
  const auto seq = self_join(ds, cfg);
  cfg.device.host.num_threads = 3;
  const auto par = self_join(ds, cfg);
  EXPECT_EQ(seq.results.pairs(), par.results.pairs());
  EXPECT_EQ(seq.stats.kernel.busy_cycles, par.stats.kernel.busy_cycles);
  EXPECT_EQ(seq.stats.kernel.makespan_cycles,
            par.stats.kernel.makespan_cycles);
}

// --- launch-level: a sharded toy kernel preserves emission order ---

/// Records (warp, value) emissions; the shard API mirrors
/// SelfJoinKernel's. Lane retires after `steps_for(tid)` steps, making
/// warp costs uneven.
struct EmitKernel {
  struct LaneState {
    std::uint64_t tid = 0;
    std::uint32_t remaining = 0;
  };
  struct Shard {
    std::vector<std::uint64_t> log;
  };

  std::vector<std::uint64_t> log;  // merged emission stream

  simt::InitResult init_lane(LaneState& s, const simt::LaneCtx& ctx,
                             simt::WarpScratch&) {
    s.tid = ctx.global_thread_id;
    s.remaining = static_cast<std::uint32_t>(1 + s.tid % 7);
    return {true, 1};
  }
  simt::StepResult step_into(LaneState& s, std::vector<std::uint64_t>& out) {
    out.push_back(s.tid * 1000 + s.remaining);
    --s.remaining;
    return {s.remaining > 0, 1 + static_cast<std::uint32_t>(s.tid % 3)};
  }
  simt::StepResult step(LaneState& s) { return step_into(s, log); }

  Shard make_shard() const { return {}; }
  simt::StepResult step(LaneState& s, Shard& shard) {
    return step_into(s, shard.log);
  }
  void merge_shard(Shard&& shard) {
    log.insert(log.end(), shard.log.begin(), shard.log.end());
  }
};

static_assert(simt::ParallelHostKernel<EmitKernel>);

TEST(HostParallel, LaunchShardMergePreservesEmissionStream) {
  simt::DeviceConfig dev;
  dev.num_sms = 2;
  const std::uint64_t nthreads = 32 * 300;

  EmitKernel seq_k;
  const auto seq_stats = simt::launch(dev, nthreads, seq_k);

  for (const int threads : {1, 3}) {
    dev.host.num_threads = threads;
    EmitKernel par_k;
    const auto par_stats = simt::launch(dev, nthreads, par_k);
    EXPECT_EQ(seq_k.log, par_k.log) << "threads=" << threads;
    EXPECT_EQ(seq_stats.busy_cycles, par_stats.busy_cycles);
    EXPECT_EQ(seq_stats.makespan_cycles, par_stats.makespan_cycles);
    EXPECT_EQ(seq_stats.warp_steps, par_stats.warp_steps);
    EXPECT_EQ(seq_stats.active_lane_steps, par_stats.active_lane_steps);
    EXPECT_EQ(seq_stats.tail_idle_cycles, par_stats.tail_idle_cycles);
  }
}

TEST(HostParallel, AbortedLaunchStopsAtBlockBoundaryBitIdentically) {
  // The abort hook is polled at multiples of detail::kWarpBlock on both
  // paths; a condition on merged side effects must stop them after the
  // exact same set of executed warps.
  simt::DeviceConfig dev;
  dev.num_sms = 2;
  const std::uint64_t num_warps = simt::detail::kWarpBlock * 2 + 500;
  const std::uint64_t nthreads = 32 * num_warps;

  auto run = [&](int threads) {
    dev.host.num_threads = threads;
    EmitKernel k;
    const auto stats = simt::launch(
        dev, nthreads, k, {}, [&k] { return !k.log.empty(); });
    return std::pair{std::move(k.log), stats};
  };
  const auto [seq_log, seq_stats] = run(0);
  EXPECT_EQ(seq_stats.aborted_launches, 1u);
  EXPECT_EQ(seq_stats.warps_launched, simt::detail::kWarpBlock);

  for (const int threads : {1, 3}) {
    const auto [par_log, par_stats] = run(threads);
    EXPECT_EQ(par_log, seq_log) << "threads=" << threads;
    EXPECT_EQ(par_stats.aborted_launches, seq_stats.aborted_launches);
    EXPECT_EQ(par_stats.warps_launched, seq_stats.warps_launched);
    EXPECT_EQ(par_stats.busy_cycles, seq_stats.busy_cycles);
    EXPECT_EQ(par_stats.makespan_cycles, seq_stats.makespan_cycles);
    EXPECT_EQ(par_stats.warp_steps, seq_stats.warp_steps);
    EXPECT_EQ(par_stats.tail_idle_cycles, seq_stats.tail_idle_cycles);
  }
}

TEST(HostParallel, UnsetAbortHookChangesNothing) {
  simt::DeviceConfig dev;
  dev.num_sms = 2;
  const std::uint64_t nthreads = 32 * (simt::detail::kWarpBlock + 100);
  EmitKernel plain, hooked;
  const auto a = simt::launch(dev, nthreads, plain);
  const auto b =
      simt::launch(dev, nthreads, hooked, {}, [] { return false; });
  EXPECT_EQ(plain.log, hooked.log);
  EXPECT_EQ(a.warps_launched, b.warps_launched);
  EXPECT_EQ(a.busy_cycles, b.busy_cycles);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(b.aborted_launches, 0u);
}

TEST(HostParallel, ObserverFiresInDispatchOrderUnderThreads) {
  simt::DeviceConfig dev;
  dev.num_sms = 2;
  const std::uint64_t nthreads = 32 * 200;

  auto collect = [&](int threads) {
    dev.host.num_threads = threads;
    EmitKernel k;
    std::vector<simt::WarpRecord> recs;
    simt::launch(dev, nthreads, k,
                 [&recs](const simt::WarpRecord& r) { recs.push_back(r); });
    return recs;
  };
  const auto seq = collect(0);
  const auto par = collect(3);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].warp_id, par[i].warp_id) << i;
    EXPECT_EQ(seq[i].dispatch_seq, par[i].dispatch_seq) << i;
    EXPECT_EQ(seq[i].start_cycle, par[i].start_cycle) << i;
    EXPECT_EQ(seq[i].cycles, par[i].cycles) << i;
    EXPECT_EQ(seq[i].slot, par[i].slot) << i;
    EXPECT_EQ(par[i].dispatch_seq, i);  // observer order == dispatch order
  }
}

TEST(HostParallel, ParallelStableSortMatchesStdStableSort) {
  ThreadPool pool(4);
  // Heavily tied keys — exactly where stability is observable.
  std::vector<std::pair<int, int>> v;
  v.reserve(100000);
  std::uint64_t x = 42;
  for (int i = 0; i < 100000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    v.emplace_back(static_cast<int>(x >> 60), i);
  }
  auto expected = v;
  const auto by_key = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::stable_sort(expected.begin(), expected.end(), by_key);
  parallel_stable_sort(v, by_key, &pool, /*min_parallel=*/1);
  EXPECT_EQ(v, expected);
}

}  // namespace
}  // namespace gsj
