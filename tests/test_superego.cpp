// Unit/property tests: SUPER-EGO CPU baseline — exactness against brute
// force across distributions/dims/thread counts, pruning effectiveness,
// config validation.
#include <gtest/gtest.h>

#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/generators.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"
#include "superego/super_ego.hpp"

namespace gsj {
namespace {

using EgoCase = std::tuple<std::string, int, std::size_t>;

class SuperEgoExactness : public ::testing::TestWithParam<EgoCase> {};

TEST_P(SuperEgoExactness, MatchesBruteForce) {
  const auto& [dist, dims, nthreads] = GetParam();
  const Dataset ds = dist == "expo"
                         ? gen_exponential(700, dims, 31 + dims)
                         : gen_uniform(700, dims, 31 + dims, 0.0, 10.0);
  const double eps = dist == "expo" ? 0.01 * dims : 0.4 * dims;
  SuperEgoConfig cfg;
  cfg.epsilon = eps;
  cfg.nthreads = nthreads;
  cfg.store_pairs = true;
  cfg.base_case = 16;
  cfg.parallel_grain = 100;
  const SuperEgoOutput out = super_ego_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, eps);
  ASSERT_EQ(out.results.count(), truth.count());
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuperEgoExactness,
    ::testing::Combine(::testing::Values("unif", "expo"),
                       ::testing::Values(2, 3, 6),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "D_t" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SuperEgo, DimensionReorderingPreservesResult) {
  // Anisotropic data: one long dimension, one short.
  Dataset ds(2);
  Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) {
    ds.push_back({{rng.uniform(0.0, 100.0), rng.uniform(0.0, 1.0)}});
  }
  for (const bool reorder : {false, true}) {
    SuperEgoConfig cfg;
    cfg.epsilon = 0.5;
    cfg.reorder_dims = reorder;
    cfg.store_pairs = true;
    const auto out = super_ego_join(ds, cfg);
    const ResultSet truth = brute_force_join(ds, 0.5);
    EXPECT_EQ(out.results.pairs(), truth.pairs()) << "reorder=" << reorder;
  }
}

TEST(SuperEgo, PruningCutsDistanceCalcs) {
  const Dataset ds = gen_uniform(4000, 2, 55, 0.0, 100.0);
  SuperEgoConfig cfg;
  cfg.epsilon = 1.0;
  cfg.base_case = 16;
  cfg.parallel_grain = 1024;
  const auto out = super_ego_join(ds, cfg);
  // Without pruning: n^2 = 16e6 evaluations. EGO must cut >90%.
  EXPECT_LT(out.stats.distance_calcs, 1'600'000u);
  EXPECT_GT(out.stats.pruned_pairs, 0u);
}

TEST(SuperEgo, CountOnlyModeMatches) {
  const Dataset ds = gen_exponential(900, 2, 56);
  SuperEgoConfig cfg;
  cfg.epsilon = 0.02;
  cfg.store_pairs = false;
  const auto counted = super_ego_join(ds, cfg);
  cfg.store_pairs = true;
  const auto stored = super_ego_join(ds, cfg);
  EXPECT_EQ(counted.results.count(), stored.results.count());
  EXPECT_EQ(counted.stats.result_pairs, stored.stats.result_pairs);
}

TEST(SuperEgo, SingletonDataset) {
  Dataset ds(3);
  ds.push_back({{1.0, 2.0, 3.0}});
  SuperEgoConfig cfg;
  cfg.epsilon = 1.0;
  cfg.store_pairs = true;
  const auto out = super_ego_join(ds, cfg);
  ASSERT_EQ(out.results.count(), 1u);  // just the self pair
  EXPECT_EQ(out.results.pairs()[0], (ResultPair{0, 0}));
}

TEST(SuperEgo, DuplicatePointsAllPaired) {
  Dataset ds(2);
  for (int i = 0; i < 5; ++i) ds.push_back({{1.0, 1.0}});
  SuperEgoConfig cfg;
  cfg.epsilon = 0.1;
  cfg.store_pairs = true;
  const auto out = super_ego_join(ds, cfg);
  EXPECT_EQ(out.results.count(), 25u);  // complete 5x5 block
}

TEST(SuperEgo, ValidatesConfig) {
  const Dataset ds = gen_uniform(10, 2, 1);
  SuperEgoConfig cfg;
  cfg.epsilon = 0.0;
  EXPECT_THROW(super_ego_join(ds, cfg), CheckError);
  cfg.epsilon = 1.0;
  cfg.base_case = 128;
  cfg.parallel_grain = 64;  // grain < base_case
  EXPECT_THROW(super_ego_join(ds, cfg), CheckError);
  const Dataset empty(2);
  SuperEgoConfig ok;
  EXPECT_THROW(super_ego_join(empty, ok), CheckError);
}

TEST(SuperEgo, AgreesWithGpuJoinCount) {
  // Cross-system integration: CPU baseline and simulated GPU join agree.
  const Dataset ds = gen_sw_like(3000, true, 58);
  const double eps = 2.0;
  SuperEgoConfig ecfg;
  ecfg.epsilon = eps;
  const auto ego = super_ego_join(ds, ecfg);
  const auto gpu = self_join(ds, SelfJoinConfig::combined(eps));
  EXPECT_EQ(ego.results.count(), gpu.results.count());
}

}  // namespace
}  // namespace gsj
