// Observability layer: metrics registry (histogram percentiles vs a
// sorted-vector oracle, shard merging), JSON writer/parser round-trip,
// Chrome trace export round-trip, imbalance diagnostics, and the
// byte-identical-trace determinism guarantee.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "data/generators.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sj/selfjoin.hpp"
#include "superego/super_ego.hpp"

namespace gsj {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, LabeledRendering) {
  EXPECT_EQ(obs::labeled("sj.warps", {}), "sj.warps");
  EXPECT_EQ(obs::labeled("sj.warps", {{"batch", "3"}}), "sj.warps{batch=3}");
  EXPECT_EQ(obs::labeled("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
}

TEST(Metrics, CounterAndGauge) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("c"), &c);  // stable identity

  obs::Gauge& g = reg.gauge("g");
  EXPECT_FALSE(g.is_set());
  g.set(2.5);
  EXPECT_TRUE(g.is_set());
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

/// Exact nearest-rank percentile on a sorted copy — the oracle both
/// histogram flavours are checked against.
std::uint64_t oracle_percentile(std::vector<std::uint64_t> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

TEST(Metrics, CycleHistogramPercentileVsOracle) {
  // Log-normal-ish workload: the shape warp cycle distributions take.
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> xs;
  obs::CycleHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const double u = static_cast<double>(rng.uniform_index(1000000)) / 1e6;
    const auto v =
        static_cast<std::uint64_t>(std::exp(4.0 + 8.0 * u));  // 55..e12
    xs.push_back(v);
    h.record(v);
  }
  EXPECT_EQ(h.total(), xs.size());
  EXPECT_EQ(h.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(h.max(), *std::max_element(xs.begin(), xs.end()));

  for (const double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                         99.9, 100.0}) {
    const auto exact = static_cast<double>(oracle_percentile(xs, q));
    const auto approx = static_cast<double>(h.percentile(q));
    // The bucket upper bound can only over-report, and by at most the
    // documented relative quantization error.
    EXPECT_GE(approx * (1.0 + 1e-12), exact) << "q=" << q;
    EXPECT_LE(approx, exact * (1.0 + obs::CycleHistogram::kMaxRelativeError))
        << "q=" << q;
  }
}

TEST(Metrics, CycleHistogramExactBelowSubBucketRange) {
  obs::CycleHistogram h;
  for (std::uint64_t v = 0; v < 2 * obs::CycleHistogram::kSubBuckets; ++v) {
    h.record(v);
  }
  // Small values land in exact unit buckets: percentiles are exact.
  EXPECT_EQ(h.percentile(50.0), 31u);
  EXPECT_EQ(h.percentile(100.0), 63u);
}

TEST(Metrics, FixedHistogramPercentileVsOracle) {
  obs::FixedHistogram h(0.0, 100.0, 1000);  // bucket width 0.1
  std::vector<std::uint64_t> xs;
  Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_index(100);
    xs.push_back(v);
    h.observe(static_cast<double>(v));
  }
  for (const double q : {10.0, 50.0, 90.0, 99.0}) {
    const auto exact = static_cast<double>(oracle_percentile(xs, q));
    // Linear interpolation within a 0.1-wide bucket: within one bucket.
    EXPECT_NEAR(h.percentile(q), exact, 0.1 + 1e-9) << "q=" << q;
  }
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Metrics, RegistryMergeAccumulatesShards) {
  obs::Registry a, b, merged;
  a.counter("tasks").add(3);
  b.counter("tasks").add(4);
  b.counter("only_b").add(1);
  a.gauge("wee").set(95.0);
  a.cycle_histogram("cycles").record(100);
  b.cycle_histogram("cycles").record(200);
  a.histogram("pct", 0.0, 100.0, 10).observe(50.0);
  b.histogram("pct", 0.0, 100.0, 10).observe(60.0);

  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.counter("tasks").value(), 7u);
  EXPECT_EQ(merged.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauge("wee").value(), 95.0);
  EXPECT_EQ(merged.cycle_histogram("cycles").total(), 2u);
  EXPECT_EQ(merged.cycle_histogram("cycles").max(), 200u);
  EXPECT_EQ(merged.histogram("pct", 0.0, 100.0, 10).total(), 2u);
}

// ------------------------------------------------- metric-name hygiene

TEST(Metrics, MetricNameValidation) {
  // Valid: dot-path bases, optional labels, colon (OpenMetrics allows it).
  EXPECT_TRUE(obs::is_valid_metric_name("sj.warps"));
  EXPECT_TRUE(obs::is_valid_metric_name("svc.queue_wait_seconds"));
  EXPECT_TRUE(obs::is_valid_metric_name("_private"));
  EXPECT_TRUE(obs::is_valid_metric_name("ns:role"));
  EXPECT_TRUE(obs::is_valid_metric_name("sj.warps{batch=3}"));
  EXPECT_TRUE(obs::is_valid_metric_name("x{a=1,b=two}"));

  // Invalid: bad leading char, charset violations, malformed labels.
  EXPECT_FALSE(obs::is_valid_metric_name(""));
  EXPECT_FALSE(obs::is_valid_metric_name("9lives"));
  EXPECT_FALSE(obs::is_valid_metric_name("has space"));
  EXPECT_FALSE(obs::is_valid_metric_name("dash-ed"));
  EXPECT_FALSE(obs::is_valid_metric_name("x{unclosed=1"));
  EXPECT_FALSE(obs::is_valid_metric_name("x{9key=1}"));
  EXPECT_FALSE(obs::is_valid_metric_name("x{k=va\"lue}"));
}

TEST(Metrics, SanitizeMetricName) {
  // Identity on valid names; idempotent on everything.
  EXPECT_EQ(obs::sanitize_metric_name("sj.warps"), "sj.warps");
  EXPECT_EQ(obs::sanitize_metric_name("sj.warps{batch=3}"),
            "sj.warps{batch=3}");
  const std::string fixed = obs::sanitize_metric_name("bad name-9");
  EXPECT_TRUE(obs::is_valid_metric_name(fixed));
  EXPECT_EQ(fixed, "bad_name_9");
  EXPECT_EQ(obs::sanitize_metric_name(fixed), fixed);
  EXPECT_TRUE(obs::is_valid_metric_name(obs::sanitize_metric_name("9lives")));
}

TEST(Metrics, RegistrationNormalizesNames) {
#ifdef NDEBUG
  // Release: charset violations are sanitized at registration, so the
  // raw and sanitized spellings name the same instrument.
  obs::Registry reg;
  obs::Counter& c = reg.counter("bad name");
  c.add(7);
  EXPECT_EQ(&reg.counter("bad_name"), &c);
  EXPECT_EQ(reg.counter("bad_name").value(), 7u);
#else
  // Debug: violations are hard errors at the registration site.
  obs::Registry reg;
  EXPECT_THROW((void)reg.counter("bad name"), CheckError);
#endif
}

// --------------------------------------------------------- TimeHistogram

TEST(Metrics, TimeHistogramSecondsApi) {
  obs::TimeHistogram h;
  EXPECT_EQ(h.total(), 0u);
  for (const double s : {0.001, 0.002, 0.004, 0.008, 1.0}) h.observe(s);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_NEAR(h.min_seconds(), 0.001, 0.001 * obs::TimeHistogram::kMaxRelativeError);
  EXPECT_NEAR(h.max_seconds(), 1.0, 1.0 * obs::TimeHistogram::kMaxRelativeError);
  EXPECT_NEAR(h.sum_seconds(), 1.015, 1.015 * obs::TimeHistogram::kMaxRelativeError);
  // Quantiles honour the underlying HDR sketch's relative-error bound.
  const double p50 = h.percentile_seconds(50.0);
  EXPECT_GE(p50, 0.004 * (1.0 - obs::TimeHistogram::kMaxRelativeError));
  EXPECT_LE(p50, 0.004 * (1.0 + obs::TimeHistogram::kMaxRelativeError));
  // Non-positive durations clamp to zero instead of wrapping.
  h.observe(-1.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.min_seconds(), 0.0);
}

TEST(Metrics, TimeHistogramRegistryMerge) {
  obs::Registry a, b, merged;
  a.time_histogram("svc.service_seconds").observe(0.5);
  b.time_histogram("svc.service_seconds").observe(1.5);
  merged.merge_from(a);
  merged.merge_from(b);
  obs::TimeHistogram& m = merged.time_histogram("svc.service_seconds");
  EXPECT_EQ(m.total(), 2u);
  EXPECT_NEAR(m.sum_seconds(), 2.0, 2.0 * obs::TimeHistogram::kMaxRelativeError);
}

// ----------------------------------------------------------- openmetrics

TEST(Metrics, OpenMetricsGolden) {
  // Small fixed registry -> exact, byte-for-byte exposition. Map order
  // sorts families; dots mangle to underscores; counters gain _total.
  obs::Registry reg;
  reg.counter("svc.completed").add(3);
  reg.counter(obs::labeled("sj.cache.hits", {{"artifact", "grid"}})).add(2);
  reg.gauge("svc.queue_depth").set(2.5);
  std::ostringstream os;
  reg.write_openmetrics(os);
  EXPECT_EQ(os.str(),
            "# TYPE sj_cache_hits counter\n"
            "sj_cache_hits_total{artifact=\"grid\"} 2\n"
            "# TYPE svc_completed counter\n"
            "svc_completed_total 3\n"
            "# TYPE svc_queue_depth gauge\n"
            "svc_queue_depth 2.5\n"
            "# EOF\n");
}

TEST(Metrics, OpenMetricsResultCacheFamilyGolden) {
  // The result-serving layer's instrument family exactly as the
  // service emits it: five counters plus the byte gauge, name-sorted
  // within each kind (counters first, then gauges).
  obs::Registry reg;
  reg.counter("svc.result_cache.hits").add(4);
  reg.counter("svc.result_cache.misses").add(2);
  reg.counter("svc.result_cache.coalesced").add(3);
  reg.counter("svc.result_cache.subsumed").add(1);
  reg.counter("svc.result_cache.evictions").add(5);
  reg.counter("svc.result_cache.invalidations").add(1);
  reg.gauge("svc.result_cache.bytes").set(65536.0);
  std::ostringstream os;
  reg.write_openmetrics(os);
  EXPECT_EQ(os.str(),
            "# TYPE svc_result_cache_coalesced counter\n"
            "svc_result_cache_coalesced_total 3\n"
            "# TYPE svc_result_cache_evictions counter\n"
            "svc_result_cache_evictions_total 5\n"
            "# TYPE svc_result_cache_hits counter\n"
            "svc_result_cache_hits_total 4\n"
            "# TYPE svc_result_cache_invalidations counter\n"
            "svc_result_cache_invalidations_total 1\n"
            "# TYPE svc_result_cache_misses counter\n"
            "svc_result_cache_misses_total 2\n"
            "# TYPE svc_result_cache_subsumed counter\n"
            "svc_result_cache_subsumed_total 1\n"
            "# TYPE svc_result_cache_bytes gauge\n"
            "svc_result_cache_bytes 65536\n"
            "# EOF\n");
}

/// Minimal conformant OpenMetrics text-format scraper: validates line
/// grammar, family grouping (all samples of a family contiguous, TYPE
/// first), metric-name charset, histogram bucket monotonicity and the
/// mandatory `# EOF` terminator. Fills `families` with family->type
/// (void return: ASSERT_* requires it).
void scrape_openmetrics(const std::string& text,
                        std::map<std::string, std::string>& families) {
  std::istringstream in(text);
  std::string line, current_family, current_type;
  bool saw_eof = false;
  std::uint64_t last_bucket_cum = 0;
  bool in_buckets = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(saw_eof) << "content after # EOF: " << line;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string family, type;
      ls >> family >> type;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram" || type == "summary")
          << line;
      ASSERT_EQ(families.count(family), 0u)
          << "family declared twice: " << family;
      families[family] = type;
      current_family = family;
      current_type = type;
      in_buckets = false;
      continue;
    }
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    // Sample line: name[{labels}] value
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable value: " << line;

    std::string labels;
    const std::size_t brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series = series.substr(0, brace);
    }
    // Metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*
    ASSERT_FALSE(series.empty());
    for (std::size_t i = 0; i < series.size(); ++i) {
      const char ch = series[i];
      const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      ch == '_' || ch == ':' ||
                      (i > 0 && ch >= '0' && ch <= '9');
      ASSERT_TRUE(ok) << "bad metric name char in: " << line;
    }
    // Label values must be quoted.
    if (!labels.empty()) {
      ASSERT_NE(labels.find('"'), std::string::npos) << line;
    }
    // Samples must belong to the declared family (contiguous grouping).
    ASSERT_FALSE(current_family.empty()) << "sample before # TYPE: " << line;
    ASSERT_EQ(series.rfind(current_family, 0), 0u)
        << "sample " << series << " outside family " << current_family;
    const std::string suffix = series.substr(current_family.size());
    if (current_type == "counter") {
      ASSERT_EQ(suffix, "_total") << line;
    } else if (current_type == "gauge") {
      ASSERT_EQ(suffix, "") << line;
    } else if (current_type == "histogram") {
      ASSERT_TRUE(suffix == "_bucket" || suffix == "_sum" ||
                  suffix == "_count")
          << line;
      if (suffix == "_bucket") {
        ASSERT_NE(labels.find("le=\""), std::string::npos) << line;
        const auto cum = static_cast<std::uint64_t>(std::stod(value));
        if (in_buckets) {
          ASSERT_GE(cum, last_bucket_cum) << line;
        }
        last_bucket_cum = cum;
        in_buckets = true;
      } else {
        in_buckets = false;
      }
    } else {  // summary
      ASSERT_TRUE(suffix == "" || suffix == "_sum" || suffix == "_count")
          << line;
      if (suffix.empty()) {
        ASSERT_NE(labels.find("quantile=\""), std::string::npos) << line;
      }
    }
  }
  ASSERT_TRUE(saw_eof) << "missing # EOF terminator";
}

TEST(Metrics, OpenMetricsScraperConformance) {
  obs::Registry reg;
  reg.counter("svc.submitted").add(10);
  reg.counter(obs::labeled("svc.completed", {{"status", "ok"}})).add(9);
  reg.gauge("svc.queue_depth").set(1.0);
  obs::FixedHistogram& fh = reg.histogram("sj.wee_percent", 0.0, 100.0, 4);
  fh.observe(12.0);
  fh.observe(70.0);
  fh.observe(250.0);  // overflow
  obs::CycleHistogram& ch = reg.cycle_histogram("sj.warp_cycles");
  ch.record(100);
  ch.record(100000);
  reg.time_histogram("svc.service_seconds").observe(0.25);

  std::ostringstream os;
  reg.write_openmetrics(os);
  std::map<std::string, std::string> families;
  ASSERT_NO_FATAL_FAILURE(scrape_openmetrics(os.str(), families));
  EXPECT_EQ(families.at("svc_submitted"), "counter");
  EXPECT_EQ(families.at("svc_completed"), "counter");
  EXPECT_EQ(families.at("svc_queue_depth"), "gauge");
  EXPECT_EQ(families.at("sj_wee_percent"), "histogram");
  EXPECT_EQ(families.at("sj_warp_cycles"), "summary");
  EXPECT_EQ(families.at("svc_service_seconds"), "summary");

  // Deterministic ordering: two exports of the same state are
  // byte-identical.
  std::ostringstream os2;
  reg.write_openmetrics(os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(Metrics, RegistryJsonExportParses) {
  obs::Registry reg;
  reg.counter("a.count").add(5);
  reg.gauge("a.gauge").set(1.25);
  reg.cycle_histogram("a.cycles").record(1000);
  std::ostringstream os;
  reg.write_json(os);

  const json::JsonValue doc = json::json_parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const json::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const json::JsonValue* c = counters->find("a.count");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->as_number(), 5.0);
  const json::JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::JsonValue* h = hists->find("a.cycles");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("p99"), nullptr);
}

// ------------------------------------------------------------------ json

TEST(Json, WriterParserRoundTrip) {
  std::ostringstream os;
  json::JsonWriter w(os);
  w.begin_object();
  w.key("s").value("he\"llo\n");
  w.key("i").value(std::int64_t{-42});
  w.key("u").value(std::uint64_t{18446744073709551615ull});
  w.key("d").value(0.1);
  w.key("b").value(true);
  w.key("n").null();
  w.key("arr").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested").begin_object().key("x").value(1.5).end_object();
  w.end_object();

  const json::JsonValue doc = json::json_parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("s")->as_string(), "he\"llo\n");
  EXPECT_DOUBLE_EQ(doc.find("i")->as_number(), -42.0);
  EXPECT_DOUBLE_EQ(doc.find("d")->as_number(), 0.1);
  EXPECT_TRUE(doc.find("b")->as_bool());
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_EQ(doc.find("arr")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("nested")->find("x")->as_number(), 1.5);
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_THROW((void)json::json_parse("{"), CheckError);
  EXPECT_THROW((void)json::json_parse("[1,]"), CheckError);
  EXPECT_THROW((void)json::json_parse("{} trailing"), CheckError);
  EXPECT_THROW((void)json::json_parse("\"unterminated"), CheckError);
}

// ----------------------------------------------------------- diagnostics

TEST(Diagnostics, KnownValues) {
  // Perfectly even: zero dispersion.
  const std::vector<std::uint64_t> even{10, 10, 10, 10};
  const obs::WarpImbalance e = obs::analyze_warp_cycles(even);
  EXPECT_DOUBLE_EQ(e.cov, 0.0);
  EXPECT_DOUBLE_EQ(e.gini, 0.0);
  EXPECT_EQ(e.p50_cycles, 10u);

  // One straggler among zeros: maximal concentration. With n values and
  // all mass on one, Gini = (n-1)/n.
  const std::vector<std::uint64_t> skew{0, 0, 0, 100};
  const obs::WarpImbalance s = obs::analyze_warp_cycles(skew);
  EXPECT_NEAR(s.gini, 0.75, 1e-12);
  EXPECT_NEAR(s.cov, std::sqrt(3.0), 1e-12);  // stddev/mean of {0,0,0,100}
  EXPECT_EQ(s.max_cycles, 100u);
}

TEST(Diagnostics, SlotStatsFromEvents) {
  // Two slots, two batches. Batch 0: slot 0 busy [0,10), slot 1 busy
  // [0,4) -> batch makespan 10, slot 1 idles 6. Batch 1 (offset 10):
  // only slot 1 runs [10,15) -> slot 0 idles 5.
  std::vector<obs::WarpEvent> evs(3);
  evs[0] = {.warp_id = 0, .start_cycle = 0, .cycles = 10, .slot = 0, .batch = 0};
  evs[1] = {.warp_id = 1, .start_cycle = 0, .cycles = 4, .slot = 1, .batch = 0};
  evs[2] = {.warp_id = 2, .start_cycle = 10, .cycles = 5, .slot = 1, .batch = 1};
  const auto slots = obs::slot_stats_from_events(evs, 2);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].warps, 1u);
  EXPECT_EQ(slots[0].busy_cycles, 10u);
  EXPECT_EQ(slots[0].tail_idle_cycles, 5u);
  EXPECT_EQ(slots[1].warps, 2u);
  EXPECT_EQ(slots[1].busy_cycles, 9u);
  EXPECT_EQ(slots[1].tail_idle_cycles, 6u);
}

// ----------------------------------------------------------------- trace

TEST(Trace, SpanRecordsOnDestruction) {
  obs::Tracer t(obs::TimeMode::Logical);
  {
    auto sp = t.span("phase_a");
    auto inner = t.span("phase_b");
  }
  EXPECT_EQ(t.host_span_count(), 2u);
  const auto spans = t.host_spans();
  // Inner finishes first (destruction order).
  EXPECT_EQ(spans[0].name, "phase_b");
  EXPECT_EQ(spans[1].name, "phase_a");
  EXPECT_EQ(spans[1].tid, 0);  // main thread
}

TEST(Trace, NullTracerSpanIsInert) {
  auto sp = obs::span(nullptr, "nothing");
  sp.finish();  // must not crash
}

/// Runs a traced self-join on a small skewed dataset; shared by the
/// round-trip, acceptance and determinism tests.
SelfJoinOutput traced_join(obs::Tracer& tracer, obs::Registry* metrics,
                           bool work_queue) {
  const Dataset ds = gen_exponential(4000, 2, /*seed=*/3);
  SelfJoinConfig cfg = work_queue ? SelfJoinConfig::combined(0.5)
                                  : SelfJoinConfig::sort_by_wl(0.5);
  cfg.device.num_sms = 4;
  // Small buffer to force several batches.
  cfg.batching.buffer_pairs = 400'000;
  cfg.tracer = &tracer;
  cfg.metrics = metrics;
  return self_join(ds, cfg);
}

TEST(Trace, SelfJoinEmitsSpansAndDeviceEvents) {
  for (const bool wq : {false, true}) {
    obs::Tracer tracer;
    obs::Registry metrics;
    const SelfJoinOutput out = traced_join(tracer, &metrics, wq);

    // One batch event per planned batch, each with >= 1 warp.
    ASSERT_GT(out.stats.num_batches, 1u) << "wq=" << wq;
    EXPECT_EQ(tracer.batch_event_count(), out.stats.num_batches);
    for (const auto& b : tracer.batch_events()) EXPECT_GE(b.warps, 1u);

    // Every launched warp produced an event (acceptance bar: >= 95%).
    EXPECT_EQ(tracer.warp_event_count(), out.stats.kernel.warps_launched);

    // The pipeline phases appear as host spans.
    const auto spans = tracer.host_spans();
    auto has = [&spans](const char* name) {
      return std::any_of(spans.begin(), spans.end(),
                         [name](const obs::HostSpan& s) {
                           return s.name == name;
                         });
    };
    EXPECT_TRUE(has("self_join"));
    EXPECT_TRUE(has("grid_build"));
    EXPECT_TRUE(has("batch_plan"));
    EXPECT_TRUE(has("estimation_sample"));
    if (wq) {
      EXPECT_TRUE(has("workload_quantify"));
      EXPECT_TRUE(has("sortbywl_sort"));
    }

    // Diagnostics populated on SelfJoinStats.
    EXPECT_EQ(out.stats.warp_imbalance.warps, out.stats.kernel.warps_launched);
    EXPECT_GT(out.stats.warp_cycle_cov(), 0.0);
    ASSERT_EQ(out.stats.slots.size(),
              static_cast<std::size_t>(4 * 8));  // num_sms * resident
    std::uint64_t slot_warps = 0;
    for (const auto& s : out.stats.slots) slot_warps += s.warps;
    EXPECT_EQ(slot_warps, out.stats.kernel.warps_launched);

    // Metrics registry saw the same totals.
    EXPECT_EQ(metrics.counter("sj.warps_launched").value(),
              out.stats.kernel.warps_launched);
    EXPECT_EQ(metrics.counter("sj.result_pairs").value(),
              out.stats.result_pairs);
    EXPECT_EQ(metrics.cycle_histogram("sj.warp_cycles").total(),
              out.stats.kernel.warps_launched);
  }
}

TEST(Trace, ChromeJsonRoundTrip) {
  obs::Tracer tracer;
  const SelfJoinOutput out = traced_join(tracer, nullptr, true);

  std::ostringstream os;
  tracer.write_chrome_json(os);
  const json::JsonValue doc = json::json_parse(os.str());

  ASSERT_TRUE(doc.is_object());
  const json::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t batch_spans = 0, warp_spans = 0, host_spans = 0, metas = 0;
  for (const json::JsonValue& ev : events->as_array()) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.find("ph")->as_string();
    if (ph == "M") {
      ++metas;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("dur"), nullptr);
    const double pid = ev.find("pid")->as_number();
    const std::string& name = ev.find("name")->as_string();
    if (pid == 0.0) {
      ++host_spans;
    } else if (name.rfind("batch ", 0) == 0) {
      ++batch_spans;
    } else {
      ASSERT_EQ(name.rfind("warp ", 0), 0u);
      ++warp_spans;
    }
  }
  EXPECT_EQ(batch_spans, out.stats.num_batches);
  EXPECT_EQ(warp_spans, out.stats.kernel.warps_launched);
  EXPECT_EQ(host_spans, tracer.host_span_count());
  EXPECT_GT(metas, 4u);  // process/thread names incl. slot rows
}

TEST(Trace, ChromeJsonEscapesSpanNames) {
  // Span names flow verbatim into the exported JSON strings; every
  // JSON-significant byte must round-trip through a strict parser.
  const std::vector<std::string> names = {
      "quote \" inside",
      "back\\slash",
      "new\nline and\ttab",
      std::string("ctrl\x01\x1f bytes"),
      "unicode \xc3\xa9 passthrough",
  };
  obs::Tracer tracer(obs::TimeMode::Logical);
  for (const auto& n : names) tracer.span(n).finish();

  std::ostringstream os;
  tracer.write_chrome_json(os);
  const json::JsonValue doc = json::json_parse(os.str());
  const json::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::string> parsed;
  for (const json::JsonValue& ev : events->as_array()) {
    if (ev.find("ph")->as_string() != "X") continue;
    parsed.push_back(ev.find("name")->as_string());
  }
  ASSERT_EQ(parsed.size(), names.size());
  for (const auto& n : names) {
    EXPECT_NE(std::find(parsed.begin(), parsed.end(), n), parsed.end())
        << "name lost in export: " << n;
  }
}

TEST(Trace, LogicalModeTracesAreByteIdentical) {
  // The trace is a pure function of the execution in Logical mode
  // (device events are model cycles, host timestamps are sequence
  // ticks). Metrics are excluded: gauges like sj.host_prep_seconds
  // deliberately record wall time.
  std::string first, second;
  for (std::string* s : {&first, &second}) {
    obs::Tracer tracer(obs::TimeMode::Logical);
    (void)traced_join(tracer, nullptr, true);
    std::ostringstream trace_os;
    tracer.write_chrome_json(trace_os);
    *s = trace_os.str();
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical, not just equivalent
}

// -------------------------------------------------------------- superego

TEST(Trace, SuperEgoWorkerShardsMerge) {
  const Dataset ds = gen_uniform(20000, 2, /*seed=*/5);
  obs::Tracer tracer;
  obs::Registry metrics;
  SuperEgoConfig cfg;
  cfg.epsilon = 1.0;
  cfg.nthreads = 4;
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  const SuperEgoOutput out = super_ego_join(ds, cfg);

  // Phase spans from the main thread plus per-task spans from workers.
  const auto spans = tracer.host_spans();
  bool saw_sort = false, saw_join = false, saw_worker_tid = false;
  for (const auto& s : spans) {
    saw_sort |= s.name == "ego_sort";
    saw_join |= s.name == "ego_join";
    saw_worker_tid |= s.name == "ego_task" && s.tid >= 1;
  }
  EXPECT_TRUE(saw_sort);
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_worker_tid);  // worker attribution via current_worker()

  // Shard merge: totals match the stats the join itself reports.
  EXPECT_EQ(metrics.counter("ego.distance_calcs").value(),
            out.stats.distance_calcs);
  EXPECT_EQ(metrics.counter("ego.result_pairs").value(),
            out.stats.result_pairs);
  EXPECT_GT(metrics.counter("ego.tasks").value(), 1u);
  EXPECT_EQ(metrics.cycle_histogram("ego.task_distance_calcs").total(),
            metrics.counter("ego.tasks").value());
}

}  // namespace
}  // namespace gsj
