// Unit tests: epsilon grid index — cell assignment, linear id
// encode/decode, non-empty-cell lookup, adjacency enumeration, point
// ranks.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "data/generators.hpp"
#include "grid/grid_index.hpp"

namespace gsj {
namespace {

Dataset grid_2d_fixture() {
  // 6 points with epsilon 1. The grid origin is the data min corner
  // (0.5, 0.4), so cell coords below are relative to that corner.
  Dataset ds(2);
  ds.push_back({{0.5, 0.5}});   // cell (0,0)
  ds.push_back({{0.6, 0.4}});   // cell (0,0)
  ds.push_back({{1.5, 0.5}});   // cell (1,0)
  ds.push_back({{0.5, 1.5}});   // cell (0,1)
  ds.push_back({{2.5, 2.5}});   // cell (2,2)
  ds.push_back({{2.7, 2.7}});   // cell (2,2)
  return ds;
}

TEST(GridIndex, NonEmptyCellsOnly) {
  const Dataset ds = grid_2d_fixture();
  const GridIndex g(ds, 1.0);
  EXPECT_EQ(g.cells().size(), 4u);  // (0,0), (1,0), (0,1), (2,2)
  // Space complexity O(|D|): every point appears exactly once.
  EXPECT_EQ(g.point_ids().size(), ds.size());
  std::set<PointId> seen(g.point_ids().begin(), g.point_ids().end());
  EXPECT_EQ(seen.size(), ds.size());
}

TEST(GridIndex, CellsSortedByLinearId) {
  const Dataset ds = grid_2d_fixture();
  const GridIndex g(ds, 1.0);
  for (std::size_t i = 1; i < g.cells().size(); ++i) {
    EXPECT_LT(g.cells()[i - 1].linear_id, g.cells()[i].linear_id);
  }
}

TEST(GridIndex, EncodeDecodeRoundTrip) {
  const Dataset ds = gen_uniform(2000, 4, 3);
  const GridIndex g(ds, 7.0);
  for (const auto& cell : g.cells()) {
    const CellCoords cc = g.decode(cell.linear_id);
    EXPECT_EQ(g.encode(cc), cell.linear_id);
    EXPECT_TRUE(g.in_bounds(cc));
  }
}

TEST(GridIndex, FindCellHitsAndMisses) {
  const Dataset ds = grid_2d_fixture();
  const GridIndex g(ds, 1.0);
  for (std::size_t i = 0; i < g.cells().size(); ++i) {
    EXPECT_EQ(g.find_cell(g.cells()[i].linear_id), i);
  }
  // Cell (1,1) is empty.
  CellCoords empty;
  empty[0] = 1;
  empty[1] = 1;
  EXPECT_EQ(g.find_cell(g.encode(empty)), GridIndex::npos);
}

TEST(GridIndex, PointCellAndRankConsistent) {
  const Dataset ds = gen_exponential(3000, 3, 17);
  const GridIndex g(ds, 0.05);
  for (PointId p = 0; p < ds.size(); ++p) {
    const std::size_t ci = g.cell_of_point(p);
    const auto& cell = g.cells()[ci];
    const std::uint32_t rank = g.grid_rank(p);
    ASSERT_GE(rank, cell.begin);
    ASSERT_LT(rank, cell.end);
    EXPECT_EQ(g.point_ids()[rank], p);
  }
}

TEST(GridIndex, CellPointsBelongToCell) {
  const Dataset ds = gen_uniform(2000, 2, 5);
  const GridIndex g(ds, 10.0);
  for (std::size_t ci = 0; ci < g.cells().size(); ++ci) {
    const CellCoords cc = g.decode(g.cells()[ci].linear_id);
    for (const PointId p : g.cell_points(ci)) {
      const CellCoords pc = g.coords_of_point(p);
      for (int d = 0; d < g.dims(); ++d) EXPECT_EQ(pc[d], cc[d]);
    }
  }
}

TEST(GridIndex, AdjacencyFindsAllNeighbors) {
  const Dataset ds = grid_2d_fixture();
  const GridIndex g(ds, 1.0);
  // Around cell (0,0): non-empty adjacent cells are (1,0) and (0,1);
  // with origin included, also (0,0) itself. (1,1) is empty.
  const std::size_t origin = g.find_cell(0);
  ASSERT_NE(origin, GridIndex::npos);
  std::set<std::uint64_t> ids;
  g.for_each_adjacent(origin, /*include_origin=*/true,
                      [&](std::size_t, const CellCoords&, std::uint64_t id) {
                        ids.insert(id);
                      });
  EXPECT_EQ(ids.size(), 3u);
  std::set<std::uint64_t> without;
  g.for_each_adjacent(origin, /*include_origin=*/false,
                      [&](std::size_t, const CellCoords&, std::uint64_t id) {
                        without.insert(id);
                      });
  EXPECT_EQ(without.size(), 2u);
  EXPECT_FALSE(without.contains(0));
}

TEST(GridIndex, AdjacencyRespectsBounds) {
  // A corner cell must only report in-bounds neighbors; verified by the
  // enumeration not throwing and all coords being valid.
  const Dataset ds = gen_uniform(500, 3, 10);
  const GridIndex g(ds, 25.0);
  for (std::size_t ci = 0; ci < g.cells().size(); ++ci) {
    g.for_each_adjacent(ci, true,
                        [&](std::size_t, const CellCoords& cc, std::uint64_t) {
                          EXPECT_TRUE(g.in_bounds(cc));
                        });
  }
}

TEST(GridIndex, AdjacencyVolumeIsPow3) {
  const Dataset ds2 = gen_uniform(100, 2, 1);
  EXPECT_EQ(GridIndex(ds2, 10.0).adjacency_volume(), 9u);
  const Dataset ds6 = gen_uniform(100, 6, 1);
  EXPECT_EQ(GridIndex(ds6, 10.0).adjacency_volume(), 729u);
}

TEST(GridIndex, RejectsBadArguments) {
  const Dataset ds = gen_uniform(10, 2, 1);
  EXPECT_THROW(GridIndex(ds, 0.0), CheckError);
  EXPECT_THROW(GridIndex(ds, -1.0), CheckError);
  const Dataset empty(2);
  EXPECT_THROW(GridIndex(empty, 1.0), CheckError);
}

TEST(GridIndex, TinyEpsilonOverflowGuard) {
  const Dataset ds = gen_uniform(100, 6, 2);
  EXPECT_THROW(GridIndex(ds, 1e-9), CheckError);
}

TEST(GridIndex, BoundaryPointFoldsIntoLastCell) {
  Dataset ds(1);
  ds.push_back({{0.0}});
  ds.push_back({{10.0}});  // exactly max
  const GridIndex g(ds, 2.5);
  // extent 10 / 2.5 = 4 -> 5 cells; max point goes to cell 4.
  EXPECT_EQ(g.cells_per_dim(0), 5);
  EXPECT_EQ(g.coords_of_point(1)[0], 4);
}

}  // namespace
}  // namespace gsj
