// Edge-case tests across the stack: degenerate datasets, boundary
// epsilon semantics, extreme configurations, tiny devices.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "data/generators.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"
#include "superego/super_ego.hpp"

namespace gsj {
namespace {

TEST(EdgeCases, SinglePointDataset) {
  Dataset ds(4);
  ds.push_back({{1.0, 2.0, 3.0, 4.0}});
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(1.0);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  ASSERT_EQ(out.results.count(), 1u);
  EXPECT_EQ(out.results.pairs()[0], (ResultPair{0, 0}));
}

TEST(EdgeCases, AllPointsIdentical) {
  Dataset ds(2, 100);  // 100 zero points
  for (auto mk : {&SelfJoinConfig::gpu_calc_global, &SelfJoinConfig::unicomp,
                  &SelfJoinConfig::lid_unicomp, &SelfJoinConfig::combined}) {
    SelfJoinConfig cfg = mk(0.5);
    cfg.store_pairs = true;
    const auto out = self_join(ds, cfg);
    EXPECT_EQ(out.results.count(), 100u * 100u) << cfg.name();
  }
}

TEST(EdgeCases, EpsilonLargerThanDomainIsFullCross) {
  const Dataset ds = gen_uniform(200, 3, 31, 0.0, 1.0);
  // sqrt(3) covers the whole unit cube.
  SelfJoinConfig cfg = SelfJoinConfig::combined(2.0);
  const auto out = self_join(ds, cfg);
  EXPECT_EQ(out.results.count(), 200u * 200u);
}

TEST(EdgeCases, PairsAtExactlyEpsilonIncluded) {
  // dist(p, q) <= eps is inclusive (paper's problem statement).
  Dataset ds(1);
  ds.push_back({{0.0}});
  ds.push_back({{1.0}});
  for (auto mk : {&SelfJoinConfig::gpu_calc_global, &SelfJoinConfig::unicomp,
                  &SelfJoinConfig::lid_unicomp}) {
    SelfJoinConfig cfg = mk(1.0);
    cfg.store_pairs = true;
    const auto out = self_join(ds, cfg);
    EXPECT_EQ(out.results.count(), 4u) << cfg.name();
  }
  SuperEgoConfig ecfg;
  ecfg.epsilon = 1.0;
  EXPECT_EQ(super_ego_join(ds, ecfg).stats.result_pairs, 4u);
}

TEST(EdgeCases, PairsJustBeyondEpsilonExcluded) {
  Dataset ds(1);
  ds.push_back({{0.0}});
  ds.push_back({{1.0 + 1e-9}});
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(1.0);
  const auto out = self_join(ds, cfg);
  EXPECT_EQ(out.results.count(), 2u);  // only the two self pairs
}

TEST(EdgeCases, OneDimensionalData) {
  const Dataset ds = gen_uniform(500, 1, 32, 0.0, 50.0);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.5);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 0.5);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(EdgeCases, EightDimensionalData) {
  const Dataset ds = gen_uniform(300, 8, 33, 0.0, 5.0);
  SelfJoinConfig cfg = SelfJoinConfig::lid_unicomp(2.0);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 2.0);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(EdgeCases, NegativeCoordinates) {
  const Dataset ds = gen_uniform(400, 2, 34, -50.0, -10.0);
  SelfJoinConfig cfg = SelfJoinConfig::combined(2.0);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 2.0);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(EdgeCases, TinyDeviceOneSlot) {
  const Dataset ds = gen_uniform(500, 2, 35, 0.0, 10.0);
  SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(0.5, 2);
  cfg.device.num_sms = 1;
  cfg.device.resident_warps_per_sm = 1;
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 0.5);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(EdgeCases, KEqualsWarpSize) {
  const Dataset ds = gen_exponential(600, 2, 36);
  SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(0.02, 32);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 0.02);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(EdgeCases, BatchingDisabledSingleLaunch) {
  const Dataset ds = gen_exponential(2000, 2, 37);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.batching.enabled = false;
  const auto out = self_join(ds, cfg);
  EXPECT_EQ(out.stats.num_batches, 1u);
  EXPECT_EQ(out.stats.kernel.launches, 1u);
}

TEST(EdgeCases, ResultsInvariantToDispatchWindow) {
  const Dataset ds = gen_exponential(1500, 2, 38);
  std::uint64_t base_count = 0;
  for (const int window : {1, 16, 100000}) {
    SelfJoinConfig cfg = SelfJoinConfig::combined(0.03);
    cfg.device.dispatch_window = window;
    const auto out = self_join(ds, cfg);
    if (base_count == 0) {
      base_count = out.results.count();
    } else {
      EXPECT_EQ(out.results.count(), base_count) << "window " << window;
    }
  }
}

TEST(EdgeCases, ResultsInvariantToSchedulerSeed) {
  const Dataset ds = gen_exponential(1500, 2, 39);
  SelfJoinConfig a = SelfJoinConfig::work_queue_cfg(0.03, 4);
  SelfJoinConfig b = a;
  b.device.scheduler_seed = 0xabcdef;
  a.store_pairs = b.store_pairs = true;
  const auto ra = self_join(ds, a);
  const auto rb = self_join(ds, b);
  EXPECT_EQ(ra.results.pairs(), rb.results.pairs());
}

TEST(EdgeCases, ClusteredPlusOutlierData) {
  // A far outlier must not break grid bounds or patterns.
  Dataset ds = gen_uniform(300, 2, 40, 0.0, 1.0);
  ds.push_back({{5000.0, 5000.0}});
  SelfJoinConfig cfg = SelfJoinConfig::lid_unicomp(0.1);
  cfg.store_pairs = true;
  const auto out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 0.1);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(EdgeCases, SuperEgoTinyGrainAndBase) {
  const Dataset ds = gen_uniform(300, 2, 41, 0.0, 10.0);
  SuperEgoConfig cfg;
  cfg.epsilon = 1.0;
  cfg.base_case = 1;
  cfg.parallel_grain = 1;
  cfg.store_pairs = true;
  const auto out = super_ego_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, 1.0);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(EdgeCases, StatsSelfPairEmissionCostsNothingExtra) {
  // Self pairs are emitted without a distance calculation; the count of
  // emitted results still matches exactly.
  Dataset ds(2, 50);  // all identical
  SelfJoinConfig cfg = SelfJoinConfig::unicomp(1.0);
  const auto out = self_join(ds, cfg);
  EXPECT_EQ(out.stats.kernel.results_emitted, 2500u);
}

}  // namespace
}  // namespace gsj
