// Unit/property tests: SIMT warp simulator — lockstep semantics, warp
// execution efficiency accounting, greedy slot scheduling, dispatch
// windows, atomic counter ordering.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "simt/counter.hpp"
#include "simt/launch.hpp"

namespace gsj::simt {
namespace {

/// Test kernel: lane tid performs work[tid] unit-cost steps.
struct FixedWorkKernel {
  std::vector<std::uint32_t> work;

  struct LaneState {
    std::uint32_t remaining = 0;
  };

  InitResult init_lane(LaneState& s, const LaneCtx& ctx, WarpScratch&) {
    s.remaining = work[ctx.global_thread_id];
    return {s.remaining > 0, 0};
  }
  StepResult step(LaneState& s) {
    --s.remaining;
    return {s.remaining > 0, 1};
  }
};

DeviceConfig tiny_device() {
  DeviceConfig d;
  d.num_sms = 2;
  d.resident_warps_per_sm = 2;
  d.dispatch_window = 1;
  d.cost_warp_launch = 0;
  return d;
}

TEST(Launch, UniformWorkHasPerfectWee) {
  FixedWorkKernel k{std::vector<std::uint32_t>(64, 10)};
  const KernelStats st = launch(tiny_device(), 64, k);
  EXPECT_EQ(st.warps_launched, 2u);
  EXPECT_DOUBLE_EQ(st.warp_execution_efficiency(32), 1.0);
  EXPECT_EQ(st.warp_steps, 20u);           // 10 per warp
  EXPECT_EQ(st.active_lane_steps, 640u);   // 64 lanes x 10
}

TEST(Launch, DivergentWorkLowersWee) {
  // One heavy lane per warp: warp runs 32 steps, 31 lanes do 1 step.
  std::vector<std::uint32_t> work(32, 1);
  work[0] = 32;
  FixedWorkKernel k{work};
  const KernelStats st = launch(tiny_device(), 32, k);
  EXPECT_EQ(st.warp_steps, 32u);
  EXPECT_EQ(st.active_lane_steps, 32u + 31u);
  EXPECT_NEAR(st.warp_execution_efficiency(32), 63.0 / (32.0 * 32.0), 1e-12);
}

TEST(Launch, MakespanIsMaxOverSlots) {
  // 4 slots, 4 warps of cost 10 -> makespan 10; 5th warp queues -> 20.
  FixedWorkKernel k4{std::vector<std::uint32_t>(4 * 32, 10)};
  EXPECT_EQ(launch(tiny_device(), 4 * 32, k4).makespan_cycles, 10u);
  FixedWorkKernel k5{std::vector<std::uint32_t>(5 * 32, 10)};
  const KernelStats st = launch(tiny_device(), 5 * 32, k5);
  EXPECT_EQ(st.makespan_cycles, 20u);
  EXPECT_EQ(st.tail_idle_cycles, 3u * 10u);  // three slots idle at the tail
}

TEST(Launch, LptOrderBeatsWorstOrderMakespan) {
  // Classic list-scheduling property the WORKQUEUE exploits: launching
  // the heavy warps first gives a smaller makespan.
  std::vector<std::uint32_t> heavy_first, heavy_last;
  for (int w = 0; w < 16; ++w) {
    const std::uint32_t cost = w < 2 ? 100 : 10;  // two heavy warps
    for (int l = 0; l < 32; ++l) heavy_first.push_back(cost);
  }
  for (int w = 0; w < 16; ++w) {
    const std::uint32_t cost = w >= 14 ? 100 : 10;
    for (int l = 0; l < 32; ++l) heavy_last.push_back(cost);
  }
  FixedWorkKernel kf{heavy_first}, kl{heavy_last};
  const auto mf = launch(tiny_device(), 16 * 32, kf).makespan_cycles;
  const auto ml = launch(tiny_device(), 16 * 32, kl).makespan_cycles;
  EXPECT_LT(mf, ml);
}

TEST(Launch, DispatchWindowOneIsLaunchOrder) {
  std::vector<std::uint64_t> order;
  FixedWorkKernel k{std::vector<std::uint32_t>(8 * 32, 5)};
  DeviceConfig d = tiny_device();
  (void)launch(d, 8 * 32, k, [&](const WarpRecord& r) {
    order.push_back(r.warp_id);
  });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Launch, WideDispatchWindowReordersDeterministically) {
  DeviceConfig d = tiny_device();
  d.dispatch_window = 8;
  FixedWorkKernel k{std::vector<std::uint32_t>(32 * 32, 5)};
  std::vector<std::uint64_t> order1, order2;
  (void)launch(d, 32 * 32, k,
               [&](const WarpRecord& r) { order1.push_back(r.warp_id); });
  (void)launch(d, 32 * 32, k,
               [&](const WarpRecord& r) { order2.push_back(r.warp_id); });
  EXPECT_EQ(order1, order2);  // same seed, same order
  bool out_of_order = false;
  for (std::size_t i = 1; i < order1.size(); ++i) {
    if (order1[i] < order1[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
  // Window bound: a warp cannot be overtaken by more than window-1.
  std::vector<std::uint64_t> seq_of_warp(order1.size());
  for (std::size_t seq = 0; seq < order1.size(); ++seq) {
    seq_of_warp[order1[seq]] = seq;
  }
  for (std::size_t w = 0; w < seq_of_warp.size(); ++w) {
    EXPECT_LE(w, seq_of_warp[w] + static_cast<std::size_t>(d.dispatch_window) - 1);
  }
}

TEST(Launch, ZeroThreadsIsEmptyStats) {
  FixedWorkKernel k{{}};
  const KernelStats st = launch(tiny_device(), 0, k);
  EXPECT_EQ(st.warps_launched, 0u);
  EXPECT_EQ(st.makespan_cycles, 0u);
  EXPECT_DOUBLE_EQ(st.warp_execution_efficiency(32), 0.0);
}

TEST(Launch, PartialLastWarpMasksTailLanes) {
  FixedWorkKernel k{std::vector<std::uint32_t>(40, 4)};  // 1.25 warps
  const KernelStats st = launch(tiny_device(), 40, k);
  EXPECT_EQ(st.warps_launched, 2u);
  // Second warp: 8 active lanes over 4 steps.
  EXPECT_EQ(st.active_lane_steps, 40u * 4u);
  EXPECT_EQ(st.warp_steps, 8u);
  EXPECT_LT(st.warp_execution_efficiency(32), 1.0);
}

TEST(Launch, BusyCyclesEqualSumOfWarpCycles) {
  std::vector<std::uint32_t> work(96);
  for (std::size_t i = 0; i < work.size(); ++i) {
    work[i] = static_cast<std::uint32_t>(1 + i % 7);
  }
  FixedWorkKernel k{work};
  std::uint64_t sum = 0;
  const KernelStats st = launch(tiny_device(), 96, k, [&](const WarpRecord& r) {
    sum += r.cycles;
  });
  EXPECT_EQ(st.busy_cycles, sum);
}

TEST(Launch, ObserverRecordsAreCoherent) {
  FixedWorkKernel k{std::vector<std::uint32_t>(12 * 32, 7)};
  DeviceConfig d = tiny_device();
  std::vector<WarpRecord> recs;
  const KernelStats st =
      launch(d, 12 * 32, k, [&](const WarpRecord& r) { recs.push_back(r); });
  ASSERT_EQ(recs.size(), 12u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].dispatch_seq, i);  // observer called in dispatch order
    EXPECT_EQ(recs[i].steps, 7u);
    EXPECT_EQ(recs[i].active_lane_steps, 7u * 32);
    EXPECT_EQ(recs[i].cycles, 7u);  // unit costs, zero launch overhead
  }
  // 4 slots, 12 warps of 7 cycles -> 3 waves.
  EXPECT_EQ(st.makespan_cycles, 21u);
}

TEST(Launch, TailIdlePlusBusyEqualsSlotCycles) {
  std::vector<std::uint32_t> work;
  for (int w = 0; w < 9; ++w) {
    for (int l = 0; l < 32; ++l) {
      work.push_back(static_cast<std::uint32_t>(3 + 5 * w));
    }
  }
  FixedWorkKernel k{work};
  const DeviceConfig d = tiny_device();
  const KernelStats st = launch(d, 9 * 32, k);
  // Every slot is busy until its last warp retires; the remainder up to
  // the makespan is tail idle (backfill gaps are impossible with greedy
  // earliest-free dispatch and no gaps between consecutive warps).
  EXPECT_EQ(st.busy_cycles + st.tail_idle_cycles,
            st.makespan_cycles * static_cast<std::uint64_t>(d.total_slots()));
}

TEST(KernelStats, MergeAccumulates) {
  KernelStats a, b;
  a.launches = a.warps_launched = 1;
  a.warp_steps = 10;
  a.active_lane_steps = 100;
  a.makespan_cycles = 50;
  b = a;
  a.merge(b);
  EXPECT_EQ(a.launches, 2u);
  EXPECT_EQ(a.warp_steps, 20u);
  EXPECT_EQ(a.makespan_cycles, 100u);
}

TEST(KernelStats, SecondsUsesClockAndIssueContention) {
  DeviceConfig d;
  d.clock_ghz = 2.0;
  d.resident_warps_per_sm = 1;
  d.issue_width = 1;
  KernelStats s;
  s.makespan_cycles = 2'000'000'000;
  EXPECT_DOUBLE_EQ(s.seconds(d), 1.0);
  // 8 resident warps sharing one issue slot run 8x slower each.
  d.resident_warps_per_sm = 8;
  EXPECT_DOUBLE_EQ(s.seconds(d), 8.0);
  d.issue_width = 2;
  EXPECT_DOUBLE_EQ(s.seconds(d), 4.0);
}

TEST(DeviceCounter, FetchAddSequence) {
  DeviceCounter c;
  EXPECT_EQ(c.fetch_add(1), 0u);
  EXPECT_EQ(c.fetch_add(3), 1u);
  EXPECT_EQ(c.fetch_add(1), 4u);
  c.reset(100);
  EXPECT_EQ(c.fetch_add(1), 100u);
}

TEST(Launch, RejectsBadConfig) {
  FixedWorkKernel k{{}};
  DeviceConfig d = tiny_device();
  d.warp_size = 0;
  EXPECT_THROW(launch(d, 1, k), CheckError);
  d = tiny_device();
  d.dispatch_window = 0;
  EXPECT_THROW(launch(d, 1, k), CheckError);
}

}  // namespace
}  // namespace gsj::simt
