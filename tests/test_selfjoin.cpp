// Integration/property tests: the simulated GPU self-join.
//
// The central property: EVERY kernel variant (pattern x assignment x
// sorting x k x batching) returns exactly the brute-force ordered pair
// set. Plus behavioural properties the paper claims: WEE ordering,
// batching safety, work-queue consumption order.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>

#include "common/check.hpp"
#include "data/generators.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {
namespace {

Dataset make_test_data(const std::string& dist, std::size_t n, int dims,
                       std::uint64_t seed) {
  return dist == "expo" ? gen_exponential(n, dims, seed)
                        : gen_uniform(n, dims, seed, 0.0, 10.0);
}

double test_epsilon(const std::string& dist, int dims) {
  // Chosen so points have a handful of neighbors on average.
  return dist == "expo" ? 0.01 * dims : 0.4 * dims;
}

void expect_equals_brute_force(const Dataset& ds, SelfJoinConfig cfg) {
  cfg.store_pairs = true;
  const SelfJoinOutput out = self_join(ds, cfg);
  const ResultSet truth = brute_force_join(ds, cfg.epsilon);
  ASSERT_EQ(out.results.count(), truth.count()) << cfg.name();
  EXPECT_EQ(out.results.pairs(), truth.pairs()) << cfg.name();
}

// ---------------------------------------------------------------------------
// Exactness sweep: all variants x distributions x dims.

using VariantCase = std::tuple<std::string, std::string, int>;

class SelfJoinExactness : public ::testing::TestWithParam<VariantCase> {};

SelfJoinConfig config_by_name(const std::string& variant, double eps) {
  if (variant == "gpucalcglobal") return SelfJoinConfig::gpu_calc_global(eps);
  if (variant == "unicomp") return SelfJoinConfig::unicomp(eps);
  if (variant == "lidunicomp") return SelfJoinConfig::lid_unicomp(eps);
  if (variant == "sortbywl") return SelfJoinConfig::sort_by_wl(eps);
  if (variant == "workqueue") return SelfJoinConfig::work_queue_cfg(eps);
  if (variant == "k8") {
    auto c = SelfJoinConfig::gpu_calc_global(eps);
    c.k = 8;
    return c;
  }
  if (variant == "unicomp_k4") {
    auto c = SelfJoinConfig::unicomp(eps);
    c.k = 4;
    return c;
  }
  if (variant == "wq_lid_k8") return SelfJoinConfig::combined(eps);
  if (variant == "wq_unicomp_k2") {
    return SelfJoinConfig::work_queue_cfg(eps, 2, CellPattern::Unicomp);
  }
  GSJ_CHECK_MSG(false, "unknown variant " << variant);
  return {};
}

TEST_P(SelfJoinExactness, MatchesBruteForce) {
  const auto& [variant, dist, dims] = GetParam();
  const Dataset ds = make_test_data(dist, 600, dims, 42 + dims);
  expect_equals_brute_force(
      ds, config_by_name(variant, test_epsilon(dist, dims)));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SelfJoinExactness,
    ::testing::Combine(
        ::testing::Values("gpucalcglobal", "unicomp", "lidunicomp",
                          "sortbywl", "workqueue", "k8", "unicomp_k4",
                          "wq_lid_k8", "wq_unicomp_k2"),
        ::testing::Values("unif", "expo"), ::testing::Values(2, 3, 6)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param)) + "D";
    });

// ---------------------------------------------------------------------------
// Batched exactness: force multiple batches and verify the union.

TEST(SelfJoinBatched, StridedMultiBatchExact) {
  const Dataset ds = gen_uniform(1500, 2, 7, 0.0, 10.0);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(1.0);
  cfg.batching.buffer_pairs = 5'000;  // forces several batches
  cfg.store_pairs = true;
  const SelfJoinOutput out = self_join(ds, cfg);
  EXPECT_GT(out.stats.num_batches, 1u);
  const ResultSet truth = brute_force_join(ds, 1.0);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(SelfJoinBatched, WorkQueueMultiBatchExact) {
  const Dataset ds = gen_exponential(1500, 2, 8);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.02);
  cfg.batching.buffer_pairs = 5'000;
  cfg.store_pairs = true;
  const SelfJoinOutput out = self_join(ds, cfg);
  EXPECT_GT(out.stats.num_batches, 1u);
  const ResultSet truth = brute_force_join(ds, 0.02);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

TEST(SelfJoinBatched, NoBufferOverflow) {
  for (const bool wq : {false, true}) {
    const Dataset ds = gen_exponential(3000, 2, 9);
    SelfJoinConfig cfg = wq ? SelfJoinConfig::work_queue_cfg(0.03)
                            : SelfJoinConfig::gpu_calc_global(0.03);
    cfg.batching.buffer_pairs = 20'000;
    const SelfJoinOutput out = self_join(ds, cfg);
    EXPECT_FALSE(out.stats.buffer_overflowed) << "wq=" << wq;
    EXPECT_LE(out.stats.max_batch_pairs, cfg.batching.buffer_pairs);
  }
}

// ---------------------------------------------------------------------------
// Behavioural properties.

TEST(SelfJoinBehaviour, CountOnlyMatchesStoredCount) {
  const Dataset ds = gen_uniform(800, 3, 10, 0.0, 10.0);
  SelfJoinConfig cfg = SelfJoinConfig::lid_unicomp(1.0);
  cfg.store_pairs = false;
  const auto counted = self_join(ds, cfg);
  cfg.store_pairs = true;
  const auto stored = self_join(ds, cfg);
  EXPECT_EQ(counted.results.count(), stored.results.count());
  EXPECT_TRUE(counted.results.pairs().empty());
}

TEST(SelfJoinBehaviour, UnidirectionalPatternsHalveLaneWork) {
  const Dataset ds = gen_uniform(4000, 2, 11, 0.0, 10.0);
  const auto full = self_join(ds, SelfJoinConfig::gpu_calc_global(0.8));
  const auto lid = self_join(ds, SelfJoinConfig::lid_unicomp(0.8));
  // Same result, roughly half the lane-steps (distance calcs).
  EXPECT_EQ(full.results.count(), lid.results.count());
  EXPECT_LT(static_cast<double>(lid.stats.kernel.active_lane_steps),
            0.7 * static_cast<double>(full.stats.kernel.active_lane_steps));
}

TEST(SelfJoinBehaviour, WorkQueueRaisesWeeOnSkewedData) {
  const Dataset ds = gen_exponential(20000, 2, 12);
  const auto base = self_join(ds, SelfJoinConfig::gpu_calc_global(0.02));
  const auto wq = self_join(ds, SelfJoinConfig::work_queue_cfg(0.02, 8));
  EXPECT_GT(wq.stats.wee_percent(), base.stats.wee_percent());
  EXPECT_LT(wq.stats.kernel_seconds, base.stats.kernel_seconds);
}

TEST(SelfJoinBehaviour, GranularityRaisesWeeOnSkewedData) {
  const Dataset ds = gen_exponential(20000, 2, 13);
  auto cfg1 = SelfJoinConfig::gpu_calc_global(0.02);
  auto cfg8 = cfg1;
  cfg8.k = 8;
  const auto k1 = self_join(ds, cfg1);
  const auto k8 = self_join(ds, cfg8);
  EXPECT_GT(k8.stats.wee_percent(), k1.stats.wee_percent());
}

TEST(SelfJoinBehaviour, WorkQueueUsesAtomicsOncePerGroup) {
  const Dataset ds = gen_uniform(1000, 2, 14, 0.0, 10.0);
  SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(0.5, 4);
  const auto out = self_join(ds, cfg);
  // One fetch_add per cooperative group == one per query point.
  EXPECT_EQ(out.stats.kernel.atomics_executed, ds.size());
}

TEST(SelfJoinBehaviour, SelfPairsAlwaysPresent) {
  const Dataset ds = gen_uniform(300, 2, 15, 0.0, 10.0);
  using Maker = SelfJoinConfig (*)(double);
  for (Maker mk : {Maker{&SelfJoinConfig::gpu_calc_global},
                   Maker{&SelfJoinConfig::unicomp},
                   Maker{&SelfJoinConfig::lid_unicomp}}) {
    SelfJoinConfig cfg = mk(0.3);
    cfg.store_pairs = true;
    const auto out = self_join(ds, cfg);
    std::size_t selfpairs = 0;
    for (const auto& [a, b] : out.results.pairs()) selfpairs += a == b;
    EXPECT_EQ(selfpairs, ds.size());
  }
}

TEST(SelfJoinBehaviour, StatsAreCoherent) {
  const Dataset ds = gen_uniform(2000, 3, 16, 0.0, 10.0);
  const auto out = self_join(ds, SelfJoinConfig::gpu_calc_global(0.7));
  EXPECT_EQ(out.stats.result_pairs, out.results.count());
  EXPECT_EQ(out.stats.kernel.results_emitted, out.results.count());
  EXPECT_GT(out.stats.kernel_seconds, 0.0);
  EXPECT_GE(out.stats.total_seconds, out.stats.kernel_seconds);
  EXPECT_GT(out.stats.wee_percent(), 0.0);
  EXPECT_LE(out.stats.wee_percent(), 100.0);
  EXPECT_EQ(out.stats.kernel.launches, out.stats.num_batches);
}

TEST(SelfJoinConfigT, ValidatesArguments) {
  const Dataset ds = gen_uniform(100, 2, 17);
  EXPECT_THROW(self_join(ds, SelfJoinConfig::gpu_calc_global(0.0)),
               CheckError);
  SelfJoinConfig bad_k = SelfJoinConfig::gpu_calc_global(1.0);
  bad_k.k = 5;  // does not divide 32
  EXPECT_THROW(self_join(ds, bad_k), CheckError);
  const Dataset empty(2);
  EXPECT_THROW(self_join(empty, SelfJoinConfig::gpu_calc_global(1.0)),
               CheckError);
}

TEST(SelfJoinConfigT, NamesAreDescriptive) {
  EXPECT_EQ(SelfJoinConfig::gpu_calc_global(1).name(), "GPUCALCGLOBAL");
  EXPECT_EQ(SelfJoinConfig::unicomp(1).name(), "GPUCALCGLOBAL+UNICOMP");
  EXPECT_EQ(SelfJoinConfig::sort_by_wl(1).name(), "SORTBYWL");
  EXPECT_EQ(SelfJoinConfig::combined(1).name(), "WORKQUEUE+LID-UNICOMP+k8");
}

TEST(Reference, ParallelGridJoinAgrees) {
  const Dataset ds = gen_exponential(900, 2, 20);
  const double eps = 0.03;
  const GridIndex g(ds, eps);
  const ResultSet bf = brute_force_join(ds, eps);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ResultSet pj = cpu_grid_join_parallel(g, threads, true);
    EXPECT_EQ(bf.pairs(), pj.pairs()) << "threads=" << threads;
    const ResultSet counted = cpu_grid_join_parallel(g, threads, false);
    EXPECT_EQ(counted.count(), bf.count());
  }
}

TEST(SelfJoinBehaviour, PerBatchStatsAreCoherent) {
  const Dataset ds = gen_exponential(3000, 2, 21);
  SelfJoinConfig cfg = SelfJoinConfig::work_queue_cfg(0.03, 4);
  cfg.batching.buffer_pairs = 30'000;
  const auto out = self_join(ds, cfg);
  ASSERT_EQ(out.stats.batches.size(), out.stats.num_batches);
  std::uint64_t points = 0, pairs = 0;
  for (const auto& b : out.stats.batches) {
    points += b.query_points;
    pairs += b.result_pairs;
    EXPECT_GE(b.kernel_seconds, 0.0);
    EXPECT_GE(b.wee_percent, 0.0);
    EXPECT_LE(b.wee_percent, 100.0);
  }
  EXPECT_EQ(points, ds.size());
  EXPECT_EQ(pairs, out.stats.result_pairs);
}

TEST(Reference, BruteForceAndGridJoinAgree) {
  const Dataset ds = gen_exponential(700, 3, 18);
  const double eps = 0.05;
  const GridIndex g(ds, eps);
  const ResultSet bf = brute_force_join(ds, eps);
  ResultSet gj = cpu_grid_join(g, true);
  EXPECT_EQ(bf.pairs(), gj.pairs());
}

TEST(Reference, NeighborCountsMatchBruteForce) {
  const Dataset ds = gen_uniform(400, 2, 19, 0.0, 10.0);
  const double eps = 0.8;
  const GridIndex g(ds, eps);
  std::vector<PointId> all(ds.size());
  std::iota(all.begin(), all.end(), PointId{0});
  const auto counts = neighbor_counts(g, all);
  const ResultSet bf = brute_force_join(ds, eps);
  std::vector<std::uint64_t> truth(ds.size(), 0);
  for (const auto& [a, b] : bf.pairs()) truth[a]++;
  for (PointId p = 0; p < ds.size(); ++p) EXPECT_EQ(counts[p], truth[p]);
}

}  // namespace
}  // namespace gsj
