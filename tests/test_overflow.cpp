// Overflow-recovery suite (docs/ROBUSTNESS.md): per-batch buffer
// capacity, mid-launch abort, rollback + split re-planning, fault
// injection, the OverflowError taxonomy, and the supporting ResultSet
// batch-window primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "data/generators.hpp"
#include "sj/reference.hpp"
#include "sj/result_set.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {
namespace {

// An adversary for the strided 1% estimator: every stride-sampled index
// (i % 100 == 0 at the default sample_fraction 0.01) is an isolated
// point with no neighbors but itself, while the remaining 99% sit in a
// dense clump. The sample extrapolates ~n total pairs; the clump alone
// produces tens of thousands — a provable undershoot, no injection
// knobs needed.
Dataset make_estimator_adversary(std::size_t n) {
  Dataset ds(2, n);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  auto unit = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  };
  auto x_col = ds.fill_dim(0);
  auto y_col = ds.fill_dim(1);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 100 == 0) {
      // Sparse arm: consecutive sampled points 10 apart, far beyond
      // any test epsilon.
      const double c = 100.0 + 10.0 * static_cast<double>(i);
      x_col[i] = c;
      y_col[i] = c;
    } else {
      // Dense clump in [0, 0.5]^2.
      x_col[i] = unit() * 0.5;
      y_col[i] = unit() * 0.5;
    }
  }
  return ds;
}

/// Canonical pairs of a recovered run must equal the unbatched oracle:
/// no lost pairs, no partial-batch leftovers, no duplicates.
void expect_matches_reference(const Dataset& ds, const SelfJoinOutput& out,
                              double eps) {
  const ResultSet ref = brute_force_join(ds, eps);
  ASSERT_EQ(out.results.count(), ref.count());
  EXPECT_EQ(out.results.pairs(), ref.pairs());
}

TEST(OverflowRecovery, StridedUndershootRecoversAndMatchesReference) {
  const Dataset ds = make_estimator_adversary(2000);
  const double eps = 0.05;
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(eps);
  cfg.store_pairs = true;
  cfg.batching.buffer_pairs = 2000;

  const auto out = self_join(ds, cfg);
  EXPECT_GE(out.stats.overflow_retries, 1u);
  EXPECT_TRUE(out.stats.buffer_overflowed);
  // Committed batches all fit the buffer; the plan alone could not
  // have achieved that (the estimate was ~n pairs).
  EXPECT_LE(out.stats.max_batch_pairs, cfg.batching.buffer_pairs);
  EXPECT_EQ(out.stats.num_batches, out.stats.batches.size());
  // Wasted-work audit: rolled-back launches really ran. (Batches here
  // are far below the abort-poll block size, so overflowing launches
  // run to completion rather than aborting — the launch-level abort is
  // covered in test_host_parallel.cpp.)
  EXPECT_GT(out.stats.wasted.warps_launched, 0u);
  EXPECT_GT(out.stats.wasted.busy_cycles, 0u);
  // None of the wasted work leaked into the committed kernel stats.
  EXPECT_EQ(out.stats.kernel.launches, out.stats.num_batches);
  expect_matches_reference(ds, out, eps);
}

TEST(OverflowRecovery, SortByWlRecoversAndMatchesReference) {
  const Dataset ds = make_estimator_adversary(2000);
  const double eps = 0.05;
  SelfJoinConfig cfg = SelfJoinConfig::sort_by_wl(eps);
  cfg.store_pairs = true;
  cfg.batching.buffer_pairs = 2000;

  const auto out = self_join(ds, cfg);
  EXPECT_GE(out.stats.overflow_retries, 1u);
  expect_matches_reference(ds, out, eps);
}

TEST(OverflowRecovery, InjectedSkewForcesRetriesResultUnchanged) {
  const Dataset ds = gen_exponential(2500, 2, 21);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(0.05);
  cfg.store_pairs = true;
  cfg.batching.buffer_pairs = 8000;

  const auto honest = self_join(ds, cfg);
  EXPECT_EQ(honest.stats.overflow_retries, 0u);

  cfg.batching.inject_estimator_skew = 0.02;  // plan far too few batches
  const auto skewed = self_join(ds, cfg);
  EXPECT_GE(skewed.stats.overflow_retries, 1u);
  EXPECT_EQ(honest.results.pairs(), skewed.results.pairs());
  EXPECT_EQ(honest.stats.result_pairs, skewed.stats.result_pairs);
}

TEST(OverflowRecovery, QueueHardBoundNeverOverflowsEvenUnderSkew) {
  // plan_queue cuts chunks by the 2w+1 bound, so an estimator
  // undershoot produces zero genuine overflows on the queue path.
  const Dataset ds = gen_exponential(2500, 2, 22);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  cfg.batching.buffer_pairs = 8000;
  cfg.batching.inject_estimator_skew = 0.02;

  const auto out = self_join(ds, cfg);
  EXPECT_EQ(out.stats.overflow_retries, 0u);
  EXPECT_FALSE(out.stats.buffer_overflowed);
  expect_matches_reference(ds, out, 0.05);
}

TEST(OverflowRecovery, QueuePathRecoversUnderInjectedCapacity) {
  // inject_capacity shrinks detection below what planning promised —
  // the only way to exercise queue-path recovery, by design.
  const Dataset ds = gen_exponential(2500, 2, 23);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  cfg.batching.buffer_pairs = 50'000;

  const auto honest = self_join(ds, cfg);
  // Detection capacity well below the planned chunk sizes but above the
  // densest single point's emission (~4k pairs here): recovery splits
  // chunks until they fit instead of giving up.
  cfg.batching.inject_capacity = 6500;
  const auto faulty = self_join(ds, cfg);
  EXPECT_GE(faulty.stats.overflow_retries, 1u);
  EXPECT_LE(faulty.stats.max_batch_pairs, 6500u);
  EXPECT_EQ(honest.results.pairs(), faulty.results.pairs());
}

TEST(OverflowRecovery, AllVariantsZeroRetriesWithoutInjection) {
  const Dataset ds = gen_exponential(1500, 2, 24);
  const SelfJoinConfig variants[] = {
      SelfJoinConfig::gpu_calc_global(0.05), SelfJoinConfig::unicomp(0.05),
      SelfJoinConfig::lid_unicomp(0.05),     SelfJoinConfig::sort_by_wl(0.05),
      SelfJoinConfig::work_queue_cfg(0.05),  SelfJoinConfig::combined(0.05),
  };
  for (SelfJoinConfig cfg : variants) {
    SCOPED_TRACE(cfg.name());
    cfg.store_pairs = true;
    const auto out = self_join(ds, cfg);
    EXPECT_EQ(out.stats.overflow_retries, 0u);
    EXPECT_EQ(out.stats.wasted.warps_launched, 0u);
    EXPECT_EQ(out.stats.wasted.aborted_launches, 0u);
    EXPECT_FALSE(out.stats.buffer_overflowed);
  }
}

TEST(OverflowRecovery, SinglePointOverflowThrowsStructuredError) {
  // Capacity smaller than one dense point's neighborhood: recovery
  // splits down to single-point batches and must then give up.
  const Dataset ds = gen_exponential(800, 2, 25);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(0.2);
  cfg.store_pairs = true;
  cfg.batching.inject_capacity = 4;

  try {
    (void)self_join(ds, cfg);
    FAIL() << "expected OverflowError";
  } catch (const OverflowError& e) {
    EXPECT_EQ(e.capacity(), 4u);
    EXPECT_EQ(e.batch_points(), 1u);
    EXPECT_GT(e.observed_pairs(), e.capacity());
    EXPECT_NE(std::string(e.what()).find("buffer overflow"),
              std::string::npos);
  }
}

TEST(OverflowRecovery, RetryBudgetExhaustionThrows) {
  const Dataset ds = make_estimator_adversary(2000);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(0.05);
  cfg.store_pairs = true;
  cfg.batching.buffer_pairs = 2000;
  cfg.batching.max_overflow_retries = 1;  // far below what recovery needs

  EXPECT_THROW((void)self_join(ds, cfg), OverflowError);
}

TEST(OverflowRecovery, OverflowErrorIsNotACheckError) {
  // The taxonomy keeps precondition bugs and recoverable runtime
  // failures in disjoint families.
  const OverflowError e(10, 20, 2, 1);
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(&e), nullptr);
  const Error& base = e;
  EXPECT_EQ(std::string(base.what()), std::string(e.what()));
  static_assert(!std::is_base_of_v<CheckError, OverflowError>);
  static_assert(!std::is_base_of_v<OverflowError, CheckError>);
}

TEST(OverflowRecovery, ReserveClampSurvivesWildOverestimate) {
  // A hugely inflated estimate must neither bad_alloc at reserve time
  // nor distort the join result.
  const Dataset ds = gen_exponential(1200, 2, 26);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(0.05);
  cfg.store_pairs = true;
  cfg.batching.inject_estimator_skew = 1e12;

  const auto out = self_join(ds, cfg);
  EXPECT_EQ(out.stats.overflow_retries, 0u);
  expect_matches_reference(ds, out, 0.05);
}

TEST(BatchingValidation, RejectsOutOfDomainKnobs) {
  const Dataset ds = gen_exponential(200, 2, 27);
  SelfJoinConfig cfg = SelfJoinConfig::gpu_calc_global(0.1);

  auto expect_rejected = [&](auto mutate) {
    SelfJoinConfig bad = cfg;
    mutate(bad.batching);
    EXPECT_THROW((void)self_join(ds, bad), CheckError);
  };
  expect_rejected([](BatchingConfig& b) { b.sample_fraction = 0.0; });
  expect_rejected([](BatchingConfig& b) { b.sample_fraction = -0.5; });
  expect_rejected([](BatchingConfig& b) { b.sample_fraction = 1.5; });
  expect_rejected([](BatchingConfig& b) { b.buffer_pairs = 0; });
  expect_rejected([](BatchingConfig& b) { b.nstreams = 0; });
  expect_rejected([](BatchingConfig& b) { b.safety = 0.5; });
  expect_rejected([](BatchingConfig& b) { b.pcie_gbps = 0.0; });
  expect_rejected([](BatchingConfig& b) { b.inject_estimator_skew = 0.0; });
  expect_rejected([](BatchingConfig& b) { b.inject_estimator_skew = -1.0; });
}

TEST(BatchingValidation, EffectiveCapacityPrefersInjection) {
  BatchingConfig b;
  b.buffer_pairs = 123;
  EXPECT_EQ(b.effective_capacity(), 123u);
  b.inject_capacity = 7;
  EXPECT_EQ(b.effective_capacity(), 7u);
}

// --- ResultSet batch-window primitives ---

TEST(ResultSetBatch, OverflowDetectionAndRollback) {
  ResultSet rs(/*store_pairs=*/true);
  rs.emit(1, 2);  // pre-existing committed pair
  rs.begin_batch(2);
  rs.emit(3, 4);
  rs.emit(5, 6);
  EXPECT_FALSE(rs.batch_overflowed());
  rs.emit(7, 8);  // one past capacity: counted, not stored
  EXPECT_TRUE(rs.batch_overflowed());
  EXPECT_EQ(rs.batch_count(), 3u);
  EXPECT_EQ(rs.count(), 4u);
  EXPECT_EQ(rs.pairs().size(), 3u);  // storage clamped at capacity

  rs.rollback_batch();
  EXPECT_EQ(rs.count(), 1u);
  ASSERT_EQ(rs.pairs().size(), 1u);
  EXPECT_EQ(rs.pairs()[0], (ResultPair{1, 2}));
  EXPECT_FALSE(rs.batch_overflowed());

  // The window is reusable after rollback.
  rs.begin_batch(2);
  rs.emit(9, 10);
  EXPECT_EQ(rs.batch_count(), 1u);
  EXPECT_FALSE(rs.batch_overflowed());
}

TEST(ResultSetBatch, CountOnlyModeDetectsOverflowToo) {
  ResultSet rs(/*store_pairs=*/false);
  rs.begin_batch(1);
  rs.emit(0, 1);
  rs.emit(1, 0);
  EXPECT_TRUE(rs.batch_overflowed());
  rs.rollback_batch();
  EXPECT_EQ(rs.count(), 0u);
}

TEST(ResultSetBatch, AbsorbClampsStorageToWindow) {
  // The parallel path merges per-warp shards into the batch window;
  // storage past the capacity must be dropped while counts accumulate
  // (bitwise what the sequential emit path does).
  ResultSet main(/*store_pairs=*/true);
  main.begin_batch(3);
  ResultSet shard_a(true);
  shard_a.emit(1, 1);
  shard_a.emit(2, 2);
  ResultSet shard_b(true);
  shard_b.emit(3, 3);
  shard_b.emit(4, 4);
  main.absorb(std::move(shard_a));
  main.absorb(std::move(shard_b));
  EXPECT_EQ(main.count(), 4u);
  EXPECT_EQ(main.pairs().size(), 3u);
  EXPECT_TRUE(main.batch_overflowed());
  main.rollback_batch();
  EXPECT_EQ(main.count(), 0u);
  EXPECT_TRUE(main.pairs().empty());
}

TEST(ResultSetBatch, UnlimitedWindowNeverOverflows) {
  ResultSet rs(true);
  for (PointId i = 0; i < 100; ++i) rs.emit(i, i);
  EXPECT_FALSE(rs.batch_overflowed());
  EXPECT_EQ(rs.count(), 100u);
  EXPECT_EQ(rs.pairs().size(), 100u);
}

TEST(ResultSetBatch, ReserveIsBoundedAgainstWildEstimates) {
  ResultSet rs(true);
  // Must not throw bad_alloc / length_error on absurd requests.
  rs.reserve(std::numeric_limits<std::uint64_t>::max());
  rs.emit(1, 2);
  EXPECT_EQ(rs.count(), 1u);
}

}  // namespace
}  // namespace gsj
