// Unit/property tests: the related-work baselines (k-d tree and
// Morton-curve joins) — structural invariants and exactness against
// brute force.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/kdtree.hpp"
#include "baselines/morton.hpp"
#include "baselines/rtree.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/generators.hpp"
#include "sj/reference.hpp"

namespace gsj {
namespace {

// ---------------------------------------------------------------------------
// k-d tree.

TEST(KdTree, BalancedDepth) {
  const Dataset ds = gen_uniform(4096, 2, 71, 0.0, 100.0);
  const KdTree tree(ds, /*leaf_size=*/16);
  // 4096/16 = 256 leaves -> depth ~ 9; allow slack for uneven splits.
  EXPECT_LE(tree.depth(), 14u);
  EXPECT_GE(tree.depth(), 8u);
}

TEST(KdTree, RangeQueryMatchesBruteForce) {
  const Dataset ds = gen_exponential(1200, 3, 72);
  const double eps = 0.05;
  const KdTree tree(ds);
  const ResultSet truth = brute_force_join(ds, eps);
  std::vector<std::vector<PointId>> want(ds.size());
  for (const auto& [a, b] : truth.pairs()) want[a].push_back(b);
  Xoshiro256 rng(1);
  for (int i = 0; i < 60; ++i) {
    const auto q = static_cast<PointId>(rng.uniform_index(ds.size()));
    EXPECT_EQ(tree.range_query(q, eps), want[q]) << "q=" << q;
  }
}

TEST(KdTree, ArbitraryCenterQuery) {
  const Dataset ds = gen_uniform(800, 2, 73, 0.0, 10.0);
  const KdTree tree(ds);
  const double center[] = {5.0, 5.0};
  const auto got = tree.range_query(center, 1.0);
  std::vector<PointId> want;
  for (PointId p = 0; p < ds.size(); ++p) {
    const double dx = ds.coord(p, 0) - 5.0;
    const double dy = ds.coord(p, 1) - 5.0;
    if (dx * dx + dy * dy <= 1.0) want.push_back(p);
  }
  EXPECT_EQ(got, want);
}

TEST(KdTree, PruningBeatsLinearScan) {
  const Dataset ds = gen_uniform(20000, 2, 74, 0.0, 100.0);
  const KdTree tree(ds);
  (void)tree.range_query(PointId{0}, 1.0);
  // One query must touch far fewer than all points.
  EXPECT_LT(tree.distance_calcs(), 2000u);
}

TEST(KdTree, Validates) {
  const Dataset empty(2);
  EXPECT_THROW(KdTree{empty}, CheckError);
  const Dataset ds = gen_uniform(10, 2, 75);
  const KdTree tree(ds);
  EXPECT_THROW((void)tree.range_query(PointId{0}, 0.0), CheckError);
}

class KdJoinExactness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(KdJoinExactness, MatchesBruteForce) {
  const auto& [dist, dims] = GetParam();
  const Dataset ds = dist == "expo"
                         ? gen_exponential(700, dims, 76 + dims)
                         : gen_uniform(700, dims, 76 + dims, 0.0, 10.0);
  const double eps = dist == "expo" ? 0.01 * dims : 0.4 * dims;
  const auto out = kdtree_self_join(ds, eps, /*nthreads=*/2,
                                    /*store_pairs=*/true, /*leaf_size=*/8);
  const ResultSet truth = brute_force_join(ds, eps);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
  EXPECT_EQ(out.stats.result_pairs, truth.count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdJoinExactness,
    ::testing::Combine(::testing::Values("unif", "expo"),
                       ::testing::Values(2, 3, 5)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "D";
    });

// ---------------------------------------------------------------------------
// R-tree.

TEST(RTree, StructureIsPackedAndShallow) {
  const Dataset ds = gen_uniform(4096, 2, 95, 0.0, 100.0);
  const RTree tree(ds, /*node_capacity=*/16);
  // 256 leaves + 16 internals + root = 273 nodes, height 3.
  EXPECT_EQ(tree.height(), 3u);
  EXPECT_EQ(tree.node_count(), 256u + 16u + 1u);
}

TEST(RTree, RangeQueryMatchesBruteForce) {
  const Dataset ds = gen_exponential(1200, 3, 96);
  const double eps = 0.05;
  const RTree tree(ds);
  const ResultSet truth = brute_force_join(ds, eps);
  std::vector<std::vector<PointId>> want(ds.size());
  for (const auto& [a, b] : truth.pairs()) want[a].push_back(b);
  Xoshiro256 rng(2);
  for (int i = 0; i < 60; ++i) {
    const auto q = static_cast<PointId>(rng.uniform_index(ds.size()));
    EXPECT_EQ(tree.range_query(q, eps), want[q]) << "q=" << q;
  }
}

TEST(RTree, PruningBeatsLinearScan) {
  const Dataset ds = gen_uniform(20000, 2, 97, 0.0, 100.0);
  const RTree tree(ds);
  (void)tree.range_query(PointId{0}, 1.0);
  EXPECT_LT(tree.distance_calcs(), 2000u);
}

TEST(RTree, PruningDegradesWithDimensionality) {
  // The curse-of-dimensionality effect the paper's §II-B1 describes: at
  // fixed selectivity (query ball of constant relative volume), the
  // distance evaluations *per delivered result* grow with dims because
  // bounding boxes overlap the ball ever more loosely.
  double prev_ratio = 0.0;
  for (const int dims : {2, 4, 6}) {
    const Dataset ds = gen_uniform(8000, dims, 98, 0.0, 10.0);
    const RTree tree(ds);
    // eps chosen so (eps/10)^dims is constant: ~1% of the unit volume.
    const double eps = 10.0 * std::pow(0.01, 1.0 / dims);
    std::uint64_t results = 0;
    for (PointId q = 0; q < 50; ++q) {
      results += tree.range_query(q, eps).size();
    }
    ASSERT_GT(results, 0u);
    const double ratio = static_cast<double>(tree.distance_calcs()) /
                         static_cast<double>(results);
    EXPECT_GT(ratio, prev_ratio) << "dims=" << dims;
    prev_ratio = ratio;
  }
}

TEST(RTree, Validates) {
  const Dataset empty(2);
  EXPECT_THROW(RTree{empty}, CheckError);
}

class RtJoinExactness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(RtJoinExactness, MatchesBruteForce) {
  const auto& [dist, dims] = GetParam();
  const Dataset ds = dist == "expo"
                         ? gen_exponential(700, dims, 99 + dims)
                         : gen_uniform(700, dims, 99 + dims, 0.0, 10.0);
  const double eps = dist == "expo" ? 0.01 * dims : 0.4 * dims;
  const auto out = rtree_self_join(ds, eps, /*nthreads=*/2,
                                   /*store_pairs=*/true, /*node_capacity=*/8);
  const ResultSet truth = brute_force_join(ds, eps);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtJoinExactness,
    ::testing::Combine(::testing::Values("unif", "expo"),
                       ::testing::Values(2, 3, 5)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "D";
    });

// ---------------------------------------------------------------------------
// Morton curve.

TEST(Morton, EncodeDecodeRoundTrip) {
  Xoshiro256 rng(81);
  for (int dims = 1; dims <= 6; ++dims) {
    const int bits = 64 / dims >= 10 ? 10 : 64 / dims;
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<std::uint32_t> cells(static_cast<std::size_t>(dims));
      for (auto& c : cells) {
        c = static_cast<std::uint32_t>(
            rng.uniform_index(std::uint64_t{1} << bits));
      }
      const std::uint64_t code = morton_encode(cells, bits);
      EXPECT_EQ(morton_decode(code, dims, bits), cells);
    }
  }
}

TEST(Morton, CodeOrderIsZOrderIn2D) {
  // The 2x2 block order of a Z curve: (0,0) (1,0) (0,1) (1,1).
  auto code = [](std::uint32_t x, std::uint32_t y) {
    const std::uint32_t c[] = {x, y};
    return morton_encode(c, 4);
  };
  EXPECT_LT(code(0, 0), code(1, 0));
  EXPECT_LT(code(1, 0), code(0, 1));
  EXPECT_LT(code(0, 1), code(1, 1));
  EXPECT_LT(code(1, 1), code(2, 0));  // next block
}

TEST(Morton, EncodeValidatesWidth) {
  const std::uint32_t c[] = {1, 1, 1, 1, 1, 1, 1};
  EXPECT_THROW((void)morton_encode(c, 10), CheckError);  // 7*10 > 64
}

class MortonJoinExactness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(MortonJoinExactness, MatchesBruteForce) {
  const auto& [dist, dims] = GetParam();
  const Dataset ds = dist == "expo"
                         ? gen_exponential(700, dims, 86 + dims)
                         : gen_uniform(700, dims, 86 + dims, 0.0, 10.0);
  const double eps = dist == "expo" ? 0.01 * dims : 0.4 * dims;
  const auto out =
      morton_self_join(ds, eps, /*nthreads=*/2, /*store_pairs=*/true);
  const ResultSet truth = brute_force_join(ds, eps);
  EXPECT_EQ(out.results.pairs(), truth.pairs());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MortonJoinExactness,
    ::testing::Combine(::testing::Values("unif", "expo"),
                       ::testing::Values(2, 3, 5)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "D";
    });

TEST(MortonJoin, CountOnlyMatchesStored) {
  const Dataset ds = gen_uniform(900, 2, 90, 0.0, 10.0);
  const auto counted = morton_self_join(ds, 0.5, 1, false);
  const auto stored = morton_self_join(ds, 0.5, 1, true);
  EXPECT_EQ(counted.results.count(), stored.results.count());
  EXPECT_GT(counted.stats.nonempty_cells, 0u);
  EXPECT_GT(counted.stats.distance_calcs, 0u);
}

TEST(MortonJoin, AgreesWithKdTreeAndGrid) {
  const Dataset ds = gen_sw_like(2000, true, 91);
  const double eps = 2.0;
  const auto morton = morton_self_join(ds, eps, 2, false);
  const auto kd = kdtree_self_join(ds, eps, 2, false);
  const GridIndex grid(ds, eps);
  const ResultSet gj = cpu_grid_join(grid, false);
  EXPECT_EQ(morton.results.count(), kd.results.count());
  EXPECT_EQ(morton.results.count(), gj.count());
}

}  // namespace
}  // namespace gsj
