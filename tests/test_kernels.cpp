// Unit tests of the SelfJoinKernel at the simulator interface level:
// lane initialization, cooperative-group broadcast, step costs, and the
// interaction between patterns and the k-split.
#include <gtest/gtest.h>

#include <numeric>

#include "common/check.hpp"
#include "data/generators.hpp"
#include "sj/kernels.hpp"

namespace gsj {
namespace {

struct Fixture {
  Dataset ds;
  GridIndex grid;
  simt::DeviceConfig device;
  ResultSet results{true};
  simt::DeviceCounter counter;
  std::vector<PointId> ids;

  explicit Fixture(std::size_t n = 200, double eps = 0.6)
      : ds(gen_uniform(n, 2, 61, 0.0, 5.0)), grid(ds, eps) {
    ids.resize(n);
    std::iota(ids.begin(), ids.end(), PointId{0});
  }

  KernelParams params(CellPattern pattern, Assignment assign, int k) {
    KernelParams p;
    p.grid = &grid;
    p.pattern = pattern;
    p.assignment = assign;
    p.k = k;
    p.points = ids;
    p.queue = ids;
    p.counter = &counter;
    p.device = &device;
    p.results = &results;
    return p;
  }
};

TEST(Kernel, ValidatesParams) {
  Fixture fx;
  KernelParams p = fx.params(CellPattern::Full, Assignment::Static, 1);
  p.grid = nullptr;
  EXPECT_THROW(SelfJoinKernel{p}, CheckError);
  p = fx.params(CellPattern::Full, Assignment::Static, 3);  // 3 !| 32
  EXPECT_THROW(SelfJoinKernel{p}, CheckError);
  p = fx.params(CellPattern::Full, Assignment::WorkQueue, 1);
  p.counter = nullptr;
  EXPECT_THROW(SelfJoinKernel{p}, CheckError);
}

TEST(Kernel, StaticInitBindsStridedPoints) {
  Fixture fx;
  SelfJoinKernel k(fx.params(CellPattern::Full, Assignment::Static, 1));
  SelfJoinKernel::LaneState s;
  simt::WarpScratch scratch{};
  for (const std::uint64_t tid : {0ull, 5ull, 31ull, 63ull}) {
    simt::LaneCtx ctx{tid, static_cast<int>(tid % 32), tid / 32};
    const auto r = k.init_lane(s, ctx, scratch);
    EXPECT_TRUE(r.active);
    EXPECT_EQ(s.q, fx.ids[tid]);
    EXPECT_EQ(s.group_rank, 0u);
  }
}

TEST(Kernel, StaticInitWithKSplitsGroups) {
  Fixture fx;
  SelfJoinKernel k(fx.params(CellPattern::Full, Assignment::Static, 4));
  SelfJoinKernel::LaneState s;
  simt::WarpScratch scratch{};
  for (int lane = 0; lane < 8; ++lane) {
    simt::LaneCtx ctx{static_cast<std::uint64_t>(lane), lane, 0};
    (void)k.init_lane(s, ctx, scratch);
    EXPECT_EQ(s.q, fx.ids[static_cast<std::size_t>(lane / 4)]);
    EXPECT_EQ(s.group_rank, static_cast<std::uint32_t>(lane % 4));
  }
}

TEST(Kernel, WorkQueueLeaderGrabsAndBroadcasts) {
  Fixture fx;
  fx.counter.reset(10);
  SelfJoinKernel k(fx.params(CellPattern::Full, Assignment::WorkQueue, 8));
  SelfJoinKernel::LaneState s;
  simt::WarpScratch scratch{};
  // Lanes initialize in order; leaders are lanes 0, 8, 16, 24.
  std::vector<PointId> bound;
  for (int lane = 0; lane < 32; ++lane) {
    simt::LaneCtx ctx{static_cast<std::uint64_t>(lane), lane, 0};
    const auto r = k.init_lane(s, ctx, scratch);
    EXPECT_TRUE(r.active);
    bound.push_back(s.q);
    // Leader init must cost more (the atomic).
    if (lane % 8 == 0) {
      EXPECT_GT(r.cost, fx.device.cost_atomic);
    }
  }
  // Groups of 8 lanes share one queue index: 10, 11, 12, 13.
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(bound[lane], fx.ids[10 + lane / 8]);
  }
  EXPECT_EQ(k.atomics_executed(), 4u);
  EXPECT_EQ(fx.counter.value(), 14u);
}

TEST(Kernel, LaneRunsToCompletionAndCountsEmits) {
  Fixture fx(100, 1.0);
  SelfJoinKernel k(fx.params(CellPattern::Full, Assignment::Static, 1));
  SelfJoinKernel::LaneState s;
  simt::WarpScratch scratch{};
  simt::LaneCtx ctx{0, 0, 0};
  (void)k.init_lane(s, ctx, scratch);
  std::uint64_t steps = 0;
  while (true) {
    const auto r = k.step(s);
    ++steps;
    ASSERT_LT(steps, 100000u) << "lane did not terminate";
    if (!r.active) break;
  }
  // The lane emitted exactly point 0's neighbor pairs.
  std::uint64_t expected = 0;
  for (PointId c = 0; c < fx.ds.size(); ++c) {
    expected += fx.ds.dist2(0, c) <= 1.0;
  }
  EXPECT_EQ(k.results_emitted(), expected);
  EXPECT_EQ(fx.results.count(), expected);
}

TEST(Kernel, KLanesPartitionCandidatesExactly) {
  Fixture fx(150, 1.0);
  const int kk = 4;
  SelfJoinKernel k(fx.params(CellPattern::LidUnicomp, Assignment::Static, kk));
  simt::WarpScratch scratch{};
  // Run the 4 lanes of point 0's group to completion.
  for (int lane = 0; lane < kk; ++lane) {
    SelfJoinKernel::LaneState s;
    simt::LaneCtx ctx{static_cast<std::uint64_t>(lane), lane, 0};
    (void)k.init_lane(s, ctx, scratch);
    while (k.step(s).active) {
    }
  }
  // Together they emitted exactly the unidirectional share of point 0:
  // both orders of every pair {0, c} whose canonical evaluator is 0,
  // plus the self pair. Cross-check against a k=1 run.
  const std::uint64_t with_k = k.results_emitted();
  Fixture fy(150, 1.0);
  SelfJoinKernel k1(fy.params(CellPattern::LidUnicomp, Assignment::Static, 1));
  SelfJoinKernel::LaneState s1;
  simt::LaneCtx ctx1{0, 0, 0};
  (void)k1.init_lane(s1, ctx1, scratch);
  while (k1.step(s1).active) {
  }
  EXPECT_EQ(with_k, k1.results_emitted());
}

TEST(Kernel, StepCostsComeFromDeviceTable) {
  Fixture fx(50, 1.0);
  fx.device.cost_dist_base = 100;
  fx.device.cost_dist_per_dim = 10;
  SelfJoinKernel k(fx.params(CellPattern::Full, Assignment::Static, 1));
  SelfJoinKernel::LaneState s;
  simt::WarpScratch scratch{};
  simt::LaneCtx ctx{0, 0, 0};
  (void)k.init_lane(s, ctx, scratch);
  // Walk until the first scanning step and check its cost.
  bool saw_scan_cost = false;
  for (int i = 0; i < 1000; ++i) {
    const auto r = k.step(s);
    if (r.cost >= 120) {  // 100 + 2 dims * 10
      saw_scan_cost = true;
      break;
    }
    if (!r.active) break;
  }
  EXPECT_TRUE(saw_scan_cost);
}

}  // namespace
}  // namespace gsj
