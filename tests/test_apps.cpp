// Unit/integration tests: NeighborTable, range queries, and DBSCAN
// built on the self-join.
#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/generators.hpp"
#include "sj/dbscan.hpp"
#include "sj/neighbor_table.hpp"
#include "sj/reference.hpp"

namespace gsj {
namespace {

TEST(NeighborTable, MatchesBruteForceDegrees) {
  const Dataset ds = gen_uniform(500, 2, 21, 0.0, 10.0);
  const double eps = 0.7;
  const ResultSet truth = brute_force_join(ds, eps);
  const NeighborTable nt(truth, ds.size());
  EXPECT_EQ(nt.total_pairs(), truth.count());
  std::vector<std::uint64_t> deg(ds.size(), 0);
  for (const auto& [a, b] : truth.pairs()) deg[a]++;
  for (PointId p = 0; p < ds.size(); ++p) {
    EXPECT_EQ(nt.degree(p), deg[p]);
    const auto nb = nt.neighbors(p);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    // Self pair present.
    EXPECT_TRUE(std::binary_search(nb.begin(), nb.end(), p));
  }
}

TEST(NeighborTable, RequiresStoredPairs) {
  ResultSet counted(false);
  counted.emit(0, 0);
  EXPECT_THROW(NeighborTable(counted, 1), CheckError);
}

TEST(RangeQuery, PointQueryMatchesBruteForce) {
  const Dataset ds = gen_exponential(800, 3, 22);
  const double eps = 0.04;
  const GridIndex grid(ds, eps);
  const ResultSet truth = brute_force_join(ds, eps);
  const NeighborTable nt(truth, ds.size());
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto q = static_cast<PointId>(rng.uniform_index(ds.size()));
    const auto got = range_query(grid, q);
    const auto want = nt.neighbors(q);
    ASSERT_EQ(got.size(), want.size()) << "q=" << q;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
}

TEST(RangeQuery, ArbitraryCenterMatchesScan) {
  const Dataset ds = gen_uniform(1000, 2, 23, 0.0, 10.0);
  const double eps = 0.9;
  const GridIndex grid(ds, eps);
  Xoshiro256 rng(6);
  for (int i = 0; i < 30; ++i) {
    const double center[] = {rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
    const auto got = range_query(grid, center);
    std::vector<PointId> want;
    for (PointId p = 0; p < ds.size(); ++p) {
      const double dx = ds.coord(p, 0) - center[0];
      const double dy = ds.coord(p, 1) - center[1];
      if (dx * dx + dy * dy <= eps * eps) want.push_back(p);
    }
    EXPECT_EQ(got, want) << "center (" << center[0] << ", " << center[1] << ")";
  }
}

TEST(RangeQuery, EmptyResultFarOutside) {
  const Dataset ds = gen_uniform(200, 2, 24, 0.0, 10.0);
  const GridIndex grid(ds, 0.5);
  const double far_away[] = {100.0, 100.0};
  EXPECT_TRUE(range_query(grid, far_away).empty());
}

/// Three well-separated Gaussian blobs plus uniform noise.
Dataset blobs_dataset(std::size_t per_blob, std::size_t noise,
                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  auto gaussian = [&rng] {
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530718 * u2);
  };
  Dataset ds(2);
  const double centers[3][2] = {{10, 10}, {30, 10}, {20, 30}};
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const double p[] = {c[0] + gaussian() * 0.5, c[1] + gaussian() * 0.5};
      ds.push_back(p);
    }
  }
  for (std::size_t i = 0; i < noise; ++i) {
    const double p[] = {rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)};
    ds.push_back(p);
  }
  return ds;
}

TEST(Dbscan, RecoversWellSeparatedBlobs) {
  const Dataset ds = blobs_dataset(300, 30, 25);
  DbscanConfig cfg;
  cfg.epsilon = 0.5;
  cfg.min_pts = 8;
  const DbscanResult res = dbscan(ds, cfg);
  EXPECT_EQ(res.num_clusters, 3u);
  // Each blob maps to exactly one label.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<std::int32_t> labels;
    for (std::size_t i = 0; i < 300; ++i) {
      const auto l = res.labels[static_cast<std::size_t>(blob) * 300 + i];
      if (l != DbscanResult::kNoise) labels.insert(l);
    }
    EXPECT_EQ(labels.size(), 1u) << "blob " << blob;
  }
  EXPECT_GT(res.num_noise, 0u);
  EXPECT_LT(res.num_noise, 60u);  // noise points far from blobs
}

TEST(Dbscan, AllNoiseWhenMinPtsTooHigh) {
  const Dataset ds = gen_uniform(300, 2, 26, 0.0, 100.0);
  DbscanConfig cfg;
  cfg.epsilon = 0.5;
  cfg.min_pts = 50;
  const DbscanResult res = dbscan(ds, cfg);
  EXPECT_EQ(res.num_clusters, 0u);
  EXPECT_EQ(res.num_noise, ds.size());
}

TEST(Dbscan, SingleClusterWhenDense) {
  const Dataset ds = gen_uniform(500, 2, 27, 0.0, 1.0);
  DbscanConfig cfg;
  cfg.epsilon = 0.3;
  cfg.min_pts = 4;
  const DbscanResult res = dbscan(ds, cfg);
  EXPECT_EQ(res.num_clusters, 1u);
  EXPECT_EQ(res.num_noise, 0u);
}

TEST(Dbscan, LabelsAreConsistentAcrossJoinVariants) {
  const Dataset ds = blobs_dataset(200, 20, 28);
  DbscanConfig a;
  a.epsilon = 0.5;
  a.min_pts = 6;
  a.join = SelfJoinConfig::gpu_calc_global(1.0);
  DbscanConfig b = a;
  b.join = SelfJoinConfig::combined(1.0);
  const auto ra = dbscan(ds, a);
  const auto rb = dbscan(ds, b);
  EXPECT_EQ(ra.num_clusters, rb.num_clusters);
  EXPECT_EQ(ra.num_noise, rb.num_noise);
  // Labels may permute; compare partitions via co-membership on a sample.
  Xoshiro256 rng(29);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::size_t>(rng.uniform_index(ds.size()));
    const auto y = static_cast<std::size_t>(rng.uniform_index(ds.size()));
    EXPECT_EQ(ra.labels[x] == ra.labels[y], rb.labels[x] == rb.labels[y]);
  }
}

TEST(Dbscan, ValidatesConfig) {
  const Dataset ds = gen_uniform(10, 2, 30);
  DbscanConfig cfg;
  cfg.min_pts = 0;
  EXPECT_THROW(dbscan(ds, cfg), CheckError);
}

}  // namespace
}  // namespace gsj
