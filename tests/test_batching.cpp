// Unit/property tests: batching scheme (§II-C2, §III-D) — estimation,
// strided vs chunked assignment, SORTBYWL per-batch ordering, transfer
// pipeline model.
#include <gtest/gtest.h>

#include <numeric>

#include "data/generators.hpp"
#include "grid/workload.hpp"
#include "sj/batching.hpp"
#include "sj/reference.hpp"

namespace gsj {
namespace {

BatchingConfig small_buffers() {
  BatchingConfig cfg;
  cfg.buffer_pairs = 20'000;
  return cfg;
}

TEST(Batching, StridedPartitionCoversAllPointsOnce) {
  const Dataset ds = gen_uniform(5000, 2, 3);
  const GridIndex g(ds, 2.0);
  const BatchPlan plan =
      plan_strided(g, small_buffers(), false, CellPattern::Full);
  ASSERT_GE(plan.num_batches, 2u);
  std::vector<int> seen(ds.size(), 0);
  for (std::size_t b = 0; b < plan.batches.size(); ++b) {
    for (const PointId p : plan.batches[b]) {
      seen[p]++;
      EXPECT_EQ(p % plan.num_batches, b);  // strided assignment
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Batching, StridedBatchSizesBalanced) {
  const Dataset ds = gen_uniform(5001, 2, 4);
  const GridIndex g(ds, 2.0);
  const BatchPlan plan =
      plan_strided(g, small_buffers(), false, CellPattern::Full);
  std::size_t mn = ds.size(), mx = 0;
  for (const auto& b : plan.batches) {
    mn = std::min(mn, b.size());
    mx = std::max(mx, b.size());
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(Batching, EstimateWithinFactorOfTruth) {
  const Dataset ds = gen_uniform(20000, 2, 5);
  const GridIndex g(ds, 1.5);
  const BatchPlan plan =
      plan_strided(g, small_buffers(), false, CellPattern::Full);
  const ResultSet truth = cpu_grid_join(g, /*store_pairs=*/false);
  const double ratio = static_cast<double>(plan.estimated_total_pairs) /
                       static_cast<double>(truth.count());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Batching, SortByWlOrdersEachBatch) {
  const Dataset ds = gen_exponential(4000, 2, 6);
  const GridIndex g(ds, 0.05);
  const BatchPlan plan =
      plan_strided(g, small_buffers(), true, CellPattern::Full);
  const auto pw = point_workloads(g, CellPattern::Full);
  for (const auto& batch : plan.batches) {
    for (std::size_t i = 1; i < batch.size(); ++i) {
      EXPECT_GE(pw[batch[i - 1]], pw[batch[i]]);
    }
  }
}

TEST(Batching, QueuePlanChunksAreContiguousAndComplete) {
  const Dataset ds = gen_exponential(4000, 2, 7);
  const GridIndex g(ds, 0.05);
  const auto order = sort_by_workload(g, CellPattern::Full);
  const auto pw = point_workloads(g, CellPattern::Full);
  const BatchPlan plan = plan_queue(g, small_buffers(), order, pw);
  ASSERT_FALSE(plan.queue_ranges.empty());
  EXPECT_EQ(plan.queue_ranges.front().first, 0u);
  EXPECT_EQ(plan.queue_ranges.back().second, ds.size());
  for (std::size_t i = 1; i < plan.queue_ranges.size(); ++i) {
    EXPECT_EQ(plan.queue_ranges[i].first, plan.queue_ranges[i - 1].second);
  }
}

TEST(Batching, QueueEstimateAtLeastStridedEstimate) {
  // §III-D premise: the first-1%-of-D' estimate is "much larger" than
  // the strided one. On some skewed data the heaviest-*workload* points
  // actually have few results (see plan_queue's comment), so our
  // implementation clamps to max(first-1%, strided): the queue plan's
  // estimate is never below the strided plan's.
  const Dataset ds = gen_exponential(20000, 2, 8);
  const GridIndex g(ds, 0.05);
  const auto order = sort_by_workload(g, CellPattern::Full);
  const auto pw = point_workloads(g, CellPattern::Full);
  const BatchingConfig cfg = small_buffers();
  const BatchPlan strided = plan_strided(g, cfg, false, CellPattern::Full);
  const BatchPlan queued = plan_queue(g, cfg, order, pw);
  EXPECT_GE(queued.estimated_total_pairs, strided.estimated_total_pairs);
}

TEST(Batching, QueueEstimateOverestimatesWhenWorkloadTracksResults) {
  // On hotspot data (SW-like) heavy-workload points do have heavy
  // results, so the first-1% estimate exceeds the strided one — the
  // behaviour the paper reports.
  const Dataset ds = gen_sw_like(20000, false, 8);
  const GridIndex g(ds, 0.5);
  const auto order = sort_by_workload(g, CellPattern::Full);
  const auto pw = point_workloads(g, CellPattern::Full);
  const BatchingConfig cfg = small_buffers();
  const BatchPlan strided = plan_strided(g, cfg, false, CellPattern::Full);
  const BatchPlan queued = plan_queue(g, cfg, order, pw);
  EXPECT_GT(queued.estimated_total_pairs, strided.estimated_total_pairs);
  EXPECT_GE(queued.num_batches, strided.num_batches);
}

TEST(Batching, QueuePlanChunkBoundsRespectBuffer) {
  // The hard guarantee: each chunk's summed 2*workload+1 bound fits the
  // buffer (single-point chunks excepted — a point is indivisible).
  const Dataset ds = gen_exponential(4000, 2, 10);
  const GridIndex g(ds, 0.05);
  const auto order = sort_by_workload(g, CellPattern::Full);
  const auto pw = point_workloads(g, CellPattern::Full);
  BatchingConfig cfg;
  cfg.buffer_pairs = 50'000;
  const BatchPlan plan = plan_queue(g, cfg, order, pw);
  for (const auto& [b, e] : plan.queue_ranges) {
    if (e - b <= 1) continue;
    std::uint64_t bound = 0;
    for (std::uint64_t i = b; i < e; ++i) bound += 2 * pw[order[i]] + 1;
    EXPECT_LE(bound, cfg.buffer_pairs);
  }
}

TEST(Batching, DisabledMeansSingleBatch) {
  const Dataset ds = gen_uniform(2000, 2, 9);
  const GridIndex g(ds, 1.0);
  BatchingConfig cfg = small_buffers();
  cfg.enabled = false;
  const BatchPlan plan = plan_strided(g, cfg, false, CellPattern::Full);
  EXPECT_EQ(plan.num_batches, 1u);
  EXPECT_EQ(plan.batches[0].size(), ds.size());
}

TEST(Batching, TransferSecondsLinearInPairs) {
  BatchingConfig cfg;
  cfg.pcie_gbps = 8.0;
  EXPECT_DOUBLE_EQ(transfer_seconds(1'000'000'000, cfg), 1.0);
  EXPECT_DOUBLE_EQ(transfer_seconds(0, cfg), 0.0);
}

TEST(Pipeline, SingleStreamSerializes) {
  const std::vector<double> k{1.0, 1.0, 1.0};
  const std::vector<double> t{0.5, 0.5, 0.5};
  // stream 0 owns all batches: k0 t0 k1 t1 k2 t2 back-to-back.
  EXPECT_DOUBLE_EQ(pipeline_seconds(k, t, 1), 4.5);
}

TEST(Pipeline, MultiStreamOverlapsTransfers) {
  const std::vector<double> k{1.0, 1.0, 1.0};
  const std::vector<double> t{0.5, 0.5, 0.5};
  // With 3 streams every transfer hides under the next kernel except
  // the last: 3 + 0.5.
  EXPECT_DOUBLE_EQ(pipeline_seconds(k, t, 3), 3.5);
}

TEST(Pipeline, TransferBoundWhenLinkSlow) {
  const std::vector<double> k{0.1, 0.1, 0.1};
  const std::vector<double> t{1.0, 1.0, 1.0};
  // PCIe serializes transfers; completion is transfer-dominated.
  const double total = pipeline_seconds(k, t, 3);
  EXPECT_GE(total, 3.0);
}

TEST(Pipeline, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(pipeline_seconds({}, {}, 3), 0.0);
}

}  // namespace
}  // namespace gsj
