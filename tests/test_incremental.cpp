// Incremental data plane (docs/STREAMING.md): the mutation log and
// churn summaries, cell-granular grid repair and workload patching,
// streaming pair deltas, and the engine/service cache-repair paths.
// The correctness bar throughout is bit-identity: a repaired artifact
// must be indistinguishable from one rebuilt from scratch, and a delta
// must equal the literal set difference of brute-force joins.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "data/churn.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "grid/grid_index.hpp"
#include "grid/workload.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sj/delta.hpp"
#include "sj/engine.hpp"
#include "sj/reference.hpp"
#include "sj/selfjoin.hpp"
#include "sj/service.hpp"

namespace gsj {
namespace {

Dataset make_points(std::initializer_list<std::array<double, 2>> pts) {
  Dataset ds(2);
  for (const auto& p : pts) ds.push_back(std::span<const double>(p));
  return ds;
}

/// n 2-d points in tight uniform blobs around `clusters` centers spread
/// across [0.1, 0.9]^2 — dense cells plus empty space between them.
Dataset make_clusters(std::size_t n, std::uint64_t seed, int clusters,
                      double radius) {
  Xoshiro256 rng(seed);
  std::vector<std::array<double, 2>> centers(
      static_cast<std::size_t>(clusters));
  for (auto& c : centers) {
    c = {rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
  }
  Dataset ds(2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = centers[rng.uniform_index(centers.size())];
    const std::array<double, 2> p{c[0] + rng.uniform(-radius, radius),
                                  c[1] + rng.uniform(-radius, radius)};
    ds.push_back(std::span<const double>(p));
  }
  return ds;
}

std::vector<ResultPair> oracle_gained(const ResultSet& before,
                                      const ResultSet& after) {
  std::vector<ResultPair> out;
  const auto a = after.pairs();
  const auto b = before.pairs();
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<ResultPair> oracle_lost(const ResultSet& before,
                                    const ResultSet& after) {
  std::vector<ResultPair> out;
  const auto a = after.pairs();
  const auto b = before.pairs();
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(out));
  return out;
}

// ---------------------------------------------------------------------------
// Dataset mutation log.

TEST(MutationLog, InsertEraseMoveAreRecordedWithCoordinates) {
  Dataset ds = make_points({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}});
  const std::uint64_t base = ds.generation();

  const std::array<double, 2> p{3.0, 3.0};
  const PointId added = ds.insert(std::span<const double>(p));
  EXPECT_EQ(added, 3u);
  const std::array<double, 2> q{5.0, 5.0};
  ds.move_point(1, std::span<const double>(q));
  ds.set_coord(0, 1, 9.0);
  ds.erase(2);  // swap-and-pop: old last point (id 3) renamed to 2

  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  ASSERT_EQ(window->size(), 4u);

  const std::span<const Mutation> log = *window;
  EXPECT_EQ(log[0].kind, Mutation::Kind::Insert);
  EXPECT_EQ(log[0].id, 3u);
  EXPECT_DOUBLE_EQ(log[0].new_coords[0], 3.0);

  EXPECT_EQ(log[1].kind, Mutation::Kind::Move);
  EXPECT_EQ(log[1].id, 1u);
  EXPECT_DOUBLE_EQ(log[1].old_coords[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1].new_coords[1], 5.0);

  EXPECT_EQ(log[2].kind, Mutation::Kind::Move);  // set_coord logs a Move
  EXPECT_EQ(log[2].id, 0u);
  EXPECT_DOUBLE_EQ(log[2].old_coords[1], 0.0);
  EXPECT_DOUBLE_EQ(log[2].new_coords[1], 9.0);

  EXPECT_EQ(log[3].kind, Mutation::Kind::Erase);
  EXPECT_EQ(log[3].id, 2u);
  EXPECT_EQ(log[3].renamed_from, 3u);
  EXPECT_DOUBLE_EQ(log[3].old_coords[0], 2.0);

  // The renamed point landed in the vacated slot.
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_DOUBLE_EQ(ds.coord(2, 0), 3.0);
  EXPECT_EQ(ds.generation(), base + 4);
}

TEST(MutationLog, EraseOfLastPointRecordsNoRename) {
  Dataset ds = make_points({{0.0, 0.0}, {1.0, 1.0}});
  const std::uint64_t base = ds.generation();
  ds.erase(1);
  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  ASSERT_EQ(window->size(), 1u);
  EXPECT_EQ((*window)[0].kind, Mutation::Kind::Erase);
  EXPECT_EQ((*window)[0].renamed_from, kInvalidPointId);
}

TEST(MutationLog, WindowSemantics) {
  Dataset ds = make_points({{0.0, 0.0}});
  // Current generation: empty (not nullopt) window.
  const auto now = ds.mutations_since(ds.generation());
  ASSERT_TRUE(now.has_value());
  EXPECT_TRUE(now->empty());
  // A future generation is unanswerable.
  EXPECT_FALSE(ds.mutations_since(ds.generation() + 1).has_value());
}

TEST(MutationLog, WindowTrimsButKeepsRecentHistory) {
  Dataset ds = make_points({{0.0, 0.0}});
  const std::uint64_t base = ds.generation();
  // Blow past 2 * kLogWindow so the amortized trim provably fired.
  const std::size_t total = 2 * Dataset::kLogWindow + 64;
  for (std::size_t i = 0; i < total; ++i) {
    ds.set_coord(0, 0, static_cast<double>(i));
  }
  EXPECT_FALSE(ds.mutations_since(base).has_value());
  // The most recent kLogWindow mutations are always answerable.
  const std::uint64_t recent = ds.generation() - Dataset::kLogWindow;
  const auto window = ds.mutations_since(recent);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->size(), Dataset::kLogWindow);
}

TEST(MutationLog, FillDimBumpsOnceAndInvalidatesHistory) {
  Dataset ds = gen_uniform(32, 3, /*seed=*/5, 0.0, 1.0);
  const std::uint64_t base = ds.generation();
  auto col = ds.fill_dim(1);
  for (auto& v : col) v *= 2.0;
  EXPECT_EQ(ds.generation(), base + 1);
  // Bulk loads are unrepairable: the pre-existing window is lost...
  EXPECT_FALSE(ds.mutations_since(base).has_value());
  // ...but the dataset is immediately loggable again.
  const auto now = ds.mutations_since(ds.generation());
  ASSERT_TRUE(now.has_value());
  EXPECT_TRUE(now->empty());
}

TEST(MutationLog, WideDatasetsSkipLogging) {
  Dataset ds(Mutation::kCoordCap + 1);
  std::vector<double> p(static_cast<std::size_t>(ds.dims()), 0.5);
  const std::uint64_t base = ds.generation();
  ds.push_back(p);
  EXPECT_EQ(ds.generation(), base + 1);
  EXPECT_FALSE(ds.mutations_since(base).has_value());
}

TEST(MutationLog, ReadOnlyAccessDoesNotBumpGeneration) {
  const Dataset ds = gen_uniform(64, 2, /*seed=*/7, 0.0, 1.0);
  const std::uint64_t base = ds.generation();
  double sink = 0.0;
  for (PointId i = 0; i < ds.size(); ++i) {
    for (int d = 0; d < ds.dims(); ++d) sink += ds.coord(i, d);
  }
  const auto lo = ds.min_corner();
  const auto hi = ds.max_corner();
  sink += lo[0] + hi[0];
  EXPECT_EQ(ds.generation(), base);
  EXPECT_GT(sink, 0.0);
}

TEST(MutationLog, BboxCacheTracksMutationsIncludingBoundaryRemoval) {
  Xoshiro256 rng(101);
  Dataset ds(3);
  std::vector<double> p(3);
  for (int i = 0; i < 48; ++i) {
    for (auto& v : p) v = rng.uniform(-5.0, 5.0);
    ds.push_back(p);
  }
  const auto check_bbox = [&] {
    std::vector<double> lo(3, std::numeric_limits<double>::infinity());
    std::vector<double> hi(3, -std::numeric_limits<double>::infinity());
    for (PointId i = 0; i < ds.size(); ++i) {
      for (int d = 0; d < 3; ++d) {
        lo[static_cast<std::size_t>(d)] =
            std::min(lo[static_cast<std::size_t>(d)], ds.coord(i, d));
        hi[static_cast<std::size_t>(d)] =
            std::max(hi[static_cast<std::size_t>(d)], ds.coord(i, d));
      }
    }
    EXPECT_EQ(ds.min_corner(), lo);
    EXPECT_EQ(ds.max_corner(), hi);
  };
  check_bbox();
  for (int step = 0; step < 300; ++step) {
    const auto op = rng.uniform_index(3);
    if (op == 0 || ds.size() <= 2) {
      for (auto& v : p) v = rng.uniform(-5.0, 5.0);
      ds.push_back(p);
    } else if (op == 1) {
      // Bias deletions toward extremes so the shrink path is exercised.
      PointId victim = static_cast<PointId>(rng.uniform_index(ds.size()));
      for (PointId i = 0; i < ds.size(); ++i) {
        if (ds.coord(i, 0) >= ds.max_corner()[0]) victim = i;
      }
      ds.erase(victim);
    } else {
      const auto i = static_cast<PointId>(rng.uniform_index(ds.size()));
      for (auto& v : p) v = rng.uniform(-8.0, 8.0);
      ds.move_point(i, p);
    }
    check_bbox();
  }
}

// ---------------------------------------------------------------------------
// Churn summaries.

TEST(Churn, PureMoveWindow) {
  Dataset ds = make_points({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}});
  const std::uint64_t base = ds.generation();
  ds.set_coord(1, 0, 1.5);
  ds.set_coord(1, 0, 1.75);  // two moves of the same point fold to one
  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  const ChurnSummary churn = summarize_churn(ds, *window);
  EXPECT_TRUE(churn.pure_moves);
  EXPECT_TRUE(churn.removed.empty());
  ASSERT_EQ(churn.touched.size(), 1u);
  EXPECT_EQ(churn.touched[0].id, 1u);
  EXPECT_EQ(churn.touched[0].pre_id, 1u);
  EXPECT_TRUE(churn.touched[0].existed_before);
  EXPECT_DOUBLE_EQ(churn.touched[0].old_coords[0], 1.0);
}

TEST(Churn, InsertThenEraseNetsToNothing) {
  Dataset ds = make_points({{0.0, 0.0}, {1.0, 1.0}});
  const std::uint64_t base = ds.generation();
  const std::array<double, 2> p{4.0, 4.0};
  const PointId added = ds.insert(std::span<const double>(p));
  ds.erase(added);  // added was last: no rename
  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  const ChurnSummary churn = summarize_churn(ds, *window);
  EXPECT_FALSE(churn.pure_moves);
  EXPECT_TRUE(churn.touched.empty());
  EXPECT_TRUE(churn.removed.empty());
}

TEST(Churn, RenameChainTracksPreId) {
  Dataset ds =
      make_points({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}});
  const std::uint64_t base = ds.generation();
  ds.erase(1);  // point 3 renamed to 1
  ds.erase(0);  // point 2 renamed to 0
  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  const ChurnSummary churn = summarize_churn(ds, *window);
  EXPECT_FALSE(churn.pure_moves);
  ASSERT_EQ(churn.touched.size(), 2u);
  EXPECT_EQ(churn.touched[0].id, 0u);
  EXPECT_EQ(churn.touched[0].pre_id, 2u);
  EXPECT_DOUBLE_EQ(churn.touched[0].old_coords[0], 2.0);
  EXPECT_EQ(churn.touched[1].id, 1u);
  EXPECT_EQ(churn.touched[1].pre_id, 3u);
  // Removed entries appear in log order (erase(1) first, then erase(0)).
  ASSERT_EQ(churn.removed.size(), 2u);
  EXPECT_EQ(churn.removed[0].pre_id, 1u);
  EXPECT_DOUBLE_EQ(churn.removed[0].old_coords[0], 1.0);
  EXPECT_EQ(churn.removed[1].pre_id, 0u);
  EXPECT_DOUBLE_EQ(churn.removed[1].old_coords[0], 0.0);
}

// ---------------------------------------------------------------------------
// Grid repair.

TEST(GridRepair, NoOpWhenCurrent) {
  const Dataset ds = gen_uniform(200, 2, 13, 0.0, 1.0);
  GridIndex grid(ds, 0.1);
  const std::uint64_t key = grid.content_key();
  const GridRepairOutcome rep = grid.repair();
  EXPECT_TRUE(rep.repaired);
  EXPECT_TRUE(rep.dirty_cell_ids.empty());
  EXPECT_EQ(rep.touched_points, 0u);
  EXPECT_EQ(grid.content_key(), key);
}

TEST(GridRepair, InteriorMoveRepairsIncrementally) {
  Dataset ds = gen_uniform(400, 2, 17, 0.0, 1.0);
  GridIndex grid(ds, 0.08);
  // Move an interior point across cells without widening the bbox.
  const std::array<double, 2> p{0.512, 0.488};
  ds.move_point(7, std::span<const double>(p));
  const GridRepairOutcome rep = grid.repair();
  EXPECT_TRUE(rep.repaired);
  EXPECT_EQ(rep.touched_points, 1u);
  EXPECT_TRUE(rep.pure_moves);
  EXPECT_FALSE(rep.dirty_cell_ids.empty());
  const GridIndex fresh(ds, 0.08);
  EXPECT_EQ(grid.content_key(), fresh.content_key());
}

TEST(GridRepair, FallsBackWhenShapeChangesButStaysCorrect) {
  Dataset ds = gen_uniform(300, 2, 19, 0.0, 1.0);
  GridIndex grid(ds, 0.08);
  // An insert far outside the bbox changes the grid shape.
  const std::array<double, 2> p{9.0, 9.0};
  (void)ds.insert(std::span<const double>(p));
  const GridRepairOutcome rep = grid.repair();
  EXPECT_FALSE(rep.repaired);
  const GridIndex fresh(ds, 0.08);
  EXPECT_EQ(grid.content_key(), fresh.content_key());
  EXPECT_EQ(grid.generation(), ds.generation());
}

TEST(GridRepair, FallsBackAfterBulkLoad) {
  Dataset ds = gen_uniform(300, 2, 23, 0.0, 1.0);
  GridIndex grid(ds, 0.08);
  auto col = ds.fill_dim(0);
  for (auto& v : col) v = std::min(1.0, std::max(0.0, v * 0.5 + 0.25));
  const GridRepairOutcome rep = grid.repair();
  EXPECT_FALSE(rep.repaired);
  EXPECT_EQ(grid.content_key(), GridIndex(ds, 0.08).content_key());
}

// ---------------------------------------------------------------------------
// Workload patching.

TEST(WorkloadPatch, MatchesFromScratchForEveryPattern) {
  Xoshiro256 rng(211);
  Dataset ds = make_clusters(350, /*seed=*/29, /*clusters=*/6, /*radius=*/0.04);
  // Pin the bounding box with corner sentinels so interior churn can
  // never change the grid shape (a shape change forces the rebuild
  // fallback, which this test is explicitly not about).
  const std::size_t movable = ds.size();
  for (const std::array<double, 2> c :
       {std::array<double, 2>{0.0, 0.0}, std::array<double, 2>{1.0, 1.0}}) {
    ds.push_back(std::span<const double>(c));
  }
  const double eps = 0.05;
  for (const CellPattern pattern :
       {CellPattern::Full, CellPattern::Unicomp, CellPattern::LidUnicomp}) {
    SCOPED_TRACE(to_string(pattern));
    GridIndex grid(ds, eps);
    const std::vector<std::uint64_t> old_pw = point_workloads(grid, pattern);
    const std::vector<PointId> old_order = sort_by_workload(grid, pattern);

    // A small interior churn batch the repair path can absorb.
    std::vector<double> p(2);
    for (int m = 0; m < 6; ++m) {
      const auto i = static_cast<PointId>(rng.uniform_index(movable));
      for (auto& v : p) v = rng.uniform(0.2, 0.8);
      ds.move_point(i, p);
    }
    const GridRepairOutcome rep = grid.repair();
    ASSERT_TRUE(rep.repaired);

    const WorkloadPatchResult patch = patch_workloads(
        grid, pattern, rep.dirty_cell_ids, old_pw, old_order);
    EXPECT_EQ(patch.point_workloads, point_workloads(grid, pattern));
    EXPECT_EQ(patch.order, sort_by_workload(grid, pattern));
    EXPECT_GT(patch.recomputed_cells, 0u);
    EXPECT_LT(patch.recomputed_cells, grid.cells().size());

    // An unbuilt order stays unbuilt.
    const WorkloadPatchResult no_order = patch_workloads(
        grid, pattern, rep.dirty_cell_ids, old_pw, std::span<const PointId>{});
    EXPECT_TRUE(no_order.order.empty());
    EXPECT_EQ(no_order.point_workloads, patch.point_workloads);
  }
}

// ---------------------------------------------------------------------------
// Streaming pair deltas.

TEST(Delta, HandComputedGainsAndLosses) {
  // Two pairs within eps=0.5: (0,1) and (2,3). Move 1 away from 0 and
  // insert a point near 2.
  Dataset ds = make_points(
      {{0.0, 0.0}, {0.3, 0.0}, {5.0, 5.0}, {5.3, 5.0}});
  const double eps = 0.5;
  const ResultSet before = brute_force_join(ds, eps);
  const std::uint64_t base = ds.generation();

  const std::array<double, 2> away{2.5, 2.5};
  ds.move_point(1, std::span<const double>(away));
  const std::array<double, 2> near2{5.1, 5.2};
  (void)ds.insert(std::span<const double>(near2));

  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  const ChurnSummary churn = summarize_churn(ds, *window);
  GridIndex grid(ds, eps);
  const PairDelta delta = compute_pair_delta(grid, churn, eps);

  const ResultSet after = brute_force_join(ds, eps);
  EXPECT_EQ(delta.gained, oracle_gained(before, after));
  EXPECT_EQ(delta.lost, oracle_lost(before, after));
  EXPECT_EQ(delta.stats.touched_points, 2u);
  EXPECT_EQ(delta.stats.removed_points, 0u);
  EXPECT_GT(delta.stats.candidates, 0u);
}

TEST(Delta, EraseRenameAliasLabelsLostPairsWithBaseIds) {
  // Erase a point with neighbors while the last point is renamed into
  // its slot — the adversarial id-aliasing case.
  Dataset ds = make_points(
      {{0.0, 0.0}, {0.2, 0.0}, {3.0, 3.0}, {0.1, 0.1}});
  const double eps = 0.5;
  const ResultSet before = brute_force_join(ds, eps);
  const std::uint64_t base = ds.generation();
  ds.erase(1);  // id 3 (a neighbor of 0) renamed to 1

  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  const ChurnSummary churn = summarize_churn(ds, *window);
  GridIndex grid(ds, eps);
  const PairDelta delta = compute_pair_delta(grid, churn, eps);

  const ResultSet after = brute_force_join(ds, eps);
  EXPECT_EQ(delta.gained, oracle_gained(before, after));
  EXPECT_EQ(delta.lost, oracle_lost(before, after));
  EXPECT_EQ(delta.stats.removed_points, 1u);
}

TEST(Delta, QuiescentWindowIsEmpty) {
  Dataset ds = gen_uniform(100, 2, 37, 0.0, 1.0);
  const std::uint64_t base = ds.generation();
  const auto window = ds.mutations_since(base);
  ASSERT_TRUE(window.has_value());
  const ChurnSummary churn = summarize_churn(ds, *window);
  GridIndex grid(ds, 0.1);
  const PairDelta delta = compute_pair_delta(grid, churn, 0.1);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.stats.candidates, 0u);
}

// ---------------------------------------------------------------------------
// Engine: cache repair and delta_join.

TEST(EngineIncremental, ReadOnlyTraversalLeavesCachesWarm) {
  const Dataset ds = gen_uniform(800, 2, 41, 0.0, 1.0);
  obs::Registry metrics;
  EngineConfig ecfg;
  ecfg.obs.metrics = &metrics;
  JoinEngine engine(ecfg);
  PreparedDataset prep = engine.prepare(ds);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = false;
  (void)engine.run(prep, cfg);
  const std::uint64_t misses = metrics.counter("sj.cache.grid.misses").value();

  // The regression this guards: coord() used to be non-const-only and
  // bump the generation, so a read-only pass cooled every cache.
  double sink = 0.0;
  for (PointId i = 0; i < ds.size(); ++i) sink += ds.coord(i, 0);
  EXPECT_GT(sink, 0.0);

  (void)engine.run(prep, cfg);
  EXPECT_EQ(metrics.counter("sj.cache.grid.misses").value(), misses);
  EXPECT_GE(metrics.counter("sj.cache.grid.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.cache.invalidations").value(), 0u);
  EXPECT_EQ(metrics.counter("sj.incr.repairs").value(), 0u);
}

TEST(EngineIncremental, WarmRunAfterChurnRepairsAndMatchesCold) {
  Dataset ds = gen_uniform(600, 2, 43, 0.0, 1.0);
  obs::Registry metrics;
  EngineConfig ecfg;
  ecfg.obs.metrics = &metrics;
  JoinEngine engine(ecfg);
  PreparedDataset prep = engine.prepare(ds);
  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  (void)engine.run(prep, cfg);

  std::vector<double> p(2);
  Xoshiro256 rng(307);
  for (int m = 0; m < 5; ++m) {
    const auto i = static_cast<PointId>(rng.uniform_index(ds.size()));
    for (auto& v : p) v = rng.uniform(0.1, 0.9);
    ds.move_point(i, p);
  }

  const SelfJoinOutput warm = engine.run(prep, cfg);
  EXPECT_GE(metrics.counter("sj.incr.repairs").value(), 1u);
  EXPECT_GT(metrics.counter("sj.incr.repaired_cells").value(), 0u);
  EXPECT_EQ(metrics.counter("sj.incr.rebuild_fallbacks").value(), 0u);

  JoinEngine cold;
  const SelfJoinOutput want = cold.self_join(ds, cfg);
  EXPECT_EQ(warm.results.pairs(), want.results.pairs());
  EXPECT_EQ(warm.stats.kernel.busy_cycles, want.stats.kernel.busy_cycles);
  EXPECT_EQ(warm.stats.kernel.makespan_cycles,
            want.stats.kernel.makespan_cycles);
}

TEST(EngineIncremental, DeltaJoinMatchesOracleDiff) {
  Dataset ds = make_clusters(300, /*seed=*/47, /*clusters=*/5, /*radius=*/0.05);
  const double eps = 0.06;
  JoinEngine engine;
  PreparedDataset prep = engine.prepare(ds);
  SelfJoinConfig cfg = SelfJoinConfig::combined(eps);
  cfg.store_pairs = true;
  (void)engine.run(prep, cfg);

  const ResultSet before = brute_force_join(ds, eps);
  const std::uint64_t base = ds.generation();
  Xoshiro256 rng(401);
  std::vector<double> p(2);
  for (int m = 0; m < 8; ++m) {
    const auto op = rng.uniform_index(3);
    if (op == 0) {
      for (auto& v : p) v = rng.uniform(0.0, 1.0);
      (void)ds.insert(p);
    } else if (op == 1 && ds.size() > 1) {
      ds.erase(static_cast<PointId>(rng.uniform_index(ds.size())));
    } else {
      const auto i = static_cast<PointId>(rng.uniform_index(ds.size()));
      for (auto& v : p) v = rng.uniform(0.0, 1.0);
      ds.move_point(i, p);
    }
  }

  const std::optional<PairDelta> delta = engine.delta_join(prep, eps, base);
  ASSERT_TRUE(delta.has_value());
  const ResultSet after = brute_force_join(ds, eps);
  EXPECT_EQ(delta->gained, oracle_gained(before, after));
  EXPECT_EQ(delta->lost, oracle_lost(before, after));
}

TEST(EngineIncremental, DeltaJoinRefusesLostWindow) {
  Dataset ds = gen_uniform(100, 2, 53, 0.0, 1.0);
  JoinEngine engine;
  PreparedDataset prep = engine.prepare(ds);
  const std::uint64_t base = ds.generation();
  auto col = ds.fill_dim(0);  // unrepairable: log window discarded
  for (auto& v : col) v *= 0.5;
  EXPECT_FALSE(engine.delta_join(prep, 0.1, base).has_value());
}

// ---------------------------------------------------------------------------
// Service: sync repair, selective result-cache invalidation,
// subscriptions.

TEST(ServiceIncremental, SyncRepairsGridsAndPatchesPlans) {
  Dataset ds = gen_uniform(900, 2, 59, 0.0, 1.0);
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  SelfJoinConfig cfg = SelfJoinConfig::combined(0.05);
  cfg.store_pairs = true;
  (void)svc.run(*sd, cfg);
  ASSERT_EQ(sd->cached_grid_count(), 1u);

  std::vector<double> p{0.42, 0.58};
  ds.move_point(11, p);

  const SelfJoinOutput warm = svc.run(*sd, cfg);
  EXPECT_GE(metrics.counter("sj.incr.repairs").value(), 1u);
  EXPECT_GE(metrics.counter("sj.incr.plan_patches").value(), 1u);
  EXPECT_EQ(metrics.counter("sj.incr.rebuild_fallbacks").value(), 0u);

  JoinEngine cold;
  const SelfJoinOutput want = cold.self_join(ds, cfg);
  EXPECT_EQ(warm.results.pairs(), want.results.pairs());
  EXPECT_EQ(warm.stats.kernel.busy_cycles, want.stats.kernel.busy_cycles);

  // The repaired grid's digest matches a from-scratch index.
  const auto digests = sd->cached_grid_digests();
  ASSERT_EQ(digests.size(), 1u);
  EXPECT_EQ(digests[0].generation, ds.generation());
  EXPECT_EQ(digests[0].content_key,
            GridIndex(ds, digests[0].epsilon).content_key());
}

TEST(ServiceIncremental, ResultCacheSurvivesFarPureMove) {
  // Two tight clusters plus one isolated wanderer far from both; moving
  // the wanderer cannot change any ε pair, so cached results survive.
  Dataset ds = make_clusters(400, /*seed=*/61, /*clusters=*/2, /*radius=*/0.02);
  const std::array<double, 2> lone{10.0, 10.0};
  const PointId wanderer = ds.insert(std::span<const double>(lone));

  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinRequest req;
  req.config = SelfJoinConfig::combined(0.05);
  req.config.store_pairs = true;
  const JoinResponse cold = svc.submit(sd, req).get();
  ASSERT_EQ(cold.status, JoinStatus::Ok) << cold.error;
  EXPECT_EQ(cold.breakdown.served_from, obs::ServedFrom::Execution);

  // Nudge the wanderer inside its own empty neighborhood (and inside
  // the bbox so the grid repair stays incremental).
  const std::array<double, 2> nudged{9.9, 9.9};
  ds.move_point(wanderer, std::span<const double>(nudged));

  const JoinResponse warm = svc.submit(sd, req).get();
  ASSERT_EQ(warm.status, JoinStatus::Ok) << warm.error;
  EXPECT_EQ(warm.breakdown.served_from, obs::ServedFrom::ResultCache);
  EXPECT_EQ(warm.output.results.pairs(), cold.output.results.pairs());
  EXPECT_GE(metrics.counter("svc.result_cache.repair_kept").value(), 1u);

  // Correctness check against a cold engine on the mutated dataset.
  JoinEngine engine;
  const SelfJoinOutput want = engine.self_join(ds, req.config);
  EXPECT_EQ(warm.output.results.pairs(), want.results.pairs());
}

TEST(ServiceIncremental, ResultCacheDropsEntryTouchedByNearMove) {
  Dataset ds = make_clusters(400, /*seed=*/67, /*clusters=*/2, /*radius=*/0.02);
  const std::array<double, 2> lone{10.0, 10.0};
  const PointId wanderer = ds.insert(std::span<const double>(lone));

  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  JoinRequest req;
  req.config = SelfJoinConfig::combined(0.05);
  req.config.store_pairs = true;
  const JoinResponse cold = svc.submit(sd, req).get();
  ASSERT_EQ(cold.status, JoinStatus::Ok) << cold.error;

  // Drop the wanderer into cluster territory: its ε neighborhood gains
  // members, so the cached answer is stale and must not serve.
  std::vector<double> into_cluster{ds.coord(0, 0), ds.coord(0, 1)};
  ds.move_point(wanderer, into_cluster);

  const JoinResponse fresh = svc.submit(sd, req).get();
  ASSERT_EQ(fresh.status, JoinStatus::Ok) << fresh.error;
  EXPECT_EQ(fresh.breakdown.served_from, obs::ServedFrom::Execution);
  EXPECT_GE(metrics.counter("svc.result_cache.invalidations").value(), 1u);

  JoinEngine engine;
  const SelfJoinOutput want = engine.self_join(ds, req.config);
  EXPECT_EQ(fresh.output.results.pairs(), want.results.pairs());
}

TEST(ServiceIncremental, SubscriptionDeliversIncrementalDeltas) {
  Dataset ds = make_clusters(250, /*seed=*/71, /*clusters=*/4, /*radius=*/0.04);
  const double eps = 0.06;
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);

  const JoinService::SubscriptionId sub = svc.subscribe(sd, eps);
  EXPECT_EQ(svc.subscription_count(), 1u);
  EXPECT_EQ(svc.snapshot().subscriptions, 1u);

  // A quiescent poll is empty and not a fallback.
  const JoinService::DeltaPoll quiet = svc.poll(sub);
  EXPECT_FALSE(quiet.fallback);
  EXPECT_TRUE(quiet.delta.empty());
  EXPECT_EQ(quiet.generation, ds.generation());

  Xoshiro256 rng(503);
  std::vector<double> p(2);
  ResultSet before = brute_force_join(ds, eps);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    for (int m = 0; m < 6; ++m) {
      const auto op = rng.uniform_index(3);
      if (op == 0) {
        for (auto& v : p) v = rng.uniform(0.0, 1.0);
        (void)ds.insert(p);
      } else if (op == 1 && ds.size() > 1) {
        ds.erase(static_cast<PointId>(rng.uniform_index(ds.size())));
      } else {
        const auto i = static_cast<PointId>(rng.uniform_index(ds.size()));
        for (auto& v : p) v = rng.uniform(0.0, 1.0);
        ds.move_point(i, p);
      }
    }
    const JoinService::DeltaPoll dp = svc.poll(sub);
    const ResultSet after = brute_force_join(ds, eps);
    EXPECT_EQ(dp.generation, ds.generation());
    EXPECT_EQ(dp.delta.gained, oracle_gained(before, after));
    EXPECT_EQ(dp.delta.lost, oracle_lost(before, after));
    before = std::move(after);
  }
  EXPECT_GE(metrics.counter("svc.stream.polls").value(), 4u);

  svc.unsubscribe(sub);
  EXPECT_EQ(svc.subscription_count(), 0u);
}

TEST(ServiceIncremental, SubscriptionFallsBackAfterBulkLoad) {
  Dataset ds = gen_uniform(200, 2, 73, 0.0, 1.0);
  const double eps = 0.08;
  obs::Registry metrics;
  ServiceConfig scfg;
  scfg.obs.metrics = &metrics;
  JoinService svc(scfg);
  const auto sd = svc.attach(ds);
  const JoinService::SubscriptionId sub = svc.subscribe(sd, eps);

  const ResultSet before = brute_force_join(ds, eps);
  auto col = ds.fill_dim(1);  // discards the mutation window
  for (auto& v : col) v = std::min(1.0, std::max(0.0, v * 0.7));

  const JoinService::DeltaPoll dp = svc.poll(sub);
  EXPECT_TRUE(dp.fallback);
  const ResultSet after = brute_force_join(ds, eps);
  EXPECT_EQ(dp.delta.gained, oracle_gained(before, after));
  EXPECT_EQ(dp.delta.lost, oracle_lost(before, after));
  EXPECT_GE(metrics.counter("svc.stream.fallbacks").value(), 1u);

  // The fallback resynchronized the retained snapshot: further
  // incremental polls pick up from the new baseline.
  std::vector<double> p{0.5, 0.35};
  ds.move_point(3, p);
  const JoinService::DeltaPoll dp2 = svc.poll(sub);
  EXPECT_FALSE(dp2.fallback);
  const ResultSet after2 = brute_force_join(ds, eps);
  EXPECT_EQ(dp2.delta.gained, oracle_gained(after, after2));
  EXPECT_EQ(dp2.delta.lost, oracle_lost(after, after2));
  svc.unsubscribe(sub);
}

}  // namespace
}  // namespace gsj
