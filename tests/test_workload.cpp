// Unit/property tests: workload quantification and SORTBYWL ordering
// (§III-C).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hpp"
#include "data/generators.hpp"
#include "grid/workload.hpp"

namespace gsj {
namespace {

TEST(Workload, CellWorkloadCountsCandidates) {
  // Two cells, 3 and 2 points, adjacent; under FULL each cell sees the
  // other plus itself.
  Dataset ds(1);
  for (double x : {0.1, 0.2, 0.3}) ds.push_back({&x, 1});
  for (double x : {1.1, 1.2}) ds.push_back({&x, 1});
  const GridIndex g(ds, 1.0);
  ASSERT_EQ(g.cells().size(), 2u);
  const auto wl = cell_workloads(g, CellPattern::Full);
  EXPECT_EQ(wl[0], 5u);  // 3 own + 2 neighbor
  EXPECT_EQ(wl[1], 5u);  // 2 own + 3 neighbor
}

TEST(Workload, PointWorkloadMatchesOwningCell) {
  const Dataset ds = gen_exponential(2000, 2, 4);
  const GridIndex g(ds, 0.05);
  const auto cw = cell_workloads(g, CellPattern::LidUnicomp);
  const auto pw = point_workloads(g, CellPattern::LidUnicomp);
  for (PointId p = 0; p < ds.size(); ++p) {
    EXPECT_EQ(pw[p], cw[g.cell_of_point(p)]);
  }
}

TEST(Workload, SortByWorkloadIsNonIncreasing) {
  const Dataset ds = gen_exponential(5000, 2, 6);
  const GridIndex g(ds, 0.05);
  const auto pw = point_workloads(g, CellPattern::Full);
  const auto order = sort_by_workload(g, CellPattern::Full);
  ASSERT_EQ(order.size(), ds.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(pw[order[i - 1]], pw[order[i]]);
  }
  // It must be a permutation.
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<PointId>(i));
  }
}

TEST(Workload, ExponentialDataIsHeavilySkewed) {
  // The premise of §III-C: per-point workloads on exponential data are
  // far more dispersed than on uniform data (relative to their means).
  const Dataset expo = gen_exponential(20000, 2, 9);
  const Dataset unif = gen_uniform(20000, 2, 9);
  const GridIndex ge(expo, 0.005);
  const GridIndex gu(unif, 1.0);
  const auto we = point_workloads(ge, CellPattern::Full);
  const auto wu = point_workloads(gu, CellPattern::Full);
  const double cv_e = summarize(std::span<const std::uint64_t>(we)).cv();
  const double cv_u = summarize(std::span<const std::uint64_t>(wu)).cv();
  EXPECT_GT(cv_e, 2.0 * cv_u);
}

TEST(Workload, TotalEvaluationsHalvedByUnidirectionalPatterns) {
  const Dataset ds = gen_uniform(5000, 2, 14);
  const GridIndex g(ds, 2.0);
  const auto full = total_candidate_evaluations(g, CellPattern::Full);
  const auto uni = total_candidate_evaluations(g, CellPattern::Unicomp);
  const auto lid = total_candidate_evaluations(g, CellPattern::LidUnicomp);
  // "both cell access patterns reduce the number of distance
  // calculations by a factor of roughly two" (§IV-C).
  EXPECT_LT(static_cast<double>(uni), 0.6 * static_cast<double>(full));
  EXPECT_LT(static_cast<double>(lid), 0.6 * static_cast<double>(full));
  EXPECT_GT(static_cast<double>(uni), 0.4 * static_cast<double>(full));
  EXPECT_GT(static_cast<double>(lid), 0.4 * static_cast<double>(full));
}

TEST(Workload, LidUnicompBalancesPerCellWork) {
  // On uniform data the per-cell workload variance under LID-UNICOMP
  // must be well below UNICOMP's (the paper's Figure 2 vs Figure 5).
  const Dataset ds = gen_uniform(20000, 2, 15);
  const GridIndex g(ds, 2.0);
  const auto wu = cell_workloads(g, CellPattern::Unicomp);
  const auto wl = cell_workloads(g, CellPattern::LidUnicomp);
  const auto su = summarize(std::span<const std::uint64_t>(wu));
  const auto sl = summarize(std::span<const std::uint64_t>(wl));
  EXPECT_LT(sl.cv(), 0.7 * su.cv());
}

}  // namespace
}  // namespace gsj
