// DBSCAN density-based clustering built on the self-join — the paper's
// headline motivating application (§I cites clustering algorithms as
// consumers of the similarity self-join).
//
// The expensive phase of DBSCAN is exactly one epsilon-self-join: the
// neighbor table gives every point's |N(p)|, core points are those with
// |N(p)| >= minPts, and clusters are the connected components of core
// points (border points attach to any adjacent core's cluster).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "sj/engine.hpp"
#include "sj/neighbor_table.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {

struct DbscanConfig {
  double epsilon = 1.0;
  std::uint32_t min_pts = 4;  ///< |N(p)| threshold, p itself counted
  /// Self-join engine configuration (the pattern/queue/k knobs apply).
  SelfJoinConfig join = SelfJoinConfig::combined(1.0);
};

struct DbscanResult {
  /// Cluster id per point; kNoise for noise points.
  static constexpr std::int32_t kNoise = -1;
  std::vector<std::int32_t> labels;
  std::size_t num_clusters = 0;
  std::size_t num_core = 0;
  std::size_t num_noise = 0;
  SelfJoinStats join_stats;
};

/// Runs DBSCAN over `ds` using the simulated-GPU self-join for the
/// neighborhood phase and a host-side BFS for cluster expansion.
[[nodiscard]] DbscanResult dbscan(const Dataset& ds, const DbscanConfig& cfg);

/// Engine-backed overload: the neighborhood join runs through `engine`
/// against `prep`, so epsilon sweeps (e.g. a DBSCAN parameter search)
/// reuse the cached grid/workload artifacts instead of rebuilding them
/// per call. Results are bit-identical to the one-shot overload.
[[nodiscard]] DbscanResult dbscan(JoinEngine& engine, PreparedDataset& prep,
                                  const DbscanConfig& cfg);

}  // namespace gsj
