#include "sj/dbscan.hpp"

#include <queue>

#include "common/check.hpp"

namespace gsj {

namespace {

/// The join configuration the neighborhood phase runs.
SelfJoinConfig neighborhood_join(const DbscanConfig& cfg) {
  GSJ_CHECK_MSG(cfg.min_pts >= 1, "min_pts must be >= 1");
  SelfJoinConfig join = cfg.join;
  join.epsilon = cfg.epsilon;
  join.store_pairs = true;
  return join;
}

/// Cluster-expansion phase shared by both overloads: core detection
/// from the neighbor table plus BFS over core points.
DbscanResult cluster(const Dataset& ds, const SelfJoinOutput& out,
                     const DbscanConfig& cfg) {
  const std::size_t n = ds.size();
  const NeighborTable nt(out.results, n);

  DbscanResult res;
  res.join_stats = out.stats;
  res.labels.assign(n, DbscanResult::kNoise);

  std::vector<bool> core(n, false);
  for (PointId p = 0; p < n; ++p) {
    core[p] = nt.degree(p) >= cfg.min_pts;
    res.num_core += core[p];
  }

  // BFS over core points; border points take the first adjacent core's
  // cluster (standard DBSCAN tie-breaking).
  std::int32_t next_cluster = 0;
  std::queue<PointId> frontier;
  for (PointId seed = 0; seed < n; ++seed) {
    if (!core[seed] || res.labels[seed] != DbscanResult::kNoise) continue;
    const std::int32_t cid = next_cluster++;
    res.labels[seed] = cid;
    frontier.push(seed);
    while (!frontier.empty()) {
      const PointId p = frontier.front();
      frontier.pop();
      for (const PointId q : nt.neighbors(p)) {
        if (res.labels[q] != DbscanResult::kNoise) continue;
        res.labels[q] = cid;
        if (core[q]) frontier.push(q);
      }
    }
  }
  res.num_clusters = static_cast<std::size_t>(next_cluster);
  for (PointId p = 0; p < n; ++p) {
    res.num_noise += res.labels[p] == DbscanResult::kNoise;
  }
  return res;
}

}  // namespace

DbscanResult dbscan(const Dataset& ds, const DbscanConfig& cfg) {
  const SelfJoinOutput out = self_join(ds, neighborhood_join(cfg));
  return cluster(ds, out, cfg);
}

DbscanResult dbscan(JoinEngine& engine, PreparedDataset& prep,
                    const DbscanConfig& cfg) {
  SelfJoinOutput out = engine.run(prep, neighborhood_join(cfg));
  DbscanResult res = cluster(prep.dataset(), out, cfg);
  engine.recycle(std::move(out));
  return res;
}

}  // namespace gsj
