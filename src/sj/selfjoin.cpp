// Public one-shot API. The pipeline itself lives in the staged engine:
// sj/engine.cpp resolves the plan (grid, workloads, D', estimate,
// batch plan) and sj/execute.cpp drives the batched launches. This
// file keeps the named configurations and the free self_join wrapper.
#include "sj/selfjoin.hpp"

#include <sstream>

#include "sj/engine.hpp"

namespace gsj {

std::string SelfJoinConfig::name() const {
  std::ostringstream os;
  if (work_queue) {
    os << "WORKQUEUE";
  } else if (sort_by_workload) {
    os << "SORTBYWL";
  } else {
    os << "GPUCALCGLOBAL";
  }
  if (pattern != CellPattern::Full) os << '+' << to_string(pattern);
  if (k != 1) os << "+k" << k;
  return os.str();
}

SelfJoinConfig SelfJoinConfig::gpu_calc_global(double eps) {
  SelfJoinConfig c;
  c.epsilon = eps;
  return c;
}

SelfJoinConfig SelfJoinConfig::unicomp(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.pattern = CellPattern::Unicomp;
  return c;
}

SelfJoinConfig SelfJoinConfig::lid_unicomp(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.pattern = CellPattern::LidUnicomp;
  return c;
}

SelfJoinConfig SelfJoinConfig::sort_by_wl(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.sort_by_workload = true;
  return c;
}

SelfJoinConfig SelfJoinConfig::work_queue_cfg(double eps, int k,
                                              CellPattern pattern) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.work_queue = true;
  c.k = k;
  c.pattern = pattern;
  return c;
}

SelfJoinConfig SelfJoinConfig::combined(double eps) {
  return work_queue_cfg(eps, /*k=*/8, CellPattern::LidUnicomp);
}

SelfJoinOutput self_join(const Dataset& ds, const SelfJoinConfig& cfg) {
  // One engine per thread: configs that ask for host threads without
  // supplying a pool reuse the engine's cached pools instead of paying
  // a ThreadPool spawn/join per call, and the scratch arena persists.
  // Each call still gets a fresh PreparedDataset, so one-shot behaviour
  // (no plan caching across calls, no dataset lifetime entanglement) is
  // unchanged.
  thread_local JoinEngine engine;
  return engine.self_join(ds, cfg);
}

}  // namespace gsj
