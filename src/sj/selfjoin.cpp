#include "sj/selfjoin.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "grid/workload.hpp"
#include "simt/counter.hpp"
#include "simt/launch.hpp"

namespace gsj {

std::string SelfJoinConfig::name() const {
  std::ostringstream os;
  if (work_queue) {
    os << "WORKQUEUE";
  } else if (sort_by_workload) {
    os << "SORTBYWL";
  } else {
    os << "GPUCALCGLOBAL";
  }
  if (pattern != CellPattern::Full) os << '+' << to_string(pattern);
  if (k != 1) os << "+k" << k;
  return os.str();
}

SelfJoinConfig SelfJoinConfig::gpu_calc_global(double eps) {
  SelfJoinConfig c;
  c.epsilon = eps;
  return c;
}

SelfJoinConfig SelfJoinConfig::unicomp(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.pattern = CellPattern::Unicomp;
  return c;
}

SelfJoinConfig SelfJoinConfig::lid_unicomp(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.pattern = CellPattern::LidUnicomp;
  return c;
}

SelfJoinConfig SelfJoinConfig::sort_by_wl(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.sort_by_workload = true;
  return c;
}

SelfJoinConfig SelfJoinConfig::work_queue_cfg(double eps, int k,
                                              CellPattern pattern) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.work_queue = true;
  c.k = k;
  c.pattern = pattern;
  return c;
}

SelfJoinConfig SelfJoinConfig::combined(double eps) {
  return work_queue_cfg(eps, /*k=*/8, CellPattern::LidUnicomp);
}

SelfJoinOutput self_join(const Dataset& ds, const SelfJoinConfig& cfg) {
  GSJ_CHECK_MSG(cfg.epsilon > 0.0, "epsilon must be positive");
  GSJ_CHECK_MSG(!ds.empty(), "empty dataset");
  GSJ_CHECK_MSG(cfg.k >= 1 && cfg.device.warp_size % cfg.k == 0,
                "k=" << cfg.k << " must divide warp_size="
                     << cfg.device.warp_size);

  SelfJoinOutput out;
  out.results = ResultSet(cfg.store_pairs);
  Timer host;

  const GridIndex grid(ds, cfg.epsilon);

  // Workload-sorted order D' (only materialized when needed).
  std::vector<PointId> queue_order;
  BatchPlan plan;
  if (cfg.work_queue) {
    const std::vector<std::uint64_t> pw = point_workloads(grid, cfg.pattern);
    queue_order.resize(ds.size());
    std::iota(queue_order.begin(), queue_order.end(), PointId{0});
    std::stable_sort(queue_order.begin(), queue_order.end(),
                     [&pw](PointId a, PointId b) { return pw[a] > pw[b]; });
    plan = plan_queue(grid, cfg.batching, queue_order, pw);
  } else {
    plan = plan_strided(grid, cfg.batching, cfg.sort_by_workload, cfg.pattern);
  }
  out.stats.num_batches = plan.num_batches;
  out.stats.estimated_total_pairs = plan.estimated_total_pairs;
  out.stats.host_prep_seconds = host.seconds();

  simt::DeviceCounter counter;
  std::vector<double> kernel_secs, xfer_secs;
  kernel_secs.reserve(plan.num_batches);
  xfer_secs.reserve(plan.num_batches);

  auto run_batch = [&](std::span<const PointId> points,
                       std::uint64_t queue_len) {
    KernelParams params;
    params.grid = &grid;
    params.pattern = cfg.pattern;
    params.assignment =
        cfg.work_queue ? Assignment::WorkQueue : Assignment::Static;
    params.k = cfg.k;
    params.points = points;
    params.queue = queue_order;
    params.counter = &counter;
    params.device = &cfg.device;
    params.results = &out.results;

    const std::uint64_t groups =
        cfg.work_queue ? queue_len : points.size();
    const std::uint64_t nthreads = groups * static_cast<std::uint64_t>(cfg.k);

    const std::uint64_t pairs_before = out.results.count();
    SelfJoinKernel kernel(params);
    simt::KernelStats ks = simt::launch(cfg.device, nthreads, kernel);
    ks.atomics_executed = kernel.atomics_executed();
    ks.results_emitted = kernel.results_emitted();
    out.stats.kernel.merge(ks);

    const std::uint64_t batch_pairs = out.results.count() - pairs_before;
    out.stats.max_batch_pairs =
        std::max(out.stats.max_batch_pairs, batch_pairs);
    if (cfg.batching.enabled && batch_pairs > cfg.batching.buffer_pairs) {
      out.stats.buffer_overflowed = true;
    }
    kernel_secs.push_back(ks.seconds(cfg.device));
    xfer_secs.push_back(transfer_seconds(batch_pairs, cfg.batching));

    BatchStats bs;
    bs.query_points = groups;
    bs.result_pairs = batch_pairs;
    bs.kernel_seconds = kernel_secs.back();
    bs.transfer_seconds = xfer_secs.back();
    bs.wee_percent = ks.warp_execution_efficiency(cfg.device.warp_size) * 100.0;
    out.stats.batches.push_back(bs);
  };

  if (cfg.work_queue) {
    for (const auto& [begin, end] : plan.queue_ranges) {
      counter.reset(begin);
      run_batch({}, end - begin);
    }
  } else {
    for (const auto& batch : plan.batches) {
      if (!batch.empty()) run_batch(batch, 0);
    }
  }

  out.stats.result_pairs = out.results.count();
  out.stats.kernel_seconds = 0.0;
  for (double s : kernel_secs) out.stats.kernel_seconds += s;
  out.stats.total_seconds =
      pipeline_seconds(kernel_secs, xfer_secs, cfg.batching.nstreams);
  if (cfg.store_pairs) out.results.canonicalize();
  return out;
}

}  // namespace gsj
