// Public one-shot API. The pipeline itself lives in sj/pipeline.hpp
// (plan resolution: grid, workloads, D', estimate, batch plan) and
// sj/execute.cpp (the batched launches); the free wrapper rides the
// process-wide JoinService (sj/service.hpp). This file keeps the named
// configurations and that wrapper.
#include "sj/selfjoin.hpp"

#include <sstream>

#include "sj/service.hpp"

namespace gsj {

std::string SelfJoinConfig::name() const {
  std::ostringstream os;
  if (work_queue) {
    os << "WORKQUEUE";
  } else if (sort_by_workload) {
    os << "SORTBYWL";
  } else {
    os << "GPUCALCGLOBAL";
  }
  if (pattern != CellPattern::Full) os << '+' << to_string(pattern);
  if (k != 1) os << "+k" << k;
  if (mode == JoinMode::RxS) os << "+RXS";
  if (mode == JoinMode::Knn) os << "+KNN" << knn_k;
  return os.str();
}

SelfJoinConfig SelfJoinConfig::gpu_calc_global(double eps) {
  SelfJoinConfig c;
  c.epsilon = eps;
  return c;
}

SelfJoinConfig SelfJoinConfig::unicomp(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.pattern = CellPattern::Unicomp;
  return c;
}

SelfJoinConfig SelfJoinConfig::lid_unicomp(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.pattern = CellPattern::LidUnicomp;
  return c;
}

SelfJoinConfig SelfJoinConfig::sort_by_wl(double eps) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.sort_by_workload = true;
  return c;
}

SelfJoinConfig SelfJoinConfig::work_queue_cfg(double eps, int k,
                                              CellPattern pattern) {
  SelfJoinConfig c = gpu_calc_global(eps);
  c.work_queue = true;
  c.k = k;
  c.pattern = pattern;
  return c;
}

SelfJoinConfig SelfJoinConfig::combined(double eps) {
  return work_queue_cfg(eps, /*k=*/8, CellPattern::LidUnicomp);
}

SelfJoinOutput self_join(const Dataset& ds, const SelfJoinConfig& cfg) {
  // Rides the process-wide JoinService: scratch arenas and host thread
  // pools come from its bounded depots instead of a thread_local engine
  // per calling thread, so resident state no longer grows with the
  // number of threads that ever issued a join (and short-lived caller
  // threads leak nothing). Each call still gets an ephemeral cache
  // shell, so one-shot behaviour (no plan caching across calls, no
  // dataset lifetime entanglement) is unchanged.
  return JoinService::shared().self_join(ds, cfg);
}

SelfJoinOutput rxs_join(const Dataset& r, const Dataset& s,
                        SelfJoinConfig cfg) {
  cfg.mode = JoinMode::RxS;
  if (r.empty() || s.empty()) {
    // An empty side makes the cross-product empty; the pipeline treats
    // an empty *gridded* dataset as a config error (matching Self), so
    // answer here without gridding anything.
    SelfJoinOutput out;
    out.results = ResultSet(cfg.store_pairs);
    return out;
  }
  // Grid the smaller side, probe with the larger: probe cost scales
  // with |probe| × density while grid build scales with the gridded
  // side, so the small-side grid minimizes both. Ties grid S so the
  // emitted (probe, grid) pairs are already (r, s).
  const bool grid_r = r.size() < s.size();
  const Dataset& gridded = grid_r ? r : s;
  const Dataset& probe = grid_r ? s : r;
  cfg.probe = &probe;
  SelfJoinOutput out = JoinService::shared().self_join(gridded, cfg);
  if (grid_r && out.results.stores_pairs()) {
    // Pairs came out as (probe=s, grid=r); the contract is (r, s).
    ResultSet flipped(true);
    flipped.reserve(out.results.count());
    for (const auto& [a, b] : out.results.pairs()) flipped.emit(b, a);
    flipped.canonicalize();
    out.results = std::move(flipped);
  }
  return out;
}

SelfJoinOutput knn_join(const Dataset& ds, const Dataset& queries, int k,
                        SelfJoinConfig cfg) {
  cfg.mode = JoinMode::Knn;
  cfg.probe = &queries;
  cfg.knn_k = k;
  return JoinService::shared().self_join(ds, cfg);
}

}  // namespace gsj
