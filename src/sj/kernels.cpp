#include "sj/kernels.hpp"

#include "common/check.hpp"

namespace gsj {

std::string to_string(Assignment a) {
  return a == Assignment::Static ? "STATIC" : "WORKQUEUE";
}

SelfJoinKernel::SelfJoinKernel(const KernelParams& p) : p_(p) {
  GSJ_CHECK(p.grid != nullptr && p.device != nullptr && p.results != nullptr);
  GSJ_CHECK_MSG(p.k >= 1 && p.device->warp_size % p.k == 0,
                "k=" << p.k << " must divide warp_size="
                     << p.device->warp_size);
  if (p.assignment == Assignment::WorkQueue) {
    GSJ_CHECK(p.counter != nullptr && !p.queue.empty());
  }

  const GridIndex& grid = *p.grid;
  cells_ = grid.cells().data();
  point_ids_ = grid.point_ids().data();
  dims_ = grid.dims();
  for (int d = 0; d < dims_; ++d) {
    coords_[static_cast<std::size_t>(d)] = grid.dataset().dim(d).data();
  }
  rxs_ = p.probe != nullptr;
  if (rxs_) {
    GSJ_CHECK_MSG(p.probe->dims() == dims_,
                  "probe dims=" << p.probe->dims() << " vs grid dims="
                                << dims_);
    for (int d = 0; d < dims_; ++d) {
      qcoords_[static_cast<std::size_t>(d)] = p.probe->dim(d).data();
    }
  } else {
    qcoords_ = coords_;
  }
  eps2_ = grid.epsilon() * grid.epsilon();
  adj_total_ = grid.adjacency_volume();
  adj_center_ = (adj_total_ - 1) / 2;  // all offsets zero
  unidirectional_ = !rxs_ && is_unidirectional(p.pattern);
  cost_dist_ = p.device->cost_dist(dims_);
}

simt::InitResult SelfJoinKernel::init_lane(LaneState& s,
                                           const simt::LaneCtx& ctx,
                                           simt::WarpScratch& scratch) {
  const auto k = static_cast<std::uint64_t>(p_.k);
  const std::uint64_t group_global = ctx.global_thread_id / k;
  s.group_rank = static_cast<std::uint32_t>(ctx.global_thread_id % k);

  std::uint32_t cost = 2;  // thread-id math / guard
  if (p_.assignment == Assignment::Static) {
    GSJ_DCHECK(group_global < p_.points.size());
    s.q = p_.points[group_global];
  } else {
    // Cooperative group: the leader lane pops the queue head and
    // broadcasts through warp scratch (lanes initialize in order, so
    // the leader has always run first).
    const std::size_t group_in_warp = static_cast<std::size_t>(ctx.lane_id) / k;
    if (static_cast<std::uint64_t>(ctx.lane_id) % k == 0) {
      scratch[group_in_warp] = p_.counter->fetch_add(1);
      ++atomics_;
      cost += p_.device->cost_atomic;
    }
    const std::uint64_t idx = scratch[group_in_warp];
    GSJ_DCHECK(idx < p_.queue.size());
    s.q = p_.queue[idx];
  }

  const GridIndex& grid = *p_.grid;
  if (rxs_) {
    // Probe points have no cell of their own in the grid: anchor the
    // 3^n window at their banded coordinates (grid/grid_index.hpp).
    // rank / origin_cell / origin_id stay at their defaults — the R×S
    // scan never consults them.
    for (int d = 0; d < dims_; ++d) {
      s.oc[d] = grid.probe_cell_coord(p_.probe->coord(s.q, d), d);
    }
  } else {
    s.rank = grid.grid_rank(s.q);
    s.origin_cell = grid.cell_of_point(s.q);
    s.origin_id = cells_[s.origin_cell].linear_id;
    s.oc = grid.decode(s.origin_id);
  }
  s.adj_cursor = 0;
  s.scanning = false;
  cost += 4;  // point load + cell decode
  return {true, cost};
}

simt::StepResult SelfJoinKernel::step_into(LaneState& s, ResultSet& out,
                                           std::uint64_t& emitted) const {
  return s.scanning ? scan(s, out, emitted) : next_cell(s, out, emitted);
}

simt::StepResult SelfJoinKernel::scan(LaneState& s, ResultSet& out,
                                      std::uint64_t& emitted) const {
  const PointId c = point_ids_[s.cand_pos];
  std::uint32_t cost = cost_dist_;
  if (within_eps(s.q, c)) {
    out.emit(s.q, c);
    ++emitted;
    if (unidirectional_) {
      // This evaluation is the only one for the unordered pair {q, c}:
      // mirror it (the CUDA code writes both pairs to the buffer).
      out.emit(c, s.q);
      ++emitted;
    }
    cost += p_.device->cost_emit;
  }
  s.cand_pos += static_cast<std::uint32_t>(p_.k);
  if (s.cand_pos >= s.cand_end) s.scanning = false;
  return {true, cost};
}

simt::StepResult SelfJoinKernel::next_cell(LaneState& s, ResultSet& out,
                                           std::uint64_t& emitted) const {
  if (s.adj_cursor >= adj_total_) return {false, 1};
  const std::uint64_t cur = s.adj_cursor++;
  std::uint32_t cost = p_.device->cost_pattern_check;

  const GridIndex& grid = *p_.grid;

  if (!rxs_ && cur == adj_center_) {
    // The origin cell itself.
    const GridCell& cell = cells_[s.origin_cell];
    std::uint32_t begin, end = cell.end;
    if (p_.pattern == CellPattern::Full) {
      begin = cell.begin;  // every own-cell point, q included (self pair)
    } else {
      // Rank rule: only own-cell points after q in grid order; each
      // evaluation emits both pairs. The (q,q) self pair is written
      // directly, once per group.
      if (s.group_rank == 0) {
        out.emit(s.q, s.q);
        ++emitted;
        cost += p_.device->cost_emit;
      }
      begin = s.rank + 1;
    }
    begin += s.group_rank;  // k-way split of the candidate range
    if (begin < end) {
      s.cand_pos = begin;
      s.cand_end = end;
      s.scanning = true;
    }
    return {true, cost};
  }

  // Decode the odometer slot into a {-1,0,1}^dims offset (mixed radix,
  // last dimension fastest — matching linear-id order).
  CellCoords nc;
  std::uint64_t rem = cur;
  for (int d = dims_ - 1; d >= 0; --d) {
    const auto off = static_cast<std::int32_t>(rem % 3) - 1;
    rem /= 3;
    const std::int32_t v = s.oc[d] + off;
    if (v < 0 || v >= grid.cells_per_dim(d)) return {true, cost};
    nc[d] = v;
  }

  const std::uint64_t nid = grid.encode(nc);
  // R×S scans every cell of the window — the unidirectional patterns'
  // "evaluate each unordered pair once" trick has nothing to save when
  // queries and candidates come from different datasets.
  if (!rxs_ && !pattern_accepts(p_.pattern, dims_, s.oc, nc, s.origin_id, nid)) {
    return {true, cost};
  }
  const std::size_t nidx = grid.find_cell(nid);
  cost += p_.device->cost_cell_probe;
  if (nidx == GridIndex::npos) return {true, cost};

  const GridCell& cell = cells_[nidx];
  const std::uint32_t begin = cell.begin + s.group_rank;
  if (begin < cell.end) {
    s.cand_pos = begin;
    s.cand_end = cell.end;
    s.scanning = true;
  }
  return {true, cost};
}

}  // namespace gsj
