// JoinEngine: session-scoped execution layer with plan caching and
// scratch-buffer reuse.
//
// The one-shot self_join(ds, cfg) rebuilds every plan artifact — the
// epsilon grid, per-point workloads, the workload-sorted order D', the
// result-size estimate — and re-allocates every working buffer on each
// call. Parameter sweeps (multi-epsilon, multi-variant — the paper's
// Tables IV–VI and every figure bench) repeat that host-side work N
// times even though most artifacts only depend on (dataset, epsilon)
// or (dataset, epsilon, pattern), not on the variant being measured.
//
// JoinEngine factors the join into three stages:
//
//   prepare(ds)        -> PreparedDataset   dataset admission
//   [plan]  (internal)                      cache-served artifact resolution
//   run(prepared, cfg) -> SelfJoinOutput    batched execution (sj/execute.hpp)
//
// PreparedDataset carries a keyed LRU cache of plan artifacts:
//
//   GridIndex            keyed by epsilon (bit pattern)
//   workloads + D' order keyed by (GridIndex::content_key, pattern)
//   result-size estimate keyed on top by (sample_fraction, skew) bits
//
// When the Dataset's generation counter (data/dataset.hpp) no longer
// matches the one captured at the last sync, the caches are not
// dropped wholesale: each cached GridIndex is repaired cell-granularly
// from the dataset's mutation log (GridIndex::repair) and the
// dependent workload/D' plans are patched for the affected cells only
// (grid/workload.hpp patch_workloads) — both bit-identical to a
// rebuild, which is what keeps warm runs equal to cold runs under
// churn. Cached result-size estimates are always dropped on churn (a
// cold run would re-derive them from the changed data). Only when the
// mutation window is unavailable — too much churn, a bulk load, a
// grid-shape change — do the caches fall back to the old drop-
// everything behaviour. Grid and plan caches are bounded
// (EngineConfig) with least-recently-used eviction.
//
// Correctness bar: a cache-served run is bit-identical to a cold run —
// same result pairs, same SelfJoinStats, and byte-identical logical
// traces — for every variant, sequentially and at any host thread
// count. The per-run observability channel (SelfJoinConfig::tracer /
// ::metrics) sees the exact same span sequence and counters on a hit
// as on a miss; the *engine's* own channel (EngineConfig::obs) carries
// the cache story: "prepare" / "plan_reuse" spans and the sj.cache.*
// hit/miss/evict counters.
//
// The engine also owns the host ThreadPool(s) — configs that ask for
// host threads without supplying a pool get a cached, engine-owned one
// instead of a per-call spawn/join cycle — and a scratch arena whose
// buffers (result pairs, per-batch stats, slot accounting) persist
// across run() calls; recycle(std::move(output)) returns a consumed
// output's allocations to the arena.
//
// Thread safety: a JoinEngine and its PreparedDatasets are
// single-threaded by design — one owner thread at a time. Concurrent
// callers belong on JoinService (sj/service.hpp), which shares these
// same caches behind a reader/writer lock with single-flight builds;
// the free self_join wrapper routes through the process-wide service,
// so it no longer keeps a thread_local engine per caller thread.
// Observability sinks remain internally locked as before.
//
// See docs/ENGINE.md for the cache-key derivation, the invalidation
// rules and measured reuse wins, and docs/SERVICE.md for the
// concurrent layer on top.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/context.hpp"
#include "sj/delta.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {

class ThreadPool;

namespace detail {
struct ScratchArena;     // sj/execute.hpp
class EnginePlanSource;  // sj/engine.cpp (PlanSource over these caches)
}  // namespace detail

struct EngineConfig {
  /// Bound on cached GridIndex instances per PreparedDataset (one per
  /// distinct epsilon); least-recently-used beyond it. Clamped to >= 1.
  std::size_t max_cached_grids = 4;
  /// Bound on cached workload/order entries per PreparedDataset (one
  /// per distinct (grid, pattern)); LRU beyond it. Clamped to >= 1.
  std::size_t max_cached_plans = 8;

  // --- the engine's own observability channel (optional, non-owning).
  // Deliberately separate from the per-run SelfJoinConfig sinks so that
  // cache-dependent events never perturb per-run traces. The same
  // ObsContext value can be handed to a ServiceConfig, so an engine and
  // a service share one registry by construction (obs/context.hpp). ---
  /// obs.tracer receives "prepare" spans and a "plan_reuse" span per
  /// cache-served run; obs.metrics receives the "sj.cache.*" counters:
  /// aggregate hits/misses plus per-artifact grid/workload/order/
  /// estimate breakdowns, evictions, invalidations.
  obs::ObsContext obs;
};

class JoinEngine;

/// A dataset admitted to an engine, carrying the plan-artifact caches.
/// Holds a reference to the Dataset — it must outlive this object.
/// Move-only; create via JoinEngine::prepare.
class PreparedDataset {
 public:
  PreparedDataset(PreparedDataset&&) noexcept = default;
  PreparedDataset& operator=(PreparedDataset&&) noexcept = default;
  PreparedDataset(const PreparedDataset&) = delete;
  PreparedDataset& operator=(const PreparedDataset&) = delete;

  [[nodiscard]] const Dataset& dataset() const noexcept { return *ds_; }
  /// Dataset generation captured at the last cache sync; a mismatch
  /// with dataset().generation() means the caches are stale and will be
  /// dropped on the next run.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  [[nodiscard]] std::size_t cached_grid_count() const noexcept {
    return grids_.size();
  }
  [[nodiscard]] std::size_t cached_plan_count() const noexcept {
    return plans_.size();
  }

 private:
  friend class JoinEngine;
  friend class detail::EnginePlanSource;
  explicit PreparedDataset(const Dataset& ds)
      : ds_(&ds), generation_(ds.generation()) {}

  /// Estimates keyed by (sample_fraction bits, inject_estimator_skew
  /// bits, probe signature) — detail::EstimateKey (sj/pipeline.hpp).
  /// Skew is part of the key so fault-injection runs never collide
  /// with honest ones; the probe signature (0 for Self) keeps R×S
  /// estimates of different probe datasets/generations apart.
  using EstimateMap =
      std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
               std::uint64_t>;

  struct GridEntry {
    std::uint64_t eps_bits = 0;
    std::unique_ptr<GridIndex> grid;
    /// Strided estimates depend only on the grid (not the pattern), so
    /// they live here rather than on a PlanEntry.
    EstimateMap strided_estimates;
    std::uint64_t last_used = 0;
  };

  struct PlanEntry {
    std::uint64_t grid_key = 0;  ///< GridIndex::content_key()
    CellPattern pattern = CellPattern::Full;
    /// detail::probe_signature of the request that built this entry:
    /// 0 for Self plans (workloads index the gridded dataset), a
    /// probe-identity hash for R×S plans (workloads/D' index the probe
    /// dataset). Part of the match key so the two never alias.
    std::uint64_t probe_sig = 0;
    std::vector<std::uint64_t> workloads;   ///< point_workloads
    std::vector<PointId> queue_order;       ///< D'; filled on first WQ use
    EstimateMap queue_estimates;            ///< first-1% (max strided)
    std::uint64_t last_used = 0;
  };

  const Dataset* ds_;
  std::uint64_t generation_;
  std::uint64_t tick_ = 0;  ///< LRU clock
  std::vector<GridEntry> grids_;
  std::vector<PlanEntry> plans_;
};

class JoinEngine {
 public:
  explicit JoinEngine(EngineConfig cfg = {});
  ~JoinEngine();
  JoinEngine(const JoinEngine&) = delete;
  JoinEngine& operator=(const JoinEngine&) = delete;

  /// Admits a dataset: captures its generation and returns an empty
  /// cache shell; artifacts are built (and cached) lazily by run().
  /// The dataset must outlive the returned PreparedDataset.
  [[nodiscard]] PreparedDataset prepare(const Dataset& ds);

  /// Runs one self-join against the prepared dataset, serving every
  /// plan artifact from the cache when warm. Identical contract to the
  /// free self_join (same validation, same OverflowError behaviour) and
  /// bit-identical output to a cold run.
  [[nodiscard]] SelfJoinOutput run(PreparedDataset& prep,
                                   const SelfJoinConfig& cfg);

  /// One-shot convenience: prepare + run on a fresh PreparedDataset.
  /// No plan caching across calls, but the engine's pools and scratch
  /// arena are still reused.
  [[nodiscard]] SelfJoinOutput self_join(const Dataset& ds,
                                         const SelfJoinConfig& cfg);

  /// Streaming delta join (docs/STREAMING.md): the exact gained/lost
  /// ordered-pair sets of the `epsilon` self-join across the mutation
  /// window [from_generation, now], computed by re-joining only the
  /// churn's ε-neighborhood. Serves the grid from (and repairs) the
  /// same cache run() uses. Returns nullopt when the window is not
  /// available — the dataset's bounded log no longer covers
  /// from_generation, a bulk load intervened, or the dataset is empty
  /// — in which case the caller must fall back to a full join.
  [[nodiscard]] std::optional<PairDelta> delta_join(
      PreparedDataset& prep, double epsilon, std::uint64_t from_generation);

  /// Reclaims a consumed output's allocations (pair buffer, batch
  /// stats, slot vectors) into the scratch arena for the next run.
  void recycle(SelfJoinOutput&& out);

  /// The engine-owned host pool with `num_threads` workers, created on
  /// first use and cached for the engine's lifetime (the fix for
  /// per-call ThreadPool churn). Requires num_threads > 0.
  [[nodiscard]] ThreadPool* pool(int num_threads);

  [[nodiscard]] const EngineConfig& config() const noexcept { return cfg_; }

 private:
  friend class detail::EnginePlanSource;
  /// Brings caches up to date when the dataset generation moved:
  /// repairs grids and patches plans in place, dropping only what
  /// cannot be repaired (see the invalidation notes above).
  void sync_generation(PreparedDataset& prep);
  [[nodiscard]] PreparedDataset::GridEntry& grid_for(PreparedDataset& prep,
                                                     double epsilon,
                                                     ThreadPool* pool,
                                                     bool* hit);
  [[nodiscard]] PreparedDataset::PlanEntry& plan_entry(PreparedDataset& prep,
                                                       const GridIndex& grid,
                                                       CellPattern pattern,
                                                       std::uint64_t probe_sig);
  /// Counts one cache event on the aggregate and per-artifact counters
  /// (no-op without an engine metrics registry).
  void count_cache(const char* artifact, bool hit);

  EngineConfig cfg_;
  std::map<int, std::unique_ptr<ThreadPool>> pools_;
  std::unique_ptr<detail::ScratchArena> scratch_;
};

}  // namespace gsj
