#include "sj/engine.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "data/churn.hpp"
#include "grid/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sj/execute.hpp"
#include "sj/pipeline.hpp"

namespace gsj {

JoinEngine::JoinEngine(EngineConfig cfg)
    : cfg_(cfg), scratch_(std::make_unique<detail::ScratchArena>()) {}

JoinEngine::~JoinEngine() = default;

PreparedDataset JoinEngine::prepare(const Dataset& ds) {
  // Admission is deliberately lazy — caches fill on first use — so
  // prepare() performs no validation beyond what run() will do; the
  // one-shot wrapper must keep the monolith's exact error behaviour.
  const auto sp = obs::span(cfg_.obs.tracer, "prepare");
  return PreparedDataset(ds);
}

ThreadPool* JoinEngine::pool(int num_threads) {
  GSJ_CHECK_MSG(num_threads > 0, "pool requires num_threads > 0");
  auto& slot = pools_[num_threads];
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(static_cast<std::size_t>(num_threads));
  }
  return slot.get();
}

void JoinEngine::recycle(SelfJoinOutput&& out) {
  scratch_->spare_pairs = out.results.take_storage();
  out.stats.batches.clear();
  scratch_->spare_batch_stats = std::move(out.stats.batches);
  out.stats.slots.clear();
  scratch_->spare_slots = std::move(out.stats.slots);
}

void JoinEngine::count_cache(const char* artifact, bool hit) {
  if (cfg_.obs.metrics == nullptr) return;
  obs::Registry& m = *cfg_.obs.metrics;
  m.counter(hit ? "sj.cache.hits" : "sj.cache.misses").add(1);
  m.counter(std::string("sj.cache.") + artifact + (hit ? ".hits" : ".misses"))
      .add(1);
}

void JoinEngine::sync_generation(PreparedDataset& prep) {
  const std::uint64_t g = prep.ds_->generation();
  if (g == prep.generation_) return;
  const bool had = !prep.grids_.empty() || !prep.plans_.empty();
  if (prep.ds_->empty()) {
    // Nothing to index; next run fails validation anyway.
    prep.grids_.clear();
    prep.plans_.clear();
    if (had && cfg_.obs.metrics != nullptr) {
      cfg_.obs.metrics->counter("sj.cache.invalidations").add(1);
    }
    prep.generation_ = g;
    return;
  }

  std::size_t repairs = 0;
  std::size_t fallbacks = 0;
  std::size_t plan_patches = 0;
  std::uint64_t repaired_cells = 0;
  std::vector<std::uint8_t> plan_alive(prep.plans_.size(), 0);
  for (auto& ge : prep.grids_) {
    const std::uint64_t old_key = ge.grid->content_key();
    const GridRepairOutcome oc = ge.grid->repair();
    // Estimates are derived from the data, not the grid shape: a cold
    // run would recompute them, so a warm one must too (bit-identity).
    ge.strided_estimates.clear();
    if (!oc.repaired) {
      // repair() rebuilt from scratch — the grid entry stays valid,
      // but plans keyed to the old content cannot be patched.
      ++fallbacks;
      continue;
    }
    ++repairs;
    repaired_cells += oc.dirty_cell_ids.size();
    const std::uint64_t new_key = ge.grid->content_key();
    for (std::size_t i = 0; i < prep.plans_.size(); ++i) {
      auto& pe = prep.plans_[i];
      if (pe.grid_key != old_key) continue;
      // R×S plans depend on *probe* points; the gridded side's churn
      // changes their candidate counts in ways the cell-granular patch
      // cannot express from the gridded log. Drop, don't patch. (Probe
      // churn needs no handling here: it changes probe_signature, so
      // stale entries become unreachable and age out via LRU.)
      if (pe.probe_sig != 0) continue;
      WorkloadPatchResult patch =
          patch_workloads(*ge.grid, pe.pattern, oc.dirty_cell_ids,
                          pe.workloads, pe.queue_order);
      pe.workloads = std::move(patch.point_workloads);
      pe.queue_order = std::move(patch.order);
      pe.queue_estimates.clear();
      pe.grid_key = new_key;
      plan_alive[i] = 1;
      ++plan_patches;
    }
  }
  // Plans that didn't follow a repaired grid (their grid was evicted,
  // or its repair fell back to a rebuild) are unreachable under their
  // old content key: drop them.
  std::size_t w = 0;
  for (std::size_t i = 0; i < prep.plans_.size(); ++i) {
    if (plan_alive[i] != 0) {
      if (w != i) prep.plans_[w] = std::move(prep.plans_[i]);
      ++w;
    }
  }
  const bool dropped_plans = w != prep.plans_.size();
  prep.plans_.resize(w);

  if (cfg_.obs.metrics != nullptr) {
    obs::Registry& m = *cfg_.obs.metrics;
    if (repairs > 0) {
      m.counter("sj.incr.repairs").add(static_cast<std::uint64_t>(repairs));
      m.counter("sj.incr.repaired_cells")
          .add(repaired_cells);
    }
    if (plan_patches > 0) {
      m.counter("sj.incr.plan_patches")
          .add(static_cast<std::uint64_t>(plan_patches));
    }
    if (fallbacks > 0) {
      m.counter("sj.incr.rebuild_fallbacks")
          .add(static_cast<std::uint64_t>(fallbacks));
    }
    if (had && (fallbacks > 0 || dropped_plans)) {
      m.counter("sj.cache.invalidations").add(1);
    }
  }
  prep.generation_ = g;
}

PreparedDataset::GridEntry& JoinEngine::grid_for(PreparedDataset& prep,
                                                 double epsilon,
                                                 ThreadPool* pool, bool* hit) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(epsilon);
  for (auto& e : prep.grids_) {
    if (e.eps_bits == bits) {
      e.last_used = ++prep.tick_;
      *hit = true;
      count_cache("grid", true);
      return e;
    }
  }
  *hit = false;
  count_cache("grid", false);
  PreparedDataset::GridEntry entry;
  entry.eps_bits = bits;
  entry.grid = std::make_unique<GridIndex>(*prep.ds_, epsilon, pool);
  entry.last_used = ++prep.tick_;
  prep.grids_.push_back(std::move(entry));
  const std::size_t bound = std::max<std::size_t>(1, cfg_.max_cached_grids);
  if (prep.grids_.size() > bound) {
    // The just-inserted entry holds the max tick, so the LRU victim is
    // never it — grids_.back() stays valid across the erase.
    const auto victim = std::min_element(
        prep.grids_.begin(), prep.grids_.end(),
        [](const auto& a, const auto& b) { return a.last_used < b.last_used; });
    prep.grids_.erase(victim);
    if (cfg_.obs.metrics != nullptr) {
      cfg_.obs.metrics->counter("sj.cache.evictions").add(1);
    }
  }
  return prep.grids_.back();
}

PreparedDataset::PlanEntry& JoinEngine::plan_entry(PreparedDataset& prep,
                                                   const GridIndex& grid,
                                                   CellPattern pattern,
                                                   std::uint64_t probe_sig) {
  const std::uint64_t key = grid.content_key();
  for (auto& e : prep.plans_) {
    if (e.grid_key == key && e.pattern == pattern &&
        e.probe_sig == probe_sig) {
      e.last_used = ++prep.tick_;
      return e;
    }
  }
  PreparedDataset::PlanEntry entry;
  entry.grid_key = key;
  entry.pattern = pattern;
  entry.probe_sig = probe_sig;
  entry.last_used = ++prep.tick_;
  prep.plans_.push_back(std::move(entry));
  const std::size_t bound = std::max<std::size_t>(1, cfg_.max_cached_plans);
  if (prep.plans_.size() > bound) {
    const auto victim = std::min_element(
        prep.plans_.begin(), prep.plans_.end(),
        [](const auto& a, const auto& b) { return a.last_used < b.last_used; });
    prep.plans_.erase(victim);
    if (cfg_.obs.metrics != nullptr) {
      cfg_.obs.metrics->counter("sj.cache.evictions").add(1);
    }
  }
  return prep.plans_.back();
}

namespace detail {

/// PlanSource (sj/pipeline.hpp) over the engine's thread-private LRU
/// caches: every resolution mutates the PreparedDataset in place, which
/// is exactly why this backend is single-threaded (the service's
/// locked backend lives in sj/service.cpp). Constructed per-run from
/// the request's config so R×S runs resolve *probe* workloads/orders
/// under probe_signature-keyed plan entries.
class EnginePlanSource {
 public:
  EnginePlanSource(JoinEngine& engine, PreparedDataset& prep,
                   const SelfJoinConfig& cfg)
      : engine_(engine),
        prep_(prep),
        probe_(cfg.mode == JoinMode::RxS ? cfg.probe : nullptr),
        probe_sig_(probe_signature(cfg)) {}

  void sync() { engine_.sync_generation(prep_); }

  ThreadPool* pool(int n) { return engine_.pool(n); }

  obs::Tracer* channel_tracer() { return engine_.config().obs.tracer; }

  // Engine runs are never requests: no request spans, no breakdown.
  obs::RequestObs* request_obs() { return nullptr; }

  void resolve_grid(double eps, ThreadPool* p, bool* hit) {
    ge_ = &engine_.grid_for(prep_, eps, p, hit);
  }

  [[nodiscard]] const GridIndex& grid() const { return *ge_->grid; }

  std::span<const std::uint64_t> resolve_workloads(CellPattern pattern,
                                                   ThreadPool* p) {
    plan_entry(pattern);
    if (pe_->workloads.empty()) {
      engine_.count_cache("workload", false);
      pe_->workloads = probe_ != nullptr
                           ? probe_point_workloads(*ge_->grid, *probe_, p)
                           : point_workloads(*ge_->grid, pattern, p);
    } else {
      engine_.count_cache("workload", true);
    }
    return pe_->workloads;
  }

  std::span<const PointId> resolve_order(CellPattern pattern, ThreadPool* p) {
    plan_entry(pattern);
    if (pe_->queue_order.empty()) {
      engine_.count_cache("order", false);
      pe_->queue_order.resize(probe_ != nullptr ? probe_->size()
                                                : prep_.dataset().size());
      std::iota(pe_->queue_order.begin(), pe_->queue_order.end(), PointId{0});
      parallel_stable_sort(
          pe_->queue_order,
          [&pw = pe_->workloads](PointId a, PointId b) {
            return pw[a] > pw[b];
          },
          p);
    } else {
      engine_.count_cache("order", true);
    }
    return pe_->queue_order;
  }

  std::optional<std::uint64_t> find_estimate(bool queue,
                                             detail::EstimateKey key) {
    const auto& map = queue ? pe_->queue_estimates : ge_->strided_estimates;
    if (const auto it = map.find(key); it != map.end()) {
      engine_.count_cache("estimate", true);
      return it->second;
    }
    engine_.count_cache("estimate", false);
    return std::nullopt;
  }

  void put_estimate(bool queue, detail::EstimateKey key, std::uint64_t value) {
    (queue ? pe_->queue_estimates : ge_->strided_estimates)
        .emplace(key, value);
  }

 private:
  void plan_entry(CellPattern pattern) {
    if (pe_ == nullptr) {
      pe_ = &engine_.plan_entry(prep_, *ge_->grid, pattern, probe_sig_);
    }
  }

  JoinEngine& engine_;
  PreparedDataset& prep_;
  const Dataset* probe_ = nullptr;  ///< R×S only; null for Self/KNN
  std::uint64_t probe_sig_ = 0;
  PreparedDataset::GridEntry* ge_ = nullptr;
  PreparedDataset::PlanEntry* pe_ = nullptr;
};

}  // namespace detail

SelfJoinOutput JoinEngine::run(PreparedDataset& prep,
                               const SelfJoinConfig& cfg) {
  detail::EnginePlanSource src(*this, prep, cfg);
  SelfJoinOutput out;
  detail::plan_and_execute(cfg, prep.dataset(), src, *scratch_,
                           /*cancel=*/nullptr, out);
  return out;
}

SelfJoinOutput JoinEngine::self_join(const Dataset& ds,
                                     const SelfJoinConfig& cfg) {
  PreparedDataset prep = prepare(ds);
  return run(prep, cfg);
}

std::optional<PairDelta> JoinEngine::delta_join(PreparedDataset& prep,
                                                double epsilon,
                                                std::uint64_t from_generation) {
  GSJ_CHECK_MSG(epsilon > 0.0, "delta_join requires epsilon > 0");
  const Dataset& ds = prep.dataset();
  if (ds.empty()) return std::nullopt;
  // Capture the window before sync: sync advances the prepared
  // generation, but the log itself is only bounded by further
  // mutations, so the view stays valid across the repair below.
  const auto window = ds.mutations_since(from_generation);
  if (!window.has_value()) return std::nullopt;
  const ChurnSummary churn = summarize_churn(ds, *window);
  sync_generation(prep);
  bool hit = false;
  auto& ge = grid_for(prep, epsilon, /*pool=*/nullptr, &hit);
  PairDelta delta = compute_pair_delta(*ge.grid, churn, epsilon);
  if (cfg_.obs.metrics != nullptr) {
    cfg_.obs.metrics->counter("sj.incr.delta_joins").add(1);
    cfg_.obs.metrics->counter("sj.incr.delta_candidates")
        .add(delta.stats.candidates);
  }
  return delta;
}

}  // namespace gsj
