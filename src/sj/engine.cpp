#include "sj/engine.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "grid/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sj/execute.hpp"

namespace gsj {

JoinEngine::JoinEngine(EngineConfig cfg)
    : cfg_(cfg), scratch_(std::make_unique<detail::ScratchArena>()) {}

JoinEngine::~JoinEngine() = default;

PreparedDataset JoinEngine::prepare(const Dataset& ds) {
  // Admission is deliberately lazy — caches fill on first use — so
  // prepare() performs no validation beyond what run() will do; the
  // one-shot wrapper must keep the monolith's exact error behaviour.
  const auto sp = obs::span(cfg_.tracer, "prepare");
  return PreparedDataset(ds);
}

ThreadPool* JoinEngine::pool(int num_threads) {
  GSJ_CHECK_MSG(num_threads > 0, "pool requires num_threads > 0");
  auto& slot = pools_[num_threads];
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(static_cast<std::size_t>(num_threads));
  }
  return slot.get();
}

void JoinEngine::recycle(SelfJoinOutput&& out) {
  scratch_->spare_pairs = out.results.take_storage();
  out.stats.batches.clear();
  scratch_->spare_batch_stats = std::move(out.stats.batches);
  out.stats.slots.clear();
  scratch_->spare_slots = std::move(out.stats.slots);
}

void JoinEngine::count_cache(const char* artifact, bool hit) {
  if (cfg_.metrics == nullptr) return;
  obs::Registry& m = *cfg_.metrics;
  m.counter(hit ? "sj.cache.hits" : "sj.cache.misses").add(1);
  m.counter(std::string("sj.cache.") + artifact + (hit ? ".hits" : ".misses"))
      .add(1);
}

void JoinEngine::sync_generation(PreparedDataset& prep) {
  const std::uint64_t g = prep.ds_->generation();
  if (g == prep.generation_) return;
  if (!prep.grids_.empty() || !prep.plans_.empty()) {
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("sj.cache.invalidations").add(1);
    }
  }
  prep.grids_.clear();
  prep.plans_.clear();
  prep.generation_ = g;
}

PreparedDataset::GridEntry& JoinEngine::grid_for(PreparedDataset& prep,
                                                 double epsilon,
                                                 ThreadPool* pool, bool* hit) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(epsilon);
  for (auto& e : prep.grids_) {
    if (e.eps_bits == bits) {
      e.last_used = ++prep.tick_;
      *hit = true;
      count_cache("grid", true);
      return e;
    }
  }
  *hit = false;
  count_cache("grid", false);
  PreparedDataset::GridEntry entry;
  entry.eps_bits = bits;
  entry.grid = std::make_unique<GridIndex>(*prep.ds_, epsilon, pool);
  entry.last_used = ++prep.tick_;
  prep.grids_.push_back(std::move(entry));
  const std::size_t bound = std::max<std::size_t>(1, cfg_.max_cached_grids);
  if (prep.grids_.size() > bound) {
    // The just-inserted entry holds the max tick, so the LRU victim is
    // never it — grids_.back() stays valid across the erase.
    const auto victim = std::min_element(
        prep.grids_.begin(), prep.grids_.end(),
        [](const auto& a, const auto& b) { return a.last_used < b.last_used; });
    prep.grids_.erase(victim);
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("sj.cache.evictions").add(1);
    }
  }
  return prep.grids_.back();
}

PreparedDataset::PlanEntry& JoinEngine::plan_entry(PreparedDataset& prep,
                                                   const GridIndex& grid,
                                                   CellPattern pattern) {
  const std::uint64_t key = grid.content_key();
  for (auto& e : prep.plans_) {
    if (e.grid_key == key && e.pattern == pattern) {
      e.last_used = ++prep.tick_;
      return e;
    }
  }
  PreparedDataset::PlanEntry entry;
  entry.grid_key = key;
  entry.pattern = pattern;
  entry.last_used = ++prep.tick_;
  prep.plans_.push_back(std::move(entry));
  const std::size_t bound = std::max<std::size_t>(1, cfg_.max_cached_plans);
  if (prep.plans_.size() > bound) {
    const auto victim = std::min_element(
        prep.plans_.begin(), prep.plans_.end(),
        [](const auto& a, const auto& b) { return a.last_used < b.last_used; });
    prep.plans_.erase(victim);
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("sj.cache.evictions").add(1);
    }
  }
  return prep.plans_.back();
}

SelfJoinOutput JoinEngine::run(PreparedDataset& prep,
                               const SelfJoinConfig& cfg) {
  const Dataset& ds = prep.dataset();
  GSJ_CHECK_MSG(cfg.epsilon > 0.0, "epsilon must be positive");
  GSJ_CHECK_MSG(!ds.empty(), "empty dataset");
  GSJ_CHECK_MSG(cfg.k >= 1 && cfg.device.warp_size % cfg.k == 0,
                "k=" << cfg.k << " must divide warp_size="
                     << cfg.device.warp_size);
  cfg.batching.validate();
  sync_generation(prep);

  SelfJoinOutput out;
  out.results = ResultSet(cfg.store_pairs);
  if (cfg.store_pairs) {
    // Reuse the arena's spare pair buffer (capacity only; no content).
    out.results.adopt_storage(std::move(scratch_->spare_pairs));
    scratch_->spare_pairs = {};
  }
  Timer host;

  // Host execution pool: when the config asks for worker threads but
  // supplies no external pool, the engine's cached pool of that size is
  // attached — same pool across the grid build, planning and every
  // batch launch, and across run() calls (no per-call spawn/join
  // churn). `device` is the effective config handed to every launch.
  simt::DeviceConfig device = cfg.device;
  if (device.host.num_threads > 0 && device.host.pool == nullptr) {
    device.host.pool = pool(device.host.num_threads);
  }
  ThreadPool* p = device.host.num_threads > 0 ? device.host.pool : nullptr;

  obs::Tracer* tracer = cfg.tracer;
  if (tracer != nullptr) tracer->set_device_config(device);
  auto pipeline_span = obs::span(tracer, "self_join");

  // --- plan stage: resolve every artifact from the cache, computing
  // and caching on miss. The per-run span sequence below is exactly the
  // monolith's (grid_build; for WQ: workload_quantify, sortbywl_sort,
  // batch_plan; otherwise batch_plan with nested sub-spans opened by
  // the planner), so logical traces are byte-identical on hit and miss.
  bool grid_hit = false;
  PreparedDataset::GridEntry* ge = nullptr;
  {
    const auto sp = obs::span(tracer, "grid_build");
    ge = &grid_for(prep, cfg.epsilon, p, &grid_hit);
  }
  const GridIndex& grid = *ge->grid;
  // Engine-channel span marking a cache-served plan stage.
  auto reuse_span =
      obs::span(grid_hit ? cfg_.tracer : nullptr, "plan_reuse");

  const std::pair<std::uint64_t, std::uint64_t> est_key{
      std::bit_cast<std::uint64_t>(cfg.batching.sample_fraction),
      std::bit_cast<std::uint64_t>(cfg.batching.inject_estimator_skew)};

  std::span<const PointId> queue_order;
  BatchPlan plan;
  if (cfg.work_queue) {
    PreparedDataset::PlanEntry& pe = plan_entry(prep, grid, cfg.pattern);
    {
      const auto sp = obs::span(tracer, "workload_quantify");
      if (pe.workloads.empty()) {
        count_cache("workload", false);
        pe.workloads = point_workloads(grid, cfg.pattern, p);
      } else {
        count_cache("workload", true);
      }
    }
    {
      const auto sp = obs::span(tracer, "sortbywl_sort");
      if (pe.queue_order.empty()) {
        count_cache("order", false);
        pe.queue_order.resize(ds.size());
        std::iota(pe.queue_order.begin(), pe.queue_order.end(), PointId{0});
        parallel_stable_sort(
            pe.queue_order,
            [&pw = pe.workloads](PointId a, PointId b) {
              return pw[a] > pw[b];
            },
            p);
      } else {
        count_cache("order", true);
      }
    }
    queue_order = pe.queue_order;
    const auto sp = obs::span(tracer, "batch_plan");
    std::optional<std::uint64_t> est;
    if (const auto it = pe.queue_estimates.find(est_key);
        it != pe.queue_estimates.end()) {
      count_cache("estimate", true);
      est = it->second;
    } else {
      count_cache("estimate", false);
    }
    plan = plan_queue(grid, cfg.batching, queue_order, pe.workloads, tracer,
                      est);
    if (!est.has_value()) {
      pe.queue_estimates.emplace(est_key, plan.estimated_total_pairs);
    }
  } else {
    const auto sp = obs::span(tracer, "batch_plan");
    std::span<const std::uint64_t> pw;
    if (cfg.sort_by_workload) {
      PreparedDataset::PlanEntry& pe = plan_entry(prep, grid, cfg.pattern);
      if (pe.workloads.empty()) {
        count_cache("workload", false);
        pe.workloads = point_workloads(grid, cfg.pattern, p);
      } else {
        count_cache("workload", true);
      }
      pw = pe.workloads;
    }
    std::optional<std::uint64_t> est;
    if (const auto it = ge->strided_estimates.find(est_key);
        it != ge->strided_estimates.end()) {
      count_cache("estimate", true);
      est = it->second;
    } else {
      count_cache("estimate", false);
    }
    plan = plan_strided(grid, cfg.batching, cfg.sort_by_workload, cfg.pattern,
                        tracer, p, pw, est);
    if (!est.has_value()) {
      ge->strided_estimates.emplace(est_key, plan.estimated_total_pairs);
    }
  }
  reuse_span.finish();

  out.stats.num_batches = plan.num_batches;
  out.stats.estimated_total_pairs = plan.estimated_total_pairs;
  out.stats.host_prep_seconds = host.seconds();

  // --- execute stage (sj/execute.cpp) ---
  detail::ExecutionInputs in;
  in.grid = &grid;
  in.plan = &plan;
  in.queue_order = queue_order;
  in.device = device;
  detail::execute_self_join(cfg, in, *scratch_, out);
  return out;
}

SelfJoinOutput JoinEngine::self_join(const Dataset& ds,
                                     const SelfJoinConfig& cfg) {
  PreparedDataset prep = prepare(ds);
  return run(prep, cfg);
}

}  // namespace gsj
