#include "sj/delta.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"

namespace gsj {

namespace {

double dist2_to_point(const Dataset& ds, const double* a, PointId q,
                      int dims) {
  double s = 0.0;
  for (int d = 0; d < dims; ++d) {
    const double diff = a[d] - ds.coord(q, d);
    s += diff * diff;
  }
  return s;
}

double dist2_arrays(const double* a, const double* b, int dims) {
  double s = 0.0;
  for (int d = 0; d < dims; ++d) {
    const double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

void emit_both(std::vector<ResultPair>& out, PointId a, PointId b) {
  out.emplace_back(a, b);
  out.emplace_back(b, a);
}

}  // namespace

PairDelta compute_pair_delta(const GridIndex& grid, const ChurnSummary& churn,
                             double epsilon) {
  GSJ_CHECK_MSG(epsilon > 0.0, "delta join requires epsilon > 0");
  GSJ_CHECK_MSG(epsilon <= grid.epsilon(),
                "delta join needs a grid at least as coarse as the query"
                " (epsilon "
                    << epsilon << " > cell width " << grid.epsilon() << ")");
  const Dataset& ds = grid.dataset();
  GSJ_CHECK_MSG(grid.generation() == ds.generation(),
                "delta join requires a repaired (current) grid");
  const int dims = grid.dims();
  const auto sdims = static_cast<std::size_t>(dims);
  const double eps2 = epsilon * epsilon;

  PairDelta out;
  out.stats.touched_points = churn.touched.size();
  out.stats.removed_points = churn.removed.size();
  if (churn.touched.empty() && churn.removed.empty()) return out;

  std::vector<std::uint8_t> is_touched(ds.size(), 0);
  for (const auto& t : churn.touched) is_touched[t.id] = 1;

  // Pairs involving churn that touched/untouched distances can produce
  // on each side of the window. Untouched points sit at the same
  // coordinates (and ids) in both snapshots, so untouched-untouched
  // pairs cancel in the difference and are never enumerated.
  std::vector<ResultPair> after;
  std::vector<ResultPair> before;

  // --- after side: current positions, current ids ---
  std::array<double, Mutation::kCoordCap> cur{};
  for (const auto& t : churn.touched) {
    after.emplace_back(t.id, t.id);  // self pair
    for (int d = 0; d < dims; ++d) {
      cur[static_cast<std::size_t>(d)] = ds.coord(t.id, d);
    }
    grid.for_each_within(
        {cur.data(), sdims}, 1,
        [&](std::size_t ci, const CellCoords&, std::uint64_t) {
          for (const PointId q : grid.cell_points(ci)) {
            if (is_touched[q] != 0) continue;  // handled pairwise below
            ++out.stats.candidates;
            if (dist2_to_point(ds, cur.data(), q, dims) <= eps2) {
              emit_both(after, t.id, q);
            }
          }
        });
  }
  for (std::size_t i = 0; i < churn.touched.size(); ++i) {
    for (std::size_t j = i + 1; j < churn.touched.size(); ++j) {
      ++out.stats.candidates;
      if (ds.dist2(churn.touched[i].id, churn.touched[j].id) <= eps2) {
        emit_both(after, churn.touched[i].id, churn.touched[j].id);
      }
    }
  }

  // --- before side: base-generation positions and ids. The grid only
  // holds current points, which for the untouched are also their
  // base-generation positions; churned peers are joined pairwise from
  // their recorded old coordinates. ---
  struct PrePoint {
    PointId pre_id;
    const double* old;
  };
  std::vector<PrePoint> pre;
  pre.reserve(churn.touched.size() + churn.removed.size());
  for (const auto& t : churn.touched) {
    if (t.existed_before) pre.push_back({t.pre_id, t.old_coords.data()});
  }
  for (const auto& r : churn.removed) {
    pre.push_back({r.pre_id, r.old_coords.data()});
  }
  for (const auto& p : pre) {
    before.emplace_back(p.pre_id, p.pre_id);  // self pair
    grid.for_each_within(
        {p.old, sdims}, 1,
        [&](std::size_t ci, const CellCoords&, std::uint64_t) {
          for (const PointId q : grid.cell_points(ci)) {
            if (is_touched[q] != 0) continue;
            ++out.stats.candidates;
            if (dist2_to_point(ds, p.old, q, dims) <= eps2) {
              emit_both(before, p.pre_id, q);
            }
          }
        });
  }
  for (std::size_t i = 0; i < pre.size(); ++i) {
    for (std::size_t j = i + 1; j < pre.size(); ++j) {
      ++out.stats.candidates;
      if (dist2_arrays(pre[i].old, pre[j].old, dims) <= eps2) {
        emit_both(before, pre[i].pre_id, pre[j].pre_id);
      }
    }
  }

  std::sort(after.begin(), after.end());
  std::sort(before.begin(), before.end());
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(out.gained));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(out.lost));
  return out;
}

}  // namespace gsj
