// Plan+execute pipeline shared by the two execution frontends
// (internal).
//
// JoinEngine::run (single-threaded sessions, sj/engine.cpp) and
// JoinService (concurrent serving, sj/service.cpp) run the exact same
// join pipeline — validation, cache-served plan-artifact resolution
// with the monolith's span sequence, batch planning, then the batched
// execution stage — against *different cache backends*: the engine's
// thread-private LRU caches versus the service's reader/writer-locked,
// single-flight shared caches. plan_and_execute() is that pipeline,
// templated over a PlanSource that supplies the artifacts; keeping it
// in one place is what guarantees the two frontends stay bit-identical
// (same spans, same stats, same results) for the same request.
//
// A PlanSource provides (duck-typed; resolution order is fixed by the
// pipeline, so sources may carry state between calls):
//
//   void sync();                              // generation check/invalidate
//   ThreadPool* pool(int n);                  // cached host pool
//   obs::Tracer* channel_tracer();            // engine/service channel
//   obs::RequestObs* request_obs();           // request attribution bundle
//                                             // (nullptr = not a request)
//   void resolve_grid(double eps, ThreadPool*, bool* hit);
//   const GridIndex& grid();                  // valid after resolve_grid
//   std::span<const std::uint64_t> resolve_workloads(CellPattern,
//                                                    ThreadPool*);
//   std::span<const PointId> resolve_order(CellPattern, ThreadPool*);
//   std::optional<std::uint64_t> find_estimate(bool queue, EstimateKey);
//   void put_estimate(bool queue, EstimateKey, std::uint64_t);
//
// Artifact lifetime contract: spans/references returned by a source
// stay valid until plan_and_execute returns (sources pin shared
// artifacts for the duration of the run).
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "sj/execute.hpp"

namespace gsj::detail {

/// Result-size-estimate cache key: (sample_fraction bits,
/// inject_estimator_skew bits) — skew is part of the key so
/// fault-injection runs never collide with honest ones.
using EstimateKey = std::pair<std::uint64_t, std::uint64_t>;

/// Identity of a submitted request's *answer* for the service's
/// result-serving layer (docs/SERVICE.md). Deliberately
/// variant-agnostic: all six kernel variants compute the same pair set
/// for (dataset, ε) — the invariant the paper's variant comparison
/// rests on — so the key folds only the dataset generation, the exact
/// ε bits, and a digest of the config knobs that change the observable
/// result (today just the storage mode; k / cell pattern / batching /
/// device knobs shape how the answer is computed, never what it is).
struct ResultKey {
  std::uint64_t generation = 0;
  std::uint64_t eps_bits = 0;
  std::uint64_t config_digest = 0;
  friend bool operator==(const ResultKey&, const ResultKey&) = default;
};

[[nodiscard]] inline ResultKey make_result_key(std::uint64_t generation,
                                               const SelfJoinConfig& cfg) {
  // FNV-1a over the result-affecting knobs, one byte per knob.
  std::uint64_t digest = 1469598103934665603ull;
  const auto fold = [&digest](std::uint64_t byte) {
    digest ^= byte & 0xffu;
    digest *= 1099511628211ull;
  };
  fold(cfg.store_pairs ? 1u : 0u);
  return {generation, std::bit_cast<std::uint64_t>(cfg.epsilon), digest};
}

template <typename Source>
void plan_and_execute(const SelfJoinConfig& cfg, const Dataset& ds,
                      Source& src, ScratchArena& arena,
                      const std::atomic<bool>* cancel, SelfJoinOutput& out) {
  GSJ_CHECK_MSG(cfg.epsilon > 0.0, "epsilon must be positive");
  GSJ_CHECK_MSG(!ds.empty(), "empty dataset");
  GSJ_CHECK_MSG(cfg.k >= 1 && cfg.device.warp_size % cfg.k == 0,
                "k=" << cfg.k << " must divide warp_size="
                     << cfg.device.warp_size);
  cfg.batching.validate();
  // Fleet validation covers the base device config too; num_devices==1
  // keeps the classic single-device path below byte-identical.
  cfg.fleet.validate(cfg.device);
  const bool fleet_active = cfg.fleet.active();
  src.sync();

  out.results = ResultSet(cfg.store_pairs);
  if (cfg.store_pairs) {
    // Reuse the arena's spare pair buffer (capacity only; no content).
    out.results.adopt_storage(std::move(arena.spare_pairs));
    arena.spare_pairs = {};
  }
  Timer host;

  // Host execution pool: when the config asks for worker threads but
  // supplies no external pool, the source's cached/leased pool of that
  // size is attached — same pool across the grid build, planning and
  // every batch launch. `device` is the effective config handed to
  // every launch.
  simt::DeviceConfig device = cfg.device;
  if (device.host.num_threads > 0 && device.host.pool == nullptr) {
    device.host.pool = src.pool(device.host.num_threads);
  }
  ThreadPool* p = device.host.num_threads > 0 ? device.host.pool : nullptr;

  obs::Tracer* tracer = cfg.tracer;
  if (tracer != nullptr) tracer->set_device_config(device);
  auto pipeline_span = obs::span(tracer, "self_join");

  // Request attribution (JoinService::submit): "plan"/"execute" spans
  // on the service channel parented under the request root, plus the
  // RequestBreakdown totals. request_id == 0 (engine runs, run()/
  // self_join()) emits nothing, keeping those channels' span sequences
  // exactly as before.
  obs::RequestObs* robs = src.request_obs();
  const obs::SpanContext rctx =
      robs != nullptr ? robs->ctx : obs::SpanContext{};
  obs::Tracer* req_tracer =
      (robs != nullptr && rctx.request_id != 0) ? robs->tracer : nullptr;
  auto plan_span = obs::span(req_tracer, "plan", rctx);

  // --- plan stage: resolve every artifact from the cache, computing
  // and caching on miss. The per-run span sequence below is exactly the
  // monolith's (grid_build; for WQ: workload_quantify, sortbywl_sort,
  // batch_plan; otherwise batch_plan with nested sub-spans opened by
  // the planner), so logical traces are byte-identical on hit and miss.
  bool grid_hit = false;
  {
    const auto sp = obs::span(tracer, "grid_build");
    src.resolve_grid(cfg.epsilon, p, &grid_hit);
  }
  const GridIndex& grid = src.grid();
  // Engine/service-channel span marking a cache-served plan stage.
  auto reuse_span = obs::span(grid_hit ? src.channel_tracer() : nullptr,
                              "plan_reuse");

  const EstimateKey est_key{
      std::bit_cast<std::uint64_t>(cfg.batching.sample_fraction),
      std::bit_cast<std::uint64_t>(cfg.batching.inject_estimator_skew)};

  std::span<const PointId> queue_order;
  std::span<const std::uint64_t> fleet_workloads;
  BatchPlan plan;
  if (fleet_active) {
    // Fleet plan stage: grain partitioning and the per-grain chunk
    // budgets need per-point workloads regardless of variant, the
    // work-queue variants need D', and the whole-join size estimate is
    // resolved through the same shared cache the batch planners use —
    // then execute_fleet does its own per-grain chunking, so no batch
    // plan is built here.
    {
      const auto sp = obs::span(tracer, "workload_quantify");
      fleet_workloads = src.resolve_workloads(cfg.pattern, p);
    }
    if (cfg.work_queue) {
      const auto sp = obs::span(tracer, "sortbywl_sort");
      queue_order = src.resolve_order(cfg.pattern, p);
    }
    const auto sp = obs::span(tracer, "batch_plan");
    std::optional<std::uint64_t> est =
        src.find_estimate(cfg.work_queue, est_key);
    if (!est.has_value()) {
      est = cfg.work_queue
                ? estimate_queue_total(grid, cfg.batching, queue_order)
                : estimate_strided_total(grid, cfg.batching);
      src.put_estimate(cfg.work_queue, est_key, *est);
    }
    plan.estimated_total_pairs = *est;
    plan.num_batches = 0;  // execute_fleet chunks per grain
  } else if (cfg.work_queue) {
    std::span<const std::uint64_t> pw;
    {
      const auto sp = obs::span(tracer, "workload_quantify");
      pw = src.resolve_workloads(cfg.pattern, p);
    }
    {
      const auto sp = obs::span(tracer, "sortbywl_sort");
      queue_order = src.resolve_order(cfg.pattern, p);
    }
    const auto sp = obs::span(tracer, "batch_plan");
    std::optional<std::uint64_t> est = src.find_estimate(true, est_key);
    plan = plan_queue(grid, cfg.batching, queue_order, pw, tracer, est);
    if (!est.has_value()) {
      src.put_estimate(true, est_key, plan.estimated_total_pairs);
    }
  } else {
    const auto sp = obs::span(tracer, "batch_plan");
    std::span<const std::uint64_t> pw;
    if (cfg.sort_by_workload) pw = src.resolve_workloads(cfg.pattern, p);
    std::optional<std::uint64_t> est = src.find_estimate(false, est_key);
    plan = plan_strided(grid, cfg.batching, cfg.sort_by_workload, cfg.pattern,
                        tracer, p, pw, est);
    if (!est.has_value()) {
      src.put_estimate(false, est_key, plan.estimated_total_pairs);
    }
  }
  reuse_span.finish();

  out.stats.num_batches = plan.num_batches;
  out.stats.estimated_total_pairs = plan.estimated_total_pairs;
  out.stats.host_prep_seconds = host.seconds();
  plan_span.finish();
  if (robs != nullptr) {
    if (robs->breakdown != nullptr) {
      robs->breakdown->plan_seconds = out.stats.host_prep_seconds;
    }
    if (robs->recorder != nullptr) {
      robs->recorder->record("plan_done", rctx.request_id,
                             plan.estimated_total_pairs);
    }
  }

  // --- execute stage (sj/execute.cpp) ---
  Timer exec_timer;
  auto exec_span = obs::span(req_tracer, "execute", rctx);
  ExecutionInputs in;
  in.grid = &grid;
  in.plan = &plan;
  in.queue_order = queue_order;
  in.device = device;
  in.cancel = cancel;
  in.channel_tracer = req_tracer;
  // Batch spans parent under this run's execute span. Built by hand
  // (not exec_span.child_context()) so the request id survives even
  // when no tracer is attached — the flight recorder still wants it.
  in.channel_ctx = obs::SpanContext{rctx.request_id, exec_span.id()};
  in.recorder = robs != nullptr ? robs->recorder : nullptr;
  if (fleet_active) {
    in.point_workloads = fleet_workloads;
    in.estimated_total_pairs = plan.estimated_total_pairs;
    execute_fleet(cfg, in, arena, out);
  } else {
    execute_self_join(cfg, in, arena, out);
  }
  exec_span.finish();
  if (robs != nullptr && robs->breakdown != nullptr) {
    obs::RequestBreakdown& b = *robs->breakdown;
    b.execute_seconds = exec_timer.seconds();
    b.batches = out.stats.num_batches;
    b.overflow_retries = out.stats.overflow_retries;
    b.result_pairs = out.stats.result_pairs;
  }
}

}  // namespace gsj::detail
