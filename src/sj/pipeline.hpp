// Plan+execute pipeline shared by the two execution frontends
// (internal).
//
// JoinEngine::run (single-threaded sessions, sj/engine.cpp) and
// JoinService (concurrent serving, sj/service.cpp) run the exact same
// join pipeline — validation, cache-served plan-artifact resolution
// with the monolith's span sequence, batch planning, then the batched
// execution stage — against *different cache backends*: the engine's
// thread-private LRU caches versus the service's reader/writer-locked,
// single-flight shared caches. plan_and_execute() is that pipeline,
// templated over a PlanSource that supplies the artifacts; keeping it
// in one place is what guarantees the two frontends stay bit-identical
// (same spans, same stats, same results) for the same request.
//
// A PlanSource provides (duck-typed; resolution order is fixed by the
// pipeline, so sources may carry state between calls):
//
//   void sync();                              // generation check/invalidate
//   ThreadPool* pool(int n);                  // cached host pool
//   obs::Tracer* channel_tracer();            // engine/service channel
//   obs::RequestObs* request_obs();           // request attribution bundle
//                                             // (nullptr = not a request)
//   void resolve_grid(double eps, ThreadPool*, bool* hit);
//   const GridIndex& grid();                  // valid after resolve_grid
//   std::span<const std::uint64_t> resolve_workloads(CellPattern,
//                                                    ThreadPool*);
//   std::span<const PointId> resolve_order(CellPattern, ThreadPool*);
//   std::optional<std::uint64_t> find_estimate(bool queue, EstimateKey);
//   void put_estimate(bool queue, EstimateKey, std::uint64_t);
//
// Artifact lifetime contract: spans/references returned by a source
// stay valid until plan_and_execute returns (sources pin shared
// artifacts for the duration of the run) — EXCEPT under the KNN path,
// which resolves one grid per widening round: each grid() reference is
// only used until the next resolve_grid call.
//
// Sources are constructed per-run from the request's SelfJoinConfig
// and are mode-aware: for R×S/KNN requests, resolve_workloads returns
// *probe* point workloads and every plan/estimate cache entry is keyed
// with probe_signature(cfg) so artifacts of different modes or probe
// datasets/generations never alias (Self artifacts carry signature 0).
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "sj/execute.hpp"

namespace gsj::detail {

/// Result-size-estimate cache key: (sample_fraction bits,
/// inject_estimator_skew bits, probe signature) — skew is part of the
/// key so fault-injection runs never collide with honest ones, and the
/// probe signature (0 for Self) keeps R×S estimates of different probe
/// datasets/generations apart.
using EstimateKey =
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

/// Identity of the *second* dataset of an R×S/KNN request for the plan
/// and estimate caches: a mix of the probe's process-unique uid and its
/// mutation generation, forced odd so it can never collide with the 0
/// that tags Self-join artifacts. Self (or a missing probe — caught by
/// validation) maps to 0.
[[nodiscard]] inline std::uint64_t probe_signature(const SelfJoinConfig& cfg) {
  if (cfg.mode == JoinMode::Self || cfg.probe == nullptr) return 0;
  std::uint64_t h = cfg.probe->uid() * 0x9e3779b97f4a7c15ull;
  h ^= cfg.probe->generation() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h | 1u;
}

/// Identity of a submitted request's *answer* for the service's
/// result-serving layer (docs/SERVICE.md). Deliberately
/// variant-agnostic: all six kernel variants compute the same pair set
/// for (dataset, ε, mode) — the invariant the paper's variant
/// comparison rests on — so the key folds only the dataset generation,
/// the exact ε bits, and a digest of the request *class*: the join
/// mode, the second dataset's identity (uid + generation) for R×S/KNN,
/// and the KNN parameters. k / cell pattern / batching / device knobs
/// shape how the answer is computed, never what it is; the storage
/// mode is deliberately NOT folded — pairs vs count-only is an
/// asymmetry the gate's has_pairs logic handles, so a stored-pairs
/// entry can serve a count-only request.
struct ResultKey {
  std::uint64_t generation = 0;
  std::uint64_t eps_bits = 0;
  std::uint64_t config_digest = 0;
  friend bool operator==(const ResultKey&, const ResultKey&) = default;
};

[[nodiscard]] inline ResultKey make_result_key(std::uint64_t generation,
                                               const SelfJoinConfig& cfg) {
  // FNV-1a over the result-class knobs, full 64-bit values byte by
  // byte: a single truncated byte per knob is exactly the latent
  // collision the pinned regression test guards against (a probe
  // generation and a mode sharing a low byte must not share a digest).
  std::uint64_t digest = 1469598103934665603ull;
  const auto fold = [&digest](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (v >> (8 * i)) & 0xffu;
      digest *= 1099511628211ull;
    }
  };
  fold(static_cast<std::uint64_t>(cfg.mode));
  if (cfg.mode != JoinMode::Self && cfg.probe != nullptr) {
    fold(cfg.probe->uid());
    fold(cfg.probe->generation());
  }
  if (cfg.mode == JoinMode::Knn) {
    fold(static_cast<std::uint64_t>(static_cast<std::int64_t>(cfg.knn_k)));
    fold(std::bit_cast<std::uint64_t>(cfg.knn_growth));
    fold(std::bit_cast<std::uint64_t>(cfg.knn_initial_epsilon));
  }
  return {generation, std::bit_cast<std::uint64_t>(cfg.epsilon), digest};
}

/// KNN-join by per-query iterative ε-widening (docs/JOINS.md, after the
/// Hybrid KNN-Join reduction): round r probes the ε_r = ε₀·growth^r
/// grid — resolved through the SAME PlanSource grid cache the ε-joins
/// use, so repeated requests (and the shared schedule across queries)
/// hit the per-ε LRU — and a query resolves once ≥ k candidates sit
/// within ε_r. That is exact: the k-th nearest distance is then ≤ ε_r,
/// so every potential member of the answer set (distance ≤ k-th,
/// boundary ties included) is already a candidate; selection sorts by
/// (distance², id), the canonical tie-break. ε₀ comes from
/// cfg.knn_initial_epsilon or the density estimate
/// 0.5·(k·volume/n)^(1/dims) of the gridded dataset's bounding box.
template <typename Source>
void knn_execute(const SelfJoinConfig& cfg, const Dataset& ds, Source& src,
                 ScratchArena& arena, const std::atomic<bool>* cancel,
                 SelfJoinOutput& out) {
  GSJ_CHECK_MSG(cfg.probe != nullptr, "knn join requires cfg.probe");
  GSJ_CHECK_MSG(cfg.knn_k >= 1, "knn_k must be >= 1, got " << cfg.knn_k);
  GSJ_CHECK_MSG(cfg.knn_growth > 1.0,
                "knn_growth must be > 1, got " << cfg.knn_growth);
  GSJ_CHECK_MSG(cfg.knn_initial_epsilon >= 0.0,
                "knn_initial_epsilon must be >= 0");
  GSJ_CHECK_MSG(!ds.empty(), "empty dataset");
  const Dataset& probe = *cfg.probe;
  GSJ_CHECK_MSG(probe.dims() == ds.dims(),
                "probe dims=" << probe.dims() << " vs dataset dims="
                              << ds.dims());
  src.sync();

  out.results = ResultSet(cfg.store_pairs);
  if (cfg.store_pairs) {
    out.results.adopt_storage(std::move(arena.spare_pairs));
    arena.spare_pairs = {};
  }
  Timer host;

  simt::DeviceConfig device = cfg.device;
  if (device.host.num_threads > 0 && device.host.pool == nullptr) {
    device.host.pool = src.pool(device.host.num_threads);
  }
  ThreadPool* p = device.host.num_threads > 0 ? device.host.pool : nullptr;

  obs::Tracer* tracer = cfg.tracer;
  if (tracer != nullptr) tracer->set_device_config(device);
  auto pipeline_span = obs::span(tracer, "knn_join");

  obs::RequestObs* robs = src.request_obs();
  const obs::SpanContext rctx =
      robs != nullptr ? robs->ctx : obs::SpanContext{};
  obs::Tracer* req_tracer =
      (robs != nullptr && rctx.request_id != 0) ? robs->tracer : nullptr;
  auto plan_span = obs::span(req_tracer, "plan", rctx);

  const std::size_t n = ds.size();
  const std::size_t nq = probe.size();
  const int dims = ds.dims();
  const auto k_eff = static_cast<std::size_t>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(cfg.knn_k), static_cast<std::uint64_t>(n)));

  // ε₀: explicit override, else seeded so a uniform-density region
  // holds ~k points per 2ε₀-ball — the round-0 grid then has on the
  // order of n/k non-empty cells, and the geometric schedule reaches
  // any realistic neighborhood within a handful of rounds.
  double eps0 = cfg.knn_initial_epsilon;
  if (!(eps0 > 0.0)) {
    const auto lo = ds.min_corner();
    const auto hi = ds.max_corner();
    double volume = 1.0;
    for (int d = 0; d < dims; ++d) {
      volume *= hi[static_cast<std::size_t>(d)] - lo[static_cast<std::size_t>(d)];
    }
    eps0 = volume > 0.0
               ? 0.5 * std::pow(static_cast<double>(k_eff) * volume /
                                    static_cast<double>(n),
                                1.0 / static_cast<double>(dims))
               : 0.0;
    // Degenerate boxes (single point, axis-flat data) have zero volume;
    // any positive seed works — widening corrects it geometrically.
    if (!(eps0 > 0.0) || !std::isfinite(eps0)) eps0 = 1.0;
  }
  out.stats.host_prep_seconds = host.seconds();
  plan_span.finish();
  if (robs != nullptr && robs->breakdown != nullptr) {
    robs->breakdown->plan_seconds = out.stats.host_prep_seconds;
  }

  struct Hit {
    double d2;
    PointId id;
  };
  const auto hit_before = [](const Hit& a, const Hit& b) {
    return a.d2 != b.d2 ? a.d2 < b.d2 : a.id < b.id;
  };

  Timer exec_timer;
  auto exec_span = obs::span(req_tracer, "execute", rctx);
  std::vector<std::vector<Hit>> answers(nq);
  std::vector<std::uint8_t> done(nq, 0);
  std::size_t unresolved = nq;
  std::vector<double> qc(static_cast<std::size_t>(dims));
  std::vector<Hit> cand;

  // Hard round cap: 64 doublings from any positive seed exceed every
  // representable spread, so only an adversarial (tiny ε₀, growth→1)
  // schedule gets here — the stragglers fall back to brute force below.
  constexpr int kMaxRounds = 64;
  double eps_r = eps0;
  for (int round = 0; round < kMaxRounds && unresolved > 0;
       ++round, eps_r *= cfg.knn_growth) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw CancelledError(out.stats.knn_rounds);
    }
    bool grid_hit = false;
    {
      const auto sp = obs::span(tracer, "grid_build");
      src.resolve_grid(eps_r, p, &grid_hit);
    }
    const GridIndex& grid = src.grid();
    const double eps2 = eps_r * eps_r;
    out.stats.knn_rounds = static_cast<std::uint64_t>(round) + 1;
    out.stats.knn_final_epsilon = eps_r;
    for (std::size_t q = 0; q < nq; ++q) {
      if (done[q] != 0) continue;
      for (int d = 0; d < dims; ++d) {
        qc[static_cast<std::size_t>(d)] = probe.coord(q, d);
      }
      cand.clear();
      grid.for_each_within(
          qc, /*shells=*/1,
          [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
            for (const PointId c : grid.cell_points(nidx)) {
              double sum = 0.0;
              for (int d = 0; d < dims; ++d) {
                const double diff =
                    qc[static_cast<std::size_t>(d)] - ds.coord(c, d);
                sum += diff * diff;
              }
              if (sum <= eps2) cand.push_back({sum, c});
            }
          });
      if (cand.size() >= k_eff) {
        std::sort(cand.begin(), cand.end(), hit_before);
        cand.resize(k_eff);
        answers[q].assign(cand.begin(), cand.end());
        done[q] = 1;
        --unresolved;
      }
    }
  }

  if (unresolved > 0) {
    // Schedule exhausted: answer the stragglers exactly by brute force.
    for (std::size_t q = 0; q < nq && unresolved > 0; ++q) {
      if (done[q] != 0) continue;
      cand.clear();
      cand.reserve(n);
      for (PointId c = 0; c < static_cast<PointId>(n); ++c) {
        double sum = 0.0;
        for (int d = 0; d < dims; ++d) {
          const double diff = probe.coord(q, d) - ds.coord(c, d);
          sum += diff * diff;
        }
        cand.push_back({sum, c});
      }
      std::sort(cand.begin(), cand.end(), hit_before);
      cand.resize(k_eff);
      answers[q].assign(cand.begin(), cand.end());
      done[q] = 1;
      --unresolved;
    }
  }

  std::uint64_t total = 0;
  for (const auto& a : answers) total += a.size();
  if (cfg.store_pairs) {
    out.results.reserve(total);
    for (std::size_t q = 0; q < nq; ++q) {
      for (const Hit& h : answers[q]) {
        out.results.emit(static_cast<PointId>(q), h.id);
      }
    }
    out.results.canonicalize();
  } else {
    out.results.add_count(total);
  }
  out.stats.result_pairs = total;
  out.stats.warp_size = device.warp_size;
  out.stats.total_seconds = exec_timer.seconds();
  exec_span.finish();
  if (robs != nullptr) {
    if (robs->breakdown != nullptr) {
      obs::RequestBreakdown& b = *robs->breakdown;
      b.execute_seconds = exec_timer.seconds();
      b.result_pairs = total;
    }
    if (robs->recorder != nullptr) {
      robs->recorder->record("knn_done", rctx.request_id,
                             out.stats.knn_rounds);
    }
  }
}

template <typename Source>
void plan_and_execute(const SelfJoinConfig& cfg, const Dataset& ds,
                      Source& src, ScratchArena& arena,
                      const std::atomic<bool>* cancel, SelfJoinOutput& out) {
  // KNN takes its own host-iterative path (no batched device launches),
  // dispatched before the ε validation — a KNN request's `epsilon` is
  // free for cache-key purposes (the widening schedule ignores it).
  if (cfg.mode == JoinMode::Knn) {
    knn_execute(cfg, ds, src, arena, cancel, out);
    return;
  }
  const bool rxs = cfg.mode == JoinMode::RxS;
  GSJ_CHECK_MSG(cfg.epsilon > 0.0, "epsilon must be positive");
  GSJ_CHECK_MSG(!ds.empty(), "empty dataset");
  if (rxs) {
    GSJ_CHECK_MSG(cfg.probe != nullptr, "rxs join requires cfg.probe");
    GSJ_CHECK_MSG(cfg.probe->dims() == ds.dims(),
                  "probe dims=" << cfg.probe->dims() << " vs dataset dims="
                                << ds.dims());
  }
  GSJ_CHECK_MSG(cfg.k >= 1 && cfg.device.warp_size % cfg.k == 0,
                "k=" << cfg.k << " must divide warp_size="
                     << cfg.device.warp_size);
  cfg.batching.validate();
  // Fleet validation covers the base device config too; num_devices==1
  // keeps the classic single-device path below byte-identical.
  cfg.fleet.validate(cfg.device);
  const bool fleet_active = cfg.fleet.active();
  src.sync();

  out.results = ResultSet(cfg.store_pairs);
  if (cfg.store_pairs) {
    // Reuse the arena's spare pair buffer (capacity only; no content).
    out.results.adopt_storage(std::move(arena.spare_pairs));
    arena.spare_pairs = {};
  }
  if (rxs && cfg.probe->empty()) {
    // No queries — the answer is empty without gridding anything (an
    // empty *gridded* dataset stays a config error, matching Self).
    return;
  }
  Timer host;

  // Host execution pool: when the config asks for worker threads but
  // supplies no external pool, the source's cached/leased pool of that
  // size is attached — same pool across the grid build, planning and
  // every batch launch. `device` is the effective config handed to
  // every launch.
  simt::DeviceConfig device = cfg.device;
  if (device.host.num_threads > 0 && device.host.pool == nullptr) {
    device.host.pool = src.pool(device.host.num_threads);
  }
  ThreadPool* p = device.host.num_threads > 0 ? device.host.pool : nullptr;

  obs::Tracer* tracer = cfg.tracer;
  if (tracer != nullptr) tracer->set_device_config(device);
  auto pipeline_span = obs::span(tracer, "self_join");

  // Request attribution (JoinService::submit): "plan"/"execute" spans
  // on the service channel parented under the request root, plus the
  // RequestBreakdown totals. request_id == 0 (engine runs, run()/
  // self_join()) emits nothing, keeping those channels' span sequences
  // exactly as before.
  obs::RequestObs* robs = src.request_obs();
  const obs::SpanContext rctx =
      robs != nullptr ? robs->ctx : obs::SpanContext{};
  obs::Tracer* req_tracer =
      (robs != nullptr && rctx.request_id != 0) ? robs->tracer : nullptr;
  auto plan_span = obs::span(req_tracer, "plan", rctx);

  // --- plan stage: resolve every artifact from the cache, computing
  // and caching on miss. The per-run span sequence below is exactly the
  // monolith's (grid_build; for WQ: workload_quantify, sortbywl_sort,
  // batch_plan; otherwise batch_plan with nested sub-spans opened by
  // the planner), so logical traces are byte-identical on hit and miss.
  bool grid_hit = false;
  {
    const auto sp = obs::span(tracer, "grid_build");
    src.resolve_grid(cfg.epsilon, p, &grid_hit);
  }
  const GridIndex& grid = src.grid();
  // Engine/service-channel span marking a cache-served plan stage.
  auto reuse_span = obs::span(grid_hit ? src.channel_tracer() : nullptr,
                              "plan_reuse");

  // The unidirectional patterns' pair-once trick has no meaning when
  // queries and candidates come from different datasets: R×S probes
  // every window cell, i.e. LID-UNICOMP degenerates to plain neighbor
  // probing. Forcing Full here keys the workload/order artifacts (and
  // the kernels, which additionally ignore the pattern in R×S mode)
  // uniformly across the six variants.
  const CellPattern pattern = rxs ? CellPattern::Full : cfg.pattern;
  const Dataset* probe = rxs ? cfg.probe : nullptr;

  const EstimateKey est_key{
      std::bit_cast<std::uint64_t>(cfg.batching.sample_fraction),
      std::bit_cast<std::uint64_t>(cfg.batching.inject_estimator_skew),
      probe_signature(cfg)};

  std::span<const PointId> queue_order;
  std::span<const std::uint64_t> fleet_workloads;
  BatchPlan plan;
  if (fleet_active) {
    // Fleet plan stage: grain partitioning and the per-grain chunk
    // budgets need per-point workloads regardless of variant, the
    // work-queue variants need D', and the whole-join size estimate is
    // resolved through the same shared cache the batch planners use —
    // then execute_fleet does its own per-grain chunking, so no batch
    // plan is built here.
    {
      const auto sp = obs::span(tracer, "workload_quantify");
      fleet_workloads = src.resolve_workloads(pattern, p);
    }
    if (cfg.work_queue) {
      const auto sp = obs::span(tracer, "sortbywl_sort");
      queue_order = src.resolve_order(pattern, p);
    }
    const auto sp = obs::span(tracer, "batch_plan");
    std::optional<std::uint64_t> est =
        src.find_estimate(cfg.work_queue, est_key);
    if (!est.has_value()) {
      if (rxs) {
        est = cfg.work_queue ? estimate_rxs_queue_total(grid, *probe,
                                                        cfg.batching,
                                                        queue_order)
                             : estimate_rxs_strided_total(grid, *probe,
                                                          cfg.batching);
      } else {
        est = cfg.work_queue
                  ? estimate_queue_total(grid, cfg.batching, queue_order)
                  : estimate_strided_total(grid, cfg.batching);
      }
      src.put_estimate(cfg.work_queue, est_key, *est);
    }
    plan.estimated_total_pairs = *est;
    plan.num_batches = 0;  // execute_fleet chunks per grain
  } else if (cfg.work_queue) {
    std::span<const std::uint64_t> pw;
    {
      const auto sp = obs::span(tracer, "workload_quantify");
      pw = src.resolve_workloads(pattern, p);
    }
    {
      const auto sp = obs::span(tracer, "sortbywl_sort");
      queue_order = src.resolve_order(pattern, p);
    }
    const auto sp = obs::span(tracer, "batch_plan");
    std::optional<std::uint64_t> est = src.find_estimate(true, est_key);
    plan = plan_queue(grid, cfg.batching, queue_order, pw, tracer, est, probe);
    if (!est.has_value()) {
      src.put_estimate(true, est_key, plan.estimated_total_pairs);
    }
  } else {
    const auto sp = obs::span(tracer, "batch_plan");
    std::span<const std::uint64_t> pw;
    if (cfg.sort_by_workload) pw = src.resolve_workloads(pattern, p);
    std::optional<std::uint64_t> est = src.find_estimate(false, est_key);
    plan = plan_strided(grid, cfg.batching, cfg.sort_by_workload, pattern,
                        tracer, p, pw, est, probe);
    if (!est.has_value()) {
      src.put_estimate(false, est_key, plan.estimated_total_pairs);
    }
  }
  reuse_span.finish();

  out.stats.num_batches = plan.num_batches;
  out.stats.estimated_total_pairs = plan.estimated_total_pairs;
  out.stats.host_prep_seconds = host.seconds();
  plan_span.finish();
  if (robs != nullptr) {
    if (robs->breakdown != nullptr) {
      robs->breakdown->plan_seconds = out.stats.host_prep_seconds;
    }
    if (robs->recorder != nullptr) {
      robs->recorder->record("plan_done", rctx.request_id,
                             plan.estimated_total_pairs);
    }
  }

  // --- execute stage (sj/execute.cpp) ---
  Timer exec_timer;
  auto exec_span = obs::span(req_tracer, "execute", rctx);
  ExecutionInputs in;
  in.grid = &grid;
  in.plan = &plan;
  in.probe = probe;
  in.queue_order = queue_order;
  in.device = device;
  in.cancel = cancel;
  in.channel_tracer = req_tracer;
  // Batch spans parent under this run's execute span. Built by hand
  // (not exec_span.child_context()) so the request id survives even
  // when no tracer is attached — the flight recorder still wants it.
  in.channel_ctx = obs::SpanContext{rctx.request_id, exec_span.id()};
  in.recorder = robs != nullptr ? robs->recorder : nullptr;
  if (fleet_active) {
    in.point_workloads = fleet_workloads;
    in.estimated_total_pairs = plan.estimated_total_pairs;
    execute_fleet(cfg, in, arena, out);
  } else {
    execute_self_join(cfg, in, arena, out);
  }
  exec_span.finish();
  if (robs != nullptr && robs->breakdown != nullptr) {
    obs::RequestBreakdown& b = *robs->breakdown;
    b.execute_seconds = exec_timer.seconds();
    b.batches = out.stats.num_batches;
    b.overflow_retries = out.stats.overflow_retries;
    b.result_pairs = out.stats.result_pairs;
  }
}

}  // namespace gsj::detail
