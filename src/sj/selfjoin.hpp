// Public API: the batched, load-balance-optimized GPU similarity
// self-join of Gallet & Gowanlock (2019), executed on the SIMT device
// model.
//
// Quickstart:
//
//   gsj::Dataset ds = gsj::gen_exponential(100'000, 2, /*seed=*/1);
//   gsj::SelfJoinConfig cfg = gsj::SelfJoinConfig::combined(0.2);
//   gsj::SelfJoinOutput out = gsj::self_join(ds, cfg);
//   // out.results holds the ordered epsilon-neighbor pairs,
//   // out.stats the modeled kernel time and warp execution efficiency.
//
// Variant map (paper name -> configuration):
//   GPUCALCGLOBAL   SelfJoinConfig::gpu_calc_global(eps)
//   UNICOMP         SelfJoinConfig::unicomp(eps)
//   LID-UNICOMP     SelfJoinConfig::lid_unicomp(eps)
//   SORTBYWL        SelfJoinConfig::sort_by_wl(eps)
//   WORKQUEUE       SelfJoinConfig::work_queue(eps)
//   WQ+LID+k=8      SelfJoinConfig::combined(eps)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "grid/cell_access.hpp"
#include "obs/diagnostics.hpp"
#include "simt/device.hpp"
#include "simt/fleet.hpp"
#include "sj/batching.hpp"
#include "sj/kernels.hpp"
#include "sj/result_set.hpp"

namespace gsj {

namespace obs {
class Registry;  // metrics.hpp (Tracer comes in via diagnostics.hpp)
}  // namespace obs

/// Which join the pipeline answers (docs/JOINS.md).
enum class JoinMode : std::uint8_t {
  Self,  ///< ε-self-join of the attached dataset (the paper's workload)
  RxS,   ///< two-dataset ε-join: grid the attached dataset, probe with
         ///< `probe` — every cell-pattern optimization degenerates to
         ///< plain neighbor probing (pattern is forced to Full)
  Knn,   ///< exact k-NN join of `probe` against the attached dataset by
         ///< per-query iterative ε-widening over the cached grids
};

[[nodiscard]] constexpr const char* to_string(JoinMode m) noexcept {
  switch (m) {
    case JoinMode::Self: return "self";
    case JoinMode::RxS: return "rxs";
    case JoinMode::Knn: return "knn";
  }
  return "?";
}

struct SelfJoinConfig {
  double epsilon = 1.0;
  CellPattern pattern = CellPattern::Full;

  // --- join modality (docs/JOINS.md) ---
  /// Self answers the classic self-join; RxS and Knn probe the gridded
  /// (attached) dataset with `probe`. The probe dataset is non-owning
  /// and must outlive the call; its identity (uid + generation) is
  /// folded into every plan/estimate/result cache key, so mutating it
  /// between calls is safe — stale entries simply never match.
  JoinMode mode = JoinMode::Self;
  /// Second dataset for RxS / Knn (queries). Must have the same dims()
  /// as the attached dataset. Ignored for Self.
  const Dataset* probe = nullptr;
  /// Knn only: neighbors per query (k > size() returns all points;
  /// self-matches count — a query identical to a data point has that
  /// point as its nearest neighbor). Ties broken by (distance², id).
  int knn_k = 0;
  /// Knn only: geometric ε-widening factor per round (> 1).
  double knn_growth = 2.0;
  /// Knn only: round-0 ε. 0 seeds from the density estimate
  /// 0.5 * (k · volume / n)^(1/dims) of the gridded dataset's bbox.
  double knn_initial_epsilon = 0.0;
  /// SORTBYWL (§III-C): sort each strided batch's query list by
  /// non-increasing workload. Ignored when `work_queue` is set (the
  /// queue order is always workload-sorted).
  bool sort_by_workload = false;
  /// WORKQUEUE (§III-D): consume the workload-sorted order D' through a
  /// device-global atomic counter (contiguous-chunk batches, first-1%
  /// estimation).
  bool work_queue = false;
  /// Threads per query point (§III-A); must divide device.warp_size.
  int k = 1;
  BatchingConfig batching;
  /// Device model. `device.host.num_threads > 0` additionally runs the
  /// simulator (and grid build / workload sorts) on that many host
  /// worker threads — results, stats and traces are bit-identical to
  /// the sequential path (see docs/PERFORMANCE.md).
  simt::DeviceConfig device;
  /// Multi-device fleet (docs/SIMULATOR.md §fleet). num_devices == 1
  /// keeps the classic single-device path, byte-identical to before the
  /// fleet existed. num_devices > 1 shards the ε-grid into work grains
  /// and schedules them across N modeled devices (optionally
  /// heterogeneous via fleet.devices overrides); merged results are
  /// bit-identical to the single-device run in canonical order, and
  /// stats.fleet reports the device-level load breakdown.
  simt::FleetConfig fleet;
  /// Store result pairs (tests/examples) or count only (benchmarks).
  bool store_pairs = false;

  // --- observability (all optional, non-owning) ---
  /// Receives host-phase spans and per-warp/per-batch device events.
  obs::Tracer* tracer = nullptr;
  /// Receives counters and cycle histograms ("sj.*" namespace).
  obs::Registry* metrics = nullptr;
  /// Collect per-warp cycle dispersion (CoV/Gini) and per-slot tail
  /// idle into SelfJoinStats. Adds one observer callback per warp;
  /// disable for overhead-sensitive sweeps.
  bool collect_diagnostics = true;

  [[nodiscard]] std::string name() const;

  // --- the paper's named configurations ---
  static SelfJoinConfig gpu_calc_global(double eps);
  static SelfJoinConfig unicomp(double eps);
  static SelfJoinConfig lid_unicomp(double eps);
  static SelfJoinConfig sort_by_wl(double eps);
  static SelfJoinConfig work_queue_cfg(double eps, int k = 1,
                                       CellPattern pattern = CellPattern::Full);
  /// WORKQUEUE + LID-UNICOMP + k=8: the paper's headline combination.
  static SelfJoinConfig combined(double eps);
};

/// Per-batch execution record (§II-C2's batching made observable).
struct BatchStats {
  /// Fleet device this batch ran on (0 on the single-device path).
  int device = 0;
  std::uint64_t query_points = 0;
  std::uint64_t result_pairs = 0;
  std::uint64_t warps = 0;
  std::uint64_t makespan_cycles = 0;
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  double wee_percent = 0.0;
  /// Per-warp cycle CoV within this batch (0 when diagnostics off).
  double warp_cycle_cov = 0.0;
};

struct SelfJoinStats {
  simt::KernelStats kernel;  ///< merged over all *committed* batches
  /// Configured warp size of the run's device(s) — what wee_percent()
  /// divides by (fleet devices are validated to share one warp size).
  int warp_size = 32;
  std::vector<BatchStats> batches;
  /// Batches actually executed and committed; exceeds the planned count
  /// when overflow recovery split batches.
  std::size_t num_batches = 0;
  std::uint64_t estimated_total_pairs = 0;
  std::uint64_t result_pairs = 0;
  std::uint64_t max_batch_pairs = 0;  ///< buffer-overflow audit
  /// At least one batch overflowed its buffer. The overflow was
  /// recovered (rolled back, split, re-executed) — an unrecoverable
  /// overflow throws OverflowError instead (docs/ROBUSTNESS.md).
  bool buffer_overflowed = false;

  // --- overflow recovery accounting ---
  /// Launches that overflowed the per-batch buffer and were rolled
  /// back; each costs one re-planned re-execution.
  std::uint64_t overflow_retries = 0;
  /// Wasted-work audit: the merged KernelStats of every rolled-back
  /// launch (cycles spent, pairs emitted then discarded, warps run —
  /// none of it contributes to `kernel` or the result).
  simt::KernelStats wasted;
  double kernel_seconds = 0.0;     ///< modeled device time (sum of batches)
  double total_seconds = 0.0;      ///< modeled pipeline incl. transfers
  double host_prep_seconds = 0.0;  ///< wall time: grid build, sorting, planning

  // --- KNN-join accounting (JoinMode::Knn only) ---
  /// ε-widening rounds executed (each resolves one grid through the
  /// plan source — repeat requests hit the per-ε LRU grid cache).
  std::uint64_t knn_rounds = 0;
  /// ε of the last round (the widest grid touched).
  double knn_final_epsilon = 0.0;

  // --- imbalance diagnostics (populated when collect_diagnostics) ---
  /// Per-warp cycle dispersion over all batches (CoV, Gini, tail
  /// percentiles — §IV's skew made queryable).
  obs::WarpImbalance warp_imbalance;
  /// Per resident-warp slot busy/tail-idle breakdown, merged over
  /// batches. Index = slot id (sm = slot / resident_warps_per_sm).
  /// Empty on fleet runs (device-level accounting lives in `fleet`).
  std::vector<obs::SlotStats> slots;

  /// Device-level load breakdown of a fleet run (per-device busy /
  /// tail-idle seconds, makespan, CoV, rebalances). fleet.ran() is
  /// false on the single-device path.
  simt::FleetStats fleet;

  /// Warp execution efficiency in percent (the paper's WEE metric),
  /// against the *configured* warp size — not a hardcoded 32.
  [[nodiscard]] double wee_percent() const noexcept {
    return kernel.warp_execution_efficiency(warp_size) * 100.0;
  }

  /// Coefficient of variation of per-warp cycles (0 = perfectly even).
  [[nodiscard]] double warp_cycle_cov() const noexcept {
    return warp_imbalance.cov;
  }

  /// Gini coefficient of per-warp cycles.
  [[nodiscard]] double warp_cycle_gini() const noexcept {
    return warp_imbalance.gini;
  }
};

struct SelfJoinOutput {
  ResultSet results;
  SelfJoinStats stats;

  SelfJoinOutput() : results(false) {}
};

/// Runs the batched self-join. Throws CheckError on invalid
/// configuration (epsilon <= 0, k not dividing warp size, malformed
/// batching knobs, ...) and OverflowError (common/error.hpp) when a
/// batch overflows its result buffer unrecoverably — a single query
/// point alone exceeds the capacity, or batching.max_overflow_retries
/// is exhausted. Recoverable overflows are handled internally: the
/// batch is rolled back, split, and re-executed until it fits, with the
/// cost visible in stats.overflow_retries / stats.wasted (see
/// docs/ROBUSTNESS.md).
[[nodiscard]] SelfJoinOutput self_join(const Dataset& ds,
                                       const SelfJoinConfig& cfg);

/// Two-dataset ε-join: all ordered pairs (r, s) with r ∈ R, s ∈ S and
/// dist(r, s) ≤ ε. Grids the smaller dataset and probes with the other
/// (the cost-optimal orientation); result pairs are always
/// (r_id, s_id) in canonical order regardless of which side was
/// gridded. Either side empty returns an empty result. `cfg.mode` and
/// `cfg.probe` are overwritten; other knobs (variant, batching, fleet,
/// store_pairs, observability) apply as for self_join.
[[nodiscard]] SelfJoinOutput rxs_join(const Dataset& r, const Dataset& s,
                                      SelfJoinConfig cfg);

/// Exact k-NN join: for each query q ∈ `queries`, the k nearest points
/// of `ds` in canonical order (distance², then id — docs/JOINS.md).
/// Pairs are (query_id, neighbor_id). k > |ds| returns all |ds|
/// neighbors per query. `cfg.mode`, `cfg.probe`, and `cfg.knn_k` are
/// overwritten.
[[nodiscard]] SelfJoinOutput knn_join(const Dataset& ds,
                                      const Dataset& queries, int k,
                                      SelfJoinConfig cfg);

}  // namespace gsj
