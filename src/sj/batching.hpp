// Batching scheme (§II-C2, modified for WORKQUEUE in §III-D).
//
// The join result can exceed GPU global memory, so the join runs as a
// sequence of kernel launches ("batches"), each bounded to `buffer_pairs`
// result pairs per pinned buffer, with `nstreams` streams overlapping
// result transfers with later kernels.
//
// Two planners:
//  * plan_strided — the scheme of [18]: the total result size is
//    estimated from a strided 1% sample, and point i is assigned to
//    batch (i mod nbBatches); striding makes per-batch result sizes
//    nearly equal. With SORTBYWL, each batch's point list is then
//    sorted by non-increasing workload.
//  * plan_queue — the WORKQUEUE variant: the dataset is consumed in
//    workload-sorted order D' via a global counter, so batches are
//    *contiguous chunks* of D'. The estimate samples the FIRST 1% of D'
//    (the heaviest points), deliberately over-estimating so the first
//    (heaviest) chunk cannot overflow; more, smaller batches result.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "grid/grid_index.hpp"
#include "grid/workload.hpp"

namespace gsj {

class ThreadPool;

namespace obs {
class Tracer;  // obs/trace.hpp
}  // namespace obs

struct BatchingConfig {
  /// Result-pair capacity of one batch buffer — the paper's b_s = 1e8.
  /// Keeping the paper's value even at scaled dataset sizes preserves
  /// its batching behaviour (batches of thousands of points, far more
  /// warps than device slots).
  std::uint64_t buffer_pairs = 100'000'000;
  int nstreams = 3;
  double sample_fraction = 0.01;
  /// Safety factor applied to the estimate when sizing batch counts
  /// (absorbs sampling variance of the 1% estimate).
  double safety = 1.5;
  /// Modeled host-device link for the transfer-overlap timeline (GB/s).
  /// The paper's Quadro GP100 is an NVLink-class card; 40 GB/s is a
  /// realistic sustained pinned-memory rate for it.
  double pcie_gbps = 40.0;
  /// When false, everything runs as one unbounded batch.
  bool enabled = true;

  // --- overflow recovery (docs/ROBUSTNESS.md) ---
  /// Failed-launch budget across the whole join: each buffer overflow
  /// rolls the batch back, splits it and re-executes; once the budget
  /// is spent the join throws OverflowError instead of retrying.
  /// Recovery terminates regardless (batch sizes halve, and a
  /// single-point overflow is unrecoverable by definition), so this
  /// only bounds wasted re-execution work. A badly undershooting
  /// estimator can legitimately cost one or two splits per planned
  /// batch, so the budget defaults high.
  std::uint64_t max_overflow_retries = 1024;

  // --- deterministic fault injection (testing the recovery path) ---
  /// Multiplies every result-size estimate (1.0 = honest estimator).
  /// Values < 1 reproduce the estimator undershoot on skewed data that
  /// Gowanlock & Karsin report: the plan allocates too few batches and
  /// the buffer overflows mid-join.
  double inject_estimator_skew = 1.0;
  /// When non-zero, overrides the *detection* capacity per batch while
  /// planning still sizes batches for `buffer_pairs` — a guaranteed
  /// undershoot even on the queue planner, whose 2w+1 hard bound makes
  /// real estimator-driven overflows impossible.
  std::uint64_t inject_capacity = 0;

  /// Effective per-batch overflow-detection capacity.
  [[nodiscard]] std::uint64_t effective_capacity() const noexcept {
    return inject_capacity != 0 ? inject_capacity : buffer_pairs;
  }

  /// Throws CheckError unless every field is in its documented domain
  /// (sample_fraction in (0, 1], buffer_pairs/nstreams/safety >= 1,
  /// pcie_gbps > 0, inject_estimator_skew > 0). Called at self_join
  /// entry and by both planners.
  void validate() const;
};

struct BatchPlan {
  std::uint64_t estimated_total_pairs = 0;
  std::size_t num_batches = 1;
  /// Static assignment: per-batch query-point lists.
  std::vector<std::vector<PointId>> batches;
  /// Queue assignment: [begin, end) chunks over the queue order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> queue_ranges;
};

/// Strided 1% sample extrapolated to the full result size (§II-C2),
/// with the fault-injection skew applied. Deterministic for a fixed
/// (grid, sample_fraction, inject_estimator_skew) — the JoinEngine
/// caches it under exactly that key so re-planning a cached dataset
/// skips the sampling join.
[[nodiscard]] std::uint64_t estimate_strided_total(const GridIndex& grid,
                                                   const BatchingConfig& cfg);

/// The WORKQUEUE estimate: the first `sample_fraction` of D' (the
/// heaviest points) extrapolated to the whole dataset, combined with
/// the strided estimate by max (see plan_queue's deviation note).
/// Skew applied; deterministic and cacheable like the strided one.
[[nodiscard]] std::uint64_t estimate_queue_total(
    const GridIndex& grid, const BatchingConfig& cfg,
    std::span<const PointId> queue_order);

/// R×S analogues (JoinMode::RxS): the sample is drawn from *probe*
/// point ids and counted against the gridded dataset
/// (probe_neighbor_counts), extrapolated to |probe|. Deterministic and
/// cacheable per (grid, probe identity, knobs) like the self-join ones.
[[nodiscard]] std::uint64_t estimate_rxs_strided_total(
    const GridIndex& grid, const Dataset& probe, const BatchingConfig& cfg);
[[nodiscard]] std::uint64_t estimate_rxs_queue_total(
    const GridIndex& grid, const Dataset& probe, const BatchingConfig& cfg,
    std::span<const PointId> queue_order);

/// Plans strided batches over natural point order. When
/// `sort_batches_by_workload`, each batch list is ordered by
/// non-increasing workload under `pattern` (SORTBYWL). An optional
/// tracer records the estimation-sampling / workload-quantification /
/// sort phases as host spans. A non-null `pool` parallelizes workload
/// quantification and the per-batch SORTBYWL sorts (deterministic —
/// same plan with or without it).
///
/// Cached-artifact fast path (JoinEngine): a non-empty `workloads`
/// span (size n, from point_workloads under `pattern`) skips the
/// quantification, and an engaged `precomputed_estimate` (a prior
/// estimate_strided_total value) skips the sampling join. The emitted
/// trace spans and the resulting plan are identical either way.
///
/// A non-null `probe` plans an R×S join instead: batches cover *probe*
/// point ids (|probe| query points), `workloads` / the quantification
/// fallback are per-probe-point (probe_point_workloads), and the
/// estimate is the R×S strided one. Everything else — striding,
/// SORTBYWL ordering, caching contract — is unchanged.
[[nodiscard]] BatchPlan plan_strided(
    const GridIndex& grid, const BatchingConfig& cfg,
    bool sort_batches_by_workload, CellPattern pattern,
    obs::Tracer* tracer = nullptr, ThreadPool* pool = nullptr,
    std::span<const std::uint64_t> workloads = {},
    std::optional<std::uint64_t> precomputed_estimate = std::nullopt,
    const Dataset* probe = nullptr);

/// Plans contiguous chunks over `queue_order` (D', workload-sorted).
/// `workloads` are the per-point candidate counts (point_workloads);
/// since a point emits at most 2*workload+1 pairs, chunks are cut so
/// their summed bound never exceeds the buffer — a hard no-overflow
/// guarantee (this realizes the paper's future-work item of dynamically
/// grouping query batches by result size). Chunks are additionally cut
/// by the statistical estimate so sizes stay near the paper's scheme.
/// An engaged `precomputed_estimate` (a prior estimate_queue_total
/// value) skips the sampling joins; plan and spans are identical.
///
/// A non-null `probe` plans R×S chunks: `queue_order` / `workloads`
/// index probe points. The 2*workload+1 per-point bound stays (R×S
/// actually emits at most workload pairs per point, so the bound is
/// merely more conservative — still a hard no-overflow guarantee).
[[nodiscard]] BatchPlan plan_queue(
    const GridIndex& grid, const BatchingConfig& cfg,
    std::span<const PointId> queue_order,
    std::span<const std::uint64_t> workloads, obs::Tracer* tracer = nullptr,
    std::optional<std::uint64_t> precomputed_estimate = std::nullopt,
    const Dataset* probe = nullptr);

/// Completion time of the batched pipeline: kernels serialize on the
/// device; each batch's result transfer serializes on the PCIe engine
/// and on its stream (batch b runs on stream b % nstreams, and a
/// stream's next kernel waits for its previous transfer). Seconds.
[[nodiscard]] double pipeline_seconds(std::span<const double> kernel_secs,
                                      std::span<const double> transfer_secs,
                                      int nstreams);

/// Transfer time of one batch of `pairs` results over the modeled link.
[[nodiscard]] double transfer_seconds(std::uint64_t pairs,
                                      const BatchingConfig& cfg);

}  // namespace gsj
