#include "sj/service.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <exception>
#include <iostream>
#include <numeric>
#include <optional>
#include <span>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "data/churn.hpp"
#include "grid/grid_index.hpp"
#include "grid/workload.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sj/execute.hpp"
#include "sj/pipeline.hpp"

namespace gsj {

const char* to_string(JoinStatus s) noexcept {
  switch (s) {
    case JoinStatus::Ok:
      return "ok";
    case JoinStatus::Rejected:
      return "rejected";
    case JoinStatus::Expired:
      return "expired";
    case JoinStatus::Cancelled:
      return "cancelled";
    case JoinStatus::Failed:
      return "failed";
  }
  return "unknown";
}

/// Shared state between a Ticket and the worker serving its request.
struct ServiceRequestState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;        ///< guarded by mu
  JoinResponse response;    ///< guarded by mu; valid once done
  std::atomic<bool> cancel{false};
  std::atomic<bool> started{false};
};

struct JoinService::QueueItem {
  std::shared_ptr<SharedDataset> sd;
  JoinRequest req;
  std::shared_ptr<ServiceRequestState> state;
  std::uint64_t seq = 0;
  std::uint64_t request_id = 0;  ///< stable id assigned at submit()
  std::uint64_t submit_ts = 0;   ///< tracer timestamp at submit (0 = none)
  Timer queued;                  ///< measures admission-queue wait
};

namespace detail {

/// One single-flight slot of the result-coalescing layer: the primary
/// request executing a result key, plus every identical request that
/// attached while it ran. Lives in SharedDataset::result_flights_;
/// `followers` is guarded by the owner's result_mu_. The primary
/// detaches the flight (publish_result / abandon_flight) on every exit
/// path, which also breaks the transient sd -> flight -> QueueItem ->
/// sd ownership cycle.
struct ResultFlight {
  SharedDataset* sd = nullptr;
  ResultKey key;
  bool store_pairs = false;  ///< the primary's storage mode
  std::uint64_t primary_rid = 0;
  struct Follower {
    JoinService::QueueItem item;
    /// Response shell filled at the follower's own dequeue
    /// (request id, wait_seconds) — completed at publish time.
    JoinResponse partial;
    std::uint64_t root_id = 0;
    std::uint64_t attach_ts = 0;  ///< tracer ts at attach (0 = none)
    Timer attached;               ///< wall time spent attached
  };
  std::vector<Follower> followers;
};

}  // namespace detail

namespace {

/// Ready-now test for a single-flight shared_future (no blocking).
template <typename Fut>
bool future_ready(const Fut& f) {
  return f.valid() &&
         f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

/// A ready shared_future wrapping an already-built artifact — how
/// repaired/patched artifacts re-enter the single-flight slots.
template <typename T>
std::shared_future<T> ready_future(T value) {
  std::promise<T> prom;
  prom.set_value(std::move(value));
  return prom.get_future().share();
}

/// The producing run's stats reduced to an *answer* summary: per-batch
/// and per-slot vectors describe one execution, not the result, so a
/// cached payload drops them.
SelfJoinStats scalar_stats(const SelfJoinStats& s) {
  SelfJoinStats c = s;
  c.batches.clear();
  c.batches.shrink_to_fit();
  c.slots.clear();
  c.slots.shrink_to_fit();
  return c;
}

/// Copies a cached result into a response's output honoring the
/// request's storage mode. A pairs-bearing payload can answer a
/// count-only request (the count rides along); the serving gate never
/// pairs the reverse.
void fill_served_output(SelfJoinOutput& out, const ResultSet& results,
                        const SelfJoinStats& stats, bool store_pairs) {
  out.stats = stats;
  if (results.stores_pairs() == store_pairs) {
    out.results = results;
  } else {
    out.results = ResultSet(false);
    out.results.add_count(results.count());
  }
}

/// True when a pure-move churn provably leaves a cached ε-result's
/// pair set unchanged: no touched point appears in a non-self cached
/// pair (its old ε-neighborhood was empty) and none has an ε-neighbor
/// at its new position (checked against the current grid). Cached
/// pairs are canonical sorted ordered pairs including self-pairs, so
/// both directions of any pair with a touched endpoint are caught by
/// probing `first == id`.
bool churn_misses_result(const Dataset& ds, const GridIndex& grid,
                         const ChurnSummary& churn, double epsilon,
                         const ResultSet& results) {
  const std::span<const ResultPair> pairs = results.pairs();
  const double eps2 = epsilon * epsilon;
  const int dims = grid.dims();
  const auto sdims = static_cast<std::size_t>(dims);
  // Enough shells that anything within `epsilon` of the probe sits in
  // a visited cell (cells are grid.epsilon() wide; floor+1 >= ceil).
  const int shells =
      static_cast<int>(std::floor(epsilon / grid.epsilon())) + 1;
  std::array<double, kMaxDims> cur{};
  for (const auto& t : churn.touched) {
    const auto lo = std::lower_bound(pairs.begin(), pairs.end(),
                                     ResultPair{t.id, PointId{0}});
    for (auto it = lo; it != pairs.end() && it->first == t.id; ++it) {
      if (it->second != t.id) return false;  // had an ε-neighbor before
    }
    for (int d = 0; d < dims; ++d) {
      cur[static_cast<std::size_t>(d)] = ds.coord(t.id, d);
    }
    bool neighbor = false;
    grid.for_each_within(
        {cur.data(), sdims}, shells,
        [&](std::size_t ci, const CellCoords&, std::uint64_t) {
          if (neighbor) return;
          for (const PointId q : grid.cell_points(ci)) {
            if (q == t.id) continue;
            double s = 0.0;
            for (int d = 0; d < dims; ++d) {
              const double diff =
                  cur[static_cast<std::size_t>(d)] - ds.coord(q, d);
              s += diff * diff;
            }
            if (s <= eps2) {
              neighbor = true;
              return;
            }
          }
        });
    if (neighbor) return false;  // has an ε-neighbor at the new spot
  }
  return true;
}

}  // namespace

std::size_t SharedDataset::cached_grid_count() const {
  std::shared_lock lk(mu_);
  return grids_.size();
}

std::size_t SharedDataset::cached_plan_count() const {
  std::shared_lock lk(mu_);
  return plans_.size();
}

std::size_t SharedDataset::cached_artifact_bytes() const {
  std::shared_lock lk(mu_);
  const auto ready = [](const auto& fut) {
    return fut.valid() &&
           fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  };
  std::size_t bytes = 0;
  // get() on a ready future can still rethrow a build failure in the
  // narrow window before the builder rolls its slot back; such slots
  // simply count 0.
  for (const auto& g : grids_) {
    if (!ready(g->grid)) continue;
    try {
      if (const GridPtr& p = g->grid.get(); p != nullptr) {
        bytes += p->memory_bytes();
      }
    } catch (...) {
    }
  }
  for (const auto& pl : plans_) {
    if (ready(pl->workloads)) {
      try {
        if (const WorkloadsPtr& w = pl->workloads.get(); w != nullptr) {
          bytes += w->capacity() * sizeof(std::uint64_t);
        }
      } catch (...) {
      }
    }
    if (ready(pl->order)) {
      try {
        if (const OrderPtr& o = pl->order.get(); o != nullptr) {
          bytes += o->capacity() * sizeof(PointId);
        }
      } catch (...) {
      }
    }
  }
  return bytes;
}

std::vector<SharedDataset::GridDigest> SharedDataset::cached_grid_digests()
    const {
  std::shared_lock lk(mu_);
  std::vector<GridDigest> out;
  out.reserve(grids_.size());
  for (const auto& g : grids_) {
    if (!future_ready(g->grid)) continue;
    try {
      if (const GridPtr& p = g->grid.get(); p != nullptr) {
        out.push_back({std::bit_cast<double>(g->eps_bits), p->content_key(),
                       p->generation()});
      }
    } catch (...) {
    }
  }
  return out;
}

std::size_t SharedDataset::result_cache_entries() const {
  std::lock_guard lk(result_mu_);
  return results_.size();
}

std::size_t SharedDataset::result_cache_bytes() const {
  std::lock_guard lk(result_mu_);
  return result_bytes_;
}

namespace detail {

/// PlanSource (sj/pipeline.hpp) over a SharedDataset's reader/writer-
/// locked caches. Discipline:
///
///  * hits take the shared lock only (scan, bump the atomic LRU tick,
///    copy the slot's shared_future) — concurrent hits never serialize;
///  * misses double-check under the exclusive lock, install a
///    promise-backed future (single-flight), then build *outside* any
///    lock and publish through the promise; waiters block on their
///    future copy, also outside the lock;
///  * every resolved slot/artifact is pinned by a shared_ptr member for
///    the run's duration, so concurrent LRU eviction can drop a slot
///    from the cache vectors without invalidating anything this run
///    still references (the pipeline's artifact-lifetime contract);
///  * a builder that throws publishes the exception to its waiters and
///    rolls the slot back so later requests rebuild.
///
/// The builder counts the miss; waiters and fast-path readers count
/// hits (a waiter is served from the cache — it just arrives early).
class ServicePlanSource {
 public:
  /// `cfg` makes the source mode-aware: for R×S requests, workloads/D'
  /// resolve against the probe dataset and plan slots are keyed by
  /// probe_signature. Null `cfg` (delta polls) behaves as Self.
  ServicePlanSource(JoinService& svc, SharedDataset& sd,
                    const SelfJoinConfig* cfg,
                    obs::RequestObs* robs = nullptr)
      : svc_(svc),
        sd_(sd),
        probe_(cfg != nullptr && cfg->mode == JoinMode::RxS ? cfg->probe
                                                            : nullptr),
        probe_sig_(cfg != nullptr ? probe_signature(*cfg) : 0),
        robs_(robs) {}

  ~ServicePlanSource() {
    if (pool_ != nullptr) svc_.return_pool(pool_threads_, std::move(pool_));
  }

  void sync() { svc_.sync_shared(sd_); }

  ThreadPool* pool(int n) {
    if (pool_ == nullptr) {
      pool_threads_ = n;
      pool_ = svc_.checkout_pool(n);
    }
    return pool_.get();
  }

  obs::Tracer* channel_tracer() { return svc_.config().obs.tracer; }

  obs::RequestObs* request_obs() { return robs_; }

  void resolve_grid(double eps, ThreadPool* p, bool* hit) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(eps);
    std::shared_future<SharedDataset::GridPtr> fut;
    std::promise<SharedDataset::GridPtr> prom;
    bool builder = false;
    {
      std::shared_lock lk(sd_.mu_);
      if (auto* s = find_grid_locked(bits)) {
        gslot_ = shared_of(sd_.grids_, s);
        fut = s->grid;
      }
    }
    if (!fut.valid()) {
      std::unique_lock lk(sd_.mu_);
      if (auto* s = find_grid_locked(bits)) {
        gslot_ = shared_of(sd_.grids_, s);
        fut = s->grid;
      } else {
        builder = true;
        fut = prom.get_future().share();
        auto slot = std::make_shared<SharedDataset::GridSlot>();
        slot->eps_bits = bits;
        slot->grid = fut;
        slot->last_used.store(next_tick(), std::memory_order_relaxed);
        gslot_ = slot;
        sd_.grids_.push_back(std::move(slot));
        evict_lru_locked(sd_.grids_, sd_.max_grids_);
      }
    }
    cache_event("grid", !builder);
    if (builder) {
      try {
        prom.set_value(std::make_shared<const GridIndex>(sd_.dataset(), eps, p));
      } catch (...) {
        prom.set_exception(std::current_exception());
        std::unique_lock lk(sd_.mu_);
        std::erase(sd_.grids_, gslot_);
        throw;
      }
    }
    grid_ = fut.get();  // waits outside any lock; rethrows build failures
    *hit = !builder;
  }

  [[nodiscard]] const GridIndex& grid() const { return *grid_; }

  std::span<const std::uint64_t> resolve_workloads(CellPattern pattern,
                                                   ThreadPool* p) {
    ensure_plan_slot(pattern);
    workloads_ = resolve_in_slot<SharedDataset::WorkloadsPtr>(
        "workload", [&](SharedDataset::PlanSlot& s) { return &s.workloads; },
        [&] {
          return std::make_shared<const std::vector<std::uint64_t>>(
              probe_ != nullptr ? probe_point_workloads(*grid_, *probe_, p)
                                : point_workloads(*grid_, pattern, p));
        });
    return *workloads_;
  }

  std::span<const PointId> resolve_order(CellPattern pattern, ThreadPool* p) {
    ensure_plan_slot(pattern);
    order_ = resolve_in_slot<SharedDataset::OrderPtr>(
        "order", [&](SharedDataset::PlanSlot& s) { return &s.order; },
        [&] {
          // The pipeline resolves workloads before the order, so
          // workloads_ is pinned by the time a builder runs. R×S
          // orders rank probe ids (the workloads already index them).
          std::vector<PointId> order(probe_ != nullptr
                                         ? probe_->size()
                                         : sd_.dataset().size());
          std::iota(order.begin(), order.end(), PointId{0});
          parallel_stable_sort(
              order,
              [&pw = *workloads_](PointId a, PointId b) {
                return pw[a] > pw[b];
              },
              p);
          return std::make_shared<const std::vector<PointId>>(
              std::move(order));
        });
    return *order_;
  }

  std::optional<std::uint64_t> find_estimate(bool queue,
                                             detail::EstimateKey key) {
    auto [mu, map] = estimate_map(queue);
    std::lock_guard lk(*mu);
    if (const auto it = map->find(key); it != map->end()) {
      cache_event("estimate", true);
      return it->second;
    }
    cache_event("estimate", false);
    return std::nullopt;
  }

  void put_estimate(bool queue, detail::EstimateKey key, std::uint64_t value) {
    auto [mu, map] = estimate_map(queue);
    std::lock_guard lk(*mu);
    // emplace = first-wins: concurrent runs compute the same pure
    // function of (grid, config), so whichever lands is the value.
    map->emplace(key, value);
  }

 private:
  [[nodiscard]] std::uint64_t next_tick() {
    return sd_.tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  SharedDataset::GridSlot* find_grid_locked(std::uint64_t bits) {
    for (auto& s : sd_.grids_) {
      if (s->eps_bits == bits) {
        s->last_used.store(next_tick(), std::memory_order_relaxed);
        return s.get();
      }
    }
    return nullptr;
  }

  SharedDataset::PlanSlot* find_plan_locked(std::uint64_t key,
                                            CellPattern pattern) {
    for (auto& s : sd_.plans_) {
      if (s->grid_key == key && s->pattern == pattern &&
          s->probe_sig == probe_sig_) {
        s->last_used.store(next_tick(), std::memory_order_relaxed);
        return s.get();
      }
    }
    return nullptr;
  }

  template <typename Slot>
  static std::shared_ptr<Slot> shared_of(
      const std::vector<std::shared_ptr<Slot>>& v, Slot* raw) {
    for (const auto& s : v) {
      if (s.get() == raw) return s;
    }
    return nullptr;  // unreachable: caller found `raw` in `v` under lock
  }

  /// LRU-evicts beyond `bound`. The just-inserted slot holds the max
  /// tick, so it is never the victim; pinned runs keep evicted slots
  /// alive through their shared_ptrs.
  template <typename Slot>
  void evict_lru_locked(std::vector<std::shared_ptr<Slot>>& v,
                        std::size_t bound) {
    bound = std::max<std::size_t>(1, bound);
    if (v.size() <= bound) return;
    const auto victim = std::min_element(
        v.begin(), v.end(), [](const auto& a, const auto& b) {
          return a->last_used.load(std::memory_order_relaxed) <
                 b->last_used.load(std::memory_order_relaxed);
        });
    v.erase(victim);
    count("evictions");
  }

  void ensure_plan_slot(CellPattern pattern) {
    if (pslot_ != nullptr) return;
    const std::uint64_t key = grid_->content_key();
    {
      std::shared_lock lk(sd_.mu_);
      if (auto* s = find_plan_locked(key, pattern)) {
        pslot_ = shared_of(sd_.plans_, s);
        return;
      }
    }
    std::unique_lock lk(sd_.mu_);
    if (auto* s = find_plan_locked(key, pattern)) {
      pslot_ = shared_of(sd_.plans_, s);
      return;
    }
    auto slot = std::make_shared<SharedDataset::PlanSlot>();
    slot->grid_key = key;
    slot->pattern = pattern;
    slot->probe_sig = probe_sig_;
    slot->last_used.store(next_tick(), std::memory_order_relaxed);
    pslot_ = slot;
    sd_.plans_.push_back(std::move(slot));
    evict_lru_locked(sd_.plans_, sd_.max_plans_);
  }

  /// Single-flight resolution of one future-valued artifact inside the
  /// pinned plan slot. `member` picks the future, `build` produces the
  /// artifact (runs outside any lock).
  template <typename Ptr, typename Member, typename Build>
  Ptr resolve_in_slot(const char* artifact, Member member, Build build) {
    std::shared_future<Ptr> fut;
    std::promise<Ptr> prom;
    bool builder = false;
    {
      std::shared_lock lk(sd_.mu_);
      if (member(*pslot_)->valid()) fut = *member(*pslot_);
    }
    if (!fut.valid()) {
      std::unique_lock lk(sd_.mu_);
      if (member(*pslot_)->valid()) {
        fut = *member(*pslot_);
      } else {
        builder = true;
        fut = prom.get_future().share();
        *member(*pslot_) = fut;
      }
    }
    cache_event(artifact, !builder);
    if (builder) {
      try {
        prom.set_value(build());
      } catch (...) {
        prom.set_exception(std::current_exception());
        std::unique_lock lk(sd_.mu_);
        *member(*pslot_) = {};  // roll back so later requests rebuild
        throw;
      }
    }
    return fut.get();
  }

  std::pair<std::mutex*, SharedDataset::EstimateMap*> estimate_map(
      bool queue) {
    if (queue) return {&pslot_->est_mu, &pslot_->queue_estimates};
    return {&gslot_->est_mu, &gslot_->strided_estimates};
  }

  void count(const char* event) {
    if (svc_.config().obs.metrics != nullptr) {
      svc_.config().obs.metrics->counter(std::string("sj.cache.") + event)
          .add(1);
    }
  }

  void cache_event(const char* artifact, bool hit) {
    if (robs_ != nullptr && robs_->breakdown != nullptr) {
      robs_->breakdown->count_cache(artifact, hit);
    }
    obs::Registry* m = svc_.config().obs.metrics;
    if (m == nullptr) return;
    m->counter(hit ? "sj.cache.hits" : "sj.cache.misses").add(1);
    m->counter(std::string("sj.cache.") + artifact +
               (hit ? ".hits" : ".misses"))
        .add(1);
  }

  JoinService& svc_;
  SharedDataset& sd_;
  const Dataset* probe_ = nullptr;    ///< R×S only; null for Self/KNN
  std::uint64_t probe_sig_ = 0;
  obs::RequestObs* robs_;             ///< request attribution (may be null)
  std::unique_ptr<ThreadPool> pool_;  ///< depot lease, returned in dtor
  int pool_threads_ = 0;

  // Pins for the run's duration (artifact-lifetime contract).
  std::shared_ptr<SharedDataset::GridSlot> gslot_;
  std::shared_ptr<SharedDataset::PlanSlot> pslot_;
  SharedDataset::GridPtr grid_;
  SharedDataset::WorkloadsPtr workloads_;
  SharedDataset::OrderPtr order_;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// JoinService
// ---------------------------------------------------------------------------

JoinService::JoinService(ServiceConfig cfg) : cfg_(cfg) {
  // The flight recorder is always on: cheap enough for serving mode,
  // and a Failed/Expired response needs breadcrumbs to dump.
  if (cfg_.obs.recorder == nullptr) {
    own_recorder_ = std::make_unique<obs::FlightRecorder>();
  }
}

JoinService::~JoinService() {
  {
    std::lock_guard lk(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

JoinService& JoinService::shared() {
  static JoinService svc;
  return svc;
}

obs::FlightRecorder& JoinService::recorder() const noexcept {
  return cfg_.obs.recorder != nullptr ? *cfg_.obs.recorder : *own_recorder_;
}

std::shared_ptr<SharedDataset> JoinService::attach(const Dataset& ds) {
  const auto sp = obs::span(cfg_.obs.tracer, "prepare");
  auto sd = std::shared_ptr<SharedDataset>(new SharedDataset(
      ds, cfg_.max_cached_grids, cfg_.max_cached_plans));
  std::lock_guard lk(attach_mu_);
  std::erase_if(attached_, [](const auto& w) { return w.expired(); });
  attached_.push_back(sd);
  return sd;
}

SelfJoinOutput JoinService::execute(SharedDataset& sd,
                                    const SelfJoinConfig& cfg,
                                    const std::atomic<bool>* cancel,
                                    obs::RequestObs* robs) {
  // Arena lease: returned to the depot on every exit path (including
  // OverflowError / CancelledError) so working memory stays bounded.
  struct ArenaLease {
    JoinService& svc;
    std::unique_ptr<detail::ScratchArena> arena;
    ~ArenaLease() { svc.return_arena(std::move(arena)); }
  } lease{*this, checkout_arena()};
  // Returns its pool lease in dtor.
  detail::ServicePlanSource src(*this, sd, &cfg, robs);

  SelfJoinOutput out;
  detail::plan_and_execute(cfg, sd.dataset(), src, *lease.arena, cancel, out);
  if (out.stats.fleet.ran()) record_fleet(out.stats.fleet);
  return out;
}

SelfJoinOutput JoinService::run(SharedDataset& sd, const SelfJoinConfig& cfg) {
  return execute(sd, cfg, /*cancel=*/nullptr, /*robs=*/nullptr);
}

void JoinService::sync_shared(SharedDataset& sd) {
  {
    std::shared_lock lk(sd.mu_);
    if (sd.ds_->generation() == sd.generation_) return;
  }
  std::unique_lock lk(sd.mu_);
  const std::uint64_t g = sd.ds_->generation();
  if (g == sd.generation_) return;
  const bool had = !sd.grids_.empty() || !sd.plans_.empty();
  if (sd.ds_->empty()) {
    // Nothing to repair against; drop everything (old behaviour).
    if (had) count("sj.cache.invalidations");
    sd.grids_.clear();
    sd.plans_.clear();
    sd.generation_ = g;
    return;
  }

  std::size_t repairs = 0;
  std::size_t repaired_cells = 0;
  std::size_t fallbacks = 0;
  std::size_t patches = 0;
  std::vector<std::shared_ptr<SharedDataset::GridSlot>> kept_grids;
  kept_grids.reserve(sd.grids_.size());
  std::vector<char> plan_alive(sd.plans_.size(), 0);
  for (auto& gs : sd.grids_) {
    SharedDataset::GridPtr old;
    if (future_ready(gs->grid)) {
      try {
        old = gs->grid.get();
      } catch (...) {
      }
    }
    // Still building or failed: no artifact to repair — drop the slot
    // (defensive; mutations are contracted to happen with no run in
    // flight, so this path is not normally reachable).
    if (old == nullptr) continue;

    // Repair a private copy: in-flight runs pin the old immutable
    // index through their shared_ptrs, so it must not change under
    // them; the slot's future swings to the repaired clone.
    const std::uint64_t old_key = old->content_key();
    auto fresh = std::make_shared<GridIndex>(*old);
    const GridRepairOutcome rep = fresh->repair();
    {
      // Estimates always re-derive under churn (a cold run would
      // re-sample the changed data), keeping warm == cold.
      std::lock_guard el(gs->est_mu);
      gs->strided_estimates.clear();
    }
    gs->grid = ready_future(SharedDataset::GridPtr(fresh));
    kept_grids.push_back(gs);
    if (!rep.repaired) {
      // Full rebuild inside repair(): the grid is current but there is
      // no dirty set, so dependent plans cannot be patched.
      ++fallbacks;
      continue;
    }
    ++repairs;
    repaired_cells += rep.dirty_cell_ids.size();

    const std::uint64_t new_key = fresh->content_key();
    for (std::size_t i = 0; i < sd.plans_.size(); ++i) {
      auto& ps = sd.plans_[i];
      if (ps->grid_key != old_key) continue;
      // R×S plans depend on probe points; the gridded side's churn
      // changes their candidate counts in ways the cell-granular patch
      // cannot express. Drop, don't patch (probe churn needs nothing:
      // it rotates probe_signature, so stale slots age out via LRU).
      if (ps->probe_sig != 0) continue;
      SharedDataset::WorkloadsPtr w;
      if (future_ready(ps->workloads)) {
        try {
          w = ps->workloads.get();
        } catch (...) {
        }
      }
      if (w == nullptr) continue;  // never built: nothing worth keeping
      SharedDataset::OrderPtr o;
      if (future_ready(ps->order)) {
        try {
          o = ps->order.get();
        } catch (...) {
        }
      }
      WorkloadPatchResult patch = patch_workloads(
          *fresh, ps->pattern, rep.dirty_cell_ids, *w,
          o != nullptr ? std::span<const PointId>(*o)
                       : std::span<const PointId>{});
      ps->workloads =
          ready_future(SharedDataset::WorkloadsPtr(std::make_shared<
              const std::vector<std::uint64_t>>(
              std::move(patch.point_workloads))));
      if (!patch.order.empty()) {
        ps->order = ready_future(SharedDataset::OrderPtr(
            std::make_shared<const std::vector<PointId>>(
                std::move(patch.order))));
      } else {
        ps->order = {};
      }
      ps->grid_key = new_key;
      {
        std::lock_guard el(ps->est_mu);
        ps->queue_estimates.clear();
      }
      plan_alive[i] = 1;
      ++patches;
    }
  }
  const std::size_t dropped_grids = sd.grids_.size() - kept_grids.size();
  sd.grids_ = std::move(kept_grids);
  std::size_t dropped_plans = 0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < sd.plans_.size(); ++i) {
    if (plan_alive[i] != 0) {
      if (live != i) sd.plans_[live] = std::move(sd.plans_[i]);
      ++live;
    } else {
      ++dropped_plans;
    }
  }
  sd.plans_.resize(live);
  sd.generation_ = g;

  if (repairs > 0) {
    count("sj.incr.repairs", repairs);
    count("sj.incr.repaired_cells", repaired_cells);
  }
  if (patches > 0) count("sj.incr.plan_patches", patches);
  if (fallbacks > 0) count("sj.incr.rebuild_fallbacks", fallbacks);
  if (had && (fallbacks > 0 || dropped_plans > 0 || dropped_grids > 0)) {
    count("sj.cache.invalidations");
  }
}

SelfJoinOutput JoinService::self_join(const Dataset& ds,
                                      const SelfJoinConfig& cfg) {
  // Ephemeral cache shell: exactly the free self_join's semantics (no
  // plan reuse across calls, no dataset lifetime entanglement) while
  // arenas and host pools still come from the bounded depots.
  SharedDataset sd(ds, cfg_.max_cached_grids, cfg_.max_cached_plans);
  return execute(sd, cfg, /*cancel=*/nullptr, /*robs=*/nullptr);
}

void JoinService::recycle(SelfJoinOutput&& out) {
  std::lock_guard lk(arena_mu_);
  if (idle_arenas_.empty()) return;  // no idle arena to donate to; drop
  detail::ScratchArena& arena = *idle_arenas_.back();
  arena.spare_pairs = out.results.take_storage();
  out.stats.batches.clear();
  arena.spare_batch_stats = std::move(out.stats.batches);
  out.stats.slots.clear();
  arena.spare_slots = std::move(out.stats.slots);
}

JoinService::Ticket JoinService::submit(std::shared_ptr<SharedDataset> sd,
                                        JoinRequest req) {
  Ticket t;
  t.state_ = std::make_shared<ServiceRequestState>();
  const std::uint64_t rid =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  count("svc.submitted");
  recorder().record("submit", rid, 0);

  bool rejected = false;
  {
    std::lock_guard lk(queue_mu_);
    if (stopping_ || queue_.size() >= cfg_.max_queue_depth) {
      rejected = true;
    } else {
      spawn_workers_locked();
      QueueItem item;
      item.sd = std::move(sd);
      item.req = std::move(req);
      item.state = t.state_;
      item.seq = next_seq_++;
      item.request_id = rid;
      if (cfg_.obs.tracer != nullptr) {
        item.submit_ts = cfg_.obs.tracer->now_ts();
      }
      queue_.push_back(std::move(item));
      std::push_heap(queue_.begin(), queue_.end(),
                     [](const QueueItem& a, const QueueItem& b) {
                       if (a.req.priority != b.req.priority) {
                         return a.req.priority < b.req.priority;
                       }
                       return a.seq > b.seq;  // FIFO within a priority
                     });
      set_queue_depth_locked(queue_.size());
    }
  }
  if (rejected) {
    count("svc.rejected");
    recorder().record("rejected", rid, 0);
    JoinResponse r;
    r.status = JoinStatus::Rejected;
    r.request_id = rid;
    r.breakdown.request_id = rid;
    respond(*t.state_, std::move(r));
  } else {
    queue_cv_.notify_one();
  }
  return t;
}

void JoinService::spawn_workers_locked() {
  if (!workers_.empty()) return;
  const std::size_t n = std::max<std::size_t>(1, cfg_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void JoinService::worker_loop() {
  const auto by_priority = [](const QueueItem& a, const QueueItem& b) {
    if (a.req.priority != b.req.priority) {
      return a.req.priority < b.req.priority;
    }
    return a.seq > b.seq;
  };
  for (;;) {
    QueueItem item;
    {
      std::unique_lock lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      // Shutdown drains: outstanding tickets are still answered.
      if (queue_.empty()) return;
      std::pop_heap(queue_.begin(), queue_.end(), by_priority);
      item = std::move(queue_.back());
      queue_.pop_back();
      set_queue_depth_locked(queue_.size());
    }

    ServiceRequestState& st = *item.state;
    const std::uint64_t rid = item.request_id;
    obs::Tracer* tracer = cfg_.obs.tracer;
    obs::FlightRecorder& rec = recorder();
    JoinResponse r;
    r.request_id = rid;
    r.breakdown.request_id = rid;
    r.wait_seconds = item.queued.seconds();
    r.breakdown.wait_seconds = r.wait_seconds;
    if (cfg_.obs.metrics != nullptr) {
      cfg_.obs.metrics->time_histogram("svc.queue_wait_seconds")
          .observe(r.wait_seconds);
    }
    // The request's root span id is allocated up-front so every child
    // (queue_wait here; plan/execute and their launches down the
    // pipeline) parents under it; the root span itself is recorded
    // once the terminal status is known.
    std::uint64_t root_id = 0;
    if (tracer != nullptr) {
      root_id = tracer->next_span_id();
      const std::uint64_t now = tracer->now_ts();
      const std::uint64_t dur =
          now >= item.submit_ts ? now - item.submit_ts : 0;
      tracer->record_span("queue_wait", item.submit_ts, dur,
                          obs::SpanContext{rid, root_id},
                          tracer->next_span_id());
    }
    rec.record("dequeue", rid, item.seq);

    if (st.cancel.load(std::memory_order_relaxed)) {
      r.status = JoinStatus::Cancelled;
      count("svc.cancelled");
      rec.record("cancelled_queued", rid, 0);
    } else if (r.wait_seconds > item.req.deadline_seconds) {
      r.status = JoinStatus::Expired;
      count("svc.expired");
      rec.record("expired", rid, 0);
    } else {
      // Result-serving gate (docs/SERVICE.md): serve an exact cached
      // result, attach to an identical in-flight execution, or run the
      // pipeline — possibly as the coalescing primary that duplicates
      // attach to.
      std::shared_ptr<detail::ResultFlight> flight;
      const ResultGate gate = result_gate(item, r, root_id, &flight);
      if (gate == ResultGate::Attached) continue;  // answered at publish
      if (gate == ResultGate::Served) {
        count("svc.completed");
        rec.record("done", rid, r.breakdown.result_pairs);
      } else {
        st.started.store(true, std::memory_order_release);
        {
          std::lock_guard lk(inflight_mu_);
          inflight_.emplace(rid, InFlight{item.req.priority, Timer{}});
        }
        Timer service_timer;
        obs::RequestObs robs;
        robs.tracer = tracer;
        robs.ctx = obs::SpanContext{rid, root_id};
        robs.recorder = &rec;
        robs.breakdown = &r.breakdown;
        try {
          r.output = execute(*item.sd, item.req.config, &st.cancel, &robs);
          r.status = JoinStatus::Ok;
          count("svc.completed");
          rec.record("done", rid, r.breakdown.result_pairs);
          if (flight != nullptr) publish_result(item, r.output, flight);
        } catch (const CancelledError&) {
          // Partial output was discarded with the run's scratch state.
          r.status = JoinStatus::Cancelled;
          count("svc.cancelled");
          if (flight != nullptr) abandon_flight(flight);
        } catch (const std::exception& e) {
          r.status = JoinStatus::Failed;
          r.error = e.what();
          count("svc.failed");
          rec.record("failed", rid, 0);
          if (flight != nullptr) abandon_flight(flight);
        }
        r.service_seconds = service_timer.seconds();
        if (cfg_.obs.metrics != nullptr) {
          cfg_.obs.metrics->time_histogram("svc.service_seconds")
              .observe(r.service_seconds);
        }
        {
          std::lock_guard lk(inflight_mu_);
          inflight_.erase(rid);
        }
      }
    }
    finish_request(item, root_id, std::move(r));
  }
}

void JoinService::finish_request(const QueueItem& item, std::uint64_t root_id,
                                 JoinResponse&& r) {
  obs::Tracer* tracer = cfg_.obs.tracer;
  if (tracer != nullptr) {
    const std::uint64_t now = tracer->now_ts();
    const std::uint64_t dur = now >= item.submit_ts ? now - item.submit_ts : 0;
    tracer->record_span("request", item.submit_ts, dur,
                        obs::SpanContext{item.request_id, 0}, root_id);
  }
  // Failed/Expired responses auto-dump the request's breadcrumbs —
  // the flight recorder's reason to exist.
  if (r.status == JoinStatus::Failed) {
    dump_recorder(item.request_id, "failed");
  } else if (r.status == JoinStatus::Expired) {
    dump_recorder(item.request_id, "expired");
  }
  respond(*item.state, std::move(r));
}

JoinService::ResultGate JoinService::result_gate(
    QueueItem& item, JoinResponse& r, std::uint64_t root_id,
    std::shared_ptr<detail::ResultFlight>* flight) {
  SharedDataset& sd = *item.sd;
  const SelfJoinConfig& cfg = item.req.config;
  // A request the pipeline would reject must reach the pipeline so the
  // cache never masks the canonical validation error (mirror of the
  // plan_and_execute / knn_execute gates, per mode).
  if (cfg.mode == JoinMode::Knn) {
    if (cfg.probe == nullptr || cfg.knn_k < 1 || !(cfg.knn_growth > 1.0) ||
        !(cfg.knn_initial_epsilon >= 0.0) || sd.dataset().empty() ||
        cfg.probe->dims() != sd.dataset().dims()) {
      return ResultGate::Execute;
    }
  } else {
    if (!(cfg.epsilon > 0.0) || sd.dataset().empty() || cfg.k < 1 ||
        cfg.device.warp_size % cfg.k != 0) {
      return ResultGate::Execute;
    }
    if (cfg.mode == JoinMode::RxS &&
        (cfg.probe == nullptr ||
         cfg.probe->dims() != sd.dataset().dims())) {
      return ResultGate::Execute;
    }
    try {
      cfg.batching.validate();
    } catch (const std::exception&) {
      return ResultGate::Execute;
    }
  }

  const detail::ResultKey key =
      detail::make_result_key(sd.dataset().generation(), cfg);
  const bool needs_pairs = cfg.store_pairs;
  const std::uint64_t rid = item.request_id;
  obs::Tracer* tracer = cfg_.obs.tracer;
  obs::FlightRecorder& rec = recorder();
  Timer serve_timer;
  const std::uint64_t serve_ts = tracer != nullptr ? tracer->now_ts() : 0;

  // Generation repair: advance the result cache across the churn,
  // keeping entries the mutation window provably did not affect
  // (selective invalidation — see repair_result_cache).
  repair_result_cache(sd, key.generation);

  // One critical section decides the request's path, so exactly one
  // request can ever become the primary for a given key: check the
  // cache, else attach to a flight, else register as primary.
  ResultPtr exact;
  ResultPtr super;
  {
    std::lock_guard lk(sd.result_mu_);
    // Wholesale sweep as a race backstop: a mutation that landed
    // between the repair above and this lookup invalidates everything
    // as a unit (the pre-repair discipline).
    if (sd.result_generation_ != key.generation) {
      if (!sd.results_.empty()) {
        count("svc.result_cache.invalidations");
        adjust_result_bytes(-static_cast<long long>(sd.result_bytes_));
        sd.results_.clear();
        sd.result_bytes_ = 0;
      }
      sd.result_generation_ = key.generation;
    }
    for (const auto& s : sd.results_) {
      if (s->eps_bits == key.eps_bits &&
          s->class_digest == key.config_digest &&
          (!needs_pairs || s->has_pairs)) {
        s->last_used = ++sd.result_tick_;
        exact = s->payload;
        break;
      }
    }
    if (exact == nullptr) {
      for (const auto& f : sd.result_flights_) {
        if (f->key == key && (!needs_pairs || f->store_pairs)) {
          count("svc.result_cache.coalesced");
          rec.record("result_coalesce", rid, f->primary_rid);
          detail::ResultFlight::Follower fo;
          fo.item = std::move(item);
          fo.partial = std::move(r);
          fo.root_id = root_id;
          fo.attach_ts = serve_ts;
          f->followers.push_back(std::move(fo));
          return ResultGate::Attached;
        }
      }
      // ε-subsumption candidate: the smallest pairs-bearing superset
      // (least filter work). Self-only — an R×S/KNN payload's pairs
      // are not a superset of any other request class, and the filter
      // pass assumes self-join pair semantics. Candidates must share
      // this request's config class (same digest) so that, e.g., an
      // R×S cache entry never leaks into a Self request. A same-ε
      // entry is unreachable here — it either hit above or lacks the
      // pairs this request needs (in which case has_pairs is false and
      // it is skipped too).
      const SharedDataset::ResultSlot* cand = nullptr;
      if (cfg.mode == JoinMode::Self) {
        for (const auto& s : sd.results_) {
          if (!s->has_pairs || s->class_digest != key.config_digest ||
              s->payload->epsilon < cfg.epsilon) {
            continue;
          }
          if (cand == nullptr ||
              s->payload->results.count() < cand->payload->results.count()) {
            cand = s.get();
          }
        }
      }
      if (cand != nullptr && subsume_worthwhile(sd, cfg, *cand->payload)) {
        // Safe lock nesting: result_mu_ -> sd.mu_ (shared) -> est_mu;
        // no path acquires result_mu_ while holding either.
        super = cand->payload;
      }
      if (super == nullptr) {
        // Miss: this request becomes the coalescing primary its
        // duplicates attach to, registered in the same critical
        // section as the lookup that missed.
        auto f = std::make_shared<detail::ResultFlight>();
        f->sd = &sd;
        f->key = key;
        f->store_pairs = needs_pairs;
        f->primary_rid = rid;
        sd.result_flights_.push_back(f);
        *flight = std::move(f);
      }
    }
  }
  if (exact == nullptr && super == nullptr) {
    count("svc.result_cache.misses");
    return ResultGate::Execute;
  }

  if (exact != nullptr) {
    fill_served_output(r.output, exact->results, exact->stats, needs_pairs);
    r.breakdown.served_from = obs::ServedFrom::ResultCache;
    count("svc.result_cache.hits");
    rec.record("result_hit", rid, r.output.stats.result_pairs);
  } else {
    // Serve ε' from the cached ε ⊇ ε' result: one linear dist² pass
    // over canonically ordered pairs. Filtering preserves order, so
    // the output is bit-identical to a cold run's canonicalized
    // result. `super` pins the payload — concurrent eviction of its
    // slot cannot dangle this read.
    ResultSet filtered(needs_pairs);
    const std::uint64_t kept =
        detail::subsume_filter(sd.dataset(), super->results.pairs(),
                               cfg.epsilon, needs_pairs ? &filtered : nullptr);
    if (!needs_pairs) filtered.add_count(kept);
    SelfJoinStats stats;
    stats.result_pairs = kept;
    // Retain the derived ε' entry so repeats hit exactly; allocation
    // failure only skips retention.
    if (cfg_.max_result_cache_bytes > 0) {
      try {
        auto pay = std::make_shared<ResultPayload>();
        pay->epsilon = cfg.epsilon;
        pay->results = filtered;
        pay->stats = stats;
        pay->bytes = sizeof(ResultPayload) + pay->results.memory_bytes();
        std::lock_guard lk(sd.result_mu_);
        if (sd.result_generation_ == key.generation) {
          insert_result_locked(sd, key.eps_bits, key.config_digest, pay);
        }
      } catch (const std::bad_alloc&) {
      }
    }
    r.output.results = std::move(filtered);
    r.output.stats = stats;
    r.breakdown.served_from = obs::ServedFrom::Subsumed;
    count("svc.result_cache.subsumed");
    rec.record("subsume_filter", rid, kept);
  }
  r.status = JoinStatus::Ok;
  r.breakdown.result_pairs = r.output.stats.result_pairs;
  r.service_seconds = serve_timer.seconds();
  if (r.breakdown.served_from == obs::ServedFrom::Subsumed) {
    // The filter pass is this request's whole execution stage.
    r.breakdown.execute_seconds = r.service_seconds;
  }
  if (cfg_.obs.metrics != nullptr) {
    cfg_.obs.metrics->time_histogram("svc.service_seconds")
        .observe(r.service_seconds);
  }
  if (tracer != nullptr) {
    const char* name = r.breakdown.served_from == obs::ServedFrom::Subsumed
                           ? "subsume_filter"
                           : "result_hit";
    const std::uint64_t now = tracer->now_ts();
    const std::uint64_t dur = now >= serve_ts ? now - serve_ts : 0;
    tracer->record_span(name, serve_ts, dur, obs::SpanContext{rid, root_id},
                        tracer->next_span_id());
  }
  return ResultGate::Served;
}

bool JoinService::subsume_worthwhile(SharedDataset& sd,
                                     const SelfJoinConfig& cfg,
                                     const ResultPayload& entry) {
  // Cost model: the filter reads every cached pair once; a full join
  // costs at least its own output. Compare the superset's size against
  // the estimate cache's prediction for the requested ε (the grid-level
  // strided estimate — present once any variant has planned this ε).
  // No estimate on file means no grid exists for this ε either: the
  // single linear pass wins by default against grid build + join.
  std::optional<std::uint64_t> est;
  {
    std::shared_lock lk(sd.mu_);
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(cfg.epsilon);
    // Subsumption is Self-only, so the probe-signature element is 0.
    const detail::EstimateKey key{
        std::bit_cast<std::uint64_t>(cfg.batching.sample_fraction),
        std::bit_cast<std::uint64_t>(cfg.batching.inject_estimator_skew), 0};
    for (const auto& g : sd.grids_) {
      if (g->eps_bits != bits) continue;
      std::lock_guard el(g->est_mu);
      if (const auto it = g->strided_estimates.find(key);
          it != g->strided_estimates.end()) {
        est = it->second;
      }
      break;
    }
  }
  if (!est.has_value()) return true;
  return static_cast<double>(entry.results.count()) <=
         cfg_.subsume_cost_ratio * static_cast<double>(*est);
}

void JoinService::repair_result_cache(SharedDataset& sd,
                                      std::uint64_t to_generation) {
  std::uint64_t from = 0;
  {
    std::lock_guard lk(sd.result_mu_);
    if (sd.result_generation_ == to_generation) return;
    from = sd.result_generation_;
    if (sd.results_.empty()) {
      sd.result_generation_ = to_generation;
      return;
    }
  }
  // Survivor checks run against a repaired current-generation grid, so
  // bring the artifact caches current first (outside result_mu_; the
  // documented order is result_mu_ -> mu_, never the reverse).
  sync_shared(sd);

  const Dataset& ds = sd.dataset();
  std::optional<ChurnSummary> churn;
  if (const auto window = ds.mutations_since(from); window.has_value()) {
    churn = summarize_churn(ds, *window);
  }
  // Pure moves keep every point id stable, which is what makes the
  // cached pair lists' labels comparable across the window; any
  // insert/erase (or a lost window) falls back to dropping everything.
  SharedDataset::GridPtr grid;
  if (churn.has_value() && churn->pure_moves && !churn->touched.empty()) {
    std::shared_lock lk(sd.mu_);
    for (const auto& gs : sd.grids_) {
      if (!future_ready(gs->grid)) continue;
      try {
        if (SharedDataset::GridPtr p = gs->grid.get();
            p != nullptr && p->generation() == ds.generation()) {
          grid = std::move(p);
          break;
        }
      } catch (...) {
      }
    }
  }
  const bool can_check = churn.has_value() && churn->pure_moves &&
                         (churn->touched.empty() || grid != nullptr);

  // Survivor analysis is Self-only: churn_misses_result reads cached
  // pair ids as gridded-dataset point ids, which R×S/KNN payloads'
  // probe-side ids are not. Non-Self entries always drop on churn.
  const std::uint64_t self_digest =
      detail::make_result_key(0, SelfJoinConfig{}).config_digest;
  std::lock_guard lk(sd.result_mu_);
  // Another worker already advanced (or re-swept) the cache — its
  // verdicts stand; re-checking against a different window is wrong.
  if (sd.result_generation_ != from) return;
  std::size_t kept = 0;
  std::size_t dropped = 0;
  std::erase_if(sd.results_, [&](const auto& s) {
    const bool survive =
        can_check && s->class_digest == self_digest &&
        (churn->touched.empty() ||
         (s->has_pairs && churn_misses_result(ds, *grid, *churn,
                                              s->payload->epsilon,
                                              s->payload->results)));
    if (survive) {
      ++kept;
      return false;
    }
    adjust_result_bytes(-static_cast<long long>(s->payload->bytes));
    sd.result_bytes_ -= s->payload->bytes;
    ++dropped;
    return true;
  });
  sd.result_generation_ = to_generation;
  if (kept > 0) count("svc.result_cache.repair_kept", kept);
  if (dropped > 0) count("svc.result_cache.invalidations");
}

void JoinService::insert_result_locked(SharedDataset& sd,
                                       std::uint64_t eps_bits,
                                       std::uint64_t class_digest,
                                       const ResultPtr& payload) {
  if (cfg_.max_result_cache_bytes == 0) return;
  const bool has_pairs = payload->results.stores_pairs();
  for (auto it = sd.results_.begin(); it != sd.results_.end();) {
    if ((*it)->eps_bits != eps_bits || (*it)->class_digest != class_digest) {
      ++it;
      continue;
    }
    // First-wins when the resident entry already satisfies at least as
    // much as the new one; a pairs-bearing entry supersedes a
    // count-only duplicate for the same ε.
    if ((*it)->has_pairs || !has_pairs) return;
    adjust_result_bytes(-static_cast<long long>((*it)->payload->bytes));
    sd.result_bytes_ -= (*it)->payload->bytes;
    it = sd.results_.erase(it);
  }
  auto slot = std::make_shared<SharedDataset::ResultSlot>();
  slot->eps_bits = eps_bits;
  slot->class_digest = class_digest;
  slot->has_pairs = has_pairs;
  slot->payload = payload;
  slot->last_used = ++sd.result_tick_;
  sd.results_.push_back(std::move(slot));
  sd.result_bytes_ += payload->bytes;
  adjust_result_bytes(static_cast<long long>(payload->bytes));
  // Byte-budget LRU. The just-inserted entry holds the freshest tick,
  // so it goes only when it alone exceeds the budget — a result larger
  // than the whole budget is not worth holding the cache for.
  while (sd.result_bytes_ > cfg_.max_result_cache_bytes &&
         !sd.results_.empty()) {
    const auto victim = std::min_element(
        sd.results_.begin(), sd.results_.end(),
        [](const auto& a, const auto& b) { return a->last_used < b->last_used; });
    adjust_result_bytes(-static_cast<long long>((*victim)->payload->bytes));
    sd.result_bytes_ -= (*victim)->payload->bytes;
    sd.results_.erase(victim);
    count("svc.result_cache.evictions");
  }
}

void JoinService::publish_result(
    const QueueItem& item, const SelfJoinOutput& out,
    const std::shared_ptr<detail::ResultFlight>& flight) {
  SharedDataset& sd = *item.sd;
  // Build the immutable payload outside any lock. An allocation
  // failure must not fail an Ok request: skip retention and serve the
  // followers straight from the output.
  ResultPtr payload;
  if (cfg_.max_result_cache_bytes > 0) {
    try {
      auto pay = std::make_shared<ResultPayload>();
      pay->epsilon = item.req.config.epsilon;
      pay->results = out.results;
      pay->stats = scalar_stats(out.stats);
      pay->bytes = sizeof(ResultPayload) + pay->results.memory_bytes();
      payload = std::move(pay);
    } catch (const std::bad_alloc&) {
    }
  }
  std::vector<detail::ResultFlight::Follower> followers;
  {
    std::lock_guard lk(sd.result_mu_);
    followers = std::move(flight->followers);
    flight->followers.clear();
    std::erase(sd.result_flights_, flight);
    if (payload != nullptr && sd.result_generation_ == flight->key.generation) {
      insert_result_locked(sd, flight->key.eps_bits,
                           flight->key.config_digest, payload);
    }
  }
  if (followers.empty()) return;

  const SelfJoinStats fallback_stats =
      payload != nullptr ? SelfJoinStats{} : scalar_stats(out.stats);
  obs::Tracer* tracer = cfg_.obs.tracer;
  obs::FlightRecorder& rec = recorder();
  for (auto& fo : followers) {
    JoinResponse fr = std::move(fo.partial);
    const std::uint64_t frid = fo.item.request_id;
    if (fo.item.state->cancel.load(std::memory_order_relaxed)) {
      fr.status = JoinStatus::Cancelled;
      count("svc.cancelled");
      rec.record("cancelled_coalesced", frid, 0);
    } else {
      const ResultSet& res = payload != nullptr ? payload->results : out.results;
      const SelfJoinStats& stats =
          payload != nullptr ? payload->stats : fallback_stats;
      fill_served_output(fr.output, res, stats,
                         fo.item.req.config.store_pairs);
      fr.status = JoinStatus::Ok;
      fr.breakdown.served_from = obs::ServedFrom::Coalesced;
      fr.breakdown.result_pairs = fr.output.stats.result_pairs;
      fr.service_seconds = fo.attached.seconds();
      count("svc.completed");
      rec.record("done", frid, fr.breakdown.result_pairs);
      if (cfg_.obs.metrics != nullptr) {
        cfg_.obs.metrics->time_histogram("svc.service_seconds")
            .observe(fr.service_seconds);
      }
      if (tracer != nullptr) {
        const std::uint64_t now = tracer->now_ts();
        const std::uint64_t dur = now >= fo.attach_ts ? now - fo.attach_ts : 0;
        tracer->record_span("result_coalesce", fo.attach_ts, dur,
                            obs::SpanContext{frid, fo.root_id},
                            tracer->next_span_id());
      }
    }
    finish_request(fo.item, fo.root_id, std::move(fr));
  }
}

void JoinService::abandon_flight(
    const std::shared_ptr<detail::ResultFlight>& flight) {
  SharedDataset& sd = *flight->sd;
  std::vector<detail::ResultFlight::Follower> followers;
  {
    std::lock_guard lk(sd.result_mu_);
    followers = std::move(flight->followers);
    flight->followers.clear();
    std::erase(sd.result_flights_, flight);
  }
  if (followers.empty()) return;
  // The primary produced no result (failed or cancelled). Followers go
  // back into the admission queue with their original seq, so priority
  // order is preserved; each re-runs the gate on its next dequeue and
  // one becomes the new primary. Their queue-wait clocks keep running
  // and the queue_wait histogram sees a second observation on
  // re-dequeue — accepted for this rare path.
  {
    std::lock_guard lk(queue_mu_);
    for (auto& fo : followers) {
      queue_.push_back(std::move(fo.item));
      std::push_heap(queue_.begin(), queue_.end(),
                     [](const QueueItem& a, const QueueItem& b) {
                       if (a.req.priority != b.req.priority) {
                         return a.req.priority < b.req.priority;
                       }
                       return a.seq > b.seq;
                     });
    }
    set_queue_depth_locked(queue_.size());
  }
  queue_cv_.notify_all();
}

void JoinService::adjust_result_bytes(long long delta) {
  const long long now =
      result_bytes_total_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (cfg_.obs.metrics != nullptr) {
    cfg_.obs.metrics->gauge("svc.result_cache.bytes")
        .set(static_cast<double>(std::max<long long>(0, now)));
  }
}

// ---------------------------------------------------------------------------
// Streaming delta subscriptions (docs/STREAMING.md)
// ---------------------------------------------------------------------------

JoinService::SubscriptionId JoinService::subscribe(
    std::shared_ptr<SharedDataset> sd, double epsilon) {
  GSJ_CHECK_MSG(sd != nullptr, "subscribe requires an attached dataset");
  GSJ_CHECK_MSG(epsilon > 0.0, "subscribe requires epsilon > 0");
  Subscription sub;
  sub.epsilon = epsilon;
  sub.generation = sd->dataset().generation();
  if (!sd->dataset().empty()) {
    // Seed the retained snapshot with one full stored-pairs join run
    // through the shared caches (so its grid/plan work is reused by
    // later requests). Stored pairs come out canonicalized — the order
    // every delta set-op below relies on.
    SelfJoinConfig cfg;
    cfg.epsilon = epsilon;
    cfg.store_pairs = true;
    SelfJoinOutput out = run(*sd, cfg);
    const auto pairs = out.results.pairs();
    sub.retained.assign(pairs.begin(), pairs.end());
    recycle(std::move(out));
  }
  sub.sd = std::move(sd);
  count("svc.stream.subscribes");
  std::lock_guard lk(sub_mu_);
  const SubscriptionId id = ++next_sub_id_;
  subs_.emplace(id, std::move(sub));
  return id;
}

JoinService::DeltaPoll JoinService::poll(SubscriptionId id) {
  std::lock_guard lk(sub_mu_);
  const auto it = subs_.find(id);
  GSJ_CHECK_MSG(it != subs_.end(), "poll on unknown subscription " << id);
  Subscription& sub = it->second;
  count("svc.stream.polls");
  DeltaPoll out;
  const Dataset& ds = sub.sd->dataset();
  out.generation = ds.generation();
  if (out.generation == sub.generation) return out;  // quiescent: no work

  std::optional<PairDelta> delta = delta_for(sub);
  if (delta.has_value()) {
    count("svc.stream.deltas");
  } else {
    delta = full_diff(sub);
    out.fallback = true;
    count("svc.stream.fallbacks");
  }
  // Advance the retained snapshot by sorted set ops. Survivors of
  // (retained \ lost) are untouched pairs whose ids are stable across
  // the window (docs/STREAMING.md), and gained carries current ids, so
  // the union is exactly the current canonical pair set.
  std::vector<ResultPair> survivors;
  survivors.reserve(sub.retained.size());
  std::set_difference(sub.retained.begin(), sub.retained.end(),
                      delta->lost.begin(), delta->lost.end(),
                      std::back_inserter(survivors));
  std::vector<ResultPair> next;
  next.reserve(survivors.size() + delta->gained.size());
  std::set_union(survivors.begin(), survivors.end(), delta->gained.begin(),
                 delta->gained.end(), std::back_inserter(next));
  sub.retained = std::move(next);
  sub.generation = out.generation;
  if (!delta->gained.empty()) {
    count("svc.stream.gained_pairs", delta->gained.size());
  }
  if (!delta->lost.empty()) {
    count("svc.stream.lost_pairs", delta->lost.size());
  }
  out.delta = std::move(*delta);
  return out;
}

std::optional<PairDelta> JoinService::delta_for(Subscription& sub) {
  SharedDataset& sd = *sub.sd;
  const Dataset& ds = sd.dataset();
  if (ds.empty()) return std::nullopt;
  const auto window = ds.mutations_since(sub.generation);
  if (!window.has_value()) return std::nullopt;
  const ChurnSummary churn = summarize_churn(ds, *window);
  // Resolve (and repair) the ε grid through the shared artifact cache —
  // a poll warms the same grid later join requests hit.
  detail::ServicePlanSource src(*this, sd, /*cfg=*/nullptr, nullptr);
  src.sync();
  bool hit = false;
  src.resolve_grid(sub.epsilon, nullptr, &hit);
  return compute_pair_delta(src.grid(), churn, sub.epsilon);
}

PairDelta JoinService::full_diff(Subscription& sub) {
  PairDelta d;
  std::vector<ResultPair> now;
  if (!sub.sd->dataset().empty()) {
    SelfJoinConfig cfg;
    cfg.epsilon = sub.epsilon;
    cfg.store_pairs = true;
    SelfJoinOutput out = run(*sub.sd, cfg);
    const auto pairs = out.results.pairs();
    now.assign(pairs.begin(), pairs.end());
    recycle(std::move(out));
  }
  std::set_difference(now.begin(), now.end(), sub.retained.begin(),
                      sub.retained.end(), std::back_inserter(d.gained));
  std::set_difference(sub.retained.begin(), sub.retained.end(), now.begin(),
                      now.end(), std::back_inserter(d.lost));
  return d;
}

void JoinService::unsubscribe(SubscriptionId id) {
  std::lock_guard lk(sub_mu_);
  subs_.erase(id);
}

std::size_t JoinService::subscription_count() const {
  std::lock_guard lk(sub_mu_);
  return subs_.size();
}

void JoinService::record_fleet(const simt::FleetStats& fs) {
  {
    std::lock_guard lk(fleet_mu_);
    ++fleet_runs_;
    fleet_rebalances_ += fs.rebalances;
    fleet_last_cov_ = fs.device_cov;
    fleet_last_imbalance_ = fs.imbalance;
    if (fleet_devices_.size() < fs.devices.size()) {
      fleet_devices_.resize(fs.devices.size());
    }
    for (const simt::DeviceLoad& d : fs.devices) {
      const auto idx = static_cast<std::size_t>(d.device);
      if (idx >= fleet_devices_.size()) continue;  // defensive
      ServiceSnapshot::FleetDeviceRow& row = fleet_devices_[idx];
      row.device = d.device;
      row.grains += d.grains;
      row.busy_seconds += d.busy_seconds;
      row.tail_idle_seconds += d.tail_idle_seconds;
    }
  }
  obs::Registry* m = cfg_.obs.metrics;
  if (m == nullptr) return;
  m->counter("svc.fleet.runs").add(1);
  m->counter("svc.fleet.rebalances").add(fs.rebalances);
  m->counter("svc.fleet.grains").add(fs.num_grains);
  m->gauge("svc.fleet.devices").set(static_cast<double>(fs.devices.size()));
  m->gauge("svc.fleet.device_cov").set(fs.device_cov);
  m->gauge("svc.fleet.makespan_seconds").set(fs.makespan_seconds);
  m->gauge("svc.fleet.tail_idle_seconds").set(fs.tail_idle_seconds);
  m->gauge("svc.fleet.imbalance").set(fs.imbalance);
  for (const simt::DeviceLoad& d : fs.devices) {
    const std::string dev = std::to_string(d.device);
    m->gauge(obs::labeled("svc.fleet.device_busy_seconds", {{"device", dev}}))
        .set(d.busy_seconds);
  }
}

void JoinService::dump_recorder(std::uint64_t request_id, const char* why) {
  std::lock_guard lk(dump_mu_);
  std::ostream& os =
      cfg_.recorder_dump != nullptr ? *cfg_.recorder_dump : std::cerr;
  os << "flight-recorder dump (request " << request_id << ", " << why
     << "):\n";
  recorder().dump(os, request_id);
  os.flush();
}

ServiceSnapshot JoinService::snapshot() const {
  ServiceSnapshot s;
  {
    std::lock_guard lk(queue_mu_);
    s.queue_depth = queue_.size();
    for (const QueueItem& q : queue_) ++s.queued_by_priority[q.req.priority];
  }
  {
    std::lock_guard lk(inflight_mu_);
    s.in_flight.reserve(inflight_.size());
    for (const auto& [rid, f] : inflight_) {
      s.in_flight.push_back({rid, f.priority, f.started.seconds()});
    }
  }
  s.idle_arenas = resident_arenas();
  s.idle_thread_pools = resident_thread_pools();
  {
    std::lock_guard lk(attach_mu_);
    std::erase_if(attached_, [](const auto& w) { return w.expired(); });
    for (const auto& w : attached_) {
      const std::shared_ptr<SharedDataset> sd = w.lock();
      if (sd == nullptr) continue;
      ++s.attached_datasets;
      s.cached_grids += sd->cached_grid_count();
      s.cached_plans += sd->cached_plan_count();
      s.cached_bytes += sd->cached_artifact_bytes();
      s.result_entries += sd->result_cache_entries();
      s.result_bytes += sd->result_cache_bytes();
    }
  }
  s.result_budget_bytes = cfg_.max_result_cache_bytes;
  s.subscriptions = subscription_count();
  {
    std::lock_guard lk(fleet_mu_);
    s.fleet_runs = fleet_runs_;
    s.fleet_rebalances = fleet_rebalances_;
    s.fleet_device_cov = fleet_last_cov_;
    s.fleet_imbalance = fleet_last_imbalance_;
    s.fleet_devices = fleet_devices_;
  }
  return s;
}

void JoinService::respond(ServiceRequestState& st, JoinResponse&& r) {
  {
    std::lock_guard lk(st.mu);
    st.response = std::move(r);
    st.done = true;
  }
  st.cv.notify_all();
}

void JoinService::count(const char* name, std::uint64_t n) {
  if (cfg_.obs.metrics != nullptr) cfg_.obs.metrics->counter(name).add(n);
}

void JoinService::set_queue_depth_locked(std::size_t depth) {
  if (cfg_.obs.metrics != nullptr) {
    cfg_.obs.metrics->gauge("svc.queue_depth").set(static_cast<double>(depth));
  }
}

JoinResponse JoinService::Ticket::get() {
  GSJ_CHECK_MSG(state_ != nullptr, "Ticket::get on an empty ticket");
  std::unique_lock lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
  return std::move(state_->response);
}

void JoinService::Ticket::cancel() noexcept {
  if (state_ != nullptr) {
    state_->cancel.store(true, std::memory_order_relaxed);
  }
}

bool JoinService::Ticket::started() const noexcept {
  return state_ != nullptr && state_->started.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Depots: bounded pools of per-run working memory.
// ---------------------------------------------------------------------------

std::unique_ptr<detail::ScratchArena> JoinService::checkout_arena() {
  {
    std::lock_guard lk(arena_mu_);
    if (!idle_arenas_.empty()) {
      auto arena = std::move(idle_arenas_.back());
      idle_arenas_.pop_back();
      return arena;
    }
  }
  return std::make_unique<detail::ScratchArena>();
}

void JoinService::return_arena(std::unique_ptr<detail::ScratchArena> arena) {
  std::lock_guard lk(arena_mu_);
  if (idle_arenas_.size() < cfg_.max_pooled_arenas) {
    idle_arenas_.push_back(std::move(arena));
  }
  // else: dropped — resident memory stays bounded by the depot cap.
}

std::unique_ptr<ThreadPool> JoinService::checkout_pool(int num_threads) {
  GSJ_CHECK_MSG(num_threads > 0, "pool requires num_threads > 0");
  {
    std::lock_guard lk(pool_mu_);
    auto& idle = idle_pools_[num_threads];
    if (!idle.empty()) {
      auto pool = std::move(idle.back());
      idle.pop_back();
      --idle_pool_count_;
      return pool;
    }
  }
  // Spawn outside the lock: pool construction starts real threads.
  return std::make_unique<ThreadPool>(static_cast<std::size_t>(num_threads));
}

void JoinService::return_pool(int num_threads,
                              std::unique_ptr<ThreadPool> pool) {
  {
    std::lock_guard lk(pool_mu_);
    if (idle_pool_count_ < cfg_.max_pooled_thread_pools) {
      idle_pools_[num_threads].push_back(std::move(pool));
      ++idle_pool_count_;
      return;
    }
  }
  // Destroy (join) the surplus pool outside the lock.
}

std::size_t JoinService::queue_depth() const {
  std::lock_guard lk(queue_mu_);
  return queue_.size();
}

std::size_t JoinService::resident_arenas() const {
  std::lock_guard lk(arena_mu_);
  return idle_arenas_.size();
}

std::size_t JoinService::resident_thread_pools() const {
  std::lock_guard lk(pool_mu_);
  return idle_pool_count_;
}

}  // namespace gsj
