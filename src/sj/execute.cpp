#include "sj/execute.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "grid/grain.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simt/counter.hpp"
#include "simt/fleet.hpp"

namespace gsj::detail {

void execute_self_join(const SelfJoinConfig& cfg, ExecutionInputs& in,
                       ScratchArena& arena, SelfJoinOutput& out) {
  const GridIndex& grid = *in.grid;
  BatchPlan& plan = *in.plan;
  const simt::DeviceConfig& device = in.device;
  obs::Tracer* tracer = cfg.tracer;

  out.stats.num_batches = plan.num_batches;
  out.stats.warp_size = device.warp_size;
  // Pre-size pair storage from the batch estimator so stored-pair joins
  // don't pay realloc churn while the kernel emits. The estimate is
  // untrusted — clamped to one buffer's capacity so a wildly high value
  // cannot bad_alloc before the join starts; growth past it is
  // amortized by the vector.
  if (cfg.store_pairs) {
    out.results.reserve(
        std::min(plan.estimated_total_pairs, cfg.batching.buffer_pairs));
  }

  // Per-batch result capacity: the fixed pinned buffer of a real GPU
  // join. Overflow detection (and its fault-injection override) only
  // applies while batching is on; a disabled batcher runs one unbounded
  // batch unless a capacity is injected for testing.
  const std::uint64_t capacity =
      cfg.batching.enabled ? cfg.batching.effective_capacity()
      : cfg.batching.inject_capacity != 0 ? cfg.batching.inject_capacity
                                          : ResultSet::kUnlimited;

  simt::DeviceCounter counter;
  auto& kernel_secs = arena.kernel_secs;
  auto& xfer_secs = arena.xfer_secs;
  kernel_secs.clear();
  xfer_secs.clear();
  kernel_secs.reserve(plan.num_batches);
  xfer_secs.reserve(plan.num_batches);
  out.stats.batches = std::move(arena.spare_batch_stats);
  arena.spare_batch_stats = {};
  out.stats.batches.clear();

  // --- per-warp collection (diagnostics, tracing, metrics) ---
  const bool collect = cfg.collect_diagnostics || tracer != nullptr ||
                       cfg.metrics != nullptr;
  auto& all_warp_cycles = arena.all_warp_cycles;  // across all batches
  all_warp_cycles.clear();
  std::vector<obs::SlotStats> slots = std::move(arena.spare_slots);
  arena.spare_slots = {};
  slots.assign(collect ? static_cast<std::size_t>(device.total_slots()) : 0,
               obs::SlotStats{});
  auto& slot_finish = arena.slot_finish;  // per launch
  slot_finish.assign(slots.size(), 0);
  obs::CycleHistogram* warp_cycle_hist =
      cfg.metrics != nullptr
          ? &cfg.metrics->cycle_histogram("sj.warp_cycles")
          : nullptr;
  std::uint64_t cycle_offset = 0;  // batches execute back-to-back
  std::uint32_t batch_index = 0;
  std::size_t batch_first_warp = 0;  // index into all_warp_cycles

  // Warp records are buffered per launch and committed to the obs
  // sinks only once the launch is known not to have overflowed — a
  // rolled-back launch must leave no trace in diagnostics, metrics or
  // the exported timeline (its cost is accounted in stats.wasted).
  auto& launch_records = arena.launch_records;
  launch_records.clear();
  simt::WarpObserver observer;
  if (collect) {
    observer = [&launch_records](const simt::WarpRecord& r) {
      launch_records.push_back(r);
    };
  }
  auto commit_record = [&](const simt::WarpRecord& r) {
    all_warp_cycles.push_back(r.cycles);
    auto& s = slots[static_cast<std::size_t>(r.slot)];
    ++s.warps;
    s.busy_cycles += r.cycles;
    auto& fin = slot_finish[static_cast<std::size_t>(r.slot)];
    fin = std::max(fin, r.start_cycle + r.cycles);
    if (tracer != nullptr) tracer->record_warp(r, cycle_offset, batch_index);
    if (warp_cycle_hist != nullptr) warp_cycle_hist->record(r.cycles);
  };

  // Request-scoped channel: spans for every launch land on the service
  // tracer parented under the request's execute span, and breadcrumbs
  // on the flight recorder. request_id == 0 (engine/direct runs)
  // suppresses the spans; the recorder accepts id 0 (run()-path
  // breadcrumbs are still useful in a failure dump).
  obs::Tracer* req_tracer =
      in.channel_ctx.request_id != 0 ? in.channel_tracer : nullptr;
  const std::uint64_t req_id = in.channel_ctx.request_id;
  obs::FlightRecorder* recorder = in.recorder;

  // Cooperative cancellation (JoinService): polled at batch boundaries
  // and folded into the launch abort hook. A cancelled run throws
  // CancelledError; the caller discards the partial output, so nothing
  // here needs to roll back beyond what overflow recovery already does.
  const std::atomic<bool>* cancel = in.cancel;
  auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  auto throw_if_cancelled = [&] {
    if (cancelled()) {
      if (recorder != nullptr) {
        recorder->record("cancelled", req_id, out.stats.batches.size());
      }
      throw CancelledError(out.stats.batches.size());
    }
  };

  // Executes one batch against the fixed-capacity buffer. On overflow
  // the launch is aborted (block granularity), every side effect rolled
  // back, and the wasted device time accounted; returns false so the
  // caller can split and re-plan. `overflow_pairs` reports the count at
  // detection (a lower bound when the launch aborted early).
  std::uint64_t overflow_pairs = 0;
  auto attempt_batch = [&](std::span<const PointId> points,
                           std::uint64_t queue_len) -> bool {
    auto batch_span = obs::span(
        req_tracer,
        req_tracer != nullptr ? "batch " + std::to_string(batch_index)
                              : std::string(),
        in.channel_ctx);
    KernelParams params;
    params.grid = &grid;
    params.pattern = cfg.pattern;
    params.probe = in.probe;
    params.assignment =
        cfg.work_queue ? Assignment::WorkQueue : Assignment::Static;
    params.k = cfg.k;
    params.points = points;
    params.queue = in.queue_order;
    params.counter = &counter;
    params.device = &device;
    params.results = &out.results;

    const std::uint64_t groups =
        cfg.work_queue ? queue_len : points.size();
    const std::uint64_t nthreads = groups * static_cast<std::uint64_t>(cfg.k);

    out.results.begin_batch(capacity);
    SelfJoinKernel kernel(params);
    launch_records.clear();
    simt::LaunchAbort abort_hook;
    if (capacity != ResultSet::kUnlimited && cancel != nullptr) {
      abort_hook = [&results = out.results, cancel] {
        return results.batch_overflowed() ||
               cancel->load(std::memory_order_relaxed);
      };
    } else if (capacity != ResultSet::kUnlimited) {
      abort_hook = [&results = out.results] {
        return results.batch_overflowed();
      };
    } else if (cancel != nullptr) {
      abort_hook = [cancel] {
        return cancel->load(std::memory_order_relaxed);
      };
    }
    simt::KernelStats ks =
        simt::launch(device, nthreads, kernel, observer, abort_hook);
    ks.atomics_executed = kernel.atomics_executed();
    ks.results_emitted = kernel.results_emitted();

    // A launch aborted by cancellation is not an overflow: the whole
    // run's output is about to be discarded, so surface the
    // cancellation before the overflow/commit bookkeeping.
    throw_if_cancelled();

    if (out.results.batch_overflowed()) {
      // The device time is spent either way; the overflowed buffer is
      // never transferred. Partial results are discarded bit-exactly.
      overflow_pairs = out.results.batch_count();
      out.results.rollback_batch();
      out.stats.buffer_overflowed = true;
      ++out.stats.overflow_retries;
      out.stats.wasted.merge(ks);
      kernel_secs.push_back(ks.seconds(device));
      xfer_secs.push_back(0.0);
      cycle_offset += ks.makespan_cycles;
      if (recorder != nullptr) {
        recorder->record("batch_overflow", req_id, overflow_pairs);
      }
      return false;
    }

    out.stats.kernel.merge(ks);
    const std::uint64_t batch_pairs = out.results.batch_count();
    out.stats.max_batch_pairs =
        std::max(out.stats.max_batch_pairs, batch_pairs);
    kernel_secs.push_back(ks.seconds(device));
    xfer_secs.push_back(transfer_seconds(batch_pairs, cfg.batching));

    BatchStats bs;
    bs.query_points = groups;
    bs.result_pairs = batch_pairs;
    bs.warps = ks.warps_launched;
    bs.makespan_cycles = ks.makespan_cycles;
    bs.kernel_seconds = kernel_secs.back();
    bs.transfer_seconds = xfer_secs.back();
    bs.wee_percent = ks.warp_execution_efficiency(device.warp_size) * 100.0;

    if (collect) {
      // Commit the buffered records, then close out this launch:
      // per-slot tail idle against the launch's makespan (slots that
      // never ran a warp idled for the whole launch — the same
      // accounting simt::launch uses internally).
      std::fill(slot_finish.begin(), slot_finish.end(), 0);
      for (const auto& r : launch_records) commit_record(r);
      for (std::size_t s = 0; s < slots.size(); ++s) {
        slots[s].tail_idle_cycles += ks.makespan_cycles - slot_finish[s];
      }
      const std::span<const std::uint64_t> batch_cycles{
          all_warp_cycles.data() + batch_first_warp,
          all_warp_cycles.size() - batch_first_warp};
      bs.warp_cycle_cov = obs::analyze_warp_cycles(batch_cycles).cov;
      batch_first_warp = all_warp_cycles.size();
    }
    if (tracer != nullptr) {
      obs::BatchEvent ev;
      ev.index = batch_index;
      ev.start_cycle = cycle_offset;
      ev.makespan_cycles = ks.makespan_cycles;
      ev.warps = ks.warps_launched;
      ev.result_pairs = batch_pairs;
      ev.wee_percent = bs.wee_percent;
      tracer->record_batch(ev);
    }
    cycle_offset += ks.makespan_cycles;
    ++batch_index;
    out.stats.batches.push_back(bs);
    if (recorder != nullptr) {
      recorder->record("batch_commit", req_id, batch_pairs);
    }
    return true;
  };

  // Gate shared by both drivers: a failed batch is recoverable while it
  // is still divisible and the retry budget holds; otherwise the join
  // surfaces the structured, caller-actionable error.
  auto check_recoverable = [&](std::uint64_t batch_points) {
    if (batch_points <= 1 ||
        out.stats.overflow_retries > cfg.batching.max_overflow_retries) {
      if (recorder != nullptr) {
        recorder->record("overflow_exhausted", req_id,
                         out.stats.overflow_retries);
      }
      throw OverflowError(capacity, overflow_pairs, batch_points,
                          out.stats.overflow_retries);
    }
  };

  if (cfg.work_queue) {
    // LIFO stack of [begin, end) chunks over D'; a failed chunk is
    // halved and both halves re-executed (first half next, preserving
    // the workload-sorted consumption order).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> work(
        plan.queue_ranges.rbegin(), plan.queue_ranges.rend());
    while (!work.empty()) {
      throw_if_cancelled();
      const auto [begin, end] = work.back();
      work.pop_back();
      if (begin == end) continue;
      counter.reset(begin);
      if (attempt_batch({}, end - begin)) continue;
      const auto sp = obs::span(tracer, "overflow_retry");
      const auto rsp = obs::span(req_tracer, "overflow_retry", in.channel_ctx);
      check_recoverable(end - begin);
      const std::uint64_t mid = begin + (end - begin) / 2;
      work.emplace_back(mid, end);
      work.emplace_back(begin, mid);
    }
  } else {
    // LIFO stack over the planned batch lists; a failed batch is split
    // in half (halves keep their SORTBYWL order — a contiguous slice of
    // a sorted list stays sorted). The plan's lists are moved, not
    // copied — the plan is consumed.
    std::vector<std::vector<PointId>> work(
        std::make_move_iterator(plan.batches.rbegin()),
        std::make_move_iterator(plan.batches.rend()));
    while (!work.empty()) {
      throw_if_cancelled();
      std::vector<PointId> batch = std::move(work.back());
      work.pop_back();
      if (batch.empty()) continue;
      if (attempt_batch(batch, 0)) continue;
      const auto sp = obs::span(tracer, "overflow_retry");
      const auto rsp = obs::span(req_tracer, "overflow_retry", in.channel_ctx);
      check_recoverable(batch.size());
      const std::size_t mid = batch.size() / 2;
      work.emplace_back(batch.begin() + static_cast<std::ptrdiff_t>(mid),
                        batch.end());
      batch.resize(mid);
      work.push_back(std::move(batch));
    }
  }
  // Recovery may have executed more (smaller) batches than planned.
  out.stats.num_batches = out.stats.batches.size();
  // Close the batch window so the returned ResultSet is unclamped.
  out.results.begin_batch(ResultSet::kUnlimited);

  out.stats.result_pairs = out.results.count();
  out.stats.kernel_seconds = 0.0;
  for (double s : kernel_secs) out.stats.kernel_seconds += s;
  out.stats.total_seconds =
      pipeline_seconds(kernel_secs, xfer_secs, cfg.batching.nstreams);

  if (collect) {
    out.stats.warp_imbalance = obs::analyze_warp_cycles(all_warp_cycles);
    out.stats.slots = std::move(slots);
  }
  if (cfg.metrics != nullptr) {
    obs::Registry& m = *cfg.metrics;
    m.counter("sj.batches").add(out.stats.num_batches);
    m.counter("sj.result_pairs").add(out.stats.result_pairs);
    m.counter("sj.warps_launched").add(out.stats.kernel.warps_launched);
    m.counter("sj.warp_steps").add(out.stats.kernel.warp_steps);
    m.counter("sj.active_lane_steps").add(out.stats.kernel.active_lane_steps);
    m.counter("sj.atomics").add(out.stats.kernel.atomics_executed);
    m.counter("sj.overflow_retries").add(out.stats.overflow_retries);
    m.counter("sj.aborted_launches").add(out.stats.wasted.aborted_launches);
    m.counter("sj.wasted_pairs").add(out.stats.wasted.results_emitted);
    m.counter("sj.wasted_cycles").add(out.stats.wasted.busy_cycles);
    m.gauge("sj.wee_percent").set(out.stats.wee_percent());
    m.gauge("sj.warp_cycle_cov").set(out.stats.warp_cycle_cov());
    m.gauge("sj.warp_cycle_gini").set(out.stats.warp_cycle_gini());
    m.gauge("sj.estimated_total_pairs")
        .set(static_cast<double>(out.stats.estimated_total_pairs));
    m.gauge("sj.kernel_seconds").set(out.stats.kernel_seconds);
    m.gauge("sj.total_seconds").set(out.stats.total_seconds);
    m.gauge("sj.host_prep_seconds").set(out.stats.host_prep_seconds);
  }

  if (cfg.store_pairs) out.results.canonicalize();
}

void execute_fleet(const SelfJoinConfig& cfg, ExecutionInputs& in,
                   ScratchArena& arena, SelfJoinOutput& out) {
  const GridIndex& grid = *in.grid;
  const simt::FleetConfig& fc = cfg.fleet;
  const std::vector<simt::DeviceConfig> devices = fc.resolve(in.device);
  const std::size_t ndev = devices.size();
  out.stats.warp_size = devices[0].warp_size;

  if (cfg.store_pairs) {
    out.results.reserve(
        std::min(in.estimated_total_pairs, cfg.batching.buffer_pairs));
  }
  const std::uint64_t capacity =
      cfg.batching.enabled ? cfg.batching.effective_capacity()
      : cfg.batching.inject_capacity != 0 ? cfg.batching.inject_capacity
                                          : ResultSet::kUnlimited;

  // --- grain partition (grid/grain.hpp) ---
  // Adaptive: workload-weighted grains, several per device, so the
  // scheduler has something to rebalance. Static baseline: exactly one
  // cell-count-uniform grain per device, grain i pinned to device i.
  // R×S (in.probe set): grains are contiguous *probe-id* ranges — the
  // grid's cell ranges shard the gridded side, but the fleet partitions
  // query points, which here live in the probe dataset.
  const Dataset* probe = in.probe;
  std::vector<WorkGrain> grains;
  if (probe != nullptr) {
    grains = partition_probe_grains(
        probe->size(),
        fc.adaptive ? in.point_workloads : std::span<const std::uint64_t>{},
        fc.adaptive ? ndev * static_cast<std::size_t>(fc.grains_per_device)
                    : ndev);
  } else if (fc.adaptive) {
    const std::vector<std::uint64_t> weights =
        grain_cell_weights(grid, in.point_workloads);
    grains = partition_grains(
        grid, weights,
        ndev * static_cast<std::size_t>(fc.grains_per_device));
  } else {
    grains = partition_grains(grid, {}, ndev);
  }
  const std::size_t num_grains = grains.size();
  std::uint64_t total_weight = 0;
  for (const WorkGrain& g : grains) total_weight += g.workload;

  // Bucket D' into per-grain queues in one stable pass: each grain's
  // queue preserves the global workload-sorted consumption order. For
  // the self-join a point's grain is found through its cell; probe
  // points have no cell in the gridded index, but probe grains are
  // contiguous id ranges so the id→grain table is direct.
  std::vector<std::vector<PointId>> grain_queues;
  if (cfg.work_queue) {
    std::vector<std::uint32_t> point_grain;
    if (probe != nullptr) {
      point_grain.assign(probe->size(), 0);
      for (std::size_t g = 0; g < num_grains; ++g) {
        for (std::uint32_t p = grains[g].point_begin;
             p < grains[g].point_end; ++p) {
          point_grain[p] = static_cast<std::uint32_t>(g);
        }
      }
    }
    std::vector<std::uint32_t> cell_grain;
    if (probe == nullptr) {
      cell_grain.assign(grid.cells().size(), 0);
      for (std::size_t g = 0; g < num_grains; ++g) {
        for (std::size_t c = grains[g].cell_begin; c < grains[g].cell_end;
             ++c) {
          cell_grain[c] = static_cast<std::uint32_t>(g);
        }
      }
    }
    grain_queues.resize(num_grains);
    for (std::size_t g = 0; g < num_grains; ++g) {
      grain_queues[g].reserve(grains[g].points());
    }
    for (const PointId p : in.queue_order) {
      const std::uint32_t g = probe != nullptr
                                  ? point_grain[p]
                                  : cell_grain[grid.cell_of_point(p)];
      grain_queues[g].push_back(p);
    }
  }

  // --- per-warp collection (fleet-wide dispersion; per-slot vectors
  // and tracer device events are superseded by device-level stats) ---
  const bool collect = cfg.collect_diagnostics || cfg.metrics != nullptr;
  auto& all_warp_cycles = arena.all_warp_cycles;
  all_warp_cycles.clear();
  obs::CycleHistogram* warp_cycle_hist =
      cfg.metrics != nullptr
          ? &cfg.metrics->cycle_histogram("sj.warp_cycles")
          : nullptr;
  auto& launch_records = arena.launch_records;
  launch_records.clear();
  simt::WarpObserver observer;
  if (collect) {
    observer = [&launch_records](const simt::WarpRecord& r) {
      launch_records.push_back(r);
    };
  }
  out.stats.batches = std::move(arena.spare_batch_stats);
  arena.spare_batch_stats = {};
  out.stats.batches.clear();

  const std::atomic<bool>* cancel = in.cancel;
  obs::FlightRecorder* recorder = in.recorder;
  const std::uint64_t req_id = in.channel_ctx.request_id;
  auto throw_if_cancelled = [&] {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      if (recorder != nullptr) {
        recorder->record("cancelled", req_id, out.stats.batches.size());
      }
      throw CancelledError(out.stats.batches.size());
    }
  };

  simt::DeviceCounter counter;
  std::vector<std::vector<double>> dev_kernel_secs(ndev);
  std::vector<std::vector<double>> dev_xfer_secs(ndev);

  std::uint64_t overflow_pairs = 0;
  // One batch on one fleet device: the single-device driver's
  // capacity/rollback/commit discipline, minus per-slot and tracer
  // bookkeeping. Committed stats and modeled seconds accumulate into
  // the grain's running totals for the scheduler's feedback.
  double grain_secs = 0.0;
  simt::KernelStats grain_kernel;
  std::size_t batch_first_warp = 0;
  auto attempt_batch = [&](std::size_t dev, std::span<const PointId> points,
                           std::span<const PointId> queue,
                           std::uint64_t queue_len) -> bool {
    const simt::DeviceConfig& device = devices[dev];
    KernelParams params;
    params.grid = &grid;
    params.pattern = cfg.pattern;
    params.probe = in.probe;
    params.assignment =
        cfg.work_queue ? Assignment::WorkQueue : Assignment::Static;
    params.k = cfg.k;
    params.points = points;
    params.queue = queue;
    params.counter = &counter;
    params.device = &device;
    params.results = &out.results;

    const std::uint64_t groups = cfg.work_queue ? queue_len : points.size();
    const std::uint64_t nthreads = groups * static_cast<std::uint64_t>(cfg.k);

    out.results.begin_batch(capacity);
    SelfJoinKernel kernel(params);
    launch_records.clear();
    simt::LaunchAbort abort_hook;
    if (capacity != ResultSet::kUnlimited && cancel != nullptr) {
      abort_hook = [&results = out.results, cancel] {
        return results.batch_overflowed() ||
               cancel->load(std::memory_order_relaxed);
      };
    } else if (capacity != ResultSet::kUnlimited) {
      abort_hook = [&results = out.results] {
        return results.batch_overflowed();
      };
    } else if (cancel != nullptr) {
      abort_hook = [cancel] {
        return cancel->load(std::memory_order_relaxed);
      };
    }
    simt::KernelStats ks =
        simt::launch(device, nthreads, kernel, observer, abort_hook);
    ks.atomics_executed = kernel.atomics_executed();
    ks.results_emitted = kernel.results_emitted();
    throw_if_cancelled();

    if (out.results.batch_overflowed()) {
      overflow_pairs = out.results.batch_count();
      out.results.rollback_batch();
      out.stats.buffer_overflowed = true;
      ++out.stats.overflow_retries;
      out.stats.wasted.merge(ks);
      grain_secs += ks.seconds(device);
      dev_kernel_secs[dev].push_back(ks.seconds(device));
      dev_xfer_secs[dev].push_back(0.0);
      if (recorder != nullptr) {
        recorder->record("batch_overflow", req_id, overflow_pairs);
      }
      return false;
    }

    grain_kernel.merge(ks);
    grain_secs += ks.seconds(device);
    const std::uint64_t batch_pairs = out.results.batch_count();
    out.stats.max_batch_pairs =
        std::max(out.stats.max_batch_pairs, batch_pairs);
    dev_kernel_secs[dev].push_back(ks.seconds(device));
    dev_xfer_secs[dev].push_back(transfer_seconds(batch_pairs, cfg.batching));

    BatchStats bs;
    bs.device = static_cast<int>(dev);
    bs.query_points = groups;
    bs.result_pairs = batch_pairs;
    bs.warps = ks.warps_launched;
    bs.makespan_cycles = ks.makespan_cycles;
    bs.kernel_seconds = dev_kernel_secs[dev].back();
    bs.transfer_seconds = dev_xfer_secs[dev].back();
    bs.wee_percent = ks.warp_execution_efficiency(device.warp_size) * 100.0;
    if (collect) {
      for (const auto& r : launch_records) {
        all_warp_cycles.push_back(r.cycles);
        if (warp_cycle_hist != nullptr) warp_cycle_hist->record(r.cycles);
      }
      const std::span<const std::uint64_t> batch_cycles{
          all_warp_cycles.data() + batch_first_warp,
          all_warp_cycles.size() - batch_first_warp};
      bs.warp_cycle_cov = obs::analyze_warp_cycles(batch_cycles).cov;
      batch_first_warp = all_warp_cycles.size();
    }
    out.stats.batches.push_back(bs);
    if (recorder != nullptr) {
      recorder->record("batch_commit", req_id, batch_pairs);
    }
    return true;
  };

  auto check_recoverable = [&](std::uint64_t batch_points) {
    if (batch_points <= 1 ||
        out.stats.overflow_retries > cfg.batching.max_overflow_retries) {
      if (recorder != nullptr) {
        recorder->record("overflow_exhausted", req_id,
                         out.stats.overflow_retries);
      }
      throw OverflowError(capacity, overflow_pairs, batch_points,
                          out.stats.overflow_retries);
    }
  };

  // --- schedule + execute: LPT order, predicted-finish placement,
  // measured-rate feedback after every grain ---
  std::vector<std::size_t> order(num_grains);
  for (std::size_t i = 0; i < num_grains; ++i) order[i] = i;
  if (fc.adaptive) {
    std::stable_sort(order.begin(), order.end(),
                     [&grains](std::size_t a, std::size_t b) {
                       return grains[a].workload > grains[b].workload;
                     });
  }
  simt::DeviceFleet fleet(devices);
  std::uint64_t rebalances = 0;
  std::vector<PointId> probe_ids;

  for (const std::size_t gidx : order) {
    const WorkGrain& grain = grains[gidx];
    const std::size_t owner = gidx * ndev / num_grains;
    const std::size_t dev = fc.adaptive ? fleet.pick(grain.workload) : owner;
    if (dev != owner) ++rebalances;
    grain_secs = 0.0;
    grain_kernel = simt::KernelStats{};

    if (cfg.work_queue) {
      const std::vector<PointId>& q = grain_queues[gidx];
      const std::span<const PointId> qs{q};
      // Contiguous chunks over the grain's queue slice, cut by the
      // same two budgets as plan_queue: the 2w+1 hard bound and the
      // grain-scaled statistical estimate.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
      if (!cfg.batching.enabled || q.empty()) {
        if (!q.empty()) ranges.emplace_back(0, q.size());
      } else {
        const double budget = static_cast<double>(cfg.batching.buffer_pairs);
        const std::uint64_t est_g =
            total_weight == 0
                ? 0
                : static_cast<std::uint64_t>(
                      static_cast<double>(in.estimated_total_pairs) *
                      (static_cast<double>(grain.workload) /
                       static_cast<double>(total_weight)));
        const double est_per_point =
            static_cast<double>(est_g) * cfg.batching.safety /
            static_cast<double>(q.size());
        std::size_t begin = 0;
        while (begin < q.size()) {
          std::uint64_t bound_sum = 0;
          double est_sum = 0.0;
          std::size_t end = begin;
          while (end < q.size()) {
            const std::uint64_t b =
                2 * in.point_workloads[q[end]] + 1;
            if (end > begin &&
                (static_cast<double>(bound_sum + b) > budget ||
                 est_sum + est_per_point > budget)) {
              break;
            }
            bound_sum += b;
            est_sum += est_per_point;
            ++end;
          }
          ranges.emplace_back(begin, end);
          begin = end;
        }
      }
      std::vector<std::pair<std::uint64_t, std::uint64_t>> work(
          ranges.rbegin(), ranges.rend());
      while (!work.empty()) {
        throw_if_cancelled();
        const auto [begin, end] = work.back();
        work.pop_back();
        if (begin == end) continue;
        counter.reset(begin);
        if (attempt_batch(dev, {}, qs, end - begin)) continue;
        check_recoverable(end - begin);
        const std::uint64_t mid = begin + (end - begin) / 2;
        work.emplace_back(mid, end);
        work.emplace_back(begin, mid);
      }
    } else {
      // Probe grains own an id *range*, not a slice of point_ids();
      // materialize it (reused buffer, cleared per grain).
      std::span<const PointId> gp;
      if (probe != nullptr) {
        probe_ids.resize(grain.points());
        std::iota(probe_ids.begin(), probe_ids.end(),
                  static_cast<PointId>(grain.point_begin));
        gp = probe_ids;
      } else {
        gp = grid.point_ids().subspan(grain.point_begin, grain.points());
      }
      // Strided chunks within the grain, count scaled from the grain's
      // share of the whole-join estimate (plan_strided's scheme at
      // grain granularity).
      std::size_t nb = 1;
      if (cfg.batching.enabled && total_weight != 0 && !gp.empty()) {
        const double est_g =
            static_cast<double>(in.estimated_total_pairs) *
            (static_cast<double>(grain.workload) /
             static_cast<double>(total_weight)) *
            cfg.batching.safety;
        nb = static_cast<std::size_t>(
            est_g / static_cast<double>(cfg.batching.buffer_pairs)) + 1;
        nb = std::min(nb, gp.size());
      }
      std::vector<std::vector<PointId>> batches(nb);
      for (std::size_t i = 0; i < gp.size(); ++i) {
        batches[i % nb].push_back(gp[i]);
      }
      if (cfg.sort_by_workload) {
        for (auto& b : batches) {
          std::stable_sort(b.begin(), b.end(),
                           [&in](PointId a, PointId c) {
                             return in.point_workloads[a] >
                                    in.point_workloads[c];
                           });
        }
      }
      std::vector<std::vector<PointId>> work(
          std::make_move_iterator(batches.rbegin()),
          std::make_move_iterator(batches.rend()));
      while (!work.empty()) {
        throw_if_cancelled();
        std::vector<PointId> batch = std::move(work.back());
        work.pop_back();
        if (batch.empty()) continue;
        if (attempt_batch(dev, batch, {}, 0)) continue;
        check_recoverable(batch.size());
        const std::size_t mid = batch.size() / 2;
        work.emplace_back(batch.begin() + static_cast<std::ptrdiff_t>(mid),
                          batch.end());
        batch.resize(mid);
        work.push_back(std::move(batch));
      }
    }
    fleet.record(dev, grain.workload, grain_secs, grain_kernel);
  }

  // --- finalize: device-level stats, concurrent composition ---
  out.stats.fleet = fleet.finish(num_grains, rebalances);
  out.stats.kernel = simt::KernelStats{};
  for (const simt::DeviceLoad& l : out.stats.fleet.devices) {
    out.stats.kernel.merge_concurrent(l.kernel);
  }
  out.stats.num_batches = out.stats.batches.size();
  out.results.begin_batch(ResultSet::kUnlimited);
  out.stats.result_pairs = out.results.count();
  out.stats.kernel_seconds = out.stats.fleet.makespan_seconds;
  out.stats.total_seconds = 0.0;
  for (std::size_t d = 0; d < ndev; ++d) {
    out.stats.total_seconds = std::max(
        out.stats.total_seconds,
        pipeline_seconds(dev_kernel_secs[d], dev_xfer_secs[d],
                         cfg.batching.nstreams));
  }
  if (collect) {
    out.stats.warp_imbalance = obs::analyze_warp_cycles(all_warp_cycles);
  }
  if (cfg.metrics != nullptr) {
    obs::Registry& m = *cfg.metrics;
    m.counter("sj.batches").add(out.stats.num_batches);
    m.counter("sj.result_pairs").add(out.stats.result_pairs);
    m.counter("sj.warps_launched").add(out.stats.kernel.warps_launched);
    m.counter("sj.warp_steps").add(out.stats.kernel.warp_steps);
    m.counter("sj.active_lane_steps").add(out.stats.kernel.active_lane_steps);
    m.counter("sj.atomics").add(out.stats.kernel.atomics_executed);
    m.counter("sj.overflow_retries").add(out.stats.overflow_retries);
    m.counter("sj.aborted_launches").add(out.stats.wasted.aborted_launches);
    m.counter("sj.wasted_pairs").add(out.stats.wasted.results_emitted);
    m.counter("sj.wasted_cycles").add(out.stats.wasted.busy_cycles);
    m.gauge("sj.wee_percent").set(out.stats.wee_percent());
    m.gauge("sj.warp_cycle_cov").set(out.stats.warp_cycle_cov());
    m.gauge("sj.warp_cycle_gini").set(out.stats.warp_cycle_gini());
    m.gauge("sj.estimated_total_pairs")
        .set(static_cast<double>(out.stats.estimated_total_pairs));
    m.gauge("sj.kernel_seconds").set(out.stats.kernel_seconds);
    m.gauge("sj.total_seconds").set(out.stats.total_seconds);
    m.gauge("sj.host_prep_seconds").set(out.stats.host_prep_seconds);
    const simt::FleetStats& fs = out.stats.fleet;
    m.gauge("sj.fleet.devices").set(static_cast<double>(ndev));
    m.counter("sj.fleet.grains").add(fs.num_grains);
    m.counter("sj.fleet.rebalances").add(fs.rebalances);
    m.gauge("sj.fleet.device_cov").set(fs.device_cov);
    m.gauge("sj.fleet.makespan_seconds").set(fs.makespan_seconds);
    m.gauge("sj.fleet.tail_idle_seconds").set(fs.tail_idle_seconds);
    m.gauge("sj.fleet.imbalance").set(fs.imbalance);
  }
  if (cfg.store_pairs) out.results.canonicalize();
}

std::uint64_t subsume_filter(const Dataset& ds,
                             std::span<const ResultPair> pairs,
                             double epsilon, ResultSet* out) {
  const double eps2 = epsilon * epsilon;
  std::uint64_t kept = 0;
  // The 2-D specialization reads the two coordinate columns through
  // spans so the distance math in the hot loop is branch-free and
  // auto-vectorizable; higher dimensions fall back to dist2 (which
  // early-exits per dimension).
  if (ds.dims() == 2) {
    const std::span<const double> x = ds.dim(0);
    const std::span<const double> y = ds.dim(1);
    for (const auto& [a, b] : pairs) {
      const double dx = x[a] - x[b];
      const double dy = y[a] - y[b];
      if (dx * dx + dy * dy <= eps2) {
        ++kept;
        if (out != nullptr) out->emit(a, b);
      }
    }
  } else {
    for (const auto& [a, b] : pairs) {
      if (ds.dist2(a, b) <= eps2) {
        ++kept;
        if (out != nullptr) out->emit(a, b);
      }
    }
  }
  return kept;
}

}  // namespace gsj::detail
