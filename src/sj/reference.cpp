#include "sj/reference.hpp"

#include "common/thread_pool.hpp"

namespace gsj {

ResultSet brute_force_join(const Dataset& ds, double epsilon) {
  ResultSet rs(/*store_pairs=*/true);
  const double eps2 = epsilon * epsilon;
  const auto n = static_cast<PointId>(ds.size());
  for (PointId a = 0; a < n; ++a) {
    for (PointId b = 0; b < n; ++b) {
      if (ds.dist2(a, b) <= eps2) rs.emit(a, b);
    }
  }
  rs.canonicalize();
  return rs;
}

ResultSet cpu_grid_join(const GridIndex& grid, bool store_pairs) {
  const Dataset& ds = grid.dataset();
  const double eps2 = grid.epsilon() * grid.epsilon();
  ResultSet rs(store_pairs);
  const auto cells = grid.cells();
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const auto origin_pts = grid.cell_points(ci);
    grid.for_each_adjacent(
        ci, /*include_origin=*/true,
        [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
          const auto cand = grid.cell_points(nidx);
          for (const PointId q : origin_pts) {
            for (const PointId c : cand) {
              if (ds.dist2(q, c) <= eps2) rs.emit(q, c);
            }
          }
        });
  }
  if (store_pairs) rs.canonicalize();
  return rs;
}

ResultSet cpu_grid_join_parallel(const GridIndex& grid, std::size_t nthreads,
                                 bool store_pairs) {
  const Dataset& ds = grid.dataset();
  const double eps2 = grid.epsilon() * grid.epsilon();
  const auto cells = grid.cells();

  ThreadPool pool(nthreads);
  struct Local {
    std::vector<ResultPair> pairs;
    std::uint64_t count = 0;
  };
  const std::size_t nchunks = std::min<std::size_t>(
      cells.size(), std::max<std::size_t>(1, pool.size() * 8));
  std::vector<Local> locals(nchunks);
  const std::size_t chunk = (cells.size() + nchunks - 1) / nchunks;

  pool.parallel_for(nchunks, [&](std::size_t t) {
    Local& loc = locals[t];
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(begin + chunk, cells.size());
    for (std::size_t ci = begin; ci < end; ++ci) {
      const auto origin_pts = grid.cell_points(ci);
      grid.for_each_adjacent(
          ci, /*include_origin=*/true,
          [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
            const auto cand = grid.cell_points(nidx);
            for (const PointId q : origin_pts) {
              for (const PointId c : cand) {
                if (ds.dist2(q, c) <= eps2) {
                  ++loc.count;
                  if (store_pairs) loc.pairs.emplace_back(q, c);
                }
              }
            }
          });
    }
  });

  ResultSet rs(store_pairs);
  for (auto& loc : locals) {
    if (store_pairs) {
      for (const auto& p : loc.pairs) rs.emit(p.first, p.second);
    } else {
      rs.add_count(loc.count);
    }
  }
  if (store_pairs) rs.canonicalize();
  return rs;
}

std::vector<std::uint64_t> probe_neighbor_counts(
    const GridIndex& grid, const Dataset& probe,
    std::span<const PointId> queries) {
  const Dataset& ds = grid.dataset();
  const double eps2 = grid.epsilon() * grid.epsilon();
  const int dims = grid.dims();
  std::vector<double> qc(static_cast<std::size_t>(dims));
  std::vector<std::uint64_t> out(queries.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PointId q = queries[i];
    for (int d = 0; d < dims; ++d) {
      qc[static_cast<std::size_t>(d)] = probe.coord(q, d);
    }
    std::uint64_t cnt = 0;
    grid.for_each_within(
        qc, /*shells=*/1,
        [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
          for (const PointId c : grid.cell_points(nidx)) {
            double sum = 0.0;
            for (int d = 0; d < dims; ++d) {
              const double diff = qc[static_cast<std::size_t>(d)] - ds.coord(c, d);
              sum += diff * diff;
            }
            if (sum <= eps2) ++cnt;
          }
        });
    out[i] = cnt;
  }
  return out;
}

std::vector<std::uint64_t> neighbor_counts(const GridIndex& grid,
                                           std::span<const PointId> queries) {
  const Dataset& ds = grid.dataset();
  const double eps2 = grid.epsilon() * grid.epsilon();
  std::vector<std::uint64_t> out(queries.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PointId q = queries[i];
    std::uint64_t cnt = 0;
    grid.for_each_adjacent(
        grid.cell_of_point(q), /*include_origin=*/true,
        [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
          for (const PointId c : grid.cell_points(nidx)) {
            if (ds.dist2(q, c) <= eps2) ++cnt;
          }
        });
    out[i] = cnt;
  }
  return out;
}

}  // namespace gsj
