// CSR epsilon-neighborhood table built from a self-join result, and a
// single-point range-query helper — the building blocks the paper's
// motivating applications (clustering, near-duplicate detection)
// consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "grid/grid_index.hpp"
#include "sj/result_set.hpp"

namespace gsj {

/// Compressed-sparse-row neighbor table: neighbors of point p are
/// neighbors(p), sorted ascending, including p itself (the self-join's
/// self pair).
class NeighborTable {
 public:
  /// Builds from stored self-join pairs. `n` is the dataset size.
  NeighborTable(const ResultSet& results, std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept {
    return offsets_.size() - 1;
  }

  [[nodiscard]] std::span<const PointId> neighbors(PointId p) const noexcept {
    return {flat_.data() + offsets_[p],
            static_cast<std::size_t>(offsets_[p + 1] - offsets_[p])};
  }

  /// Neighborhood size |N(p)| (p itself included).
  [[nodiscard]] std::uint64_t degree(PointId p) const noexcept {
    return offsets_[p + 1] - offsets_[p];
  }

  [[nodiscard]] std::uint64_t total_pairs() const noexcept {
    return flat_.size();
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<PointId> flat_;
};

/// Exact epsilon-range query around a single point through the grid
/// index (the paper's "range query" primitive). Returns ids of all
/// points within epsilon of `q`, q itself included, ascending.
[[nodiscard]] std::vector<PointId> range_query(const GridIndex& grid,
                                               PointId q);

/// Range query around an arbitrary location (not necessarily a dataset
/// point).
[[nodiscard]] std::vector<PointId> range_query(const GridIndex& grid,
                                               std::span<const double> center);

}  // namespace gsj
