#include "sj/neighbor_table.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gsj {

NeighborTable::NeighborTable(const ResultSet& results, std::size_t n) {
  GSJ_CHECK_MSG(results.stores_pairs(),
                "NeighborTable requires a pair-storing ResultSet");
  offsets_.assign(n + 1, 0);
  for (const auto& [a, b] : results.pairs()) {
    GSJ_CHECK(a < n && b < n);
    ++offsets_[a + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  flat_.resize(results.pairs().size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : results.pairs()) flat_[cursor[a]++] = b;
  for (std::size_t p = 0; p < n; ++p) {
    std::sort(flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[p]),
              flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[p + 1]));
  }
}

std::vector<PointId> range_query(const GridIndex& grid, PointId q) {
  GSJ_CHECK(q < grid.dataset().size());
  const Dataset& ds = grid.dataset();
  const double eps2 = grid.epsilon() * grid.epsilon();
  std::vector<PointId> out;
  grid.for_each_adjacent(
      grid.cell_of_point(q), /*include_origin=*/true,
      [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
        for (const PointId c : grid.cell_points(nidx)) {
          if (ds.dist2(q, c) <= eps2) out.push_back(c);
        }
      });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PointId> range_query(const GridIndex& grid,
                                 std::span<const double> center) {
  GSJ_CHECK(static_cast<int>(center.size()) == grid.dims());
  const Dataset& ds = grid.dataset();
  const double eps2 = grid.epsilon() * grid.epsilon();
  std::vector<PointId> out;
  const CellCoords cc = grid.cell_coords_of(center);
  grid.for_each_adjacent_to(
      cc, [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
        for (const PointId c : grid.cell_points(nidx)) {
          double s = 0.0;
          for (int d = 0; d < grid.dims(); ++d) {
            const double diff =
                ds.coord(c, d) - center[static_cast<std::size_t>(d)];
            s += diff * diff;
          }
          if (s <= eps2) out.push_back(c);
        }
      });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gsj
