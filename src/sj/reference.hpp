// CPU reference self-joins used as correctness oracles and for host-side
// result-size estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "grid/grid_index.hpp"
#include "sj/result_set.hpp"

namespace gsj {

/// O(n^2) brute-force self-join: all ordered pairs (a, b), self pairs
/// included, with dist <= epsilon. Canonicalized. Test-sized inputs only.
[[nodiscard]] ResultSet brute_force_join(const Dataset& ds, double epsilon);

/// Grid-accelerated sequential CPU self-join over an existing index.
/// Same ordered-pair semantics as brute_force_join; canonicalized when
/// `store_pairs`.
[[nodiscard]] ResultSet cpu_grid_join(const GridIndex& grid,
                                      bool store_pairs = true);

/// Exact epsilon-neighborhood size (self included) of each point in
/// `queries`, computed through the grid. This is the estimator's probe.
[[nodiscard]] std::vector<std::uint64_t> neighbor_counts(
    const GridIndex& grid, std::span<const PointId> queries);

/// R×S analogue of neighbor_counts: for each id in `queries` (indexing
/// `probe`), the number of gridded-dataset points within epsilon of
/// that probe point. The R×S batch estimator's probe.
[[nodiscard]] std::vector<std::uint64_t> probe_neighbor_counts(
    const GridIndex& grid, const Dataset& probe,
    std::span<const PointId> queries);

/// Multithreaded CPU grid join: the host-side analogue of
/// GPUCALCGLOBAL (one task per cell range, thread-local buffers merged
/// at the end). A second CPU baseline besides SUPER-EGO. `nthreads = 0`
/// uses hardware concurrency.
[[nodiscard]] ResultSet cpu_grid_join_parallel(const GridIndex& grid,
                                               std::size_t nthreads = 0,
                                               bool store_pairs = true);

}  // namespace gsj
