// The self-join GPU kernel, expressed for the SIMT simulator.
//
// One kernel type covers all of the paper's variants; the configuration
// selects behaviour exactly the way the CUDA implementations differ:
//
//  * GPUCALCGLOBAL [18]        — pattern FULL, Static assignment, k=1
//  * UNICOMP [18]              — pattern UNICOMP
//  * LID-UNICOMP (§III-B)      — pattern LID-UNICOMP
//  * k-granularity (§III-A)    — k>1 lanes per query point; candidate
//                                ranges are strided across the k lanes
//                                of a cooperative group
//  * WORKQUEUE (§III-D)        — points taken from a device-global
//                                atomic counter over the workload-sorted
//                                order D'; with k>1 only the group
//                                leader increments and broadcasts the
//                                grabbed index (cooperative groups /
//                                __shfl_sync)
//
// A lane's program is the CUDA kernel's loop nest unrolled into lockstep
// work units:
//   NextCell step — advance the 3^n adjacency odometer by one slot:
//       bounds check + pattern predicate (cost_pattern_check), plus a
//       binary search into the non-empty cell array when the slot
//       survives (cost_cell_probe);
//   Scan step     — one candidate distance calculation (cost_dist) and,
//       within epsilon, result emission (cost_emit).
//
// Result-pair semantics match reference.hpp: all ordered pairs with
// self pairs. FULL evaluates both directions and emits one pair per
// evaluation; the unidirectional patterns evaluate each unordered pair
// once (adjacent cells via the pattern predicate, the own cell via the
// grid-rank rule) and emit both ordered pairs.
//
// Buffer overflow: emissions go through ResultSet's batch window (see
// result_set.hpp) — like the CUDA kernel's atomicAdd into a fixed
// pinned buffer, a lane keeps *counting* past the capacity while writes
// are dropped, and lane behaviour never branches on the shared count
// (what keeps the parallel host path bit-identical). The host aborts
// an overflowing launch at warp-block granularity via simt::launch's
// abort hook and rolls the batch back (sj/selfjoin.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "grid/cell_access.hpp"
#include "grid/grid_index.hpp"
#include "simt/counter.hpp"
#include "simt/device.hpp"
#include "simt/launch.hpp"
#include "sj/result_set.hpp"

namespace gsj {

/// How query points are bound to thread groups.
enum class Assignment {
  Static,     ///< group g processes points[g] (strided batch lists)
  WorkQueue,  ///< group leader atomically pops the next index of `queue`
};

[[nodiscard]] std::string to_string(Assignment a);

struct KernelParams {
  const GridIndex* grid = nullptr;
  CellPattern pattern = CellPattern::Full;
  Assignment assignment = Assignment::Static;
  /// R×S mode: query ids index this dataset instead of the gridded one
  /// (candidate ids still index the grid's dataset). Each in-ε
  /// candidate emits exactly one (probe_id, grid_id) pair — no mirror,
  /// no self-pair, no own-cell rank rule, and `pattern` is ignored
  /// (every cell of the probe's 3^n window must be scanned). nullptr
  /// keeps the classic self-join semantics.
  const Dataset* probe = nullptr;
  int k = 1;  ///< lanes per query point; must divide warp_size
  /// Static: this batch's query list. The launch must use
  /// points.size() * k threads.
  std::span<const PointId> points;
  /// WorkQueue: the full workload-sorted order D' and the shared head
  /// counter (pre-positioned at this batch's first index). The launch
  /// must use (range size) * k threads.
  std::span<const PointId> queue;
  simt::DeviceCounter* counter = nullptr;
  const simt::DeviceConfig* device = nullptr;
  ResultSet* results = nullptr;
};

class SelfJoinKernel {
 public:
  explicit SelfJoinKernel(const KernelParams& p);

  struct LaneState {
    PointId q = 0;
    std::uint32_t rank = 0;        ///< grid rank of q (own-cell rule)
    std::uint32_t group_rank = 0;  ///< 0..k-1 within the cooperative group
    std::uint64_t origin_id = 0;   ///< linear id of q's cell
    std::size_t origin_cell = 0;   ///< index into grid.cells()
    CellCoords oc{};               ///< q's cell coordinates
    std::uint64_t adj_cursor = 0;  ///< odometer over the 3^n slots
    std::uint32_t cand_pos = 0;    ///< current candidate (into point_ids)
    std::uint32_t cand_end = 0;
    bool scanning = false;
  };

  /// Per-warp side-effect sink for parallel host execution (see
  /// simt::ParallelHostKernel): each warp's step loop emits into a
  /// private ResultSet; merge_shard appends them to the shared set in
  /// dispatch order, reproducing the sequential emission stream byte
  /// for byte.
  struct Shard {
    ResultSet results;
    std::uint64_t emitted = 0;

    /// `capacity` bounds the shard's own pair storage to the batch
    /// buffer capacity (counting continues past it), so even a single
    /// runaway warp cannot materialize unbounded memory while its
    /// launch is overflowing.
    Shard(bool store_pairs, std::uint64_t capacity) : results(store_pairs) {
      results.begin_batch(capacity);
    }
  };

  simt::InitResult init_lane(LaneState& s, const simt::LaneCtx& ctx,
                             simt::WarpScratch& scratch);
  simt::StepResult step(LaneState& s) {
    return step_into(s, *p_.results, emitted_);
  }

  // --- parallel host execution (simt::ParallelHostKernel) ---
  [[nodiscard]] Shard make_shard() const {
    return Shard(p_.results->stores_pairs(), p_.results->batch_capacity());
  }
  /// Thread-safe step: all mutation goes to `shard` (the kernel's own
  /// state is read-only here; init_lane already ran sequentially).
  simt::StepResult step(LaneState& s, Shard& shard) {
    return step_into(s, shard.results, shard.emitted);
  }
  void merge_shard(Shard&& shard) {
    emitted_ += shard.emitted;
    p_.results->absorb(std::move(shard.results));
  }

  [[nodiscard]] std::uint64_t atomics_executed() const noexcept {
    return atomics_;
  }
  [[nodiscard]] std::uint64_t results_emitted() const noexcept {
    return emitted_;
  }

 private:
  simt::StepResult step_into(LaneState& s, ResultSet& out,
                             std::uint64_t& emitted) const;
  simt::StepResult next_cell(LaneState& s, ResultSet& out,
                             std::uint64_t& emitted) const;
  simt::StepResult scan(LaneState& s, ResultSet& out,
                        std::uint64_t& emitted) const;

  /// Query `a` (probe dataset in R×S mode, gridded dataset otherwise)
  /// against candidate `b` (always the gridded dataset). qcoords_
  /// aliases coords_ for the self-join, so this is the one distance
  /// routine for both modes.
  [[nodiscard]] double dist2(PointId a, PointId b) const noexcept {
    double sum = 0.0;
    for (int d = 0; d < dims_; ++d) {
      const double diff = qcoords_[static_cast<std::size_t>(d)][a] -
                          coords_[static_cast<std::size_t>(d)][b];
      sum += diff * diff;
    }
    return sum;
  }

  /// dist(a, b) <= epsilon with per-dimension short-circuit for
  /// dims > 2 (host-side speedup only — the modeled cost_dist is
  /// charged in full either way, like SUPER-EGO's early termination).
  [[nodiscard]] bool within_eps(PointId a, PointId b) const noexcept {
    if (dims_ <= 2) return dist2(a, b) <= eps2_;
    double sum = 0.0;
    for (int d = 0; d < dims_; ++d) {
      const double diff = qcoords_[static_cast<std::size_t>(d)][a] -
                          coords_[static_cast<std::size_t>(d)][b];
      sum += diff * diff;
      if (sum > eps2_) return false;
    }
    return true;
  }

  KernelParams p_;
  // Cached hot fields.
  const GridCell* cells_ = nullptr;
  const PointId* point_ids_ = nullptr;
  std::array<const double*, kMaxDims> coords_{};   ///< gridded dataset
  std::array<const double*, kMaxDims> qcoords_{};  ///< query side (== coords_ for Self)
  int dims_ = 0;
  double eps2_ = 0.0;
  std::uint64_t adj_total_ = 0;   ///< 3^dims
  std::uint64_t adj_center_ = 0;  ///< odometer slot of the origin cell
  bool unidirectional_ = false;
  bool rxs_ = false;
  std::uint32_t cost_dist_ = 0;
  std::uint64_t atomics_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace gsj
