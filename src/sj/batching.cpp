#include "sj/batching.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "sj/reference.hpp"

namespace gsj {

void BatchingConfig::validate() const {
  GSJ_CHECK_MSG(buffer_pairs >= 1, "batching.buffer_pairs must be >= 1");
  GSJ_CHECK_MSG(nstreams >= 1, "batching.nstreams must be >= 1");
  GSJ_CHECK_MSG(sample_fraction > 0.0 && sample_fraction <= 1.0,
                "batching.sample_fraction must be in (0, 1], got "
                    << sample_fraction);
  GSJ_CHECK_MSG(safety >= 1.0, "batching.safety must be >= 1, got " << safety);
  GSJ_CHECK_MSG(pcie_gbps > 0.0,
                "batching.pcie_gbps must be > 0, got " << pcie_gbps);
  GSJ_CHECK_MSG(inject_estimator_skew > 0.0,
                "batching.inject_estimator_skew must be > 0, got "
                    << inject_estimator_skew);
}

namespace {

/// Applies the fault-injection skew to an estimate (identity at 1.0).
std::uint64_t skewed(std::uint64_t estimate, const BatchingConfig& cfg) {
  if (cfg.inject_estimator_skew == 1.0) return estimate;
  return static_cast<std::uint64_t>(static_cast<double>(estimate) *
                                    cfg.inject_estimator_skew);
}

/// Number of batches for an estimated total, >= 1. Capped at `n` (one
/// point per batch): a wildly high estimate — e.g. a skew-injected one —
/// must not plan millions of empty batches.
std::size_t batch_count(std::uint64_t estimated, const BatchingConfig& cfg,
                        std::size_t n) {
  if (!cfg.enabled || estimated == 0) return 1;
  const double padded = static_cast<double>(estimated) * cfg.safety;
  const auto wanted = static_cast<std::size_t>(
      std::max(1.0, std::ceil(padded / static_cast<double>(cfg.buffer_pairs))));
  return std::min(wanted, n);
}

}  // namespace

std::uint64_t estimate_strided_total(const GridIndex& grid,
                                     const BatchingConfig& cfg) {
  const std::size_t n = grid.dataset().size();
  const auto stride = static_cast<std::size_t>(
      std::max(1.0, std::floor(1.0 / cfg.sample_fraction)));
  std::vector<PointId> sample;
  sample.reserve(n / stride + 1);
  for (std::size_t i = 0; i < n; i += stride) {
    sample.push_back(static_cast<PointId>(i));
  }
  const auto counts = neighbor_counts(grid, sample);
  std::uint64_t sample_sum = 0;
  for (auto c : counts) sample_sum += c;
  return skewed(static_cast<std::uint64_t>(static_cast<double>(sample_sum) *
                                           static_cast<double>(n) /
                                           static_cast<double>(sample.size())),
                cfg);
}

std::uint64_t estimate_queue_total(const GridIndex& grid,
                                   const BatchingConfig& cfg,
                                   std::span<const PointId> queue_order) {
  const std::size_t n = grid.dataset().size();
  GSJ_CHECK(queue_order.size() == n);
  // First 1% of D' — the heaviest-workload points — extrapolated to the
  // whole dataset; the paper's deliberate over-estimate (§III-D).
  //
  // Deviation from the paper: points with the largest *workload*
  // (candidate count) do not always have the largest *result* count —
  // a small cell adjacent to a very dense cell scans many candidates
  // but keeps few — so the first-1% estimate can in fact undershoot on
  // heavily skewed data. We take the max of the first-1% and the
  // strided estimate, preserving the paper's "at least as many batches"
  // behaviour while staying safe (see DESIGN.md §2).
  const auto sample_n = static_cast<std::size_t>(
      std::max(1.0, std::floor(static_cast<double>(n) * cfg.sample_fraction)));
  const auto counts = neighbor_counts(grid, queue_order.subspan(0, sample_n));
  std::uint64_t sample_sum = 0;
  for (auto c : counts) sample_sum += c;
  const auto first_pct_estimate =
      skewed(static_cast<std::uint64_t>(static_cast<double>(sample_sum) /
                                        static_cast<double>(sample_n) *
                                        static_cast<double>(n)),
             cfg);
  return std::max(first_pct_estimate, estimate_strided_total(grid, cfg));
}

std::uint64_t estimate_rxs_strided_total(const GridIndex& grid,
                                         const Dataset& probe,
                                         const BatchingConfig& cfg) {
  const std::size_t n = probe.size();
  const auto stride = static_cast<std::size_t>(
      std::max(1.0, std::floor(1.0 / cfg.sample_fraction)));
  std::vector<PointId> sample;
  sample.reserve(n / stride + 1);
  for (std::size_t i = 0; i < n; i += stride) {
    sample.push_back(static_cast<PointId>(i));
  }
  const auto counts = probe_neighbor_counts(grid, probe, sample);
  std::uint64_t sample_sum = 0;
  for (auto c : counts) sample_sum += c;
  return skewed(static_cast<std::uint64_t>(static_cast<double>(sample_sum) *
                                           static_cast<double>(n) /
                                           static_cast<double>(sample.size())),
                cfg);
}

std::uint64_t estimate_rxs_queue_total(const GridIndex& grid,
                                       const Dataset& probe,
                                       const BatchingConfig& cfg,
                                       std::span<const PointId> queue_order) {
  const std::size_t n = probe.size();
  GSJ_CHECK(queue_order.size() == n);
  // Same first-1%-of-D' over-estimate as the self-join queue estimator,
  // maxed with the strided one (same undershoot caveat — see
  // estimate_queue_total).
  const auto sample_n = static_cast<std::size_t>(
      std::max(1.0, std::floor(static_cast<double>(n) * cfg.sample_fraction)));
  const auto counts =
      probe_neighbor_counts(grid, probe, queue_order.subspan(0, sample_n));
  std::uint64_t sample_sum = 0;
  for (auto c : counts) sample_sum += c;
  const auto first_pct_estimate =
      skewed(static_cast<std::uint64_t>(static_cast<double>(sample_sum) /
                                        static_cast<double>(sample_n) *
                                        static_cast<double>(n)),
             cfg);
  return std::max(first_pct_estimate,
                  estimate_rxs_strided_total(grid, probe, cfg));
}

BatchPlan plan_strided(const GridIndex& grid, const BatchingConfig& cfg,
                       bool sort_batches_by_workload, CellPattern pattern,
                       obs::Tracer* tracer, ThreadPool* pool,
                       std::span<const std::uint64_t> workloads,
                       std::optional<std::uint64_t> precomputed_estimate,
                       const Dataset* probe) {
  const std::size_t n = probe != nullptr ? probe->size() : grid.dataset().size();
  GSJ_CHECK(n > 0);
  cfg.validate();
  BatchPlan plan;
  {
    // The span opens on the cached path too: downstream logical traces
    // must be byte-identical whether the estimate was sampled here or
    // fetched from the engine cache.
    const auto sp = obs::span(tracer, "estimation_sample");
    plan.estimated_total_pairs =
        precomputed_estimate.has_value() ? *precomputed_estimate
        : probe != nullptr ? estimate_rxs_strided_total(grid, *probe, cfg)
                           : estimate_strided_total(grid, cfg);
  }
  plan.num_batches = batch_count(plan.estimated_total_pairs, cfg, n);
  plan.batches.resize(plan.num_batches);
  for (auto& b : plan.batches) b.reserve(n / plan.num_batches + 1);
  for (std::size_t i = 0; i < n; ++i) {
    plan.batches[i % plan.num_batches].push_back(static_cast<PointId>(i));
  }

  if (sort_batches_by_workload) {
    std::vector<std::uint64_t> pw_storage;
    std::span<const std::uint64_t> pw = workloads;
    {
      const auto sp = obs::span(tracer, "workload_quantify");
      if (pw.empty()) {
        pw_storage = probe != nullptr
                         ? probe_point_workloads(grid, *probe, pool)
                         : point_workloads(grid, pattern, pool);
        pw = pw_storage;
      }
      GSJ_CHECK(pw.size() == n);
    }
    const auto sp = obs::span(tracer, "sortbywl_sort");
    const auto sort_batch = [&](std::size_t bi) {
      auto& b = plan.batches[bi];
      std::stable_sort(b.begin(), b.end(), [&pw](PointId a, PointId c) {
        return pw[a] > pw[c];
      });
    };
    // Batches are disjoint vectors and each gets a plain stable sort,
    // so running them on pool workers changes nothing but wall time.
    if (pool != nullptr && pool->size() > 1 && plan.num_batches > 1) {
      pool->parallel_for(plan.num_batches, sort_batch);
    } else {
      for (std::size_t bi = 0; bi < plan.num_batches; ++bi) sort_batch(bi);
    }
  }
  return plan;
}

BatchPlan plan_queue(const GridIndex& grid, const BatchingConfig& cfg,
                     std::span<const PointId> queue_order,
                     std::span<const std::uint64_t> workloads,
                     obs::Tracer* tracer,
                     std::optional<std::uint64_t> precomputed_estimate,
                     const Dataset* probe) {
  const std::size_t n = probe != nullptr ? probe->size() : grid.dataset().size();
  GSJ_CHECK(queue_order.size() == n);
  GSJ_CHECK(workloads.size() == n);
  cfg.validate();
  BatchPlan plan;
  {
    // Opens even when the estimate is precomputed — see plan_strided.
    const auto sp = obs::span(tracer, "estimation_sample");
    plan.estimated_total_pairs =
        precomputed_estimate.has_value() ? *precomputed_estimate
        : probe != nullptr
            ? estimate_rxs_queue_total(grid, *probe, cfg, queue_order)
            : estimate_queue_total(grid, cfg, queue_order);
  }

  if (!cfg.enabled) {
    plan.queue_ranges.emplace_back(0, n);
    plan.num_batches = 1;
    return plan;
  }

  // Greedy chunking. Two cut conditions:
  //  * hard bound — one point contributes at most 2*workload + 1 pairs
  //    (every candidate evaluation emits at most two ordered pairs,
  //    plus the self pair), so keeping the summed bound within the
  //    buffer can never overflow;
  //  * estimate — mean pairs/point from the sample, scaled by the
  //    safety factor, keeps chunk sizes close to the paper's
  //    equal-share scheme when the bound is loose.
  const double est_per_point =
      static_cast<double>(plan.estimated_total_pairs) /
      static_cast<double>(n) * cfg.safety;
  const auto budget = static_cast<double>(cfg.buffer_pairs);
  std::size_t begin = 0;
  while (begin < n) {
    std::uint64_t bound_sum = 0;
    double est_sum = 0.0;
    std::size_t end = begin;
    while (end < n) {
      const std::uint64_t b = 2 * workloads[queue_order[end]] + 1;
      if (end > begin && (static_cast<double>(bound_sum + b) > budget ||
                          est_sum + est_per_point > budget)) {
        break;
      }
      bound_sum += b;
      est_sum += est_per_point;
      ++end;
    }
    plan.queue_ranges.emplace_back(begin, end);
    begin = end;
  }
  plan.num_batches = plan.queue_ranges.size();
  return plan;
}

double transfer_seconds(std::uint64_t pairs, const BatchingConfig& cfg) {
  // One result pair = two 4-byte point ids.
  const double bytes = static_cast<double>(pairs) * 8.0;
  return bytes / (cfg.pcie_gbps * 1e9);
}

double pipeline_seconds(std::span<const double> kernel_secs,
                        std::span<const double> transfer_secs, int nstreams) {
  GSJ_CHECK(kernel_secs.size() == transfer_secs.size());
  GSJ_CHECK(nstreams >= 1);
  const std::size_t nb = kernel_secs.size();
  if (nb == 0) return 0.0;

  std::vector<double> transfer_end(nb, 0.0);
  double device_free = 0.0;  // kernels serialize on the device
  double pcie_free = 0.0;    // transfers serialize on the link
  double last = 0.0;
  for (std::size_t b = 0; b < nb; ++b) {
    // The stream's previous operation: batch b - nstreams.
    const double stream_free =
        b >= static_cast<std::size_t>(nstreams)
            ? transfer_end[b - static_cast<std::size_t>(nstreams)]
            : 0.0;
    const double kstart = std::max(device_free, stream_free);
    const double kend = kstart + kernel_secs[b];
    device_free = kend;
    const double tstart = std::max(kend, pcie_free);
    transfer_end[b] = tstart + transfer_secs[b];
    pcie_free = transfer_end[b];
    last = std::max(last, transfer_end[b]);
  }
  return last;
}

}  // namespace gsj
