// Execution stage of the self-join pipeline (internal).
//
// JoinEngine::run (sj/engine.hpp) splits the former monolithic
// self_join into three stages: *prepare* (dataset admission), *plan*
// (grid / workload / batch-plan resolution, cache-served when warm) and
// *execute* — this file. The execution stage takes a fully resolved
// plan and drives the batched kernel launches: per-batch capacity
// windows, overflow rollback + LIFO split recovery, per-warp
// observability commits, stats finalization and metrics publication.
//
// ScratchArena is the engine's reusable working memory: every vector
// the execution stage needs per run (per-batch timing, warp-cycle
// collection, slot accounting, buffered warp records) plus spare
// storage reclaimed by JoinEngine::recycle (the result-pair buffer,
// batch-stats and slot vectors of a consumed output). Reusing the
// arena across queries removes the per-call allocation churn of the
// one-shot path; it never changes observable behaviour — a fresh arena
// and a warm one produce bit-identical outputs.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "obs/context.hpp"
#include "simt/launch.hpp"
#include "sj/selfjoin.hpp"

namespace gsj::detail {

struct ScratchArena {
  // --- per-run working vectors (cleared, capacity kept) ---
  std::vector<double> kernel_secs;
  std::vector<double> xfer_secs;
  std::vector<std::uint64_t> all_warp_cycles;
  std::vector<std::uint64_t> slot_finish;
  std::vector<simt::WarpRecord> launch_records;

  // --- spare storage donated to the next run (JoinEngine::recycle) ---
  std::vector<ResultPair> spare_pairs;
  std::vector<BatchStats> spare_batch_stats;
  std::vector<obs::SlotStats> spare_slots;
};

/// Everything the execution stage needs, resolved by the plan stage.
struct ExecutionInputs {
  const GridIndex* grid = nullptr;
  /// Consumed: the strided driver moves the batch point lists out.
  BatchPlan* plan = nullptr;
  /// R×S probe dataset (JoinMode::RxS): batch/queue point ids index it
  /// instead of the gridded dataset, and the kernels run in probing
  /// mode (sj/kernels.hpp). nullptr for the self-join.
  const Dataset* probe = nullptr;
  /// D' (workload-sorted order) for the work-queue variants; empty
  /// otherwise. Must outlive the call.
  std::span<const PointId> queue_order;
  /// Effective device config: the host pool is already attached.
  simt::DeviceConfig device;
  /// Optional cooperative-cancellation token (JoinService). When set,
  /// it is polled at every batch boundary and folded into the
  /// LaunchAbort hook (polled at kWarpBlock boundaries inside a
  /// launch); once observed true the run throws CancelledError and the
  /// partial output is discarded by the caller.
  const std::atomic<bool>* cancel = nullptr;

  // --- fleet path only (sj/pipeline.hpp fleet branch) ---
  /// Per-point workloads under cfg.pattern (grid/workload.hpp): grain
  /// weights for the partitioner and the 2w+1 chunk bounds of the
  /// work-queue driver. Empty on the single-device path.
  std::span<const std::uint64_t> point_workloads;
  /// Whole-join result-size estimate (the shared estimate cache's
  /// value); execute_fleet scales it by grain workload share to size
  /// per-grain chunks.
  std::uint64_t estimated_total_pairs = 0;

  // --- request-scoped channel (JoinService::submit path) ---
  /// Service-channel tracer for per-launch request spans ("batch N",
  /// "overflow_retry") parented under `channel_ctx`. Only consulted
  /// when channel_ctx.request_id != 0, so engine/direct runs never
  /// emit request spans.
  obs::Tracer* channel_tracer = nullptr;
  obs::SpanContext channel_ctx;
  /// Flight-recorder breadcrumbs (batch commits, overflow retries,
  /// cancellation, overflow exhaustion). Null disables.
  obs::FlightRecorder* recorder = nullptr;
};

/// Runs the batched kernel launches for a planned self-join and fills
/// `out` (whose ResultSet is already constructed in the right storage
/// mode; stats.host_prep_seconds / estimated_total_pairs are set by the
/// caller). Throws OverflowError exactly as the public API documents.
void execute_self_join(const SelfJoinConfig& cfg, ExecutionInputs& in,
                       ScratchArena& arena, SelfJoinOutput& out);

/// Fleet execution (docs/SIMULATOR.md §fleet): shards the grid into
/// work grains (grid/grain.hpp), schedules them across
/// cfg.fleet.num_devices modeled devices with the LPT/measured-rate
/// rebalancer (simt/fleet.hpp), and runs each grain's batches with the
/// same capacity/overflow/cancellation discipline as the single-device
/// driver. The merged ResultSet is bit-identical to a single-device run
/// (canonical order when store_pairs; counts add otherwise); per-device
/// makespan/CoV/tail-idle land in out.stats.fleet and the sj.fleet.*
/// metric family. Per-warp dispersion is still collected fleet-wide;
/// per-slot vectors and tracer device events are not (device-level
/// accounting supersedes them at this scale). Requires
/// in.point_workloads and in.estimated_total_pairs from the fleet plan
/// branch.
void execute_fleet(const SelfJoinConfig& cfg, ExecutionInputs& in,
                   ScratchArena& arena, SelfJoinOutput& out);

/// ε-subsumption filter (docs/SERVICE.md result-serving layer): keeps
/// the pairs of a cached ε-result whose dist² ≤ epsilon², for a
/// requested epsilon ≤ the cached ε. `pairs` must be the *canonical*
/// (lexicographically sorted) pair list of the superset result —
/// filtering preserves order, so the output is exactly what a cold run
/// at `epsilon` would canonicalize to. When `out` is non-null each kept
/// pair is emitted into it (its storage mode decides pairs vs count);
/// the kept count is returned either way. One linear pass, dimension-
/// specialized so the hot loop vectorizes.
std::uint64_t subsume_filter(const Dataset& ds,
                             std::span<const ResultPair> pairs,
                             double epsilon, ResultSet* out);

}  // namespace gsj::detail
