#include "sj/result_set.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gsj {

void ResultSet::absorb(ResultSet&& other) {
  GSJ_CHECK_MSG(store_ == other.store_, "absorb across storage modes");
  if (store_) {
    // Respect this set's batch storage clamp: everything is counted but
    // only the pairs that fit the batch capacity are kept (mirrors the
    // per-emit clamp; only reachable while a batch is overflowing, i.e.
    // on content that is about to be rolled back anyway).
    const std::uint64_t room =
        store_limit_ == kUnlimited
            ? other.pairs_.size()
            : std::min<std::uint64_t>(
                  other.pairs_.size(),
                  store_limit_ - std::min(store_limit_, count_));
    pairs_.insert(pairs_.end(), other.pairs_.begin(),
                  other.pairs_.begin() + static_cast<std::ptrdiff_t>(room));
  }
  count_ += other.count_;
  other.clear();
}

void ResultSet::canonicalize() {
  GSJ_CHECK_MSG(store_, "canonicalize requires stored pairs");
  std::sort(pairs_.begin(), pairs_.end());
}

ResultSet::NeighborLists ResultSet::neighbor_lists(std::size_t n) const {
  GSJ_CHECK_MSG(store_, "neighbor_lists requires stored pairs");
  NeighborLists nl;
  nl.offsets.assign(n + 1, 0);
  for (const auto& [a, b] : pairs_) {
    GSJ_CHECK(a < n && b < n);
    ++nl.offsets[a + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) nl.offsets[i] += nl.offsets[i - 1];
  nl.neighbors.resize(pairs_.size());
  std::vector<std::uint64_t> cursor(nl.offsets.begin(), nl.offsets.end() - 1);
  for (const auto& [a, b] : pairs_) nl.neighbors[cursor[a]++] = b;
  for (std::size_t p = 0; p < n; ++p) {
    std::sort(nl.neighbors.begin() + static_cast<std::ptrdiff_t>(nl.offsets[p]),
              nl.neighbors.begin() + static_cast<std::ptrdiff_t>(nl.offsets[p + 1]));
  }
  return nl;
}

}  // namespace gsj
