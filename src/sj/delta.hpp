// Streaming delta joins (docs/STREAMING.md): given the churn summary
// of a mutation window and a grid over the *current* dataset, compute
// exactly how the self-join result changed — the pairs gained and the
// pairs lost — without re-joining anything farther than one ε shell
// from the churn.
//
// Pair semantics match the full join (sj/result_set.hpp): ordered
// pairs, self pairs included, lexicographically sorted. Pairs on the
// "lost" side are labeled with the ids points had at the window's base
// generation (ChurnSummary tracks identity through swap-and-pop
// renames), so gained/lost equal the literal set differences of
// brute-force results computed after and before the window — the
// invariant the differential churn tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "data/churn.hpp"
#include "grid/grid_index.hpp"
#include "sj/result_set.hpp"

namespace gsj {

struct DeltaStats {
  std::size_t touched_points = 0;  ///< live points whose position/id changed
  std::size_t removed_points = 0;  ///< points that left the dataset
  std::uint64_t candidates = 0;    ///< distance evaluations performed
};

/// The join-result difference across a mutation window.
struct PairDelta {
  /// Ordered pairs present now and absent at the base generation,
  /// lexicographically sorted.
  std::vector<ResultPair> gained;
  /// Ordered pairs present at the base generation (labeled with
  /// base-generation ids) and absent now, lexicographically sorted.
  std::vector<ResultPair> lost;
  DeltaStats stats;

  [[nodiscard]] bool empty() const noexcept {
    return gained.empty() && lost.empty();
  }
};

/// Computes the pair delta for query radius `epsilon` from `churn`.
/// `grid` must be current (grid.generation() == dataset generation)
/// and at least as coarse as the query: epsilon <= grid.epsilon().
/// Cost is O(churn · ε-neighborhood) + O(touched²) — independent of
/// dataset size.
[[nodiscard]] PairDelta compute_pair_delta(const GridIndex& grid,
                                           const ChurnSummary& churn,
                                           double epsilon);

}  // namespace gsj
