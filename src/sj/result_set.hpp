// Self-join result collection.
//
// The full result of a similarity self-join is the set of *ordered*
// pairs (a, b) with dist(a, b) <= epsilon, including the (a, a) self
// pairs — the convention of Gowanlock & Karsin [18], which makes the
// result directly usable as epsilon-neighborhood lists (|N(p)| counts p
// itself, as DBSCAN expects).
//
// Large joins produce result sets far beyond memory, so the collector
// supports a count-only mode; pair storage is reserved for tests,
// examples and small workloads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/dataset.hpp"

namespace gsj {

using ResultPair = std::pair<PointId, PointId>;

class ResultSet {
 public:
  /// `store_pairs == false` keeps only the count (benchmark mode).
  explicit ResultSet(bool store_pairs = true) : store_(store_pairs) {}

  void emit(PointId a, PointId b) {
    ++count_;
    if (store_) pairs_.emplace_back(a, b);
  }

  /// Folds in pairs that were counted elsewhere (thread-local merge in
  /// count-only mode).
  void add_count(std::uint64_t n) noexcept { count_ += n; }

  /// Appends another collector's content in its emission order and
  /// empties it — the per-warp-shard merge of the parallel host
  /// execution path. Both sides must share the storage mode.
  void absorb(ResultSet&& other);

  /// Pre-sizes pair storage for `expected_pairs` total pairs (from the
  /// batch estimator) so store-pairs joins don't pay realloc churn
  /// mid-kernel. No-op in count-only mode.
  void reserve(std::uint64_t expected_pairs) {
    if (store_) pairs_.reserve(static_cast<std::size_t>(expected_pairs));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool stores_pairs() const noexcept { return store_; }
  [[nodiscard]] const std::vector<ResultPair>& pairs() const noexcept {
    return pairs_;
  }

  /// Sorts stored pairs lexicographically — the canonical form used to
  /// compare results across kernel variants (which emit in different
  /// orders but must produce the same set).
  void canonicalize();

  /// Converts stored ordered pairs into per-point neighbor lists
  /// (CSR-style offsets + flattened neighbor ids). Requires stored
  /// pairs; `n` is the dataset size.
  struct NeighborLists {
    std::vector<std::uint64_t> offsets;  ///< size n+1
    std::vector<PointId> neighbors;
  };
  [[nodiscard]] NeighborLists neighbor_lists(std::size_t n) const;

  void clear() noexcept {
    count_ = 0;
    pairs_.clear();
  }

 private:
  bool store_;
  std::uint64_t count_ = 0;
  std::vector<ResultPair> pairs_;
};

}  // namespace gsj
