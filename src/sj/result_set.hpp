// Self-join result collection.
//
// The full result of a similarity self-join is the set of *ordered*
// pairs (a, b) with dist(a, b) <= epsilon, including the (a, a) self
// pairs — the convention of Gowanlock & Karsin [18], which makes the
// result directly usable as epsilon-neighborhood lists (|N(p)| counts p
// itself, as DBSCAN expects).
//
// Large joins produce result sets far beyond memory, so the collector
// supports a count-only mode; pair storage is reserved for tests,
// examples and small workloads.
//
// Batch capacity. A real GPU join writes each batch's pairs into a
// fixed pinned buffer; writes past the end are dropped while the atomic
// result counter keeps incrementing, and the host detects the overflow
// from the final count. begin_batch(capacity) reproduces exactly that:
// emit() always counts, but storage is clamped at `capacity` pairs past
// the batch base, so memory stays bounded no matter how badly the size
// estimate undershot. The host side polls batch_overflowed() (the
// launch abort hook) and either commits the batch or rolls it back with
// rollback_batch() before re-planning (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <limits>
#include <new>
#include <utility>
#include <vector>

#include "data/dataset.hpp"

namespace gsj {

using ResultPair = std::pair<PointId, PointId>;

class ResultSet {
 public:
  /// No capacity set: storage is unbounded, as before.
  static constexpr std::uint64_t kUnlimited =
      std::numeric_limits<std::uint64_t>::max();

  /// `store_pairs == false` keeps only the count (benchmark mode).
  explicit ResultSet(bool store_pairs = true) : store_(store_pairs) {}

  void emit(PointId a, PointId b) {
    ++count_;
    if (store_ && count_ <= store_limit_) pairs_.emplace_back(a, b);
  }

  /// Folds in pairs that were counted elsewhere (thread-local merge in
  /// count-only mode).
  void add_count(std::uint64_t n) noexcept { count_ += n; }

  /// Appends another collector's content in its emission order and
  /// empties it — the per-warp-shard merge of the parallel host
  /// execution path. Both sides must share the storage mode.
  void absorb(ResultSet&& other);

  /// Pre-sizes pair storage for `expected_pairs` total pairs (from the
  /// batch estimator) so store-pairs joins don't pay realloc churn
  /// mid-kernel. No-op in count-only mode. The reservation is a hint
  /// from an *untrusted* estimate: callers clamp it to the batch buffer
  /// capacity, it is bounded to max_size here, and a failed allocation
  /// is swallowed — a wildly high estimate must not abort the join
  /// before it starts; emit() simply grows storage amortized as usual.
  void reserve(std::uint64_t expected_pairs) {
    if (!store_) return;
    try {
      pairs_.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(expected_pairs, pairs_.max_size())));
    } catch (const std::bad_alloc&) {
    }
  }

  // --- per-batch capacity (the fixed pinned buffer of one launch) ---

  /// Opens a batch of at most `capacity` pairs: emissions keep counting
  /// past it, but storage is clamped (bounded memory) and
  /// batch_overflowed() turns true. kUnlimited disables the check.
  void begin_batch(std::uint64_t capacity) {
    batch_base_ = count_;
    batch_capacity_ = capacity;
    store_limit_ = capacity == kUnlimited || count_ > kUnlimited - capacity
                       ? kUnlimited
                       : count_ + capacity;
  }

  /// Pairs emitted since begin_batch.
  [[nodiscard]] std::uint64_t batch_count() const noexcept {
    return count_ - batch_base_;
  }

  [[nodiscard]] std::uint64_t batch_capacity() const noexcept {
    return batch_capacity_;
  }

  /// True once the current batch emitted more pairs than its capacity —
  /// the condition the launch abort hook and the recovery loop poll.
  [[nodiscard]] bool batch_overflowed() const noexcept {
    return count_ - batch_base_ > batch_capacity_;
  }

  /// Discards everything emitted since begin_batch (count and storage):
  /// the rollback before a failed batch is split and re-executed.
  void rollback_batch() {
    count_ = batch_base_;
    if (store_ && pairs_.size() > count_) {
      pairs_.resize(static_cast<std::size_t>(count_));
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool stores_pairs() const noexcept { return store_; }
  [[nodiscard]] const std::vector<ResultPair>& pairs() const noexcept {
    return pairs_;
  }

  /// Exact heap bytes held by pair storage (capacity, not size — the
  /// allocation is what a byte budget has to account for). 0 in
  /// count-only mode. Used by the service's result-cache accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return pairs_.capacity() * sizeof(ResultPair);
  }

  /// Sorts stored pairs lexicographically — the canonical form used to
  /// compare results across kernel variants (which emit in different
  /// orders but must produce the same set).
  void canonicalize();

  /// Converts stored ordered pairs into per-point neighbor lists
  /// (CSR-style offsets + flattened neighbor ids). Requires stored
  /// pairs; `n` is the dataset size.
  struct NeighborLists {
    std::vector<std::uint64_t> offsets;  ///< size n+1
    std::vector<PointId> neighbors;
  };
  [[nodiscard]] NeighborLists neighbor_lists(std::size_t n) const;

  void clear() noexcept {
    count_ = 0;
    pairs_.clear();
    batch_base_ = 0;
    batch_capacity_ = kUnlimited;
    store_limit_ = kUnlimited;
  }

  // --- storage recycling (the engine's scratch arena) ---

  /// Donates an empty-but-capacitated buffer for pair storage: the
  /// vector is cleared and used in place of a fresh allocation, so a
  /// long-lived JoinEngine can reuse one pair buffer across queries
  /// instead of reallocating per call. Content (if any) is discarded;
  /// no observable state changes besides capacity.
  void adopt_storage(std::vector<ResultPair>&& buffer) noexcept {
    pairs_ = std::move(buffer);
    pairs_.clear();
  }

  /// Releases the pair buffer (capacity included) back to the caller
  /// and resets the collector — the inverse of adopt_storage, used by
  /// JoinEngine::recycle to reclaim a consumed output's allocation.
  [[nodiscard]] std::vector<ResultPair> take_storage() noexcept {
    std::vector<ResultPair> out = std::move(pairs_);
    clear();
    return out;
  }

 private:
  bool store_;
  std::uint64_t count_ = 0;
  // Batch window: emissions beyond store_limit_ are counted, not stored.
  std::uint64_t batch_base_ = 0;
  std::uint64_t batch_capacity_ = kUnlimited;
  std::uint64_t store_limit_ = kUnlimited;
  std::vector<ResultPair> pairs_;
};

}  // namespace gsj
