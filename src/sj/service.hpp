// JoinService: concurrent multi-client serving on one shared engine
// core.
//
// PR 4's JoinEngine made plan reuse cheap but pinned each engine to a
// single thread, so concurrent clients each paid for private caches
// (the free self_join kept one engine *per thread*). JoinService is
// the serving layer on top of the same plan+execute pipeline
// (sj/pipeline.hpp), built for many clients against shared prepared
// datasets — the paper's scheduling discipline (decouple work items
// from executors, §III-D) applied one level up:
//
//   attach(ds)  -> shared_ptr<SharedDataset>   shared plan caches
//   run(sd,cfg) -> SelfJoinOutput              synchronous, on the caller
//   submit(...) -> Ticket                      queued, on the worker pool
//   self_join() -> SelfJoinOutput              one-shot (no cross-call cache)
//
// Concurrency design (docs/SERVICE.md):
//
//  * SharedDataset carries the same artifact caches as PreparedDataset
//    (GridIndex by epsilon bits, workloads + D' order by
//    (grid content_key, pattern), estimates by (sample_fraction, skew))
//    behind a reader/writer lock: concurrent cache *hits* take the
//    shared lock only and never serialize on each other.
//  * Misses are *single-flight*: the first requester installs a
//    promise-backed shared_future under the exclusive lock, builds
//    outside any lock, and publishes; N clients requesting the same
//    grid build it exactly once, the rest wait on the future.
//  * Working memory is pooled, not shared: every in-flight run checks
//    a ScratchArena (and, when host threads are requested, a
//    ThreadPool) out of a bounded depot and returns it afterwards, so
//    resident state is bounded by the depot caps — not by how many
//    threads ever joined (the thread_local-engine leak this replaces).
//  * The admission queue is bounded and priority-ordered (higher
//    priority first, FIFO within a priority), with per-request queue
//    deadlines and cooperative cancellation routed through the
//    LaunchAbort hook (a cancelled in-flight run aborts at the next
//    warp-block boundary and reports JoinStatus::Cancelled).
//  * submit() additionally passes a *result-serving* gate before a
//    worker runs the pipeline: an exact cached result for the same
//    (dataset generation, ε, storage mode) is served directly; an
//    identical request already executing is joined as a follower
//    (single-flight result coalescing — duplicates never occupy a
//    worker); and a cached result for a larger ε answers a smaller ε'
//    through a linear dist² filter when a cost model says the filter
//    beats re-joining (ε-subsumption). Every served path is
//    bit-identical to a cold run of the same request — cached pairs
//    are stored in canonical order, the order every cold stored-pairs
//    run ends in. See docs/SERVICE.md.
//
// Correctness bar, same as every prior layer: any interleaving of
// concurrent clients yields results bit-identical to running those
// requests serially on a cold engine (tests/test_service.cpp pins this
// under TSan).
//
// Observability: the service's own channel (ServiceConfig::obs)
// carries svc.* instruments — queue depth, wait/service time
// histograms, per-status counters — plus the sj.cache.* family for the
// shared artifact caches; per-run sinks (SelfJoinConfig::tracer /
// ::metrics) are untouched and see exactly what a cold engine run
// would emit. Every submit()ted request additionally gets a stable
// request id, a parented span tree on the service tracer (queue_wait /
// plan / execute / batch N / overflow_retry under one "request" root),
// a RequestBreakdown in its JoinResponse, and flight-recorder
// breadcrumbs in the service's always-on recorder (docs/
// OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <shared_mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "obs/context.hpp"
#include "sj/delta.hpp"
#include "sj/selfjoin.hpp"

namespace gsj {

class ThreadPool;

namespace detail {
struct ScratchArena;      // sj/execute.hpp
class ServicePlanSource;  // sj/service.cpp (PlanSource over SharedDataset)
struct ResultFlight;      // sj/service.cpp (result-coalescing flight slot)
}  // namespace detail

struct ServiceConfig {
  /// Worker threads serving the admission queue. Spawned lazily on the
  /// first submit(); run()/self_join() execute on the caller's thread
  /// and never require workers. Clamped to >= 1 at spawn time.
  std::size_t workers = 4;
  /// Bound on queued (not yet running) requests; submit() beyond it
  /// answers JoinStatus::Rejected immediately.
  std::size_t max_queue_depth = 256;
  /// Per-SharedDataset cache bounds, as EngineConfig's (LRU beyond).
  std::size_t max_cached_grids = 4;
  std::size_t max_cached_plans = 8;
  /// Bound on idle pooled scratch arenas / host thread pools kept for
  /// reuse; leases beyond it are served fresh and destroyed on return.
  std::size_t max_pooled_arenas = 8;
  std::size_t max_pooled_thread_pools = 4;
  /// Per-SharedDataset byte budget for the result cache: completed
  /// submit() results (canonical pairs + scalar stats) retained for
  /// exact-ε and ε-subsumption serving, LRU-evicted beyond the budget.
  /// 0 disables retention entirely (in-flight duplicate coalescing
  /// still applies — it needs no storage beyond the running request).
  std::size_t max_result_cache_bytes = std::size_t{64} << 20;
  /// ε-subsumption cost model: a cached ε-result answers a smaller ε'
  /// via a linear dist² filter only when cached_pairs <= ratio ×
  /// estimated_result_pairs(ε') (from the shared estimate cache). With
  /// no estimate on file the filter is taken unconditionally — one
  /// linear pass over an existing pair list is far cheaper than the
  /// join that would have to produce it.
  double subsume_cost_ratio = 8.0;

  // --- the service's own observability channel (optional, non-owning).
  /// obs.tracer receives "prepare" / "plan_reuse" spans (as
  /// EngineConfig::obs) plus the per-request span tree; obs.metrics
  /// receives svc.* instruments (submitted/completed/rejected/expired/
  /// cancelled/failed counters, svc.queue_depth gauge,
  /// svc.queue_wait_seconds and svc.service_seconds time histograms),
  /// the sj.cache.* family, the sj.incr.* incremental-repair family
  /// (repairs/repaired_cells/plan_patches/rebuild_fallbacks), the
  /// svc.result_cache.* family (hits/misses/coalesced/subsumed/
  /// evictions/invalidations/repair_kept counters plus a bytes gauge)
  /// and the svc.stream.* subscription family (subscribes/polls/deltas/
  /// fallbacks/gained_pairs/lost_pairs). obs.recorder, when set,
  /// replaces the
  /// service-owned flight recorder; leave null for the always-on
  /// default (JoinService::recorder()).
  obs::ObsContext obs;
  /// Where the flight recorder auto-dumps the failing request's
  /// breadcrumbs on a Failed/Expired response. Null = std::cerr.
  std::ostream* recorder_dump = nullptr;
};

/// Terminal state of a served request.
enum class JoinStatus {
  Ok,         ///< ran to completion; JoinResponse::output is valid
  Rejected,   ///< admission queue full (or service shutting down)
  Expired,    ///< queue-wait deadline passed before the run started
  Cancelled,  ///< cancel token observed before or during the run
  Failed,     ///< the run threw (OverflowError, CheckError, ...)
};

[[nodiscard]] const char* to_string(JoinStatus s) noexcept;

/// One queued join request. The epsilon/variant/device knobs live in
/// `config`, exactly as a direct engine run would take them.
struct JoinRequest {
  SelfJoinConfig config;
  /// Higher runs first; FIFO within equal priorities.
  int priority = 0;
  /// Max seconds the request may wait in the queue before it is
  /// answered JoinStatus::Expired instead of run. Infinity = no limit.
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

struct JoinResponse {
  JoinStatus status = JoinStatus::Failed;
  /// Valid only when status == Ok.
  SelfJoinOutput output;
  /// what() of the failure when status == Failed.
  std::string error;
  double wait_seconds = 0.0;     ///< admission-queue wait
  double service_seconds = 0.0;  ///< run wall time (0 unless started)
  /// Stable id assigned at submit() (>= 1); keys this request's spans
  /// on the service tracer and its flight-recorder breadcrumbs.
  /// 0 for run()/self_join() responses, which are not requests.
  std::uint64_t request_id = 0;
  /// Per-stage attribution for this request (wait/plan/execute
  /// seconds, per-artifact cache hits/misses, batches, retries,
  /// pairs). Stage fields are filled only for requests that ran.
  obs::RequestBreakdown breakdown;
};

/// Point-in-time view of a running service (JoinService::snapshot).
struct ServiceSnapshot {
  /// Queued-but-not-started requests, total and by priority.
  std::size_t queue_depth = 0;
  std::map<int, std::size_t> queued_by_priority;
  struct InFlightRequest {
    std::uint64_t request_id = 0;
    int priority = 0;
    double age_seconds = 0.0;  ///< since the worker started executing
  };
  /// Requests currently executing on workers, request-id ascending.
  std::vector<InFlightRequest> in_flight;
  /// Depot levels (idle, excludes checked-out leases).
  std::size_t idle_arenas = 0;
  std::size_t idle_thread_pools = 0;
  /// Live attach()ed datasets and their aggregate cache population.
  std::size_t attached_datasets = 0;
  std::size_t cached_grids = 0;
  std::size_t cached_plans = 0;
  /// Approximate bytes held by ready cached artifacts (grids,
  /// workloads, D' orders) across live attached datasets.
  std::size_t cached_bytes = 0;
  /// Result-cache occupancy across live attached datasets
  /// (docs/SERVICE.md result-serving layer), plus the per-dataset byte
  /// budget it is bounded by (ServiceConfig::max_result_cache_bytes).
  std::size_t result_entries = 0;
  std::size_t result_bytes = 0;
  std::size_t result_budget_bytes = 0;
  /// Live streaming delta subscriptions (JoinService::subscribe).
  std::size_t subscriptions = 0;
  /// Fleet serving totals (docs/SIMULATOR.md §fleet): accumulated over
  /// every run with fleet.num_devices > 1 since service construction.
  /// Empty/zero when no fleet run has happened.
  struct FleetDeviceRow {
    int device = 0;
    std::uint64_t grains = 0;          ///< grains scheduled onto it
    double busy_seconds = 0.0;         ///< modeled busy (incl. wasted)
    double tail_idle_seconds = 0.0;    ///< idle behind each makespan
  };
  std::uint64_t fleet_runs = 0;
  std::uint64_t fleet_rebalances = 0;
  /// Device-level busy-seconds CoV of the most recent fleet run.
  double fleet_device_cov = 0.0;
  /// Makespan imbalance (max/mean busy) of the most recent fleet run.
  double fleet_imbalance = 0.0;
  /// Per-device cumulative rows, device id ascending.
  std::vector<FleetDeviceRow> fleet_devices;
};

/// A dataset attached to the service, carrying the shared,
/// reader/writer-locked plan-artifact caches. Create via
/// JoinService::attach; the Dataset must outlive every run against it.
/// Runs may be issued against one SharedDataset from any number of
/// threads concurrently; mutating the *dataset* is only supported while
/// no run is in flight. A generation change no longer drops the caches
/// as a unit: each cached grid is clone-and-repaired cell-granularly
/// from the dataset's mutation log (GridIndex::repair) and dependent
/// workload/D' plans are patched for the affected cells only, exactly
/// as the single-threaded engine does (docs/STREAMING.md); only an
/// unrepairable window (bulk load, log overrun, grid-shape change)
/// falls back to the old drop-everything behaviour.
class SharedDataset {
 public:
  SharedDataset(const SharedDataset&) = delete;
  SharedDataset& operator=(const SharedDataset&) = delete;

  [[nodiscard]] const Dataset& dataset() const noexcept { return *ds_; }
  [[nodiscard]] std::size_t cached_grid_count() const;
  [[nodiscard]] std::size_t cached_plan_count() const;
  /// Approximate bytes held by *ready* cached artifacts (built grids,
  /// workload vectors, D' orders); artifacts still building count 0.
  [[nodiscard]] std::size_t cached_artifact_bytes() const;
  /// Result-cache occupancy: completed submit() results retained for
  /// exact-ε and ε-subsumption serving (docs/SERVICE.md).
  [[nodiscard]] std::size_t result_cache_entries() const;
  [[nodiscard]] std::size_t result_cache_bytes() const;

  /// One ready cached grid's identity: the epsilon it was built for,
  /// its content digest (GridIndex::content_key) and the dataset
  /// generation it reflects. Used by churn harnesses (sjtool serve
  /// --churn-rate) to assert repaired grids are digest-identical to
  /// from-scratch rebuilds without reaching into the cache.
  struct GridDigest {
    double epsilon = 0.0;
    std::uint64_t content_key = 0;
    std::uint64_t generation = 0;
  };
  /// Digests of every *ready* cached grid (building/failed slots are
  /// skipped), in cache order.
  [[nodiscard]] std::vector<GridDigest> cached_grid_digests() const;

 private:
  friend class JoinService;
  friend class detail::ServicePlanSource;
  friend struct detail::ResultFlight;

  /// detail::EstimateKey (sj/pipeline.hpp): (sample_fraction bits,
  /// skew bits, probe signature — 0 for Self).
  using EstimateMap =
      std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
               std::uint64_t>;
  using GridPtr = std::shared_ptr<const GridIndex>;
  using WorkloadsPtr = std::shared_ptr<const std::vector<std::uint64_t>>;
  using OrderPtr = std::shared_ptr<const std::vector<PointId>>;

  /// One cached grid (single-flight: `grid` may still be building).
  /// Slots are shared_ptr-held: an in-flight run pins its slot, so LRU
  /// eviction under the exclusive lock can never dangle a reader.
  struct GridSlot {
    std::uint64_t eps_bits = 0;
    std::shared_future<GridPtr> grid;  ///< guarded by SharedDataset::mu_
    /// Guards `strided_estimates` alone; per-slot so estimate traffic
    /// from pinned runs never touches the dataset-wide lock.
    std::mutex est_mu;
    EstimateMap strided_estimates;
    std::atomic<std::uint64_t> last_used{0};
  };

  /// One cached workload/order entry per (grid, pattern, probe
  /// signature). Self plans carry probe_sig 0 and index the gridded
  /// dataset; R×S plans carry detail::probe_signature of their request
  /// and index the probe dataset — the signature in the match key is
  /// what keeps the two from ever aliasing.
  struct PlanSlot {
    std::uint64_t grid_key = 0;
    CellPattern pattern = CellPattern::Full;
    std::uint64_t probe_sig = 0;
    /// Single-flight futures; !valid() until the first requester
    /// installs its promise. Guarded by SharedDataset::mu_.
    std::shared_future<WorkloadsPtr> workloads;
    std::shared_future<OrderPtr> order;
    std::mutex est_mu;  ///< guards queue_estimates alone
    EstimateMap queue_estimates;
    std::atomic<std::uint64_t> last_used{0};
  };

  // --- result-serving layer (docs/SERVICE.md) ---

  /// One immutable cached result. `results` is a full ResultSet copy
  /// of the producing run's output — stored pairs are already in
  /// canonical (lexicographically sorted) order, since
  /// execute_self_join canonicalizes every stored-pairs run — so
  /// serving a copy reproduces a cold run's pair ordering bit for bit.
  /// `stats` is the producing run's scalar summary with the per-batch /
  /// per-slot vectors cleared (they describe an execution, not an
  /// answer).
  struct ResultPayload {
    double epsilon = 0.0;
    ResultSet results;
    SelfJoinStats stats;
    std::size_t bytes = 0;  ///< accounted against the byte budget
  };
  using ResultPtr = std::shared_ptr<const ResultPayload>;

  /// One result-cache slot. Everything here is guarded by result_mu_;
  /// lookups copy out the payload pointer and serve outside the lock,
  /// so the critical sections stay tiny. Payloads are
  /// shared_ptr-pinned: eviction only unlinks the slot — a server
  /// still copying from the payload keeps it alive.
  struct ResultSlot {
    std::uint64_t eps_bits = 0;
    /// ResultKey::config_digest of the producing request: join mode,
    /// probe identity and KNN parameters. Compared on every exact
    /// lookup so a Self hit can never serve an R×S/KNN request (or
    /// vice versa) even at equal ε bits.
    std::uint64_t class_digest = 0;
    bool has_pairs = false;
    ResultPtr payload;
    std::uint64_t last_used = 0;
  };

  SharedDataset(const Dataset& ds, std::size_t max_grids,
                std::size_t max_plans)
      : ds_(&ds),
        generation_(ds.generation()),
        max_grids_(max_grids),
        max_plans_(max_plans),
        result_generation_(ds.generation()) {}

  const Dataset* ds_;
  mutable std::shared_mutex mu_;
  std::uint64_t generation_;  ///< guarded by mu_
  std::atomic<std::uint64_t> tick_{0};  ///< LRU clock
  std::size_t max_grids_;
  std::size_t max_plans_;
  std::vector<std::shared_ptr<GridSlot>> grids_;  ///< guarded by mu_
  std::vector<std::shared_ptr<PlanSlot>> plans_;  ///< guarded by mu_

  // Result cache + in-flight coalescing slots, all guarded by
  // result_mu_ as a unit: "serve from cache, else attach to a flight,
  // else become the primary" is a single critical section, so exactly
  // one worker can ever become the primary for a given result key.
  mutable std::mutex result_mu_;
  std::uint64_t result_generation_;  ///< guarded by result_mu_
  std::uint64_t result_tick_ = 0;    ///< LRU clock, guarded by result_mu_
  std::size_t result_bytes_ = 0;     ///< guarded by result_mu_
  std::vector<std::shared_ptr<ResultSlot>> results_;
  std::vector<std::shared_ptr<detail::ResultFlight>> result_flights_;
};

class JoinService {
 public:
  explicit JoinService(ServiceConfig cfg = {});
  /// Drains the admission queue (every outstanding ticket is answered)
  /// and joins the workers. Cancel tickets first for a fast shutdown.
  ~JoinService();
  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  /// Handle to one queued request: its eventual response plus the
  /// cooperative cancel token. Copyable; all copies share state.
  class Ticket {
   public:
    Ticket() = default;

    /// Blocks until the request reaches a terminal state. Valid once
    /// per ticket (the response's output is moved out).
    [[nodiscard]] JoinResponse get();

    /// Requests cooperative cancellation: a queued request is answered
    /// Cancelled without running; an in-flight one aborts at the next
    /// launch-abort poll or batch boundary. Idempotent; racing with
    /// completion is benign (the run may still finish Ok).
    void cancel() noexcept;

    /// True once a worker has started executing the request (used to
    /// drive genuinely mid-flight cancellations in tests).
    [[nodiscard]] bool started() const noexcept;

   private:
    friend class JoinService;
    std::shared_ptr<struct ServiceRequestState> state_;
  };

  /// Admits a dataset for shared serving: returns the cache shell all
  /// subsequent runs against `ds` should share. The dataset must
  /// outlive every run against the handle.
  [[nodiscard]] std::shared_ptr<SharedDataset> attach(const Dataset& ds);

  /// Runs one join synchronously on the calling thread against the
  /// shared caches. Identical contract (validation, OverflowError) and
  /// bit-identical output to a cold engine run; safe to call from any
  /// number of threads concurrently.
  [[nodiscard]] SelfJoinOutput run(SharedDataset& sd,
                                   const SelfJoinConfig& cfg);

  /// Enqueues one join for the worker pool. Never blocks: a full queue
  /// (or a stopping service) yields an immediately-ready Rejected
  /// ticket.
  [[nodiscard]] Ticket submit(std::shared_ptr<SharedDataset> sd,
                              JoinRequest req);

  /// One-shot convenience with the free self_join's exact semantics:
  /// an ephemeral SharedDataset per call (no plan caching across
  /// calls, no dataset lifetime entanglement), but arenas and host
  /// pools still come from the bounded depots.
  [[nodiscard]] SelfJoinOutput self_join(const Dataset& ds,
                                         const SelfJoinConfig& cfg);

  /// Reclaims a consumed output's allocations into an idle pooled
  /// arena (JoinEngine::recycle's analogue). Drops them when no arena
  /// is idle.
  void recycle(SelfJoinOutput&& out);

  // --- streaming delta subscriptions (docs/STREAMING.md) ---

  /// Identifies one standing subscription; valid until unsubscribe().
  using SubscriptionId = std::uint64_t;

  /// One poll()'s answer: the exact ordered-pair delta of the ε
  /// self-join between the subscriber's last-delivered snapshot and the
  /// current dataset. `delta.gained` is labeled with current point ids,
  /// `delta.lost` with the ids of the last-delivered snapshot (see
  /// PairDelta). `fallback` is true when the dataset's mutation log no
  /// longer covered the window and the service re-joined from scratch
  /// and diffed — the delta is exact either way.
  struct DeltaPoll {
    bool fallback = false;
    /// Dataset generation this poll advanced the subscription to.
    std::uint64_t generation = 0;
    PairDelta delta;
  };

  /// Opens a standing subscription on the ε self-join over `sd`: runs
  /// one full join to seed the retained snapshot (through the shared
  /// caches, so the work is reused by later requests) and returns the
  /// handle polls are issued against. Requires epsilon > 0; an empty
  /// dataset seeds an empty snapshot without running a join.
  [[nodiscard]] SubscriptionId subscribe(std::shared_ptr<SharedDataset> sd,
                                         double epsilon);
  /// Delivers the delta accumulated since the last poll (or since
  /// subscribe) and advances the subscription to the current dataset
  /// generation. Quiescent datasets answer an empty delta without any
  /// join work; churn within the mutation-log window is answered by
  /// re-joining only the churn's ε-neighborhood (JoinEngine::delta_join
  /// semantics). Polls are serialized per service; each poll runs on
  /// the calling thread.
  [[nodiscard]] DeltaPoll poll(SubscriptionId id);
  /// Closes a subscription; unknown ids are a no-op.
  void unsubscribe(SubscriptionId id);
  /// Live subscriptions (tests, sjtool top).
  [[nodiscard]] std::size_t subscription_count() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  // --- introspection (tests, sjtool top, docs/SERVICE.md) ---
  /// Queued-but-not-started requests.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Idle pooled scratch arenas (excludes checked-out leases).
  [[nodiscard]] std::size_t resident_arenas() const;
  /// Idle pooled host thread pools (excludes checked-out leases).
  [[nodiscard]] std::size_t resident_thread_pools() const;
  /// Point-in-time view: queue depth and per-priority occupancy,
  /// in-flight requests with ages, depot levels, attached-dataset
  /// cache population/bytes. Each section is internally consistent;
  /// the whole is advisory (the service keeps running underneath).
  [[nodiscard]] ServiceSnapshot snapshot() const;
  /// The effective flight recorder: cfg.obs.recorder when set, else
  /// the service-owned always-on one. Never null.
  [[nodiscard]] obs::FlightRecorder& recorder() const noexcept;

  /// The process-wide service backing the free self_join wrapper.
  /// Default-configured; workers spawn only if submit() is ever used.
  [[nodiscard]] static JoinService& shared();

 private:
  friend class detail::ServicePlanSource;
  friend struct detail::ResultFlight;
  struct QueueItem;
  using ResultPayload = SharedDataset::ResultPayload;
  using ResultPtr = SharedDataset::ResultPtr;

  /// Core run path shared by run()/submit()/self_join(): leases
  /// working memory, resolves the plan through the shared caches and
  /// executes. Throws as the engine does, plus CancelledError. `robs`
  /// carries the request attribution bundle for submit()ted requests
  /// (null for run()/self_join(), which are not requests).
  SelfJoinOutput execute(SharedDataset& sd, const SelfJoinConfig& cfg,
                         const std::atomic<bool>* cancel,
                         obs::RequestObs* robs);

  /// Brings a SharedDataset's artifact caches up to date with its
  /// dataset's generation: clone-and-repairs every ready cached grid
  /// (slots hold immutable shared GridIndex instances pinned by
  /// in-flight runs, so repair happens on a private copy that replaces
  /// the slot's future) and patches dependent workload/D' plans for the
  /// affected cells only. Unrepairable grids are rebuilt from scratch
  /// and their plans dropped. No-op when already current. Called by
  /// ServicePlanSource::sync and the result-cache repair sweep.
  void sync_shared(SharedDataset& sd);

  // --- result-serving layer (docs/SERVICE.md) ---
  /// Gate outcome for a dequeued request, decided in one critical
  /// section of the dataset's result lock.
  enum class ResultGate {
    Execute,   ///< run the pipeline (item may be a coalescing primary)
    Served,    ///< `r` fully answered from the result cache
    Attached,  ///< item moved into an in-flight duplicate's flight
  };
  /// Runs the gate for a dequeued request. Served: `r` is complete
  /// (status/output/breakdown/service_seconds). Attached: `item` was
  /// moved into the flight's follower list — the primary answers it at
  /// publish time; the worker must not respond. Execute: run the
  /// pipeline; when `*flight` was set, this request is the coalescing
  /// primary and must publish_result / abandon_flight when done.
  ResultGate result_gate(QueueItem& item, JoinResponse& r,
                         std::uint64_t root_id,
                         std::shared_ptr<detail::ResultFlight>* flight);
  /// Publishes a primary's Ok output: inserts the cache entry (byte
  /// budget + LRU eviction), detaches the flight, and answers every
  /// follower with a copy of the shared result.
  void publish_result(const QueueItem& item, const SelfJoinOutput& out,
                      const std::shared_ptr<detail::ResultFlight>& flight);
  /// Detaches a flight whose primary did not finish Ok and re-enqueues
  /// its followers (each executes or is served on a later dequeue).
  void abandon_flight(const std::shared_ptr<detail::ResultFlight>& flight);
  /// Inserts a completed result under sd.result_mu_ (held by the
  /// caller) and evicts LRU entries past the byte budget.
  /// `class_digest` is the ResultKey::config_digest of the producing
  /// request (mode / probe identity / KNN knobs).
  void insert_result_locked(SharedDataset& sd, std::uint64_t eps_bits,
                            std::uint64_t class_digest,
                            const ResultPtr& payload);
  /// The subsumption cost model (ServiceConfig::subsume_cost_ratio).
  bool subsume_worthwhile(SharedDataset& sd, const SelfJoinConfig& cfg,
                          const ResultPayload& entry);
  /// Advances the result cache across a dataset generation change,
  /// keeping every cached entry the churn provably did not affect:
  /// when the mutation window contains only moves (ids stable), a
  /// pairs-bearing ε-entry survives iff no touched point appears in a
  /// non-self cached pair (its old neighborhood was empty) and none has
  /// an ε-neighbor at its new position (checked against a repaired
  /// current-generation grid). Anything unprovable — count-only
  /// entries, inserts/erases in the window, no log window, no ready
  /// grid — is dropped, which is the old wholesale behaviour. Counts
  /// svc.result_cache.repair_kept per survivor.
  void repair_result_cache(SharedDataset& sd, std::uint64_t to_generation);
  /// Folds a result-cache byte delta into the service-wide total and
  /// mirrors it to the svc.result_cache.bytes gauge. Called inside the
  /// owning dataset's result_mu_ critical section, so the gauge can
  /// never be observed ahead of (or behind) the accounting it reports.
  void adjust_result_bytes(long long delta);
  /// Records the root "request" span and the failure auto-dump, then
  /// responds — the single exit path for every dequeued request.
  void finish_request(const QueueItem& item, std::uint64_t root_id,
                      JoinResponse&& r);

  /// Folds a fleet run's device-level stats into the service totals
  /// (snapshot fleet section) and publishes the svc.fleet.* metric
  /// family. Called by execute() whenever the run used the fleet path.
  void record_fleet(const simt::FleetStats& fs);

  void spawn_workers_locked();
  void worker_loop();
  void respond(ServiceRequestState& st, JoinResponse&& r);
  void count(const char* name, std::uint64_t n = 1);
  void set_queue_depth_locked(std::size_t depth);
  /// Dumps the request's recorder breadcrumbs to cfg_.recorder_dump
  /// (std::cerr when null), serialized by a dump mutex.
  void dump_recorder(std::uint64_t request_id, const char* why);

  // Depot checkout/return (bounded; see ServiceConfig).
  std::unique_ptr<detail::ScratchArena> checkout_arena();
  void return_arena(std::unique_ptr<detail::ScratchArena> arena);
  std::unique_ptr<ThreadPool> checkout_pool(int num_threads);
  void return_pool(int num_threads, std::unique_ptr<ThreadPool> pool);

  ServiceConfig cfg_;
  /// Backs recorder() when cfg_.obs.recorder is null (always-on).
  std::unique_ptr<obs::FlightRecorder> own_recorder_;
  std::atomic<std::uint64_t> next_request_id_{0};
  mutable std::mutex dump_mu_;  ///< serializes recorder dumps
  /// Service-wide result-cache bytes (sum over attached datasets),
  /// mirrored to the svc.result_cache.bytes gauge by
  /// adjust_result_bytes. snapshot() recomputes exact totals from the
  /// live datasets instead of reading this.
  std::atomic<long long> result_bytes_total_{0};

  // --- admission queue ---
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<QueueItem> queue_;  ///< heap (priority desc, seq asc)
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // --- fleet serving totals (snapshot + svc.fleet.* metrics) ---
  mutable std::mutex fleet_mu_;
  std::uint64_t fleet_runs_ = 0;
  std::uint64_t fleet_rebalances_ = 0;
  double fleet_last_cov_ = 0.0;
  double fleet_last_imbalance_ = 0.0;
  std::vector<ServiceSnapshot::FleetDeviceRow> fleet_devices_;

  // --- in-flight request tracking (snapshot) ---
  struct InFlight {
    int priority = 0;
    Timer started;
  };
  mutable std::mutex inflight_mu_;
  std::map<std::uint64_t, InFlight> inflight_;

  // --- attached datasets (snapshot; pruned of expired entries) ---
  mutable std::mutex attach_mu_;
  mutable std::vector<std::weak_ptr<SharedDataset>> attached_;

  // --- streaming delta subscriptions (docs/STREAMING.md) ---
  /// One standing subscription: the retained canonical ordered-pair
  /// set of the ε self-join at `generation`, advanced by sorted set
  /// ops (retained \ lost ∪ gained) on every non-empty poll.
  struct Subscription {
    std::shared_ptr<SharedDataset> sd;
    double epsilon = 0.0;
    std::uint64_t generation = 0;
    std::vector<ResultPair> retained;
  };
  /// Incremental path: delta from the mutation log + a shared-cache
  /// grid. nullopt when the window is unavailable (caller falls back).
  std::optional<PairDelta> delta_for(Subscription& sub);
  /// Fallback path: full re-join diffed against the retained set.
  PairDelta full_diff(Subscription& sub);
  mutable std::mutex sub_mu_;  ///< guards subs_ / next_sub_id_; polls
                               ///< hold it for their full duration
  std::map<SubscriptionId, Subscription> subs_;
  SubscriptionId next_sub_id_ = 0;

  // --- pooled working memory ---
  mutable std::mutex arena_mu_;
  std::vector<std::unique_ptr<detail::ScratchArena>> idle_arenas_;
  mutable std::mutex pool_mu_;
  std::map<int, std::vector<std::unique_ptr<ThreadPool>>> idle_pools_;
  std::size_t idle_pool_count_ = 0;
};

}  // namespace gsj
