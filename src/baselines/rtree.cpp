#include "baselines/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace gsj {

RTree::RTree(const Dataset& ds, std::size_t node_capacity)
    : ds_(&ds), capacity_(node_capacity) {
  GSJ_CHECK_MSG(!ds.empty(), "cannot index an empty dataset");
  GSJ_CHECK(node_capacity >= 2);
  GSJ_CHECK_MSG(ds.dims() <= kMaxBoxDims, "dims > " << kMaxBoxDims);

  const int dims = ds.dims();
  const std::size_t n = ds.size();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), PointId{0});

  // --- STR bulk load, bottom level ---
  // Recursively tile: sort by dim 0 into slabs of equal leaf count,
  // within each slab sort by dim 1, and so on; the innermost runs of
  // `capacity_` points become leaves.
  const std::size_t nleaves = (n + capacity_ - 1) / capacity_;
  {
    // Points per tile along each dimension: nleaves^(1/dims) slabs.
    std::function<void(std::size_t, std::size_t, int)> tile =
        [&](std::size_t begin, std::size_t end, int dim) {
          if (dim >= dims - 1 || end - begin <= capacity_) {
            std::sort(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                      order_.begin() + static_cast<std::ptrdiff_t>(end),
                      [&](PointId a, PointId b) {
                        return ds.coord(a, dim) < ds.coord(b, dim);
                      });
            return;
          }
          std::sort(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                    order_.begin() + static_cast<std::ptrdiff_t>(end),
                    [&](PointId a, PointId b) {
                      return ds.coord(a, dim) < ds.coord(b, dim);
                    });
          // Slab size: leaves in this range split into ~S slabs, where
          // S = ceil(L^(1/remaining_dims)) with L leaves in range.
          const auto leaves_here =
              static_cast<double>((end - begin + capacity_ - 1) / capacity_);
          const double frac = 1.0 / static_cast<double>(dims - dim);
          const auto slabs = static_cast<std::size_t>(
              std::max(1.0, std::ceil(std::pow(leaves_here, frac))));
          const std::size_t leaves_per_slab =
              (static_cast<std::size_t>(leaves_here) + slabs - 1) / slabs;
          const std::size_t pts_per_slab = leaves_per_slab * capacity_;
          for (std::size_t b = begin; b < end; b += pts_per_slab) {
            tile(b, std::min(b + pts_per_slab, end), dim + 1);
          }
        };
    tile(0, n, 0);
  }

  // Leaf nodes over consecutive runs of `capacity_` points.
  std::vector<std::int32_t> level;
  level.reserve(nleaves);
  for (std::size_t begin = 0; begin < n; begin += capacity_) {
    const std::size_t end = std::min(begin + capacity_, n);
    Node leaf;
    leaf.begin = static_cast<std::uint32_t>(begin);
    leaf.end = static_cast<std::uint32_t>(end);
    for (int d = 0; d < dims; ++d) {
      double lo = ds.coord(order_[begin], d), hi = lo;
      for (std::size_t i = begin + 1; i < end; ++i) {
        lo = std::min(lo, ds.coord(order_[i], d));
        hi = std::max(hi, ds.coord(order_[i], d));
      }
      leaf.box.lo[static_cast<std::size_t>(d)] = lo;
      leaf.box.hi[static_cast<std::size_t>(d)] = hi;
    }
    // Ascending ids inside each leaf keep query output merge cheap.
    std::sort(order_.begin() + static_cast<std::ptrdiff_t>(begin),
              order_.begin() + static_cast<std::ptrdiff_t>(end));
    level.push_back(static_cast<std::int32_t>(nodes_.size()));
    nodes_.push_back(leaf);
  }
  height_ = 1;

  // --- pack upper levels until a single root remains ---
  while (level.size() > 1) {
    std::vector<std::int32_t> next;
    next.reserve(level.size() / capacity_ + 1);
    for (std::size_t begin = 0; begin < level.size(); begin += capacity_) {
      const std::size_t end = std::min(begin + capacity_, level.size());
      // Children of one parent must be contiguous in nodes_: STR levels
      // are appended in order, so consecutive level entries are
      // consecutive node indices.
      Node parent;
      parent.first_child = level[begin];
      parent.child_count = static_cast<std::int32_t>(end - begin);
      for (int d = 0; d < dims; ++d) {
        double lo = nodes_[level[begin]].box.lo[static_cast<std::size_t>(d)];
        double hi = nodes_[level[begin]].box.hi[static_cast<std::size_t>(d)];
        for (std::size_t c = begin + 1; c < end; ++c) {
          lo = std::min(lo, nodes_[level[c]].box.lo[static_cast<std::size_t>(d)]);
          hi = std::max(hi, nodes_[level[c]].box.hi[static_cast<std::size_t>(d)]);
        }
        parent.box.lo[static_cast<std::size_t>(d)] = lo;
        parent.box.hi[static_cast<std::size_t>(d)] = hi;
      }
      next.push_back(static_cast<std::int32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
}

bool RTree::box_within_eps(const Box& box, std::span<const double> center,
                           double eps) const noexcept {
  // Minimum distance from center to box must be <= eps; compare squared.
  double s = 0.0;
  const double eps2 = eps * eps;
  for (int d = 0; d < ds_->dims(); ++d) {
    const double c = center[static_cast<std::size_t>(d)];
    double diff = 0.0;
    if (c < box.lo[static_cast<std::size_t>(d)]) {
      diff = box.lo[static_cast<std::size_t>(d)] - c;
    } else if (c > box.hi[static_cast<std::size_t>(d)]) {
      diff = c - box.hi[static_cast<std::size_t>(d)];
    }
    s += diff * diff;
    if (s > eps2) return false;
  }
  return true;
}

void RTree::query(std::int32_t node, std::span<const double> center,
                  double eps, double eps2, std::vector<PointId>& out) const {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.is_leaf()) {
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
      const PointId c = order_[i];
      double s = 0.0;
      for (int d = 0; d < ds_->dims(); ++d) {
        const double diff =
            ds_->coord(c, d) - center[static_cast<std::size_t>(d)];
        s += diff * diff;
        if (s > eps2) break;
      }
      dist_calcs_.fetch_add(1, std::memory_order_relaxed);
      if (s <= eps2) out.push_back(c);
    }
    return;
  }
  for (std::int32_t c = 0; c < nd.child_count; ++c) {
    const std::int32_t child = nd.first_child + c;
    if (box_within_eps(nodes_[static_cast<std::size_t>(child)].box, center,
                       eps)) {
      query(child, center, eps, eps2, out);
    }
  }
}

std::vector<PointId> RTree::range_query(PointId q, double epsilon) const {
  GSJ_CHECK(q < ds_->size());
  std::vector<double> center(static_cast<std::size_t>(ds_->dims()));
  for (int d = 0; d < ds_->dims(); ++d) {
    center[static_cast<std::size_t>(d)] = ds_->coord(q, d);
  }
  return range_query(center, epsilon);
}

std::vector<PointId> RTree::range_query(std::span<const double> center,
                                        double epsilon) const {
  GSJ_CHECK(static_cast<int>(center.size()) == ds_->dims());
  GSJ_CHECK(epsilon > 0.0);
  std::vector<PointId> out;
  query(root_, center, epsilon, epsilon * epsilon, out);
  std::sort(out.begin(), out.end());
  return out;
}

double RTree::total_margin() const {
  double margin = 0.0;
  for (const auto& nd : nodes_) {
    for (int d = 0; d < ds_->dims(); ++d) {
      margin += nd.box.hi[static_cast<std::size_t>(d)] -
                nd.box.lo[static_cast<std::size_t>(d)];
    }
  }
  return margin;
}

RtJoinOutput rtree_self_join(const Dataset& ds, double epsilon,
                             std::size_t nthreads, bool store_pairs,
                             std::size_t node_capacity) {
  GSJ_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  RtJoinOutput out;
  out.results = ResultSet(store_pairs);

  Timer build_timer;
  const RTree tree(ds, node_capacity);
  out.stats.build_seconds = build_timer.seconds();

  Timer join_timer;
  ThreadPool pool(nthreads);
  struct Local {
    std::vector<ResultPair> pairs;
    std::uint64_t count = 0;
  };
  const std::size_t nchunks = std::max<std::size_t>(1, pool.size() * 8);
  std::vector<Local> locals(nchunks);
  const std::size_t chunk = (ds.size() + nchunks - 1) / nchunks;
  pool.parallel_for(nchunks, [&](std::size_t t) {
    Local& loc = locals[t];
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(begin + chunk, ds.size());
    for (std::size_t q = begin; q < end; ++q) {
      const std::vector<PointId> nb =
          tree.range_query(static_cast<PointId>(q), epsilon);
      loc.count += nb.size();
      if (store_pairs) {
        for (const PointId c : nb) {
          loc.pairs.emplace_back(static_cast<PointId>(q), c);
        }
      }
    }
  });
  for (auto& loc : locals) {
    if (store_pairs) {
      for (const auto& p : loc.pairs) out.results.emit(p.first, p.second);
    } else {
      out.results.add_count(loc.count);
    }
  }
  out.stats.join_seconds = join_timer.seconds();
  out.stats.distance_calcs = tree.distance_calcs();
  out.stats.result_pairs = out.results.count();
  if (store_pairs) out.results.canonicalize();
  return out;
}

}  // namespace gsj
