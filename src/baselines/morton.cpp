#include "baselines/morton.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace gsj {

std::uint64_t morton_encode(std::span<const std::uint32_t> cells, int bits) {
  const int dims = static_cast<int>(cells.size());
  GSJ_CHECK(dims >= 1 && bits >= 1 && dims * bits <= 64);
  std::uint64_t code = 0;
  for (int b = 0; b < bits; ++b) {
    for (int d = 0; d < dims; ++d) {
      const std::uint64_t bit = (cells[static_cast<std::size_t>(d)] >> b) & 1u;
      code |= bit << (b * dims + d);
    }
  }
  return code;
}

std::vector<std::uint32_t> morton_decode(std::uint64_t code, int dims,
                                         int bits) {
  GSJ_CHECK(dims >= 1 && bits >= 1 && dims * bits <= 64);
  std::vector<std::uint32_t> cells(static_cast<std::size_t>(dims), 0);
  for (int b = 0; b < bits; ++b) {
    for (int d = 0; d < dims; ++d) {
      const std::uint64_t bit = (code >> (b * dims + d)) & 1u;
      cells[static_cast<std::size_t>(d)] |=
          static_cast<std::uint32_t>(bit << b);
    }
  }
  return cells;
}

namespace {

struct CellEntry {
  std::uint64_t code;
  std::uint32_t begin;
  std::uint32_t end;
};

}  // namespace

MortonJoinOutput morton_self_join(const Dataset& ds, double epsilon,
                                  std::size_t nthreads, bool store_pairs) {
  GSJ_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  GSJ_CHECK_MSG(!ds.empty(), "empty dataset");

  MortonJoinOutput out;
  out.results = ResultSet(store_pairs);
  const int dims = ds.dims();
  const std::size_t n = ds.size();

  Timer sort_timer;
  // Epsilon cells per dimension; bits sized to the largest coordinate.
  const auto lo = ds.min_corner();
  const auto hi = ds.max_corner();
  std::uint32_t max_cell = 0;
  std::vector<std::vector<std::uint32_t>> cell_of(
      static_cast<std::size_t>(dims), std::vector<std::uint32_t>(n));
  for (int d = 0; d < dims; ++d) {
    const double base = lo[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::uint32_t>(
          std::floor((ds.coord(i, d) - base) / epsilon));
      cell_of[static_cast<std::size_t>(d)][i] = c;
      max_cell = std::max(max_cell, c);
    }
    (void)hi;
  }
  int bits = 1;
  while ((std::uint64_t{1} << bits) <= static_cast<std::uint64_t>(max_cell) + 1) {
    ++bits;
  }
  GSJ_CHECK_MSG(dims * bits <= 64,
                "epsilon too small for the Morton code width");

  // Morton code per point, then sort points along the curve.
  std::vector<std::uint64_t> codes(n);
  std::vector<std::uint32_t> tmp(static_cast<std::size_t>(dims));
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dims; ++d) {
      tmp[static_cast<std::size_t>(d)] = cell_of[static_cast<std::size_t>(d)][i];
    }
    codes[i] = morton_encode(tmp, bits);
  }
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), PointId{0});
  std::sort(order.begin(), order.end(), [&codes](PointId a, PointId b) {
    return codes[a] != codes[b] ? codes[a] < codes[b] : a < b;
  });

  // Non-empty cell directory, sorted by code (binary searchable).
  std::vector<CellEntry> cells;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::uint64_t code = codes[order[pos]];
    if (cells.empty() || cells.back().code != code) {
      cells.push_back({code, static_cast<std::uint32_t>(pos),
                       static_cast<std::uint32_t>(pos)});
    }
    cells.back().end = static_cast<std::uint32_t>(pos + 1);
  }
  out.stats.nonempty_cells = cells.size();
  out.stats.sort_seconds = sort_timer.seconds();

  Timer join_timer;
  const double eps2 = epsilon * epsilon;
  ThreadPool pool(nthreads);
  struct Local {
    std::vector<ResultPair> pairs;
    std::uint64_t count = 0;
    std::uint64_t dist_calcs = 0;
  };
  const std::size_t nchunks = std::max<std::size_t>(1, pool.size() * 8);
  std::vector<Local> locals(nchunks);
  const std::size_t chunk = (cells.size() + nchunks - 1) / nchunks;

  pool.parallel_for(nchunks, [&](std::size_t t) {
    Local& loc = locals[t];
    std::vector<std::uint32_t> oc(static_cast<std::size_t>(dims));
    std::vector<std::uint32_t> nc(static_cast<std::size_t>(dims));
    std::vector<std::int32_t> off(static_cast<std::size_t>(dims), -1);
    const std::size_t begin_cell = t * chunk;
    const std::size_t end_cell = std::min(begin_cell + chunk, cells.size());
    for (std::size_t ci = begin_cell; ci < end_cell; ++ci) {
      const auto ocv = morton_decode(cells[ci].code, dims, bits);
      std::copy(ocv.begin(), ocv.end(), oc.begin());
      // Odometer over the 3^dims adjacent cells.
      std::fill(off.begin(), off.end(), -1);
      for (;;) {
        bool inb = true;
        for (int d = 0; d < dims; ++d) {
          const std::int64_t v = static_cast<std::int64_t>(oc[static_cast<std::size_t>(d)]) +
                                 off[static_cast<std::size_t>(d)];
          if (v < 0 || v > max_cell) {
            inb = false;
            break;
          }
          nc[static_cast<std::size_t>(d)] = static_cast<std::uint32_t>(v);
        }
        if (inb) {
          const std::uint64_t ncode = morton_encode(nc, bits);
          const auto it = std::lower_bound(
              cells.begin(), cells.end(), ncode,
              [](const CellEntry& e, std::uint64_t c) { return e.code < c; });
          if (it != cells.end() && it->code == ncode) {
            for (std::uint32_t i = cells[ci].begin; i < cells[ci].end; ++i) {
              const PointId q = order[i];
              for (std::uint32_t j = it->begin; j < it->end; ++j) {
                const PointId c = order[j];
                ++loc.dist_calcs;
                if (ds.dist2(q, c) <= eps2) {
                  ++loc.count;
                  if (store_pairs) loc.pairs.emplace_back(q, c);
                }
              }
            }
          }
        }
        int d = dims - 1;
        while (d >= 0) {
          auto& o = off[static_cast<std::size_t>(d)];
          if (++o <= 1) break;
          o = -1;
          --d;
        }
        if (d < 0) break;
      }
    }
  });

  for (auto& loc : locals) {
    out.stats.distance_calcs += loc.dist_calcs;
    if (store_pairs) {
      for (const auto& p : loc.pairs) out.results.emit(p.first, p.second);
    } else {
      out.results.add_count(loc.count);
    }
  }
  out.stats.join_seconds = join_timer.seconds();
  out.stats.result_pairs = out.results.count();
  if (store_pairs) out.results.canonicalize();
  return out;
}

}  // namespace gsj
