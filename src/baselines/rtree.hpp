// R-tree index and self-join — the other tree baseline of the paper's
// related work (§II-B1, [9]-[11]): bounding-box hierarchy over the
// points. Built with Sort-Tile-Recursive (STR) bulk loading, which
// yields well-packed leaves without the insertion-order pathologies of
// dynamic R-trees. Range queries descend every child whose box
// intersects the epsilon ball's bounding box (with an exact distance
// refine at the leaves).
//
// As the paper notes, bounding boxes overlap increasingly with
// dimensionality, so pruning degrades in higher dimensions — visible in
// this implementation's distance_calcs diagnostic.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "sj/result_set.hpp"

namespace gsj {

class RTree {
 public:
  /// STR bulk load over `ds` with the given leaf/fanout capacity. The
  /// dataset must outlive the tree.
  explicit RTree(const Dataset& ds, std::size_t node_capacity = 16);

  [[nodiscard]] const Dataset& dataset() const noexcept { return *ds_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

  /// All point ids within `epsilon` of point `q` (q included), ascending.
  [[nodiscard]] std::vector<PointId> range_query(PointId q,
                                                 double epsilon) const;

  /// All point ids within `epsilon` of an arbitrary center, ascending.
  [[nodiscard]] std::vector<PointId> range_query(std::span<const double> center,
                                                 double epsilon) const;

  /// Distance evaluations since construction (pruning diagnostic).
  [[nodiscard]] std::uint64_t distance_calcs() const noexcept {
    return dist_calcs_.load(std::memory_order_relaxed);
  }

  /// Sum over all nodes of their bounding-box margin (diagnostic for
  /// packing quality, cf. the R*-tree's optimization target).
  [[nodiscard]] double total_margin() const;

 private:
  static constexpr int kMaxBoxDims = 8;

  struct Box {
    std::array<double, kMaxBoxDims> lo{};
    std::array<double, kMaxBoxDims> hi{};
  };

  struct Node {
    Box box;
    std::int32_t first_child = -1;  ///< nodes_ index; -1 for leaves
    std::int32_t child_count = 0;
    std::uint32_t begin = 0;  ///< leaves: range into order_
    std::uint32_t end = 0;

    [[nodiscard]] bool is_leaf() const noexcept { return first_child < 0; }
  };

  void query(std::int32_t node, std::span<const double> center, double eps,
             double eps2, std::vector<PointId>& out) const;
  [[nodiscard]] bool box_within_eps(const Box& box,
                                    std::span<const double> center,
                                    double eps) const noexcept;

  const Dataset* ds_;
  std::size_t capacity_;
  std::size_t height_ = 0;
  std::int32_t root_ = -1;
  std::vector<Node> nodes_;
  std::vector<PointId> order_;
  mutable std::atomic<std::uint64_t> dist_calcs_{0};
};

struct RtJoinStats {
  double build_seconds = 0.0;
  double join_seconds = 0.0;
  std::uint64_t distance_calcs = 0;
  std::uint64_t result_pairs = 0;
};

struct RtJoinOutput {
  ResultSet results;
  RtJoinStats stats;

  RtJoinOutput() : results(false) {}
};

/// Parallel self-join via per-point range queries on the R-tree.
[[nodiscard]] RtJoinOutput rtree_self_join(const Dataset& ds, double epsilon,
                                           std::size_t nthreads = 0,
                                           bool store_pairs = false,
                                           std::size_t node_capacity = 16);

}  // namespace gsj
