// Morton-order (Z-curve) self-join — the space-filling-curve family of
// approaches from the paper's related work (§II-B2, the LSS algorithm
// [24] turns the similarity join into sort-and-search along a curve).
// LSS computes an approximate result; this implementation keeps the
// curve's sort-and-search structure but remains EXACT by searching, for
// each query point, the 3^n epsilon-cells around it in a Morton-sorted
// cell directory (a non-materialized grid keyed by Morton code instead
// of row-major linear id).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "sj/result_set.hpp"

namespace gsj {

/// Interleaves the low `bits` bits of each of `dims` coordinates into a
/// Morton code (dimension 0 contributes the least-significant bit of
/// each group). dims * bits must be <= 64.
[[nodiscard]] std::uint64_t morton_encode(std::span<const std::uint32_t> cells,
                                          int bits);

/// Inverse of morton_encode.
[[nodiscard]] std::vector<std::uint32_t> morton_decode(std::uint64_t code,
                                                       int dims, int bits);

struct MortonJoinStats {
  double sort_seconds = 0.0;
  double join_seconds = 0.0;
  std::uint64_t distance_calcs = 0;
  std::uint64_t result_pairs = 0;
  std::size_t nonempty_cells = 0;
};

struct MortonJoinOutput {
  ResultSet results;
  MortonJoinStats stats;

  MortonJoinOutput() : results(false) {}
};

/// Exact epsilon self-join over a Morton-sorted epsilon-cell directory.
/// Same ordered-pair semantics as the other joins in this library.
[[nodiscard]] MortonJoinOutput morton_self_join(const Dataset& ds,
                                                double epsilon,
                                                std::size_t nthreads = 0,
                                                bool store_pairs = false);

}  // namespace gsj
