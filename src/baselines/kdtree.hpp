// k-d tree index and self-join — the classic tree baseline the paper's
// related work discusses (§II-B1, [8]): a binary tree over k-dimensional
// points where each node splits space on one dimension. Trees prune
// well on the CPU but, as the paper notes, their branchy recursive
// traversal is a poor fit for the GPU — this implementation is the CPU
// comparator used to put the grid-based approaches in context.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "sj/result_set.hpp"

namespace gsj {

class KdTree {
 public:
  /// Builds a balanced tree (median splits, cycling dimensions) over
  /// `ds`. The dataset must outlive the tree.
  explicit KdTree(const Dataset& ds, std::size_t leaf_size = 16);

  [[nodiscard]] const Dataset& dataset() const noexcept { return *ds_; }
  [[nodiscard]] std::size_t size() const noexcept { return ds_->size(); }
  [[nodiscard]] std::size_t leaf_size() const noexcept { return leaf_size_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Maximum root-to-leaf depth (diagnostic; balanced builds give
  /// O(log n)).
  [[nodiscard]] std::size_t depth() const;

  /// All point ids within `epsilon` of point `q` (q included), ascending.
  [[nodiscard]] std::vector<PointId> range_query(PointId q,
                                                 double epsilon) const;

  /// All point ids within `epsilon` of an arbitrary center, ascending.
  [[nodiscard]] std::vector<PointId> range_query(std::span<const double> center,
                                                 double epsilon) const;

  /// Number of distance evaluations performed since construction
  /// (diagnostic for pruning effectiveness; not thread-safe).
  [[nodiscard]] std::uint64_t distance_calcs() const noexcept {
    return dist_calcs_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    // Internal nodes: split dimension/value and children. Leaves:
    // children == -1 and [begin, end) into order_.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t split_dim = -1;
    double split_value = 0.0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  std::int32_t build(std::uint32_t begin, std::uint32_t end, int depth);
  void query(std::int32_t node, std::span<const double> center, double eps,
             double eps2, std::vector<PointId>& out) const;
  [[nodiscard]] std::size_t depth_of(std::int32_t node) const;

  const Dataset* ds_;
  std::size_t leaf_size_;
  std::vector<Node> nodes_;
  std::vector<PointId> order_;
  mutable std::atomic<std::uint64_t> dist_calcs_{0};
};

struct KdJoinStats {
  double build_seconds = 0.0;
  double join_seconds = 0.0;
  std::uint64_t distance_calcs = 0;
  std::uint64_t result_pairs = 0;
};

struct KdJoinOutput {
  ResultSet results;
  KdJoinStats stats;

  KdJoinOutput() : results(false) {}
};

/// Parallel self-join via per-point range queries on the k-d tree.
/// Same ordered-pair semantics as the other joins.
[[nodiscard]] KdJoinOutput kdtree_self_join(const Dataset& ds, double epsilon,
                                            std::size_t nthreads = 0,
                                            bool store_pairs = false,
                                            std::size_t leaf_size = 16);

}  // namespace gsj
