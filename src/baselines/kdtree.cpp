#include "baselines/kdtree.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace gsj {

KdTree::KdTree(const Dataset& ds, std::size_t leaf_size)
    : ds_(&ds), leaf_size_(leaf_size) {
  GSJ_CHECK_MSG(!ds.empty(), "cannot index an empty dataset");
  GSJ_CHECK(leaf_size >= 1);
  order_.resize(ds.size());
  std::iota(order_.begin(), order_.end(), PointId{0});
  nodes_.reserve(2 * ds.size() / leaf_size + 2);
  (void)build(0, static_cast<std::uint32_t>(ds.size()), 0);
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end, int depth) {
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= leaf_size_) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    // Sorted leaves make range-query output merging cheap.
    std::sort(order_.begin() + begin, order_.begin() + end);
    return id;
  }
  const int dim = depth % ds_->dims();
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](PointId a, PointId b) {
                     return ds_->coord(a, dim) < ds_->coord(b, dim);
                   });
  const double split = ds_->coord(order_[mid], dim);
  // Children are built after this node; store indices afterwards (the
  // vector may reallocate during recursion, so never hold a reference).
  const std::int32_t left = build(begin, mid, depth + 1);
  const std::int32_t right = build(mid, end, depth + 1);
  nodes_[id].left = left;
  nodes_[id].right = right;
  nodes_[id].split_dim = dim;
  nodes_[id].split_value = split;
  return id;
}

std::size_t KdTree::depth() const { return depth_of(0); }

std::size_t KdTree::depth_of(std::int32_t node) const {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.is_leaf()) return 1;
  return 1 + std::max(depth_of(nd.left), depth_of(nd.right));
}

void KdTree::query(std::int32_t node, std::span<const double> center,
                   double eps, double eps2, std::vector<PointId>& out) const {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.is_leaf()) {
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
      const PointId c = order_[i];
      double s = 0.0;
      for (int d = 0; d < ds_->dims(); ++d) {
        const double diff =
            ds_->coord(c, d) - center[static_cast<std::size_t>(d)];
        s += diff * diff;
        if (s > eps2) break;
      }
      dist_calcs_.fetch_add(1, std::memory_order_relaxed);
      if (s <= eps2) out.push_back(c);
    }
    return;
  }
  const double delta =
      center[static_cast<std::size_t>(nd.split_dim)] - nd.split_value;
  // Descend the near side first, the far side only if the splitting
  // plane is within eps of the center (points beyond the plane are then
  // separated by more than eps in this dimension alone).
  if (delta < 0.0) {
    query(nd.left, center, eps, eps2, out);
    if (-delta <= eps) query(nd.right, center, eps, eps2, out);
  } else {
    query(nd.right, center, eps, eps2, out);
    if (delta <= eps) query(nd.left, center, eps, eps2, out);
  }
}

std::vector<PointId> KdTree::range_query(PointId q, double epsilon) const {
  GSJ_CHECK(q < ds_->size());
  std::vector<double> center(static_cast<std::size_t>(ds_->dims()));
  for (int d = 0; d < ds_->dims(); ++d) {
    center[static_cast<std::size_t>(d)] = ds_->coord(q, d);
  }
  return range_query(center, epsilon);
}

std::vector<PointId> KdTree::range_query(std::span<const double> center,
                                         double epsilon) const {
  GSJ_CHECK(static_cast<int>(center.size()) == ds_->dims());
  GSJ_CHECK(epsilon > 0.0);
  std::vector<PointId> out;
  query(0, center, epsilon, epsilon * epsilon, out);
  std::sort(out.begin(), out.end());
  return out;
}

KdJoinOutput kdtree_self_join(const Dataset& ds, double epsilon,
                              std::size_t nthreads, bool store_pairs,
                              std::size_t leaf_size) {
  GSJ_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  KdJoinOutput out;
  out.results = ResultSet(store_pairs);

  Timer build_timer;
  const KdTree tree(ds, leaf_size);
  out.stats.build_seconds = build_timer.seconds();

  Timer join_timer;
  ThreadPool pool(nthreads);
  struct Local {
    std::vector<ResultPair> pairs;
    std::uint64_t count = 0;
  };
  const std::size_t nchunks = std::max<std::size_t>(1, pool.size() * 8);
  std::vector<Local> locals(nchunks);
  const std::size_t chunk = (ds.size() + nchunks - 1) / nchunks;
  pool.parallel_for(nchunks, [&](std::size_t t) {
    Local& loc = locals[t];
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(begin + chunk, ds.size());
    for (std::size_t q = begin; q < end; ++q) {
      const std::vector<PointId> nb =
          tree.range_query(static_cast<PointId>(q), epsilon);
      loc.count += nb.size();
      if (store_pairs) {
        for (const PointId c : nb) {
          loc.pairs.emplace_back(static_cast<PointId>(q), c);
        }
      }
    }
  });
  for (auto& loc : locals) {
    if (store_pairs) {
      for (const auto& p : loc.pairs) out.results.emit(p.first, p.second);
    } else {
      out.results.add_count(loc.count);
    }
  }
  out.stats.join_seconds = join_timer.seconds();
  out.stats.distance_calcs = tree.distance_calcs();
  out.stats.result_pairs = out.results.count();
  if (store_pairs) out.results.canonicalize();
  return out;
}

}  // namespace gsj
