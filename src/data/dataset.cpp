#include "data/dataset.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace gsj {

Dataset::Dataset(int dims) : dims_(dims), coords_(static_cast<std::size_t>(dims)) {
  GSJ_CHECK_MSG(dims >= 1 && dims <= 16, "dims=" << dims);
}

Dataset::Dataset(int dims, std::size_t n) : Dataset(dims) {
  n_ = n;
  for (auto& c : coords_) c.assign(n, 0.0);
}

void Dataset::push_back(std::span<const double> p) {
  GSJ_CHECK(static_cast<int>(p.size()) == dims_);
  for (int d = 0; d < dims_; ++d) {
    coords_[static_cast<std::size_t>(d)].push_back(p[static_cast<std::size_t>(d)]);
  }
  ++n_;
  ++generation_;
}

void Dataset::reserve(std::size_t n) {
  for (auto& c : coords_) c.reserve(n);
}

std::vector<double> Dataset::min_corner() const {
  GSJ_CHECK(!empty());
  std::vector<double> out(static_cast<std::size_t>(dims_));
  for (int d = 0; d < dims_; ++d) {
    out[static_cast<std::size_t>(d)] =
        *std::min_element(coords_[static_cast<std::size_t>(d)].begin(),
                          coords_[static_cast<std::size_t>(d)].end());
  }
  return out;
}

std::vector<double> Dataset::max_corner() const {
  GSJ_CHECK(!empty());
  std::vector<double> out(static_cast<std::size_t>(dims_));
  for (int d = 0; d < dims_; ++d) {
    out[static_cast<std::size_t>(d)] =
        *std::max_element(coords_[static_cast<std::size_t>(d)].begin(),
                          coords_[static_cast<std::size_t>(d)].end());
  }
  return out;
}

Dataset Dataset::permuted(std::span<const PointId> perm) const {
  GSJ_CHECK(perm.size() == n_);
  Dataset out(dims_, n_);
  for (int d = 0; d < dims_; ++d) {
    const auto& src = coords_[static_cast<std::size_t>(d)];
    auto& dst = out.coords_[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < n_; ++i) dst[i] = src[perm[i]];
  }
  return out;
}

std::string Dataset::describe() const {
  std::ostringstream os;
  os << "Dataset{n=" << n_ << ", dims=" << dims_;
  if (!empty()) {
    const auto lo = min_corner();
    const auto hi = max_corner();
    os << ", bbox=[";
    for (int d = 0; d < dims_; ++d) {
      if (d) os << " x ";
      os << '[' << lo[static_cast<std::size_t>(d)] << ','
         << hi[static_cast<std::size_t>(d)] << ']';
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

}  // namespace gsj
