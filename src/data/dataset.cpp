#include "data/dataset.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/check.hpp"

namespace gsj {

std::uint64_t Dataset::next_uid() noexcept {
  // Starts at 1 so uid 0 can serve as "no dataset" in key schemes.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Dataset::Dataset(int dims) : dims_(dims), coords_(static_cast<std::size_t>(dims)) {
  GSJ_CHECK_MSG(dims >= 1 && dims <= 16, "dims=" << dims);
}

Dataset::Dataset(int dims, std::size_t n) : Dataset(dims) {
  n_ = n;
  for (auto& c : coords_) c.assign(n, 0.0);
}

Dataset::Dataset(const Dataset& other)
    : dims_(other.dims_),
      n_(other.n_),
      // uid_ keeps the fresh value from its initializer: the copy is a
      // distinct dataset (see header).
      generation_(other.generation_),
      coords_(other.coords_),
      log_(other.log_),
      log_base_gen_(other.log_base_gen_),
      bbox_valid_(other.bbox_valid_),
      bbox_min_(other.bbox_min_),
      bbox_max_(other.bbox_max_),
      bbox_min_dirty_(other.bbox_min_dirty_),
      bbox_max_dirty_(other.bbox_max_dirty_) {}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  dims_ = other.dims_;
  n_ = other.n_;
  uid_ = next_uid();
  generation_ = other.generation_;
  coords_ = other.coords_;
  log_ = other.log_;
  log_base_gen_ = other.log_base_gen_;
  bbox_valid_ = other.bbox_valid_;
  bbox_min_ = other.bbox_min_;
  bbox_max_ = other.bbox_max_;
  bbox_min_dirty_ = other.bbox_min_dirty_;
  bbox_max_dirty_ = other.bbox_max_dirty_;
  return *this;
}

void Dataset::log_mutation(Mutation m) {
  if (!logging()) return;
  log_.push_back(m);
  // Amortized trim: keep at least the kLogWindow most recent entries,
  // dropping the oldest half once the log doubles past the window.
  if (log_.size() >= 2 * kLogWindow) {
    const std::size_t drop = log_.size() - kLogWindow;
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
    log_base_gen_ += drop;
  }
}

void Dataset::capture(std::size_t i,
                      std::array<double, Mutation::kCoordCap>& out)
    const noexcept {
  for (int d = 0; d < dims_; ++d) {
    out[static_cast<std::size_t>(d)] = coord(i, d);
  }
}

std::optional<std::span<const Mutation>> Dataset::mutations_since(
    std::uint64_t gen) const {
  if (gen == generation_) return std::span<const Mutation>{};
  if (!logging()) return std::nullopt;
  if (gen < log_base_gen_ || gen > generation_) return std::nullopt;
  const std::size_t first = static_cast<std::size_t>(gen - log_base_gen_);
  // Entries beyond the log (a generation bump without a log record)
  // cannot happen for in-window generations: every mutation logs.
  if (first > log_.size()) return std::nullopt;
  return std::span<const Mutation>(log_.data() + first, log_.size() - first);
}

void Dataset::refresh_bbox() {
  if (!bbox_valid_) return;
  for (int d = 0; d < dims_; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    const auto& col = coords_[sd];
    if (bbox_min_dirty_[sd] != 0) {
      bbox_min_[sd] = *std::min_element(col.begin(), col.end());
      bbox_min_dirty_[sd] = 0;
    }
    if (bbox_max_dirty_[sd] != 0) {
      bbox_max_[sd] = *std::max_element(col.begin(), col.end());
      bbox_max_dirty_[sd] = 0;
    }
  }
}

void Dataset::bbox_extend(std::span<const double> p) {
  if (!bbox_valid_) return;
  for (int d = 0; d < dims_; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    // Dirty dims get rescanned anyway; extending them is harmless but
    // pointless, and min/max over the full column is authoritative.
    if (bbox_min_dirty_[sd] == 0) {
      bbox_min_[sd] = std::min(bbox_min_[sd], p[sd]);
    }
    if (bbox_max_dirty_[sd] == 0) {
      bbox_max_[sd] = std::max(bbox_max_[sd], p[sd]);
    }
  }
}

void Dataset::bbox_mark_removed(std::span<const double> old) {
  if (!bbox_valid_) return;
  for (int d = 0; d < dims_; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    // A coordinate sitting exactly on the cached boundary may have
    // been the only point there — that dimension's extremum can only
    // be recovered by a rescan.
    if (old[sd] <= bbox_min_[sd]) bbox_min_dirty_[sd] = 1;
    if (old[sd] >= bbox_max_[sd]) bbox_max_dirty_[sd] = 1;
  }
}

PointId Dataset::insert(std::span<const double> p) {
  GSJ_CHECK(static_cast<int>(p.size()) == dims_);
  refresh_bbox();
  const PointId id = static_cast<PointId>(n_);
  for (int d = 0; d < dims_; ++d) {
    coords_[static_cast<std::size_t>(d)].push_back(p[static_cast<std::size_t>(d)]);
  }
  ++n_;
  ++generation_;
  bbox_extend(p);
  Mutation m;
  m.kind = Mutation::Kind::Insert;
  m.id = id;
  if (logging()) {
    for (int d = 0; d < dims_; ++d) {
      m.new_coords[static_cast<std::size_t>(d)] = p[static_cast<std::size_t>(d)];
    }
  }
  log_mutation(m);
  return id;
}

void Dataset::erase(PointId i) {
  GSJ_CHECK_MSG(i < n_, "erase(" << i << ") of " << n_ << " points");
  refresh_bbox();
  Mutation m;
  m.kind = Mutation::Kind::Erase;
  m.id = i;
  if (logging()) capture(i, m.old_coords);
  std::vector<double> old(static_cast<std::size_t>(dims_));
  for (int d = 0; d < dims_; ++d) {
    old[static_cast<std::size_t>(d)] = coord(i, d);
  }
  const PointId last = static_cast<PointId>(n_ - 1);
  if (i != last) {
    m.renamed_from = last;
    for (int d = 0; d < dims_; ++d) {
      auto& col = coords_[static_cast<std::size_t>(d)];
      col[i] = col[last];
    }
  }
  for (auto& col : coords_) col.pop_back();
  --n_;
  ++generation_;
  if (n_ == 0) {
    // Bounding box of an empty dataset is undefined; drop the cache so
    // the first insert rebuilds it from scratch.
    bbox_valid_ = false;
  } else {
    bbox_mark_removed(old);
  }
  log_mutation(m);
}

void Dataset::move_point(PointId i, std::span<const double> p) {
  GSJ_CHECK_MSG(i < n_, "move_point(" << i << ") of " << n_ << " points");
  GSJ_CHECK(static_cast<int>(p.size()) == dims_);
  refresh_bbox();
  Mutation m;
  m.kind = Mutation::Kind::Move;
  m.id = i;
  if (logging()) capture(i, m.old_coords);
  std::vector<double> old(static_cast<std::size_t>(dims_));
  for (int d = 0; d < dims_; ++d) {
    old[static_cast<std::size_t>(d)] = coord(i, d);
    coords_[static_cast<std::size_t>(d)][i] = p[static_cast<std::size_t>(d)];
  }
  ++generation_;
  bbox_mark_removed(old);
  bbox_extend(p);
  if (logging()) {
    for (int d = 0; d < dims_; ++d) {
      m.new_coords[static_cast<std::size_t>(d)] = p[static_cast<std::size_t>(d)];
    }
  }
  log_mutation(m);
}

void Dataset::set_coord(PointId i, int d, double v) {
  GSJ_CHECK_MSG(d >= 0 && d < dims_, "set_coord dim " << d);
  std::vector<double> p(static_cast<std::size_t>(dims_));
  for (int dd = 0; dd < dims_; ++dd) {
    p[static_cast<std::size_t>(dd)] = coord(i, dd);
  }
  p[static_cast<std::size_t>(d)] = v;
  move_point(i, p);
}

std::span<double> Dataset::fill_dim(int d) {
  GSJ_CHECK_MSG(d >= 0 && d < dims_, "fill_dim dim " << d);
  ++generation_;
  log_.clear();
  log_base_gen_ = generation_;
  bbox_valid_ = false;
  return coords_[static_cast<std::size_t>(d)];
}

void Dataset::reserve(std::size_t n) {
  for (auto& c : coords_) c.reserve(n);
}

std::vector<double> Dataset::min_corner() const {
  GSJ_CHECK(!empty());
  std::vector<double> out(static_cast<std::size_t>(dims_));
  if (!bbox_valid_) {
    // First call: full scan. Caching here is a logical-const update;
    // it is only safe because no mutation can be concurrent with a
    // const read (the dataset's documented threading contract), and
    // concurrent const readers race benignly only if we never publish
    // a half-built cache — so build into locals first.
    std::vector<double> mn(static_cast<std::size_t>(dims_));
    std::vector<double> mx(static_cast<std::size_t>(dims_));
    for (int d = 0; d < dims_; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      const auto [lo, hi] =
          std::minmax_element(coords_[sd].begin(), coords_[sd].end());
      mn[sd] = *lo;
      mx[sd] = *hi;
    }
    auto* self = const_cast<Dataset*>(this);
    self->bbox_min_ = std::move(mn);
    self->bbox_max_ = std::move(mx);
    self->bbox_min_dirty_.assign(static_cast<std::size_t>(dims_), 0);
    self->bbox_max_dirty_.assign(static_cast<std::size_t>(dims_), 0);
    self->bbox_valid_ = true;
    return bbox_min_;
  }
  for (int d = 0; d < dims_; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    out[sd] = bbox_min_dirty_[sd] == 0
                  ? bbox_min_[sd]
                  : *std::min_element(coords_[sd].begin(), coords_[sd].end());
  }
  return out;
}

std::vector<double> Dataset::max_corner() const {
  GSJ_CHECK(!empty());
  if (!bbox_valid_) {
    (void)min_corner();  // builds both sides of the cache
    return bbox_max_;
  }
  std::vector<double> out(static_cast<std::size_t>(dims_));
  for (int d = 0; d < dims_; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    out[sd] = bbox_max_dirty_[sd] == 0
                  ? bbox_max_[sd]
                  : *std::max_element(coords_[sd].begin(), coords_[sd].end());
  }
  return out;
}

Dataset Dataset::permuted(std::span<const PointId> perm) const {
  GSJ_CHECK(perm.size() == n_);
  Dataset out(dims_, n_);
  for (int d = 0; d < dims_; ++d) {
    const auto& src = coords_[static_cast<std::size_t>(d)];
    auto& dst = out.coords_[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < n_; ++i) dst[i] = src[perm[i]];
  }
  return out;
}

std::string Dataset::describe() const {
  std::ostringstream os;
  os << "Dataset{n=" << n_ << ", dims=" << dims_;
  if (!empty()) {
    const auto lo = min_corner();
    const auto hi = max_corner();
    os << ", bbox=[";
    for (int d = 0; d < dims_; ++d) {
      if (d) os << " x ";
      os << '[' << lo[static_cast<std::size_t>(d)] << ','
         << hi[static_cast<std::size_t>(d)] << ']';
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

}  // namespace gsj
