// Dataset generators reproducing the paper's evaluation inputs (Table I).
//
// Synthetic inputs (Unif*, Expo*) follow the paper exactly: uniform and
// exponential(lambda=40) coordinate distributions in 2..6 dimensions.
//
// The real-world inputs (SW 2-D/3-D ionosphere catalogs and the Gaia
// star catalog) are proprietary/large downloads, so we substitute
// synthetic equivalents that preserve the property the paper exploits —
// heavy spatial skew (dense hotspots over a sparse background) — as
// documented in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace gsj {

/// Uniform i.i.d. coordinates in [lo, hi)^dims.
[[nodiscard]] Dataset gen_uniform(std::size_t n, int dims, std::uint64_t seed,
                                  double lo = 0.0, double hi = 100.0);

/// Exponential(lambda) i.i.d. coordinates, rejected/clipped to [0, clip).
/// lambda=40 reproduces the paper's Expo* datasets: almost all mass lies
/// within ~0.2 of the origin in every dimension, so the corner of the
/// space is extremely dense and per-point work varies by orders of
/// magnitude.
[[nodiscard]] Dataset gen_exponential(std::size_t n, int dims,
                                      std::uint64_t seed, double lambda = 40.0,
                                      double clip = 100.0);

/// SW-like geospatial catalog: a Gaussian-mixture of hotspots over a
/// lat/lon box plus a uniform background. With `with_tec`, appends a
/// third "total electron content" dimension correlated with latitude,
/// mirroring the SW3D* datasets.
[[nodiscard]] Dataset gen_sw_like(std::size_t n, bool with_tec,
                                  std::uint64_t seed);

/// Gaia-like sky catalog in galactic coordinates (l, b): longitude
/// uniform in [0,360), latitude Laplace-concentrated around the galactic
/// plane (scale ~ 15 degrees), matching the strong plane over-density of
/// the real catalog.
[[nodiscard]] Dataset gen_gaia_like(std::size_t n, std::uint64_t seed);

/// One row of the paper's Table I, plus our substitution metadata.
struct DatasetSpec {
  std::string name;        ///< paper name, e.g. "Expo2D2M", "SW3DA"
  int dims;
  std::size_t paper_n;     ///< |D| used in the paper
  std::size_t default_n;   ///< scaled default for this repo's benches
  std::string description;
};

/// All datasets of the paper's Table I.
[[nodiscard]] const std::vector<DatasetSpec>& dataset_specs();

/// Looks up `name` in dataset_specs(); returns nullptr when unknown.
[[nodiscard]] const DatasetSpec* find_spec(const std::string& name);

/// Materializes a Table I dataset by paper name. `n == 0` uses the
/// spec's scaled default size; otherwise `n` points are generated.
[[nodiscard]] Dataset make_dataset(const std::string& name, std::size_t n,
                                   std::uint64_t seed);

}  // namespace gsj
