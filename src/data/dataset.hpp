// n-dimensional point dataset in structure-of-arrays layout.
//
// Coordinates are stored as one contiguous array per dimension so the
// join kernels stream a single dimension at a time (the layout the GPU
// implementation in Gowanlock & Karsin [18] uses for coalesced access).
//
// Mutation contract (docs/STREAMING.md): the dataset is mutated through
// explicit operations — insert / erase / move_point / set_coord — and
// every one of them (a) bumps the coarse generation counter that
// external caches key on, and (b) appends a Mutation record to a
// bounded dirty log. Consumers that cached derived state at generation
// g call mutations_since(g): a contiguous view of exactly the
// mutations between g and now lets them repair incrementally
// (grid/grid_index.hpp repair, sj/engine.hpp cache repair); a lost
// window (too much churn, or dims beyond the log's coordinate
// capacity) returns nullopt and the consumer rebuilds from scratch.
// There is deliberately no non-const coord() accessor any more — reads
// can never invalidate anything.
//
// erase() keeps PointIds dense by swap-and-pop: the last point is
// renamed into the erased slot, and the rename is part of the Mutation
// record so log consumers can track identity exactly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gsj {

/// Index of a point within a Dataset.
using PointId = std::uint32_t;

/// Sentinel for "no point" (used by Mutation::renamed_from and churn
/// summaries for deleted points).
inline constexpr PointId kInvalidPointId =
    std::numeric_limits<PointId>::max();

/// One entry of the dataset's dirty log. Coordinates are stored inline
/// (first dims() entries of the arrays are meaningful) so the log never
/// allocates per mutation; datasets wider than kCoordCap dimensions are
/// not logged (their consumers always rebuild).
struct Mutation {
  /// Widest dimensionality the log records coordinates for. Matches
  /// the grid index's kMaxDims — wider datasets cannot be grid-joined
  /// anyway.
  static constexpr int kCoordCap = 8;

  enum class Kind : std::uint8_t {
    Insert,  ///< new point appended at `id` (== previous size())
    Erase,   ///< point `id` removed; `renamed_from` moved into its slot
    Move,    ///< point `id` re-positioned from old_coords to new_coords
  };

  Kind kind = Kind::Insert;
  /// The slot the mutation applied to, in the id space current at the
  /// time of the mutation.
  PointId id = 0;
  /// Erase only: the previous id of the point that now lives at `id`
  /// (the swap-and-pop rename), or kInvalidPointId when the erased
  /// point was the last one (no rename happened).
  PointId renamed_from = kInvalidPointId;
  std::array<double, kCoordCap> old_coords{};  ///< Erase / Move
  std::array<double, kCoordCap> new_coords{};  ///< Insert / Move
};

class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset of `dims` dimensions (1..16 supported).
  explicit Dataset(int dims);

  /// Creates a dataset of `n` zero points in `dims` dimensions.
  Dataset(int dims, std::size_t n);

  /// Copies take a fresh uid: a copy is a distinct dataset whose
  /// content diverges independently, so cache keys built from
  /// (uid, generation) must never alias it to the original. Moves keep
  /// the uid — the moved-to object *is* the same dataset.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&&) noexcept = default;
  Dataset& operator=(Dataset&&) noexcept = default;
  ~Dataset() = default;

  /// Process-unique dataset identity, assigned at construction (and
  /// refreshed on copy). Combined with generation() it identifies the
  /// exact point-set content of this object — the pair the R×S/KNN
  /// join caches fold into their keys for the *second* dataset, which
  /// (unlike the attached one) carries no SharedDataset identity of
  /// its own (sj/pipeline.hpp make_result_key).
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Coordinate of point `i` in dimension `d` (0-based). Read-only:
  /// writes go through set_coord / move_point, which log the mutation.
  [[nodiscard]] double coord(std::size_t i, int d) const noexcept {
    return coords_[static_cast<std::size_t>(d)][i];
  }

  /// Mutation counter: bumped once by every mutating operation
  /// (insert/push_back, erase, move_point, set_coord). Cached derived
  /// structures — grid indexes, workload tables — record the
  /// generation they were built at; a mismatch means stale, and
  /// mutations_since(their generation) tells them exactly what changed.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Whole coordinate column for dimension `d`.
  [[nodiscard]] std::span<const double> dim(int d) const noexcept {
    return coords_[static_cast<std::size_t>(d)];
  }

  /// Appends one point; `p.size()` must equal dims(). Returns the new
  /// point's id (== size() before the call).
  PointId insert(std::span<const double> p);

  /// Appends one point (insert without the returned id — the
  /// historical spelling, kept for the call sites that predate the
  /// mutation API).
  void push_back(std::span<const double> p) { (void)insert(p); }

  /// Removes point `i` by swap-and-pop: the last point is renamed to
  /// id `i` (recorded in the mutation log), keeping ids dense in
  /// [0, size()).
  void erase(PointId i);

  /// Re-positions point `i` to `p` (`p.size()` must equal dims()).
  void move_point(PointId i, std::span<const double> p);

  /// Sets one coordinate of point `i` — a single-dimension move_point.
  void set_coord(PointId i, int d, double v);

  /// Bulk-load write access to a whole coordinate column, for loaders
  /// and generators filling a freshly constructed dataset. Bumps the
  /// generation and invalidates the dirty log and bbox cache once per
  /// call — not per element — so incremental consumers see it as an
  /// unrepairable (full-rebuild) change.
  [[nodiscard]] std::span<double> fill_dim(int d);

  /// Reserves capacity for `n` points.
  void reserve(std::size_t n);

  /// Squared Euclidean distance between points `a` and `b`.
  [[nodiscard]] double dist2(std::size_t a, std::size_t b) const noexcept {
    double s = 0.0;
    for (int d = 0; d < dims_; ++d) {
      const double diff = coord(a, d) - coord(b, d);
      s += diff * diff;
    }
    return s;
  }

  /// The dirty log since generation `gen`: a view of exactly the
  /// mutations that transformed the dataset from generation `gen` to
  /// generation(). Empty span when gen == generation(). nullopt when
  /// the window is no longer available (gen predates the bounded log,
  /// gen is in the future, or dims() > Mutation::kCoordCap) — the
  /// caller must fall back to a full rebuild. The view is invalidated
  /// by the next mutation.
  [[nodiscard]] std::optional<std::span<const Mutation>> mutations_since(
      std::uint64_t gen) const;

  /// Per-dimension minimum/maximum over all points. Dataset must be
  /// non-empty. Served from a cache that mutations maintain
  /// incrementally: inserts and inward moves extend/keep it in O(d);
  /// only a mutation that removes a boundary point re-scans (just the
  /// affected dimensions, on the next call or mutation).
  [[nodiscard]] std::vector<double> min_corner() const;
  [[nodiscard]] std::vector<double> max_corner() const;

  /// Returns a dataset containing this dataset's points in the order
  /// given by `perm` (a permutation of [0, size())).
  [[nodiscard]] Dataset permuted(std::span<const PointId> perm) const;

  /// Human-readable one-line description (size / dims / bounding box).
  [[nodiscard]] std::string describe() const;

  /// Most-recent mutations guaranteed retained by the bounded log
  /// (amortized trimming keeps between kLogWindow and 2*kLogWindow
  /// entries once exceeded). Consumers that poll at least this often
  /// never hit the lost-window fallback.
  static constexpr std::size_t kLogWindow = 4096;

 private:
  [[nodiscard]] static std::uint64_t next_uid() noexcept;
  void log_mutation(Mutation m);
  [[nodiscard]] bool logging() const noexcept {
    return dims_ <= Mutation::kCoordCap;
  }
  /// Copies point `i`'s coordinates into a log-entry array.
  void capture(std::size_t i, std::array<double, Mutation::kCoordCap>& out)
      const noexcept;

  /// Folds outstanding dirty bbox dimensions back into the cache
  /// (called at the head of every mutation, where exclusive access is
  /// guaranteed; const readers recompute dirty dims without caching).
  void refresh_bbox();
  /// Extends the cached bbox with a point now present in the dataset.
  void bbox_extend(std::span<const double> p);
  /// Marks dimensions where a removed (or moved-away-from) coordinate
  /// sat on the cached boundary as needing a rescan.
  void bbox_mark_removed(std::span<const double> old);

  int dims_ = 0;
  std::size_t n_ = 0;
  std::uint64_t uid_ = next_uid();
  std::uint64_t generation_ = 0;
  std::vector<std::vector<double>> coords_;  // [dim][point]

  // --- dirty log (docs/STREAMING.md) ---
  std::vector<Mutation> log_;
  /// Generation the dataset was at before log_[0] applied.
  std::uint64_t log_base_gen_ = 0;

  // --- incrementally maintained bounding box ---
  bool bbox_valid_ = false;               ///< cache holds current values
  std::vector<double> bbox_min_;          ///< per-dim cached minimum
  std::vector<double> bbox_max_;          ///< per-dim cached maximum
  std::vector<std::uint8_t> bbox_min_dirty_;  ///< dim needs a rescan
  std::vector<std::uint8_t> bbox_max_dirty_;
};

}  // namespace gsj
