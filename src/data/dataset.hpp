// n-dimensional point dataset in structure-of-arrays layout.
//
// Coordinates are stored as one contiguous array per dimension so the
// join kernels stream a single dimension at a time (the layout the GPU
// implementation in Gowanlock & Karsin [18] uses for coalesced access).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gsj {

/// Index of a point within a Dataset.
using PointId = std::uint32_t;

class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset of `dims` dimensions (1..16 supported).
  explicit Dataset(int dims);

  /// Creates a dataset of `n` zero points in `dims` dimensions.
  Dataset(int dims, std::size_t n);

  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Coordinate of point `i` in dimension `d` (0-based).
  [[nodiscard]] double coord(std::size_t i, int d) const noexcept {
    return coords_[static_cast<std::size_t>(d)][i];
  }
  double& coord(std::size_t i, int d) noexcept {
    ++generation_;  // handing out a mutable reference may change content
    return coords_[static_cast<std::size_t>(d)][i];
  }

  /// Mutation counter: bumped by every operation that can change the
  /// dataset's content (push_back, non-const coord access). Cached
  /// derived structures — grid indexes, workload tables — record the
  /// generation they were built at and treat a mismatch as stale
  /// (sj/engine.hpp).
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Whole coordinate column for dimension `d`.
  [[nodiscard]] std::span<const double> dim(int d) const noexcept {
    return coords_[static_cast<std::size_t>(d)];
  }

  /// Appends one point; `p.size()` must equal dims().
  void push_back(std::span<const double> p);

  /// Reserves capacity for `n` points.
  void reserve(std::size_t n);

  /// Squared Euclidean distance between points `a` and `b`.
  [[nodiscard]] double dist2(std::size_t a, std::size_t b) const noexcept {
    double s = 0.0;
    for (int d = 0; d < dims_; ++d) {
      const double diff = coord(a, d) - coord(b, d);
      s += diff * diff;
    }
    return s;
  }

  /// Per-dimension minimum/maximum over all points. Dataset must be
  /// non-empty.
  [[nodiscard]] std::vector<double> min_corner() const;
  [[nodiscard]] std::vector<double> max_corner() const;

  /// Returns a dataset containing this dataset's points in the order
  /// given by `perm` (a permutation of [0, size())).
  [[nodiscard]] Dataset permuted(std::span<const PointId> perm) const;

  /// Human-readable one-line description (size / dims / bounding box).
  [[nodiscard]] std::string describe() const;

 private:
  int dims_ = 0;
  std::size_t n_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::vector<double>> coords_;  // [dim][point]
};

}  // namespace gsj
