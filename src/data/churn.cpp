#include "data/churn.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gsj {

ChurnSummary summarize_churn(const Dataset& ds,
                             std::span<const Mutation> log) {
  ChurnSummary out;
  if (log.empty()) return out;

  // Per-slot simulation state across the window. Slots are the live id
  // space, which grows on Insert and shrinks on Erase exactly as the
  // dataset's did.
  struct Slot {
    PointId pre_id = kInvalidPointId;  ///< id at base generation
    bool existed_before = true;
    bool touched = false;
    bool have_old = false;
    std::array<double, Mutation::kCoordCap> old_coords{};
  };

  // Reconstruct the size at the base generation from the net
  // insert/erase balance.
  std::ptrdiff_t net = 0;
  for (const Mutation& m : log) {
    if (m.kind == Mutation::Kind::Insert) ++net;
    if (m.kind == Mutation::Kind::Erase) --net;
  }
  const auto n_before =
      static_cast<std::size_t>(static_cast<std::ptrdiff_t>(ds.size()) - net);
  std::vector<Slot> slots(n_before);
  for (std::size_t i = 0; i < n_before; ++i) {
    slots[i].pre_id = static_cast<PointId>(i);
  }

  for (const Mutation& m : log) {
    switch (m.kind) {
      case Mutation::Kind::Insert: {
        out.pure_moves = false;
        GSJ_CHECK(m.id == slots.size());
        Slot s;
        s.existed_before = false;
        s.touched = true;
        slots.push_back(s);
        break;
      }
      case Mutation::Kind::Move: {
        Slot& s = slots[m.id];
        if (s.existed_before && !s.have_old) {
          s.old_coords = m.old_coords;
          s.have_old = true;
        }
        s.touched = true;
        break;
      }
      case Mutation::Kind::Erase: {
        out.pure_moves = false;
        Slot& s = slots[m.id];
        if (s.existed_before) {
          ChurnSummary::Removed r;
          r.pre_id = s.pre_id;
          r.old_coords = s.have_old ? s.old_coords : m.old_coords;
          out.removed.push_back(r);
        }
        if (m.renamed_from != kInvalidPointId) {
          GSJ_CHECK(m.renamed_from == slots.size() - 1);
          // The renamed point keeps its pre-window position but its id
          // changes, so every pair naming it changes too: touched.
          Slot moved = slots.back();
          moved.touched = true;
          slots[m.id] = moved;
        }
        slots.pop_back();
        break;
      }
    }
  }
  GSJ_CHECK(slots.size() == ds.size());

  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Slot& s = slots[i];
    if (!s.touched) continue;
    ChurnSummary::Touched t;
    t.id = static_cast<PointId>(i);
    t.pre_id = s.pre_id;
    t.existed_before = s.existed_before;
    if (s.existed_before) {
      if (s.have_old) {
        t.old_coords = s.old_coords;
      } else {
        // Renamed but never moved: the old position is the current one.
        for (int d = 0; d < ds.dims(); ++d) {
          t.old_coords[static_cast<std::size_t>(d)] = ds.coord(i, d);
        }
      }
    }
    out.touched.push_back(t);
  }
  return out;
}

}  // namespace gsj
