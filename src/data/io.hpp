// Binary and CSV dataset persistence, so benches can cache generated
// inputs and users can load their own point sets.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace gsj {

/// Writes a dataset in a simple self-describing little-endian binary
/// format: magic "GSJD", u32 version, u32 dims, u64 n, then n*dims
/// float64 values in SoA order.
void save_binary(const Dataset& ds, const std::string& path);

/// Loads a dataset written by save_binary. Throws CheckError on a
/// malformed file.
[[nodiscard]] Dataset load_binary(const std::string& path);

/// Loads a headerless CSV of `dims` comma-separated coordinates per
/// line. Blank lines are skipped.
[[nodiscard]] Dataset load_csv(const std::string& path, int dims);

/// Writes one comma-separated row per point.
void save_csv(const Dataset& ds, const std::string& path);

}  // namespace gsj
