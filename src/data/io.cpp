#include "data/io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace gsj {

namespace {
constexpr char kMagic[4] = {'G', 'S', 'J', 'D'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  GSJ_CHECK_MSG(f.good(), "truncated dataset file");
  return v;
}
}  // namespace

void save_binary(const Dataset& ds, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  GSJ_CHECK_MSG(f.good(), "cannot open " << path);
  f.write(kMagic, 4);
  write_pod(f, kVersion);
  write_pod(f, static_cast<std::uint32_t>(ds.dims()));
  write_pod(f, static_cast<std::uint64_t>(ds.size()));
  for (int d = 0; d < ds.dims(); ++d) {
    const auto col = ds.dim(d);
    f.write(reinterpret_cast<const char*>(col.data()),
            static_cast<std::streamsize>(col.size() * sizeof(double)));
  }
  GSJ_CHECK_MSG(f.good(), "write failed: " << path);
}

Dataset load_binary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  GSJ_CHECK_MSG(f.good(), "cannot open " << path);
  char magic[4];
  f.read(magic, 4);
  GSJ_CHECK_MSG(f.good() && std::memcmp(magic, kMagic, 4) == 0,
                "bad magic in " << path);
  const auto version = read_pod<std::uint32_t>(f);
  GSJ_CHECK_MSG(version == kVersion, "unsupported version " << version);
  const auto dims = read_pod<std::uint32_t>(f);
  const auto n = read_pod<std::uint64_t>(f);
  GSJ_CHECK_MSG(dims >= 1 && dims <= 16, "bad dims " << dims);
  Dataset ds(static_cast<int>(dims), static_cast<std::size_t>(n));
  for (std::uint32_t d = 0; d < dims; ++d) {
    auto col = ds.fill_dim(static_cast<int>(d));
    f.read(reinterpret_cast<char*>(col.data()),
           static_cast<std::streamsize>(col.size() * sizeof(double)));
    GSJ_CHECK_MSG(f.good(), "truncated dataset file " << path);
  }
  return ds;
}

Dataset load_csv(const std::string& path, int dims) {
  std::ifstream f(path);
  GSJ_CHECK_MSG(f.good(), "cannot open " << path);
  Dataset ds(dims);
  std::string line;
  std::vector<double> row(static_cast<std::size_t>(dims));
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    for (int d = 0; d < dims; ++d) {
      GSJ_CHECK_MSG(std::getline(ls, cell, ','),
                    "row with <" << dims << " columns in " << path);
      row[static_cast<std::size_t>(d)] = std::stod(cell);
    }
    ds.push_back(row);
  }
  return ds;
}

void save_csv(const Dataset& ds, const std::string& path) {
  std::ofstream f(path);
  GSJ_CHECK_MSG(f.good(), "cannot open " << path);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (int d = 0; d < ds.dims(); ++d) {
      if (d) f << ',';
      f << ds.coord(i, d);
    }
    f << '\n';
  }
}

}  // namespace gsj
