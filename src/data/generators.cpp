#include "data/generators.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gsj {

Dataset gen_uniform(std::size_t n, int dims, std::uint64_t seed, double lo,
                    double hi) {
  GSJ_CHECK(hi > lo);
  Xoshiro256 rng(seed);
  Dataset ds(dims, n);
  for (int d = 0; d < dims; ++d) {
    auto col = ds.fill_dim(d);
    for (std::size_t i = 0; i < n; ++i) col[i] = rng.uniform(lo, hi);
  }
  return ds;
}

Dataset gen_exponential(std::size_t n, int dims, std::uint64_t seed,
                        double lambda, double clip) {
  GSJ_CHECK(lambda > 0.0 && clip > 0.0);
  Xoshiro256 rng(seed);
  Dataset ds(dims, n);
  for (int d = 0; d < dims; ++d) {
    auto col = ds.fill_dim(d);
    for (std::size_t i = 0; i < n; ++i) {
      // Inverse-CDF sampling with rejection of the (vanishing) tail
      // beyond `clip`, so the domain stays bounded like the paper's.
      double x;
      do {
        x = -std::log1p(-rng.uniform()) / lambda;
      } while (x >= clip);
      col[i] = x;
    }
  }
  return ds;
}

namespace {

/// Standard normal via Box-Muller (we only need one of the pair).
double gaussian(Xoshiro256& rng) {
  const double u1 = 1.0 - rng.uniform();  // (0, 1]
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace

Dataset gen_sw_like(std::size_t n, bool with_tec, std::uint64_t seed) {
  // Hotspot mixture over a lat/lon box. Parameters chosen so that the
  // neighbor-count distribution is heavy-tailed (dense urban-like
  // clusters over sparse background), the property that drives the SW
  // results in the paper.
  constexpr double kLonLo = -180.0, kLonHi = 180.0;
  constexpr double kLatLo = -90.0, kLatHi = 90.0;
  constexpr int kClusters = 192;
  constexpr double kBackgroundFrac = 0.25;

  Xoshiro256 rng(seed);
  struct Cluster {
    double lon, lat, sigma;
    double weight;
  };
  std::vector<Cluster> clusters(kClusters);
  double wsum = 0.0;
  for (auto& c : clusters) {
    c.lon = rng.uniform(kLonLo, kLonHi);
    c.lat = rng.uniform(kLatLo, kLatHi);
    c.sigma = std::exp(rng.uniform(std::log(0.2), std::log(4.0)));
    // Pareto-ish weights: a few clusters dominate.
    c.weight = std::pow(rng.uniform(), -0.7);
    wsum += c.weight;
  }
  // Cumulative weights for sampling.
  std::vector<double> cdf(kClusters);
  double acc = 0.0;
  for (int i = 0; i < kClusters; ++i) {
    acc += clusters[static_cast<std::size_t>(i)].weight / wsum;
    cdf[static_cast<std::size_t>(i)] = acc;
  }

  const int dims = with_tec ? 3 : 2;
  Dataset ds(dims, n);
  auto lon_col = ds.fill_dim(0);
  auto lat_col = ds.fill_dim(1);
  auto tec_col = with_tec ? ds.fill_dim(2) : std::span<double>{};
  for (std::size_t i = 0; i < n; ++i) {
    double lon, lat;
    if (rng.uniform() < kBackgroundFrac) {
      lon = rng.uniform(kLonLo, kLonHi);
      lat = rng.uniform(kLatLo, kLatHi);
    } else {
      const double u = rng.uniform();
      std::size_t c = 0;
      while (c + 1 < cdf.size() && cdf[c] < u) ++c;
      const auto& cl = clusters[c];
      lon = clamp(cl.lon + gaussian(rng) * cl.sigma, kLonLo, kLonHi);
      lat = clamp(cl.lat + gaussian(rng) * cl.sigma, kLatLo, kLatHi);
    }
    lon_col[i] = lon;
    lat_col[i] = lat;
    if (with_tec) {
      // Total electron content peaks near the (geomagnetic) equator;
      // model as latitude-dependent mean plus noise, scaled to ~[0,100].
      const double tec = 60.0 * std::exp(-(lat * lat) / (2.0 * 30.0 * 30.0)) +
                         10.0 + 8.0 * gaussian(rng);
      tec_col[i] = clamp(tec, 0.0, 100.0);
    }
  }
  return ds;
}

Dataset gen_gaia_like(std::size_t n, std::uint64_t seed) {
  // Galactic coordinates: l uniform, b Laplace(scale 15 deg) truncated
  // to [-90, 90] — reproduces the dominant plane over-density of Gaia.
  constexpr double kScale = 15.0;
  Xoshiro256 rng(seed);
  Dataset ds(2, n);
  auto l_col = ds.fill_dim(0);
  auto b_col = ds.fill_dim(1);
  for (std::size_t i = 0; i < n; ++i) {
    l_col[i] = rng.uniform(0.0, 360.0);
    double b;
    do {
      const double u = rng.uniform() - 0.5;
      b = -kScale * std::copysign(std::log1p(-2.0 * std::abs(u)), u);
    } while (b < -90.0 || b > 90.0);
    b_col[i] = b;
  }
  return ds;
}

const std::vector<DatasetSpec>& dataset_specs() {
  static const std::vector<DatasetSpec> kSpecs = [] {
    std::vector<DatasetSpec> s;
    for (int d = 2; d <= 6; ++d) {
      s.push_back({"Unif" + std::to_string(d) + "D2M", d, 2'000'000, 100'000,
                   "uniform synthetic, " + std::to_string(d) + "-D"});
      s.push_back({"Expo" + std::to_string(d) + "D2M", d, 2'000'000, 100'000,
                   "exponential(lambda=40) synthetic, " + std::to_string(d) +
                       "-D"});
    }
    s.push_back({"SW2DA", 2, 1'860'000, 93'000,
                 "SW-like geospatial hotspot mixture (A), 2-D"});
    s.push_back({"SW2DB", 2, 5'160'000, 258'000,
                 "SW-like geospatial hotspot mixture (B), 2-D"});
    s.push_back({"SW3DA", 3, 1'860'000, 93'000,
                 "SW-like hotspot mixture with TEC dimension (A), 3-D"});
    s.push_back({"SW3DB", 3, 5'160'000, 258'000,
                 "SW-like hotspot mixture with TEC dimension (B), 3-D"});
    s.push_back({"Gaia", 2, 50'000'000, 500'000,
                 "Gaia-like sky catalog, galactic-plane concentrated, 2-D"});
    return s;
  }();
  return kSpecs;
}

const DatasetSpec* find_spec(const std::string& name) {
  for (const auto& s : dataset_specs()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Dataset make_dataset(const std::string& name, std::size_t n,
                     std::uint64_t seed) {
  const DatasetSpec* spec = find_spec(name);
  GSJ_CHECK_MSG(spec != nullptr, "unknown dataset: " << name);
  const std::size_t count = n == 0 ? spec->default_n : n;
  if (name.rfind("Unif", 0) == 0) {
    return gen_uniform(count, spec->dims, seed);
  }
  if (name.rfind("Expo", 0) == 0) {
    return gen_exponential(count, spec->dims, seed);
  }
  if (name.rfind("SW", 0) == 0) {
    return gen_sw_like(count, spec->dims == 3, seed);
  }
  if (name == "Gaia") {
    return gen_gaia_like(count, seed);
  }
  GSJ_CHECK_MSG(false, "unhandled dataset: " << name);
  return Dataset{};
}

}  // namespace gsj
