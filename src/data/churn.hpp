// Churn summaries: collapsing a Dataset mutation window into "which
// points does the current id space disagree with the old one about".
//
// A consumer that cached join results at generation g and wants to
// repair instead of rebuild needs two things from the window
// mutations_since(g): the set of *current* point ids whose position or
// identity differs from the old snapshot (touched points, with their
// old coordinates when they had any), and the old coordinates of
// points that no longer exist. summarize_churn() produces exactly
// that by forward-simulating the log over the slot space, folding
// rename chains (erase's swap-and-pop) and insert-then-erase churn
// down to their net effect.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace gsj {

/// Net effect of a mutation window on the point-id space.
struct ChurnSummary {
  /// A currently-live point whose position or id differs from the
  /// snapshot at the window's base generation.
  struct Touched {
    PointId id = 0;            ///< current id
    /// Id this point had at the base generation (tracked through
    /// rename chains), or kInvalidPointId when inserted in-window.
    PointId pre_id = kInvalidPointId;
    bool existed_before = false;  ///< had a position at the base generation
    /// Position at the base generation (meaningful only when
    /// existed_before; first dims entries valid).
    std::array<double, Mutation::kCoordCap> old_coords{};
  };

  /// A point that existed at the base generation and no longer does.
  struct Removed {
    PointId pre_id = 0;  ///< id at the base generation
    std::array<double, Mutation::kCoordCap> old_coords{};
  };

  std::vector<Touched> touched;  ///< sorted by current id, unique
  std::vector<Removed> removed;
  /// True when the window contains only Move mutations — ids are
  /// stable, size is unchanged, and per-point cache-survivor analysis
  /// is sound (see JoinService's result-cache repair).
  bool pure_moves = true;
};

/// Collapses `log` (a window obtained from ds.mutations_since()) into a
/// ChurnSummary against `ds`'s current state. Touched points that were
/// never moved — only renamed by swap-and-pop — report their current
/// coordinates as old_coords (their position genuinely didn't change).
[[nodiscard]] ChurnSummary summarize_churn(const Dataset& ds,
                                           std::span<const Mutation> log);

}  // namespace gsj
