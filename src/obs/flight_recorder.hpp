// Always-on flight recorder: a fixed-capacity, lock-free ring of
// recent observability breadcrumbs, cheap enough to leave enabled in
// serving mode and dumped post hoc when a request goes wrong
// (Failed/Expired responses, overflow-retry exhaustion, CheckError).
//
// Design:
//
//  * Per-thread shards. Each recording thread hashes (round-robin at
//    first use) onto one of a fixed set of shards; a shard is a ring of
//    atomic slots indexed by an atomic head counter. record() is a
//    handful of relaxed atomic stores plus one release store of the
//    global sequence number — no locks, no allocation, no formatting.
//  * Events are points, not spans, and carry no wall-clock timestamp —
//    ordering comes from the global sequence counter alone. That makes
//    a dump a pure function of the execution: two runs of the same
//    deterministic workload (the --logical-time bar) serialize to
//    byte-identical dumps, because nothing in an event depends on time.
//  * Event names must be string literals (static storage duration):
//    the slot stores the pointer, never copies the bytes. Every call
//    site in this repo passes a literal.
//  * snapshot()/dump() merge the shards and sort by sequence number.
//    They are exact once writers have quiesced (the failure-dump and
//    test paths); concurrent with writers they are a best-effort tail —
//    a slot being overwritten mid-read can pair a name with a
//    neighbouring write's value, but every field access stays a
//    data-race-free atomic load.
//
// Capacity is fixed at construction; older events are overwritten
// (it is a *flight recorder*, not a log).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

namespace gsj::obs {

class FlightRecorder {
 public:
  struct Event {
    std::uint64_t seq = 0;  ///< global order (1-based; 0 = empty slot)
    std::uint64_t request_id = 0;
    std::uint64_t value = 0;
    const char* name = nullptr;
  };

  /// `capacity_per_shard` slots in each of `shards` rings; total
  /// retained history is their product. Both clamped to >= 1.
  explicit FlightRecorder(std::size_t capacity_per_shard = 1024,
                          std::size_t shards = 8);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one breadcrumb. `name` MUST have static storage duration
  /// (pass a string literal). Lock-free; safe from any thread.
  void record(const char* name, std::uint64_t request_id,
              std::uint64_t value) noexcept;

  /// Merged view of every retained event, oldest first (by sequence).
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Human-readable dump, oldest first: one "req=<id> <name> value=<v>"
  /// line per event. `request_id` != 0 filters to that request. The
  /// output contains no timestamps or sequence numbers, so identical
  /// executions dump byte-identical text.
  void dump(std::ostream& os, std::uint64_t request_id = 0) const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t capacity_per_shard() const noexcept {
    return capacity_;
  }
  /// Total events ever recorded (not the retained count).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> request{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<const char*> name{nullptr};
  };
  struct Shard {
    std::atomic<std::uint64_t> head{0};
    std::unique_ptr<Slot[]> ring;
  };

  [[nodiscard]] Shard& shard_for_thread() noexcept;

  std::size_t capacity_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> next_shard_{0};
  std::vector<Shard> shards_;
};

}  // namespace gsj::obs
