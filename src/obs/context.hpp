// Shared observability wiring (ObsContext) plus the request-scoped
// attribution types threaded from JoinService down to the execution
// stage.
//
// Before this header, EngineConfig and ServiceConfig each carried their
// own tracer/metrics pointer pair, so a tool that wanted one registry
// for "the whole serving stack" had to remember to thread the same
// pointers into every config it built — miss one and part of the
// telemetry lands in an orphan registry nobody exports. ObsContext is
// that pointer set as a single value: construct one, hand it to the
// service (or engine), and every channel instrument — svc.*, the
// sj.cache.* family, request spans, flight-recorder breadcrumbs —
// reaches the same sinks by construction.
//
// RequestBreakdown is the queryable half of request attribution: the
// service fills one per submitted request (JoinResponse::breakdown) so
// callers can read the wait/plan/execute split and the per-artifact
// cache hit/miss story without parsing an exported trace.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/trace.hpp"

namespace gsj::obs {

class Registry;
class FlightRecorder;

/// One observability channel: every member optional and non-owning.
/// Copyable by design — a config embeds the context by value, so two
/// configs built from the same ObsContext agree on the same sinks.
struct ObsContext {
  Tracer* tracer = nullptr;
  Registry* metrics = nullptr;
  FlightRecorder* recorder = nullptr;
};

/// How a submit()ted request's answer was produced (docs/SERVICE.md
/// result-serving layer). Everything except Execution was served from
/// the service's result cache without occupying a worker for a join.
enum class ServedFrom : std::uint8_t {
  Execution,    ///< ran the full plan+execute pipeline
  ResultCache,  ///< exact ε hit on a cached result
  Coalesced,    ///< attached to an identical in-flight execution
  Subsumed,     ///< filtered from a cached ε' ≥ ε result
};

[[nodiscard]] constexpr const char* to_string(ServedFrom s) noexcept {
  switch (s) {
    case ServedFrom::Execution:
      return "execute";
    case ServedFrom::ResultCache:
      return "result_cache";
    case ServedFrom::Coalesced:
      return "coalesced";
    case ServedFrom::Subsumed:
      return "subsumed";
  }
  return "unknown";
}

/// Per-request latency/attribution summary (JoinResponse::breakdown).
/// All fields are totals for one request; seconds are wall time.
struct RequestBreakdown {
  std::uint64_t request_id = 0;
  /// How the response was produced; Execution unless the result-serving
  /// layer answered from its cache or an in-flight duplicate.
  ServedFrom served_from = ServedFrom::Execution;
  double wait_seconds = 0.0;     ///< admission-queue wait
  double plan_seconds = 0.0;     ///< plan stage (host_prep_seconds)
  double execute_seconds = 0.0;  ///< batched execution stage
  // Per-artifact cache events observed while planning this request.
  std::uint64_t grid_hits = 0, grid_misses = 0;
  std::uint64_t workload_hits = 0, workload_misses = 0;
  std::uint64_t order_hits = 0, order_misses = 0;
  std::uint64_t estimate_hits = 0, estimate_misses = 0;
  std::uint64_t batches = 0;
  std::uint64_t overflow_retries = 0;
  std::uint64_t result_pairs = 0;

  /// Routes one plan-cache event ("grid"/"workload"/"order"/"estimate")
  /// into the matching hit/miss field. Unknown artifacts are ignored.
  void count_cache(std::string_view artifact, bool hit) noexcept {
    if (artifact == "grid") {
      ++(hit ? grid_hits : grid_misses);
    } else if (artifact == "workload") {
      ++(hit ? workload_hits : workload_misses);
    } else if (artifact == "order") {
      ++(hit ? order_hits : order_misses);
    } else if (artifact == "estimate") {
      ++(hit ? estimate_hits : estimate_misses);
    }
  }

  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return grid_hits + workload_hits + order_hits + estimate_hits;
  }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return grid_misses + workload_misses + order_misses + estimate_misses;
  }
};

/// Request-scoped observability bundle threaded through the pipeline
/// (PlanSource::request_obs() -> plan_and_execute -> ExecutionInputs).
/// Null members degrade gracefully; ctx.request_id == 0 means "not a
/// tracked request" and suppresses request-span emission entirely, so
/// direct engine runs stay byte-identical to their pre-request-span
/// traces.
struct RequestObs {
  Tracer* tracer = nullptr;  ///< service channel (request span tree)
  SpanContext ctx;           ///< request id + parent span id
  FlightRecorder* recorder = nullptr;
  RequestBreakdown* breakdown = nullptr;
};

}  // namespace gsj::obs
