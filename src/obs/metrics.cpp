#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "common/check.hpp"
#include "common/json.hpp"

namespace gsj::obs {

std::string labeled(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(name);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

// --- FixedHistogram ---------------------------------------------------------

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(nbuckets)),
      counts_(nbuckets) {
  GSJ_CHECK(hi > lo && nbuckets >= 1);
}

void FixedHistogram::observe(double x) noexcept {
  if (x < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto b = static_cast<std::size_t>((x - lo_) / width_);
  b = std::min(b, counts_.size() - 1);  // float-edge clamp
  counts_[b].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t FixedHistogram::total() const noexcept {
  std::uint64_t t = underflow() + overflow();
  for (const auto& c : counts_) t += c.load(std::memory_order_relaxed);
  return t;
}

double FixedHistogram::percentile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return lo_;
  const double rank = q / 100.0 * static_cast<double>(n);
  std::uint64_t seen = underflow();
  if (static_cast<double>(seen) >= rank && seen > 0) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t c = counts_[b].load(std::memory_order_relaxed);
    if (static_cast<double>(seen + c) >= rank && c > 0) {
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(c);
      return lo_ + width_ * (static_cast<double>(b) + std::clamp(into, 0.0, 1.0));
    }
    seen += c;
  }
  return hi_;
}

void FixedHistogram::merge_from(const FixedHistogram& other) noexcept {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b].fetch_add(other.counts_[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  underflow_.fetch_add(other.underflow(), std::memory_order_relaxed);
  overflow_.fetch_add(other.overflow(), std::memory_order_relaxed);
}

// --- CycleHistogram ---------------------------------------------------------

CycleHistogram::CycleHistogram()
    // Exact region [0, 2*kSubBuckets) plus (64 - kSubBucketBits - 1)
    // log blocks of kSubBuckets sub-buckets each.
    : counts_(2 * kSubBuckets +
              (64 - kSubBucketBits - 1) * static_cast<std::size_t>(kSubBuckets)) {}

std::size_t CycleHistogram::bucket_index(std::uint64_t v) noexcept {
  if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);  // exact
  const int e = std::bit_width(v) - 1;  // e >= kSubBucketBits + 1
  const auto sub = static_cast<std::size_t>(
      (v >> (e - kSubBucketBits)) - kSubBuckets);  // in [0, kSubBuckets)
  return static_cast<std::size_t>(2 * kSubBuckets) +
         static_cast<std::size_t>(e - kSubBucketBits - 1) * kSubBuckets + sub;
}

std::uint64_t CycleHistogram::bucket_upper(std::size_t idx) noexcept {
  if (idx < 2 * kSubBuckets) return idx;  // exact
  const std::size_t rel = idx - 2 * kSubBuckets;
  const int e = static_cast<int>(rel / kSubBuckets) + kSubBucketBits + 1;
  const std::uint64_t sub = rel % kSubBuckets + kSubBuckets;
  const std::uint64_t lower = sub << (e - kSubBucketBits);
  return lower + (std::uint64_t{1} << (e - kSubBucketBits)) - 1;
}

void CycleHistogram::record(std::uint64_t v) noexcept {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
}

std::uint64_t CycleHistogram::min() const noexcept {
  return total() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t CycleHistogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double CycleHistogram::mean() const noexcept {
  const std::uint64_t n = total();
  return n == 0 ? 0.0
                : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                      static_cast<double>(n);
}

std::uint64_t CycleHistogram::percentile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(n)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= target) return std::min(bucket_upper(b), max());
  }
  return max();
}

void CycleHistogram::merge_from(const CycleHistogram& other) noexcept {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b].fetch_add(other.counts_[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  total_.fetch_add(other.total(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  if (other.total() > 0) {
    std::uint64_t v = other.min_.load(std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    v = other.max_.load(std::memory_order_relaxed);
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
}

// --- Registry ---------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

FixedHistogram& Registry::histogram(std::string_view name, double lo,
                                    double hi, std::size_t nbuckets) {
  std::lock_guard lk(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_
             .emplace(std::string(name),
                      std::make_unique<FixedHistogram>(lo, hi, nbuckets))
             .first;
  } else {
    GSJ_CHECK_MSG(it->second->lo() == lo && it->second->hi() == hi &&
                      it->second->buckets() == nbuckets,
                  "histogram '" << name << "' re-registered with a "
                                << "different shape");
  }
  return *it->second;
}

CycleHistogram& Registry::cycle_histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = cycles_.find(name);
  if (it == cycles_.end()) {
    it = cycles_.emplace(std::string(name), std::make_unique<CycleHistogram>())
             .first;
  }
  return *it->second;
}

void Registry::merge_from(const Registry& other) {
  // Snapshot other's names first (other's mutex), then merge through the
  // public accessors (this' mutex) — never both at once.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::pair<bool, double>>> gauges;
  std::vector<std::pair<std::string, const FixedHistogram*>> hists;
  std::vector<std::pair<std::string, const CycleHistogram*>> cycles;
  {
    std::lock_guard lk(other.mu_);
    for (const auto& [k, v] : other.counters_) counters.emplace_back(k, v->value());
    for (const auto& [k, v] : other.gauges_) {
      gauges.emplace_back(k, std::make_pair(v->is_set(), v->value()));
    }
    for (const auto& [k, v] : other.hists_) hists.emplace_back(k, v.get());
    for (const auto& [k, v] : other.cycles_) cycles.emplace_back(k, v.get());
  }
  for (const auto& [k, v] : counters) counter(k).add(v);
  for (const auto& [k, sv] : gauges) {
    if (sv.first) gauge(k).set(sv.second);
  }
  for (const auto& [k, h] : hists) {
    histogram(k, h->lo(), h->hi(), h->buckets()).merge_from(*h);
  }
  for (const auto& [k, h] : cycles) cycle_histogram(k).merge_from(*h);
}

std::size_t Registry::size() const {
  std::lock_guard lk(mu_);
  return counters_.size() + gauges_.size() + hists_.size() + cycles_.size();
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  json::JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters_) w.key(k).value(v->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges_) w.key(k).value(v->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, h] : hists_) {
    w.key(k).begin_object();
    w.key("total").value(h->total());
    w.key("underflow").value(h->underflow());
    w.key("overflow").value(h->overflow());
    w.key("p50").value(h->percentile(50));
    w.key("p95").value(h->percentile(95));
    w.key("p99").value(h->percentile(99));
    w.end_object();
  }
  for (const auto& [k, h] : cycles_) {
    w.key(k).begin_object();
    w.key("total").value(h->total());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->percentile(50));
    w.key("p95").value(h->percentile(95));
    w.key("p99").value(h->percentile(99));
    w.end_object();
  }
  w.end_object();  // "histograms"
  w.end_object();  // root
  os << '\n';
}

void Registry::write_csv(std::ostream& os) const {
  std::lock_guard lk(mu_);
  os << "kind,name,field,value\n";
  for (const auto& [k, v] : counters_) {
    os << "counter," << k << ",value," << v->value() << '\n';
  }
  for (const auto& [k, v] : gauges_) {
    os << "gauge," << k << ",value," << json::format_double(v->value())
       << '\n';
  }
  for (const auto& [k, h] : hists_) {
    os << "histogram," << k << ",total," << h->total() << '\n';
    os << "histogram," << k << ",p50," << json::format_double(h->percentile(50))
       << '\n';
    os << "histogram," << k << ",p95," << json::format_double(h->percentile(95))
       << '\n';
    os << "histogram," << k << ",p99," << json::format_double(h->percentile(99))
       << '\n';
  }
  for (const auto& [k, h] : cycles_) {
    os << "cycle_histogram," << k << ",total," << h->total() << '\n';
    os << "cycle_histogram," << k << ",min," << h->min() << '\n';
    os << "cycle_histogram," << k << ",max," << h->max() << '\n';
    os << "cycle_histogram," << k << ",mean," << json::format_double(h->mean())
       << '\n';
    os << "cycle_histogram," << k << ",p50," << h->percentile(50) << '\n';
    os << "cycle_histogram," << k << ",p95," << h->percentile(95) << '\n';
    os << "cycle_histogram," << k << ",p99," << h->percentile(99) << '\n';
  }
}

}  // namespace gsj::obs
