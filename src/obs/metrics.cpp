#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "common/check.hpp"
#include "common/json.hpp"

namespace gsj::obs {

namespace {

[[nodiscard]] bool base_char_ok(char c, bool first) noexcept {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == '.' || c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

[[nodiscard]] bool label_key_char_ok(char c, bool first) noexcept {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

[[nodiscard]] bool label_value_char_ok(char c) noexcept {
  return c != '{' && c != '}' && c != ',' && c != '"' && c != '\\';
}

/// Lock-free accumulate for the FixedHistogram observation sum.
void add_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool is_valid_metric_name(std::string_view name) noexcept {
  const std::size_t brace = name.find('{');
  const std::string_view base = name.substr(0, brace);
  if (base.empty()) return false;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (!base_char_ok(base[i], i == 0)) return false;
  }
  if (brace == std::string_view::npos) return true;
  std::string_view rest = name.substr(brace + 1);
  if (rest.empty() || rest.back() != '}') return false;
  rest.remove_suffix(1);
  if (rest.find('{') != std::string_view::npos) return false;
  // k=v pairs, comma separated.
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    const std::string_view key = pair.substr(0, eq);
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (!label_key_char_ok(key[i], i == 0)) return false;
    }
    for (const char c : pair.substr(eq + 1)) {
      if (!label_value_char_ok(c)) return false;
    }
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return true;
}

std::string sanitize_metric_name(std::string_view name) {
  if (is_valid_metric_name(name)) return std::string(name);
  std::string out;
  out.reserve(name.size());
  const std::size_t brace = name.find('{');
  const std::string_view base = name.substr(0, brace);
  if (base.empty()) {
    out += '_';
  } else {
    for (std::size_t i = 0; i < base.size(); ++i) {
      out += base_char_ok(base[i], i == 0) ? base[i] : '_';
    }
  }
  if (brace == std::string_view::npos) return out;
  const std::string_view rest = name.substr(brace);
  // Keep a well-formed {k=v,...} block (sanitizing each key/value
  // character); anything structurally broken folds into the base.
  if (rest.size() >= 2 && rest.back() == '}' &&
      rest.find('{', 1) == std::string_view::npos) {
    out += '{';
    bool key = true;    // scanning a key (vs a value)
    bool first = true;  // first char of the current key
    for (const char c : rest.substr(1, rest.size() - 2)) {
      if (key && c == '=') {
        out += '=';
        key = false;
        continue;
      }
      if (!key && c == ',') {
        out += ',';
        key = true;
        first = true;
        continue;
      }
      if (key) {
        out += label_key_char_ok(c, first) ? c : '_';
        first = false;
      } else {
        out += label_value_char_ok(c) ? c : '_';
      }
    }
    out += '}';
    return out;
  }
  for (const char c : rest) {
    out += base_char_ok(c, false) ? c : '_';
  }
  return out;
}

std::string labeled(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(name);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

// --- FixedHistogram ---------------------------------------------------------

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(nbuckets)),
      counts_(nbuckets) {
  GSJ_CHECK(hi > lo && nbuckets >= 1);
}

void FixedHistogram::observe(double x) noexcept {
  add_double(sum_, x);
  if (x < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto b = static_cast<std::size_t>((x - lo_) / width_);
  b = std::min(b, counts_.size() - 1);  // float-edge clamp
  counts_[b].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t FixedHistogram::total() const noexcept {
  std::uint64_t t = underflow() + overflow();
  for (const auto& c : counts_) t += c.load(std::memory_order_relaxed);
  return t;
}

double FixedHistogram::percentile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return lo_;
  const double rank = q / 100.0 * static_cast<double>(n);
  std::uint64_t seen = underflow();
  if (static_cast<double>(seen) >= rank && seen > 0) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t c = counts_[b].load(std::memory_order_relaxed);
    if (static_cast<double>(seen + c) >= rank && c > 0) {
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(c);
      return lo_ + width_ * (static_cast<double>(b) + std::clamp(into, 0.0, 1.0));
    }
    seen += c;
  }
  return hi_;
}

void FixedHistogram::merge_from(const FixedHistogram& other) noexcept {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b].fetch_add(other.counts_[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  underflow_.fetch_add(other.underflow(), std::memory_order_relaxed);
  overflow_.fetch_add(other.overflow(), std::memory_order_relaxed);
  add_double(sum_, other.sum());
}

// --- CycleHistogram ---------------------------------------------------------

CycleHistogram::CycleHistogram()
    // Exact region [0, 2*kSubBuckets) plus (64 - kSubBucketBits - 1)
    // log blocks of kSubBuckets sub-buckets each.
    : counts_(2 * kSubBuckets +
              (64 - kSubBucketBits - 1) * static_cast<std::size_t>(kSubBuckets)) {}

std::size_t CycleHistogram::bucket_index(std::uint64_t v) noexcept {
  if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);  // exact
  const int e = std::bit_width(v) - 1;  // e >= kSubBucketBits + 1
  const auto sub = static_cast<std::size_t>(
      (v >> (e - kSubBucketBits)) - kSubBuckets);  // in [0, kSubBuckets)
  return static_cast<std::size_t>(2 * kSubBuckets) +
         static_cast<std::size_t>(e - kSubBucketBits - 1) * kSubBuckets + sub;
}

std::uint64_t CycleHistogram::bucket_upper(std::size_t idx) noexcept {
  if (idx < 2 * kSubBuckets) return idx;  // exact
  const std::size_t rel = idx - 2 * kSubBuckets;
  const int e = static_cast<int>(rel / kSubBuckets) + kSubBucketBits + 1;
  const std::uint64_t sub = rel % kSubBuckets + kSubBuckets;
  const std::uint64_t lower = sub << (e - kSubBucketBits);
  return lower + (std::uint64_t{1} << (e - kSubBucketBits)) - 1;
}

void CycleHistogram::record(std::uint64_t v) noexcept {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
}

std::uint64_t CycleHistogram::min() const noexcept {
  return total() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t CycleHistogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double CycleHistogram::mean() const noexcept {
  const std::uint64_t n = total();
  return n == 0 ? 0.0
                : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                      static_cast<double>(n);
}

std::uint64_t CycleHistogram::percentile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(n)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= target) return std::min(bucket_upper(b), max());
  }
  return max();
}

void CycleHistogram::merge_from(const CycleHistogram& other) noexcept {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b].fetch_add(other.counts_[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  total_.fetch_add(other.total(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  if (other.total() > 0) {
    std::uint64_t v = other.min_.load(std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    v = other.max_.load(std::memory_order_relaxed);
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
}

// --- Registry ---------------------------------------------------------------

namespace {

/// Registration-time name hygiene: assert in debug, sanitize in
/// release (a conforming name passes through unchanged either way).
std::string normalize_name(std::string_view name) {
#ifndef NDEBUG
  GSJ_CHECK_MSG(is_valid_metric_name(name),
                "metric name '" << name
                                << "' violates the OpenMetrics charset");
#endif
  return sanitize_metric_name(name);
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  const std::string key = normalize_name(name);
  std::lock_guard lk(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::string key = normalize_name(name);
  std::lock_guard lk(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

FixedHistogram& Registry::histogram(std::string_view name, double lo,
                                    double hi, std::size_t nbuckets) {
  const std::string key = normalize_name(name);
  std::lock_guard lk(mu_);
  auto it = hists_.find(key);
  if (it == hists_.end()) {
    it = hists_
             .emplace(key, std::make_unique<FixedHistogram>(lo, hi, nbuckets))
             .first;
  } else {
    GSJ_CHECK_MSG(it->second->lo() == lo && it->second->hi() == hi &&
                      it->second->buckets() == nbuckets,
                  "histogram '" << name << "' re-registered with a "
                                << "different shape");
  }
  return *it->second;
}

CycleHistogram& Registry::cycle_histogram(std::string_view name) {
  const std::string key = normalize_name(name);
  std::lock_guard lk(mu_);
  auto it = cycles_.find(key);
  if (it == cycles_.end()) {
    it = cycles_.emplace(key, std::make_unique<CycleHistogram>()).first;
  }
  return *it->second;
}

TimeHistogram& Registry::time_histogram(std::string_view name) {
  const std::string key = normalize_name(name);
  std::lock_guard lk(mu_);
  auto it = times_.find(key);
  if (it == times_.end()) {
    it = times_.emplace(key, std::make_unique<TimeHistogram>()).first;
  }
  return *it->second;
}

void Registry::merge_from(const Registry& other) {
  // Snapshot other's names first (other's mutex), then merge through the
  // public accessors (this' mutex) — never both at once.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::pair<bool, double>>> gauges;
  std::vector<std::pair<std::string, const FixedHistogram*>> hists;
  std::vector<std::pair<std::string, const CycleHistogram*>> cycles;
  std::vector<std::pair<std::string, const TimeHistogram*>> times;
  {
    std::lock_guard lk(other.mu_);
    for (const auto& [k, v] : other.counters_) counters.emplace_back(k, v->value());
    for (const auto& [k, v] : other.gauges_) {
      gauges.emplace_back(k, std::make_pair(v->is_set(), v->value()));
    }
    for (const auto& [k, v] : other.hists_) hists.emplace_back(k, v.get());
    for (const auto& [k, v] : other.cycles_) cycles.emplace_back(k, v.get());
    for (const auto& [k, v] : other.times_) times.emplace_back(k, v.get());
  }
  for (const auto& [k, v] : counters) counter(k).add(v);
  for (const auto& [k, sv] : gauges) {
    if (sv.first) gauge(k).set(sv.second);
  }
  for (const auto& [k, h] : hists) {
    histogram(k, h->lo(), h->hi(), h->buckets()).merge_from(*h);
  }
  for (const auto& [k, h] : cycles) cycle_histogram(k).merge_from(*h);
  for (const auto& [k, h] : times) time_histogram(k).merge_from(*h);
}

std::size_t Registry::size() const {
  std::lock_guard lk(mu_);
  return counters_.size() + gauges_.size() + hists_.size() + cycles_.size() +
         times_.size();
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  json::JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters_) w.key(k).value(v->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges_) w.key(k).value(v->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, h] : hists_) {
    w.key(k).begin_object();
    w.key("total").value(h->total());
    w.key("underflow").value(h->underflow());
    w.key("overflow").value(h->overflow());
    w.key("p50").value(h->percentile(50));
    w.key("p95").value(h->percentile(95));
    w.key("p99").value(h->percentile(99));
    w.end_object();
  }
  for (const auto& [k, h] : cycles_) {
    w.key(k).begin_object();
    w.key("total").value(h->total());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->percentile(50));
    w.key("p95").value(h->percentile(95));
    w.key("p99").value(h->percentile(99));
    w.end_object();
  }
  for (const auto& [k, h] : times_) {
    w.key(k).begin_object();
    w.key("total").value(h->total());
    w.key("min").value(h->min_seconds());
    w.key("max").value(h->max_seconds());
    w.key("mean").value(h->mean_seconds());
    w.key("p50").value(h->percentile_seconds(50));
    w.key("p95").value(h->percentile_seconds(95));
    w.key("p99").value(h->percentile_seconds(99));
    w.end_object();
  }
  w.end_object();  // "histograms"
  w.end_object();  // root
  os << '\n';
}

void Registry::write_csv(std::ostream& os) const {
  std::lock_guard lk(mu_);
  os << "kind,name,field,value\n";
  for (const auto& [k, v] : counters_) {
    os << "counter," << k << ",value," << v->value() << '\n';
  }
  for (const auto& [k, v] : gauges_) {
    os << "gauge," << k << ",value," << json::format_double(v->value())
       << '\n';
  }
  for (const auto& [k, h] : hists_) {
    os << "histogram," << k << ",total," << h->total() << '\n';
    os << "histogram," << k << ",p50," << json::format_double(h->percentile(50))
       << '\n';
    os << "histogram," << k << ",p95," << json::format_double(h->percentile(95))
       << '\n';
    os << "histogram," << k << ",p99," << json::format_double(h->percentile(99))
       << '\n';
  }
  for (const auto& [k, h] : cycles_) {
    os << "cycle_histogram," << k << ",total," << h->total() << '\n';
    os << "cycle_histogram," << k << ",min," << h->min() << '\n';
    os << "cycle_histogram," << k << ",max," << h->max() << '\n';
    os << "cycle_histogram," << k << ",mean," << json::format_double(h->mean())
       << '\n';
    os << "cycle_histogram," << k << ",p50," << h->percentile(50) << '\n';
    os << "cycle_histogram," << k << ",p95," << h->percentile(95) << '\n';
    os << "cycle_histogram," << k << ",p99," << h->percentile(99) << '\n';
  }
  for (const auto& [k, h] : times_) {
    os << "time_histogram," << k << ",total," << h->total() << '\n';
    os << "time_histogram," << k << ",min,"
       << json::format_double(h->min_seconds()) << '\n';
    os << "time_histogram," << k << ",max,"
       << json::format_double(h->max_seconds()) << '\n';
    os << "time_histogram," << k << ",mean,"
       << json::format_double(h->mean_seconds()) << '\n';
    os << "time_histogram," << k << ",p50,"
       << json::format_double(h->percentile_seconds(50)) << '\n';
    os << "time_histogram," << k << ",p95,"
       << json::format_double(h->percentile_seconds(95)) << '\n';
    os << "time_histogram," << k << ",p99,"
       << json::format_double(h->percentile_seconds(99)) << '\n';
  }
}

// --- OpenMetrics exposition -------------------------------------------------

namespace {

/// Splits a registry key into its mangled family name (dots ->
/// underscores) and its label block rendered with quoted values
/// ('k=v,...' -> 'k="v",...'; empty for unlabeled keys).
struct ExpoName {
  std::string family;
  std::string labels;  ///< rendered pairs, no braces
};

ExpoName expo_name(std::string_view key) {
  ExpoName out;
  const std::size_t brace = key.find('{');
  const std::string_view base = key.substr(0, brace);
  out.family.reserve(base.size());
  for (const char c : base) out.family += c == '.' ? '_' : c;
  if (brace == std::string_view::npos) return out;
  std::string_view rest = key.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    const std::size_t eq = pair.find('=');
    if (!out.labels.empty()) out.labels += ',';
    if (eq == std::string_view::npos) {
      out.labels += pair;
      out.labels += "=\"\"";
    } else {
      out.labels += pair.substr(0, eq);
      out.labels += "=\"";
      out.labels += pair.substr(eq + 1);
      out.labels += '"';
    }
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return out;
}

/// "name{labels}" or "name{labels,extra}" — `extra` is a pre-rendered
/// pair like quantile="0.5" appended after the key's own labels.
std::string expo_series(const ExpoName& n, std::string_view suffix,
                        std::string_view extra = {}) {
  std::string out = n.family;
  out += suffix;
  if (n.labels.empty() && extra.empty()) return out;
  out += '{';
  out += n.labels;
  if (!extra.empty()) {
    if (!n.labels.empty()) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// Emits one "# TYPE <family> <type>" line when the family changes
/// (map order keeps equal-base keys adjacent, so each family's samples
/// stay grouped as the exposition format requires).
void type_line(std::ostream& os, std::string& last, const std::string& family,
               const char* type) {
  if (family == last) return;
  os << "# TYPE " << family << ' ' << type << '\n';
  last = family;
}

}  // namespace

void Registry::write_openmetrics(std::ostream& os) const {
  std::lock_guard lk(mu_);
  std::string last_family;
  for (const auto& [k, v] : counters_) {
    const ExpoName n = expo_name(k);
    type_line(os, last_family, n.family, "counter");
    os << expo_series(n, "_total") << ' ' << v->value() << '\n';
  }
  for (const auto& [k, v] : gauges_) {
    const ExpoName n = expo_name(k);
    type_line(os, last_family, n.family, "gauge");
    os << expo_series(n, "") << ' ' << json::format_double(v->value())
       << '\n';
  }
  for (const auto& [k, h] : hists_) {
    const ExpoName n = expo_name(k);
    type_line(os, last_family, n.family, "histogram");
    // Cumulative le buckets. Underflow values are < lo, hence <= every
    // finite upper bound, so they seed the running count.
    std::uint64_t cum = h->underflow();
    for (std::size_t b = 0; b < h->buckets(); ++b) {
      cum += h->bucket_count(b);
      const double upper =
          h->lo() + (h->hi() - h->lo()) *
                        (static_cast<double>(b + 1) /
                         static_cast<double>(h->buckets()));
      std::string le = "le=\"";
      le += json::format_double(upper);
      le += '"';
      os << expo_series(n, "_bucket", le) << ' ' << cum << '\n';
    }
    os << expo_series(n, "_bucket", "le=\"+Inf\"") << ' ' << h->total()
       << '\n';
    os << expo_series(n, "_sum") << ' ' << json::format_double(h->sum())
       << '\n';
    os << expo_series(n, "_count") << ' ' << h->total() << '\n';
  }
  for (const auto& [k, h] : cycles_) {
    const ExpoName n = expo_name(k);
    type_line(os, last_family, n.family, "summary");
    os << expo_series(n, "", "quantile=\"0.5\"") << ' ' << h->percentile(50)
       << '\n';
    os << expo_series(n, "", "quantile=\"0.95\"") << ' ' << h->percentile(95)
       << '\n';
    os << expo_series(n, "", "quantile=\"0.99\"") << ' ' << h->percentile(99)
       << '\n';
    os << expo_series(n, "_sum") << ' ' << h->sum() << '\n';
    os << expo_series(n, "_count") << ' ' << h->total() << '\n';
  }
  for (const auto& [k, h] : times_) {
    const ExpoName n = expo_name(k);
    type_line(os, last_family, n.family, "summary");
    os << expo_series(n, "", "quantile=\"0.5\"")
       << ' ' << json::format_double(h->percentile_seconds(50)) << '\n';
    os << expo_series(n, "", "quantile=\"0.95\"")
       << ' ' << json::format_double(h->percentile_seconds(95)) << '\n';
    os << expo_series(n, "", "quantile=\"0.99\"")
       << ' ' << json::format_double(h->percentile_seconds(99)) << '\n';
    os << expo_series(n, "_sum") << ' '
       << json::format_double(h->sum_seconds()) << '\n';
    os << expo_series(n, "_count") << ' ' << h->total() << '\n';
  }
  os << "# EOF\n";
}

}  // namespace gsj::obs
