#include "obs/trace.hpp"

#include <ostream>
#include <utility>

#include "common/json.hpp"
#include "common/thread_pool.hpp"

namespace gsj::obs {

std::uint64_t Tracer::now() {
  if (mode_ == TimeMode::Logical) {
    std::lock_guard lk(mu_);
    return logical_++;
  }
  return static_cast<std::uint64_t>(wall_.seconds() * 1e6);
}

Tracer::Span Tracer::span(std::string name) {
  const std::uint64_t start = now();
  return Span(this, std::move(name), start);
}

Tracer::Span Tracer::span(std::string name, SpanContext ctx) {
  const std::uint64_t start = now();
  return Span(this, std::move(name), start, next_span_id(), ctx);
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  Tracer* t = std::exchange(tracer_, nullptr);
  const std::uint64_t end = t->now();
  HostSpan s;
  s.name = std::move(name_);
  s.ts = start_;
  s.dur = end > start_ ? end - start_ : 0;
  s.tid = ThreadPool::current_worker() + 1;  // -1 (main) -> tid 0
  s.id = id_;
  s.parent = ctx_.parent_span;
  s.request = ctx_.request_id;
  std::lock_guard lk(t->mu_);
  t->spans_.push_back(std::move(s));
}

void Tracer::record_span(std::string name, std::uint64_t ts, std::uint64_t dur,
                         SpanContext ctx, std::uint64_t id) {
  HostSpan s;
  s.name = std::move(name);
  s.ts = ts;
  s.dur = dur;
  s.tid = ThreadPool::current_worker() + 1;
  s.id = id;
  s.parent = ctx.parent_span;
  s.request = ctx.request_id;
  std::lock_guard lk(mu_);
  spans_.push_back(std::move(s));
}

void Tracer::record_warp(const simt::WarpRecord& rec,
                         std::uint64_t cycle_offset, std::uint32_t batch) {
  WarpEvent ev;
  ev.warp_id = rec.warp_id;
  ev.dispatch_seq = rec.dispatch_seq;
  ev.start_cycle = cycle_offset + rec.start_cycle;
  ev.cycles = rec.cycles;
  ev.steps = rec.steps;
  ev.active_lane_steps = rec.active_lane_steps;
  ev.slot = rec.slot;
  ev.batch = batch;
  std::lock_guard lk(mu_);
  warps_.push_back(ev);
}

void Tracer::record_batch(const BatchEvent& ev) {
  std::lock_guard lk(mu_);
  batches_.push_back(ev);
}

std::size_t Tracer::host_span_count() const {
  std::lock_guard lk(mu_);
  return spans_.size();
}

std::size_t Tracer::warp_event_count() const {
  std::lock_guard lk(mu_);
  return warps_.size();
}

std::size_t Tracer::batch_event_count() const {
  std::lock_guard lk(mu_);
  return batches_.size();
}

std::vector<WarpEvent> Tracer::warp_events() const {
  std::lock_guard lk(mu_);
  return warps_;
}

std::vector<BatchEvent> Tracer::batch_events() const {
  std::lock_guard lk(mu_);
  return batches_;
}

std::vector<HostSpan> Tracer::host_spans() const {
  std::lock_guard lk(mu_);
  return spans_;
}

void Tracer::set_device_config(const simt::DeviceConfig& cfg) {
  std::lock_guard lk(mu_);
  num_sms_ = cfg.num_sms;
  resident_warps_per_sm_ = cfg.resident_warps_per_sm;
}

namespace {

constexpr std::int64_t kHostPid = 0;
constexpr std::int64_t kDevicePid = 1;
/// Chrome tid of the per-batch row on the device process (placed after
/// any plausible slot count).
constexpr std::int64_t kBatchTid = 1'000'000;

void meta_event(json::JsonWriter& w, const char* what, std::int64_t pid,
                std::int64_t tid, const std::string& name, bool thread_scope) {
  w.begin_object();
  w.key("name").value(what);
  w.key("ph").value("M");
  w.key("pid").value(pid);
  if (thread_scope) w.key("tid").value(tid);
  w.key("args").begin_object().key("name").value(name).end_object();
  w.end_object();
  w.newline();
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  json::JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  w.newline();

  // Process/thread naming metadata.
  meta_event(w, "process_name", kHostPid, 0, "host", false);
  meta_event(w, "process_name", kDevicePid, 0, "device (SIMT model)", false);
  meta_event(w, "thread_name", kHostPid, 0, "main", true);
  meta_event(w, "thread_name", kDevicePid, kBatchTid, "batches", true);
  if (num_sms_ > 0 && resident_warps_per_sm_ > 0) {
    for (int s = 0; s < num_sms_ * resident_warps_per_sm_; ++s) {
      meta_event(w, "thread_name", kDevicePid, s,
                 "sm" + std::to_string(s / resident_warps_per_sm_) + ".w" +
                     std::to_string(s % resident_warps_per_sm_),
                 true);
    }
  }

  for (const HostSpan& s : spans_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("ph").value("X");
    w.key("ts").value(s.ts);
    w.key("dur").value(s.dur);
    w.key("pid").value(kHostPid);
    w.key("tid").value(s.tid);
    if (s.request != 0) {
      // Request attribution is additive: spans without a request id
      // (every pre-request-span producer) serialize exactly as before.
      w.key("args").begin_object();
      w.key("request").value(s.request);
      w.key("id").value(s.id);
      w.key("parent").value(s.parent);
      w.end_object();
    }
    w.end_object();
    w.newline();
  }

  for (const BatchEvent& b : batches_) {
    w.begin_object();
    w.key("name").value("batch " + std::to_string(b.index));
    w.key("ph").value("X");
    w.key("ts").value(b.start_cycle);
    w.key("dur").value(b.makespan_cycles);
    w.key("pid").value(kDevicePid);
    w.key("tid").value(kBatchTid);
    w.key("args").begin_object();
    w.key("batch").value(std::uint64_t{b.index});
    w.key("warps").value(b.warps);
    w.key("result_pairs").value(b.result_pairs);
    w.key("wee_percent").value(b.wee_percent);
    w.end_object();
    w.end_object();
    w.newline();
  }

  for (const WarpEvent& e : warps_) {
    w.begin_object();
    w.key("name").value("warp " + std::to_string(e.warp_id));
    w.key("ph").value("X");
    w.key("ts").value(e.start_cycle);
    w.key("dur").value(e.cycles);
    w.key("pid").value(kDevicePid);
    w.key("tid").value(std::int64_t{e.slot});
    w.key("args").begin_object();
    w.key("batch").value(std::uint64_t{e.batch});
    w.key("dispatch_seq").value(e.dispatch_seq);
    w.key("steps").value(e.steps);
    w.key("active_lane_steps").value(e.active_lane_steps);
    w.end_object();
    w.end_object();
    w.newline();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

Tracer::Span span(Tracer* t, std::string name) {
  if (t == nullptr) return Tracer::Span(nullptr, std::string(), 0);
  return t->span(std::move(name));
}

Tracer::Span span(Tracer* t, std::string name, SpanContext ctx) {
  if (t == nullptr) return Tracer::Span(nullptr, std::string(), 0);
  return t->span(std::move(name), ctx);
}

}  // namespace gsj::obs
