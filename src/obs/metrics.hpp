// Metrics registry: labeled counters, gauges and histograms with a
// lock-free hot path and worker-shard merging.
//
// Usage pattern (the only pattern that is lock-free):
//
//   obs::Registry reg;
//   obs::Counter& pairs = reg.counter("sj.result_pairs");   // once, locked
//   ...
//   pairs.add(n);                                           // hot, atomic
//
// Registration (the name lookup) takes the registry mutex; the returned
// reference is stable for the registry's lifetime, and every update
// through it is a relaxed atomic operation. Thread-pool workers either
// share instruments (atomics make that safe) or — when even shared
// cache lines are too hot — populate a private Registry each and merge
// the shards with `merge_from` at the end of the parallel phase
// (see superego/super_ego.cpp for the worked example).
//
// Two histogram flavours:
//  * FixedHistogram — equal-width buckets over [lo, hi), for quantities
//    with a known range (percentages, per-batch WEE);
//  * CycleHistogram — HDR-style log-linear buckets over the full uint64
//    range (exact below 64, ≤ ~3.2% relative error above), for
//    latency/cycle-count distributions with unknown dynamic range.
//    Percentile queries walk the bucket array.
//
// Naming scheme (see docs/OBSERVABILITY.md): dot-separated lowercase
// path, optional {key=value,...} label suffix rendered by `labeled`.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gsj::obs {

/// Renders "name{k1=v1,k2=v2}" — the canonical labeled-metric key.
[[nodiscard]] std::string labeled(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Monotonic counter. add() is a relaxed atomic fetch-add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written double value. set() is a relaxed atomic store.
class Gauge {
 public:
  void set(double v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_release);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool is_set() const noexcept {
    return set_.load(std::memory_order_acquire);
  }

 private:
  friend class Registry;
  std::atomic<double> v_{0.0};
  std::atomic<bool> set_{false};
};

/// Equal-width buckets over [lo, hi) plus underflow/overflow counters.
/// observe() is one relaxed atomic increment.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t nbuckets);

  void observe(double x) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    return counts_[b].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept {
    return underflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// Linear-interpolated percentile (q in [0,100]) assuming in-bucket
  /// uniformity; underflow clamps to lo, overflow to hi.
  [[nodiscard]] double percentile(double q) const noexcept;

 private:
  friend class Registry;
  void merge_from(const FixedHistogram& other) noexcept;

  double lo_, hi_, width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> underflow_{0}, overflow_{0};
};

/// HDR-style log-linear histogram over uint64 values (cycles, counts).
/// Values below kSubBuckets*2 record exactly; above, buckets are
/// 2^e-wide ranges split into kSubBuckets linear sub-buckets, bounding
/// the relative quantization error by 1/kSubBuckets.
class CycleHistogram {
 public:
  static constexpr int kSubBucketBits = 5;                  // 32 sub-buckets
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
  /// Worst-case relative error of a percentile query.
  static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;

  CycleHistogram();

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Percentile (q in [0,100]): the upper bound of the bucket holding
  /// the rank-ceil(q/100*total) value. Within kMaxRelativeError of the
  /// exact order statistic; returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

 private:
  friend class Registry;
  void merge_from(const CycleHistogram& other) noexcept;

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx) noexcept;

  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// Owns instruments by name. Lookup/registration is mutex-guarded;
/// returned references are stable and lock-free to update.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  FixedHistogram& histogram(std::string_view name, double lo, double hi,
                            std::size_t nbuckets);
  CycleHistogram& cycle_histogram(std::string_view name);

  /// Accumulates `other` into this registry: counters and histograms
  /// sum; a gauge is overwritten when `other`'s was ever set. Histogram
  /// shapes must agree for same-named fixed histograms.
  void merge_from(const Registry& other);

  /// Flat JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with p50/p95/p99 pre-computed per histogram.
  void write_json(std::ostream& os) const;

  /// CSV: kind,name,field,value — one row per scalar.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  // std::map: deterministic (sorted) export order; unique_ptr: stable
  // addresses across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<FixedHistogram>, std::less<>> hists_;
  std::map<std::string, std::unique_ptr<CycleHistogram>, std::less<>> cycles_;
};

}  // namespace gsj::obs
