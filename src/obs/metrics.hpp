// Metrics registry: labeled counters, gauges and histograms with a
// lock-free hot path and worker-shard merging.
//
// Usage pattern (the only pattern that is lock-free):
//
//   obs::Registry reg;
//   obs::Counter& pairs = reg.counter("sj.result_pairs");   // once, locked
//   ...
//   pairs.add(n);                                           // hot, atomic
//
// Registration (the name lookup) takes the registry mutex; the returned
// reference is stable for the registry's lifetime, and every update
// through it is a relaxed atomic operation. Thread-pool workers either
// share instruments (atomics make that safe) or — when even shared
// cache lines are too hot — populate a private Registry each and merge
// the shards with `merge_from` at the end of the parallel phase
// (see superego/super_ego.cpp for the worked example).
//
// Two histogram flavours:
//  * FixedHistogram — equal-width buckets over [lo, hi), for quantities
//    with a known range (percentages, per-batch WEE);
//  * CycleHistogram — HDR-style log-linear buckets over the full uint64
//    range (exact below 64, ≤ ~3.2% relative error above), for
//    latency/cycle-count distributions with unknown dynamic range.
//    Percentile queries walk the bucket array.
//
// Naming scheme (see docs/OBSERVABILITY.md): dot-separated lowercase
// path, optional {key=value,...} label suffix rendered by `labeled`.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gsj::obs {

/// Renders "name{k1=v1,k2=v2}" — the canonical labeled-metric key.
[[nodiscard]] std::string labeled(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// True when `name` is a valid registry key: a dot-path base matching
/// [a-zA-Z_.:][a-zA-Z0-9_.:]* (dots mangle to underscores in the
/// OpenMetrics exposition) plus an optional well-formed {k=v,...}
/// label suffix with keys matching [a-zA-Z_][a-zA-Z0-9_]* and values
/// free of '{' '}' ',' '"' '\'.
[[nodiscard]] bool is_valid_metric_name(std::string_view name) noexcept;

/// Returns `name` with every charset violation replaced by '_' (label
/// structure is preserved when well formed). Idempotent; the identity
/// on valid names. Registration applies this in release builds and
/// asserts validity in debug builds.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Monotonic counter. add() is a relaxed atomic fetch-add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written double value. set() is a relaxed atomic store.
class Gauge {
 public:
  void set(double v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_release);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool is_set() const noexcept {
    return set_.load(std::memory_order_acquire);
  }

 private:
  friend class Registry;
  std::atomic<double> v_{0.0};
  std::atomic<bool> set_{false};
};

/// Equal-width buckets over [lo, hi) plus underflow/overflow counters.
/// observe() is one relaxed atomic increment.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t nbuckets);

  void observe(double x) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    return counts_[b].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept {
    return underflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept;
  /// Sum of every observed value (under/overflow included) — the
  /// OpenMetrics `_sum` series.
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Linear-interpolated percentile (q in [0,100]) assuming in-bucket
  /// uniformity; underflow clamps to lo, overflow to hi.
  [[nodiscard]] double percentile(double q) const noexcept;

 private:
  friend class Registry;
  void merge_from(const FixedHistogram& other) noexcept;

  double lo_, hi_, width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> underflow_{0}, overflow_{0};
  std::atomic<double> sum_{0.0};  ///< CAS-accumulated observation sum
};

/// HDR-style log-linear histogram over uint64 values (cycles, counts).
/// Values below kSubBuckets*2 record exactly; above, buckets are
/// 2^e-wide ranges split into kSubBuckets linear sub-buckets, bounding
/// the relative quantization error by 1/kSubBuckets.
class CycleHistogram {
 public:
  static constexpr int kSubBucketBits = 5;                  // 32 sub-buckets
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
  /// Worst-case relative error of a percentile query.
  static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;

  CycleHistogram();

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Percentile (q in [0,100]): the upper bound of the bucket holding
  /// the rank-ceil(q/100*total) value. Within kMaxRelativeError of the
  /// exact order statistic; returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

 private:
  friend class Registry;
  friend class TimeHistogram;
  void merge_from(const CycleHistogram& other) noexcept;

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx) noexcept;

  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};

 public:
  /// Sum of every recorded value — the OpenMetrics `_sum` series.
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
};

/// Seconds-valued latency histogram: a CycleHistogram over nanoseconds
/// behind a seconds API, so duration metrics carry the `_seconds` unit
/// suffix the OpenMetrics naming rules want while keeping the HDR
/// sketch's bounded relative error (~3.2%) across nine decades.
class TimeHistogram {
 public:
  static constexpr double kMaxRelativeError =
      CycleHistogram::kMaxRelativeError;

  void observe(double seconds) noexcept {
    h_.record(to_nanos(seconds));
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return h_.total(); }
  [[nodiscard]] double min_seconds() const noexcept {
    return static_cast<double>(h_.min()) * 1e-9;
  }
  [[nodiscard]] double max_seconds() const noexcept {
    return static_cast<double>(h_.max()) * 1e-9;
  }
  [[nodiscard]] double mean_seconds() const noexcept {
    return h_.mean() * 1e-9;
  }
  [[nodiscard]] double sum_seconds() const noexcept {
    return static_cast<double>(h_.sum()) * 1e-9;
  }
  /// q in [0,100]; within kMaxRelativeError of the exact quantile.
  [[nodiscard]] double percentile_seconds(double q) const noexcept {
    return static_cast<double>(h_.percentile(q)) * 1e-9;
  }

 private:
  friend class Registry;
  void merge_from(const TimeHistogram& other) noexcept {
    h_.merge_from(other.h_);
  }
  [[nodiscard]] static std::uint64_t to_nanos(double seconds) noexcept {
    if (seconds <= 0.0) return 0;
    return static_cast<std::uint64_t>(seconds * 1e9);
  }

  CycleHistogram h_;
};

/// Owns instruments by name. Lookup/registration is mutex-guarded;
/// returned references are stable and lock-free to update.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registration validates names against the OpenMetrics charset
  // (is_valid_metric_name): debug builds throw CheckError on a
  // violation, release builds sanitize the name and register under the
  // sanitized key.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  FixedHistogram& histogram(std::string_view name, double lo, double hi,
                            std::size_t nbuckets);
  CycleHistogram& cycle_histogram(std::string_view name);
  TimeHistogram& time_histogram(std::string_view name);

  /// Accumulates `other` into this registry: counters and histograms
  /// sum; a gauge is overwritten when `other`'s was ever set. Histogram
  /// shapes must agree for same-named fixed histograms.
  void merge_from(const Registry& other);

  /// Flat JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with p50/p95/p99 pre-computed per histogram.
  void write_json(std::ostream& os) const;

  /// CSV: kind,name,field,value — one row per scalar.
  void write_csv(std::ostream& os) const;

  /// OpenMetrics/Prometheus text exposition (docs/OBSERVABILITY.md):
  /// dot-path names mangled to underscores, counters as `_total`
  /// samples, FixedHistograms as cumulative-`le` histogram families,
  /// Cycle/TimeHistograms as summaries with p50/p95/p99 quantile
  /// series, `# EOF` terminator. Deterministically ordered (the name
  /// maps are sorted), so two exports of the same state are
  /// byte-identical.
  void write_openmetrics(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  // std::map: deterministic (sorted) export order; unique_ptr: stable
  // addresses across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<FixedHistogram>, std::less<>> hists_;
  std::map<std::string, std::unique_ptr<CycleHistogram>, std::less<>> cycles_;
  std::map<std::string, std::unique_ptr<TimeHistogram>, std::less<>> times_;
};

}  // namespace gsj::obs
