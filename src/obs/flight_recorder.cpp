#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

namespace gsj::obs {

FlightRecorder::FlightRecorder(std::size_t capacity_per_shard,
                               std::size_t shards)
    : capacity_(std::max<std::size_t>(1, capacity_per_shard)),
      shards_(std::max<std::size_t>(1, shards)) {
  for (auto& s : shards_) s.ring = std::make_unique<Slot[]>(capacity_);
}

FlightRecorder::Shard& FlightRecorder::shard_for_thread() noexcept {
  // Each thread claims a shard index once (round-robin over the shard
  // set) and keeps it; threads only ever contend on a shard when more
  // threads than shards record concurrently.
  thread_local std::uint64_t assigned = ~0ull;
  if (assigned == ~0ull) {
    assigned = next_shard_.fetch_add(1, std::memory_order_relaxed);
  }
  return shards_[assigned % shards_.size()];
}

void FlightRecorder::record(const char* name, std::uint64_t request_id,
                            std::uint64_t value) noexcept {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& sh = shard_for_thread();
  const std::uint64_t idx =
      sh.head.fetch_add(1, std::memory_order_relaxed) % capacity_;
  Slot& slot = sh.ring[idx];
  slot.name.store(name, std::memory_order_relaxed);
  slot.request.store(request_id, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  // Publish last: a reader that sees this seq sees the fields above
  // (exactly, once writers quiesce; best-effort under concurrency).
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  for (const Shard& sh : shards_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      const Slot& s = sh.ring[i];
      Event e;
      e.seq = s.seq.load(std::memory_order_acquire);
      if (e.seq == 0) continue;  // never written
      e.request_id = s.request.load(std::memory_order_relaxed);
      e.value = s.value.load(std::memory_order_relaxed);
      e.name = s.name.load(std::memory_order_relaxed);
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

void FlightRecorder::dump(std::ostream& os, std::uint64_t request_id) const {
  for (const Event& e : snapshot()) {
    if (request_id != 0 && e.request_id != request_id) continue;
    os << "req=" << e.request_id << ' '
       << (e.name != nullptr ? e.name : "(null)") << " value=" << e.value
       << '\n';
  }
}

}  // namespace gsj::obs
