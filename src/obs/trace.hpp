// Structured tracer: scoped host-phase spans plus device timeline
// events (batches and warps) from the SIMT simulator, exported as
// Chrome trace-event JSON (open in Perfetto / chrome://tracing).
//
// Timeline layout of the exported trace:
//
//   process 0 "host"    — one Chrome "thread" per host thread: tid 0 is
//       the main thread, tid 1+N is thread-pool worker N (see
//       ThreadPool::current_worker). Host spans are the pipeline phases
//       (grid_build, workload_quantify, sortbywl_sort, batch_plan,
//       estimation_sample, ego_sort, ego_join, ...).
//   process 1 "device"  — one Chrome "thread" per resident-warp slot,
//       named "smS.wR" (SM S, resident slot R); every executed warp is
//       one span on its slot's row, so load imbalance is visible as
//       ragged row ends (kernel tail). A separate "batches" row holds
//       one span per kernel launch.
//
// Time bases. Host spans use wall-clock microseconds since tracer
// construction; device events use model cycles (1 cycle rendered as 1
// Chrome microsecond tick; batches are laid out end-to-end with a
// cumulative offset, matching the sequential-launch model). With
// TimeMode::Logical the host clock is replaced by an event sequence
// counter, making the whole trace a pure function of the execution —
// two runs with identical seeds and configuration serialize to
// byte-identical JSON (the determinism the tests pin down; requires the
// traced host phases to run single-threaded, which the self-join
// pipeline's do).
//
// Thread safety: all recording methods lock a mutex; the hot per-warp
// path appends to a flat vector (no string formatting until export).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "simt/device.hpp"
#include "simt/launch.hpp"

namespace gsj::obs {

enum class TimeMode {
  Wall,     ///< host spans in wall-clock microseconds
  Logical,  ///< host spans in deterministic sequence ticks
};

/// Parent linkage for request-scoped spans (docs/OBSERVABILITY.md,
/// "Request span trees"). request_id == 0 means "no request": such
/// spans export exactly as before this struct existed, so every
/// pre-existing byte-identity bar is untouched.
struct SpanContext {
  std::uint64_t request_id = 0;
  std::uint64_t parent_span = 0;  ///< span id of the parent, 0 = root
};

/// A finished host-phase span (complete "X" event).
struct HostSpan {
  std::string name;
  std::uint64_t ts = 0;   ///< microseconds or logical ticks
  std::uint64_t dur = 0;
  std::int64_t tid = 0;   ///< 0 = main thread, 1+N = pool worker N
  // Request attribution (0/0/0 for plain per-stage spans). Exported in
  // the Chrome "args" object only when request != 0.
  std::uint64_t id = 0;       ///< this span's id (unique per tracer)
  std::uint64_t parent = 0;   ///< parent span id, 0 = root
  std::uint64_t request = 0;  ///< owning request id, 0 = none
};

/// One executed warp on the device timeline.
struct WarpEvent {
  std::uint64_t warp_id = 0;
  std::uint64_t dispatch_seq = 0;
  std::uint64_t start_cycle = 0;  ///< absolute (batch offset applied)
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  std::uint64_t active_lane_steps = 0;
  std::int32_t slot = 0;
  std::uint32_t batch = 0;
};

/// One kernel launch (batch) on the device timeline.
struct BatchEvent {
  std::uint32_t index = 0;
  std::uint64_t start_cycle = 0;  ///< absolute
  std::uint64_t makespan_cycles = 0;
  std::uint64_t warps = 0;
  std::uint64_t result_pairs = 0;
  double wee_percent = 0.0;
};

class Tracer {
 public:
  explicit Tracer(TimeMode mode = TimeMode::Wall) : mode_(mode) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] TimeMode mode() const noexcept { return mode_; }

  /// RAII host-phase span; records on destruction. Move-only.
  class Span {
   public:
    Span(Span&& other) noexcept
        : tracer_(other.tracer_), name_(std::move(other.name_)),
          start_(other.start_), id_(other.id_), ctx_(other.ctx_) {
      other.tracer_ = nullptr;
    }
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// Closes the span early (idempotent).
    void finish();

    /// This span's id (0 for an inert span or one without request
    /// attribution) — pass inside a SpanContext to parent children.
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    /// Context for children of this span: same request, parent = us.
    [[nodiscard]] SpanContext child_context() const noexcept {
      return SpanContext{ctx_.request_id, id_};
    }

   private:
    friend class Tracer;
    friend Span span(Tracer* t, std::string name);
    friend Span span(Tracer* t, std::string name, SpanContext ctx);
    Span(Tracer* t, std::string name, std::uint64_t start,
         std::uint64_t id = 0, SpanContext ctx = {})
        : tracer_(t), name_(std::move(name)), start_(start), id_(id),
          ctx_(ctx) {}

    Tracer* tracer_;  ///< nullptr when tracing disabled or finished
    std::string name_;
    std::uint64_t start_ = 0;
    std::uint64_t id_ = 0;
    SpanContext ctx_;
  };

  /// Opens a host-phase span attributed to the calling thread. Safe to
  /// call on a null tracer via the free helper `span(Tracer*, name)`.
  [[nodiscard]] Span span(std::string name);

  /// Opens a request-attributed span: it records `ctx`'s request id and
  /// parent, and is assigned a fresh span id (Span::id) so children can
  /// parent under it.
  [[nodiscard]] Span span(std::string name, SpanContext ctx);

  /// Current host timestamp (microseconds or logical tick). Exposed so
  /// callers can record synthetic spans that started elsewhere (e.g.
  /// queue_wait measured from submit to dequeue).
  [[nodiscard]] std::uint64_t now_ts() { return now(); }

  /// Allocates a span id without opening a span — used for synthetic
  /// spans recorded through record_span (e.g. the request root).
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Records a fully formed span (synthetic: timing measured by the
  /// caller). `id` should come from next_span_id().
  void record_span(std::string name, std::uint64_t ts, std::uint64_t dur,
                   SpanContext ctx, std::uint64_t id);

  /// Records one executed warp. `cycle_offset` is the absolute device
  /// cycle at which the warp's launch started (batches are sequential).
  void record_warp(const simt::WarpRecord& rec, std::uint64_t cycle_offset,
                   std::uint32_t batch);

  /// Records a kernel launch as one span on the "batches" row.
  void record_batch(const BatchEvent& ev);

  [[nodiscard]] std::size_t host_span_count() const;
  [[nodiscard]] std::size_t warp_event_count() const;
  [[nodiscard]] std::size_t batch_event_count() const;
  [[nodiscard]] std::vector<WarpEvent> warp_events() const;
  [[nodiscard]] std::vector<BatchEvent> batch_events() const;
  [[nodiscard]] std::vector<HostSpan> host_spans() const;

  /// Names the device slot rows "smS.wR" in the exported trace.
  void set_device_config(const simt::DeviceConfig& cfg);

  /// Serializes the whole trace as Chrome trace-event JSON
  /// ({"traceEvents":[...]} — the format Perfetto and chrome://tracing
  /// load). Deterministic: append order, stable number formatting.
  void write_chrome_json(std::ostream& os) const;

 private:
  friend class Span;
  [[nodiscard]] std::uint64_t now();

  const TimeMode mode_;
  Timer wall_;
  mutable std::mutex mu_;
  std::uint64_t logical_ = 0;
  std::atomic<std::uint64_t> next_id_{0};  ///< span-id allocator
  std::vector<HostSpan> spans_;
  std::vector<WarpEvent> warps_;
  std::vector<BatchEvent> batches_;
  int num_sms_ = 0;
  int resident_warps_per_sm_ = 0;
};

/// Null-safe span helper: returns an inert span when `t` is nullptr.
[[nodiscard]] Tracer::Span span(Tracer* t, std::string name);

/// Null-safe request-attributed span helper.
[[nodiscard]] Tracer::Span span(Tracer* t, std::string name, SpanContext ctx);

}  // namespace gsj::obs
