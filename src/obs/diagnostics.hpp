// Imbalance diagnostics computed from traced warp events — the paper's
// load-imbalance story as first-class numbers instead of figure
// eyeballing:
//
//  * per-warp cycle dispersion — CoV (stddev/mean) and Gini coefficient
//    of warp execution times. CoV ~ 0 / Gini ~ 0 means SORTBYWL or the
//    WORKQUEUE packed similar work together; heavy skew shows up long
//    before end-to-end time regresses.
//  * per-slot tail idle — how long each resident-warp slot sat idle
//    before kernel end (the kernel-tail imbalance WORKQUEUE removes);
//    the slot breakdown shows whether the tail is one straggler slot or
//    systemic.
//  * WEE — intra-warp lane efficiency (nvprof's
//    warp_execution_efficiency), already tracked per batch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gsj::obs {

/// Dispersion summary of per-warp execution cycles.
struct WarpImbalance {
  std::uint64_t warps = 0;
  double mean_cycles = 0.0;
  double cov = 0.0;   ///< coefficient of variation (stddev / mean)
  double gini = 0.0;  ///< Gini coefficient in [0, 1)
  std::uint64_t min_cycles = 0;
  std::uint64_t p50_cycles = 0;
  std::uint64_t p95_cycles = 0;
  std::uint64_t p99_cycles = 0;
  std::uint64_t max_cycles = 0;
};

/// Per resident-warp slot accounting, merged over launches.
struct SlotStats {
  std::uint64_t warps = 0;
  std::uint64_t busy_cycles = 0;
  std::uint64_t tail_idle_cycles = 0;
};

/// Gini coefficient of a sample (0 = perfectly equal). Not an
/// instrument: takes a copy and sorts.
[[nodiscard]] double gini_coefficient(std::span<const std::uint64_t> xs);

/// Exact order statistic (nearest-rank) of an unsorted sample.
[[nodiscard]] std::uint64_t percentile_nearest_rank(
    std::span<const std::uint64_t> xs, double q);

/// Full dispersion summary of per-warp cycles.
[[nodiscard]] WarpImbalance analyze_warp_cycles(
    std::span<const std::uint64_t> cycles);

/// Reconstructs per-slot tail idle for the launches recorded in
/// `events` (grouped by batch; each batch's makespan is the max slot
/// finish within it). `nslots` is DeviceConfig::total_slots().
[[nodiscard]] std::vector<SlotStats> slot_stats_from_events(
    std::span<const WarpEvent> events, int nslots);

/// One-line human rendering ("CoV 0.42, Gini 0.31, p99/p50 5.1x").
[[nodiscard]] std::string describe(const WarpImbalance& w);

}  // namespace gsj::obs
