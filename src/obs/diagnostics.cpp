#include "obs/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace gsj::obs {

double gini_coefficient(std::span<const std::uint64_t> xs) {
  if (xs.size() < 2) return 0.0;
  std::vector<std::uint64_t> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double sum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const auto x = static_cast<double>(sorted[i]);
    sum += x;
    weighted += static_cast<double>(i + 1) * x;
  }
  if (sum == 0.0) return 0.0;
  return (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
}

std::uint64_t percentile_nearest_rank(std::span<const std::uint64_t> xs,
                                      double q) {
  if (xs.empty()) return 0;
  std::vector<std::uint64_t> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(std::ceil(
      std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

WarpImbalance analyze_warp_cycles(std::span<const std::uint64_t> cycles) {
  WarpImbalance w;
  w.warps = cycles.size();
  if (cycles.empty()) return w;

  std::vector<std::uint64_t> sorted(cycles.begin(), cycles.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double sum = 0.0, sumsq = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const auto x = static_cast<double>(sorted[i]);
    sum += x;
    sumsq += x * x;
    weighted += static_cast<double>(i + 1) * x;
  }
  w.mean_cycles = sum / n;
  const double var = std::max(0.0, sumsq / n - w.mean_cycles * w.mean_cycles);
  w.cov = w.mean_cycles == 0.0 ? 0.0 : std::sqrt(var) / w.mean_cycles;
  w.gini = sum == 0.0 || sorted.size() < 2
               ? 0.0
               : (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
  w.min_cycles = sorted.front();
  w.max_cycles = sorted.back();
  const auto rank = [&](double q) {
    const auto r = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
    return sorted[r == 0 ? 0 : r - 1];
  };
  w.p50_cycles = rank(50);
  w.p95_cycles = rank(95);
  w.p99_cycles = rank(99);
  return w;
}

std::vector<SlotStats> slot_stats_from_events(
    std::span<const WarpEvent> events, int nslots) {
  GSJ_CHECK(nslots >= 1);
  std::vector<SlotStats> slots(static_cast<std::size_t>(nslots));

  // Group finish times by batch; a batch's makespan is its max finish.
  struct BatchFinish {
    std::vector<std::uint64_t> finish;  // per slot, 0 = never dispatched
    std::uint64_t base = ~std::uint64_t{0};  // earliest warp start
  };
  std::map<std::uint32_t, BatchFinish> by_batch;
  for (const WarpEvent& e : events) {
    GSJ_CHECK_MSG(e.slot >= 0 && e.slot < nslots,
                  "warp event slot " << e.slot << " out of range");
    auto& s = slots[static_cast<std::size_t>(e.slot)];
    ++s.warps;
    s.busy_cycles += e.cycles;
    auto& bf = by_batch[e.batch];
    if (bf.finish.empty()) bf.finish.assign(static_cast<std::size_t>(nslots), 0);
    auto& f = bf.finish[static_cast<std::size_t>(e.slot)];
    f = std::max(f, e.start_cycle + e.cycles);
    bf.base = std::min(bf.base, e.start_cycle);
  }

  for (const auto& [batch, bf] : by_batch) {
    std::uint64_t makespan = 0;
    for (const auto f : bf.finish) makespan = std::max(makespan, f);
    for (std::size_t s = 0; s < bf.finish.size(); ++s) {
      // A slot that never ran a warp this launch idled for the whole
      // launch (from the batch's earliest start).
      const std::uint64_t end = bf.finish[s] == 0 ? bf.base : bf.finish[s];
      slots[s].tail_idle_cycles += makespan - std::min(makespan, end);
    }
  }
  return slots;
}

std::string describe(const WarpImbalance& w) {
  std::ostringstream os;
  os << w.warps << " warps, mean " << w.mean_cycles << " cyc, CoV " << w.cov
     << ", Gini " << w.gini << ", p99/p50 "
     << (w.p50_cycles == 0
             ? 0.0
             : static_cast<double>(w.p99_cycles) /
                   static_cast<double>(w.p50_cycles))
     << "x";
  return os.str();
}

}  // namespace gsj::obs
