#include "superego/super_ego.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gsj {

namespace {

/// Contiguous range [begin, end) over the EGO-sorted point array.
struct Range {
  std::size_t begin, end;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool operator==(const Range&) const = default;
};

/// Sorted working copy of the dataset (dimension-reordered, SoA) plus
/// the mapping back to original point ids.
struct EgoSorted {
  int dims = 0;
  double epsilon = 0.0;
  std::vector<std::vector<double>> coords;  // [dim][pos]
  std::vector<PointId> ids;                 // pos -> original id
};

/// Thread-local accumulation, merged after the parallel phase.
struct LocalResult {
  std::vector<ResultPair> pairs;
  std::uint64_t count = 0;
  std::uint64_t dist_calcs = 0;
  std::uint64_t pruned = 0;
};

class EgoJoiner {
 public:
  EgoJoiner(const EgoSorted& s, const SuperEgoConfig& cfg)
      : s_(s), cfg_(cfg), eps2_(cfg.epsilon * cfg.epsilon) {}

  /// Collects the independent range-pair tasks for the parallel phase.
  void collect_tasks(Range a, Range b, std::vector<std::pair<Range, Range>>& out) const {
    if (a.size() == 0 || b.size() == 0) return;
    if (std::max(a.size(), b.size()) <= cfg_.parallel_grain) {
      out.emplace_back(a, b);
      return;
    }
    if (a == b) {
      const std::size_t mid = a.begin + a.size() / 2;
      const Range a1{a.begin, mid}, a2{mid, a.end};
      collect_tasks(a1, a1, out);
      collect_tasks(a2, a2, out);
      collect_tasks(a1, a2, out);
      return;
    }
    // Split the larger side.
    if (a.size() >= b.size()) {
      const std::size_t mid = a.begin + a.size() / 2;
      collect_tasks({a.begin, mid}, b, out);
      collect_tasks({mid, a.end}, b, out);
    } else {
      const std::size_t mid = b.begin + b.size() / 2;
      collect_tasks(a, {b.begin, mid}, out);
      collect_tasks(a, {mid, b.end}, out);
    }
  }

  void join(Range a, Range b, LocalResult& r) const {
    if (a.size() == 0 || b.size() == 0) return;
    if (a != b && too_far(a, b)) {
      ++r.pruned;
      return;
    }
    if (a.size() <= cfg_.base_case && b.size() <= cfg_.base_case) {
      a == b ? base_self(a, r) : base_cross(a, b, r);
      return;
    }
    if (a == b) {
      const std::size_t mid = a.begin + a.size() / 2;
      const Range a1{a.begin, mid}, a2{mid, a.end};
      join(a1, a1, r);
      join(a2, a2, r);
      join(a1, a2, r);
      return;
    }
    if (a.size() >= b.size()) {
      const std::size_t mid = a.begin + a.size() / 2;
      join({a.begin, mid}, b, r);
      join({mid, a.end}, b, r);
    } else {
      const std::size_t mid = b.begin + b.size() / 2;
      join(a, {b.begin, mid}, r);
      join(a, {mid, b.end}, r);
    }
  }

 private:
  /// Epsilon-separation test on the ranges' bounding boxes. Computing
  /// the boxes is O(range), which the EGO recursion amortizes: a
  /// successful prune removes a quadratic amount of work.
  [[nodiscard]] bool too_far(Range a, Range b) const {
    for (int d = 0; d < s_.dims; ++d) {
      const auto& col = s_.coords[static_cast<std::size_t>(d)];
      double alo = col[a.begin], ahi = col[a.begin];
      for (std::size_t i = a.begin + 1; i < a.end; ++i) {
        alo = std::min(alo, col[i]);
        ahi = std::max(ahi, col[i]);
      }
      double blo = col[b.begin], bhi = col[b.begin];
      for (std::size_t i = b.begin + 1; i < b.end; ++i) {
        blo = std::min(blo, col[i]);
        bhi = std::max(bhi, col[i]);
      }
      if (blo - ahi > cfg_.epsilon || alo - bhi > cfg_.epsilon) return true;
    }
    return false;
  }

  /// Distance test with per-dimension early termination — SUPER-EGO's
  /// inner-loop optimization.
  [[nodiscard]] bool within(std::size_t i, std::size_t j) const noexcept {
    double acc = 0.0;
    for (int d = 0; d < s_.dims; ++d) {
      const double diff = s_.coords[static_cast<std::size_t>(d)][i] -
                          s_.coords[static_cast<std::size_t>(d)][j];
      acc += diff * diff;
      if (acc > eps2_) return false;
    }
    return true;
  }

  void emit(std::size_t i, std::size_t j, LocalResult& r) const {
    ++r.count;
    if (cfg_.store_pairs) r.pairs.emplace_back(s_.ids[i], s_.ids[j]);
  }

  void base_self(Range a, LocalResult& r) const {
    for (std::size_t i = a.begin; i < a.end; ++i) {
      emit(i, i, r);  // self pair
      for (std::size_t j = i + 1; j < a.end; ++j) {
        ++r.dist_calcs;
        if (within(i, j)) {
          emit(i, j, r);
          emit(j, i, r);
        }
      }
    }
  }

  void base_cross(Range a, Range b, LocalResult& r) const {
    for (std::size_t i = a.begin; i < a.end; ++i) {
      for (std::size_t j = b.begin; j < b.end; ++j) {
        ++r.dist_calcs;
        if (within(i, j)) {
          emit(i, j, r);
          emit(j, i, r);
        }
      }
    }
  }

  const EgoSorted& s_;
  const SuperEgoConfig& cfg_;
  double eps2_;
};

EgoSorted ego_sort(const Dataset& ds, const SuperEgoConfig& cfg) {
  const int dims = ds.dims();
  const std::size_t n = ds.size();
  const auto lo = ds.min_corner();
  const auto hi = ds.max_corner();

  // Dimension reordering: most epsilon-cells first (most selective).
  std::vector<int> dim_order(static_cast<std::size_t>(dims));
  std::iota(dim_order.begin(), dim_order.end(), 0);
  if (cfg.reorder_dims) {
    std::stable_sort(dim_order.begin(), dim_order.end(), [&](int a, int b) {
      const auto ea = hi[static_cast<std::size_t>(a)] - lo[static_cast<std::size_t>(a)];
      const auto eb = hi[static_cast<std::size_t>(b)] - lo[static_cast<std::size_t>(b)];
      return ea > eb;
    });
  }

  // Cell coordinates in the reordered dimension sequence.
  std::vector<std::vector<std::int32_t>> cells(
      static_cast<std::size_t>(dims), std::vector<std::int32_t>(n));
  for (int dd = 0; dd < dims; ++dd) {
    const int d = dim_order[static_cast<std::size_t>(dd)];
    const double base = lo[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < n; ++i) {
      cells[static_cast<std::size_t>(dd)][i] = static_cast<std::int32_t>(
          std::floor((ds.coord(i, d) - base) / cfg.epsilon));
    }
  }

  EgoSorted s;
  s.dims = dims;
  s.epsilon = cfg.epsilon;
  s.ids.resize(n);
  std::iota(s.ids.begin(), s.ids.end(), PointId{0});
  std::sort(s.ids.begin(), s.ids.end(), [&](PointId a, PointId b) {
    for (int d = 0; d < dims; ++d) {
      const auto ca = cells[static_cast<std::size_t>(d)][a];
      const auto cb = cells[static_cast<std::size_t>(d)][b];
      if (ca != cb) return ca < cb;
    }
    return a < b;
  });

  s.coords.assign(static_cast<std::size_t>(dims), std::vector<double>(n));
  for (int dd = 0; dd < dims; ++dd) {
    const int d = dim_order[static_cast<std::size_t>(dd)];
    auto& col = s.coords[static_cast<std::size_t>(dd)];
    for (std::size_t i = 0; i < n; ++i) col[i] = ds.coord(s.ids[i], d);
  }
  return s;
}

}  // namespace

SuperEgoOutput super_ego_join(const Dataset& ds, const SuperEgoConfig& cfg) {
  GSJ_CHECK_MSG(cfg.epsilon > 0.0, "epsilon must be positive");
  GSJ_CHECK_MSG(!ds.empty(), "empty dataset");
  GSJ_CHECK(cfg.base_case >= 1 && cfg.parallel_grain >= cfg.base_case);

  SuperEgoOutput out;
  out.results = ResultSet(cfg.store_pairs);
  obs::Tracer* tracer = cfg.tracer;

  Timer sort_timer;
  auto sort_span = obs::span(tracer, "ego_sort");
  const EgoSorted sorted = ego_sort(ds, cfg);
  sort_span.finish();
  out.stats.sort_seconds = sort_timer.seconds();

  Timer join_timer;
  const EgoJoiner joiner(sorted, cfg);
  const Range whole{0, ds.size()};

  std::vector<std::pair<Range, Range>> tasks;
  {
    const auto sp = obs::span(tracer, "ego_collect_tasks");
    joiner.collect_tasks(whole, whole, tasks);
  }

  ThreadPool pool(cfg.nthreads);

  // Per-worker metric shards: each worker updates a private Registry
  // (its mutex and atomics stay uncontended and cache-local), merged
  // into cfg.metrics after the parallel phase.
  std::vector<obs::Registry> shards(cfg.metrics != nullptr ? pool.size() : 0);

  auto join_span = obs::span(tracer, "ego_join");
  std::vector<LocalResult> locals(tasks.size());
  pool.parallel_for(tasks.size(), [&](std::size_t t) {
    auto task_span = obs::span(tracer, "ego_task");
    joiner.join(tasks[t].first, tasks[t].second, locals[t]);
    task_span.finish();
    if (!shards.empty()) {
      const int w = ThreadPool::current_worker();
      obs::Registry& sh = shards[static_cast<std::size_t>(w)];
      sh.counter("ego.tasks").add(1);
      sh.counter("ego.distance_calcs").add(locals[t].dist_calcs);
      sh.counter("ego.pruned_pairs").add(locals[t].pruned);
      sh.counter(obs::labeled("ego.tasks",
                              {{"worker", std::to_string(w)}}))
          .add(1);
      sh.cycle_histogram("ego.task_distance_calcs")
          .record(locals[t].dist_calcs);
    }
  });
  join_span.finish();

  const auto merge_span = obs::span(tracer, "ego_merge");
  for (auto& l : locals) {
    out.stats.distance_calcs += l.dist_calcs;
    out.stats.pruned_pairs += l.pruned;
    if (cfg.store_pairs) {
      for (const auto& [a, b] : l.pairs) out.results.emit(a, b);
    } else {
      out.results.add_count(l.count);
    }
  }
  out.stats.result_pairs = out.results.count();
  out.stats.seconds = join_timer.seconds();
  if (cfg.metrics != nullptr) {
    for (const obs::Registry& sh : shards) cfg.metrics->merge_from(sh);
    cfg.metrics->counter("ego.result_pairs").add(out.stats.result_pairs);
    cfg.metrics->gauge("ego.sort_seconds").set(out.stats.sort_seconds);
    cfg.metrics->gauge("ego.join_seconds").set(out.stats.seconds);
  }
  if (cfg.store_pairs) out.results.canonicalize();
  return out;
}

}  // namespace gsj
