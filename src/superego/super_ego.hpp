// SUPER-EGO — the state-of-the-art parallel CPU similarity self-join of
// Kalashnikov [16], reimplemented as the paper's CPU comparator.
//
// Pipeline:
//   1. dimension reordering — dimensions are permuted so the most
//      selective ones (largest extent in epsilon cells) come first,
//      maximizing early pruning;
//   2. EGO-sort — points are sorted lexicographically by their
//      epsilon-grid cell coordinates (a non-materialized grid: the
//      order itself is the index);
//   3. EGO-join — recursive divide-and-conquer over sorted ranges.
//      Ranges whose bounding boxes are separated by more than epsilon
//      in any dimension are pruned; small range pairs fall through to a
//      cache-friendly nested loop whose distance accumulation
//      terminates early per dimension;
//   4. parallelism — the recursion is unrolled into independent range
//      pairs executed on a thread pool, each with a thread-local result
//      buffer merged at the end.
//
// Result semantics match the GPU join: ordered pairs with self pairs.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "sj/result_set.hpp"

namespace gsj {

namespace obs {
class Tracer;    // obs/trace.hpp
class Registry;  // obs/metrics.hpp
}  // namespace obs

struct SuperEgoConfig {
  double epsilon = 1.0;
  std::size_t nthreads = 0;      ///< 0 = hardware concurrency
  std::size_t base_case = 64;    ///< nested-loop threshold per range
  std::size_t parallel_grain = 4096;  ///< split into tasks above this size
  bool reorder_dims = true;
  bool store_pairs = false;

  // --- observability (optional, non-owning) ---
  /// Receives phase spans (ego_sort, ego_collect_tasks, ego_join,
  /// ego_merge) plus one span per range-pair task, attributed to the
  /// executing pool worker's timeline row.
  obs::Tracer* tracer = nullptr;
  /// Receives "ego.*" counters/histograms. Workers populate private
  /// per-worker Registry shards (no shared cache lines on the hot
  /// path) that are merged here after the parallel phase.
  obs::Registry* metrics = nullptr;
};

struct SuperEgoStats {
  double seconds = 0.0;               ///< wall time, join phase
  double sort_seconds = 0.0;          ///< EGO-sort phase
  std::uint64_t distance_calcs = 0;   ///< candidate evaluations
  std::uint64_t pruned_pairs = 0;     ///< range pairs cut by the bbox test
  std::uint64_t result_pairs = 0;
};

struct SuperEgoOutput {
  ResultSet results;
  SuperEgoStats stats;

  SuperEgoOutput() : results(false) {}
};

/// Runs the parallel SUPER-EGO self-join on the host CPU.
[[nodiscard]] SuperEgoOutput super_ego_join(const Dataset& ds,
                                            const SuperEgoConfig& cfg);

}  // namespace gsj
