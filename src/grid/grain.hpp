// Work grains: contiguous cell-range shards of the ε-grid (the fleet's
// unit of scheduling, docs/SIMULATOR.md §fleet).
//
// The grid stores non-empty cells sorted by linear id, each owning a
// contiguous range of the grid-ordered point_ids() array — so a
// contiguous *cell* range is also a contiguous *point* range. A grain
// is such a range: every query point of the grain is evaluated on
// whichever device the grain is scheduled to, while the kernel probes
// the full (shared, read-only) grid for candidates. Because each point
// is queried by exactly one grain and the pair-evaluating endpoint of
// every unordered pair is chosen deterministically by the cell access
// pattern — never by device placement — the union of all grains'
// emissions is exactly the single-device result: boundary cells are
// neither duplicated nor dropped, whatever the grain boundaries are.
//
// Partitioning never splits a cell (a cell's points share one workload
// and one candidate set; splitting buys nothing and would complicate
// the seam argument). Weights are per-cell workload sums, so the greedy
// sweep equalizes *expected work*, not point counts — the paper's
// workload quantification reused one level up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid_index.hpp"

namespace gsj {

/// One work grain: cells [cell_begin, cell_end) of grid.cells(), owning
/// points [point_begin, point_end) of grid.point_ids().
struct WorkGrain {
  std::size_t cell_begin = 0;
  std::size_t cell_end = 0;
  std::uint32_t point_begin = 0;
  std::uint32_t point_end = 0;
  /// Summed weight of the grain's cells (candidate evaluations when
  /// built from workloads; point count under uniform weights). The
  /// scheduler's size estimate for LPT ordering and rate feedback.
  std::uint64_t workload = 0;

  [[nodiscard]] std::uint32_t points() const noexcept {
    return point_end - point_begin;
  }
  [[nodiscard]] std::size_t cells() const noexcept {
    return cell_end - cell_begin;
  }
};

/// Splits the grid's non-empty cells into at most `max_grains`
/// contiguous, non-overlapping grains covering every cell exactly once.
/// `cell_weights` (one entry per cells() element) drives the greedy
/// sweep: cells accumulate into the current grain until it reaches the
/// ideal share total_weight / max_grains, then a new grain starts —
/// cells are never split, so a single huge cell becomes its own grain.
/// An empty `cell_weights` span means uniform weighting by cell point
/// count (the static-uniform sharding baseline). Deterministic; returns
/// at least one grain for a non-empty grid and never more than
/// min(max_grains, cells().size()).
[[nodiscard]] std::vector<WorkGrain> partition_grains(
    const GridIndex& grid, std::span<const std::uint64_t> cell_weights,
    std::size_t max_grains);

/// R×S analogue (JoinMode::RxS): splits the probe dataset's ids
/// [0, n_probe) into at most `max_grains` contiguous ranges. Probe
/// points have no cells in the gridded index, so cell_begin/cell_end
/// stay 0 and point_begin/point_end are probe-id bounds. A non-empty
/// `point_workloads` (size n_probe, probe_point_workloads) drives the
/// same greedy sweep with per-point weight workload + 1 (the +1 keeps
/// empty-candidate points from weighing nothing); empty means uniform.
/// Deterministic; at least one grain when n_probe > 0 and never more
/// than min(max_grains, n_probe).
[[nodiscard]] std::vector<WorkGrain> partition_probe_grains(
    std::size_t n_probe, std::span<const std::uint64_t> point_workloads,
    std::size_t max_grains);

/// Per-cell weights for grain partitioning from per-*point* workloads
/// (grid/workload.hpp point_workloads): weight(cell) = Σ over its
/// points of (workload + 1) — the +1 keeps empty-candidate points from
/// weighing nothing (they still cost a thread).
[[nodiscard]] std::vector<std::uint64_t> grain_cell_weights(
    const GridIndex& grid, std::span<const std::uint64_t> point_workloads);

}  // namespace gsj
