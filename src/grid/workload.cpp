#include "grid/workload.hpp"

#include <algorithm>
#include <numeric>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"

namespace gsj {

std::vector<std::uint64_t> cell_workloads(const GridIndex& grid,
                                          CellPattern pattern,
                                          ThreadPool* pool) {
  const auto cells = grid.cells();
  std::vector<std::uint64_t> wl(cells.size(), 0);
  const auto quantify = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ci = lo; ci < hi; ++ci) {
      const CellCoords oc = grid.decode(cells[ci].linear_id);
      const std::uint64_t oid = cells[ci].linear_id;
      std::uint64_t w = cells[ci].size();  // own cell candidates
      grid.for_each_adjacent(
          ci, /*include_origin=*/false,
          [&](std::size_t nidx, const CellCoords& nc, std::uint64_t nid) {
            if (pattern_accepts(pattern, grid.dims(), oc, nc, oid, nid)) {
              w += grid.cells()[nidx].size();
            }
          });
      wl[ci] = w;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(cells.size(), quantify);
  } else {
    quantify(0, cells.size());
  }
  return wl;
}

std::vector<std::uint64_t> point_workloads(const GridIndex& grid,
                                           CellPattern pattern,
                                           ThreadPool* pool) {
  const auto cw = cell_workloads(grid, pattern, pool);
  std::vector<std::uint64_t> pw(grid.dataset().size());
  const auto scatter = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      pw[p] = cw[grid.cell_of_point(static_cast<PointId>(p))];
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(pw.size(), scatter);
  } else {
    scatter(0, pw.size());
  }
  return pw;
}

std::vector<PointId> sort_by_workload(const GridIndex& grid,
                                      CellPattern pattern, ThreadPool* pool) {
  const auto pw = point_workloads(grid, pattern, pool);
  std::vector<PointId> order(pw.size());
  std::iota(order.begin(), order.end(), PointId{0});
  parallel_stable_sort(
      order, [&pw](PointId a, PointId b) { return pw[a] > pw[b]; }, pool);
  return order;
}

std::uint64_t total_candidate_evaluations(const GridIndex& grid,
                                          CellPattern pattern) {
  const auto cells = grid.cells();
  std::uint64_t total = 0;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const CellCoords oc = grid.decode(cells[ci].linear_id);
    const std::uint64_t oid = cells[ci].linear_id;
    const std::uint64_t sz = cells[ci].size();
    // Own cell: FULL compares every point to every point (self
    // included); unidirectional patterns compare each unordered pair
    // once.
    total += pattern == CellPattern::Full ? sz * sz : sz * (sz - 1) / 2;
    grid.for_each_adjacent(
        ci, /*include_origin=*/false,
        [&](std::size_t nidx, const CellCoords& nc, std::uint64_t nid) {
          if (pattern_accepts(pattern, grid.dims(), oc, nc, oid, nid)) {
            total += sz * grid.cells()[nidx].size();
          }
        });
  }
  return total;
}

}  // namespace gsj
