#include "grid/workload.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"

namespace gsj {

std::uint64_t cell_workload_at(const GridIndex& grid, CellPattern pattern,
                               std::size_t cell_idx) {
  const auto cells = grid.cells();
  const CellCoords oc = grid.decode(cells[cell_idx].linear_id);
  const std::uint64_t oid = cells[cell_idx].linear_id;
  std::uint64_t w = cells[cell_idx].size();  // own cell candidates
  grid.for_each_adjacent(
      cell_idx, /*include_origin=*/false,
      [&](std::size_t nidx, const CellCoords& nc, std::uint64_t nid) {
        if (pattern_accepts(pattern, grid.dims(), oc, nc, oid, nid)) {
          w += cells[nidx].size();
        }
      });
  return w;
}

std::vector<std::uint64_t> cell_workloads(const GridIndex& grid,
                                          CellPattern pattern,
                                          ThreadPool* pool) {
  const auto cells = grid.cells();
  std::vector<std::uint64_t> wl(cells.size(), 0);
  const auto quantify = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ci = lo; ci < hi; ++ci) {
      wl[ci] = cell_workload_at(grid, pattern, ci);
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(cells.size(), quantify);
  } else {
    quantify(0, cells.size());
  }
  return wl;
}

std::vector<std::uint64_t> point_workloads(const GridIndex& grid,
                                           CellPattern pattern,
                                           ThreadPool* pool) {
  const auto cw = cell_workloads(grid, pattern, pool);
  std::vector<std::uint64_t> pw(grid.dataset().size());
  const auto scatter = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      pw[p] = cw[grid.cell_of_point(static_cast<PointId>(p))];
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(pw.size(), scatter);
  } else {
    scatter(0, pw.size());
  }
  return pw;
}

std::vector<std::uint64_t> probe_point_workloads(const GridIndex& grid,
                                                 const Dataset& probe,
                                                 ThreadPool* pool) {
  GSJ_CHECK(probe.dims() == grid.dims());
  const auto cells = grid.cells();
  std::vector<std::uint64_t> pw(probe.size(), 0);
  const auto quantify = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t q = lo; q < hi; ++q) {
      CellCoords oc;
      for (int d = 0; d < grid.dims(); ++d) {
        oc[d] = grid.probe_cell_coord(probe.coord(q, d), d);
      }
      std::uint64_t w = 0;
      grid.for_each_adjacent_to(
          oc, [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
            w += cells[nidx].size();
          });
      pw[q] = w;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(pw.size(), quantify);
  } else {
    quantify(0, pw.size());
  }
  return pw;
}

std::vector<PointId> sort_by_workload(const GridIndex& grid,
                                      CellPattern pattern, ThreadPool* pool) {
  const auto pw = point_workloads(grid, pattern, pool);
  std::vector<PointId> order(pw.size());
  std::iota(order.begin(), order.end(), PointId{0});
  parallel_stable_sort(
      order, [&pw](PointId a, PointId b) { return pw[a] > pw[b]; }, pool);
  return order;
}

WorkloadPatchResult patch_workloads(const GridIndex& grid,
                                    CellPattern pattern,
                                    std::span<const std::uint64_t> dirty_cell_ids,
                                    std::span<const std::uint64_t> old_point_workloads,
                                    std::span<const PointId> old_order) {
  const auto cells = grid.cells();
  const std::size_t n = grid.dataset().size();
  WorkloadPatchResult out;

  // Cells whose workload can have changed: the dirty cells plus one
  // adjacency shell (a dirty cell's size feeds its neighbors' sums).
  std::vector<std::uint8_t> cell_affected(cells.size(), 0);
  for (const std::uint64_t id : dirty_cell_ids) {
    grid.for_each_adjacent_to(
        grid.decode(id),
        [&](std::size_t nidx, const CellCoords&, std::uint64_t) {
          cell_affected[nidx] = 1;
        });
  }

  // Per-cell workloads: re-quantify the affected, recover the rest
  // from the old per-point table via any member (an unaffected cell's
  // membership — and every member's id — is unchanged).
  std::vector<std::uint64_t> cw(cells.size());
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    if (cell_affected[ci] != 0) {
      cw[ci] = cell_workload_at(grid, pattern, ci);
      ++out.recomputed_cells;
    } else {
      cw[ci] = old_point_workloads[grid.cell_points(ci).front()];
    }
  }

  out.point_workloads.resize(n);
  std::vector<std::uint8_t> point_affected(n, 0);
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    for (const PointId p : grid.cell_points(ci)) {
      out.point_workloads[p] = cw[ci];
      if (cell_affected[ci] != 0) point_affected[p] = 1;
    }
  }

  if (!old_order.empty()) {
    const auto& pw = out.point_workloads;
    // sort_by_workload's order is the strict total order
    // (workload desc, id asc) — stable sort over ascending ids. Both
    // runs below are sorted under it, so the merge reproduces the
    // from-scratch sort exactly.
    const auto before = [&pw](PointId a, PointId b) {
      return pw[a] != pw[b] ? pw[a] > pw[b] : a < b;
    };
    std::vector<PointId> changed;
    for (std::size_t p = 0; p < n; ++p) {
      if (point_affected[p] != 0) changed.push_back(static_cast<PointId>(p));
    }
    std::sort(changed.begin(), changed.end(), before);
    std::vector<PointId> keep;
    keep.reserve(n - changed.size());
    for (const PointId p : old_order) {
      // Entries naming ids that shrank away or whose point/workload
      // changed are re-inserted from `changed`; an id can only appear
      // here with a stale identity if its cell is dirty, which marks
      // it affected.
      if (p < n && point_affected[p] == 0) keep.push_back(p);
    }
    GSJ_CHECK(keep.size() + changed.size() == n);
    out.order.resize(n);
    std::merge(keep.begin(), keep.end(), changed.begin(), changed.end(),
               out.order.begin(), before);
  }
  return out;
}

std::uint64_t total_candidate_evaluations(const GridIndex& grid,
                                          CellPattern pattern) {
  const auto cells = grid.cells();
  std::uint64_t total = 0;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const CellCoords oc = grid.decode(cells[ci].linear_id);
    const std::uint64_t oid = cells[ci].linear_id;
    const std::uint64_t sz = cells[ci].size();
    // Own cell: FULL compares every point to every point (self
    // included); unidirectional patterns compare each unordered pair
    // once.
    total += pattern == CellPattern::Full ? sz * sz : sz * (sz - 1) / 2;
    grid.for_each_adjacent(
        ci, /*include_origin=*/false,
        [&](std::size_t nidx, const CellCoords& nc, std::uint64_t nid) {
          if (pattern_accepts(pattern, grid.dims(), oc, nc, oid, nid)) {
            total += sz * grid.cells()[nidx].size();
          }
        });
  }
  return total;
}

}  // namespace gsj
