// Epsilon grid index over non-empty cells only, after Gowanlock &
// Karsin [18].
//
// Space is partitioned into cells of side `epsilon` per dimension, so a
// range query around a point only needs the 3^n adjacent cells. Only
// non-empty cells are materialized: the index is
//   * `cells()`      — non-empty cells sorted by linear id (binary
//                      searchable, this is the paper's array B),
//   * `point_ids()`  — all point ids grouped by cell (each cell owns a
//                      contiguous range), giving O(|D|) space,
//   * per-point back-references (owning cell, rank within grid order).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace gsj {

class ThreadPool;

/// Maximum indexable dimensionality (paper evaluates 2..6).
inline constexpr int kMaxDims = 8;

/// Multidimensional cell coordinates (only the first dims() entries of
/// `c` are meaningful).
struct CellCoords {
  std::array<std::int32_t, kMaxDims> c{};

  [[nodiscard]] std::int32_t operator[](int d) const noexcept {
    return c[static_cast<std::size_t>(d)];
  }
  std::int32_t& operator[](int d) noexcept {
    return c[static_cast<std::size_t>(d)];
  }
};

/// What GridIndex::repair did. When `repaired` is true the index was
/// patched cell-granularly and `dirty_cell_ids` names every cell
/// (by linear id) whose membership set changed — the exact set a
/// workload-table consumer must re-derive (plus one adjacency shell).
/// When false the repair fell back to a from-scratch rebuild (log
/// window lost, grid shape changed, or the dataset is too wide to
/// log); the index is still valid either way.
struct GridRepairOutcome {
  bool repaired = false;
  std::vector<std::uint64_t> dirty_cell_ids;  ///< sorted, unique
  std::size_t touched_points = 0;  ///< live points re-bucketed
  std::size_t removed_points = 0;  ///< points that left the dataset
  /// True when the window contained only Move mutations (see
  /// ChurnSummary::pure_moves); meaningless on fallback.
  bool pure_moves = false;
};

/// One non-empty grid cell: its linear id and the contiguous range of
/// grid-ordered point ids it owns.
struct GridCell {
  std::uint64_t linear_id = 0;
  std::uint32_t begin = 0;  ///< range [begin, end) into point_ids()
  std::uint32_t end = 0;

  [[nodiscard]] std::uint32_t size() const noexcept { return end - begin; }
};

class GridIndex {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Builds the index for `ds` with cell side `epsilon`. The dataset
  /// must outlive the index (the index stores a reference). An optional
  /// `pool` parallelizes the build (cell-id computation and the grid
  /// sort); the resulting index is identical with or without it.
  GridIndex(const Dataset& ds, double epsilon, ThreadPool* pool = nullptr);

  [[nodiscard]] const Dataset& dataset() const noexcept { return *ds_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] int dims() const noexcept { return ds_->dims(); }

  /// Dataset generation this index reflects (set at build, advanced by
  /// repair). Equal to dataset().generation() iff the index is current.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Brings the index up to date with the dataset after mutations,
  /// re-bucketing only the touched points: untouched points keep their
  /// grid order (the strict (cell, id) total order makes the patched
  /// arrays bit-identical to a from-scratch rebuild, which is what the
  /// differential tests assert via content_key equality). Falls back
  /// to a full rebuild when the mutation window is unavailable or the
  /// grid shape (bounding box / cell counts) changed. No-op when
  /// already current. The dataset must be non-empty.
  GridRepairOutcome repair(ThreadPool* pool = nullptr);

  /// Content digest of the built index: an FNV-1a fold of the build
  /// inputs (epsilon bits, point count, dims, the generation the index
  /// reflects), the grid shape (non-empty cell count, cells per
  /// dimension) and the full cell / point-order arrays. Two indexes
  /// over identical content produce equal keys, so digest equality
  /// between a repaired index and a from-scratch rebuild certifies the
  /// arrays are bit-identical (the churn tests' correctness bar). Used
  /// by the JoinEngine plan cache (sj/engine.hpp) to validate hits —
  /// recomputed at build and after repair, O(1) to read.
  [[nodiscard]] std::uint64_t content_key() const noexcept {
    return content_key_;
  }

  /// Number of cells along dimension `d`.
  [[nodiscard]] std::int32_t cells_per_dim(int d) const noexcept {
    return cells_per_dim_[static_cast<std::size_t>(d)];
  }

  /// All non-empty cells, ascending by linear id.
  [[nodiscard]] std::span<const GridCell> cells() const noexcept {
    return cells_;
  }

  /// Point ids grouped by cell (the paper's point-lookup array).
  [[nodiscard]] std::span<const PointId> point_ids() const noexcept {
    return point_ids_;
  }

  /// Points of cell `cell_idx` (an index into cells()).
  [[nodiscard]] std::span<const PointId> cell_points(std::size_t cell_idx) const;

  /// Binary-searches the non-empty cell array; npos when the linear id
  /// maps to an empty cell.
  [[nodiscard]] std::size_t find_cell(std::uint64_t linear_id) const noexcept;

  /// Index (into cells()) of the cell owning point `p`.
  [[nodiscard]] std::size_t cell_of_point(PointId p) const noexcept {
    return point_cell_[p];
  }

  /// Position of point `p` within the grid-ordered point_ids() array.
  /// Within a cell this rank breaks ties for the "compare only to later
  /// points in my own cell" rule used by the unidirectional patterns.
  [[nodiscard]] std::uint32_t grid_rank(PointId p) const noexcept {
    return point_rank_[p];
  }

  /// Cell coordinates of the cell containing point `p`.
  [[nodiscard]] CellCoords coords_of_point(PointId p) const;

  /// Decodes a linear id into cell coordinates.
  [[nodiscard]] CellCoords decode(std::uint64_t linear_id) const noexcept;

  /// Encodes cell coordinates into a linear id. Coordinates must lie in
  /// [0, cells_per_dim(d)).
  [[nodiscard]] std::uint64_t encode(const CellCoords& cc) const noexcept;

  /// Cell coordinates an arbitrary location falls into, clamped to the
  /// grid bounds (locations outside the indexed bounding box map to the
  /// border cells). `coords` must have dims() entries.
  [[nodiscard]] CellCoords cell_coords_of(std::span<const double> coords) const;

  /// True when `cc` lies inside the grid bounds.
  [[nodiscard]] bool in_bounds(const CellCoords& cc) const noexcept;

  /// Cell coordinate of location `x` in dimension `d` for *probe*
  /// points of an R×S join: unclamped (out-of-bbox probes must not
  /// alias border cells), but banded to [-2, cells_per_dim(d)+1] so the
  /// value always fits an int32 regardless of how far out the probe
  /// sits. A probe more than one cell outside the grid then gets a
  /// 3-cell adjacency window that is entirely out of bounds — correctly
  /// empty, since such a point cannot have ε-neighbors in the grid.
  [[nodiscard]] std::int32_t probe_cell_coord(double x, int d) const noexcept {
    const auto sd = static_cast<std::size_t>(d);
    double c = std::floor((x - min_[sd]) / epsilon_);
    c = std::max(-2.0, std::min(c, static_cast<double>(cells_per_dim(d)) + 1.0));
    return static_cast<std::int32_t>(c);
  }

  /// Invokes `fn(neighbor_cell_index, neighbor_coords, neighbor_linear_id)`
  /// for every *non-empty* cell adjacent to `origin` (all offsets in
  /// {-1,0,+1}^dims), including the origin cell itself when
  /// `include_origin`. Enumeration order is lexicographic in the offset
  /// vector, matching the nested-loop order of the CUDA kernels.
  template <typename Fn>
  void for_each_adjacent(std::size_t origin_cell, bool include_origin,
                         Fn&& fn) const;

  /// Same enumeration around arbitrary cell coordinates (which need not
  /// name a non-empty cell). "include_origin" has no meaning here: the
  /// origin coordinates' own cell is always visited when non-empty.
  template <typename Fn>
  void for_each_adjacent_to(const CellCoords& oc, Fn&& fn) const;

  /// Invokes `fn(cell_index, cell_coords, linear_id)` for every
  /// non-empty cell within `shells` cells of the location `coords`
  /// (dims() entries) in every dimension — the cells a point at that
  /// location can have ε-neighbors in when shells >= ceil(eps/epsilon()).
  /// Unlike cell_coords_of, the location is NOT clamped to the grid:
  /// out-of-bounds locations visit only the in-bounds part of their
  /// shell (possibly nothing), never a spurious border cell.
  template <typename Fn>
  void for_each_within(std::span<const double> coords, int shells,
                       Fn&& fn) const;

  /// Total number of adjacent-cell slots probed (3^dims).
  [[nodiscard]] std::uint64_t adjacency_volume() const noexcept {
    std::uint64_t v = 1;
    for (int d = 0; d < dims(); ++d) v *= 3;
    return v;
  }

  /// Approximate heap footprint of the index (cell array + the three
  /// per-point vectors); feeds JoinService cache accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells_.capacity() * sizeof(GridCell) +
           point_ids_.capacity() * sizeof(PointId) +
           point_cell_.capacity() * sizeof(std::uint32_t) +
           point_rank_.capacity() * sizeof(std::uint32_t);
  }

 private:
  /// Digest of the full index content (epsilon, dims, generation, every
  /// cell's (linear_id, begin) and every grid-ordered point id) —
  /// shared by the constructor and repair() so digest equality between
  /// a repaired index and a from-scratch rebuild proves bit-identity.
  void recompute_content_key();
  /// Linear cell id of a location (max-boundary coordinates fold into
  /// the last cell, exactly as at build).
  [[nodiscard]] std::uint64_t clamped_cell_id(
      std::span<const double> coords) const;

  const Dataset* ds_;
  double epsilon_;
  std::uint64_t generation_ = 0;
  std::uint64_t content_key_ = 0;
  std::array<double, kMaxDims> min_{};
  std::array<std::int32_t, kMaxDims> cells_per_dim_{};
  std::array<std::uint64_t, kMaxDims> stride_{};
  std::vector<GridCell> cells_;
  std::vector<PointId> point_ids_;
  std::vector<std::uint32_t> point_cell_;  ///< point id -> cells_ index
  std::vector<std::uint32_t> point_rank_;  ///< point id -> point_ids_ position
};

template <typename Fn>
void GridIndex::for_each_adjacent(std::size_t origin_cell, bool include_origin,
                                  Fn&& fn) const {
  const CellCoords oc = decode(cells_[origin_cell].linear_id);
  if (include_origin) {
    for_each_adjacent_to(oc, std::forward<Fn>(fn));
    return;
  }
  const std::uint64_t origin_id = cells_[origin_cell].linear_id;
  for_each_adjacent_to(oc, [&](std::size_t nidx, const CellCoords& nc,
                               std::uint64_t nid) {
    if (nid != origin_id) fn(nidx, nc, nid);
  });
}

template <typename Fn>
void GridIndex::for_each_adjacent_to(const CellCoords& oc, Fn&& fn) const {
  const int n = dims();
  // Odometer over offsets in {-1,0,1}^n, lexicographic.
  std::array<std::int32_t, kMaxDims> off{};
  for (int d = 0; d < n; ++d) off[static_cast<std::size_t>(d)] = -1;
  for (;;) {
    CellCoords nc;
    bool inb = true;
    for (int d = 0; d < n; ++d) {
      const std::int32_t v = oc[d] + off[static_cast<std::size_t>(d)];
      if (v < 0 || v >= cells_per_dim(d)) {
        inb = false;
        break;
      }
      nc[d] = v;
    }
    if (inb) {
      const std::uint64_t nid = encode(nc);
      const std::size_t nidx = find_cell(nid);
      if (nidx != npos) fn(nidx, nc, nid);
    }
    // Advance odometer.
    int d = n - 1;
    while (d >= 0) {
      auto& o = off[static_cast<std::size_t>(d)];
      if (++o <= 1) break;
      o = -1;
      --d;
    }
    if (d < 0) break;
  }
}

template <typename Fn>
void GridIndex::for_each_within(std::span<const double> coords, int shells,
                                Fn&& fn) const {
  const int n = dims();
  // Base cell deliberately unclamped (int64 absorbs far-out locations)
  // so the [base±shells] window intersected with the grid bounds is
  // exact for out-of-bbox query points too.
  std::array<std::int64_t, kMaxDims> lo{};
  std::array<std::int64_t, kMaxDims> hi{};
  for (int d = 0; d < n; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    const auto base = static_cast<std::int64_t>(
        std::floor((coords[sd] - min_[sd]) / epsilon_));
    lo[sd] = std::max<std::int64_t>(base - shells, 0);
    hi[sd] = std::min<std::int64_t>(base + shells,
                                    std::int64_t{cells_per_dim(d)} - 1);
    if (lo[sd] > hi[sd]) return;
  }
  std::array<std::int64_t, kMaxDims> cur = lo;
  for (;;) {
    CellCoords cc;
    for (int d = 0; d < n; ++d) {
      cc[d] = static_cast<std::int32_t>(cur[static_cast<std::size_t>(d)]);
    }
    const std::uint64_t id = encode(cc);
    const std::size_t idx = find_cell(id);
    if (idx != npos) fn(idx, cc, id);
    int d = n - 1;
    while (d >= 0) {
      const auto sd = static_cast<std::size_t>(d);
      if (++cur[sd] <= hi[sd]) break;
      cur[sd] = lo[sd];
      --d;
    }
    if (d < 0) break;
  }
}

}  // namespace gsj
