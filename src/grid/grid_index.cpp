#include "grid/grid_index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "data/churn.hpp"

namespace gsj {

GridIndex::GridIndex(const Dataset& ds, double epsilon, ThreadPool* pool)
    : ds_(&ds), epsilon_(epsilon) {
  GSJ_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  GSJ_CHECK_MSG(!ds.empty(), "cannot index an empty dataset");
  GSJ_CHECK_MSG(ds.dims() <= kMaxDims, "dims " << ds.dims() << " > " << kMaxDims);

  const int n = ds.dims();
  const auto lo = ds.min_corner();
  const auto hi = ds.max_corner();
  std::uint64_t total_cells = 1;
  for (int d = 0; d < n; ++d) {
    min_[static_cast<std::size_t>(d)] = lo[static_cast<std::size_t>(d)];
    const double extent =
        hi[static_cast<std::size_t>(d)] - lo[static_cast<std::size_t>(d)];
    const auto cnt =
        static_cast<std::int32_t>(std::floor(extent / epsilon)) + 1;
    cells_per_dim_[static_cast<std::size_t>(d)] = cnt;
    GSJ_CHECK_MSG(total_cells <= (std::uint64_t{1} << 62) / static_cast<std::uint64_t>(cnt),
                  "grid too fine: linear ids would overflow (epsilon too small)");
    total_cells *= static_cast<std::uint64_t>(cnt);
  }
  // Row-major strides: last dimension is contiguous, so linear ids are
  // lexicographic in coordinate order (required by LID-UNICOMP's
  // monotonicity argument).
  std::uint64_t s = 1;
  for (int d = n - 1; d >= 0; --d) {
    stride_[static_cast<std::size_t>(d)] = s;
    s *= static_cast<std::uint64_t>(cells_per_dim_[static_cast<std::size_t>(d)]);
  }

  // Compute each point's linear cell id (independent per point, so
  // trivially parallel), then sort points by id.
  const std::size_t npts = ds.size();
  std::vector<std::uint64_t> ids(npts);
  const auto compute_ids = [&](std::size_t first, std::size_t last) {
    for (std::size_t i = first; i < last; ++i) {
      std::uint64_t id = 0;
      for (int d = 0; d < n; ++d) {
        auto c = static_cast<std::int32_t>(
            std::floor((ds.coord(i, d) - min_[static_cast<std::size_t>(d)]) /
                       epsilon));
        // Points exactly on the max boundary fold into the last cell.
        c = std::clamp(c, std::int32_t{0},
                       cells_per_dim_[static_cast<std::size_t>(d)] - 1);
        id += static_cast<std::uint64_t>(c) * stride_[static_cast<std::size_t>(d)];
      }
      ids[i] = id;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(npts, compute_ids);
  } else {
    compute_ids(0, npts);
  }

  point_ids_.resize(npts);
  std::iota(point_ids_.begin(), point_ids_.end(), PointId{0});
  // The comparator is a strict total order (id, then point id), so the
  // sorted order — and with it every downstream structure — is unique:
  // the parallel sort cannot diverge from the sequential one.
  parallel_stable_sort(
      point_ids_,
      [&ids](PointId a, PointId b) {
        return ids[a] != ids[b] ? ids[a] < ids[b] : a < b;
      },
      pool);

  // Materialize non-empty cells over the sorted order.
  point_cell_.resize(npts);
  point_rank_.resize(npts);
  for (std::size_t pos = 0; pos < npts; ++pos) {
    const PointId p = point_ids_[pos];
    point_rank_[p] = static_cast<std::uint32_t>(pos);
    const std::uint64_t id = ids[p];
    if (cells_.empty() || cells_.back().linear_id != id) {
      cells_.push_back({id, static_cast<std::uint32_t>(pos),
                        static_cast<std::uint32_t>(pos)});
    }
    cells_.back().end = static_cast<std::uint32_t>(pos + 1);
    point_cell_[p] = static_cast<std::uint32_t>(cells_.size() - 1);
  }

  generation_ = ds.generation();
  recompute_content_key();
}

void GridIndex::recompute_content_key() {
  // FNV-1a over the build inputs, the grid shape, and the full cell /
  // point-order content. Folding the content (not just the shape)
  // means digest equality between a repaired index and a from-scratch
  // rebuild certifies the arrays are bit-identical.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  mix(std::bit_cast<std::uint64_t>(epsilon_));
  mix(static_cast<std::uint64_t>(point_ids_.size()));
  mix(static_cast<std::uint64_t>(dims()));
  mix(generation_);
  mix(static_cast<std::uint64_t>(cells_.size()));
  for (int d = 0; d < dims(); ++d) {
    mix(static_cast<std::uint64_t>(cells_per_dim_[static_cast<std::size_t>(d)]));
  }
  for (const GridCell& c : cells_) {
    mix(c.linear_id);
    mix(c.begin);
  }
  for (const PointId p : point_ids_) mix(p);
  content_key_ = h;
}

std::uint64_t GridIndex::clamped_cell_id(std::span<const double> coords) const {
  std::uint64_t id = 0;
  for (int d = 0; d < dims(); ++d) {
    const auto sd = static_cast<std::size_t>(d);
    auto c = static_cast<std::int32_t>(
        std::floor((coords[sd] - min_[sd]) / epsilon_));
    c = std::clamp(c, std::int32_t{0}, cells_per_dim(d) - 1);
    id += static_cast<std::uint64_t>(c) * stride_[sd];
  }
  return id;
}

GridRepairOutcome GridIndex::repair(ThreadPool* pool) {
  GridRepairOutcome out;
  const Dataset& ds = *ds_;
  GSJ_CHECK_MSG(!ds.empty(), "cannot repair an index over an empty dataset");
  if (generation_ == ds.generation()) {
    out.repaired = true;
    return out;
  }

  const auto window = ds.mutations_since(generation_);
  bool can_patch = window.has_value();

  // The patch keeps min_ / cells_per_dim_ / stride_ fixed; if churn
  // changed the bounding box enough to alter the grid shape, linear
  // ids are incomparable and only a rebuild is correct.
  if (can_patch) {
    const auto lo = ds.min_corner();
    const auto hi = ds.max_corner();
    for (int d = 0; d < dims(); ++d) {
      const auto sd = static_cast<std::size_t>(d);
      const auto cnt =
          static_cast<std::int32_t>(std::floor((hi[sd] - lo[sd]) / epsilon_)) +
          1;
      if (lo[sd] != min_[sd] || cnt != cells_per_dim_[sd]) {
        can_patch = false;
        break;
      }
    }
  }
  if (!can_patch) {
    *this = GridIndex(ds, epsilon_, pool);
    return out;
  }

  const ChurnSummary churn = summarize_churn(ds, *window);
  out.touched_points = churn.touched.size();
  out.removed_points = churn.removed.size();
  out.pure_moves = churn.pure_moves;

  const std::size_t new_n = ds.size();
  const auto sdims = static_cast<std::size_t>(dims());
  std::vector<std::uint8_t> touched(new_n, 0);
  for (const auto& t : churn.touched) touched[t.id] = 1;

  // New (cell, id) entries for the touched points, plus the dirty-cell
  // set: every cell a touched/removed point left or entered.
  std::vector<std::pair<std::uint64_t, PointId>> fresh;
  fresh.reserve(churn.touched.size());
  std::vector<std::uint64_t> dirty;
  dirty.reserve(2 * churn.touched.size() + churn.removed.size());
  std::array<double, Mutation::kCoordCap> buf{};
  for (const auto& t : churn.touched) {
    for (int d = 0; d < dims(); ++d) {
      buf[static_cast<std::size_t>(d)] = ds.coord(t.id, d);
    }
    const std::uint64_t nid = clamped_cell_id({buf.data(), sdims});
    fresh.emplace_back(nid, t.id);
    dirty.push_back(nid);
    if (t.existed_before) {
      dirty.push_back(clamped_cell_id({t.old_coords.data(), sdims}));
    }
  }
  for (const auto& r : churn.removed) {
    dirty.push_back(clamped_cell_id({r.old_coords.data(), sdims}));
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  std::sort(fresh.begin(), fresh.end());

  // Untouched points kept the same id, the same coordinates (hence the
  // same cell), and their relative (cell, id) order — harvest them from
  // the current grid order in one pass.
  std::vector<std::pair<std::uint64_t, PointId>> kept;
  kept.reserve(new_n - fresh.size());
  for (const GridCell& c : cells_) {
    for (std::uint32_t pos = c.begin; pos < c.end; ++pos) {
      const PointId p = point_ids_[pos];
      if (p < new_n && touched[p] == 0) kept.emplace_back(c.linear_id, p);
    }
  }
  GSJ_CHECK(kept.size() + fresh.size() == new_n);

  // Merge the two sorted runs under the build's strict (cell, id)
  // total order and re-materialize — the result cannot differ from a
  // from-scratch sort of the same entries.
  std::vector<GridCell> new_cells;
  new_cells.reserve(cells_.size() + fresh.size());
  std::vector<PointId> new_point_ids(new_n);
  point_cell_.assign(new_n, 0);
  point_rank_.assign(new_n, 0);
  std::size_t a = 0;
  std::size_t b = 0;
  for (std::size_t pos = 0; pos < new_n; ++pos) {
    const bool take_kept =
        b >= fresh.size() || (a < kept.size() && kept[a] < fresh[b]);
    const auto [cell_id, p] = take_kept ? kept[a++] : fresh[b++];
    new_point_ids[pos] = p;
    point_rank_[p] = static_cast<std::uint32_t>(pos);
    if (new_cells.empty() || new_cells.back().linear_id != cell_id) {
      new_cells.push_back({cell_id, static_cast<std::uint32_t>(pos),
                           static_cast<std::uint32_t>(pos)});
    }
    new_cells.back().end = static_cast<std::uint32_t>(pos + 1);
    point_cell_[p] = static_cast<std::uint32_t>(new_cells.size() - 1);
  }
  cells_ = std::move(new_cells);
  point_ids_ = std::move(new_point_ids);
  generation_ = ds.generation();
  recompute_content_key();

  out.repaired = true;
  out.dirty_cell_ids = std::move(dirty);
  return out;
}

std::span<const PointId> GridIndex::cell_points(std::size_t cell_idx) const {
  GSJ_CHECK(cell_idx < cells_.size());
  const GridCell& c = cells_[cell_idx];
  return {point_ids_.data() + c.begin, c.size()};
}

std::size_t GridIndex::find_cell(std::uint64_t linear_id) const noexcept {
  auto it = std::lower_bound(
      cells_.begin(), cells_.end(), linear_id,
      [](const GridCell& c, std::uint64_t id) { return c.linear_id < id; });
  if (it == cells_.end() || it->linear_id != linear_id) return npos;
  return static_cast<std::size_t>(it - cells_.begin());
}

CellCoords GridIndex::coords_of_point(PointId p) const {
  return decode(cells_[point_cell_[p]].linear_id);
}

CellCoords GridIndex::decode(std::uint64_t linear_id) const noexcept {
  CellCoords cc;
  for (int d = 0; d < dims(); ++d) {
    const std::uint64_t s = stride_[static_cast<std::size_t>(d)];
    cc[d] = static_cast<std::int32_t>(linear_id / s);
    linear_id %= s;
  }
  return cc;
}

std::uint64_t GridIndex::encode(const CellCoords& cc) const noexcept {
  std::uint64_t id = 0;
  for (int d = 0; d < dims(); ++d) {
    id += static_cast<std::uint64_t>(cc[d]) * stride_[static_cast<std::size_t>(d)];
  }
  return id;
}

CellCoords GridIndex::cell_coords_of(std::span<const double> coords) const {
  GSJ_CHECK(static_cast<int>(coords.size()) == dims());
  CellCoords cc;
  for (int d = 0; d < dims(); ++d) {
    const auto c = static_cast<std::int32_t>(std::floor(
        (coords[static_cast<std::size_t>(d)] - min_[static_cast<std::size_t>(d)]) /
        epsilon_));
    cc[d] = std::clamp(c, std::int32_t{0}, cells_per_dim(d) - 1);
  }
  return cc;
}

bool GridIndex::in_bounds(const CellCoords& cc) const noexcept {
  for (int d = 0; d < dims(); ++d) {
    if (cc[d] < 0 || cc[d] >= cells_per_dim(d)) return false;
  }
  return true;
}

}  // namespace gsj
