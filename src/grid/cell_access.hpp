// Cell access patterns: which adjacent cells a query point's thread
// evaluates, and whether one evaluation yields one or both ordered
// result pairs.
//
//  * FULL        — evaluate every adjacent cell (the GPUCALCGLOBAL
//                  baseline [18]); each unordered pair of points is
//                  computed twice, once from each side, and each
//                  evaluation emits one ordered pair.
//  * UNICOMP     — the unidirectional pattern of [18] (Algorithm 2,
//                  generalized to n dims): for each dimension d whose
//                  origin coordinate is odd, evaluate the adjacent cells
//                  whose *highest differing dimension* is d. Each
//                  unordered adjacent-cell pair is evaluated exactly
//                  once, and each point-pair evaluation emits both
//                  ordered pairs. Inner cells evaluate between 0 and
//                  3^n - 1 neighbors depending on coordinate parity —
//                  the imbalance this paper's LID-UNICOMP removes.
//  * LID_UNICOMP — this paper's pattern (§III-B): evaluate exactly the
//                  adjacent cells with a *larger linear id* than the
//                  origin. Every inner cell evaluates (3^n - 1)/2
//                  neighbors, balancing per-cell work.
//
// For all three patterns, the origin cell itself is handled by the
// kernels directly: FULL compares a query point against every point of
// its own cell (itself included); the unidirectional patterns compare
// only against own-cell points with a larger grid rank and emit both
// ordered pairs (plus the (q,q) self pair), so all patterns produce the
// identical ordered result set.
#pragma once

#include <cstdint>
#include <string>

#include "grid/grid_index.hpp"

namespace gsj {

enum class CellPattern {
  Full,
  Unicomp,
  LidUnicomp,
};

[[nodiscard]] std::string to_string(CellPattern p);

/// True when one point-pair evaluation under `p` emits both ordered
/// pairs (the pattern visits each unordered cell pair once).
[[nodiscard]] constexpr bool is_unidirectional(CellPattern p) noexcept {
  return p != CellPattern::Full;
}

/// Decides whether the origin cell evaluates the adjacent cell
/// (origin != neighbor; both must be adjacent). `oc`/`nc` are the cell
/// coordinate vectors, `oid`/`nid` the linear ids.
[[nodiscard]] bool pattern_accepts(CellPattern p, int dims,
                                   const CellCoords& oc, const CellCoords& nc,
                                   std::uint64_t oid,
                                   std::uint64_t nid) noexcept;

/// Number of adjacent (non-origin) cell slots the pattern would accept
/// for an inner cell at coordinates `oc` — grid-boundary and emptiness
/// ignored. Used by tests and by workload analysis.
[[nodiscard]] std::uint64_t pattern_fanout(CellPattern p, int dims,
                                           const CellCoords& oc);

}  // namespace gsj
