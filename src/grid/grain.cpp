#include "grid/grain.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gsj {

std::vector<std::uint64_t> grain_cell_weights(
    const GridIndex& grid, std::span<const std::uint64_t> point_workloads) {
  const std::span<const GridCell> cells = grid.cells();
  const std::span<const PointId> pids = grid.point_ids();
  std::vector<std::uint64_t> weights(cells.size(), 0);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::uint64_t w = 0;
    for (std::uint32_t i = cells[c].begin; i < cells[c].end; ++i) {
      w += point_workloads[pids[i]] + 1;
    }
    weights[c] = w;
  }
  return weights;
}

std::vector<WorkGrain> partition_grains(
    const GridIndex& grid, std::span<const std::uint64_t> cell_weights,
    std::size_t max_grains) {
  const std::span<const GridCell> cells = grid.cells();
  GSJ_CHECK_MSG(max_grains >= 1, "max_grains must be >= 1");
  GSJ_CHECK_MSG(cell_weights.empty() || cell_weights.size() == cells.size(),
                "cell_weights size " << cell_weights.size()
                                     << " != cell count " << cells.size());
  std::vector<WorkGrain> grains;
  if (cells.empty()) return grains;

  const std::size_t ngrains = std::min(max_grains, cells.size());
  const auto weight = [&](std::size_t c) -> std::uint64_t {
    return cell_weights.empty()
               ? static_cast<std::uint64_t>(cells[c].size())
               : cell_weights[c];
  };
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) total += weight(c);

  grains.reserve(ngrains);
  std::uint64_t consumed = 0;
  std::size_t c = 0;
  for (std::size_t g = 0; g < ngrains && c < cells.size(); ++g) {
    WorkGrain grain;
    grain.cell_begin = c;
    grain.point_begin = cells[c].begin;
    // Ideal cumulative share after this grain; the remaining-weight /
    // remaining-grains form keeps late grains from starving when early
    // cells are heavy (a huge first cell eats most of the total).
    const std::size_t grains_left = ngrains - g;
    const std::uint64_t target =
        consumed + (total - consumed + grains_left - 1) / grains_left;
    // Every grain takes at least one cell; later grains must still get
    // one cell each, so this grain may extend at most to
    // cells.size() - (grains_left - 1).
    const std::size_t hard_end = cells.size() - (grains_left - 1);
    do {
      consumed += weight(c);
      ++c;
    } while (c < hard_end && consumed < target);
    grain.cell_end = c;
    grain.point_end = cells[c - 1].end;
    grain.workload = 0;
    for (std::size_t i = grain.cell_begin; i < grain.cell_end; ++i) {
      grain.workload += weight(i);
    }
    grains.push_back(grain);
  }
  // Tail cells left by the hard_end clamp fold into the last grain.
  if (c < cells.size()) {
    WorkGrain& last = grains.back();
    while (c < cells.size()) {
      last.workload += weight(c);
      ++c;
    }
    last.cell_end = cells.size();
    last.point_end = cells.back().end;
  }
  return grains;
}

std::vector<WorkGrain> partition_probe_grains(
    std::size_t n_probe, std::span<const std::uint64_t> point_workloads,
    std::size_t max_grains) {
  GSJ_CHECK_MSG(max_grains >= 1, "max_grains must be >= 1");
  GSJ_CHECK_MSG(point_workloads.empty() || point_workloads.size() == n_probe,
                "point_workloads size " << point_workloads.size()
                                        << " != probe size " << n_probe);
  std::vector<WorkGrain> grains;
  if (n_probe == 0) return grains;

  const std::size_t ngrains = std::min(max_grains, n_probe);
  const auto weight = [&](std::size_t p) -> std::uint64_t {
    return point_workloads.empty() ? 1 : point_workloads[p] + 1;
  };
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < n_probe; ++p) total += weight(p);

  grains.reserve(ngrains);
  std::uint64_t consumed = 0;
  std::size_t p = 0;
  for (std::size_t g = 0; g < ngrains && p < n_probe; ++g) {
    WorkGrain grain;
    grain.point_begin = static_cast<std::uint32_t>(p);
    // Same remaining-weight / remaining-grains target as the cell
    // partitioner, points playing the role of cells.
    const std::size_t grains_left = ngrains - g;
    const std::uint64_t target =
        consumed + (total - consumed + grains_left - 1) / grains_left;
    const std::size_t hard_end = n_probe - (grains_left - 1);
    do {
      consumed += weight(p);
      ++p;
    } while (p < hard_end && consumed < target);
    grain.point_end = static_cast<std::uint32_t>(p);
    grain.workload = 0;
    for (std::uint32_t i = grain.point_begin; i < grain.point_end; ++i) {
      grain.workload += weight(i);
    }
    grains.push_back(grain);
  }
  if (p < n_probe) {
    WorkGrain& last = grains.back();
    while (p < n_probe) {
      last.workload += weight(p);
      ++p;
    }
    last.point_end = static_cast<std::uint32_t>(n_probe);
  }
  return grains;
}

}  // namespace gsj
