// Workload quantification (§III-C): the number of candidate-distance
// calculations a query point will perform under a given cell access
// pattern. The paper quantifies per *cell* (every point of a cell has
// the same candidate set) and sorts points by that quantity to pack
// similar-work threads into the same warp.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "grid/cell_access.hpp"
#include "grid/grid_index.hpp"

namespace gsj {

class ThreadPool;

/// Per-cell workload: for each cell in grid.cells(), the number of
/// candidate points a query point of that cell evaluates — the sizes of
/// all pattern-accepted adjacent cells plus the origin cell's own size
/// (the paper's "number of neighbors" of the cell). A non-null `pool`
/// quantifies cells in parallel; output is identical either way.
[[nodiscard]] std::vector<std::uint64_t> cell_workloads(
    const GridIndex& grid, CellPattern pattern, ThreadPool* pool = nullptr);

/// Per-point workload: point_workloads(grid)[p] is the workload of p's
/// owning cell.
[[nodiscard]] std::vector<std::uint64_t> point_workloads(
    const GridIndex& grid, CellPattern pattern, ThreadPool* pool = nullptr);

/// Point ids ordered by non-increasing workload (the paper's D').
/// Stable on ties (grid order) so runs are deterministic — also under a
/// pool (the parallel sort reproduces std::stable_sort exactly).
[[nodiscard]] std::vector<PointId> sort_by_workload(
    const GridIndex& grid, CellPattern pattern, ThreadPool* pool = nullptr);

/// Exact total number of candidate evaluations the whole self-join will
/// perform under `pattern` (own-cell pair counting uses the precise
/// rank-dependent count, not the per-cell upper bound).
[[nodiscard]] std::uint64_t total_candidate_evaluations(const GridIndex& grid,
                                                        CellPattern pattern);

}  // namespace gsj
