// Workload quantification (§III-C): the number of candidate-distance
// calculations a query point will perform under a given cell access
// pattern. The paper quantifies per *cell* (every point of a cell has
// the same candidate set) and sorts points by that quantity to pack
// similar-work threads into the same warp.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "grid/cell_access.hpp"
#include "grid/grid_index.hpp"

namespace gsj {

/// Per-cell workload: for each cell in grid.cells(), the number of
/// candidate points a query point of that cell evaluates — the sizes of
/// all pattern-accepted adjacent cells plus the origin cell's own size
/// (the paper's "number of neighbors" of the cell).
[[nodiscard]] std::vector<std::uint64_t> cell_workloads(const GridIndex& grid,
                                                        CellPattern pattern);

/// Per-point workload: point_workloads(grid)[p] is the workload of p's
/// owning cell.
[[nodiscard]] std::vector<std::uint64_t> point_workloads(
    const GridIndex& grid, CellPattern pattern);

/// Point ids ordered by non-increasing workload (the paper's D').
/// Stable on ties (grid order) so runs are deterministic.
[[nodiscard]] std::vector<PointId> sort_by_workload(
    const GridIndex& grid, CellPattern pattern);

/// Exact total number of candidate evaluations the whole self-join will
/// perform under `pattern` (own-cell pair counting uses the precise
/// rank-dependent count, not the per-cell upper bound).
[[nodiscard]] std::uint64_t total_candidate_evaluations(const GridIndex& grid,
                                                        CellPattern pattern);

}  // namespace gsj
