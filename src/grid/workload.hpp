// Workload quantification (§III-C): the number of candidate-distance
// calculations a query point will perform under a given cell access
// pattern. The paper quantifies per *cell* (every point of a cell has
// the same candidate set) and sorts points by that quantity to pack
// similar-work threads into the same warp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "grid/cell_access.hpp"
#include "grid/grid_index.hpp"

namespace gsj {

class ThreadPool;

/// Workload of the single cell `cell_idx` (an index into grid.cells())
/// — the value cell_workloads() computes for that slot.
[[nodiscard]] std::uint64_t cell_workload_at(const GridIndex& grid,
                                             CellPattern pattern,
                                             std::size_t cell_idx);

/// Plan artifacts re-aligned to a repaired grid (see patch_workloads).
struct WorkloadPatchResult {
  std::vector<std::uint64_t> point_workloads;
  /// Patched D' order; empty iff the old order was empty (the order is
  /// a lazily-built artifact, so an unbuilt one stays unbuilt).
  std::vector<PointId> order;
  std::size_t recomputed_cells = 0;  ///< cells re-quantified from scratch
};

/// Incrementally re-derives cached per-point workloads and the D'
/// order after GridIndex::repair, re-quantifying only cells whose
/// workload can have changed: the repair's dirty cells plus one
/// adjacency shell (a cell's workload is a sum of pattern-accepted
/// neighbor sizes, so it is insulated from any churn further away).
/// Untouched cells recover their value from the old per-point table
/// (their membership and every member's id are unchanged), and the
/// patched order is a two-run merge under the exact (workload desc,
/// id asc) total order sort_by_workload produces — the outputs are
/// bit-identical to recomputing from scratch on the repaired grid.
/// `old_point_workloads` / `old_order` are the artifacts cached
/// against the pre-repair grid; `dirty_cell_ids` comes from the
/// GridRepairOutcome.
[[nodiscard]] WorkloadPatchResult patch_workloads(
    const GridIndex& grid, CellPattern pattern,
    std::span<const std::uint64_t> dirty_cell_ids,
    std::span<const std::uint64_t> old_point_workloads,
    std::span<const PointId> old_order);

/// Per-cell workload: for each cell in grid.cells(), the number of
/// candidate points a query point of that cell evaluates — the sizes of
/// all pattern-accepted adjacent cells plus the origin cell's own size
/// (the paper's "number of neighbors" of the cell). A non-null `pool`
/// quantifies cells in parallel; output is identical either way.
[[nodiscard]] std::vector<std::uint64_t> cell_workloads(
    const GridIndex& grid, CellPattern pattern, ThreadPool* pool = nullptr);

/// Per-point workload: point_workloads(grid)[p] is the workload of p's
/// owning cell.
[[nodiscard]] std::vector<std::uint64_t> point_workloads(
    const GridIndex& grid, CellPattern pattern, ThreadPool* pool = nullptr);

/// Per-probe-point workload for an R×S join: probe_point_workloads(
/// grid, probe)[q] is the number of candidates probe point q evaluates
/// — the total size of the non-empty in-bounds cells in q's 3^n
/// adjacency window (anchored at its banded coordinates,
/// GridIndex::probe_cell_coord). The R×S analogue of point_workloads;
/// feeds SORTBYWL's D' ordering and WORKQUEUE chunking unchanged.
[[nodiscard]] std::vector<std::uint64_t> probe_point_workloads(
    const GridIndex& grid, const Dataset& probe, ThreadPool* pool = nullptr);

/// Point ids ordered by non-increasing workload (the paper's D').
/// Stable on ties (grid order) so runs are deterministic — also under a
/// pool (the parallel sort reproduces std::stable_sort exactly).
[[nodiscard]] std::vector<PointId> sort_by_workload(
    const GridIndex& grid, CellPattern pattern, ThreadPool* pool = nullptr);

/// Exact total number of candidate evaluations the whole self-join will
/// perform under `pattern` (own-cell pair counting uses the precise
/// rank-dependent count, not the per-cell upper bound).
[[nodiscard]] std::uint64_t total_candidate_evaluations(const GridIndex& grid,
                                                        CellPattern pattern);

}  // namespace gsj
