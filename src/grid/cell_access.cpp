#include "grid/cell_access.hpp"

#include "common/check.hpp"

namespace gsj {

std::string to_string(CellPattern p) {
  switch (p) {
    case CellPattern::Full: return "FULL";
    case CellPattern::Unicomp: return "UNICOMP";
    case CellPattern::LidUnicomp: return "LID-UNICOMP";
  }
  return "?";
}

bool pattern_accepts(CellPattern p, int dims, const CellCoords& oc,
                     const CellCoords& nc, std::uint64_t oid,
                     std::uint64_t nid) noexcept {
  switch (p) {
    case CellPattern::Full:
      return true;
    case CellPattern::LidUnicomp:
      // §III-B: only neighbors with a larger linear id. Linear ids are
      // lexicographic in coordinates, so exactly one direction of every
      // unordered adjacent pair is accepted.
      return nid > oid;
    case CellPattern::Unicomp: {
      // Generalized Algorithm 2 of [18]: let d* be the highest
      // dimension where the cells differ (they are adjacent, so the
      // difference there is +/-1 and exactly one of the two coordinates
      // is odd). Pass d* is executed by the cell whose d*-coordinate is
      // odd; that pass fixes dimensions > d* and sweeps dimensions < d*,
      // so it reaches exactly the neighbors whose highest differing
      // dimension is d*. In 2-D this reduces verbatim to the paper's
      // green arrows (d*=0: x differs, y fixed, run when x odd) and red
      // arrows (d*=1: y differs, x sweeps, run when y odd).
      int dstar = -1;
      for (int d = dims - 1; d >= 0; --d) {
        if (oc[d] != nc[d]) {
          dstar = d;
          break;
        }
      }
      if (dstar < 0) return false;  // same cell: handled by the kernel
      return (oc[dstar] & 1) != 0;
    }
  }
  return false;
}

std::uint64_t pattern_fanout(CellPattern p, int dims, const CellCoords& oc) {
  GSJ_CHECK(dims >= 1 && dims <= kMaxDims);
  std::uint64_t pow3 = 1;
  for (int d = 0; d < dims; ++d) pow3 *= 3;
  switch (p) {
    case CellPattern::Full:
      return pow3 - 1;
    case CellPattern::LidUnicomp:
      return (pow3 - 1) / 2;
    case CellPattern::Unicomp: {
      // Pass d contributes 2 * 3^d cells (neighbor coordinate in d takes
      // two values, dimensions below d sweep freely) when oc[d] is odd.
      std::uint64_t total = 0;
      std::uint64_t p3 = 1;
      for (int d = 0; d < dims; ++d) {
        if ((oc[d] & 1) != 0) total += 2 * p3;
        p3 *= 3;
      }
      return total;
    }
  }
  return 0;
}

}  // namespace gsj
