// Umbrella header for the gpu-selfjoin-loadbalance library.
//
// Pulls in the full public API: datasets and generators, the epsilon
// grid index and cell-access patterns, the SIMT device model, the
// batched self-join with the paper's load-balance optimizations, the
// SUPER-EGO CPU baseline, and the DBSCAN / neighbor-table applications.
#pragma once

#include "baselines/kdtree.hpp"
#include "baselines/morton.hpp"
#include "baselines/rtree.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "data/churn.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "grid/cell_access.hpp"
#include "grid/grid_index.hpp"
#include "grid/workload.hpp"
#include "simt/counter.hpp"
#include "simt/device.hpp"
#include "simt/launch.hpp"
#include "sj/batching.hpp"
#include "sj/dbscan.hpp"
#include "sj/delta.hpp"
#include "sj/engine.hpp"
#include "sj/kernels.hpp"
#include "sj/neighbor_table.hpp"
#include "sj/reference.hpp"
#include "sj/result_set.hpp"
#include "sj/selfjoin.hpp"
#include "superego/super_ego.hpp"
