// Structured error taxonomy (docs/ROBUSTNESS.md).
//
// Two disjoint families:
//
//  * CheckError (common/check.hpp, std::logic_error) — a violated
//    precondition or internal invariant: bad epsilon, k not dividing
//    the warp size, malformed flags. Caller bug; never retried.
//  * Error (this file, std::runtime_error) — a runtime condition of a
//    well-formed request. Its subclasses carry structured fields so
//    callers can react programmatically instead of parsing what().
//
// OverflowError is the recoverable member of the second family: a
// batch's result count exceeded the fixed per-batch buffer capacity and
// the built-in recovery (batch splitting with bounded retries, see
// sj/selfjoin.cpp) could not shrink the batch enough. It is thrown only
// when recovery is exhausted — a single query point alone overflows the
// buffer, or the retry budget ran out — and names the knobs that fix
// it (buffer_pairs, safety, max_overflow_retries).
//
// CancelledError reports a *client-requested* cooperative cancellation:
// the join's cancel token was set, the in-flight launch was aborted at
// the next LaunchAbort poll (or the next batch boundary) and the
// partial output was discarded. Not an error of the request itself —
// JoinService maps it to JoinStatus::Cancelled (docs/SERVICE.md).
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gsj {

/// Base of all recoverable runtime errors (vs CheckError preconditions).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A per-batch result buffer overflowed and recovery was exhausted.
class OverflowError : public Error {
 public:
  /// `capacity` — effective per-batch pair capacity; `observed_pairs` —
  /// pairs counted when the overflow was detected (>= capacity; a lower
  /// bound if the launch aborted early); `batch_points` — query points
  /// in the unrecoverable batch; `retries` — failed launches so far.
  OverflowError(std::uint64_t capacity, std::uint64_t observed_pairs,
                std::uint64_t batch_points, std::uint64_t retries)
      : Error(format(capacity, observed_pairs, batch_points, retries)),
        capacity_(capacity),
        observed_pairs_(observed_pairs),
        batch_points_(batch_points),
        retries_(retries) {}

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t observed_pairs() const noexcept {
    return observed_pairs_;
  }
  [[nodiscard]] std::uint64_t batch_points() const noexcept {
    return batch_points_;
  }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

 private:
  static std::string format(std::uint64_t capacity,
                            std::uint64_t observed_pairs,
                            std::uint64_t batch_points,
                            std::uint64_t retries) {
    std::ostringstream os;
    os << "result buffer overflow: batch of " << batch_points
       << " query point(s) produced >= " << observed_pairs
       << " pairs against a capacity of " << capacity << " after " << retries
       << " retry launch(es); raise batching.buffer_pairs or "
          "batching.max_overflow_retries";
    return os.str();
  }

  std::uint64_t capacity_;
  std::uint64_t observed_pairs_;
  std::uint64_t batch_points_;
  std::uint64_t retries_;
};

/// A join was cancelled cooperatively via its cancel token. Carries how
/// many batches had committed before the token was observed (work that
/// was rolled into the discarded partial output).
class CancelledError : public Error {
 public:
  explicit CancelledError(std::uint64_t batches_completed)
      : Error(format(batches_completed)),
        batches_completed_(batches_completed) {}

  [[nodiscard]] std::uint64_t batches_completed() const noexcept {
    return batches_completed_;
  }

 private:
  static std::string format(std::uint64_t batches_completed) {
    std::ostringstream os;
    os << "join cancelled by client after " << batches_completed
       << " committed batch(es)";
    return os.str();
  }

  std::uint64_t batches_completed_;
};

}  // namespace gsj
