// Descriptive statistics over sample vectors: moments, percentiles,
// histograms, and imbalance metrics used to characterise per-thread
// workload distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gsj {

/// Summary of a numeric sample: count, extrema, moments and quartiles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;
  double sum = 0.0;

  /// Coefficient of variation (stddev / mean); 0 when mean == 0.
  [[nodiscard]] double cv() const noexcept {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }
};

/// Computes a Summary of `xs`. An empty span yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Convenience overload for integer workload vectors.
[[nodiscard]] Summary summarize(std::span<const std::uint64_t> xs);

/// Linear interpolated percentile (q in [0,100]) of *sorted* data.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

/// Fixed-width histogram.
class Histogram {
 public:
  /// Buckets [lo, hi) split into `nbuckets` equal bins, plus
  /// underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t nbuckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;

  /// Multi-line ASCII rendering (for example programs / debugging).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Load-imbalance factor of a workload vector: max / mean (1.0 = perfectly
/// balanced). Returns 0 for empty or all-zero input.
[[nodiscard]] double imbalance_factor(std::span<const std::uint64_t> work);

}  // namespace gsj
