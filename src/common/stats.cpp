#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace gsj {

double percentile_sorted(std::span<const double> sorted, double q) {
  GSJ_CHECK(q >= 0.0 && q <= 100.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.sum = sum;
  s.mean = sum / static_cast<double>(s.count);

  double var = 0.0;
  for (double x : sorted) {
    const double d = x - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));

  s.p25 = percentile_sorted(sorted, 25.0);
  s.median = percentile_sorted(sorted, 50.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  return s;
}

Summary summarize(std::span<const std::uint64_t> xs) {
  std::vector<double> d(xs.size());
  std::transform(xs.begin(), xs.end(), d.begin(),
                 [](std::uint64_t v) { return static_cast<double>(v); });
  return summarize(std::span<const double>(d));
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(nbuckets)),
      counts_(nbuckets, 0) {
  GSJ_CHECK(hi > lo);
  GSJ_CHECK(nbuckets > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto b = static_cast<std::size_t>((x - lo_) / width_);
    if (b >= counts_.size()) b = counts_.size() - 1;  // FP edge at hi_
    ++counts_[b];
  }
}

double Histogram::bucket_lo(std::size_t bucket) const {
  GSJ_CHECK(bucket < counts_.size());
  return lo_ + width_ * static_cast<double>(bucket);
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bucket_lo(b) << ", " << bucket_lo(b) + width_ << ") "
       << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

double imbalance_factor(std::span<const std::uint64_t> work) {
  if (work.empty()) return 0.0;
  std::uint64_t mx = 0, sum = 0;
  for (auto w : work) {
    mx = std::max(mx, w);
    sum += w;
  }
  if (sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(work.size());
  return static_cast<double>(mx) / mean;
}

}  // namespace gsj
