#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/json.hpp"

namespace gsj {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GSJ_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<Cell> row) {
  GSJ_CHECK_MSG(row.size() == headers_.size(),
                "row width " << row.size() << " != header width "
                             << headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::format(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto line = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << r[c]
         << " |";
    }
    os << '\n';
  };
  line();
  emit(headers_);
  line();
  for (const auto& r : cells) emit(r);
  line();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(format(row[c]));
    }
    os << '\n';
  }
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  GSJ_CHECK_MSG(f.good(), "cannot open " << path);
  print_csv(f);
}

void Table::print_json(std::ostream& os, const std::string& id) const {
  json::JsonWriter w(os);
  w.begin_object();
  w.key("id").value(id);
  w.key("headers").begin_array();
  for (const auto& h : headers_) w.value(h);
  w.end_array();
  w.key("rows").begin_array();
  for (const auto& row : rows_) {
    w.newline().begin_array();
    for (const auto& cell : row) {
      if (const auto* s = std::get_if<std::string>(&cell)) {
        w.value(*s);
      } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
        w.value(*i);
      } else {
        w.value(std::get<double>(cell));
      }
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void Table::write_json(const std::string& path, const std::string& id) const {
  std::ofstream f(path);
  GSJ_CHECK_MSG(f.good(), "cannot open " << path);
  print_json(f, id);
}

}  // namespace gsj
