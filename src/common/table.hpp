// Console table / CSV emitters used by the benchmark harness to print
// paper-style rows (Tables III–VI) and figure series (Figures 9–13).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace gsj {

/// A cell is a string, an integer, or a double (formatted with
/// per-column precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Accumulates rows and renders either an aligned ASCII table or CSV.
/// Intended usage: one Table per paper table / figure series.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number of cells must equal the header count.
  void add_row(std::vector<Cell> row);

  /// Digits after the decimal point for double cells (default 4).
  void set_precision(int digits) noexcept { precision_ = digits; }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;      ///< aligned ASCII
  void print_csv(std::ostream& os) const;  ///< RFC-4180-ish CSV

  /// Machine-readable JSON: {"id":...,"headers":[...],"rows":[[...]]}
  /// with cells keeping their native type (string / integer / double).
  void print_json(std::ostream& os, const std::string& id) const;

  /// Writes CSV to `path`, creating parent-less files only.
  void write_csv(const std::string& path) const;

  /// Writes the JSON form to `path`.
  void write_json(const std::string& path, const std::string& id) const;

 private:
  [[nodiscard]] std::string format(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace gsj
