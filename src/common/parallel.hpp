// Deterministic parallel algorithms on top of ThreadPool.
//
// parallel_stable_sort produces *exactly* std::stable_sort's output for
// any comparator: chunks are stable-sorted in parallel, then merged
// pairwise with std::merge (which takes from the left run on ties, so
// stability — and therefore the unique stable order — is preserved).
// Sequential and parallel runs are thus interchangeable wherever
// determinism matters (grid build, SORTBYWL, the work-queue order D').
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace gsj {

/// Stable sort of `v` by `comp`, parallelized over `pool`. Falls back
/// to a plain std::stable_sort when `pool` is null, single-worker, or
/// the input is below `min_parallel` elements. Output is bit-identical
/// across all of these paths.
template <typename T, typename Comp>
void parallel_stable_sort(std::vector<T>& v, Comp comp, ThreadPool* pool,
                          std::size_t min_parallel = std::size_t{1} << 14) {
  const std::size_t n = v.size();
  if (pool == nullptr || pool->size() <= 1 || n < min_parallel) {
    std::stable_sort(v.begin(), v.end(), comp);
    return;
  }

  // Power-of-two chunk count ~2x the workers for balance.
  std::size_t nchunks = 1;
  while (nchunks < 2 * pool->size()) nchunks <<= 1;
  const std::size_t len = (n + nchunks - 1) / nchunks;
  auto bound = [&](std::size_t chunk) { return std::min(chunk * len, n); };

  pool->parallel_for(nchunks, [&](std::size_t c) {
    std::stable_sort(v.begin() + static_cast<std::ptrdiff_t>(bound(c)),
                     v.begin() + static_cast<std::ptrdiff_t>(bound(c + 1)),
                     comp);
  });

  std::vector<T> buf(n);
  T* src = v.data();
  T* dst = buf.data();
  for (std::size_t width = 1; width < nchunks; width <<= 1) {
    const std::size_t nmerges = (nchunks + 2 * width - 1) / (2 * width);
    pool->parallel_for(nmerges, [&](std::size_t m) {
      const std::size_t lo = bound(2 * width * m);
      const std::size_t mid = bound(std::min(2 * width * m + width, nchunks));
      const std::size_t hi = bound(std::min(2 * width * (m + 1), nchunks));
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
    });
    std::swap(src, dst);
  }
  if (src != v.data()) std::copy(src, src + n, v.data());
}

}  // namespace gsj
