// Minimal command-line flag parser for the benchmark and example
// binaries: `--name value` and `--name=value` forms, typed getters with
// defaults, and an auto-generated --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gsj {

class Cli {
 public:
  /// Parses argv. Unknown flags are collected and reported by `unknown()`;
  /// flags registered after parsing still resolve (registration only
  /// feeds --help and default values).
  Cli(int argc, const char* const* argv);

  /// Registers a flag for --help output and returns its value (or
  /// `def` when absent). Safe to call multiple times.
  [[nodiscard]] std::string get(const std::string& name, const std::string& def,
                                const std::string& help = "");
  /// Numeric getters parse strictly: trailing garbage, empty values and
  /// out-of-range magnitudes throw CheckError naming the flag, instead
  /// of silently yielding 0 or a truncated prefix.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def,
                                     const std::string& help = "");
  [[nodiscard]] double get_double(const std::string& name, double def,
                                  const std::string& help = "");
  [[nodiscard]] bool get_bool(const std::string& name, bool def,
                              const std::string& help = "");

  /// True when --help/-h was passed; callers should print `help_text()`
  /// and exit 0.
  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  void note(const std::string& name, const std::string& def,
            const std::string& help);

  std::string prog_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // name -> (default, help), in registration order for --help.
  std::vector<std::pair<std::string, std::pair<std::string, std::string>>> registered_;
  bool help_ = false;
};

}  // namespace gsj
