#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace gsj {

Cli::Cli(int argc, const char* const* argv) {
  prog_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "true";  // bare flag == boolean true
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

void Cli::note(const std::string& name, const std::string& def,
               const std::string& help) {
  for (const auto& [n, _] : registered_) {
    if (n == name) return;
  }
  registered_.emplace_back(name, std::make_pair(def, help));
}

std::string Cli::get(const std::string& name, const std::string& def,
                     const std::string& help) {
  note(name, def, help);
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def,
                          const std::string& help) {
  const std::string v = get(name, std::to_string(def), help);
  char* end = nullptr;
  errno = 0;
  const std::int64_t parsed = std::strtoll(v.c_str(), &end, 10);
  GSJ_CHECK_MSG(end != v.c_str() && *end == '\0' && errno != ERANGE,
                "--" << name << ": expected an integer, got '" << v << "'");
  return parsed;
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help) {
  std::ostringstream d;
  d << def;
  const std::string v = get(name, d.str(), help);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v.c_str(), &end);
  GSJ_CHECK_MSG(end != v.c_str() && *end == '\0' && errno != ERANGE,
                "--" << name << ": expected a number, got '" << v << "'");
  return parsed;
}

bool Cli::get_bool(const std::string& name, bool def, const std::string& help) {
  const std::string v = get(name, def ? "true" : "false", help);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Cli::help_text() const {
  std::ostringstream os;
  os << "usage: " << prog_ << " [--flag value]...\n\nflags:\n";
  for (const auto& [name, dh] : registered_) {
    os << "  --" << name << " (default: " << dh.first << ")";
    if (!dh.second.empty()) os << "  " << dh.second;
    os << '\n';
  }
  return os.str();
}

}  // namespace gsj
