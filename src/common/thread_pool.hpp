// Fixed-size work-stealing-free thread pool with a blocking task queue.
//
// Used by the SUPER-EGO CPU baseline and by host-side preprocessing
// (grid build, workload quantification). Follows the CppCoreGuidelines
// concurrency rules: RAII lifetime (join on destruction), no detached
// threads, exceptions propagated to the waiter via futures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace gsj {

class ThreadPool {
 public:
  /// Spawns `nthreads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t nthreads = 0);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Worker tag of the calling thread: 0..size-1 inside a pool worker,
  /// -1 on any other thread (main, detached). Used by the observability
  /// layer to attribute trace spans and metric shards to workers.
  [[nodiscard]] static int current_worker() noexcept;

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lk(mu_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n), chunked across the pool, and blocks
  /// until all chunks finish. `fn` must be safe to call concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs `fn(begin, end)` over contiguous chunks of [0, n). Lower
  /// dispatch overhead than the per-index overload.
  void parallel_for_chunks(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop(int worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gsj
