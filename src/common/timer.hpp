// Wall-clock timing helper used by the benchmark harness and the
// SUPER-EGO baseline (the simulated GPU reports model cycles instead).
#pragma once

#include <chrono>

namespace gsj {

/// Monotonic stopwatch. Starts on construction; `seconds()` reads the
/// elapsed time without stopping; `restart()` resets the origin.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gsj
