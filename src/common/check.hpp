// Lightweight invariant checking.
//
// GSJ_CHECK is always on (used for argument validation in the public API);
// GSJ_DCHECK compiles out in release builds and guards internal invariants
// on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gsj {

/// Thrown when a GSJ_CHECK-validated precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace gsj

#define GSJ_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::gsj::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GSJ_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream gsj_os_;                                    \
      gsj_os_ << msg;                                                \
      ::gsj::detail::check_failed(#expr, __FILE__, __LINE__, gsj_os_.str()); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define GSJ_DCHECK(expr) ((void)0)
#else
#define GSJ_DCHECK(expr) GSJ_CHECK(expr)
#endif
