// Minimal JSON support shared by the observability exporters, the bench
// harness (--json) and the tests (trace round-trip validation).
//
//  * JsonWriter — streaming emitter with automatic comma/nesting state.
//    Doubles are rendered with std::to_chars (shortest round-trip form),
//    so identical values always serialize to identical bytes — the
//    property the byte-identical-trace determinism guarantee rests on.
//  * JsonValue / json_parse — a small recursive-descent parser used to
//    round-trip-validate emitted documents. Not a general-purpose
//    library: no \uXXXX surrogate pairs, numbers parsed as double.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gsj::json {

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(std::string_view s);

/// Shortest-round-trip decimal rendering of a double (std::to_chars).
/// Non-finite values render as null per RFC 8259.
[[nodiscard]] std::string format_double(double v);

/// Streaming JSON emitter. Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("pairs").value(std::uint64_t{42});
///   w.key("rows").begin_array();
///   w.value(1.5);
///   w.end_array();
///   w.end_object();
///
/// The writer inserts commas and separators; it does not pretty-print
/// (one optional newline granularity via `newline()` for diffability).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null();
  /// Emits a raw newline between elements (cosmetic only; emitted
  /// before the next element's comma handling, so call it after a
  /// completed value).
  JsonWriter& newline();

 private:
  void pre_value();

  std::ostream& os_;
  // Nesting stack: for each open container, whether a value was already
  // emitted (comma needed) and whether we are waiting for a key's value.
  std::vector<bool> comma_stack_;
  bool expecting_value_ = false;  ///< a key was just written
};

/// Parsed JSON document node.
struct JsonValue {
  using Array = std::vector<JsonValue>;
  /// Object keys keep source order (determinism checks compare order).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
      nullptr;

  [[nodiscard]] bool is_null() const { return v.index() == 0; }
  [[nodiscard]] bool is_bool() const { return v.index() == 1; }
  [[nodiscard]] bool is_number() const { return v.index() == 2; }
  [[nodiscard]] bool is_string() const { return v.index() == 3; }
  [[nodiscard]] bool is_array() const { return v.index() == 4; }
  [[nodiscard]] bool is_object() const { return v.index() == 5; }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v); }
  [[nodiscard]] double as_number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v); }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view k) const;
};

/// Parses a complete JSON document. Throws CheckError on malformed
/// input or trailing garbage.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace gsj::json
