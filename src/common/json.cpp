#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace gsj::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

void JsonWriter::pre_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  if (!comma_stack_.empty()) {
    if (comma_stack_.back()) os_ << ',';
    comma_stack_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  os_ << '{';
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  comma_stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  os_ << '[';
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  comma_stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!comma_stack_.empty()) {
    if (comma_stack_.back()) os_ << ',';
    comma_stack_.back() = true;
  }
  os_ << '"' << escape(k) << "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  os_ << format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::newline() {
  os_ << '\n';
  return *this;
}

const JsonValue* JsonValue::find(std::string_view k) const {
  if (!is_object()) return nullptr;
  for (const auto& [key, val] : as_object()) {
    if (key == k) return &val;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    GSJ_CHECK_MSG(pos_ == s_.size(), "json: trailing garbage at " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    GSJ_CHECK_MSG(pos_ < s_.size(), "json: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    GSJ_CHECK_MSG(pos_ < s_.size() && s_[pos_] == c,
                  "json: expected '" << c << "' at " << pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      GSJ_CHECK_MSG(pos_ < s_.size(), "json: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      GSJ_CHECK_MSG(pos_ < s_.size(), "json: unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          GSJ_CHECK_MSG(pos_ + 4 <= s_.size(), "json: bad \\u escape");
          unsigned cp = 0;
          const auto res =
              std::from_chars(s_.data() + pos_, s_.data() + pos_ + 4, cp, 16);
          GSJ_CHECK_MSG(res.ec == std::errc{} &&
                            res.ptr == s_.data() + pos_ + 4,
                        "json: bad \\u escape");
          pos_ += 4;
          // BMP code points only (the writer never emits surrogates).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          GSJ_CHECK_MSG(false, "json: bad escape '\\" << e << "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    double d = 0.0;
    const auto res = std::from_chars(s_.data() + start, s_.data() + pos_, d);
    GSJ_CHECK_MSG(res.ec == std::errc{} && res.ptr == s_.data() + pos_,
                  "json: bad number at " << start);
    return JsonValue{d};
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace gsj::json
