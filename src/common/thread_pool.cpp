#include "common/thread_pool.hpp"

#include <algorithm>

namespace gsj {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

int ThreadPool::current_worker() noexcept { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t nthreads) {
  if (nthreads == 0) {
    nthreads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(nthreads);
  for (std::size_t i = 0; i < nthreads; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int worker_index) {
  t_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // Over-decompose 4x for dynamic balance; each chunk at least 1 element.
  const std::size_t nchunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + nchunks - 1) / nchunks;
  std::vector<std::future<void>> futs;
  futs.reserve(nchunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futs.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futs) f.get();  // propagate exceptions
}

}  // namespace gsj
