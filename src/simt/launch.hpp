// Kernel launch: lockstep warp execution plus greedy resident-slot
// scheduling. See device.hpp for the model description.
//
// A kernel is any type K providing:
//
//   struct K::LaneState;                       // default-constructible
//   simt::InitResult K::init_lane(LaneState&, const LaneCtx&, WarpScratch&);
//   simt::StepResult K::step(LaneState&);
//
// init_lane runs for every lane of a warp, in lane order, when the warp
// is dispatched — this is where CUDA-side thread-id math, cooperative-
// group leader elections and work-queue atomics live (lane order makes
// leader-to-group broadcast through WarpScratch natural, modeling
// __shfl_sync). step executes one lockstep work unit and reports its
// cycle cost; a warp step costs the maximum over its active lanes, and
// a warp retires when every lane reports inactive.
//
// Init costs are *summed* across lanes (atomics to one address
// serialize within a warp; the slight overcharge for the non-atomic
// part of init is a documented simplification).
//
// Parallel host execution. With cfg.host.num_threads > 0 and a kernel
// that additionally provides the shard API
//
//   auto K::make_shard()                   // per-warp side-effect sink
//   simt::StepResult K::step(LaneState&, Shard&);
//   void K::merge_shard(Shard&&);          // sequential, dispatch order
//
// the launch runs in three passes (docs/PERFORMANCE.md):
//   1. sequential dispatch — draw the RNG window picks and run
//      init_lane in dispatch order (work-queue counter grabs happen
//      exactly as in the sequential path);
//   2. parallel step loops — each warp's lockstep loop depends only on
//      its own lanes' state, so warps execute concurrently on a
//      ThreadPool, emitting into private shards;
//   3. sequential replay — the slot min-heap is replayed with the
//      computed cycle costs, shards merge and the WarpObserver fires in
//      dispatch order.
// Every modeled quantity (cycles, stats, results, observer stream) is
// bit-identical to the sequential path; kernels lacking the shard API
// silently keep the sequential path.
//
// Abortable launch. An optional `should_abort` hook is polled every
// detail::kWarpBlock warps — at the *same* warp-count boundaries on the
// sequential and parallel paths (the parallel path's block merges), so
// an abort decision driven by merged side effects (e.g. the result
// count crossing the batch buffer capacity) stops both paths after the
// exact same set of executed warps, keeping them bit-identical. On
// abort the remaining warps never run, warps_launched reports only the
// executed ones and stats.aborted_launches is 1. This models a host
// that cancels the remaining grid once the device-side result counter
// passes the pinned-buffer capacity (overflow recovery, sj/selfjoin).
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "simt/device.hpp"

namespace gsj::simt {

/// Identity of a lane within a launch.
struct LaneCtx {
  std::uint64_t global_thread_id = 0;
  int lane_id = 0;          ///< 0..warp_size-1
  std::uint64_t warp_id = 0;  ///< launch-order warp index
};

struct InitResult {
  bool active = false;
  std::uint32_t cost = 0;
};

struct StepResult {
  bool active = false;  ///< false once the lane has retired
  std::uint32_t cost = 1;
};

/// Per-warp shared scratch, the model of shared memory/__shfl_sync used
/// by cooperative groups to broadcast a work-queue grab to the group.
using WarpScratch = std::array<std::uint64_t, 32>;

/// Per-warp metrics handed to the optional observer.
struct WarpRecord {
  std::uint64_t warp_id = 0;       ///< launch-order id
  std::uint64_t dispatch_seq = 0;  ///< execution order
  std::uint64_t start_cycle = 0;
  std::uint64_t cycles = 0;  ///< init + steps
  std::uint64_t steps = 0;
  std::uint64_t active_lane_steps = 0;
  int slot = 0;  ///< resident-warp slot (sm = slot / resident_warps_per_sm)
};

using WarpObserver = std::function<void(const WarpRecord&)>;

/// Kernels whose step loops may run on host worker threads: side
/// effects go to a per-warp shard, merged sequentially in dispatch
/// order so the shared sinks see the exact sequential event stream.
template <typename K>
concept ParallelHostKernel =
    requires(K& k, typename K::LaneState& s,
             decltype(std::declval<K&>().make_shard())& shard) {
      { k.step(s, shard) } -> std::same_as<StepResult>;
      k.merge_shard(std::move(shard));
    };

/// Launch abort hook: polled between warp blocks; returning true stops
/// the launch before the next block (see header comment).
using LaunchAbort = std::function<bool()>;

namespace detail {

/// Warps per execution block: the parallel host path's shard window and
/// the abort-hook polling interval (both paths poll at multiples of
/// this count, which is what keeps aborts bit-identical across them).
constexpr std::uint64_t kWarpBlock = 4096;

/// Warp ids in dispatch order: uniform picks from a bounded window at
/// the head of the pending queue. A pure function of (seed, window,
/// num_warps) — the RNG consumption never depends on warp execution,
/// which is what makes the dispatch pass separable from the step pass.
inline std::vector<std::uint64_t> dispatch_order(const DeviceConfig& cfg,
                                                 std::uint64_t num_warps) {
  Xoshiro256 rng(cfg.scheduler_seed);
  std::vector<std::uint64_t> order;
  order.reserve(static_cast<std::size_t>(num_warps));
  std::vector<std::uint64_t> window;
  window.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      num_warps, static_cast<std::uint64_t>(cfg.dispatch_window))));
  std::uint64_t next_unqueued = 0;
  auto refill = [&] {
    while (window.size() < static_cast<std::size_t>(cfg.dispatch_window) &&
           next_unqueued < num_warps) {
      window.push_back(next_unqueued++);
    }
  };
  refill();
  while (!window.empty()) {
    const std::size_t pick =
        window.size() == 1
            ? 0
            : static_cast<std::size_t>(rng.uniform_index(window.size()));
    order.push_back(window[pick]);
    window.erase(window.begin() + static_cast<std::ptrdiff_t>(pick));
    refill();
  }
  return order;
}

/// Min-heap of (free_cycle, slot) replayed in dispatch order; lowest
/// slot id breaks ties so runs are deterministic.
class SlotSchedule {
 public:
  explicit SlotSchedule(int nslots) : slot_finish_(static_cast<std::size_t>(nslots), 0) {
    for (int s = 0; s < nslots; ++s) slots_.emplace(0, s);
  }

  /// Places the next dispatched warp; returns {start_cycle, slot}.
  std::pair<std::uint64_t, int> place(std::uint64_t warp_cycles) {
    const auto [free_at, slot] = slots_.top();
    slots_.pop();
    const std::uint64_t finish = free_at + warp_cycles;
    slot_finish_[static_cast<std::size_t>(slot)] = finish;
    slots_.emplace(finish, slot);
    return {free_at, slot};
  }

  void finalize(KernelStats& stats) const {
    std::uint64_t makespan = 0;
    for (auto f : slot_finish_) makespan = std::max(makespan, f);
    stats.makespan_cycles = makespan;
    for (auto f : slot_finish_) stats.tail_idle_cycles += makespan - f;
  }

 private:
  using Slot = std::pair<std::uint64_t, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> slots_;
  std::vector<std::uint64_t> slot_finish_;
};

/// One warp's step-loop outcome (cycles include init).
struct WarpRun {
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  std::uint64_t active_lane_steps = 0;
};

/// Runs init_lane over one warp's lanes (in lane order); returns the
/// summed init cost and fills `lanes`/`active`.
template <typename K>
std::uint64_t init_warp(const DeviceConfig& cfg, std::uint64_t num_threads,
                        K& k, std::uint64_t w,
                        typename K::LaneState* lanes, std::uint8_t* active,
                        WarpScratch& scratch) {
  const auto ws = static_cast<std::uint64_t>(cfg.warp_size);
  std::uint64_t init_cost = cfg.cost_warp_launch;
  scratch.fill(0);
  for (int l = 0; l < cfg.warp_size; ++l) {
    const auto li = static_cast<std::size_t>(l);
    const std::uint64_t tid = w * ws + static_cast<std::uint64_t>(l);
    lanes[li] = typename K::LaneState{};
    if (tid >= num_threads) {
      active[li] = 0;
      continue;
    }
    LaneCtx ctx{tid, l, w};
    const InitResult r = k.init_lane(lanes[li], ctx, scratch);
    active[li] = r.active ? 1 : 0;
    init_cost += r.cost;
  }
  return init_cost;
}

/// Lockstep step loop of one warp: each step costs the max over its
/// active lanes; the warp retires when every lane reports inactive.
template <typename LaneState, typename StepFn>
WarpRun warp_step_loop(int warp_size, LaneState* lanes, std::uint8_t* active,
                       std::uint64_t init_cost, StepFn&& step) {
  WarpRun run;
  run.cycles = init_cost;
  for (;;) {
    std::uint32_t step_cost = 0;
    std::uint32_t nactive = 0;
    for (int l = 0; l < warp_size; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (!active[li]) continue;
      const StepResult r = step(lanes[li]);
      active[li] = r.active ? 1 : 0;
      step_cost = std::max(step_cost, r.cost);
      ++nactive;
    }
    if (nactive == 0) break;
    ++run.steps;
    run.active_lane_steps += nactive;
    run.cycles += step_cost;
  }
  return run;
}

}  // namespace detail

/// Executes `num_threads` logical threads of kernel `k` on the modeled
/// device. Deterministic for fixed config (including scheduler_seed);
/// cfg.host selects sequential or parallel *host* execution with
/// bit-identical modeled behavior either way.
template <typename K>
KernelStats launch(const DeviceConfig& cfg, std::uint64_t num_threads, K& k,
                   const WarpObserver& observer = {},
                   const LaunchAbort& should_abort = {}) {
  cfg.validate();

  KernelStats stats;
  stats.launches = 1;
  if (num_threads == 0) return stats;

  const auto ws = static_cast<std::uint64_t>(cfg.warp_size);
  const std::uint64_t num_warps = (num_threads + ws - 1) / ws;
  stats.warps_launched = num_warps;  // reduced below if aborted

  const std::vector<std::uint64_t> order =
      detail::dispatch_order(cfg, num_warps);
  detail::SlotSchedule sched(cfg.total_slots());

  // Hoisted emptiness test: an unset observer must cost nothing per
  // warp — no std::function invocation and no WarpRecord construction
  // (see BM_LaunchObserver in bench_micro.cpp).
  const bool observed = static_cast<bool>(observer);

  auto retire = [&](std::uint64_t w, std::uint64_t seq,
                    const detail::WarpRun& run) {
    stats.warp_steps += run.steps;
    stats.active_lane_steps += run.active_lane_steps;
    stats.busy_cycles += run.cycles;
    const auto [start, slot] = sched.place(run.cycles);
    if (observed) {
      WarpRecord rec;
      rec.warp_id = w;
      rec.dispatch_seq = seq;
      rec.start_cycle = start;
      rec.cycles = run.cycles;
      rec.steps = run.steps;
      rec.active_lane_steps = run.active_lane_steps;
      rec.slot = slot;
      observer(rec);
    }
  };

  bool done = false;
  if constexpr (ParallelHostKernel<K>) {
    if (cfg.host.num_threads > 0 && num_warps > 1) {
      using Shard = decltype(k.make_shard());
      std::optional<ThreadPool> owned;
      ThreadPool* pool = cfg.host.pool;
      if (pool == nullptr) {
        owned.emplace(static_cast<std::size_t>(cfg.host.num_threads));
        pool = &*owned;
      }

      // Blocked execution bounds the saved lane states / shards to a
      // window of warps while leaving plenty of parallel slack.
      const std::uint64_t block = std::min(num_warps, detail::kWarpBlock);
      std::vector<typename K::LaneState> lanes(
          static_cast<std::size_t>(block * ws));
      std::vector<std::uint8_t> active(static_cast<std::size_t>(block * ws));
      std::vector<std::uint64_t> init_costs(static_cast<std::size_t>(block));
      std::vector<detail::WarpRun> runs(static_cast<std::size_t>(block));
      std::vector<Shard> shards;
      shards.reserve(static_cast<std::size_t>(block));
      WarpScratch scratch{};

      for (std::uint64_t base = 0; base < num_warps; base += block) {
        const std::uint64_t bsize = std::min(block, num_warps - base);
        // Pass 1 — sequential dispatch: init_lane in dispatch order
        // (work-queue counter grabs serialize exactly as sequentially).
        shards.clear();
        for (std::uint64_t i = 0; i < bsize; ++i) {
          const auto off = static_cast<std::size_t>(i * ws);
          init_costs[static_cast<std::size_t>(i)] = detail::init_warp(
              cfg, num_threads, k, order[static_cast<std::size_t>(base + i)],
              lanes.data() + off, active.data() + off, scratch);
          shards.push_back(k.make_shard());
        }
        // Pass 2 — parallel step loops into per-warp shards.
        pool->parallel_for(static_cast<std::size_t>(bsize), [&](std::size_t i) {
          const std::size_t off = i * static_cast<std::size_t>(ws);
          runs[i] = detail::warp_step_loop(
              cfg.warp_size, lanes.data() + off, active.data() + off,
              init_costs[i],
              [&k, &shard = shards[i]](typename K::LaneState& s) {
                return k.step(s, shard);
              });
        });
        // Pass 3 — sequential replay: slot heap, stats, observer and
        // shard merge in dispatch order.
        for (std::uint64_t i = 0; i < bsize; ++i) {
          const auto ii = static_cast<std::size_t>(i);
          retire(order[static_cast<std::size_t>(base + i)], base + i, runs[ii]);
          k.merge_shard(std::move(shards[ii]));
        }
        // Abort poll at the block boundary — the merged side effects
        // here equal the sequential path's at the same warp count.
        if (should_abort && base + bsize < num_warps && should_abort()) {
          stats.aborted_launches = 1;
          stats.warps_launched = base + bsize;
          break;
        }
      }
      done = true;
    }
  }

  if (!done) {
    std::vector<typename K::LaneState> lanes(
        static_cast<std::size_t>(cfg.warp_size));
    std::array<std::uint8_t, 32> active{};
    WarpScratch scratch{};
    for (std::uint64_t seq = 0; seq < num_warps; ++seq) {
      // Same polling boundaries as the parallel path's block merges.
      if (should_abort && seq > 0 && seq % detail::kWarpBlock == 0 &&
          should_abort()) {
        stats.aborted_launches = 1;
        stats.warps_launched = seq;
        break;
      }
      const std::uint64_t w = order[static_cast<std::size_t>(seq)];
      const std::uint64_t init_cost = detail::init_warp(
          cfg, num_threads, k, w, lanes.data(), active.data(), scratch);
      const detail::WarpRun run = detail::warp_step_loop(
          cfg.warp_size, lanes.data(), active.data(), init_cost,
          [&k](typename K::LaneState& s) { return k.step(s); });
      retire(w, seq, run);
    }
  }

  sched.finalize(stats);
  return stats;
}

}  // namespace gsj::simt
