// Kernel launch: lockstep warp execution plus greedy resident-slot
// scheduling. See device.hpp for the model description.
//
// A kernel is any type K providing:
//
//   struct K::LaneState;                       // default-constructible
//   simt::InitResult K::init_lane(LaneState&, const LaneCtx&, WarpScratch&);
//   simt::StepResult K::step(LaneState&);
//
// init_lane runs for every lane of a warp, in lane order, when the warp
// is dispatched — this is where CUDA-side thread-id math, cooperative-
// group leader elections and work-queue atomics live (lane order makes
// leader-to-group broadcast through WarpScratch natural, modeling
// __shfl_sync). step executes one lockstep work unit and reports its
// cycle cost; a warp step costs the maximum over its active lanes, and
// a warp retires when every lane reports inactive.
//
// Init costs are *summed* across lanes (atomics to one address
// serialize within a warp; the slight overcharge for the non-atomic
// part of init is a documented simplification).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "simt/device.hpp"

namespace gsj::simt {

/// Identity of a lane within a launch.
struct LaneCtx {
  std::uint64_t global_thread_id = 0;
  int lane_id = 0;          ///< 0..warp_size-1
  std::uint64_t warp_id = 0;  ///< launch-order warp index
};

struct InitResult {
  bool active = false;
  std::uint32_t cost = 0;
};

struct StepResult {
  bool active = false;  ///< false once the lane has retired
  std::uint32_t cost = 1;
};

/// Per-warp shared scratch, the model of shared memory/__shfl_sync used
/// by cooperative groups to broadcast a work-queue grab to the group.
using WarpScratch = std::array<std::uint64_t, 32>;

/// Per-warp metrics handed to the optional observer.
struct WarpRecord {
  std::uint64_t warp_id = 0;       ///< launch-order id
  std::uint64_t dispatch_seq = 0;  ///< execution order
  std::uint64_t start_cycle = 0;
  std::uint64_t cycles = 0;  ///< init + steps
  std::uint64_t steps = 0;
  std::uint64_t active_lane_steps = 0;
  int slot = 0;  ///< resident-warp slot (sm = slot / resident_warps_per_sm)
};

using WarpObserver = std::function<void(const WarpRecord&)>;

/// Executes `num_threads` logical threads of kernel `k` on the modeled
/// device. Deterministic for fixed config (including scheduler_seed).
template <typename K>
KernelStats launch(const DeviceConfig& cfg, std::uint64_t num_threads, K& k,
                   const WarpObserver& observer = {}) {
  GSJ_CHECK(cfg.warp_size >= 1 && cfg.warp_size <= 32);
  GSJ_CHECK(cfg.total_slots() >= 1);
  GSJ_CHECK(cfg.dispatch_window >= 1);

  KernelStats stats;
  stats.launches = 1;
  if (num_threads == 0) return stats;

  const auto ws = static_cast<std::uint64_t>(cfg.warp_size);
  const std::uint64_t num_warps = (num_threads + ws - 1) / ws;
  stats.warps_launched = num_warps;

  // Dispatch window over the pending queue: pick uniformly among the
  // first `window` undispatched warps (window 1 = launch order).
  Xoshiro256 rng(cfg.scheduler_seed);
  std::vector<std::uint64_t> window;
  window.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(num_warps, static_cast<std::uint64_t>(cfg.dispatch_window))));
  std::uint64_t next_unqueued = 0;
  auto refill = [&] {
    while (window.size() < static_cast<std::size_t>(cfg.dispatch_window) &&
           next_unqueued < num_warps) {
      window.push_back(next_unqueued++);
    }
  };
  refill();

  // Min-heap of (free_cycle, slot); lowest slot id breaks ties so runs
  // are deterministic.
  using Slot = std::pair<std::uint64_t, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> slots;
  const int nslots = cfg.total_slots();
  for (int s = 0; s < nslots; ++s) slots.emplace(0, s);
  std::vector<std::uint64_t> slot_finish(static_cast<std::size_t>(nslots), 0);

  std::vector<typename K::LaneState> lanes(static_cast<std::size_t>(cfg.warp_size));
  std::array<bool, 32> active{};
  WarpScratch scratch{};

  // Hoisted emptiness test: an unset observer must cost nothing per
  // warp — no std::function invocation and no WarpRecord construction
  // (see BM_LaunchObserver in bench_micro.cpp).
  const bool observed = static_cast<bool>(observer);

  std::uint64_t dispatch_seq = 0;
  while (!window.empty()) {
    // Choose the next warp from the head window.
    const std::size_t pick =
        window.size() == 1 ? 0
                           : static_cast<std::size_t>(rng.uniform_index(window.size()));
    const std::uint64_t w = window[pick];
    window.erase(window.begin() + static_cast<std::ptrdiff_t>(pick));
    refill();

    auto [free_at, slot] = slots.top();
    slots.pop();

    // --- execute warp w ---
    std::uint64_t steps = 0;
    std::uint64_t active_lane_steps = 0;

    std::uint64_t init_cost = cfg.cost_warp_launch;
    scratch.fill(0);
    for (int l = 0; l < cfg.warp_size; ++l) {
      const std::uint64_t tid = w * ws + static_cast<std::uint64_t>(l);
      lanes[static_cast<std::size_t>(l)] = typename K::LaneState{};
      if (tid >= num_threads) {
        active[static_cast<std::size_t>(l)] = false;
        continue;
      }
      LaneCtx ctx{tid, l, w};
      const InitResult r =
          k.init_lane(lanes[static_cast<std::size_t>(l)], ctx, scratch);
      active[static_cast<std::size_t>(l)] = r.active;
      init_cost += r.cost;
    }

    std::uint64_t warp_cycles = init_cost;
    for (;;) {
      std::uint32_t step_cost = 0;
      std::uint32_t nactive = 0;
      for (int l = 0; l < cfg.warp_size; ++l) {
        if (!active[static_cast<std::size_t>(l)]) continue;
        const StepResult r = k.step(lanes[static_cast<std::size_t>(l)]);
        active[static_cast<std::size_t>(l)] = r.active;
        step_cost = std::max(step_cost, r.cost);
        ++nactive;
      }
      if (nactive == 0) break;
      ++steps;
      active_lane_steps += nactive;
      warp_cycles += step_cost;
    }

    stats.warp_steps += steps;
    stats.active_lane_steps += active_lane_steps;
    stats.busy_cycles += warp_cycles;

    const std::uint64_t finish = free_at + warp_cycles;
    slot_finish[static_cast<std::size_t>(slot)] = finish;
    slots.emplace(finish, slot);
    const std::uint64_t seq = dispatch_seq++;
    if (observed) {
      WarpRecord rec;
      rec.warp_id = w;
      rec.dispatch_seq = seq;
      rec.start_cycle = free_at;
      rec.cycles = warp_cycles;
      rec.steps = steps;
      rec.active_lane_steps = active_lane_steps;
      rec.slot = slot;
      observer(rec);
    }
  }

  std::uint64_t makespan = 0;
  for (auto f : slot_finish) makespan = std::max(makespan, f);
  stats.makespan_cycles = makespan;
  for (auto f : slot_finish) stats.tail_idle_cycles += makespan - f;
  return stats;
}

}  // namespace gsj::simt
