#include "simt/fleet.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gsj::simt {

void FleetConfig::validate(const DeviceConfig& base) const {
  GSJ_CHECK_MSG(num_devices >= 1,
                "fleet num_devices=" << num_devices << " must be >= 1");
  GSJ_CHECK_MSG(grains_per_device >= 1,
                "fleet grains_per_device=" << grains_per_device
                                           << " must be >= 1");
  GSJ_CHECK_MSG(devices.empty() ||
                    devices.size() == static_cast<std::size_t>(num_devices),
                "fleet device overrides: " << devices.size()
                                           << " configs for " << num_devices
                                           << " devices");
  base.validate();
  for (const DeviceConfig& d : devices) {
    d.validate();
    GSJ_CHECK_MSG(d.warp_size == base.warp_size,
                  "fleet devices must share one warp_size (got "
                      << d.warp_size << " vs base " << base.warp_size << ")");
  }
}

std::vector<DeviceConfig> FleetConfig::resolve(const DeviceConfig& base) const {
  std::vector<DeviceConfig> out;
  out.reserve(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    DeviceConfig c = devices.empty()
                         ? base
                         : devices[static_cast<std::size_t>(d)];
    c.host = base.host;  // host replay strategy is fleet-wide
    out.push_back(c);
  }
  return out;
}

DeviceFleet::DeviceFleet(std::vector<DeviceConfig> devices)
    : devices_(std::move(devices)) {
  GSJ_CHECK_MSG(!devices_.empty(), "fleet needs at least one device");
  loads_.resize(devices_.size());
  static_rate_.resize(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    loads_[d].device = static_cast<int>(d);
    static_rate_[d] = devices_[d].static_rate();
  }
}

std::size_t DeviceFleet::pick(std::uint64_t workload) const noexcept {
  // Calibrate the static prior into measured units: the mean ratio of
  // measured throughput (workload units / modeled second) to the static
  // rate over devices that have run. Before any measurement only the
  // *relative* rates matter (all busy times are 0), so the uncalibrated
  // prior is fine.
  double ratio_sum = 0.0;
  std::size_t measured = 0;
  for (std::size_t d = 0; d < loads_.size(); ++d) {
    if (loads_[d].busy_seconds > 0.0 && loads_[d].workload > 0) {
      ratio_sum += (static_cast<double>(loads_[d].workload) /
                    loads_[d].busy_seconds) /
                   static_rate_[d];
      ++measured;
    }
  }
  const double calibration = measured > 0 ? ratio_sum /
                                                static_cast<double>(measured)
                                          : 1.0;
  std::size_t best = 0;
  double best_finish = 0.0;
  for (std::size_t d = 0; d < loads_.size(); ++d) {
    const DeviceLoad& l = loads_[d];
    const double rate =
        (l.busy_seconds > 0.0 && l.workload > 0)
            ? static_cast<double>(l.workload) / l.busy_seconds
            : static_rate_[d] * calibration;
    const double finish =
        l.busy_seconds + static_cast<double>(workload) / rate;
    if (d == 0 || finish < best_finish) {
      best = d;
      best_finish = finish;
    }
  }
  return best;
}

void DeviceFleet::record(std::size_t d, std::uint64_t workload, double seconds,
                         const KernelStats& stats) {
  DeviceLoad& l = loads_[d];
  ++l.grains;
  l.workload += workload;
  l.busy_seconds += seconds;
  l.kernel.merge(stats);  // grains on one device run sequentially
}

FleetStats DeviceFleet::finish(std::uint64_t num_grains,
                               std::uint64_t rebalances) const {
  FleetStats fs;
  fs.devices = loads_;
  fs.num_grains = num_grains;
  fs.rebalances = rebalances;
  double sum = 0.0;
  for (const DeviceLoad& l : loads_) {
    fs.makespan_seconds = std::max(fs.makespan_seconds, l.busy_seconds);
    sum += l.busy_seconds;
  }
  const double mean = sum / static_cast<double>(loads_.size());
  double var = 0.0;
  for (DeviceLoad& l : fs.devices) {
    l.tail_idle_seconds = fs.makespan_seconds - l.busy_seconds;
    fs.tail_idle_seconds += l.tail_idle_seconds;
    const double dev = l.busy_seconds - mean;
    var += dev * dev;
  }
  if (mean > 0.0) {
    fs.device_cov = std::sqrt(var / static_cast<double>(loads_.size())) / mean;
    fs.imbalance = fs.makespan_seconds / mean;
  }
  return fs;
}

}  // namespace gsj::simt
