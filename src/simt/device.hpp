// SIMT device model.
//
// This project runs the paper's CUDA kernels on a deterministic warp
// simulator instead of real silicon (see DESIGN.md §2). The model keeps
// exactly the phenomena the paper measures:
//
//  * lockstep warps — a warp advances in steps; in each step every
//    still-active lane executes one work unit, finished lanes are
//    masked. Warp time = sum over steps of the max lane cost, so one
//    heavy lane stalls its 31 siblings (intra-warp imbalance).
//  * warp execution efficiency — active lane-steps divided by
//    (steps x warp_size), the same definition nvprof reports.
//  * resident-warp scheduling — the device offers
//    num_sms x resident_warps_per_sm concurrent warp slots; pending
//    warps are dispatched to the first free slot. Device time is the
//    makespan over slots, which exposes the kernel-tail imbalance the
//    WORKQUEUE optimization removes.
//  * dispatch-order uncertainty — the hardware scheduler is not
//    guaranteed to start warps in launch order; the model dispatches
//    uniformly at random from a bounded window at the head of the
//    pending queue (window 1 = strict launch order).
//
// Costs are charged in model cycles via an explicit cost table; seconds
// are derived from a nominal clock only for readability.
#pragma once

#include <cstdint>
#include <string>

namespace gsj {
class ThreadPool;  // common/thread_pool.hpp
}  // namespace gsj

namespace gsj::simt {

/// Host-side execution strategy for the simulator (how the *host*
/// replays the modeled device — modeled cycles, results, stats and
/// observer order are bit-identical regardless of these knobs; see
/// docs/PERFORMANCE.md for the three-pass equivalence argument).
struct HostExecConfig {
  /// Host worker threads running warp step loops. 0 = the sequential
  /// single-threaded path; N >= 1 executes warps on a pool of N
  /// workers (kernels without the shard API fall back to sequential).
  int num_threads = 0;
  /// Optional externally-owned pool, reused across launches (batches).
  /// When null and num_threads > 0, each launch spawns a transient
  /// pool — prefer passing a shared pool on multi-batch pipelines.
  gsj::ThreadPool* pool = nullptr;
};

struct DeviceConfig {
  int warp_size = 32;
  int num_sms = 56;               ///< GP100 (paper's Quadro GP100)
  int resident_warps_per_sm = 8;  ///< occupancy-limited concurrent warps
  double clock_ghz = 1.33;

  /// Warp instructions one SM can issue per cycle, shared by its
  /// resident warps. With resident_warps_per_sm = 8 and issue_width = 1
  /// each resident warp progresses at 1/8 of the cost-table rate —
  /// the throughput of a memory-bound kernel whose latency the extra
  /// resident warps exist to hide.
  int issue_width = 1;

  /// Hardware dispatch window: a pending warp is started uniformly at
  /// random among the first `dispatch_window` queued warps. 1 = strict
  /// launch order (what the paper's WORKQUEUE forces *logically* via
  /// the atomic counter; here it models an in-order scheduler). Real
  /// hardware roughly follows launch order with local reordering, so
  /// the default is a moderate window — the paper's point is precisely
  /// that SORTBYWL is at the mercy of this window while the WORKQUEUE
  /// is not (see bench_ablation_scheduler).
  int dispatch_window = 64;
  std::uint64_t scheduler_seed = 0x5eedULL;

  /// Host execution strategy (threads replaying the model). Does not
  /// affect any modeled quantity — only wall-clock time on the host.
  HostExecConfig host;

  // --- cost table (model cycles per warp instruction) ---
  // Calibrated so a 56-SM device sustains ~7e10 2-D candidate
  // evaluations/s — the order of a tuned memory-friendly GP100 kernel.
  std::uint32_t cost_dist_base = 20;    ///< per distance calc, fixed part
  std::uint32_t cost_dist_per_dim = 6;  ///< per distance calc, per dimension
  std::uint32_t cost_cell_probe = 40;   ///< binary search for one adjacent cell
  std::uint32_t cost_pattern_check = 4; ///< cell access pattern conditional
  std::uint32_t cost_atomic = 32;       ///< global atomic fetch-add
  std::uint32_t cost_emit = 4;          ///< appending one result pair
  std::uint32_t cost_warp_launch = 40;  ///< fixed per-warp scheduling overhead

  [[nodiscard]] int total_slots() const noexcept {
    return num_sms * resident_warps_per_sm;
  }
  [[nodiscard]] std::uint32_t cost_dist(int dims) const noexcept {
    return cost_dist_base + cost_dist_per_dim * static_cast<std::uint32_t>(dims);
  }

  /// Throws CheckError unless every field is in its documented domain:
  /// warp_size in [1, 32], num_sms / resident_warps_per_sm /
  /// issue_width / dispatch_window >= 1, clock_ghz > 0 and finite.
  /// Out-of-domain values would otherwise produce NaN seconds
  /// (clock_ghz <= 0), division by zero (issue_width == 0) or a
  /// scheduler that never dispatches (dispatch_window == 0) — mirrors
  /// BatchingConfig::validate(). Called at every launch entry.
  void validate() const;

  /// Static relative throughput in warp-instruction issue slots per
  /// second: num_sms x issue_width x clock. The fleet scheduler's prior
  /// for a device it has not measured yet (simt/fleet.hpp).
  [[nodiscard]] double static_rate() const noexcept {
    return static_cast<double>(num_sms) * static_cast<double>(issue_width) *
           clock_ghz;
  }
};

/// Execution metrics of one kernel launch (merged across batches for a
/// whole self-join).
struct KernelStats {
  std::uint64_t launches = 0;            ///< kernel invocations merged in
  /// Launches stopped early by the abort hook (result-buffer overflow
  /// recovery); their warps_launched count only the warps that ran.
  std::uint64_t aborted_launches = 0;
  std::uint64_t warps_launched = 0;
  std::uint64_t warp_steps = 0;          ///< lockstep steps over all warps
  std::uint64_t active_lane_steps = 0;   ///< lane-steps actually executing
  std::uint64_t busy_cycles = 0;         ///< sum over warps of warp cycles
  std::uint64_t makespan_cycles = 0;     ///< device completion time (summed over launches)
  std::uint64_t tail_idle_cycles = 0;    ///< slot idle time before kernel end
  std::uint64_t atomics_executed = 0;
  std::uint64_t results_emitted = 0;

  /// nvprof-style warp execution efficiency in [0, 1]. Takes the
  /// *configured* warp size (DeviceConfig::warp_size) — deliberately no
  /// default: a hardcoded 32 silently mis-reports WEE on narrow-warp
  /// configurations (the bug SelfJoinStats::wee_percent shipped with).
  [[nodiscard]] double warp_execution_efficiency(int warp_size) const noexcept {
    if (warp_steps == 0) return 0.0;
    return static_cast<double>(active_lane_steps) /
           (static_cast<double>(warp_steps) * warp_size);
  }

  /// Fraction of slot-cycles doing work (1 - tail/backfill idleness).
  [[nodiscard]] double slot_occupancy(const DeviceConfig& cfg) const noexcept {
    const double denom = static_cast<double>(makespan_cycles) *
                         static_cast<double>(cfg.total_slots());
    return denom == 0.0 ? 0.0 : static_cast<double>(busy_cycles) / denom;
  }

  /// Modeled kernel time in seconds. Resident warps share their SM's
  /// issue pipeline, so each slot's effective clock is scaled by
  /// issue_width / resident_warps_per_sm (issue contention).
  [[nodiscard]] double seconds(const DeviceConfig& cfg) const noexcept {
    const double contention = static_cast<double>(cfg.resident_warps_per_sm) /
                              static_cast<double>(cfg.issue_width);
    return static_cast<double>(makespan_cycles) * contention /
           (cfg.clock_ghz * 1e9);
  }

  /// Accumulates another launch's stats (batches execute sequentially,
  /// so makespans add).
  void merge(const KernelStats& other) noexcept;

  /// Accumulates stats from a launch that ran *concurrently* (another
  /// device of a fleet): makespan is the max of the two, everything
  /// else — busy cycles, tail idle, warps, results — sums. Using the
  /// sequential merge() across devices silently over-reports the fleet
  /// makespan by the sum of the per-device makespans; the fleet path
  /// must use this instead (simt/fleet.hpp).
  void merge_concurrent(const KernelStats& other) noexcept;

  [[nodiscard]] std::string summary(const DeviceConfig& cfg) const;
};

}  // namespace gsj::simt
