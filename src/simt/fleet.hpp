// Device fleet: N modeled simt::Device instances executing work grains
// concurrently (docs/SIMULATOR.md §fleet).
//
// The paper mitigates imbalance *within* one device by scheduling work
// at the right granularity (SORTBYWL packs similar-work threads into a
// warp, the WORKQUEUE decouples work items from executors). The fleet
// lifts that story one level: the ε-grid is sharded into work grains
// (grid/grain.hpp) and a greedy LPT scheduler places grains on devices
// so per-device makespans converge toward fair. Devices may be
// heterogeneous — per-device DeviceConfig overrides for num_sms /
// clock_ghz / issue_width — which is exactly when static uniform
// sharding loses and measured-throughput feedback wins (the Hybrid
// KNN-Join partitioning argument, PAPERS.md).
//
// Scheduling discipline (deterministic, host-modeled):
//  * grains are placed largest-estimated-workload-first (LPT);
//  * each grain goes to the device with the minimum *predicted finish*:
//    accumulated modeled busy seconds + grain workload / device rate;
//  * a device's rate starts as the static prior
//    (DeviceConfig::static_rate, ∝ num_sms x issue_width x clock) and
//    is replaced by its *measured* throughput (workload units per
//    modeled second) once the device has executed a grain — the
//    feedback loop that converges on heterogeneous fleets even when
//    the static prior is wrong;
//  * ties break toward the lowest device id, so runs are deterministic.
//
// The fleet is a modeling construct: grains execute one at a time on
// the host (like batches always have), but their modeled seconds
// accumulate per device and the fleet makespan is the max — which is
// why per-device KernelStats must combine with merge_concurrent, not
// the sequential merge (device.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "simt/device.hpp"

namespace gsj::simt {

/// Fleet shape: how many devices and (optionally) how each differs
/// from the base DeviceConfig of the run.
struct FleetConfig {
  /// 1 = the classic single-device path (no grain sharding, byte-
  /// identical behaviour to before the fleet existed).
  int num_devices = 1;
  /// Optional per-device overrides; empty = homogeneous copies of the
  /// run's base device config. When non-empty, size must equal
  /// num_devices. Host-execution knobs are taken from the base config
  /// regardless (the host pool is shared; see sj/pipeline.hpp).
  std::vector<DeviceConfig> devices;
  /// Grains per device under adaptive scheduling: more grains = finer
  /// rebalancing at more per-grain overhead. The static baseline always
  /// uses exactly one grain per device.
  int grains_per_device = 8;
  /// true = LPT + measured-rate feedback (the default); false = static
  /// uniform sharding (grain i -> device i over cell-count-uniform
  /// grains) — the baseline the rebalancer is measured against.
  bool adaptive = true;

  [[nodiscard]] bool active() const noexcept { return num_devices > 1; }

  /// Throws CheckError unless num_devices >= 1, grains_per_device >= 1,
  /// overrides (when present) match num_devices, every device config
  /// validates, and all devices share one warp_size (WEE and the k |
  /// warp_size contract are fleet-wide; heterogeneity means SM count /
  /// clock / issue width, not warp shape).
  void validate(const DeviceConfig& base) const;

  /// The effective per-device configs: overrides when present, else
  /// num_devices copies of `base`; host-execution knobs always from
  /// `base`.
  [[nodiscard]] std::vector<DeviceConfig> resolve(
      const DeviceConfig& base) const;
};

/// Accumulated load of one device of the fleet.
struct DeviceLoad {
  int device = 0;
  std::uint64_t grains = 0;          ///< grains executed
  std::uint64_t workload = 0;        ///< summed grain workload units
  double busy_seconds = 0.0;         ///< modeled kernel seconds
  double tail_idle_seconds = 0.0;    ///< makespan - busy (filled at end)
  KernelStats kernel;                ///< merged sequentially per device
};

/// Fleet-level imbalance summary — the per-warp diagnostics
/// (obs/diagnostics.hpp) mirrored at device granularity.
struct FleetStats {
  std::vector<DeviceLoad> devices;   ///< empty = fleet never ran
  std::uint64_t num_grains = 0;
  /// Grains placed on a device other than their static spatial owner
  /// (grain g of G -> device g*D/G) — how much the rebalancer actually
  /// moved.
  std::uint64_t rebalances = 0;
  double makespan_seconds = 0.0;     ///< max over device busy seconds
  double device_cov = 0.0;           ///< CoV of per-device busy seconds
  double tail_idle_seconds = 0.0;    ///< Σ (makespan - busy) over devices
  /// makespan / mean busy seconds (1 = perfectly fair); 0 before a run.
  double imbalance = 0.0;

  [[nodiscard]] bool ran() const noexcept { return !devices.empty(); }
};

/// Grain placement + accounting. Usage (sj/execute.cpp):
///
///   DeviceFleet fleet(cfg.resolve(base));
///   for (grain : lpt_order)            // caller orders by workload
///     d = fleet.pick(grain.workload);  // predicted-finish argmin
///     ... run grain on device d ...
///     fleet.record(d, grain.workload, seconds, stats);
///   FleetStats fs = fleet.finish();
class DeviceFleet {
 public:
  explicit DeviceFleet(std::vector<DeviceConfig> devices);

  [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }
  [[nodiscard]] const DeviceConfig& device(std::size_t d) const noexcept {
    return devices_[d];
  }

  /// Device with the minimum predicted finish time for a grain of
  /// `workload` units (lowest id on ties).
  [[nodiscard]] std::size_t pick(std::uint64_t workload) const noexcept;

  /// Accounts an executed grain: `seconds` of modeled device time and
  /// the launch stats, merged sequentially into the device's load.
  void record(std::size_t d, std::uint64_t workload, double seconds,
              const KernelStats& stats);

  /// Closes the run: per-device tail idle against the fleet makespan,
  /// device-level CoV, imbalance ratio. `num_grains`/`rebalances` are
  /// scheduling facts only the caller knows.
  [[nodiscard]] FleetStats finish(std::uint64_t num_grains,
                                  std::uint64_t rebalances) const;

 private:
  std::vector<DeviceConfig> devices_;
  std::vector<DeviceLoad> loads_;
  std::vector<double> static_rate_;  ///< prior, normalized
};

}  // namespace gsj::simt
