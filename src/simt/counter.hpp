// Simulated device-global atomic counter — the head pointer of the
// paper's WORKQUEUE (§III-D). Warps call fetch_add when the scheduler
// starts them, so indices are handed out in warp *execution* order, not
// launch order: exactly the property the paper exploits to force
// most-work-first consumption of the workload-sorted dataset.
#pragma once

#include <cstdint>

namespace gsj::simt {

class DeviceCounter {
 public:
  constexpr DeviceCounter() = default;

  /// Atomically (in model semantics: warps execute one at a time in the
  /// simulator) reserves `n` consecutive values, returning the first.
  constexpr std::uint64_t fetch_add(std::uint64_t n) noexcept {
    const std::uint64_t v = value_;
    value_ += n;
    return v;
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  constexpr void reset(std::uint64_t v = 0) noexcept { value_ = v; }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace gsj::simt
