#include "simt/device.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace gsj::simt {

void DeviceConfig::validate() const {
  GSJ_CHECK_MSG(warp_size >= 1 && warp_size <= 32,
                "warp_size=" << warp_size << " must be in [1, 32]");
  GSJ_CHECK_MSG(num_sms >= 1, "num_sms=" << num_sms << " must be >= 1");
  GSJ_CHECK_MSG(resident_warps_per_sm >= 1,
                "resident_warps_per_sm=" << resident_warps_per_sm
                                         << " must be >= 1");
  GSJ_CHECK_MSG(issue_width >= 1,
                "issue_width=" << issue_width << " must be >= 1");
  GSJ_CHECK_MSG(dispatch_window >= 1,
                "dispatch_window=" << dispatch_window << " must be >= 1");
  GSJ_CHECK_MSG(std::isfinite(clock_ghz) && clock_ghz > 0.0,
                "clock_ghz=" << clock_ghz << " must be finite and positive");
}

void KernelStats::merge(const KernelStats& other) noexcept {
  launches += other.launches;
  aborted_launches += other.aborted_launches;
  warps_launched += other.warps_launched;
  warp_steps += other.warp_steps;
  active_lane_steps += other.active_lane_steps;
  busy_cycles += other.busy_cycles;
  makespan_cycles += other.makespan_cycles;
  tail_idle_cycles += other.tail_idle_cycles;
  atomics_executed += other.atomics_executed;
  results_emitted += other.results_emitted;
}

void KernelStats::merge_concurrent(const KernelStats& other) noexcept {
  const std::uint64_t makespan = std::max(makespan_cycles,
                                          other.makespan_cycles);
  merge(other);
  makespan_cycles = makespan;  // concurrent devices overlap in time
}

std::string KernelStats::summary(const DeviceConfig& cfg) const {
  std::ostringstream os;
  os << "KernelStats{launches=" << launches << ", warps=" << warps_launched
     << ", WEE=" << warp_execution_efficiency(cfg.warp_size) * 100.0 << "%"
     << ", occupancy=" << slot_occupancy(cfg) * 100.0 << "%"
     << ", makespan=" << makespan_cycles << " cyc"
     << " (" << seconds(cfg) << " s)"
     << ", results=" << results_emitted << "}";
  return os.str();
}

}  // namespace gsj::simt
