#include "simt/device.hpp"

#include <sstream>

namespace gsj::simt {

void KernelStats::merge(const KernelStats& other) noexcept {
  launches += other.launches;
  aborted_launches += other.aborted_launches;
  warps_launched += other.warps_launched;
  warp_steps += other.warp_steps;
  active_lane_steps += other.active_lane_steps;
  busy_cycles += other.busy_cycles;
  makespan_cycles += other.makespan_cycles;
  tail_idle_cycles += other.tail_idle_cycles;
  atomics_executed += other.atomics_executed;
  results_emitted += other.results_emitted;
}

std::string KernelStats::summary(const DeviceConfig& cfg) const {
  std::ostringstream os;
  os << "KernelStats{launches=" << launches << ", warps=" << warps_launched
     << ", WEE=" << warp_execution_efficiency(cfg.warp_size) * 100.0 << "%"
     << ", occupancy=" << slot_occupancy(cfg) * 100.0 << "%"
     << ", makespan=" << makespan_cycles << " cyc"
     << " (" << seconds(cfg) << " s)"
     << ", results=" << results_emitted << "}";
  return os.str();
}

}  // namespace gsj::simt
