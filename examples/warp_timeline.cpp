// Visualizes the paper's load-imbalance story from real traced runs:
// each row is one resident-warp slot of the modeled device, '#' is busy
// time and '.' is tail idle before the batch's last warp retires. The
// unoptimized GPUCALCGLOBAL kernel ends ragged (some slots idle long
// before the makespan — the kernel tail of Figure 3); the WORKQUEUE
// combination packs similar warps together and the rows finish nearly
// flush (Figure 7).
//
// The drawing is derived from the observability layer (obs::Tracer warp
// events + obs diagnostics), i.e. from exactly the data `sjtool
// profile` exports as Chrome trace JSON. Pass --trace-dir to also write
// the traces and open them in Perfetto / chrome://tracing.
//
//   ./warp_timeline [--n 20000] [--epsilon 0.15] [--trace-dir DIR]
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "data/generators.hpp"
#include "obs/diagnostics.hpp"
#include "obs/trace.hpp"
#include "sj/selfjoin.hpp"

namespace {

/// ASCII rendering of batch `batch`'s device timeline: one row per
/// resident-warp slot, scaled so the batch makespan spans `width`
/// characters.
void draw_batch(const gsj::obs::Tracer& tracer, std::uint32_t batch,
                int nslots, std::size_t width) {
  std::vector<std::uint64_t> busy(static_cast<std::size_t>(nslots), 0);
  std::vector<std::uint64_t> warps(static_cast<std::size_t>(nslots), 0);
  std::uint64_t base = ~std::uint64_t{0}, makespan_end = 0;
  for (const auto& e : tracer.warp_events()) {
    if (e.batch != batch) continue;
    const auto s = static_cast<std::size_t>(e.slot);
    busy[s] += e.cycles;
    ++warps[s];
    base = std::min(base, e.start_cycle);
    makespan_end = std::max(makespan_end, e.start_cycle + e.cycles);
  }
  const std::uint64_t makespan = makespan_end > base ? makespan_end - base : 1;
  for (int s = 0; s < nslots; ++s) {
    const auto su = static_cast<std::size_t>(s);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(width) * static_cast<double>(busy[su]) /
        static_cast<double>(makespan));
    std::cout << "  slot " << (s < 10 ? " " : "") << s << " |"
              << std::string(std::min(bar, width), '#')
              << std::string(width - std::min(bar, width), '.') << "| "
              << warps[su] << " warps\n";
  }
}

void run_variant(const char* title, const gsj::Dataset& ds,
                 gsj::SelfJoinConfig cfg, const std::string& trace_dir,
                 const std::string& trace_name) {
  gsj::obs::Tracer tracer;
  cfg.device.num_sms = 2;  // 16 slots: a timeline that fits a terminal
  cfg.tracer = &tracer;
  const gsj::SelfJoinOutput out = gsj::self_join(ds, cfg);

  std::cout << title << "\n";
  draw_batch(tracer, 0, cfg.device.total_slots(), 60);

  std::uint64_t tail_idle = 0;
  for (const auto& s : out.stats.slots) tail_idle += s.tail_idle_cycles;
  std::cout << "  => WEE " << out.stats.wee_percent() << "%, "
            << gsj::obs::describe(out.stats.warp_imbalance) << "\n"
            << "     tail idle " << tail_idle << " slot-cycles over "
            << out.stats.num_batches << " batch(es)\n";

  if (!trace_dir.empty()) {
    std::filesystem::create_directories(trace_dir);
    const std::string path = trace_dir + "/" + trace_name;
    std::ofstream f(path);
    tracer.write_chrome_json(f);
    std::cout << "     trace: " << path << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  gsj::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20000, "points"));
  const double eps = cli.get_double("epsilon", 0.15, "join radius");
  const std::string trace_dir =
      cli.get("trace-dir", "", "write Chrome trace JSON files here");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const gsj::Dataset ds = gsj::gen_exponential(n, 2, 3);

  run_variant(
      "GPUCALCGLOBAL — unbalanced warps, ragged kernel tail ('.' = idle):",
      ds, gsj::SelfJoinConfig::gpu_calc_global(eps), trace_dir,
      "warp_timeline_gpucalcglobal.trace.json");
  run_variant(
      "WORKQUEUE+LID-UNICOMP+k8 — workload-sorted queue, flush finish:",
      ds, gsj::SelfJoinConfig::combined(eps), trace_dir,
      "warp_timeline_combined.trace.json");
  return 0;
}
