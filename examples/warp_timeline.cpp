// Visualizes the paper's Figures 3 and 7: per-lane workloads inside
// warps, before and after the load-balance optimizations. Each row is
// one warp lane; bar length is that lane's quantified workload
// (candidate count). Unsorted assignment mixes heavy and light lanes in
// one warp (idle time = the gap to the longest lane, Figure 3); the
// workload-sorted queue packs similar lanes together (Figure 7).
//
//   ./warp_timeline [--n 20000] [--epsilon 0.02] [--warps 4]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "common/cli.hpp"
#include "data/generators.hpp"
#include "grid/workload.hpp"

namespace {

void draw_warps(const char* title, const std::vector<gsj::PointId>& order,
                const std::vector<std::uint64_t>& work, int warps,
                int lanes_shown) {
  std::cout << title << "\n";
  std::uint64_t peak = 1;
  for (int w = 0; w < warps; ++w) {
    for (int l = 0; l < 32; ++l) {
      const std::size_t idx = static_cast<std::size_t>(w) * 32 + l;
      if (idx < order.size()) peak = std::max(peak, work[order[idx]]);
    }
  }
  double busy = 0.0, span = 0.0;
  for (int w = 0; w < warps; ++w) {
    std::uint64_t wmax = 0;
    for (int l = 0; l < 32; ++l) {
      const std::size_t idx = static_cast<std::size_t>(w) * 32 + l;
      if (idx < order.size()) wmax = std::max(wmax, work[order[idx]]);
    }
    for (int l = 0; l < lanes_shown; ++l) {
      const std::size_t idx = static_cast<std::size_t>(w) * 32 + l;
      if (idx >= order.size()) break;
      const std::uint64_t wl = work[order[idx]];
      const auto bar = static_cast<std::size_t>(
          60.0 * static_cast<double>(wl) / static_cast<double>(peak));
      const auto idle = static_cast<std::size_t>(
          60.0 * static_cast<double>(wmax - wl) / static_cast<double>(peak));
      std::cout << "  w" << w << " lane" << (l < 10 ? " " : "") << l << " |"
                << std::string(bar, '#') << std::string(idle, '.') << "\n";
    }
    std::cout << "  (warp " << w << ": longest lane " << wmax
              << " candidates)\n";
    for (int l = 0; l < 32; ++l) {
      const std::size_t idx = static_cast<std::size_t>(w) * 32 + l;
      if (idx >= order.size()) break;
      busy += static_cast<double>(work[order[idx]]);
      span += static_cast<double>(wmax);
    }
  }
  std::cout << "  => modeled warp execution efficiency over shown warps: "
            << (span > 0 ? 100.0 * busy / span : 0.0) << "%\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  gsj::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20000, "points"));
  const double eps = cli.get_double("epsilon", 0.02, "join radius");
  const int warps = static_cast<int>(cli.get_int("warps", 3, "warps drawn"));
  const int lanes = static_cast<int>(cli.get_int("lanes", 8, "lanes drawn per warp"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const gsj::Dataset ds = gsj::gen_exponential(n, 2, 3);
  const gsj::GridIndex grid(ds, eps);
  const auto work = gsj::point_workloads(grid, gsj::CellPattern::Full);

  std::vector<gsj::PointId> natural(n);
  std::iota(natural.begin(), natural.end(), gsj::PointId{0});
  draw_warps("Figure 3 — natural assignment (mixed workloads, '.' = idle):",
             natural, work, warps, lanes);

  const auto sorted = gsj::sort_by_workload(grid, gsj::CellPattern::Full);
  draw_warps("Figure 7 — workload-sorted queue (similar lanes packed):",
             sorted, work, warps, lanes);
  return 0;
}
