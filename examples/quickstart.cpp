// Quickstart: run the optimized self-join on a small skewed dataset,
// compare against the GPUCALCGLOBAL baseline and the SUPER-EGO CPU
// algorithm, and print neighbor statistics.
//
//   ./quickstart [--n 20000] [--dims 2] [--epsilon 0.02] [--seed 1]
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "data/generators.hpp"
#include "sj/engine.hpp"
#include "superego/super_ego.hpp"

int main(int argc, char** argv) {
  gsj::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(
      cli.get_int("n", 20000, "number of points"));
  const int dims = static_cast<int>(cli.get_int("dims", 2, "dimensions"));
  const double eps = cli.get_double("epsilon", 0.02, "join radius");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1, ""));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  // Exponentially distributed points: a dense corner plus a sparse
  // tail — the workload skew the paper's optimizations target.
  const gsj::Dataset ds = gsj::gen_exponential(n, dims, seed);
  std::cout << "dataset: " << ds.describe() << "\n\n";

  // Both variants run at the same epsilon, so one engine builds the
  // grid once and the second run reuses it from the plan cache.
  gsj::JoinEngine engine;
  gsj::PreparedDataset prep = engine.prepare(ds);

  // 1. Baseline GPU kernel of [18]: one thread per point, full pattern.
  const auto base = engine.run(prep, gsj::SelfJoinConfig::gpu_calc_global(eps));

  // 2. This paper's combination: WORKQUEUE + LID-UNICOMP + k=8.
  gsj::SelfJoinConfig cfg = gsj::SelfJoinConfig::combined(eps);
  cfg.store_pairs = true;  // keep pairs to show neighbor statistics
  const auto opt = engine.run(prep, cfg);

  // 3. CPU comparator.
  gsj::SuperEgoConfig ecfg;
  ecfg.epsilon = eps;
  const auto ego = gsj::super_ego_join(ds, ecfg);

  std::cout << "result pairs (all three agree): " << opt.results.count()
            << " / " << base.results.count() << " / " << ego.results.count()
            << "\n\n";

  std::cout << "GPUCALCGLOBAL   : " << base.stats.kernel_seconds << " s (model), WEE "
            << base.stats.wee_percent() << "%, batches "
            << base.stats.num_batches << "\n";
  std::cout << "WQ+LID+k8       : " << opt.stats.kernel_seconds << " s (model), WEE "
            << opt.stats.wee_percent() << "%, batches "
            << opt.stats.num_batches << "\n";
  std::cout << "SUPER-EGO (CPU) : " << ego.stats.seconds << " s (wall), "
            << ego.stats.distance_calcs << " distance calcs\n\n";
  std::cout << "modeled speedup vs GPUCALCGLOBAL: "
            << base.stats.kernel_seconds / opt.stats.kernel_seconds << "x\n\n";

  // Neighborhood size distribution — the source of the load imbalance.
  const auto nl = opt.results.neighbor_lists(ds.size());
  std::vector<double> degs(ds.size());
  for (std::size_t p = 0; p < ds.size(); ++p) {
    degs[p] = static_cast<double>(nl.offsets[p + 1] - nl.offsets[p]);
  }
  const gsj::Summary s = gsj::summarize(degs);
  std::cout << "neighbors per point: min " << s.min << ", median " << s.median
            << ", mean " << s.mean << ", p99 " << s.p99 << ", max " << s.max
            << "\n";
  return 0;
}
