// Near-duplicate detection — one of the paper's §I use cases. Feature
// vectors (e.g. document embeddings reduced to a few dimensions) are
// joined with a tight epsilon; any non-trivial pair is a duplicate
// candidate.
//
// Generates a corpus where a configurable fraction of items are noisy
// copies of earlier items, runs the self-join, and measures how well
// the epsilon threshold separates true duplicates from chance
// neighbors (precision / recall against the known ground truth).
//
//   ./near_duplicates [--n 20000] [--dims 4] [--dup-frac 0.2]
//                     [--noise 0.01] [--epsilon 0.05]
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "sj/engine.hpp"
#include "sj/neighbor_table.hpp"

int main(int argc, char** argv) {
  gsj::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20000, "items"));
  const int dims = static_cast<int>(cli.get_int("dims", 4, "feature dims"));
  const double dup_frac =
      cli.get_double("dup-frac", 0.2, "fraction of items that are copies");
  const double noise = cli.get_double("noise", 0.01, "copy perturbation");
  const double eps = cli.get_double("epsilon", 0.05, "duplicate radius");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  gsj::Xoshiro256 rng(99);
  gsj::Dataset ds(dims);
  ds.reserve(n);
  std::vector<double> p(static_cast<std::size_t>(dims));
  std::vector<std::pair<gsj::PointId, gsj::PointId>> truth;  // (copy, original)
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && rng.uniform() < dup_frac) {
      const auto orig = static_cast<gsj::PointId>(rng.uniform_index(i));
      for (int d = 0; d < dims; ++d) {
        p[static_cast<std::size_t>(d)] =
            ds.coord(orig, d) + rng.uniform(-noise, noise);
      }
      truth.emplace_back(static_cast<gsj::PointId>(i), orig);
    } else {
      for (int d = 0; d < dims; ++d) {
        p[static_cast<std::size_t>(d)] = rng.uniform(0.0, 1.0);
      }
    }
    ds.push_back(p);
  }

  // The corpus is fixed after generation, so run the join through an
  // engine: a real deduplication service would answer repeated queries
  // (new epsilons, refreshed variants) over the same prepared corpus.
  gsj::JoinEngine engine;
  gsj::PreparedDataset prep = engine.prepare(ds);
  gsj::SelfJoinConfig cfg = gsj::SelfJoinConfig::combined(eps);
  cfg.store_pairs = true;
  const gsj::SelfJoinOutput out = engine.run(prep, cfg);
  const gsj::NeighborTable nt(out.results, n);

  // A detected duplicate pair is any (a, b), a != b, within epsilon.
  std::size_t detected = 0, hits = 0;
  for (gsj::PointId a = 0; a < n; ++a) {
    detected += nt.degree(a) - 1;  // exclude the self pair
  }
  detected /= 2;  // unordered
  for (const auto& [copy, orig] : truth) {
    const auto nb = nt.neighbors(copy);
    if (std::binary_search(nb.begin(), nb.end(), orig)) ++hits;
  }
  const double recall =
      truth.empty() ? 1.0
                    : static_cast<double>(hits) / static_cast<double>(truth.size());
  const double precision =
      detected == 0 ? 1.0
                    : static_cast<double>(hits) / static_cast<double>(detected);

  std::cout << "items " << n << " (" << truth.size()
            << " true near-duplicates), epsilon " << eps << "\n";
  std::cout << "join found " << detected << " candidate pairs in "
            << out.stats.kernel_seconds << " s (model), WEE "
            << out.stats.wee_percent() << "%\n";
  std::cout << "recall " << recall << ", precision " << precision << "\n";
  return 0;
}
