// DBSCAN clustering on top of the optimized self-join — the paper's
// motivating application. Generates a hotspot dataset (clusters over
// background noise), runs a small epsilon parameter search through one
// JoinEngine (so every candidate reuses the cached grid artifacts where
// possible), clusters at the requested epsilon, and reports cluster
// statistics plus how the join's load-balance optimizations behaved.
//
//   ./dbscan_clustering [--n 30000] [--epsilon 1.0] [--minpts 8]
#include <algorithm>
#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "data/generators.hpp"
#include "sj/dbscan.hpp"
#include "sj/engine.hpp"

int main(int argc, char** argv) {
  gsj::Cli cli(argc, argv);
  const auto n =
      static_cast<std::size_t>(cli.get_int("n", 30000, "number of points"));
  const double eps = cli.get_double("epsilon", 1.0, "DBSCAN epsilon");
  const auto minpts = static_cast<std::uint32_t>(
      cli.get_int("minpts", 8, "DBSCAN minPts (self counted)"));
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  // SW-like hotspot data: dense clusters over sparse background — both
  // a realistic clustering input and the skewed workload the join's
  // optimizations target.
  const gsj::Dataset ds = gsj::gen_sw_like(n, /*with_tec=*/false, 7);
  std::cout << "dataset: " << ds.describe() << "\n";

  // One engine serves the whole parameter search; each epsilon builds
  // its grid once and the final clustering run below reuses it.
  gsj::JoinEngine engine;
  gsj::PreparedDataset prep = engine.prepare(ds);

  gsj::DbscanConfig cfg;
  cfg.min_pts = minpts;
  std::cout << "parameter search (minPts " << minpts << "):\n";
  for (const double factor : {0.5, 1.0, 2.0}) {
    cfg.epsilon = eps * factor;
    const gsj::DbscanResult probe = gsj::dbscan(engine, prep, cfg);
    std::cout << "  epsilon " << cfg.epsilon << ": " << probe.num_clusters
              << " clusters, " << probe.num_noise << " noise\n";
  }
  std::cout << "\n";

  cfg.epsilon = eps;
  const gsj::DbscanResult res = gsj::dbscan(engine, prep, cfg);

  std::cout << "clusters: " << res.num_clusters << ", core points "
            << res.num_core << ", noise " << res.num_noise << " ("
            << 100.0 * static_cast<double>(res.num_noise) /
                   static_cast<double>(n)
            << "%)\n";
  std::cout << "join: " << res.join_stats.result_pairs << " pairs over "
            << res.join_stats.num_batches << " batches, modeled "
            << res.join_stats.kernel_seconds << " s, WEE "
            << res.join_stats.wee_percent() << "%\n\n";

  // Top clusters by size.
  std::map<std::int32_t, std::size_t> sizes;
  for (const auto l : res.labels) {
    if (l != gsj::DbscanResult::kNoise) ++sizes[l];
  }
  std::vector<std::pair<std::size_t, std::int32_t>> ranked;
  ranked.reserve(sizes.size());
  for (const auto& [cid, sz] : sizes) ranked.emplace_back(sz, cid);
  std::sort(ranked.rbegin(), ranked.rend());
  std::cout << "largest clusters:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i) {
    std::cout << "  #" << ranked[i].second << ": " << ranked[i].first
              << " points\n";
  }
  return 0;
}
