// Sky-density analysis on a Gaia-like star catalog: for every star,
// the number of neighbors within an angular radius — the raw self-join
// output as a local-density estimator — plus interactive range queries
// at chosen sky positions.
//
//   ./sky_density [--n 100000] [--epsilon 0.6]
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "data/generators.hpp"
#include "grid/grid_index.hpp"
#include "sj/engine.hpp"
#include "sj/neighbor_table.hpp"

int main(int argc, char** argv) {
  gsj::Cli cli(argc, argv);
  const auto n =
      static_cast<std::size_t>(cli.get_int("n", 100000, "catalog size"));
  const double eps =
      cli.get_double("epsilon", 0.6, "angular radius (degrees)");
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const gsj::Dataset sky = gsj::gen_gaia_like(n, 42);
  std::cout << "catalog: " << sky.describe() << "\n";

  // A catalog service answers many density queries over one loaded
  // catalog, so hold it in an engine-prepared form.
  gsj::JoinEngine engine;
  gsj::PreparedDataset prep = engine.prepare(sky);
  gsj::SelfJoinConfig cfg = gsj::SelfJoinConfig::combined(eps);
  cfg.store_pairs = true;
  const gsj::SelfJoinOutput out = engine.run(prep, cfg);
  const gsj::NeighborTable nt(out.results, n);

  std::vector<double> density(n);
  for (gsj::PointId p = 0; p < n; ++p) {
    density[p] = static_cast<double>(nt.degree(p));
  }
  const gsj::Summary s = gsj::summarize(density);
  std::cout << "neighbors within " << eps << " deg: median " << s.median
            << ", mean " << s.mean << ", p99 " << s.p99 << ", max " << s.max
            << "\n";
  std::cout << "join: " << out.stats.result_pairs << " pairs, "
            << out.stats.num_batches << " batches, modeled "
            << out.stats.kernel_seconds << " s, WEE "
            << out.stats.wee_percent() << "%\n\n";

  // Density vs galactic latitude: the plane over-density the catalog
  // models, binned in 15-degree latitude bands.
  gsj::Histogram plane(-90.0, 90.0, 12);
  std::vector<double> band_sum(12, 0.0);
  std::vector<std::uint64_t> band_cnt(12, 0);
  for (gsj::PointId p = 0; p < n; ++p) {
    const double b = sky.coord(p, 1);
    auto band = static_cast<std::size_t>((b + 90.0) / 15.0);
    if (band >= 12) band = 11;
    band_sum[band] += density[p];
    band_cnt[band] += 1;
  }
  std::cout << "mean local density by galactic latitude band:\n";
  for (std::size_t band = 0; band < 12; ++band) {
    const double lo = -90.0 + 15.0 * static_cast<double>(band);
    const double mean =
        band_cnt[band] ? band_sum[band] / static_cast<double>(band_cnt[band])
                       : 0.0;
    std::cout << "  [" << lo << ", " << lo + 15.0 << ") deg: " << mean
              << "\n";
  }

  // Point-in-sky range queries through the same grid index.
  const gsj::GridIndex grid(sky, eps);
  const double galactic_center[] = {0.0, 0.0};
  const double pole[] = {0.0, 89.0};
  std::cout << "\nstars within " << eps << " deg of the galactic center: "
            << gsj::range_query(grid, galactic_center).size() << "\n";
  std::cout << "stars within " << eps << " deg of the north galactic pole: "
            << gsj::range_query(grid, pole).size() << "\n";
  return 0;
}
